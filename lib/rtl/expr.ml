type signal = { s_name : string; s_width : int; s_id : int }

type mem = {
  m_name : string;
  m_addr_width : int;
  m_data_width : int;
  m_depth : int;
  m_id : int;
}

type unop = Not | Neg | Redand | Redor | Redxor

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Ult
  | Ule
  | Slt
  | Sle
  | Shl
  | Lshr
  | Ashr

type t = { tag : int; width : int; node : node }

and node =
  | Const of Bitvec.t
  | Input of signal
  | Param of signal
  | Reg of signal
  | Memread of mem * t
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t
  | Concat of t * t
  | Slice of t * int * int

let tag e = e.tag
let width e = e.width
let node e = e.node

(* The id counters and the hash-cons table below are global, so they are
   guarded by a mutex: expressions may be built from several domains at
   once (per-worker proof engines, concurrent bench experiments). The
   lock is uncontended in single-domain runs. *)
let global_lock = Mutex.create ()
let next_signal_id = ref 0
let next_mem_id = ref 0

let signal name w =
  if w < 1 || w > Bitvec.max_width then
    invalid_arg (Printf.sprintf "Expr.signal %s: bad width %d" name w);
  Mutex.protect global_lock (fun () ->
      incr next_signal_id;
      { s_name = name; s_width = w; s_id = !next_signal_id })

let memory name ~addr_width ~data_width ~depth =
  if depth < 1 || (addr_width < Bitvec.max_width && depth > 1 lsl addr_width)
  then invalid_arg (Printf.sprintf "Expr.memory %s: bad depth %d" name depth);
  if data_width < 1 || data_width > Bitvec.max_width then
    invalid_arg (Printf.sprintf "Expr.memory %s: bad data width" name);
  Mutex.protect global_lock (fun () ->
      incr next_mem_id;
      {
        m_name = name;
        m_addr_width = addr_width;
        m_data_width = data_width;
        m_depth = depth;
        m_id = !next_mem_id;
      })

(* Hash-consing: structural key over the node shape with children
   identified by tag. *)
module Key = struct
  type k =
    | KConst of Bitvec.t
    | KInput of int
    | KParam of int
    | KReg of int
    | KMemread of int * int
    | KUnop of unop * int
    | KBinop of binop * int * int
    | KMux of int * int * int
    | KConcat of int * int
    | KSlice of int * int * int

  type key = { kw : int; kk : k }

  let of_node w = function
    | Const b -> { kw = w; kk = KConst b }
    | Input s -> { kw = w; kk = KInput s.s_id }
    | Param s -> { kw = w; kk = KParam s.s_id }
    | Reg s -> { kw = w; kk = KReg s.s_id }
    | Memread (m, a) -> { kw = w; kk = KMemread (m.m_id, a.tag) }
    | Unop (op, a) -> { kw = w; kk = KUnop (op, a.tag) }
    | Binop (op, a, b) -> { kw = w; kk = KBinop (op, a.tag, b.tag) }
    | Mux (s, a, b) -> { kw = w; kk = KMux (s.tag, a.tag, b.tag) }
    | Concat (a, b) -> { kw = w; kk = KConcat (a.tag, b.tag) }
    | Slice (a, hi, lo) -> { kw = w; kk = KSlice (a.tag, hi, lo) }

  let equal a b = a.kw = b.kw && a.kk = b.kk
  let hash a = Hashtbl.hash a
end

module Tbl = Hashtbl.Make (struct
  type t = Key.key

  let equal = Key.equal
  let hash = Key.hash
end)

let table : t Tbl.t = Tbl.create 4096
let next_tag = ref 0

let mk width node =
  let key = Key.of_node width node in
  Mutex.protect global_lock (fun () ->
      match Tbl.find_opt table key with
      | Some e -> e
      | None ->
          incr next_tag;
          let e = { tag = !next_tag; width; node } in
          Tbl.add table key e;
          e)

let const b = mk (Bitvec.width b) (Const b)
let of_int ~width v = const (Bitvec.of_int ~width v)
let zero w = of_int ~width:w 0
let one w = of_int ~width:w 1
let ones w = const (Bitvec.ones w)
let vdd = of_int ~width:1 1
let gnd = of_int ~width:1 0
let input s = mk s.s_width (Input s)
let param s = mk s.s_width (Param s)
let reg s = mk s.s_width (Reg s)

let memread m addr =
  if width addr <> m.m_addr_width then
    invalid_arg
      (Printf.sprintf "Expr.memread %s: address width %d, expected %d" m.m_name
         (width addr) m.m_addr_width);
  mk m.m_data_width (Memread (m, addr))

let as_const e = match e.node with Const b -> Some b | _ -> None

let unop op a =
  let w = match op with Not | Neg -> a.width | Redand | Redor | Redxor -> 1 in
  match as_const a with
  | Some b ->
      let f =
        match op with
        | Not -> Bitvec.lognot
        | Neg -> Bitvec.neg
        | Redand -> Bitvec.redand
        | Redor -> Bitvec.redor
        | Redxor -> Bitvec.redxor
      in
      const (f b)
  | None -> (
      match (op, a.node) with
      | Not, Unop (Not, x) -> x
      | _ -> mk w (Unop (op, a)))

let binop_eval op =
  match op with
  | Add -> Bitvec.add
  | Sub -> Bitvec.sub
  | Mul -> Bitvec.mul
  | And -> Bitvec.logand
  | Or -> Bitvec.logor
  | Xor -> Bitvec.logxor
  | Eq -> Bitvec.eq
  | Ne -> Bitvec.ne
  | Ult -> Bitvec.ult
  | Ule -> Bitvec.ule
  | Slt -> Bitvec.slt
  | Sle -> Bitvec.sle
  | Shl -> Bitvec.shl
  | Lshr -> Bitvec.lshr
  | Ashr -> Bitvec.ashr

let result_width op a =
  match op with
  | Add | Sub | Mul | And | Or | Xor | Shl | Lshr | Ashr -> a.width
  | Eq | Ne | Ult | Ule | Slt | Sle -> 1

let binop op a b =
  (match op with
  | Shl | Lshr | Ashr -> ()
  | _ ->
      if a.width <> b.width then
        invalid_arg
          (Printf.sprintf "Expr.binop: width mismatch %d vs %d" a.width b.width));
  match (as_const a, as_const b) with
  | Some x, Some y -> const (binop_eval op x y)
  | _ -> (
      (* Light algebraic simplification; keeps cones small. *)
      let is0 e = match as_const e with Some v -> Bitvec.is_zero v | None -> false in
      let isones e =
        match as_const e with
        | Some v -> Bitvec.equal v (Bitvec.ones (Bitvec.width v))
        | None -> false
      in
      match op with
      | Add when is0 a -> b
      | Add when is0 b -> a
      | Sub when is0 b -> a
      | And when is0 a || is0 b -> zero a.width
      | And when isones a -> b
      | And when isones b -> a
      | And when a.tag = b.tag -> a
      | Or when isones a || isones b -> ones a.width
      | Or when is0 a -> b
      | Or when is0 b -> a
      | Or when a.tag = b.tag -> a
      | Xor when is0 a -> b
      | Xor when is0 b -> a
      | Xor when a.tag = b.tag -> zero a.width
      | Eq when a.tag = b.tag -> vdd
      | Ne when a.tag = b.tag -> gnd
      | Ult when a.tag = b.tag -> gnd
      | Ule when a.tag = b.tag -> vdd
      | Shl when is0 b -> a
      | Lshr when is0 b -> a
      | Ashr when is0 b -> a
      | Add | Sub | Mul | And | Or | Xor | Eq | Ne | Ult | Ule | Slt | Sle
      | Shl | Lshr | Ashr ->
          mk (result_width op a) (Binop (op, a, b)))

let mux sel a b =
  if sel.width <> 1 then invalid_arg "Expr.mux: selector must be 1 bit";
  if a.width <> b.width then invalid_arg "Expr.mux: branch width mismatch";
  match as_const sel with
  | Some v -> if Bitvec.is_zero v then b else a
  | None -> if a.tag = b.tag then a else mk a.width (Mux (sel, a, b))

let concat hi lo =
  match (as_const hi, as_const lo) with
  | Some x, Some y -> const (Bitvec.concat x y)
  | _ -> mk (hi.width + lo.width) (Concat (hi, lo))

let rec slice e ~hi ~lo =
  if lo < 0 || hi >= e.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Expr.slice: [%d:%d] out of range for width %d" hi lo
         e.width);
  if lo = 0 && hi = e.width - 1 then e
  else
    match as_const e with
    | Some b -> const (Bitvec.slice b ~hi ~lo)
    | None -> (
        match e.node with
        | Concat (h, l) when lo >= l.width ->
            slice_shift h (hi - l.width) (lo - l.width)
        | Concat (_, l) when hi < l.width -> slice_shift l hi lo
        | Slice (inner, _, ilo) -> slice_shift inner (hi + ilo) (lo + ilo)
        | _ -> mk (hi - lo + 1) (Slice (e, hi, lo)))

and slice_shift e hi lo = slice e ~hi ~lo

let ( +: ) a b = binop Add a b
let ( -: ) a b = binop Sub a b
let ( *: ) a b = binop Mul a b
let ( &: ) a b = binop And a b
let ( |: ) a b = binop Or a b
let ( ^: ) a b = binop Xor a b
let ( ~: ) a = unop Not a
let ( ==: ) a b = binop Eq a b
let ( <>: ) a b = binop Ne a b
let ( <: ) a b = binop Ult a b
let ( <=: ) a b = binop Ule a b
let ( >: ) a b = binop Ult b a
let ( >=: ) a b = binop Ule b a
let slt a b = binop Slt a b
let sle a b = binop Sle a b
let shl a b = binop Shl a b
let lshr a b = binop Lshr a b
let ashr a b = binop Ashr a b
let bit e i = slice e ~hi:i ~lo:i

let zero_extend e w =
  if w < e.width then invalid_arg "Expr.zero_extend: narrower target";
  if w = e.width then e else concat (zero (w - e.width)) e

let sign_extend e w =
  if w < e.width then invalid_arg "Expr.sign_extend: narrower target";
  if w = e.width then e
  else
    let sign = bit e (e.width - 1) in
    let rec rep n acc = if n = 0 then acc else rep (n - 1) (concat sign acc) in
    rep (w - e.width) e

let uresize e w =
  if w = e.width then e
  else if w < e.width then slice e ~hi:(w - 1) ~lo:0
  else zero_extend e w

let and_list = function
  | [] -> vdd
  | e :: rest -> List.fold_left ( &: ) e rest

let or_list = function
  | [] -> gnd
  | e :: rest -> List.fold_left ( |: ) e rest

let mux_list sel ~default cases =
  let w = width sel in
  List.fold_left
    (fun acc (idx, value) -> mux (sel ==: of_int ~width:w idx) value acc)
    default cases

let equal a b = a.tag = b.tag

let size e =
  let seen = Hashtbl.create 64 in
  let rec go e =
    if Hashtbl.mem seen e.tag then ()
    else begin
      Hashtbl.add seen e.tag ();
      match e.node with
      | Const _ | Input _ | Param _ | Reg _ -> ()
      | Memread (_, a) | Unop (_, a) | Slice (a, _, _) -> go a
      | Binop (_, a, b) | Concat (a, b) ->
          go a;
          go b
      | Mux (s, a, b) ->
          go s;
          go a;
          go b
    end
  in
  go e;
  Hashtbl.length seen

let signals_equal a b = a.s_id = b.s_id
let compare_signal a b = Stdlib.compare a.s_id b.s_id
let mems_equal a b = a.m_id = b.m_id
let compare_mem a b = Stdlib.compare a.m_id b.m_id
