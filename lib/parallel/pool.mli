(** Domain pool with a work-stealing task queue.

    A pool owns [jobs - 1] worker domains (the caller's domain acts as
    worker 0 when [jobs = 1], in which case no domains are spawned and
    every [map] runs inline — sequential semantics, zero overhead).
    Tasks submitted by [map] are distributed round-robin over per-worker
    queues; an idle worker steals from its siblings before sleeping.

    Results are always returned in submission order, so callers get
    deterministic output regardless of scheduling. If any task raises,
    the exception of the lowest-indexed failing task is re-raised in the
    caller after all tasks of that [map] have settled — sibling results
    are complete, no worker dies, and the pool stays usable.

    {b Crash isolation.} A task that raises can never kill its worker
    domain: [map] captures the exception into the task's result slot,
    and exceptions escaping a bare {!submit} task are swallowed (counted
    by {!crashed}). {!shutdown} never raises, even on a pool whose
    [map] caller failed with tasks still queued — the workers drain the
    queue before stopping.

    {b Watchdog.} With [task_deadline] set, a dedicated watchdog domain
    polls worker progress and flags — it cannot kill — every task that
    runs past the deadline: {!stalled} counts them and [on_stall]
    (called as [on_stall wid elapsed], at most once per task) lets the
    caller log or escalate. *)

type t

val default_jobs : unit -> int
(** [UPEC_JOBS] from the environment if set to a positive integer,
    otherwise {!Domain.recommended_domain_count}. *)

val create :
  ?task_deadline:float -> ?on_stall:(int -> float -> unit) -> jobs:int -> unit -> t
(** Spawn a pool with [jobs] workers ([jobs >= 1]; values above the
    recommended domain count are allowed but rarely useful).
    [task_deadline] (seconds, default off) arms the watchdog. *)

val jobs : t -> int

val stalled : t -> int
(** Tasks flagged by the watchdog as exceeding their deadline so far. *)

val crashed : t -> int
(** Exceptions swallowed from bare {!submit} tasks (not [map] tasks,
    whose exceptions are delivered to the [map] caller). *)

val submit : t -> (int -> unit) -> unit
(** Enqueue a raw task (receives the worker id). Fire-and-forget: an
    exception it raises is swallowed and counted by {!crashed}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element, in parallel; blocks until all are done.
    Results are in submission (list) order. *)

val map_wid : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but [f] also receives the worker id (in
    [0 .. jobs-1]) running the task, for per-worker state such as
    proof engines that are not safe to share between domains. *)

val shutdown : t -> unit
(** Join all workers (after they drain any queued tasks). Idempotent;
    never raises. Using the pool afterwards raises. *)

val with_pool :
  ?task_deadline:float ->
  ?on_stall:(int -> float -> unit) ->
  jobs:int ->
  (t -> 'a) ->
  'a
(** [create], run, [shutdown] — also on exceptions, in which case the
    callback's exception (not a shutdown artifact) reaches the caller. *)
