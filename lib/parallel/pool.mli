(** Domain pool with a work-stealing task queue.

    A pool owns [jobs - 1] worker domains (the caller's domain acts as
    worker 0 when [jobs = 1], in which case no domains are spawned and
    every [map] runs inline — sequential semantics, zero overhead).
    Tasks submitted by [map] are distributed round-robin over per-worker
    queues; an idle worker steals from its siblings before sleeping.

    Results are always returned in submission order, so callers get
    deterministic output regardless of scheduling. If any task raises,
    the exception of the lowest-indexed failing task is re-raised in the
    caller after all tasks of that [map] have settled. *)

type t

val default_jobs : unit -> int
(** [UPEC_JOBS] from the environment if set to a positive integer,
    otherwise {!Domain.recommended_domain_count}. *)

val create : jobs:int -> t
(** Spawn a pool with [jobs] workers ([jobs >= 1]; values above the
    recommended domain count are allowed but rarely useful). *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Apply [f] to every element, in parallel; blocks until all are done.
    Results are in submission (list) order. *)

val map_wid : t -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but [f] also receives the worker id (in
    [0 .. jobs-1]) running the task, for per-worker state such as
    proof engines that are not safe to share between domains. *)

val shutdown : t -> unit
(** Join all workers. The pool must be idle; using it afterwards raises. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] — also on exceptions. *)
