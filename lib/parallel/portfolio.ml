module S = Satsolver.Solver

type verdict = Sat of bool array | Unsat | Unknown of string

type outcome = {
  verdict : verdict;
  winner : int;
  stats : S.stats;
  losers_stats : S.stats;
  proof : Cert.Proof.t option;
  cert : (Cert.Pipeline.summary, string) result option;
}

let default_configs k =
  let d = S.default_options in
  let variants =
    [|
      d;
      { d with init_polarity = true; restart_base = 64 };
      { d with restart_base = 512; var_decay = 0.99 };
      { d with use_phase_saving = false; restart_base = 32 };
      { d with init_polarity = true; use_minimization = false };
      { d with var_decay = 0.85; restart_base = 256 };
      { d with use_restarts = false };
      { d with init_polarity = true; var_decay = 0.99; restart_base = 1024 };
    |]
  in
  List.init (max 1 k) (fun i ->
      if i < Array.length variants then variants.(i)
      else
        (* Past the hand-picked set: cycle polarity and spread restarts. *)
        {
          d with
          init_polarity = i mod 2 = 1;
          restart_base = 32 * (1 + (i mod 6));
          var_decay = if i mod 3 = 0 then 0.93 else 0.97;
        })

(* Checker domains for one racer's pipeline, created lazily: a solve
   whose certificate never fills an epoch (the common tiny proof) pays
   for zero domains — its single epoch is checked inline at [finish].
   All hooks run on the racer's own thread, so the lazy cell is safe. *)
let pool_dispatch ~jobs =
  let pool = ref None in
  let get () =
    match !pool with
    | Some p -> p
    | None ->
        let p = Pool.create ~jobs () in
        pool := Some p;
        p
  in
  {
    Cert.Pipeline.d_run = (fun f -> Pool.submit (get ()) (fun _wid -> f ()));
    d_shutdown =
      (fun () ->
        match !pool with
        | Some p ->
            pool := None;
            Pool.shutdown p
        | None -> ());
  }

let run_config ~certify ~cert_jobs ~nvars ~clauses ~assumptions opts =
  let s = S.create ~options:opts () in
  (* the tracer must be live before clause loading so level-0
     strengthenings of the input clauses are part of the certificate *)
  let proof, pipe =
    if not certify then (None, None)
    else if cert_jobs > 0 then begin
      let p =
        Cert.Pipeline.create
          ~dispatch:(pool_dispatch ~jobs:cert_jobs)
          ~assumptions ~nvars ~clauses ()
      in
      S.set_tracer s (Some (Cert.Pipeline.tracer p));
      (None, Some p)
    end
    else begin
      let p = Cert.Proof.create () in
      S.set_tracer s (Some (Cert.Proof.tracer p));
      (Some p, None)
    end
  in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  (s, proof, pipe)

let m_races = Obs.Metrics.counter "portfolio.races"
let h_winner_margin = Obs.Metrics.histogram "portfolio.winner_margin_seconds"

(* Settle a racer's pipeline against its verdict: only an UNSAT winner
   is checked to completion; every other stream is cancelled
   cooperatively (in-flight shards notice and bail). *)
let settle_pipe pipe verdict =
  match pipe with
  | None -> None
  | Some p -> (
      match verdict with
      | Unsat -> Some (Cert.Pipeline.finish p)
      | Sat _ | Unknown _ ->
          Cert.Pipeline.cancel p;
          None)

let solve ?configs ?(certify = false) ?(cert_jobs = 0)
    ?(budget = S.no_budget) ?interrupt ~jobs ~nvars ~clauses ~assumptions ()
    =
  let configs =
    match configs with
    | Some (_ :: _ as cs) -> cs
    | Some [] | None -> default_configs (max 1 jobs)
  in
  let k = min (max 1 jobs) (List.length configs) in
  let configs = Array.of_list configs in
  if k <= 1 then begin
    (* Inline sequential solve with configuration 0. *)
    let s, proof, pipe =
      run_config ~certify ~cert_jobs ~nvars ~clauses ~assumptions configs.(0)
    in
    (match interrupt with
    | Some f -> S.set_terminate s (Some f)
    | None -> ());
    let verdict =
      match S.solve_bounded ~assumptions ~budget s with
      | S.Solved S.Sat -> Sat (Array.init nvars (S.value_var s))
      | S.Solved S.Unsat -> Unsat
      | S.Unknown reason -> Unknown reason
      | exception S.Interrupted -> Unknown "interrupted"
    in
    {
      verdict;
      winner = 0;
      stats = S.stats s;
      losers_stats = S.zero_stats;
      proof;
      cert = settle_pipe pipe verdict;
    }
  end
  else begin
    Obs.Metrics.incr m_races;
    let winner = Atomic.make (-1) in
    let t_win = Atomic.make 0.0 in
    let outcomes = Array.make k None in
    (* every racer — including cancelled losers and budget-exhausted
       ones — records its stats here before its domain exits; the join
       gives the happens-before edge that makes the reads below safe *)
    let all_stats = Array.make k S.zero_stats in
    let unknowns = Array.make k None in
    (* with pipelined certification, the checker domains are divided
       over the racers — each stream must be checked as it is produced,
       since any racer may turn out to be the winner *)
    let racer_cert_jobs = if cert_jobs > 0 then max 1 (cert_jobs / k) else 0 in
    let body i () =
      let s, proof, pipe =
        run_config ~certify ~cert_jobs:racer_cert_jobs ~nvars ~clauses
          ~assumptions configs.(i)
      in
      let cancelled () =
        Atomic.get winner >= 0
        || match interrupt with Some f -> f () | None -> false
      in
      S.set_terminate s (Some cancelled);
      (match S.solve_bounded ~assumptions ~budget s with
      | exception S.Interrupted ->
          (* a loser cancelled by the winner, or an external interrupt *)
          unknowns.(i) <- Some "interrupted";
          Option.iter Cert.Pipeline.cancel pipe
      | S.Unknown reason ->
          (* out of budget: this racer retires but MUST NOT abort the
             race — a sibling with different search dynamics may still
             decide the instance within the same budget *)
          unknowns.(i) <- Some reason;
          Option.iter Cert.Pipeline.cancel pipe
      | S.Solved r ->
          if Atomic.compare_and_set winner (-1) i then begin
            Atomic.set t_win (Unix.gettimeofday ());
            let verdict =
              match r with
              | S.Sat -> Sat (Array.init nvars (S.value_var s))
              | S.Unsat -> Unsat
            in
            (* only the winner's stream is checked to completion *)
            let cert = settle_pipe pipe verdict in
            outcomes.(i) <-
              Some
                {
                  verdict;
                  winner = i;
                  stats = S.stats s;
                  losers_stats = S.zero_stats;
                  proof;
                  cert;
                }
          end
          else Option.iter Cert.Pipeline.cancel pipe);
      all_stats.(i) <- S.stats s
    in
    Obs.Trace.with_span "portfolio.race"
      ~attrs:[ ("k", Obs.Trace.Int k) ]
      (fun () ->
        let doms = List.init k (fun i -> Domain.spawn (body i)) in
        List.iter Domain.join doms);
    let w = Atomic.get winner in
    (* Winner margin: how long the decided race kept spinning until the
       cancelled losers actually unwound and joined — the cost of
       cooperative (poll-based) cancellation. *)
    if w >= 0 then begin
      let tw = Atomic.get t_win in
      if tw > 0.0 then
        Obs.Metrics.observe h_winner_margin (Unix.gettimeofday () -. tw)
    end;
    if w < 0 then begin
      (* no racer decided: every configuration exhausted its budget (or
         was interrupted). Surface the first reason; the summed stats
         say what the whole race spent learning nothing. *)
      let reason =
        let rec first i =
          if i >= k then "budget exhausted"
          else match unknowns.(i) with Some r -> r | None -> first (i + 1)
        in
        first 0
      in
      let total = Array.fold_left S.add_stats S.zero_stats all_stats in
      {
        verdict = Unknown reason;
        winner = -1;
        stats = total;
        losers_stats = S.zero_stats;
        proof = None;
        cert = None;
      }
    end
    else
      match outcomes.(w) with
      | Some o ->
          let losers = ref S.zero_stats in
          Array.iteri
            (fun i st -> if i <> o.winner then losers := S.add_stats !losers st)
            all_stats;
          { o with losers_stats = !losers }
      | None -> assert false (* winner index always has an outcome *)
  end
