type task = { run : int -> unit }

type t = {
  n_jobs : int;
  queues : task Queue.t array;
  qlocks : Mutex.t array;
  pending : int Atomic.t;  (* enqueued, not yet popped *)
  sleep_mu : Mutex.t;
  sleep_cv : Condition.t;
  stop : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin submission cursor *)
  (* crash / stall accounting. running.(wid) is (start_time, generation)
     of the task the worker is executing, or (0., g) when idle; the
     generation lets the watchdog flag each overrunning task once. *)
  running : (float * int) Atomic.t array;
  task_deadline : float;  (* <= 0: no watchdog *)
  on_stall : (int -> float -> unit) option;
  stalled_count : int Atomic.t;
  crashed_count : int Atomic.t;  (* tasks that raised outside [map]'s net *)
  mutable domains : unit Domain.t list;
  mutable watchdog_dom : unit Domain.t option;
  mutable shut : bool;
}

let default_jobs () =
  match Sys.getenv_opt "UPEC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs
let stalled t = Atomic.get t.stalled_count
let crashed t = Atomic.get t.crashed_count

let m_tasks = Obs.Metrics.counter "pool.tasks"
let m_steals = Obs.Metrics.counter "pool.steals"
let g_queue_depth = Obs.Metrics.gauge "pool.queue_depth"
let h_task_seconds = Obs.Metrics.histogram "pool.task_seconds"

let try_pop t i =
  let mu = t.qlocks.(i) in
  Mutex.lock mu;
  let r = Queue.take_opt t.queues.(i) in
  Mutex.unlock mu;
  r

(* Own queue first, then a steal scan over siblings. *)
let find_task t wid =
  match try_pop t wid with
  | Some _ as r -> r
  | None ->
      let n = t.n_jobs in
      let rec scan k =
        if k = n then None
        else
          match try_pop t ((wid + k) mod n) with
          | Some _ as r ->
              Obs.Metrics.incr m_steals;
              r
          | None -> scan (k + 1)
      in
      scan 1

(* Run one task with full isolation: a raising task must never kill its
   worker domain — [map] catches its own exceptions into the result
   slot, so anything escaping here is a bare [submit] task, which has
   nowhere to deliver the exception anyway. *)
let run_isolated t wid task =
  let _, gen = Atomic.get t.running.(wid) in
  let t0 = Unix.gettimeofday () in
  Atomic.set t.running.(wid) (t0, gen + 1);
  Obs.Metrics.incr m_tasks;
  let body () =
    try task.run wid with _ -> Atomic.incr t.crashed_count
  in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "pool.task"
      ~attrs:[ ("worker", Obs.Trace.Int wid) ]
      body
  else body ();
  Obs.Metrics.observe h_task_seconds (Unix.gettimeofday () -. t0);
  Atomic.set t.running.(wid) (0., gen + 1)

let worker t wid =
  let continue = ref true in
  while !continue do
    match find_task t wid with
    | Some task ->
        Atomic.decr t.pending;
        run_isolated t wid task
    | None ->
        Mutex.lock t.sleep_mu;
        if Atomic.get t.stop then continue := false
        else if Atomic.get t.pending = 0 then Condition.wait t.sleep_cv t.sleep_mu;
        Mutex.unlock t.sleep_mu
  done

(* The watchdog polls worker progress a few times per deadline window
   and flags — it cannot kill — any task running past its deadline.
   Flagging is once per task: the generation counter distinguishes a
   long task from a fresh one on the same worker. *)
let watchdog t =
  let interval = Float.max 0.005 (Float.min 0.25 (t.task_deadline /. 4.)) in
  let flagged = Array.make t.n_jobs (-1) in
  while not (Atomic.get t.stop) do
    Unix.sleepf interval;
    let now = Unix.gettimeofday () in
    Array.iteri
      (fun wid cell ->
        let since, gen = Atomic.get cell in
        if since > 0. && now -. since > t.task_deadline && flagged.(wid) <> gen
        then begin
          flagged.(wid) <- gen;
          Atomic.incr t.stalled_count;
          match t.on_stall with
          | Some f -> ( try f wid (now -. since) with _ -> ())
          | None -> ()
        end)
      t.running
  done

let create ?(task_deadline = 0.) ?on_stall ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      queues = Array.init jobs (fun _ -> Queue.create ());
      qlocks = Array.init jobs (fun _ -> Mutex.create ());
      pending = Atomic.make 0;
      sleep_mu = Mutex.create ();
      sleep_cv = Condition.create ();
      stop = Atomic.make false;
      rr = Atomic.make 0;
      running = Array.init jobs (fun _ -> Atomic.make (0., 0));
      task_deadline;
      on_stall;
      stalled_count = Atomic.make 0;
      crashed_count = Atomic.make 0;
      domains = [];
      watchdog_dom = None;
      shut = false;
    }
  in
  if jobs > 1 then begin
    t.domains <-
      List.init jobs (fun wid -> Domain.spawn (fun () -> worker t wid));
    if task_deadline > 0. then
      t.watchdog_dom <- Some (Domain.spawn (fun () -> watchdog t))
  end;
  t

let submit_task t task =
  let i = Atomic.fetch_and_add t.rr 1 mod t.n_jobs in
  let mu = t.qlocks.(i) in
  Mutex.lock mu;
  Queue.add task t.queues.(i);
  Mutex.unlock mu;
  Atomic.incr t.pending;
  Obs.Metrics.set_gauge g_queue_depth (float_of_int (Atomic.get t.pending));
  Mutex.lock t.sleep_mu;
  Condition.broadcast t.sleep_cv;
  Mutex.unlock t.sleep_mu

let submit t f =
  if t.shut then invalid_arg "Pool.submit: pool is shut down";
  if t.n_jobs = 1 then run_isolated t 0 { run = f }
  else submit_task t { run = f }

let map_wid t f items =
  if t.shut then invalid_arg "Pool.map: pool is shut down";
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else if t.n_jobs = 1 then
    (* Inline: sequential semantics, no queueing, caller is worker 0. *)
    List.map (f 0) items
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_mu = Mutex.create () in
    let done_cv = Condition.create () in
    for i = 0 to n - 1 do
      submit_task t
        {
          run =
            (fun wid ->
              let r =
                try Ok (f wid arr.(i))
                with e -> Error (e, Printexc.get_raw_backtrace ())
              in
              results.(i) <- Some r;
              if Atomic.fetch_and_add remaining (-1) = 1 then begin
                Mutex.lock done_mu;
                Condition.broadcast done_cv;
                Mutex.unlock done_mu
              end);
        }
    done;
    Mutex.lock done_mu;
    while Atomic.get remaining > 0 do
      Condition.wait done_cv done_mu
    done;
    Mutex.unlock done_mu;
    (* Deterministic error choice: lowest submission index wins. All
       tasks have settled, so sibling results are complete — a caller
       catching the re-raise can keep using the pool. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | _ -> assert false (* all settled, none Error *))
         results)
  end

let map t f items = map_wid t (fun _ x -> f x) items

(* Never raises: joins are defensive, the call is idempotent, and a
   non-idle pool (queued tasks abandoned by a failed [map] caller) is
   drained by the workers before they observe [stop]. *)
let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Atomic.set t.stop true;
    Mutex.lock t.sleep_mu;
    Condition.broadcast t.sleep_cv;
    Mutex.unlock t.sleep_mu;
    List.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
    t.domains <- [];
    (match t.watchdog_dom with
    | Some d -> ( try Domain.join d with _ -> ())
    | None -> ());
    t.watchdog_dom <- None
  end

let with_pool ?task_deadline ?on_stall ~jobs f =
  let t = create ?task_deadline ?on_stall ~jobs () in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      (* shutdown never raises, so the callback's exception — not a
         masking [Finally_raised] — is what the caller sees *)
      let bt = Printexc.get_raw_backtrace () in
      shutdown t;
      Printexc.raise_with_backtrace e bt
