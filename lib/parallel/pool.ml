type task = { run : int -> unit }

type t = {
  n_jobs : int;
  queues : task Queue.t array;
  qlocks : Mutex.t array;
  pending : int Atomic.t;  (* enqueued, not yet popped *)
  sleep_mu : Mutex.t;
  sleep_cv : Condition.t;
  stop : bool Atomic.t;
  rr : int Atomic.t;  (* round-robin submission cursor *)
  mutable domains : unit Domain.t list;
  mutable shut : bool;
}

let default_jobs () =
  match Sys.getenv_opt "UPEC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let try_pop t i =
  let mu = t.qlocks.(i) in
  Mutex.lock mu;
  let r = Queue.take_opt t.queues.(i) in
  Mutex.unlock mu;
  r

(* Own queue first, then a steal scan over siblings. *)
let find_task t wid =
  match try_pop t wid with
  | Some _ as r -> r
  | None ->
      let n = t.n_jobs in
      let rec scan k =
        if k = n then None
        else
          match try_pop t ((wid + k) mod n) with
          | Some _ as r -> r
          | None -> scan (k + 1)
      in
      scan 1

let worker t wid =
  let continue = ref true in
  while !continue do
    match find_task t wid with
    | Some task ->
        Atomic.decr t.pending;
        task.run wid
    | None ->
        Mutex.lock t.sleep_mu;
        if Atomic.get t.stop then continue := false
        else if Atomic.get t.pending = 0 then Condition.wait t.sleep_cv t.sleep_mu;
        Mutex.unlock t.sleep_mu
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      n_jobs = jobs;
      queues = Array.init jobs (fun _ -> Queue.create ());
      qlocks = Array.init jobs (fun _ -> Mutex.create ());
      pending = Atomic.make 0;
      sleep_mu = Mutex.create ();
      sleep_cv = Condition.create ();
      stop = Atomic.make false;
      rr = Atomic.make 0;
      domains = [];
      shut = false;
    }
  in
  if jobs > 1 then
    t.domains <-
      List.init jobs (fun wid -> Domain.spawn (fun () -> worker t wid));
  t

let submit t task =
  let i = Atomic.fetch_and_add t.rr 1 mod t.n_jobs in
  let mu = t.qlocks.(i) in
  Mutex.lock mu;
  Queue.add task t.queues.(i);
  Mutex.unlock mu;
  Atomic.incr t.pending;
  Mutex.lock t.sleep_mu;
  Condition.broadcast t.sleep_cv;
  Mutex.unlock t.sleep_mu

let map_wid t f items =
  if t.shut then invalid_arg "Pool.map: pool is shut down";
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else if t.n_jobs = 1 then
    (* Inline: sequential semantics, no queueing, caller is worker 0. *)
    List.map (f 0) items
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_mu = Mutex.create () in
    let done_cv = Condition.create () in
    for i = 0 to n - 1 do
      submit t
        {
          run =
            (fun wid ->
              let r =
                try Ok (f wid arr.(i))
                with e -> Error (e, Printexc.get_raw_backtrace ())
              in
              results.(i) <- Some r;
              if Atomic.fetch_and_add remaining (-1) = 1 then begin
                Mutex.lock done_mu;
                Condition.broadcast done_cv;
                Mutex.unlock done_mu
              end);
        }
    done;
    Mutex.lock done_mu;
    while Atomic.get remaining > 0 do
      Condition.wait done_cv done_mu
    done;
    Mutex.unlock done_mu;
    (* Deterministic error choice: lowest submission index wins. *)
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | _ -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | _ -> assert false (* all settled, none Error *))
         results)
  end

let map t f items = map_wid t (fun _ x -> f x) items

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Atomic.set t.stop true;
    Mutex.lock t.sleep_mu;
    Condition.broadcast t.sleep_cv;
    Mutex.unlock t.sleep_mu;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
