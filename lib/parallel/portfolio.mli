(** Portfolio SAT: race diversified solver configurations on one CNF.

    Every configuration is a complete, sound CDCL solver, so the
    verdict is deterministic — identical to a sequential solve — even
    though which configuration finishes first (and hence the reported
    model and statistics) depends on scheduling. The first finisher
    publishes itself through an atomic flag; the losers poll it via
    {!Satsolver.Solver.set_terminate} and abandon their search. *)

type verdict =
  | Sat of bool array  (** model, indexed by variable *)
  | Unsat
  | Unknown of string
      (** no racer decided within its budget (or all were interrupted);
          the string names the exhausted resource *)

type outcome = {
  verdict : verdict;
  winner : int;  (** -1 when the verdict is [Unknown] *)
  stats : Satsolver.Solver.stats;
      (** the winner's counters; for [Unknown], the summed counters of
          every racer — the work spent learning nothing *)
  losers_stats : Satsolver.Solver.stats;
      (** summed counters of every losing configuration — the wasted
          work the race paid for its latency win; zero when [jobs <= 1] *)
  proof : Cert.Proof.t option;
      (** the winner's recorded DRUP certificate when [certify] was set
          and [cert_jobs = 0] (post-hoc checking mode) *)
  cert : (Cert.Pipeline.summary, string) result option;
      (** pipelined mode ([certify] with [cert_jobs > 0]): the result of
          checking the winner's stream, present exactly when the verdict
          is [Unsat]. [Ok] means the certificate was validated while (and
          just after) the solver ran; [Error] carries the failing epoch
          and step. *)
}

val default_configs : int -> Satsolver.Solver.options list
(** [default_configs k] returns [k] configurations. Configuration 0 is
    always {!Satsolver.Solver.default_options}; the rest vary restart
    pacing, decay, phase saving, initial polarity and clause
    minimisation. VSIDS is never disabled: index-order branching is
    hopeless at proof-obligation sizes. *)

val solve :
  ?configs:Satsolver.Solver.options list ->
  ?certify:bool ->
  ?cert_jobs:int ->
  ?budget:Satsolver.Solver.budget ->
  ?interrupt:(unit -> bool) ->
  jobs:int ->
  nvars:int ->
  clauses:Satsolver.Lit.t list list ->
  assumptions:Satsolver.Lit.t list ->
  unit ->
  outcome
(** Race [min jobs (length configs)] configurations, each in its own
    domain with its own solver over a private copy of the CNF. With
    [jobs <= 1] only configuration 0 runs, inline — bit-for-bit the
    sequential solve. With [certify], every racer records a DRUP
    certificate and the winner's is returned — the proof that is
    checked is always the proof of the solver whose verdict is
    reported.

    [cert_jobs > 0] switches certification from post-hoc recording to
    the pipelined checker ({!Cert.Pipeline}): each racer streams its
    certificate into checker shards on [max 1 (cert_jobs / k)] pool
    domains while it searches. Only the winner's stream is checked to
    completion (its result lands in [cert]); losers' streams are
    cancelled cooperatively, leaving no stuck domains. The checker
    pool of a racer is created lazily at its first full epoch, so
    small proofs pay for no extra domains.

    [budget] applies to every racer independently. A racer that runs
    out of budget retires quietly; it never aborts the race. The
    outcome is [Unknown] only when {e no} configuration decides the
    instance. [interrupt] is polled by every racer and cancels the
    whole race cooperatively (outcome [Unknown "interrupted"] if no
    winner had been published). *)
