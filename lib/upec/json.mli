(** Minimal dependency-free JSON: tree, pretty emitter, strict parser.

    Backs the machine-readable report artefact ({!Report.to_json}) and
    its round-trip test; not a general-purpose JSON library. Numbers
    are kept as [Int] when they parse exactly as OCaml ints, [Float]
    otherwise; non-finite floats emit as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline, stable key
    order (insertion order of the [Obj] list). *)

val to_string_compact : t -> string
(** Single-line form (no newlines, no trailing newline) for
    line-delimited-JSON protocols such as the proof farm's. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parse of a complete JSON document; raises {!Parse_error}
    with an offset on malformed input or trailing garbage. [\u]
    escapes outside the BMP are not supported. *)

(** {1 Accessors} *)

val member : string -> t -> t
(** [member k (Obj ...)] is the value bound to [k], or [Null] when the
    key is absent or the value is not an object. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val schema_version : supported:int list -> t -> int
(** Strict version gate for schema-stamped documents (reports, matrix
    artefacts): returns the value of the ["schema"] member when it is
    an integer listed in [supported], raises {!Parse_error} otherwise
    — a missing member is an error, not a default. Report consumers
    pass [~supported:[2; 3]]: schema 3 only appends optional members,
    so every schema-2 report is also a valid schema-3 document. *)
