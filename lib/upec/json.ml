(* Minimal JSON tree, emitter and parser — enough for the machine-
   readable report artefact and its round-trip test. No external
   dependencies by design. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emitter ---------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s

let rec emit b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          emit b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          emit b (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  emit b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Single-line form for line-delimited protocols: no newlines anywhere
   inside the document (strings escape theirs), no trailing newline. *)
let rec emit_compact b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit_compact b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          emit_compact b x)
        kvs;
      Buffer.add_char b '}'

let to_string_compact v =
  let b = Buffer.create 1024 in
  emit_compact b v;
  Buffer.contents b

(* ---------- parser ---------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    &&
    match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s && String.sub c.s c.pos n = word
  then (
    c.pos <- c.pos + n;
    v)
  else fail c ("expected " ^ word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> (
        if c.pos >= String.length c.s then fail c "unterminated escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        match e with
        | '"' | '\\' | '/' ->
            Buffer.add_char b e;
            go ()
        | 'n' ->
            Buffer.add_char b '\n';
            go ()
        | 'r' ->
            Buffer.add_char b '\r';
            go ()
        | 't' ->
            Buffer.add_char b '\t';
            go ()
        | 'b' ->
            Buffer.add_char b '\b';
            go ()
        | 'f' ->
            Buffer.add_char b '\012';
            go ()
        | 'u' ->
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            (* BMP-only UTF-8 encoding; the reports never emit
               surrogate pairs *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then (
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))));
            go ()
        | _ -> fail c "bad escape")
    | c0 ->
        Buffer.add_char b c0;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.s && is_num_char c.s.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  if tok = "" then fail c "expected number";
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail c ("bad number " ^ tok))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then (
        expect c '}';
        Obj [])
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              expect c ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect c '}';
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then (
        expect c ']';
        List [])
      else
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              expect c ',';
              elements (v :: acc)
          | Some ']' ->
              expect c ']';
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        elements []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---------- accessors (for tests and tooling) ---------- *)

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

(* ---------- schema versioning ---------- *)

let schema_version ~supported j =
  match to_int (member "schema" j) with
  | None -> raise (Parse_error "schema: missing or non-integer version member")
  | Some v ->
      if List.mem v supported then v
      else
        raise
          (Parse_error
             (Printf.sprintf "schema: unsupported version %d (supported: %s)" v
                (String.concat ", " (List.map string_of_int supported))))
