open Rtl

(** The UPEC-SSC property macros of Fig. 3 / Fig. 4, lowered onto an
    {!Ipc.Engine.t} two-instance session. *)

val assume_env : Ipc.Engine.t -> Spec.t -> frames:int -> unit
(** Assume the Expr-level environment (well-formedness, threat model,
    policy, invariants) in both instances at every cycle [0..frames]. *)

val assume_env_at : Ipc.Engine.t -> Spec.t -> frame:int -> unit
(** The same constraint at one cycle only — the building block
    incremental sessions use to extend an existing engine when the
    unrolling depth grows. *)

val primary_input_constraints : Ipc.Engine.t -> Spec.t -> frame:int -> unit
(** Inputs other than the victim port are equal between the instances
    at the given cycle. *)

val victim_task_executing : Ipc.Engine.t -> Spec.t -> frame:int -> unit
(** The Fig. 3 macro at one cycle: request/write-enable equal; both
    instances access protected addresses at the same times; accesses
    outside the protected range are identical; protected accesses are
    unconstrained (the confidential information). *)

val victim_port_equal : Ipc.Engine.t -> Spec.t -> frame:int -> unit
(** Victim port fully equal (used beyond cycle t+1 in the unrolled
    property, Fig. 4). *)

val assume_reset_state : Ipc.Engine.t -> Spec.t -> unit
(** Pin cycle 0 of both instances to the reset state (registers to
    their reset values, memories to zero). This turns the IPC check
    into plain bounded model checking — provided for the E9 comparison:
    with a concrete start the spying IPs are unconfigured inside any
    short window, so the 2-cycle property sees nothing, which is
    exactly why UPEC-SSC's symbolic starting state (subsuming the whole
    preparation phase) is load-bearing. *)

val sv_condition :
  Ipc.Engine.t -> Spec.t -> frame:int -> Structural.svar -> Aig.lit
(** The equal-or-protected condition for one state variable at one
    cycle (the conjunct State_Equivalence is built from). *)

val state_equivalence_assume :
  Ipc.Engine.t -> Spec.t -> frame:int -> Structural.Svar_set.t -> unit
(** State_Equivalence(S) as an assumption: every state variable in S is
    equal between the instances, except memory cells inside the
    symbolic protected range. *)

val state_equivalence_goal :
  Ipc.Engine.t -> Spec.t -> frame:int -> Structural.Svar_set.t -> Aig.lit
(** The same condition as a proof obligation literal. *)

val violations :
  Ipc.Engine.t ->
  Spec.t ->
  Ipc.Cex.t ->
  frame:int ->
  Structural.Svar_set.t ->
  Structural.Svar_set.t
(** S_cex: the state variables of S whose values differ at the given
    cycle in the counterexample and which are not protected-range cells
    under the counterexample's parameter valuation. *)

val cell_guard_concrete : Spec.t -> Ipc.Cex.t -> Structural.svar -> bool
(** Is this state variable a protected-range memory cell under the
    counterexample's parameters? *)
