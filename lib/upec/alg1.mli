open Rtl

(** Algorithm 1: the fixed-point UPEC-SSC procedure over the two-cycle
    property of Fig. 3.

    Starting from S = S_not_victim (or a caller-provided S, e.g. the
    result of the unrolled procedure for the final induction step), each
    iteration checks the 2-cycle property for the current S. A failing
    check yields S_cex; persistent hits mean the design is vulnerable;
    otherwise S_cex is removed from S and the check repeats. When the
    property holds, it is inductive for the final S, which proves —
    with unbounded validity — that the victim cannot influence any
    attacker-visible persistent state (the induction base being the
    cycle before the victim's first transaction). *)

type svar_cache = {
  sc_lookup : Structural.svar -> s:Structural.Svar_set.t -> bool option;
      (** [Some holds] answers the per-svar check [check(sv, S)]
          without solving; [None] forces a fresh solve *)
  sc_store : Structural.svar -> s:Structural.Svar_set.t -> holds:bool -> unit;
      (** called for every freshly decided check; Unknown results are
          never offered (exhaustion is a property of the budget, not
          the formula) *)
}
(** Memoisation hook for the per-svar strategy, used by the proof farm
    ({!Farm.Exec}) with {!Fingerprint.check_key}-addressed lemmas. A
    sound cache must only answer when the design content the check
    depends on is unchanged; the hook itself is trusted. Only the
    per-svar strategy ([Options.jobs = Some _]) consults it — the
    monolithic strategies solve one formula for all of S, which no
    per-svar lemma answers. *)

val run_with :
  ?initial_s:Structural.Svar_set.t ->
  ?resume:Checkpoint.t ->
  ?svar_cache:svar_cache ->
  Options.t ->
  Spec.t ->
  Report.run
(** The primary entry point; every knob lives in {!Options.t}
    (strategy, problem reduction, certification, budgets, checkpoints
    — see there). [initial_s] overrides the starting set (used by
    {!Alg2.conclude_with} for the final induction); [resume] restarts
    from a checkpoint, verifying its config hash ([Invalid_argument]
    on mismatch) — the final verdict is identical to an uninterrupted
    run's. [Options.max_k] and [Options.reset_start] are Alg2-only and
    ignored here.

    {b Strategy selection.} [Options.jobs = Some j] decides every
    state variable of S independently on a pool of [j] workers
    (verdicts are semantic facts, so the refinement trace and verdict
    are identical for every job count); [None] runs one monolithic
    check per iteration, reusing a single warm solver session across
    iterations when [Options.incremental] is set.

    {b Resource governance.} Every SAT call runs under
    [Options.budget] with escalating retries; a svar still undecided
    after the last retry is degraded — kept in the equivalence
    assumption, no longer checked, recorded in [Report.unknowns] —
    and any degraded svar turns a would-be Secure verdict into
    [Inconclusive]. A Vulnerable verdict rests on a concrete validated
    witness and stands. The run never hangs, crashes or aborts on
    exhaustion.

    {b Interrupts.} [Options.should_stop] is polled from inside every
    solve; when it fires, in-flight solves unwind cooperatively, the
    partially-completed iteration is discarded (the checkpoint keeps
    the last {e completed} iteration) and the run returns
    [Inconclusive "interrupted"]. *)

val run :
  ?initial_s:Structural.Svar_set.t ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?incremental:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run
(** Legacy optional-argument surface with its historical defaults
    ([max_iterations] 64, [incremental] false); forwards to
    {!run_with}. Problem reduction is on — it never changes verdicts.
    @deprecated Use {!run_with} with an {!Options.t} record. *)
