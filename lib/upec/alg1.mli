open Rtl

(** Algorithm 1: the fixed-point UPEC-SSC procedure over the two-cycle
    property of Fig. 3.

    Starting from S = S_not_victim (or a caller-provided S, e.g. the
    result of the unrolled procedure for the final induction step), each
    iteration checks the 2-cycle property for the current S. A failing
    check yields S_cex; persistent hits mean the design is vulnerable;
    otherwise S_cex is removed from S and the check repeats. When the
    property holds, it is inductive for the final S, which proves —
    with unbounded validity — that the victim cannot influence any
    attacker-visible persistent state (the induction base being the
    cycle before the victim's first transaction). *)

val run :
  ?initial_s:Structural.Svar_set.t ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?incremental:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run
(** [incremental] (default [false], matching the paper's per-iteration
    tool runs) keeps a single solver session across iterations: the
    State_Equivalence(S) assumption is passed as solver assumptions and
    each iteration's obligation is armed by an activation literal, so
    learnt clauses are reused as S shrinks. Verdicts are identical
    either way; the bench harness compares the runtimes.

    [jobs] selects the per-svar strategy: every iteration decides
    independently, for each state variable in S, whether it can differ
    at cycle 1 — those checks run on a pool of [jobs] workers, each
    with its own engine (AIG and solver state are not shareable between
    domains). Per-svar verdicts are semantic, so the refinement trace,
    the final S and the verdict are identical for every [jobs] value;
    [jobs = 1] runs the same strategy sequentially. Omitting [jobs]
    keeps the monolithic single-check iteration.

    [portfolio] (default 1) races that many diversified solver
    configurations inside every SAT call (orthogonal to [jobs]).

    [certify] (default [false]) makes every verdict self-checking:
    UNSAT solver results are revalidated by the independent RUP checker
    ({!Cert.Rup}), SAT models by clause evaluation, and a vulnerable
    verdict's counterexample is replayed through the standalone
    simulator ({!Certval.validate}) — a rejected replay downgrades the
    verdict to [Inconclusive]. Accounting lands in [Report.cert].
    [cex_vcd] (implies waveform dumping even without [certify]) writes
    paired [<prefix>.A.vcd] / [<prefix>.B.vcd] traces of the validated
    counterexample.

    {b Resource governance.} [budget] (default unlimited) bounds every
    SAT call; a call that exhausts it is retried up to [budget_retries]
    (default 2) more times with the limits scaled by [budget_escalation]
    (default 4.0) each attempt. In the per-svar strategy a svar still
    undecided after the last retry is degraded: it stays in S — and
    with it in the cycle-0 equality assumption, so no spurious
    divergence can be manufactured by weakened assumptions — but is no
    longer checked, and is recorded in [Report.unknowns]. Any degraded
    svar turns a would-be Secure verdict into [Inconclusive] (the fixed
    point assumed its equality without proving it); a Vulnerable
    verdict rests on a concrete validated witness and stands. In the
    monolithic strategies an exhausted check ends the run
    [Inconclusive] since exhaustion cannot be attributed to one svar.
    The run never hangs, crashes or aborts on exhaustion.

    {b Checkpoint/resume.} [checkpoint_file] persists the iteration
    frontier after every completed iteration (atomically — see
    {!Checkpoint}). [resume] restarts from such a state: the config
    hash is verified ([Invalid_argument] on mismatch) and the final
    verdict is identical to an uninterrupted run's. [should_stop] is
    polled from inside every solve; when it fires, in-flight solves
    unwind cooperatively, the partially-completed iteration is
    discarded (the checkpoint keeps the last {e completed} iteration)
    and the run returns [Inconclusive "interrupted"]. *)
