open Rtl

(** Algorithm 1: the fixed-point UPEC-SSC procedure over the two-cycle
    property of Fig. 3.

    Starting from S = S_not_victim (or a caller-provided S, e.g. the
    result of the unrolled procedure for the final induction step), each
    iteration checks the 2-cycle property for the current S. A failing
    check yields S_cex; persistent hits mean the design is vulnerable;
    otherwise S_cex is removed from S and the check repeats. When the
    property holds, it is inductive for the final S, which proves —
    with unbounded validity — that the victim cannot influence any
    attacker-visible persistent state (the induction base being the
    cycle before the victim's first transaction). *)

val run :
  ?initial_s:Structural.Svar_set.t ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?incremental:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  Spec.t ->
  Report.run
(** [incremental] (default [false], matching the paper's per-iteration
    tool runs) keeps a single solver session across iterations: the
    State_Equivalence(S) assumption is passed as solver assumptions and
    each iteration's obligation is armed by an activation literal, so
    learnt clauses are reused as S shrinks. Verdicts are identical
    either way; the bench harness compares the runtimes.

    [jobs] selects the per-svar strategy: every iteration decides
    independently, for each state variable in S, whether it can differ
    at cycle 1 — those checks run on a pool of [jobs] workers, each
    with its own engine (AIG and solver state are not shareable between
    domains). Per-svar verdicts are semantic, so the refinement trace,
    the final S and the verdict are identical for every [jobs] value;
    [jobs = 1] runs the same strategy sequentially. Omitting [jobs]
    keeps the monolithic single-check iteration.

    [portfolio] (default 1) races that many diversified solver
    configurations inside every SAT call (orthogonal to [jobs]).

    [certify] (default [false]) makes every verdict self-checking:
    UNSAT solver results are revalidated by the independent RUP checker
    ({!Cert.Rup}), SAT models by clause evaluation, and a vulnerable
    verdict's counterexample is replayed through the standalone
    simulator ({!Certval.validate}) — a rejected replay downgrades the
    verdict to [Inconclusive]. Accounting lands in [Report.cert].
    [cex_vcd] (implies waveform dumping even without [certify]) writes
    paired [<prefix>.A.vcd] / [<prefix>.B.vcd] traces of the validated
    counterexample. *)
