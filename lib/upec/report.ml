open Rtl

type step = {
  st_iter : int;
  st_k : int;
  st_s_size : int;
  st_cex : Structural.Svar_set.t;
  st_pers_hit : Structural.Svar_set.t;
  st_unknown : Structural.Svar_set.t;
  st_seconds : float;
  st_stats : Satsolver.Solver.stats option;
  st_winner : int option;
  st_losers : Satsolver.Solver.stats option;
}

type verdict =
  | Secure of { s_final : Structural.Svar_set.t }
  | Vulnerable of { s_cex : Structural.Svar_set.t; cex : Ipc.Cex.t }
  | Inconclusive of string

type cert_info = {
  ct_totals : Cert.Proof.totals;
  ct_cex_validated : bool option;
}

type cache_info = {
  ca_fingerprint : string;
  ca_report_hit : bool;
  ca_lemma_hits : int;
  ca_lemma_misses : int;
  ca_invalidated : int;
  ca_cached_svars : string list;
}

type run = {
  procedure : string;
  variant : Spec.variant;
  verdict : verdict;
  steps : step list;
  total_seconds : float;
  state_bits : int;
  svar_count : int;
  cert : cert_info option;
  unknowns : (string * string) list;
  resumed_from : int option;
  metrics : Obs.Metrics.snapshot option;
  options : Options.t option;
  simp : Simp.reduction option;
  cache : cache_info option;
  extra : (string * Json.t) list;
}

let merge_cert a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b ->
      Some
        {
          ct_totals = Cert.Proof.add_totals a.ct_totals b.ct_totals;
          ct_cex_validated =
            (match b.ct_cex_validated with
            | Some _ as s -> s
            | None -> a.ct_cex_validated);
        }

let is_secure r = match r.verdict with Secure _ -> true | _ -> false
let is_vulnerable r = match r.verdict with Vulnerable _ -> true | _ -> false
let iterations r = List.length r.steps

let final_k r =
  List.fold_left (fun acc s -> max acc s.st_k) 0 r.steps

let variant_name = function
  | Spec.Vulnerable -> "baseline (no countermeasure)"
  | Spec.Secure -> "with countermeasure (Sec. 4.2)"

let pp_verdict fmt = function
  | Secure { s_final } ->
      Format.fprintf fmt "SECURE (inductive for |S| = %d)"
        (Structural.Svar_set.cardinal s_final)
  | Vulnerable { s_cex; _ } ->
      Format.fprintf fmt "VULNERABLE (S_cex ∩ S_pers: %a)"
        Structural.pp_svar_set s_cex
  | Inconclusive msg -> Format.fprintf fmt "INCONCLUSIVE (%s)" msg

let pp_summary fmt r =
  Format.fprintf fmt "%s [%s]: %a, %d iteration(s), %.2fs" r.procedure
    (variant_name r.variant) pp_verdict r.verdict (iterations r)
    r.total_seconds

let pp fmt r =
  Format.fprintf fmt "@[<v>=== %s on SoC (%d state bits, %d state vars) ===@,"
    r.procedure r.state_bits r.svar_count;
  Format.fprintf fmt "variant: %s@," (variant_name r.variant);
  Format.fprintf fmt "iter  k   |S|    |S_cex|  unk  persistent hits  time@,";
  List.iter
    (fun s ->
      Format.fprintf fmt "%4d  %d  %5d  %7d  %3d  %15s  %6.2fs@," s.st_iter
        s.st_k s.st_s_size
        (Structural.Svar_set.cardinal s.st_cex)
        (Structural.Svar_set.cardinal s.st_unknown)
        (if Structural.Svar_set.is_empty s.st_pers_hit then "-"
         else
           Format.asprintf "%a" Structural.pp_svar_set s.st_pers_hit)
        s.st_seconds)
    r.steps;
  Format.fprintf fmt "verdict: %a@," pp_verdict r.verdict;
  (match r.resumed_from with
  | Some iter -> Format.fprintf fmt "resumed from iteration %d@," iter
  | None -> ());
  (match r.unknowns with
  | [] -> ()
  | us ->
      Format.fprintf fmt
        "%d check(s) left UNKNOWN (assumed but no longer checked):@,"
        (List.length us);
      List.iter
        (fun (name, reason) -> Format.fprintf fmt "  %s: %s@," name reason)
        us);
  (match r.verdict with
  | Vulnerable { cex; s_cex } ->
      Format.fprintf fmt "S_cex: %a@," Structural.pp_svar_set s_cex;
      Format.fprintf fmt "%a@," Ipc.Cex.pp cex
  | Secure _ | Inconclusive _ -> ());
  (match r.cert with
  | None -> ()
  | Some c ->
      Format.fprintf fmt "certification: %a@," Cert.Proof.pp_totals c.ct_totals;
      Format.fprintf fmt "counterexample validation: %s@,"
        (match c.ct_cex_validated with
        | Some true -> "PASSED (simulator replay reproduces the divergence)"
        | Some false -> "FAILED"
        | None -> "n/a (no counterexample)"));
  (match r.simp with
  | None -> ()
  | Some red when red.Simp.red_solves > 0 ->
      Format.fprintf fmt "reduction: %a@," Simp.pp_reduction red
  | Some _ -> ());
  Format.fprintf fmt "total: %.2fs@]" r.total_seconds

(* ---------- machine-readable artefact (schema 3) ---------- *)

let schema_version = 3

let svar_set_json s =
  Json.List
    (List.map
       (fun sv -> Json.Str (Structural.svar_name sv))
       (Structural.Svar_set.elements s))

let verdict_json = function
  | Secure { s_final } ->
      Json.Obj
        [ ("kind", Json.Str "secure"); ("s_final", svar_set_json s_final) ]
  | Vulnerable { s_cex; cex } ->
      Json.Obj
        [
          ("kind", Json.Str "vulnerable");
          ("s_cex", svar_set_json s_cex);
          ("cex_frames", Json.Int (Ipc.Cex.frames cex));
        ]
  | Inconclusive reason ->
      Json.Obj
        [ ("kind", Json.Str "inconclusive"); ("reason", Json.Str reason) ]

let step_json s =
  Json.Obj
    [
      ("iter", Json.Int s.st_iter);
      ("k", Json.Int s.st_k);
      ("s_size", Json.Int s.st_s_size);
      ("cex", svar_set_json s.st_cex);
      ("pers_hit", svar_set_json s.st_pers_hit);
      ("unknown", svar_set_json s.st_unknown);
      ("seconds", Json.Float s.st_seconds);
    ]

let opt f = function None -> Json.Null | Some x -> f x

let budget_json (b : Satsolver.Solver.budget) =
  Json.Obj
    [
      ("max_conflicts", Json.Int b.Satsolver.Solver.max_conflicts);
      ("max_propagations", Json.Int b.Satsolver.Solver.max_propagations);
      ("max_seconds", Json.Float b.Satsolver.Solver.max_seconds);
    ]

let options_json (o : Options.t) =
  Json.Obj
    [
      ("max_iterations", Json.Int o.Options.max_iterations);
      ("max_k", Json.Int o.Options.max_k);
      ( "solver_options",
        Json.Str
          (match o.Options.solver_options with
          | Some _ -> "custom"
          | None -> "default") );
      ("incremental", Json.Bool o.Options.incremental);
      ("simp", Json.Bool o.Options.simp);
      ("jobs", opt (fun j -> Json.Int j) o.Options.jobs);
      ("portfolio", Json.Int o.Options.portfolio);
      ("certify", Json.Bool o.Options.certify);
      ("cert_jobs", Json.Int o.Options.cert_jobs);
      ("cex_vcd", opt (fun s -> Json.Str s) o.Options.cex_vcd);
      ("budget", budget_json o.Options.budget);
      ("budget_retries", Json.Int o.Options.budget_retries);
      ("budget_escalation", Json.Float o.Options.budget_escalation);
      ("checkpoint_file", opt (fun s -> Json.Str s) o.Options.checkpoint_file);
      ("reset_start", Json.Bool o.Options.reset_start);
    ]

let simp_json (red : Simp.reduction) =
  Json.Obj
    [
      ("reduced_solves", Json.Int red.Simp.red_solves);
      ("full_vars", Json.Int red.Simp.red_full_vars);
      ("full_clauses", Json.Int red.Simp.red_full_clauses);
      ("reduced_vars", Json.Int red.Simp.red_vars);
      ("reduced_clauses", Json.Int red.Simp.red_clauses);
    ]

let cert_json ~cert_jobs c =
  let t = c.ct_totals in
  let overhead =
    if t.Cert.Proof.solve_seconds > 0.0 then
      100.0 *. t.Cert.Proof.check_seconds /. t.Cert.Proof.solve_seconds
    else 0.0
  in
  Json.Obj
    [
      ("unsat_checked", Json.Int t.Cert.Proof.unsat_checked);
      ("sat_checked", Json.Int t.Cert.Proof.sat_checked);
      ("unknown_skipped", Json.Int t.Cert.Proof.unknown_skipped);
      ("proof_steps", Json.Int t.Cert.Proof.proof_steps);
      ("proof_lits", Json.Int t.Cert.Proof.proof_lits);
      ("cert_jobs", Json.Int cert_jobs);
      ("epochs", Json.Int t.Cert.Proof.epochs);
      ("spilled_epochs", Json.Int t.Cert.Proof.spilled_epochs);
      ("solve_seconds", Json.Float t.Cert.Proof.solve_seconds);
      ("check_seconds", Json.Float t.Cert.Proof.check_seconds);
      ("check_overhead_percent", Json.Float overhead);
      ("cex_validated", opt (fun b -> Json.Bool b) c.ct_cex_validated);
    ]

let cache_json (c : cache_info) =
  Json.Obj
    [
      ("fingerprint", Json.Str c.ca_fingerprint);
      ("report_hit", Json.Bool c.ca_report_hit);
      ("lemma_hits", Json.Int c.ca_lemma_hits);
      ("lemma_misses", Json.Int c.ca_lemma_misses);
      ("invalidated", Json.Int c.ca_invalidated);
      ( "cached_svars",
        Json.List
          (List.map
             (fun n ->
               Json.Obj [ ("name", Json.Str n); ("cached", Json.Bool true) ])
             c.ca_cached_svars) );
    ]

(* The [extra] blocks ride at the end of the object under their own
   member names ("scenario", "stat", …), so schema-2 consumers that
   ignore unknown members keep working; a member clashing with a core
   key is dropped rather than shadowing it. *)
let to_json r =
  let core =
    [
      ("schema", Json.Int schema_version);
      ("procedure", Json.Str r.procedure);
      ( "variant",
        Json.Str
          (match r.variant with
          | Spec.Vulnerable -> "vulnerable"
          | Spec.Secure -> "secure") );
      ("verdict", verdict_json r.verdict);
      ("iterations", Json.Int (iterations r));
      ("final_k", Json.Int (final_k r));
      ("total_seconds", Json.Float r.total_seconds);
      ("state_bits", Json.Int r.state_bits);
      ("svar_count", Json.Int r.svar_count);
      ("steps", Json.List (List.map step_json r.steps));
      ( "unknowns",
        Json.List
          (List.map
             (fun (name, reason) ->
               Json.Obj
                 [ ("name", Json.Str name); ("reason", Json.Str reason) ])
             r.unknowns) );
      ("resumed_from", opt (fun i -> Json.Int i) r.resumed_from);
      ( "cert",
        opt
          (cert_json
             ~cert_jobs:
               (match r.options with
               | Some o -> o.Options.cert_jobs
               | None -> 0))
          r.cert );
      ("options", opt options_json r.options);
      ("simp", opt simp_json r.simp);
      ("cache", opt cache_json r.cache);
    ]
  in
  let taken = List.map fst core in
  Json.Obj
    (core @ List.filter (fun (k, _) -> not (List.mem k taken)) r.extra)

let pp_metrics fmt r =
  match r.metrics with
  | None -> Format.fprintf fmt "(no metrics snapshot recorded)"
  | Some s -> Obs.Metrics.pp_table fmt s

let pp_stats fmt r =
  Format.fprintf fmt "@[<v>--- solver statistics (%s) ---@," r.procedure;
  Format.fprintf fmt
    "iter  conflicts  decisions  propagations  restarts  learnt  winner  \
     losers(cfl/prop)@,";
  let have_any = ref false in
  List.iter
    (fun s ->
      match s.st_stats with
      | None -> ()
      | Some st ->
          have_any := true;
          Format.fprintf fmt "%4d  %9d  %9d  %12d  %8d  %6d  %6s  %16s@,"
            s.st_iter st.Satsolver.Solver.conflicts
            st.Satsolver.Solver.decisions st.Satsolver.Solver.propagations
            st.Satsolver.Solver.restarts st.Satsolver.Solver.learnt_clauses
            (match s.st_winner with
            | Some w -> Printf.sprintf "#%d" w
            | None -> "-")
            (match s.st_losers with
            | Some l
              when l.Satsolver.Solver.conflicts > 0
                   || l.Satsolver.Solver.propagations > 0 ->
                Printf.sprintf "%d/%d" l.Satsolver.Solver.conflicts
                  l.Satsolver.Solver.propagations
            | _ -> "-"))
    r.steps;
  if not !have_any then Format.fprintf fmt "(no per-step statistics recorded)@,";
  (let total =
     List.fold_left
       (fun acc s ->
         match s.st_stats with
         | Some st -> Satsolver.Solver.add_stats acc st
         | None -> acc)
       Satsolver.Solver.zero_stats r.steps
   in
   Format.fprintf fmt "total: %a@," Satsolver.Solver.pp_stats total);
  Format.fprintf fmt "@]"
