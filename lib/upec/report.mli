open Rtl

(** Verdicts and run reports for the UPEC-SSC procedures. *)

type step = {
  st_iter : int;  (** 1-based iteration number *)
  st_k : int;  (** unrolling depth of this check *)
  st_s_size : int;  (** |S| going into the check *)
  st_cex : Structural.Svar_set.t;  (** S_cex (empty when the check held) *)
  st_pers_hit : Structural.Svar_set.t;  (** S_cex ∩ S_pers *)
  st_unknown : Structural.Svar_set.t;
      (** svars whose check stayed Unknown after every budgeted retry:
          kept in the equivalence assumption but no longer checked *)
  st_seconds : float;
  st_stats : Satsolver.Solver.stats option;
      (** aggregate solver work of this iteration, when recorded *)
  st_winner : int option;
      (** portfolio configuration that won this iteration's last race *)
  st_losers : Satsolver.Solver.stats option;
      (** summed work of the losing portfolio configurations — the
          price paid for racing, visible next to the winner's cost *)
}

type verdict =
  | Secure of { s_final : Structural.Svar_set.t }
      (** the property became inductive for [s_final] *)
  | Vulnerable of { s_cex : Structural.Svar_set.t; cex : Ipc.Cex.t }
  | Inconclusive of string
      (** iteration budget exhausted or an internal anomaly *)

type cert_info = {
  ct_totals : Cert.Proof.totals;
      (** aggregated over every engine the run created *)
  ct_cex_validated : bool option;
      (** [Some ok] when a counterexample went through simulator
          validation; [None] for runs without a counterexample *)
}

type cache_info = {
  ca_fingerprint : string;  (** {!Fingerprint.design} of the job *)
  ca_report_hit : bool;
      (** the whole report was served from the farm's verdict cache *)
  ca_lemma_hits : int;  (** per-svar checks answered from cached lemmas *)
  ca_lemma_misses : int;  (** per-svar checks actually solved *)
  ca_invalidated : int;
      (** misses whose svar had a cached lemma under an older design —
          the re-solved cone of an RTL delta *)
  ca_cached_svars : string list;
      (** names of the state variables whose verdicts were served from
          cache (sorted, deduplicated) *)
}
(** Cache accounting attached by the proof farm ({!Farm.Exec});
    standalone runs carry [None]. *)

type run = {
  procedure : string;  (** "UPEC-SSC" or "UPEC-SSC-unrolled" *)
  variant : Spec.variant;
  verdict : verdict;
  steps : step list;  (** chronological *)
  total_seconds : float;
  state_bits : int;
  svar_count : int;
  cert : cert_info option;  (** present when the run was certified *)
  unknowns : (string * string) list;
      (** every svar (Alg1) or cycle\@svar pair (Alg2) degraded to
          Unknown over the whole run, with the exhausted-resource
          reason; any unknown downgrades a Secure verdict to
          [Inconclusive], since the fixed point assumed the undecided
          equalities without proving them *)
  resumed_from : int option;
      (** iteration the run was resumed at, when started from a
          checkpoint *)
  metrics : Obs.Metrics.snapshot option;
      (** process-wide cumulative {!Obs.Metrics} snapshot taken when
          the report was assembled; for a [conclude] run (unrolled +
          induction) the induction-phase snapshot covers both phases *)
  options : Options.t option;
      (** the options record the run was configured with (legacy entry
          points record their assembled equivalent) *)
  simp : Simp.reduction option;
      (** problem-reduction accounting aggregated over every engine the
          run created; [None] when reduction was disabled *)
  cache : cache_info option;
      (** farm cache accounting; [None] outside the proof farm *)
  extra : (string * Json.t) list;
      (** schema-3 extension blocks appended verbatim to the JSON
          artefact under their own member names — the stable place for
          per-scenario metadata ([("scenario", …)]) and statistical
          cross-check results ([("stat", …)]) attached by layers above
          this library; the procedures always produce [[]] *)
}

val merge_cert : cert_info option -> cert_info option -> cert_info option

val is_secure : run -> bool
val is_vulnerable : run -> bool
val iterations : run -> int
val final_k : run -> int

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> run -> unit
(** Full report: per-iteration table and the verdict; for vulnerable
    runs, the S_cex classification and the counterexample waveform
    digest. *)

val pp_summary : Format.formatter -> run -> unit
(** One line: verdict, iterations, time. *)

val schema_version : int
(** Version stamped into the ["schema"] member of {!to_json} —
    currently 3. Schema 3 extends schema 2 with optional trailing
    extension blocks ({!type-run.extra}); parsers accept both (see
    {!Json.schema_version}). *)

val to_json : run -> Json.t
(** The machine-readable artefact, ["schema": 3]: verdict, iteration
    table, degraded checks, certification accounting, the {!Options.t}
    echo, the problem-reduction statistics and the [extra] extension
    blocks. Counterexample waveforms are summarised (frame count), not
    serialised — the VCD artefact carries them. *)

val pp_metrics : Format.formatter -> run -> unit
(** The embedded {!Obs.Metrics} snapshot as a human table; a notice
    when the run recorded none. *)

val pp_stats : Format.formatter -> run -> unit
(** Per-iteration solver statistics and portfolio winners, plus the
    aggregate. Separate from {!pp} so that reports remain comparable
    across job counts — solver work is scheduling-dependent, the
    verdict and iteration table are not. *)
