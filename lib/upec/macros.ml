open Rtl
module U = Ipc.Unroller

let victim_input_signals (spec : Spec.t) =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  List.filter
    (fun (s : Expr.signal) ->
      List.mem s.Expr.s_name spec.Spec.soc.Soc.Builder.victim_port)
    nl.Netlist.inputs

let other_input_signals (spec : Spec.t) =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  List.filter
    (fun (s : Expr.signal) ->
      not (List.mem s.Expr.s_name spec.Spec.soc.Soc.Builder.victim_port))
    nl.Netlist.inputs

let input_by_name (spec : Spec.t) name =
  List.find
    (fun (s : Expr.signal) -> s.Expr.s_name = name)
    spec.Spec.soc.Soc.Builder.netlist.Netlist.inputs

let assume_env_at eng spec ~frame =
  let env = Spec.assumed_env spec in
  let u = Ipc.Engine.unroller eng in
  List.iter
    (fun inst ->
      let v = U.blast_at u inst ~frame env in
      Ipc.Engine.assume eng v.(0))
    [ U.A; U.B ]

let assume_env eng spec ~frames =
  for f = 0 to frames do
    assume_env_at eng spec ~frame:f
  done

let primary_input_constraints eng spec ~frame =
  let u = Ipc.Engine.unroller eng in
  List.iter
    (fun (s : Expr.signal) ->
      Ipc.Engine.assume eng (U.inputs_equal_lit u ~frame s))
    (other_input_signals spec)

let victim_port_equal eng spec ~frame =
  let u = Ipc.Engine.unroller eng in
  List.iter
    (fun (s : Expr.signal) ->
      Ipc.Engine.assume eng (U.inputs_equal_lit u ~frame s))
    (victim_input_signals spec)

let victim_task_executing eng spec ~frame =
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let sig_of n = input_by_name spec n in
  (* request shape equal in both instances *)
  Ipc.Engine.assume eng (U.inputs_equal_lit u ~frame (sig_of "victim.req"));
  Ipc.Engine.assume eng (U.inputs_equal_lit u ~frame (sig_of "victim.we"));
  (* both instances touch protected addresses at the same cycles *)
  let prot inst =
    let e = Spec.in_range spec (Expr.input (sig_of "victim.addr")) in
    (U.blast_at u inst ~frame e).(0)
  in
  let prot_a = prot U.A and prot_b = prot U.B in
  Ipc.Engine.assume eng (Aig.mk_xnor g prot_a prot_b);
  (* outside the protected range, address and data are identical *)
  let addr_eq = U.inputs_equal_lit u ~frame (sig_of "victim.addr") in
  let wdata_eq = U.inputs_equal_lit u ~frame (sig_of "victim.wdata") in
  Ipc.Engine.assume eng (Aig.mk_implies g (Aig.lit_not prot_a) addr_eq);
  Ipc.Engine.assume eng (Aig.mk_implies g (Aig.lit_not prot_a) wdata_eq)

let assume_reset_state eng (spec : Spec.t) =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let pin vec value =
    Ipc.Engine.assume eng
      (Bitblast.Blaster.v_eq g vec (Bitblast.Blaster.const_vec value))
  in
  List.iter
    (fun inst ->
      List.iter
        (fun rd ->
          let s = rd.Netlist.rd_signal in
          let value =
            match rd.Netlist.rd_init with
            | Some v -> v
            | None -> Bitvec.zero s.Expr.s_width
          in
          pin (U.reg_vec u inst ~frame:0 s) value)
        nl.Netlist.regs;
      List.iter
        (fun md ->
          let m = md.Netlist.md_mem in
          for i = 0 to m.Expr.m_depth - 1 do
            let value =
              match md.Netlist.md_init with
              | Some a -> a.(i)
              | None -> Bitvec.zero m.Expr.m_data_width
            in
            pin (U.mem_vec u inst ~frame:0 m i) value
          done)
        nl.Netlist.mems)
    [ U.A; U.B ]

(* equal-or-protected condition for one state variable *)
let sv_condition eng spec ~frame sv =
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let eq = U.svar_equal_lit u ~frame sv in
  match Spec.victim_cell_guard spec sv with
  | None -> eq
  | Some guard ->
      (* the guard is over parameters only; any instance/frame works *)
      let gl = (U.blast_at u U.A ~frame:0 guard).(0) in
      Aig.mk_or g gl eq

let state_equivalence_assume eng spec ~frame set =
  Structural.Svar_set.iter
    (fun sv -> Ipc.Engine.assume eng (sv_condition eng spec ~frame sv))
    set

let state_equivalence_goal eng spec ~frame set =
  let g = Ipc.Engine.graph eng in
  Structural.Svar_set.fold
    (fun sv acc -> Aig.mk_and g acc (sv_condition eng spec ~frame sv))
    set Aig.true_lit

let cell_guard_concrete spec cex sv =
  match sv with
  | Structural.Smem (m, i) -> (
      match spec.Spec.soc.Soc.Builder.cell_addr m i with
      | Some a ->
          let base =
            Bitvec.to_int (Ipc.Cex.param_value_by_name cex "victim_base")
          in
          let limit =
            Bitvec.to_int (Ipc.Cex.param_value_by_name cex "victim_limit")
          in
          base <= a && a <= limit
      | None -> false)
  | Structural.Sreg _ -> false

let violations _eng spec cex ~frame set =
  Structural.Svar_set.filter
    (fun sv ->
      (not (cell_guard_concrete spec cex sv))
      && not
           (Bitvec.equal
              (Ipc.Cex.svar_value cex U.A ~frame sv)
              (Ipc.Cex.svar_value cex U.B ~frame sv)))
    set
