open Rtl

(** Content-addressed design and proof-obligation fingerprints.

    The proof farm ({!Farm} library, [upec_farm]) keys its verdict
    cache on {e content}, not on file paths or timestamps:

    - the {b design fingerprint} ({!design}) extends
      {!Checkpoint.config_hash} with an order-insensitive structural
      digest of the whole netlist ({!netlist_digest}), so two builds of
      the same configuration hash equal (signal ids and build order are
      arbitrary, names are not) while any gate change hashes
      differently — an unchanged job resubmission is a report-level
      cache hit;
    - the {b per-check lemma key} ({!check_key}) digests exactly what
      one per-svar Algorithm 1 check [check(sv, S)] semantically
      depends on: the next-state function of [sv], the environment
      assumptions (and the next-state functions of the state they
      read, since the environment is asserted at cycle 1 too), the
      protected-range guards, and the membership of [S] restricted to
      the check's cone of influence ({!dep}). An RTL delta outside
      that cone leaves the key unchanged, so the cached verdict is
      still valid and the farm serves it without re-solving; a delta
      inside the cone changes the key and forces a re-solve of exactly
      the intersecting checks.

    Soundness of the cone restriction: the 2-cycle check constrains
    cycle-0 state variables only through (a) the next-state function
    of [sv], (b) the environment at cycles 0 and 1, and (c) the
    equality assumptions for [S]. An equality assumption for a state
    variable outside {!dep} touches only variables disjoint from the
    rest of the formula (each such equality is independently
    satisfiable), so it can never flip the check's verdict — see
    METHOD.md, "The proof farm". *)

type t
(** Precomputed digests for one {!Spec.t}. *)

val make : Spec.t -> t
(** Digest the design. Cost is one structural traversal of the
    netlist (no solving, no unrolling). *)

val netlist_digest : Netlist.t -> string
(** Hex digest of the netlist content: inputs, parameters, registers
    (with next-state functions and reset values), memories (with
    write ports, in port order — earlier ports win on address clash,
    so port order is semantic) and outputs, each section sorted by
    name. Signal/node identities never enter the digest. *)

val design : t -> string
(** Hex fingerprint of the whole design under its variant and
    persistence model: {!Checkpoint.config_hash} plus
    {!netlist_digest}. *)

val design_spec : Cli.design -> string
(** Hex fingerprint of a declarative design record
    ({!Cli.design_key}, versioned). Two records that elaborate to the
    same spec digest equal — flag-shim and [Scenario.spec] jobs hit
    the same farm cache entries — and no netlist build is needed to
    compute it, so report-level cache probes are O(1). *)

val dep : t -> Structural.svar -> Structural.Svar_set.t
(** The state variables whose cycle-0 equality assumption can
    influence [check(sv, S)]: the fan-in of [sv]'s next-state
    function, plus the state read by the environment at cycles 0 and
    1. Memoised per owning element. *)

val check_key : t -> Structural.svar -> s:Structural.Svar_set.t -> string
(** Hex lemma key for the per-svar check of [sv] under
    State_Equivalence([s]); equal keys imply equal verdicts. *)

val env_dep : t -> Structural.Svar_set.t
(** The environment part of every {!dep} set (state read by the
    assumed environment over two cycles). A delta inside it
    invalidates every cached lemma of the design — the environment is
    shared by all checks. *)
