open Rtl

(* Digests are built bottom-up with [Digest.string] at every node, so
   every intermediate is a fixed 16-byte string and the final digest of
   a shared subgraph is computed once (memoised on [Expr.tag]). Signals
   and memories enter by name and width — never by their process-local
   ids — which is what makes two builds of the same configuration hash
   equal. *)

let unop_tag = function
  | Expr.Not -> "not"
  | Expr.Neg -> "neg"
  | Expr.Redand -> "redand"
  | Expr.Redor -> "redor"
  | Expr.Redxor -> "redxor"

let binop_tag = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | Expr.And -> "and"
  | Expr.Or -> "or"
  | Expr.Xor -> "xor"
  | Expr.Eq -> "eq"
  | Expr.Ne -> "ne"
  | Expr.Ult -> "ult"
  | Expr.Ule -> "ule"
  | Expr.Slt -> "slt"
  | Expr.Sle -> "sle"
  | Expr.Shl -> "shl"
  | Expr.Lshr -> "lshr"
  | Expr.Ashr -> "ashr"

let signal_tag (s : Expr.signal) =
  Printf.sprintf "%s:%d" s.Expr.s_name s.Expr.s_width

let mem_tag (m : Expr.mem) =
  Printf.sprintf "%s:%d:%d:%d" m.Expr.m_name m.Expr.m_addr_width
    m.Expr.m_data_width m.Expr.m_depth

type ctx = { memo : (int, string) Hashtbl.t }

let rec edig ctx e =
  match Hashtbl.find_opt ctx.memo (Expr.tag e) with
  | Some d -> d
  | None ->
      let d =
        Digest.string
          (match Expr.node e with
          | Expr.Const bv -> "C" ^ Bitvec.to_string bv
          | Expr.Input s -> "I" ^ signal_tag s
          | Expr.Param s -> "P" ^ signal_tag s
          | Expr.Reg s -> "R" ^ signal_tag s
          | Expr.Memread (m, a) -> "M" ^ mem_tag m ^ edig ctx a
          | Expr.Unop (op, a) -> "U" ^ unop_tag op ^ edig ctx a
          | Expr.Binop (op, a, b) ->
              "B" ^ binop_tag op ^ edig ctx a ^ edig ctx b
          | Expr.Mux (s, a, b) -> "X" ^ edig ctx s ^ edig ctx a ^ edig ctx b
          | Expr.Concat (a, b) -> "K" ^ edig ctx a ^ edig ctx b
          | Expr.Slice (a, hi, lo) ->
              Printf.sprintf "S%d:%d%s" hi lo (edig ctx a))
      in
      Hashtbl.replace ctx.memo (Expr.tag e) d;
      d

let bv_opt = function None -> "-" | Some bv -> Bitvec.to_string bv

let bv_arr_opt = function
  | None -> "-"
  | Some arr ->
      String.concat "," (Array.to_list (Array.map Bitvec.to_string arr))

(* Content digest of one state element: everything that determines its
   next-cycle value (and, for certified replays, its simulator reset
   value). Memory cells of the same array share the port digests and
   differ only in the element index. *)
let reg_digest ctx (rd : Netlist.reg_def) =
  Digest.string
    (String.concat ":"
       [
         "reg";
         signal_tag rd.Netlist.rd_signal;
         edig ctx rd.Netlist.rd_next;
         bv_opt rd.Netlist.rd_init;
       ])

let mem_digest ctx (md : Netlist.mem_def) =
  Digest.string
    (String.concat ":"
       ("mem" :: mem_tag md.Netlist.md_mem
       :: bv_arr_opt md.Netlist.md_init
       :: List.concat_map
            (fun (wp : Netlist.write_port) ->
              [
                edig ctx wp.Netlist.wp_enable;
                edig ctx wp.Netlist.wp_addr;
                edig ctx wp.Netlist.wp_data;
              ])
            md.Netlist.md_ports))

let netlist_digest (nl : Netlist.t) =
  let ctx = { memo = Hashtbl.create 4096 } in
  let sorted_by f l = List.sort (fun a b -> compare (f a) (f b)) l in
  let b = Buffer.create 4096 in
  let section name lines =
    Buffer.add_string b name;
    Buffer.add_char b '\n';
    List.iter
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      lines
  in
  section "inputs"
    (List.map signal_tag
       (sorted_by (fun s -> s.Expr.s_name) nl.Netlist.inputs));
  section "params"
    (List.map signal_tag
       (sorted_by (fun s -> s.Expr.s_name) nl.Netlist.params));
  section "regs"
    (List.map
       (fun rd ->
         rd.Netlist.rd_signal.Expr.s_name ^ " " ^ reg_digest ctx rd)
       (sorted_by
          (fun rd -> rd.Netlist.rd_signal.Expr.s_name)
          nl.Netlist.regs));
  section "mems"
    (List.map
       (fun md -> md.Netlist.md_mem.Expr.m_name ^ " " ^ mem_digest ctx md)
       (sorted_by (fun md -> md.Netlist.md_mem.Expr.m_name) nl.Netlist.mems));
  section "outputs"
    (List.map
       (fun (n, e) -> n ^ " " ^ edig ctx e)
       (sorted_by fst nl.Netlist.outputs));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- per-design state ------------------------------------------------ *)

type t = {
  fp_spec : Spec.t;
  fp_ctx : ctx;
  fp_design : string lazy_t;
  fp_env : string;  (* digest of the assumed environment over 2 cycles *)
  fp_env_dep : Structural.Svar_set.t;
  fp_elem_content : (string, string) Hashtbl.t;
      (* element name (reg name / mem name) -> content digest; cells
         append their index on use *)
  fp_elem_support : (string, Structural.Svar_set.t) Hashtbl.t;
      (* element name -> fan-in of its next-state function *)
  fp_guard : (string, string) Hashtbl.t;  (* svar name -> guard digest *)
}

let variant_tag = function
  | Spec.Vulnerable -> "vulnerable"
  | Spec.Secure -> "secure"

let pers_tag = function
  | Spec.Full_pers -> "full-pers"
  | Spec.Memory_only -> "memory-only"

let elem_name = function
  | Structural.Sreg s -> s.Expr.s_name
  | Structural.Smem (m, _) -> m.Expr.m_name

let elem_support fp sv =
  let name = elem_name sv in
  match Hashtbl.find_opt fp.fp_elem_support name with
  | Some s -> s
  | None ->
      (* cell supports are index-independent except for the cell
         itself, which callers re-add; memoise the union per array *)
      let s =
        Structural.reg_support fp.fp_spec.Spec.soc.Soc.Builder.netlist sv
      in
      let s =
        match sv with
        | Structural.Smem _ -> Structural.Svar_set.remove sv s
        | Structural.Sreg _ -> s
      in
      Hashtbl.replace fp.fp_elem_support name s;
      s

let elem_content fp sv =
  let nl = fp.fp_spec.Spec.soc.Soc.Builder.netlist in
  let base name compute =
    match Hashtbl.find_opt fp.fp_elem_content name with
    | Some d -> d
    | None ->
        let d = compute () in
        Hashtbl.replace fp.fp_elem_content name d;
        d
  in
  match sv with
  | Structural.Sreg s ->
      base s.Expr.s_name (fun () ->
          reg_digest fp.fp_ctx (Netlist.find_reg nl s.Expr.s_name))
  | Structural.Smem (m, i) ->
      let d =
        base m.Expr.m_name (fun () ->
            mem_digest fp.fp_ctx (Netlist.find_mem nl m.Expr.m_name))
      in
      Digest.string (Printf.sprintf "%s[%d]" d i)

let guard_digest fp sv =
  let name = Structural.svar_name sv in
  match Hashtbl.find_opt fp.fp_guard name with
  | Some d -> d
  | None ->
      let d =
        match Spec.victim_cell_guard fp.fp_spec sv with
        | None -> "-"
        | Some g -> edig fp.fp_ctx g
      in
      Hashtbl.replace fp.fp_guard name d;
      d

let make spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let ctx = { memo = Hashtbl.create 4096 } in
  let fp =
    {
      fp_spec = spec;
      fp_ctx = ctx;
      fp_design =
        lazy
          (Digest.to_hex
             (Digest.string
                (Checkpoint.config_hash ~alg:Checkpoint.Alg1 spec
                ^ netlist_digest nl)));
      fp_env = "";
      fp_env_dep = Structural.Svar_set.empty;
      fp_elem_content = Hashtbl.create 256;
      fp_elem_support = Hashtbl.create 256;
      fp_guard = Hashtbl.create 256;
    }
  in
  (* The environment is asserted at cycles 0 and 1; at cycle 1 it reads
     the next-state functions of its fan-in, so both the membership set
     and the content digest extend one transition deep. The victim-task
     macros constrain only the cut inputs and the symbolic range
     parameters — named by the port list and the guard digests. *)
  let env_expr = Spec.assumed_env spec in
  let env_cone = Structural.cone_of env_expr in
  let env_dep =
    Structural.Svar_set.fold
      (fun w acc ->
        Structural.Svar_set.union acc
          (Structural.Svar_set.add w (elem_support fp w)))
      env_cone env_cone
  in
  let env_digest =
    Digest.string
      (String.concat ":"
         ([
            "env";
            variant_tag spec.Spec.variant;
            pers_tag spec.Spec.pers_model;
            edig ctx env_expr;
          ]
         @ List.sort compare spec.Spec.soc.Soc.Builder.victim_port
         @ List.map
             (fun w -> Structural.svar_name w ^ "=" ^ elem_content fp w)
             (Structural.Svar_set.elements env_cone)))
  in
  { fp with fp_env = env_digest; fp_env_dep = env_dep }

let design fp = Lazy.force fp.fp_design
let env_dep fp = fp.fp_env_dep

(* Spec-level fingerprint: digests the declarative design record
   instead of the elaborated netlist, so a cache probe needs no build.
   Tied to the netlist digest by construction — [Cli.config_of] is a
   pure function of the record — and versioned so a codec change can
   never alias an old key. *)
let design_spec d =
  Digest.to_hex (Digest.string ("design-spec:1:" ^ Cli.design_key d))

let dep fp sv =
  Structural.Svar_set.union fp.fp_env_dep
    (Structural.Svar_set.add sv (elem_support fp sv))

let check_key fp sv ~s =
  let b = Buffer.create 1024 in
  Buffer.add_string b "check1:";
  Buffer.add_string b fp.fp_env;
  Buffer.add_string b (Structural.svar_name sv);
  Buffer.add_char b ':';
  Buffer.add_string b (string_of_int (Structural.svar_width sv));
  Buffer.add_char b ':';
  Buffer.add_string b (elem_content fp sv);
  Buffer.add_string b (guard_digest fp sv);
  let d = dep fp sv in
  Structural.Svar_set.iter
    (fun w ->
      if Structural.Svar_set.mem w d then begin
        Buffer.add_char b '|';
        Buffer.add_string b (Structural.svar_name w);
        Buffer.add_string b (guard_digest fp w)
      end)
    s;
  Digest.to_hex (Digest.string (Buffer.contents b))
