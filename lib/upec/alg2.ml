open Rtl
module U = Ipc.Unroller
module S = Satsolver.Solver

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

(* Shared session setup for the Fig. 4 unrolled property at depth k.
   [portfolio] is explicit rather than read from [o] because
   counterexample re-derivation always runs sequentially. *)
let setup_engine (o : Options.t) ~portfolio
    ?(register = fun (_ : Ipc.Engine.t) -> ()) spec k =
  let eng =
    Ipc.Engine.create ?solver_options:o.Options.solver_options ~portfolio
      ~certify:o.Options.certify ~cert_jobs:o.Options.cert_jobs
      ~simp:o.Options.simp ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  register eng;
  Ipc.Engine.set_interrupt eng o.Options.should_stop;
  Ipc.Engine.ensure_frames eng k;
  if o.Options.reset_start then Macros.assume_reset_state eng spec;
  Macros.assume_env eng spec ~frames:k;
  for f = 0 to k do
    Macros.primary_input_constraints eng spec ~frame:f;
    (* Fig. 4: Victim_Task_Executing during t..t+1 only; beyond that the
       victim port carries equal traffic in both instances *)
    if f <= 1 then Macros.victim_task_executing eng spec ~frame:f
    else Macros.victim_port_equal eng spec ~frame:f
  done;
  eng

(* Escalating-budget retry; see Alg1. Interrupts are never retried. *)
let with_retries (o : Options.t) eng (solve : unit -> Ipc.Engine.verdict) =
  let rec attempt n b =
    Ipc.Engine.set_budget eng b;
    match solve () with
    | Ipc.Engine.Unknown reason
      when reason <> "interrupted" && n < o.Options.budget_retries ->
        attempt (n + 1) (S.scale_budget b o.Options.budget_escalation)
    | r -> r
  in
  attempt 0 o.Options.budget

(* Decide the depth-k unrolled property on one engine whose frames
   0..k are fully constrained, and classify the result. The goal — the
   conjunction of the per-cycle equivalence obligations — rides on
   solver assumptions through {!Ipc.Engine.decide}, never asserted, so
   a warm engine can be re-asked with shrunken sets. *)
let decide_unrolled (o : Options.t) eng spec s_frames k =
  let g = Ipc.Engine.graph eng in
  let goal = ref Aig.true_lit in
  for j = 1 to k do
    goal :=
      Aig.mk_and g !goal
        (Macros.state_equivalence_goal eng spec ~frame:j s_frames.(j))
  done;
  let r =
    match
      with_retries o eng (fun () ->
          Ipc.Engine.decide eng (Ipc.Engine.Goal !goal))
    with
    | Ipc.Engine.Proved -> `Holds
    | Ipc.Engine.Refuted c ->
        let cex = Option.get c in
        let per_frame =
          List.init k (fun j ->
              let j = j + 1 in
              (j, Macros.violations eng spec cex ~frame:j s_frames.(j)))
        in
        `Cex (cex, per_frame)
    | Ipc.Engine.Unknown reason -> `Unknown reason
  in
  ( r,
    Ipc.Engine.last_stats eng,
    Ipc.Engine.last_winner eng,
    Ipc.Engine.last_losers_stats eng )

let check_once (o : Options.t) ?register spec s_frames k =
  (* s_frames: array of length k+1 with the per-cycle sets *)
  let eng = setup_engine o ~portfolio:o.Options.portfolio ?register spec k in
  Macros.state_equivalence_assume eng spec ~frame:0 s_frames.(0);
  decide_unrolled o eng spec s_frames k

(* Incremental monolithic session: one engine across iterations AND
   unroll-depth growth. Frame-0 equivalence is asserted once (sound —
   the cycle-0 set never shrinks); when k grows, only the new frame's
   environment and input constraints are appended. Learnt clauses and
   branching heuristics stay warm across the whole refinement. *)
type session = { i_eng : Ipc.Engine.t; mutable i_frames : int }

let extend_frame eng spec f =
  Macros.assume_env_at eng spec ~frame:f;
  Macros.primary_input_constraints eng spec ~frame:f;
  if f <= 1 then Macros.victim_task_executing eng spec ~frame:f
  else Macros.victim_port_equal eng spec ~frame:f

let make_session (o : Options.t) ~register spec s0 =
  let eng = setup_engine o ~portfolio:o.Options.portfolio ~register spec 1 in
  Macros.state_equivalence_assume eng spec ~frame:0 s0;
  { i_eng = eng; i_frames = 1 }

let check_incr (o : Options.t) sess spec s_frames k =
  if k > sess.i_frames then begin
    Ipc.Engine.ensure_frames sess.i_eng k;
    for f = sess.i_frames + 1 to k do
      extend_frame sess.i_eng spec f
    done;
    sess.i_frames <- k
  end;
  decide_unrolled o sess.i_eng spec s_frames k

(* Per-(frame, svar) decomposition for the parallel strategy. The
   unrolled property assumes equivalence only at cycle 0 — and sf.(0)
   never shrinks — so the assumption set of every individual check is
   constant: frame-0 equivalence is asserted permanently at worker
   construction, and each pair (j, sv) gets one activation literal
   arming diff_sv@j. Pair verdicts are therefore semantic facts, and
   the whole trace is identical for every job count. *)
type worker_state = {
  w_k : int;
  w_eng : Ipc.Engine.t;
  w_acts : (int * string, Aig.lit) Hashtbl.t;  (* (frame, svar) -> act *)
}

let make_worker (o : Options.t) ~register spec s0 k =
  let eng = setup_engine o ~portfolio:o.Options.portfolio ~register spec k in
  Macros.state_equivalence_assume eng spec ~frame:0 s0;
  let g = Ipc.Engine.graph eng in
  let acts = Hashtbl.create 1024 in
  for j = 1 to k do
    Structural.Svar_set.iter
      (fun sv ->
        let diff = Aig.lit_not (Macros.sv_condition eng spec ~frame:j sv) in
        let act = Aig.fresh_var g in
        Ipc.Engine.assume_implication eng act diff;
        Hashtbl.replace acts (j, Structural.svar_name sv) act)
      s0
  done;
  { w_k = k; w_eng = eng; w_acts = acts }

let extract_cex (o : Options.t) ~register spec s0 k (j, sv) =
  let eng = setup_engine o ~portfolio:1 ~register spec k in
  Macros.state_equivalence_assume eng spec ~frame:0 s0;
  match
    Ipc.Engine.decide eng
      (Ipc.Engine.Violation
         [ Aig.lit_not (Macros.sv_condition eng spec ~frame:j sv) ])
  with
  | Ipc.Engine.Refuted c -> c
  | Ipc.Engine.Proved | Ipc.Engine.Unknown _ -> None

let svar_table nl =
  let tbl = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv -> Hashtbl.replace tbl (Structural.svar_name sv) sv)
    (Structural.all_svars nl);
  tbl

let resolve_names tbl names ~what =
  List.fold_left
    (fun acc n ->
      match Hashtbl.find_opt tbl n with
      | Some sv -> Structural.Svar_set.add sv acc
      | None ->
          invalid_arg
            (Printf.sprintf "%s: checkpoint names unknown state var %s" what n))
    Structural.Svar_set.empty names

let variant_tag = function
  | Spec.Vulnerable -> "vulnerable"
  | Spec.Secure -> "secure"

(* Undecided (frame, svar) pairs are recorded in checkpoints and reports
   as "name@j"; the reason string stays plain. *)
let pair_entry j sv = Printf.sprintf "%s@%d" (Structural.svar_name sv) j

let parse_pair_entry n =
  match String.rindex_opt n '@' with
  | None -> None
  | Some i -> (
      match
        int_of_string_opt (String.sub n (i + 1) (String.length n - i - 1))
      with
      | Some j -> Some (j, String.sub n 0 i)
      | None -> None)

let run_with ?resume (o : Options.t) spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let s0 = Spec.s_neg_victim spec in
  let steps = ref [] in
  let per_svar = o.Options.jobs <> None in
  let reset_start = o.Options.reset_start in
  let config_hash = lazy (Checkpoint.config_hash ~alg:Checkpoint.Alg2 spec) in
  let unknowns_acc = ref [] in
  (* undecided (frame, svar-name) pairs: excluded from the goal lists
     but NOT from the per-cycle sets — the sets feed the induction's
     assumption side, and weakening it could manufacture spurious
     divergences (see Alg1) *)
  let undecided : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let note_unknown j sv reason =
    Hashtbl.replace undecided (j, Structural.svar_name sv) ();
    let entry = (pair_entry j sv, reason) in
    if not (List.mem entry !unknowns_acc) then
      unknowns_acc := entry :: !unknowns_acc
  in
  let stopped () =
    match o.Options.should_stop with Some f -> f () | None -> false
  in
  let reg_mu = Mutex.create () in
  let engines = ref [] in
  let register e =
    Mutex.lock reg_mu;
    engines := e :: !engines;
    Mutex.unlock reg_mu
  in
  let cex_validated = ref None in
  let validate_cex ~claimed cex =
    if o.Options.certify then begin
      let v =
        Certval.validate ?vcd_prefix:o.Options.cex_vcd ~claimed nl cex
      in
      cex_validated := Some v.Certval.v_ok;
      v.Certval.v_ok
    end
    else begin
      (match o.Options.cex_vcd with
      | Some _ ->
          ignore
            (Certval.validate ?vcd_prefix:o.Options.cex_vcd ~claimed nl cex)
      | None -> ());
      true
    end
  in
  let finish verdict outcome =
    let unknowns = List.rev !unknowns_acc in
    (* undecided pairs are unproven goals, so a standalone Secure claim
       is degraded; the [Hold] outcome survives — {!conclude}'s
       induction re-decides every svar from scratch and subsumes the
       bounded window, so unrolled-phase Unknowns cannot contaminate
       its verdict *)
    let verdict =
      match verdict with
      | Report.Secure _ when unknowns <> [] ->
          Report.Inconclusive
            (Printf.sprintf
               "budget exhausted on %d (cycle, state var) pair(s): %s"
               (List.length unknowns)
               (String.concat ", " (List.map fst unknowns)))
      | v -> v
    in
    ( {
        Report.procedure =
          (let base =
             if reset_start then "BMC-from-reset (Alg. 2 property"
             else "UPEC-SSC-unrolled (Alg. 2"
           in
           let strategy =
             if per_svar then ", per-svar)"
             else if o.Options.incremental then ", incremental)"
             else ")"
           in
           base ^ strategy);
        variant = spec.Spec.variant;
        verdict;
        steps = List.rev !steps;
        total_seconds = Unix.gettimeofday () -. t0;
        state_bits = Netlist.state_bits nl;
        svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
        cert =
          (if o.Options.certify then
             Some
               {
                 Report.ct_totals =
                   List.fold_left
                     (fun acc e ->
                       Cert.Proof.add_totals acc (Ipc.Engine.cert_totals e))
                     Cert.Proof.zero_totals !engines;
                 ct_cex_validated = !cex_validated;
               }
           else None);
        unknowns;
        resumed_from =
          (match resume with
          | Some ck -> Some ck.Checkpoint.ck_iter
          | None -> None);
        metrics = Some (Obs.Metrics.snapshot ());
        options = Some o;
        simp =
          List.fold_left
            (fun acc e ->
              match Ipc.Engine.reduction_stats e with
              | None -> acc
              | Some r -> (
                  match acc with
                  | None -> Some r
                  | Some a -> Some (Simp.merge_reduction a r)))
            None !engines;
        cache = None;
        extra = [];
      },
      outcome )
  in
  let record ?stats ?winner ?losers ~unknown iter k s_size cex pers dt =
    (if Obs.Trace.enabled () then
       let t1 = Unix.gettimeofday () in
       Obs.Trace.emit_span "alg2.iter" ~t0:(t1 -. dt) ~t1
         ~attrs:
           [
             ("iter", Obs.Trace.Int iter);
             ("k", Obs.Trace.Int k);
             ("s_size", Obs.Trace.Int s_size);
           ]);
    steps :=
      {
        Report.st_iter = iter;
        st_k = k;
        st_s_size = s_size;
        st_cex = cex;
        st_pers_hit = pers;
        st_unknown = unknown;
        st_seconds = dt;
        st_stats = stats;
        st_winner = winner;
        st_losers = losers;
      }
      :: !steps
  in
  (* growable array of per-cycle sets *)
  let s_frames = ref [| s0; s0 |] in
  let start_iter, start_k =
    match resume with
    | None -> (1, 1)
    | Some ck ->
        if ck.Checkpoint.ck_alg <> Checkpoint.Alg2 then
          invalid_arg "Alg2.run: checkpoint was written by another algorithm";
        if ck.Checkpoint.ck_config_hash <> Lazy.force config_hash then
          invalid_arg
            "Alg2.run: checkpoint config hash mismatch (different design, \
             variant or persistence model)";
        unknowns_acc := List.rev ck.Checkpoint.ck_unknown;
        List.iter
          (fun (n, _) ->
            match parse_pair_entry n with
            | Some (j, name) -> Hashtbl.replace undecided (j, name) ()
            | None -> ())
          ck.Checkpoint.ck_unknown;
        let tbl = svar_table nl in
        s_frames :=
          Array.map
            (fun names -> resolve_names tbl names ~what:"Alg2.run")
            ck.Checkpoint.ck_frames;
        (ck.Checkpoint.ck_iter, ck.Checkpoint.ck_k)
  in
  let post_iter ~next_iter ~k =
    match o.Options.checkpoint_file with
    | None -> ()
    | Some path ->
        Checkpoint.save path
          {
            Checkpoint.ck_alg = Checkpoint.Alg2;
            ck_variant = variant_tag spec.Spec.variant;
            ck_config_hash = Lazy.force config_hash;
            ck_iter = next_iter;
            ck_k = k;
            ck_frames =
              Array.map
                (fun s ->
                  List.map Structural.svar_name
                    (Structural.Svar_set.elements s))
                !s_frames;
            ck_unknown = List.rev !unknowns_acc;
          }
  in
  match o.Options.jobs with
  | None ->
      let session = ref None in
      let checker sf k =
        if o.Options.incremental then begin
          let sess =
            match !session with
            | Some s -> s
            | None ->
                let s = make_session o ~register spec sf.(0) in
                session := Some s;
                s
          in
          check_incr o sess spec sf k
        end
        else check_once o ~register spec sf k
      in
      let rec loop iter k =
        if iter > o.Options.max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted") Gave_up
        else begin
          let it0 = Unix.gettimeofday () in
          let sf = !s_frames in
          let result, st, win, lo = checker sf k in
          match result with
          | `Unknown reason ->
              finish
                (Report.Inconclusive
                   (if stopped () || reason = "interrupted" then "interrupted"
                    else "undecided within budget: " ^ reason))
                Gave_up
          | `Holds ->
              let dt = Unix.gettimeofday () -. it0 in
              record ~stats:st ?winner:win ~losers:lo
                ~unknown:Structural.Svar_set.empty iter k
                (Structural.Svar_set.cardinal sf.(k))
                Structural.Svar_set.empty Structural.Svar_set.empty dt;
              if Structural.Svar_set.equal sf.(k) sf.(k - 1) then
                if reset_start then
                  (* a concrete-start (BMC) pass proves nothing beyond the
                     window: report it as such *)
                  finish
                    (Report.Inconclusive
                       (Printf.sprintf
                          "BMC from reset: no detection within %d cycles (no \
                           inductive meaning)" k))
                    (Hold { s_final = sf.(k); k })
                else
                  finish
                    (Report.Secure { s_final = sf.(k) })
                    (Hold { s_final = sf.(k); k })
              else if k >= o.Options.max_k then
                finish (Report.Inconclusive "max unrolling reached") Gave_up
              else begin
                s_frames := Array.append sf [| sf.(k) |];
                post_iter ~next_iter:(iter + 1) ~k:(k + 1);
                loop (iter + 1) (k + 1)
              end
          | `Cex (cex, per_frame) ->
              if stopped () then
                finish (Report.Inconclusive "interrupted") Gave_up
              else begin
                let dt = Unix.gettimeofday () -. it0 in
                let all_cex =
                  List.fold_left
                    (fun acc (_, v) -> Structural.Svar_set.union acc v)
                    Structural.Svar_set.empty per_frame
                in
                let pers_hit =
                  Structural.Svar_set.filter (Spec.is_pers spec) all_cex
                in
                record ~stats:st ?winner:win ~losers:lo
                  ~unknown:Structural.Svar_set.empty iter k
                  (Structural.Svar_set.cardinal sf.(k))
                  all_cex pers_hit dt;
                if Structural.Svar_set.is_empty all_cex then
                  finish
                    (Report.Inconclusive
                       "counterexample without S_cex (spurious model)")
                    Gave_up
                else if not (Structural.Svar_set.is_empty pers_hit) then
                  if validate_cex ~claimed:all_cex cex then
                    finish
                      (Report.Vulnerable { s_cex = all_cex; cex })
                      Found_vulnerable
                  else
                    finish
                      (Report.Inconclusive
                         "counterexample rejected by simulator validation")
                      Gave_up
                else begin
                  List.iter
                    (fun (j, v) -> sf.(j) <- Structural.Svar_set.diff sf.(j) v)
                    per_frame;
                  post_iter ~next_iter:(iter + 1) ~k;
                  loop (iter + 1) k
                end
              end
        end
      in
      loop start_iter start_k
  | Some j ->
      let jobs = max 1 j in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let engines = Array.make (Parallel.Pool.jobs pool) None in
          let worker k wid =
            match engines.(wid) with
            | Some w when w.w_k = k -> w
            | _ ->
                let w = make_worker o ~register spec s0 k in
                engines.(wid) <- Some w;
                w
          in
          let check_pairs k pairs =
            Parallel.Pool.map_wid pool
              (fun wid (j, sv) ->
                Obs.Trace.with_span "alg2.pair"
                  ~attrs:
                    [
                      ("svar", Obs.Trace.Str (Structural.svar_name sv));
                      ("frame", Obs.Trace.Int j);
                    ]
                @@ fun () ->
                let w = worker k wid in
                let act = Hashtbl.find w.w_acts (j, Structural.svar_name sv) in
                ( (j, sv),
                  with_retries o w.w_eng (fun () ->
                      Ipc.Engine.decide ~cex:false w.w_eng
                        (Ipc.Engine.Violation [ act ])),
                  Ipc.Engine.last_stats w.w_eng,
                  Ipc.Engine.last_winner w.w_eng,
                  Ipc.Engine.last_losers_stats w.w_eng ))
              pairs
          in
          let stats_of results =
            List.fold_left
              (fun (acc, w, lacc) (_, _, st, win, lo) ->
                ( S.add_stats acc st,
                  (match win with Some _ -> win | None -> w),
                  S.add_stats lacc lo ))
              (S.zero_stats, None, S.zero_stats)
              results
          in
          (* budget-degraded pairs join [undecided]; interrupts are
             excluded — an interrupted iteration is discarded wholesale *)
          let handle_unknowns results =
            List.fold_left
              (fun acc ((j, sv), (v : Ipc.Engine.verdict), _, _, _) ->
                match v with
                | Ipc.Engine.Unknown reason when reason <> "interrupted" ->
                    note_unknown j sv reason;
                    Structural.Svar_set.add sv acc
                | _ -> acc)
              Structural.Svar_set.empty results
          in
          let rec loop iter k =
            if iter > o.Options.max_iterations then
              finish (Report.Inconclusive "iteration budget exhausted") Gave_up
            else begin
              let it0 = Unix.gettimeofday () in
              let sf = !s_frames in
              let pairs p =
                List.concat_map
                  (fun j ->
                    Structural.Svar_set.fold
                      (fun sv acc ->
                        if
                          p sv
                          && not
                               (Hashtbl.mem undecided
                                  (j, Structural.svar_name sv))
                        then (j, sv) :: acc
                        else acc)
                      sf.(j) []
                    |> List.rev)
                  (List.init k (fun i -> i + 1))
              in
              (* Persistent svars first: any hit ends the run early. *)
              let pers_results = check_pairs k (pairs (Spec.is_pers spec)) in
              if stopped () then
                finish (Report.Inconclusive "interrupted") Gave_up
              else begin
                let pers_sat =
                  List.filter
                    (fun (_, v, _, _, _) ->
                      match v with Ipc.Engine.Refuted _ -> true | _ -> false)
                    pers_results
                in
                if pers_sat <> [] then begin
                  let pers_hit =
                    List.fold_left
                      (fun acc ((_, sv), _, _, _, _) ->
                        Structural.Svar_set.add sv acc)
                      Structural.Svar_set.empty pers_sat
                  in
                  let st, win, lo = stats_of pers_results in
                  let unknown = handle_unknowns pers_results in
                  record ~stats:st ?winner:win ~losers:lo ~unknown iter k
                    (Structural.Svar_set.cardinal sf.(k))
                    pers_hit pers_hit
                    (Unix.gettimeofday () -. it0);
                  (* deterministic witness: smallest frame, then svar order *)
                  let witness =
                    List.fold_left
                      (fun acc ((j, sv), _, _, _, _) ->
                        match acc with
                        | None -> Some (j, sv)
                        | Some (j', sv') ->
                            if
                              j < j'
                              || (j = j' && Structural.compare_svar sv sv' < 0)
                            then Some (j, sv)
                            else acc)
                      None pers_sat
                    |> Option.get
                  in
                  match extract_cex o ~register spec s0 k witness with
                  | Some cex ->
                      if
                        validate_cex
                          ~claimed:(Structural.Svar_set.singleton (snd witness))
                          cex
                      then
                        finish
                          (Report.Vulnerable { s_cex = pers_hit; cex })
                          Found_vulnerable
                      else
                        finish
                          (Report.Inconclusive
                             "counterexample rejected by simulator validation")
                          Gave_up
                  | None ->
                      finish
                        (Report.Inconclusive
                           (if stopped () then "interrupted"
                            else
                              "per-svar SAT not reproducible on a fresh engine"))
                        Gave_up
                end
                else begin
                  let rest_results =
                    check_pairs k (pairs (fun sv -> not (Spec.is_pers spec sv)))
                  in
                  if stopped () then
                    finish (Report.Inconclusive "interrupted") Gave_up
                  else begin
                    let per_frame =
                      List.init k (fun i ->
                          let j = i + 1 in
                          ( j,
                            List.fold_left
                              (fun acc ((j', sv), v, _, _, _) ->
                                match v with
                                | Ipc.Engine.Refuted _ when j' = j ->
                                    Structural.Svar_set.add sv acc
                                | _ -> acc)
                              Structural.Svar_set.empty rest_results ))
                    in
                    let all_cex =
                      List.fold_left
                        (fun acc (_, v) -> Structural.Svar_set.union acc v)
                        Structural.Svar_set.empty per_frame
                    in
                    let st, win, lo =
                      let s1, w1, l1 = stats_of pers_results in
                      let s2, w2, l2 = stats_of rest_results in
                      ( S.add_stats s1 s2,
                        (match w2 with Some _ -> w2 | None -> w1),
                        S.add_stats l1 l2 )
                    in
                    let unknown =
                      Structural.Svar_set.union
                        (handle_unknowns pers_results)
                        (handle_unknowns rest_results)
                    in
                    record ~stats:st ?winner:win ~losers:lo ~unknown iter k
                      (Structural.Svar_set.cardinal sf.(k))
                      all_cex Structural.Svar_set.empty
                      (Unix.gettimeofday () -. it0);
                    if Structural.Svar_set.is_empty all_cex then
                      if Structural.Svar_set.equal sf.(k) sf.(k - 1) then
                        if reset_start then
                          finish
                            (Report.Inconclusive
                               (Printf.sprintf
                                  "BMC from reset: no detection within %d \
                                   cycles (no inductive meaning)" k))
                            (Hold { s_final = sf.(k); k })
                        else
                          finish
                            (Report.Secure { s_final = sf.(k) })
                            (Hold { s_final = sf.(k); k })
                      else if k >= o.Options.max_k then
                        finish
                          (Report.Inconclusive "max unrolling reached")
                          Gave_up
                      else begin
                        s_frames := Array.append sf [| sf.(k) |];
                        post_iter ~next_iter:(iter + 1) ~k:(k + 1);
                        loop (iter + 1) (k + 1)
                      end
                    else begin
                      List.iter
                        (fun (j, v) ->
                          sf.(j) <- Structural.Svar_set.diff sf.(j) v)
                        per_frame;
                      post_iter ~next_iter:(iter + 1) ~k;
                      loop (iter + 1) k
                    end
                  end
                end
              end
            end
          in
          loop start_iter start_k)

let merge_simp a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Simp.merge_reduction a b)

(* [svar_cache] feeds only the induction phase: its obligations are
   exactly Alg. 1's 2-cycle per-svar checks, so farm lemmas apply
   verbatim. The unrolled phase's (frame, svar) obligations live in a
   k-deep formula no 2-cycle lemma answers — they always solve. *)
let conclude_with ?resume ?svar_cache (o : Options.t) spec =
  match resume with
  | Some ck when ck.Checkpoint.ck_alg = Checkpoint.Alg1 ->
      (* the unrolled phase had already reached Hold when this Alg. 1
         checkpoint was written: resume the induction directly *)
      let induction = Alg1.run_with ~resume:ck ?svar_cache o spec in
      {
        induction with
        Report.procedure = "UPEC-SSC-unrolled + induction";
      }
  | _ -> (
      let report, outcome = run_with ?resume o spec in
      match outcome with
      | Found_vulnerable | Gave_up -> report
      | Hold { s_final; k = _ } ->
          let induction = Alg1.run_with ~initial_s:s_final ?svar_cache o spec in
          {
            induction with
            Report.procedure = "UPEC-SSC-unrolled + induction";
            steps = report.Report.steps @ induction.Report.steps;
            total_seconds =
              report.Report.total_seconds +. induction.Report.total_seconds;
            cert = Report.merge_cert report.Report.cert induction.Report.cert;
            unknowns = report.Report.unknowns @ induction.Report.unknowns;
            resumed_from = report.Report.resumed_from;
            simp = merge_simp report.Report.simp induction.Report.simp;
          }
      )

let options_of ?max_k ?(max_iterations = 128) ?solver_options
    ?(reset_start = false) ?jobs ?portfolio ?(certify = false) ?cex_vcd
    ?(budget = S.no_budget) ?(budget_retries = 2) ?(budget_escalation = 4.0)
    ?checkpoint_file ?should_stop () =
  {
    Options.default with
    Options.max_iterations;
    max_k = (match max_k with Some k -> k | None -> 8);
    solver_options;
    incremental = false;
    reset_start;
    jobs;
    portfolio = (match portfolio with Some p -> p | None -> 1);
    certify;
    cex_vcd;
    budget;
    budget_retries;
    budget_escalation;
    checkpoint_file;
    should_stop;
  }

let run ?max_k ?max_iterations ?solver_options ?reset_start ?jobs ?portfolio
    ?certify ?cex_vcd ?budget ?budget_retries ?budget_escalation
    ?checkpoint_file ?resume ?should_stop spec =
  run_with ?resume
    (options_of ?max_k ?max_iterations ?solver_options ?reset_start ?jobs
       ?portfolio ?certify ?cex_vcd ?budget ?budget_retries ?budget_escalation
       ?checkpoint_file ?should_stop ())
    spec

let conclude ?max_k ?max_iterations ?solver_options ?jobs ?portfolio ?certify
    ?cex_vcd ?budget ?budget_retries ?budget_escalation ?checkpoint_file
    ?resume ?should_stop spec =
  conclude_with ?resume
    (options_of ?max_k ?max_iterations ?solver_options ?jobs ?portfolio
       ?certify ?cex_vcd ?budget ?budget_retries ?budget_escalation
       ?checkpoint_file ?should_stop ())
    spec
