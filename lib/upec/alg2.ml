open Rtl
module U = Ipc.Unroller

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

(* Shared session setup for the Fig. 4 unrolled property at depth k. *)
let setup_engine ?solver_options ?portfolio ?(certify = false)
    ?(register = fun (_ : Ipc.Engine.t) -> ()) ~reset_start spec k =
  let eng =
    Ipc.Engine.create ?solver_options ?portfolio ~certify ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  register eng;
  Ipc.Engine.ensure_frames eng k;
  if reset_start then Macros.assume_reset_state eng spec;
  Macros.assume_env eng spec ~frames:k;
  for f = 0 to k do
    Macros.primary_input_constraints eng spec ~frame:f;
    (* Fig. 4: Victim_Task_Executing during t..t+1 only; beyond that the
       victim port carries equal traffic in both instances *)
    if f <= 1 then Macros.victim_task_executing eng spec ~frame:f
    else Macros.victim_port_equal eng spec ~frame:f
  done;
  eng

let check_once ?solver_options ?portfolio ?certify ?register
    ?(reset_start = false) spec s_frames k =
  (* s_frames: array of length k+1 with the per-cycle sets *)
  let eng =
    setup_engine ?solver_options ?portfolio ?certify ?register ~reset_start
      spec k
  in
  Macros.state_equivalence_assume eng spec ~frame:0 s_frames.(0);
  let g = Ipc.Engine.graph eng in
  let goal = ref Aig.true_lit in
  for j = 1 to k do
    goal :=
      Aig.mk_and g !goal
        (Macros.state_equivalence_goal eng spec ~frame:j s_frames.(j))
  done;
  let r =
    match Ipc.Engine.check eng !goal with
    | Ipc.Engine.Holds -> None
    | Ipc.Engine.Cex cex ->
        let per_frame =
          List.init k (fun j ->
              let j = j + 1 in
              (j, Macros.violations eng spec cex ~frame:j s_frames.(j)))
        in
        Some (cex, per_frame)
  in
  ( r,
    Ipc.Engine.last_stats eng,
    Ipc.Engine.last_winner eng,
    Ipc.Engine.last_losers_stats eng )

(* Per-(frame, svar) decomposition for the parallel strategy. The
   unrolled property assumes equivalence only at cycle 0 — and sf.(0)
   never shrinks — so the assumption set of every individual check is
   constant: frame-0 equivalence is asserted permanently at worker
   construction, and each pair (j, sv) gets one activation literal
   arming diff_sv@j. Pair verdicts are therefore semantic facts, and
   the whole trace is identical for every job count. *)
type worker_state = {
  w_k : int;
  w_eng : Ipc.Engine.t;
  w_acts : (int * string, Aig.lit) Hashtbl.t;  (* (frame, svar) -> act *)
}

let make_worker ?solver_options ?portfolio ?certify ?register ~reset_start spec
    s0 k =
  let eng =
    setup_engine ?solver_options ?portfolio ?certify ?register ~reset_start
      spec k
  in
  Macros.state_equivalence_assume eng spec ~frame:0 s0;
  let g = Ipc.Engine.graph eng in
  let acts = Hashtbl.create 1024 in
  for j = 1 to k do
    Structural.Svar_set.iter
      (fun sv ->
        let diff = Aig.lit_not (Macros.sv_condition eng spec ~frame:j sv) in
        let act = Aig.fresh_var g in
        Ipc.Engine.assume_implication eng act diff;
        Hashtbl.replace acts (j, Structural.svar_name sv) act)
      s0
  done;
  { w_k = k; w_eng = eng; w_acts = acts }

let extract_cex ?solver_options ?certify ?register ~reset_start spec s0 k
    (j, sv) =
  let eng = setup_engine ?solver_options ?certify ?register ~reset_start spec k in
  Macros.state_equivalence_assume eng spec ~frame:0 s0;
  Ipc.Engine.check_sat eng
    [ Aig.lit_not (Macros.sv_condition eng spec ~frame:j sv) ]

let run ?(max_k = 8) ?(max_iterations = 128) ?solver_options
    ?(reset_start = false) ?jobs ?portfolio ?(certify = false) ?cex_vcd spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let s0 = Spec.s_neg_victim spec in
  let steps = ref [] in
  let per_svar = jobs <> None in
  let reg_mu = Mutex.create () in
  let engines = ref [] in
  let register e =
    Mutex.lock reg_mu;
    engines := e :: !engines;
    Mutex.unlock reg_mu
  in
  let cex_validated = ref None in
  let validate_cex ~claimed cex =
    if certify then begin
      let v = Certval.validate ?vcd_prefix:cex_vcd ~claimed nl cex in
      cex_validated := Some v.Certval.v_ok;
      v.Certval.v_ok
    end
    else begin
      (match cex_vcd with
      | Some _ ->
          ignore (Certval.validate ?vcd_prefix:cex_vcd ~claimed nl cex)
      | None -> ());
      true
    end
  in
  let finish verdict outcome =
    ( {
        Report.procedure =
          (match (reset_start, per_svar) with
          | true, false -> "BMC-from-reset (Alg. 2 property)"
          | true, true -> "BMC-from-reset (Alg. 2 property, per-svar)"
          | false, false -> "UPEC-SSC-unrolled (Alg. 2)"
          | false, true -> "UPEC-SSC-unrolled (Alg. 2, per-svar)");
        variant = spec.Spec.variant;
        verdict;
        steps = List.rev !steps;
        total_seconds = Unix.gettimeofday () -. t0;
        state_bits = Netlist.state_bits nl;
        svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
        cert =
          (if certify then
             Some
               {
                 Report.ct_totals =
                   List.fold_left
                     (fun acc e ->
                       Cert.Proof.add_totals acc (Ipc.Engine.cert_totals e))
                     Cert.Proof.zero_totals !engines;
                 ct_cex_validated = !cex_validated;
               }
           else None);
      },
      outcome )
  in
  let record ?stats ?winner ?losers iter k s_size cex pers dt =
    steps :=
      {
        Report.st_iter = iter;
        st_k = k;
        st_s_size = s_size;
        st_cex = cex;
        st_pers_hit = pers;
        st_seconds = dt;
        st_stats = stats;
        st_winner = winner;
        st_losers = losers;
      }
      :: !steps
  in
  (* growable array of per-cycle sets *)
  let s_frames = ref [| s0; s0 |] in
  match jobs with
  | None ->
      let rec loop iter k =
        if iter > max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted") Gave_up
        else begin
          let it0 = Unix.gettimeofday () in
          let sf = !s_frames in
          let result, st, win, lo =
            check_once ?solver_options ?portfolio ~certify ~register
              ~reset_start spec sf k
          in
          match result with
          | None ->
              let dt = Unix.gettimeofday () -. it0 in
              record ~stats:st ?winner:win ~losers:lo iter k
                (Structural.Svar_set.cardinal sf.(k))
                Structural.Svar_set.empty Structural.Svar_set.empty dt;
              if Structural.Svar_set.equal sf.(k) sf.(k - 1) then
                if reset_start then
                  (* a concrete-start (BMC) pass proves nothing beyond the
                     window: report it as such *)
                  finish
                    (Report.Inconclusive
                       (Printf.sprintf
                          "BMC from reset: no detection within %d cycles (no \
                           inductive meaning)" k))
                    (Hold { s_final = sf.(k); k })
                else
                  finish
                    (Report.Secure { s_final = sf.(k) })
                    (Hold { s_final = sf.(k); k })
              else if k >= max_k then
                finish (Report.Inconclusive "max unrolling reached") Gave_up
              else begin
                s_frames := Array.append sf [| sf.(k) |];
                loop (iter + 1) (k + 1)
              end
          | Some (cex, per_frame) ->
              let dt = Unix.gettimeofday () -. it0 in
              let all_cex =
                List.fold_left
                  (fun acc (_, v) -> Structural.Svar_set.union acc v)
                  Structural.Svar_set.empty per_frame
              in
              let pers_hit =
                Structural.Svar_set.filter (Spec.is_pers spec) all_cex
              in
              record ~stats:st ?winner:win ~losers:lo iter k
                (Structural.Svar_set.cardinal sf.(k))
                all_cex pers_hit dt;
              if Structural.Svar_set.is_empty all_cex then
                finish
                  (Report.Inconclusive
                     "counterexample without S_cex (spurious model)")
                  Gave_up
              else if not (Structural.Svar_set.is_empty pers_hit) then
                if validate_cex ~claimed:all_cex cex then
                  finish
                    (Report.Vulnerable { s_cex = all_cex; cex })
                    Found_vulnerable
                else
                  finish
                    (Report.Inconclusive
                       "counterexample rejected by simulator validation")
                    Gave_up
              else begin
                List.iter
                  (fun (j, v) -> sf.(j) <- Structural.Svar_set.diff sf.(j) v)
                  per_frame;
                loop (iter + 1) k
              end
        end
      in
      loop 1 1
  | Some j ->
      let jobs = max 1 j in
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let engines = Array.make (Parallel.Pool.jobs pool) None in
          let worker k wid =
            match engines.(wid) with
            | Some w when w.w_k = k -> w
            | _ ->
                let w =
                  make_worker ?solver_options ?portfolio ~certify ~register
                    ~reset_start spec s0 k
                in
                engines.(wid) <- Some w;
                w
          in
          let check_pairs k pairs =
            Parallel.Pool.map_wid pool
              (fun wid (j, sv) ->
                let w = worker k wid in
                let act = Hashtbl.find w.w_acts (j, Structural.svar_name sv) in
                ( (j, sv),
                  Ipc.Engine.sat w.w_eng [ act ],
                  Ipc.Engine.last_stats w.w_eng,
                  Ipc.Engine.last_winner w.w_eng,
                  Ipc.Engine.last_losers_stats w.w_eng ))
              pairs
          in
          let stats_of results =
            List.fold_left
              (fun (acc, w, lacc) (_, _, st, win, lo) ->
                ( Satsolver.Solver.add_stats acc st,
                  (match win with Some _ -> win | None -> w),
                  Satsolver.Solver.add_stats lacc lo ))
              (Satsolver.Solver.zero_stats, None, Satsolver.Solver.zero_stats)
              results
          in
          let rec loop iter k =
            if iter > max_iterations then
              finish (Report.Inconclusive "iteration budget exhausted") Gave_up
            else begin
              let it0 = Unix.gettimeofday () in
              let sf = !s_frames in
              let pairs p =
                List.concat_map
                  (fun j ->
                    Structural.Svar_set.fold
                      (fun sv acc -> if p sv then (j, sv) :: acc else acc)
                      sf.(j) []
                    |> List.rev)
                  (List.init k (fun i -> i + 1))
              in
              (* Persistent svars first: any hit ends the run early. *)
              let pers_results = check_pairs k (pairs (Spec.is_pers spec)) in
              let pers_sat =
                List.filter (fun (_, sat, _, _, _) -> sat) pers_results
              in
              if pers_sat <> [] then begin
                let pers_hit =
                  List.fold_left
                    (fun acc ((_, sv), _, _, _, _) ->
                      Structural.Svar_set.add sv acc)
                    Structural.Svar_set.empty pers_sat
                in
                let st, win, lo = stats_of pers_results in
                record ~stats:st ?winner:win ~losers:lo iter k
                  (Structural.Svar_set.cardinal sf.(k))
                  pers_hit pers_hit
                  (Unix.gettimeofday () -. it0);
                (* deterministic witness: smallest frame, then svar order *)
                let witness =
                  List.fold_left
                    (fun acc ((j, sv), _, _, _, _) ->
                      match acc with
                      | None -> Some (j, sv)
                      | Some (j', sv') ->
                          if
                            j < j'
                            || (j = j' && Structural.compare_svar sv sv' < 0)
                          then Some (j, sv)
                          else acc)
                    None pers_sat
                  |> Option.get
                in
                match
                  extract_cex ?solver_options ~certify ~register ~reset_start
                    spec s0 k witness
                with
                | Some cex ->
                    if
                      validate_cex
                        ~claimed:(Structural.Svar_set.singleton (snd witness))
                        cex
                    then
                      finish
                        (Report.Vulnerable { s_cex = pers_hit; cex })
                        Found_vulnerable
                    else
                      finish
                        (Report.Inconclusive
                           "counterexample rejected by simulator validation")
                        Gave_up
                | None ->
                    finish
                      (Report.Inconclusive
                         "per-svar SAT not reproducible on a fresh engine")
                      Gave_up
              end
              else begin
                let rest_results =
                  check_pairs k (pairs (fun sv -> not (Spec.is_pers spec sv)))
                in
                let per_frame =
                  List.init k (fun i ->
                      let j = i + 1 in
                      ( j,
                        List.fold_left
                          (fun acc ((j', sv), sat, _, _, _) ->
                            if sat && j' = j then
                              Structural.Svar_set.add sv acc
                            else acc)
                          Structural.Svar_set.empty rest_results ))
                in
                let all_cex =
                  List.fold_left
                    (fun acc (_, v) -> Structural.Svar_set.union acc v)
                    Structural.Svar_set.empty per_frame
                in
                let st, win, lo =
                  let s1, w1, l1 = stats_of pers_results in
                  let s2, w2, l2 = stats_of rest_results in
                  ( Satsolver.Solver.add_stats s1 s2,
                    (match w2 with Some _ -> w2 | None -> w1),
                    Satsolver.Solver.add_stats l1 l2 )
                in
                record ~stats:st ?winner:win ~losers:lo iter k
                  (Structural.Svar_set.cardinal sf.(k))
                  all_cex Structural.Svar_set.empty
                  (Unix.gettimeofday () -. it0);
                if Structural.Svar_set.is_empty all_cex then
                  if Structural.Svar_set.equal sf.(k) sf.(k - 1) then
                    if reset_start then
                      finish
                        (Report.Inconclusive
                           (Printf.sprintf
                              "BMC from reset: no detection within %d cycles \
                               (no inductive meaning)" k))
                        (Hold { s_final = sf.(k); k })
                    else
                      finish
                        (Report.Secure { s_final = sf.(k) })
                        (Hold { s_final = sf.(k); k })
                  else if k >= max_k then
                    finish (Report.Inconclusive "max unrolling reached") Gave_up
                  else begin
                    s_frames := Array.append sf [| sf.(k) |];
                    loop (iter + 1) (k + 1)
                  end
                else begin
                  List.iter
                    (fun (j, v) -> sf.(j) <- Structural.Svar_set.diff sf.(j) v)
                    per_frame;
                  loop (iter + 1) k
                end
              end
            end
          in
          loop 1 1)

let conclude ?max_k ?max_iterations ?solver_options ?jobs ?portfolio ?certify
    ?cex_vcd spec =
  let report, outcome =
    run ?max_k ?max_iterations ?solver_options ?jobs ?portfolio ?certify
      ?cex_vcd spec
  in
  match outcome with
  | Found_vulnerable | Gave_up -> report
  | Hold { s_final; k = _ } ->
      let induction =
        Alg1.run ~initial_s:s_final ?max_iterations ?solver_options ?jobs
          ?portfolio ?certify ?cex_vcd spec
      in
      {
        induction with
        Report.procedure = "UPEC-SSC-unrolled + induction";
        steps = report.Report.steps @ induction.Report.steps;
        total_seconds =
          report.Report.total_seconds +. induction.Report.total_seconds;
        cert = Report.merge_cert report.Report.cert induction.Report.cert;
      }
