open Rtl
module U = Ipc.Unroller
module S = Satsolver.Solver

(* Shared two-instance session setup for the 2-cycle property.
   [register] lets the caller keep a handle on every engine a run
   creates (certification and reduction totals are summed over all of
   them); the cooperative cancellation hook comes from
   [o.should_stop], polled from inside every solve. [portfolio] is
   explicit rather than read from [o] because counterexample
   re-derivation always runs sequentially. *)
let setup_engine (o : Options.t) ~portfolio
    ?(register = fun (_ : Ipc.Engine.t) -> ()) spec =
  let eng =
    Ipc.Engine.create ?solver_options:o.Options.solver_options ~portfolio
      ~certify:o.Options.certify ~cert_jobs:o.Options.cert_jobs
      ~simp:o.Options.simp ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  register eng;
  Ipc.Engine.set_interrupt eng o.Options.should_stop;
  Ipc.Engine.ensure_frames eng 1;
  Macros.assume_env eng spec ~frames:1;
  for f = 0 to 1 do
    Macros.primary_input_constraints eng spec ~frame:f;
    Macros.victim_task_executing eng spec ~frame:f
  done;
  eng

(* Escalating-budget retry around one engine decision: attempt 0 runs
   under [o.budget]; every budget-exhausted Unknown is retried with the
   limits scaled by [o.budget_escalation], at most [o.budget_retries]
   extra times. An interrupt is a control transfer, not exhaustion —
   never retried. *)
let with_retries (o : Options.t) eng (solve : unit -> Ipc.Engine.verdict) =
  let rec attempt n b =
    Ipc.Engine.set_budget eng b;
    match solve () with
    | Ipc.Engine.Unknown reason
      when reason <> "interrupted" && n < o.Options.budget_retries ->
        attempt (n + 1) (S.scale_budget b o.Options.budget_escalation)
    | r -> r
  in
  attempt 0 o.Options.budget

let check_once (o : Options.t) ?register spec s =
  let eng = setup_engine o ~portfolio:o.Options.portfolio ?register spec in
  Macros.state_equivalence_assume eng spec ~frame:0 s;
  let goal = Macros.state_equivalence_goal eng spec ~frame:1 s in
  let r =
    match
      with_retries o eng (fun () -> Ipc.Engine.decide eng (Ipc.Engine.Goal goal))
    with
    | Ipc.Engine.Proved -> `Holds
    | Ipc.Engine.Refuted c ->
        let cex = Option.get c in
        `Cex (cex, Macros.violations eng spec cex ~frame:1 s)
    | Ipc.Engine.Unknown reason -> `Unknown reason
  in
  ( r,
    Ipc.Engine.last_stats eng,
    Ipc.Engine.last_winner eng,
    Ipc.Engine.last_losers_stats eng )

(* Incremental variant: one engine for the whole fixed-point loop. The
   State_Equivalence(S) assumption travels through solver assumptions
   and each iteration's obligation is armed by an activation literal,
   so learnt clauses survive across iterations. *)
let make_incremental_checker (o : Options.t) ?register spec s0 =
  let eng = setup_engine o ~portfolio:o.Options.portfolio ?register spec in
  let g = Ipc.Engine.graph eng in
  (* per-svar condition literals at both cycles, computed once *)
  let conds = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv ->
      let eq0 = Macros.sv_condition eng spec ~frame:0 sv in
      let diff1 = Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) in
      Hashtbl.replace conds (Structural.svar_name sv) (eq0, diff1))
    s0;
  fun s ->
    let act = Aig.fresh_var g in
    let diffs =
      Structural.Svar_set.fold
        (fun sv acc -> snd (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
        s []
    in
    Ipc.Engine.assume_implication eng act (Aig.mk_or_list g diffs);
    let assumptions =
      act
      :: Structural.Svar_set.fold
           (fun sv acc ->
             fst (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
           s []
    in
    let r =
      match
        with_retries o eng (fun () ->
            Ipc.Engine.decide eng (Ipc.Engine.Violation assumptions))
      with
      | Ipc.Engine.Proved -> `Holds
      | Ipc.Engine.Refuted c ->
          let cex = Option.get c in
          `Cex (cex, Macros.violations eng spec cex ~frame:1 s)
      | Ipc.Engine.Unknown reason -> `Unknown reason
    in
    ( r,
      Ipc.Engine.last_stats eng,
      Ipc.Engine.last_winner eng,
      Ipc.Engine.last_losers_stats eng )

(* --- lemma cache hook -----------------------------------------------

   Each per-svar check is a semantic fact about (sv, S) and the design
   content; the proof farm memoises them across runs. [sc_lookup]
   answers [Some holds] when a cached lemma applies — the check is not
   solved at all and contributes zero solver stats; [sc_store] is
   called for every freshly decided check. Unknown results are never
   offered to the cache: exhaustion is a property of the budget, not
   of the formula. *)
type svar_cache = {
  sc_lookup : Structural.svar -> s:Structural.Svar_set.t -> bool option;
  sc_store : Structural.svar -> s:Structural.Svar_set.t -> holds:bool -> unit;
}

(* --- per-svar decomposition (the parallel strategy) ------------------

   Instead of one monolithic check whose S_cex is whatever happens to
   differ in the solver's model, decide for every state variable
   independently whether it *can* differ at cycle 1 under
   State_Equivalence(S) at cycle 0:

     S_cex := { sv in S | SAT( eq-assumptions(S)@0 /\ diff_sv@1 ) }

   Each membership is a semantic fact about the formula, so S_cex — and
   with it the whole refinement trace and the final S — is identical for
   every job count and schedule. It is also at least as large as any
   single model's violation set, so the fixed point is reached in no
   more iterations than the monolithic check needs.

   Persistent svars are checked first: any satisfiable one proves the
   design vulnerable and ends the run without touching the rest. *)

type worker_state = {
  w_eng : Ipc.Engine.t;
  w_conds : (string, Aig.lit * Aig.lit) Hashtbl.t;
      (* svar name -> (eq@0 assumption, activation literal arming diff@1) *)
}

let make_worker (o : Options.t) ?register spec s0 =
  let eng = setup_engine o ~portfolio:o.Options.portfolio ?register spec in
  let g = Ipc.Engine.graph eng in
  let conds = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv ->
      let eq0 = Macros.sv_condition eng spec ~frame:0 sv in
      let diff1 = Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) in
      let act = Aig.fresh_var g in
      Ipc.Engine.assume_implication eng act diff1;
      Hashtbl.replace conds (Structural.svar_name sv) (eq0, act))
    s0;
  { w_eng = eng; w_conds = conds }

let check_svar (o : Options.t) w s sv =
  Obs.Trace.with_span "alg1.svar"
    ~attrs:[ ("svar", Obs.Trace.Str (Structural.svar_name sv)) ]
  @@ fun () ->
  let assumptions =
    snd (Hashtbl.find w.w_conds (Structural.svar_name sv))
    :: Structural.Svar_set.fold
         (fun sv' acc ->
           fst (Hashtbl.find w.w_conds (Structural.svar_name sv')) :: acc)
         s []
  in
  ( with_retries o w.w_eng (fun () ->
        Ipc.Engine.decide ~cex:false w.w_eng
          (Ipc.Engine.Violation assumptions)),
    Ipc.Engine.last_stats w.w_eng,
    Ipc.Engine.last_winner w.w_eng,
    Ipc.Engine.last_losers_stats w.w_eng )

(* Deterministic counterexample for the report: a worker's engine has
   solved a schedule-dependent sequence of obligations, so its model is
   not reproducible. Re-derive the witness on a fresh sequential engine
   for one fixed svar, without a budget — only an interrupt can stop it,
   surfacing as a missing witness. *)
let extract_cex (o : Options.t) ?register spec s sv =
  let eng = setup_engine o ~portfolio:1 ?register spec in
  Macros.state_equivalence_assume eng spec ~frame:0 s;
  match
    Ipc.Engine.decide eng
      (Ipc.Engine.Violation
         [ Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) ])
  with
  | Ipc.Engine.Refuted c -> c
  | Ipc.Engine.Proved | Ipc.Engine.Unknown _ -> None

let run_per_svar ?svar_cache (o : Options.t) ~jobs ~register ~start_iter
    ~initial_unknown ~stopped ~note_unknowns ~post_iter spec s0 finish
    record_step validate_cex =
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let engines = Array.make (Parallel.Pool.jobs pool) None in
      let worker wid =
        match engines.(wid) with
        | Some w -> w
        | None ->
            let w = make_worker o ~register spec s0 in
            engines.(wid) <- Some w;
            w
      in
      (* Cached checks are answered before the pool sees them; fresh
         results are offered back to the cache, and the merged batch
         keeps the caller's svar order so the rest of the loop cannot
         tell the difference (a cached SAT carries no model — witness
         extraction always re-solves on a fresh engine). *)
      let check_batch s svs =
        let cached, fresh =
          match svar_cache with
          | None -> ([], svs)
          | Some c ->
              List.partition_map
                (fun sv ->
                  match c.sc_lookup sv ~s with
                  | Some holds -> Either.Left (sv, holds)
                  | None -> Either.Right sv)
                svs
        in
        let fresh_results =
          Parallel.Pool.map_wid pool
            (fun wid sv ->
              let verdict, stats, winner, losers =
                check_svar o (worker wid) s sv
              in
              (sv, verdict, stats, winner, losers))
            fresh
        in
        match svar_cache with
        | None -> fresh_results
        | Some c ->
            List.iter
              (fun (sv, (v : Ipc.Engine.verdict), _, _, _) ->
                match v with
                | Ipc.Engine.Proved -> c.sc_store sv ~s ~holds:true
                | Ipc.Engine.Refuted _ -> c.sc_store sv ~s ~holds:false
                | Ipc.Engine.Unknown _ -> ())
              fresh_results;
            let by_name = Hashtbl.create (List.length fresh_results) in
            List.iter
              (fun ((sv, _, _, _, _) as r) ->
                Hashtbl.replace by_name (Structural.svar_name sv) r)
              fresh_results;
            List.map
              (fun sv ->
                match Hashtbl.find_opt by_name (Structural.svar_name sv) with
                | Some r -> r
                | None ->
                    let holds = List.assq sv cached in
                    ( sv,
                      (if holds then Ipc.Engine.Proved
                       else Ipc.Engine.Refuted None),
                      S.zero_stats,
                      None,
                      S.zero_stats ))
              svs
      in
      let stats_of results =
        List.fold_left
          (fun (acc, w, lacc) (_, _, st, win, lo) ->
            ( S.add_stats acc st,
              (match win with Some _ -> win | None -> w),
              S.add_stats lacc lo ))
          (S.zero_stats, None, S.zero_stats)
          results
      in
      let sat_set results =
        List.fold_left
          (fun acc (sv, v, _, _, _) ->
            match v with
            | Ipc.Engine.Refuted _ -> Structural.Svar_set.add sv acc
            | _ -> acc)
          Structural.Svar_set.empty results
      in
      (* budget-degraded svars of a batch; interrupts are excluded — an
         interrupted iteration is discarded wholesale, never recorded as
         degradation (that would make resume schedule-dependent) *)
      let unknown_list results =
        List.filter_map
          (fun (sv, (v : Ipc.Engine.verdict), _, _, _) ->
            match v with
            | Ipc.Engine.Unknown reason when reason <> "interrupted" ->
                Some (sv, reason)
            | _ -> None)
          results
      in
      (* Unknown svars stay in S — and with it in the cycle-0 equality
         assumption of every later check — but leave the goal set: we
         stop trying to decide them. Removing them from S would weaken
         the assumptions and could manufacture spurious divergences
         (false VULNERABLE on a secure design); keeping them assumed is
         sound for SAT answers (a model under extra equalities is still
         a real trace pair) and the unproven equalities degrade any
         Secure claim to Inconclusive at [finish]. *)
      let undecided = ref initial_unknown in
      let rec loop iter s =
        if iter > o.Options.max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted")
        else begin
          let it0 = Unix.gettimeofday () in
          let pers, rest =
            Structural.Svar_set.partition (Spec.is_pers spec)
              (Structural.Svar_set.diff s !undecided)
          in
          let pers_results =
            check_batch s (Structural.Svar_set.elements pers)
          in
          if stopped () then finish (Report.Inconclusive "interrupted")
          else begin
            let pers_hit = sat_set pers_results in
            if not (Structural.Svar_set.is_empty pers_hit) then begin
              (* Vulnerable: no need to classify the remaining svars.
                 Another svar's Unknown cannot retract a concrete SAT. *)
              let stats, winner, losers = stats_of pers_results in
              let unknown = unknown_list pers_results in
              note_unknowns unknown;
              record_step ~iter ~s ~s_cex:pers_hit ~pers_hit
                ~unknown:
                  (List.fold_left
                     (fun acc (sv, _) -> Structural.Svar_set.add sv acc)
                     Structural.Svar_set.empty unknown)
                ~seconds:(Unix.gettimeofday () -. it0)
                ~stats:(Some stats) ~winner ~losers:(Some losers);
              let witness = Structural.Svar_set.min_elt pers_hit in
              match extract_cex o ~register spec s witness with
              | Some cex ->
                  if
                    validate_cex ~claimed:(Structural.Svar_set.singleton witness)
                      cex
                  then finish (Report.Vulnerable { s_cex = pers_hit; cex })
                  else
                    finish
                      (Report.Inconclusive
                         "counterexample rejected by simulator validation")
              | None ->
                  finish
                    (Report.Inconclusive
                       (if stopped () then "interrupted"
                        else "per-svar SAT not reproducible on a fresh engine"))
            end
            else begin
              let rest_results =
                check_batch s (Structural.Svar_set.elements rest)
              in
              if stopped () then finish (Report.Inconclusive "interrupted")
              else begin
                let s_cex = sat_set rest_results in
                let unknown = unknown_list pers_results @ unknown_list rest_results in
                note_unknowns unknown;
                let unknown_set =
                  List.fold_left
                    (fun acc (sv, _) -> Structural.Svar_set.add sv acc)
                    Structural.Svar_set.empty unknown
                in
                undecided := Structural.Svar_set.union !undecided unknown_set;
                let stats, winner, losers =
                  let s1, w1, l1 = stats_of pers_results in
                  let s2, w2, l2 = stats_of rest_results in
                  ( S.add_stats s1 s2,
                    (match w2 with Some _ -> w2 | None -> w1),
                    S.add_stats l1 l2 )
                in
                record_step ~iter ~s ~s_cex ~pers_hit:Structural.Svar_set.empty
                  ~unknown:unknown_set
                  ~seconds:(Unix.gettimeofday () -. it0)
                  ~stats:(Some stats) ~winner ~losers:(Some losers);
                if Structural.Svar_set.is_empty s_cex then
                  (* every goal still being decided held under the full
                     assumption set: fixed point (a non-empty [undecided]
                     degrades the verdict at [finish]) *)
                  finish (Report.Secure { s_final = s })
                else begin
                  let s' = Structural.Svar_set.diff s s_cex in
                  post_iter ~next_iter:(iter + 1) ~s:s';
                  loop (iter + 1) s'
                end
              end
            end
          end
        end
      in
      loop start_iter s0)

let svar_table nl =
  let tbl = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv -> Hashtbl.replace tbl (Structural.svar_name sv) sv)
    (Structural.all_svars nl);
  tbl

let resolve_names tbl names ~what =
  List.fold_left
    (fun acc n ->
      match Hashtbl.find_opt tbl n with
      | Some sv -> Structural.Svar_set.add sv acc
      | None ->
          invalid_arg
            (Printf.sprintf "%s: checkpoint names unknown state var %s" what n))
    Structural.Svar_set.empty names

let variant_tag = function
  | Spec.Vulnerable -> "vulnerable"
  | Spec.Secure -> "secure"

let run_with ?initial_s ?resume ?svar_cache (o : Options.t) spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let config_hash = lazy (Checkpoint.config_hash ~alg:Checkpoint.Alg1 spec) in
  let unknowns_acc = ref [] (* reverse order *) in
  let note_unknowns us =
    List.iter
      (fun (sv, reason) ->
        let entry = (Structural.svar_name sv, reason) in
        if not (List.mem entry !unknowns_acc) then
          unknowns_acc := entry :: !unknowns_acc)
      us
  in
  let start_iter, s0 =
    match resume with
    | None -> (
        ( 1,
          match initial_s with
          | Some s -> s
          | None -> Spec.s_neg_victim spec ))
    | Some ck ->
        if ck.Checkpoint.ck_alg <> Checkpoint.Alg1 then
          invalid_arg "Alg1.run: checkpoint was written by another algorithm";
        if ck.Checkpoint.ck_config_hash <> Lazy.force config_hash then
          invalid_arg
            "Alg1.run: checkpoint config hash mismatch (different design, \
             variant or persistence model)";
        unknowns_acc := List.rev ck.Checkpoint.ck_unknown;
        let tbl = svar_table nl in
        ( ck.Checkpoint.ck_iter,
          resolve_names tbl ck.Checkpoint.ck_frames.(0) ~what:"Alg1.run" )
  in
  let stopped () =
    match o.Options.should_stop with Some f -> f () | None -> false
  in
  let post_iter ~next_iter ~s =
    match o.Options.checkpoint_file with
    | None -> ()
    | Some path ->
        Checkpoint.save path
          {
            Checkpoint.ck_alg = Checkpoint.Alg1;
            ck_variant = variant_tag spec.Spec.variant;
            ck_config_hash = Lazy.force config_hash;
            ck_iter = next_iter;
            ck_k = 1;
            ck_frames =
              [|
                List.map Structural.svar_name (Structural.Svar_set.elements s);
              |];
            ck_unknown = List.rev !unknowns_acc;
          }
  in
  let steps = ref [] in
  let procedure =
    match o.Options.jobs with
    | Some _ -> "UPEC-SSC (Alg. 1, per-svar)"
    | None ->
        if o.Options.incremental then "UPEC-SSC (Alg. 1, incremental)"
        else "UPEC-SSC (Alg. 1)"
  in
  (* engine registry: workers create engines inside pool domains, so the
     list is mutex-protected; reads happen after the pool has drained *)
  let reg_mu = Mutex.create () in
  let engines = ref [] in
  let register e =
    Mutex.lock reg_mu;
    engines := e :: !engines;
    Mutex.unlock reg_mu
  in
  let cex_validated = ref None in
  let validate_cex ~claimed cex =
    if o.Options.certify then begin
      let v =
        Certval.validate ?vcd_prefix:o.Options.cex_vcd ~claimed nl cex
      in
      cex_validated := Some v.Certval.v_ok;
      v.Certval.v_ok
    end
    else begin
      (match o.Options.cex_vcd with
      | Some _ ->
          ignore
            (Certval.validate ?vcd_prefix:o.Options.cex_vcd ~claimed nl cex)
      | None -> ());
      true
    end
  in
  let finish verdict =
    let unknowns = List.rev !unknowns_acc in
    (* the fixed point assumed equality of every undecided svar without
       proving it, so a Secure claim is contaminated by any Unknown —
       degrade. A Vulnerable verdict rests on a concrete validated
       witness (extra equality assumptions only restrict the start
       space, never invent traces) and stands. *)
    let undecided_names =
      List.sort_uniq compare (List.map fst unknowns)
    in
    let verdict =
      match verdict with
      | Report.Secure _ when undecided_names <> [] ->
          Report.Inconclusive
            (Printf.sprintf "budget exhausted on %d state var(s): %s"
               (List.length undecided_names)
               (String.concat ", " undecided_names))
      | v -> v
    in
    {
      Report.procedure;
      variant = spec.Spec.variant;
      verdict;
      steps = List.rev !steps;
      total_seconds = Unix.gettimeofday () -. t0;
      state_bits = Netlist.state_bits nl;
      svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
      cert =
        (if o.Options.certify then
           Some
             {
               Report.ct_totals =
                 List.fold_left
                   (fun acc e ->
                     Cert.Proof.add_totals acc (Ipc.Engine.cert_totals e))
                   Cert.Proof.zero_totals !engines;
               ct_cex_validated = !cex_validated;
             }
         else None);
      unknowns;
      resumed_from =
        (match resume with
        | Some ck -> Some ck.Checkpoint.ck_iter
        | None -> None);
      metrics = Some (Obs.Metrics.snapshot ());
      options = Some o;
      simp =
        List.fold_left
          (fun acc e ->
            match Ipc.Engine.reduction_stats e with
            | None -> acc
            | Some r -> (
                match acc with
                | None -> Some r
                | Some a -> Some (Simp.merge_reduction a r)))
          None !engines;
      cache = None;
      extra = [];
    }
  in
  let record_step ~iter ~s ~s_cex ~pers_hit ~unknown ~seconds ~stats ~winner
      ~losers =
    (* [record_step] is the single funnel both the sequential and the
       per-svar paths go through, so the per-iteration span lives here
       as a manual (non-lexical) span reconstructed from [seconds]. *)
    (if Obs.Trace.enabled () then
       let t1 = Unix.gettimeofday () in
       Obs.Trace.emit_span "alg1.iter" ~t0:(t1 -. seconds) ~t1
         ~attrs:
           [
             ("iter", Obs.Trace.Int iter);
             ("s_size", Obs.Trace.Int (Structural.Svar_set.cardinal s));
             ("cex_size", Obs.Trace.Int (Structural.Svar_set.cardinal s_cex));
           ]);
    steps :=
      {
        Report.st_iter = iter;
        st_k = 1;
        st_s_size = Structural.Svar_set.cardinal s;
        st_cex = s_cex;
        st_pers_hit = pers_hit;
        st_unknown = unknown;
        st_seconds = seconds;
        st_stats = stats;
        st_winner = winner;
        st_losers = losers;
      }
      :: !steps
  in
  match o.Options.jobs with
  | Some j ->
      let initial_unknown =
        match resume with
        | None -> Structural.Svar_set.empty
        | Some ck ->
            resolve_names (svar_table nl)
              (List.map fst ck.Checkpoint.ck_unknown)
              ~what:"Alg1.run"
      in
      run_per_svar ?svar_cache o ~jobs:(max 1 j) ~register ~start_iter
        ~initial_unknown ~stopped ~note_unknowns ~post_iter spec s0 finish
        record_step validate_cex
  | None ->
      let checker =
        if o.Options.incremental then
          make_incremental_checker o ~register spec s0
        else check_once o ~register spec
      in
      let rec loop iter s =
        if iter > o.Options.max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted")
        else begin
          let it0 = Unix.gettimeofday () in
          let result, stats, winner, losers = checker s in
          match result with
          | `Unknown reason ->
              (* a monolithic check cannot attribute exhaustion to one
                 svar; the run ends inconclusive — but never crashes *)
              finish
                (Report.Inconclusive
                   (if stopped () || reason = "interrupted" then "interrupted"
                    else "undecided within budget: " ^ reason))
          | `Holds ->
              record_step ~iter ~s ~s_cex:Structural.Svar_set.empty
                ~pers_hit:Structural.Svar_set.empty
                ~unknown:Structural.Svar_set.empty
                ~seconds:(Unix.gettimeofday () -. it0)
                ~stats:(Some stats) ~winner ~losers:(Some losers);
              finish (Report.Secure { s_final = s })
          | `Cex (cex, s_cex) ->
              if stopped () then finish (Report.Inconclusive "interrupted")
              else begin
                let pers_hit =
                  Structural.Svar_set.filter (Spec.is_pers spec) s_cex
                in
                record_step ~iter ~s ~s_cex ~pers_hit
                  ~unknown:Structural.Svar_set.empty
                  ~seconds:(Unix.gettimeofday () -. it0)
                  ~stats:(Some stats) ~winner ~losers:(Some losers);
                if Structural.Svar_set.is_empty s_cex then
                  finish
                    (Report.Inconclusive
                       "counterexample without S_cex (spurious model)")
                else if not (Structural.Svar_set.is_empty pers_hit) then
                  if validate_cex ~claimed:s_cex cex then
                    finish (Report.Vulnerable { s_cex; cex })
                  else
                    finish
                      (Report.Inconclusive
                         "counterexample rejected by simulator validation")
                else begin
                  let s' = Structural.Svar_set.diff s s_cex in
                  post_iter ~next_iter:(iter + 1) ~s:s';
                  loop (iter + 1) s'
                end
              end
        end
      in
      loop start_iter s0

let run ?initial_s ?(max_iterations = 64) ?solver_options
    ?(incremental = false) ?jobs ?portfolio ?(certify = false) ?cex_vcd
    ?(budget = S.no_budget) ?(budget_retries = 2) ?(budget_escalation = 4.0)
    ?checkpoint_file ?resume ?should_stop spec =
  run_with ?initial_s ?resume
    {
      Options.default with
      Options.max_iterations;
      solver_options;
      incremental;
      jobs;
      portfolio = (match portfolio with Some p -> p | None -> 1);
      certify;
      cex_vcd;
      budget;
      budget_retries;
      budget_escalation;
      checkpoint_file;
      should_stop;
    }
    spec
