open Rtl
module U = Ipc.Unroller

(* Shared two-instance session setup for the 2-cycle property.
   [register] lets the caller keep a handle on every engine a run
   creates (certification totals are summed over all of them). *)
let setup_engine ?solver_options ?portfolio ?(certify = false)
    ?(register = fun (_ : Ipc.Engine.t) -> ()) spec =
  let eng =
    Ipc.Engine.create ?solver_options ?portfolio ~certify ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  register eng;
  Ipc.Engine.ensure_frames eng 1;
  Macros.assume_env eng spec ~frames:1;
  for f = 0 to 1 do
    Macros.primary_input_constraints eng spec ~frame:f;
    Macros.victim_task_executing eng spec ~frame:f
  done;
  eng

let check_once ?solver_options ?portfolio ?certify ?register spec s =
  let eng = setup_engine ?solver_options ?portfolio ?certify ?register spec in
  Macros.state_equivalence_assume eng spec ~frame:0 s;
  let goal = Macros.state_equivalence_goal eng spec ~frame:1 s in
  let r =
    match Ipc.Engine.check eng goal with
    | Ipc.Engine.Holds -> None
    | Ipc.Engine.Cex cex ->
        Some (cex, Macros.violations eng spec cex ~frame:1 s)
  in
  ( r,
    Ipc.Engine.last_stats eng,
    Ipc.Engine.last_winner eng,
    Ipc.Engine.last_losers_stats eng )

(* Incremental variant: one engine for the whole fixed-point loop. The
   State_Equivalence(S) assumption travels through solver assumptions
   and each iteration's obligation is armed by an activation literal,
   so learnt clauses survive across iterations. *)
let make_incremental_checker ?solver_options ?portfolio ?certify ?register spec
    s0 =
  let eng = setup_engine ?solver_options ?portfolio ?certify ?register spec in
  let g = Ipc.Engine.graph eng in
  (* per-svar condition literals at both cycles, computed once *)
  let conds = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv ->
      let eq0 = Macros.sv_condition eng spec ~frame:0 sv in
      let diff1 = Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) in
      Hashtbl.replace conds (Structural.svar_name sv) (eq0, diff1))
    s0;
  fun s ->
    let act = Aig.fresh_var g in
    let diffs =
      Structural.Svar_set.fold
        (fun sv acc -> snd (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
        s []
    in
    Ipc.Engine.assume_implication eng act (Aig.mk_or_list g diffs);
    let assumptions =
      act
      :: Structural.Svar_set.fold
           (fun sv acc ->
             fst (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
           s []
    in
    let r =
      match Ipc.Engine.check_sat eng assumptions with
      | None -> None
      | Some cex -> Some (cex, Macros.violations eng spec cex ~frame:1 s)
    in
    ( r,
      Ipc.Engine.last_stats eng,
      Ipc.Engine.last_winner eng,
      Ipc.Engine.last_losers_stats eng )

(* --- per-svar decomposition (the parallel strategy) ------------------

   Instead of one monolithic check whose S_cex is whatever happens to
   differ in the solver's model, decide for every state variable
   independently whether it *can* differ at cycle 1 under
   State_Equivalence(S) at cycle 0:

     S_cex := { sv in S | SAT( eq-assumptions(S)@0 /\ diff_sv@1 ) }

   Each membership is a semantic fact about the formula, so S_cex — and
   with it the whole refinement trace and the final S — is identical for
   every job count and schedule. It is also at least as large as any
   single model's violation set, so the fixed point is reached in no
   more iterations than the monolithic check needs.

   Persistent svars are checked first: any satisfiable one proves the
   design vulnerable and ends the run without touching the rest. *)

type worker_state = {
  w_eng : Ipc.Engine.t;
  w_conds : (string, Aig.lit * Aig.lit) Hashtbl.t;
      (* svar name -> (eq@0 assumption, activation literal arming diff@1) *)
}

let make_worker ?solver_options ?portfolio ?certify ?register spec s0 =
  let eng = setup_engine ?solver_options ?portfolio ?certify ?register spec in
  let g = Ipc.Engine.graph eng in
  let conds = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv ->
      let eq0 = Macros.sv_condition eng spec ~frame:0 sv in
      let diff1 = Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) in
      let act = Aig.fresh_var g in
      Ipc.Engine.assume_implication eng act diff1;
      Hashtbl.replace conds (Structural.svar_name sv) (eq0, act))
    s0;
  { w_eng = eng; w_conds = conds }

let check_svar w s sv =
  let assumptions =
    snd (Hashtbl.find w.w_conds (Structural.svar_name sv))
    :: Structural.Svar_set.fold
         (fun sv' acc ->
           fst (Hashtbl.find w.w_conds (Structural.svar_name sv')) :: acc)
         s []
  in
  ( Ipc.Engine.sat w.w_eng assumptions,
    Ipc.Engine.last_stats w.w_eng,
    Ipc.Engine.last_winner w.w_eng,
    Ipc.Engine.last_losers_stats w.w_eng )

(* Deterministic counterexample for the report: a worker's engine has
   solved a schedule-dependent sequence of obligations, so its model is
   not reproducible. Re-derive the witness on a fresh sequential engine
   for one fixed svar. *)
let extract_cex ?solver_options ?certify ?register spec s sv =
  let eng = setup_engine ?solver_options ?certify ?register spec in
  Macros.state_equivalence_assume eng spec ~frame:0 s;
  Ipc.Engine.check_sat eng
    [ Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) ]

let run_per_svar ~jobs ?solver_options ?portfolio ?certify ?register
    ~max_iterations spec s0 finish record_step validate_cex =
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let engines = Array.make (Parallel.Pool.jobs pool) None in
      let worker wid =
        match engines.(wid) with
        | Some w -> w
        | None ->
            let w =
              make_worker ?solver_options ?portfolio ?certify ?register spec s0
            in
            engines.(wid) <- Some w;
            w
      in
      let check_batch s svs =
        Parallel.Pool.map_wid pool
          (fun wid sv ->
            let sat, stats, winner, losers = check_svar (worker wid) s sv in
            (sv, sat, stats, winner, losers))
          svs
      in
      let stats_of results =
        List.fold_left
          (fun (acc, w, lacc) (_, _, st, win, lo) ->
            ( Satsolver.Solver.add_stats acc st,
              (match win with Some _ -> win | None -> w),
              Satsolver.Solver.add_stats lacc lo ))
          (Satsolver.Solver.zero_stats, None, Satsolver.Solver.zero_stats)
          results
      in
      let sat_set results =
        List.fold_left
          (fun acc (sv, sat, _, _, _) ->
            if sat then Structural.Svar_set.add sv acc else acc)
          Structural.Svar_set.empty results
      in
      let rec loop iter s =
        if iter > max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted")
        else begin
          let it0 = Unix.gettimeofday () in
          let pers, rest =
            Structural.Svar_set.partition (Spec.is_pers spec) s
          in
          let pers_results =
            check_batch s (Structural.Svar_set.elements pers)
          in
          let pers_hit = sat_set pers_results in
          if not (Structural.Svar_set.is_empty pers_hit) then begin
            (* Vulnerable: no need to classify the remaining svars. *)
            let stats, winner, losers = stats_of pers_results in
            record_step ~iter ~s ~s_cex:pers_hit ~pers_hit
              ~seconds:(Unix.gettimeofday () -. it0)
              ~stats:(Some stats) ~winner ~losers:(Some losers);
            let witness = Structural.Svar_set.min_elt pers_hit in
            match extract_cex ?solver_options ?certify ?register spec s witness
            with
            | Some cex ->
                if
                  validate_cex ~claimed:(Structural.Svar_set.singleton witness)
                    cex
                then finish (Report.Vulnerable { s_cex = pers_hit; cex })
                else
                  finish
                    (Report.Inconclusive
                       "counterexample rejected by simulator validation")
            | None ->
                finish
                  (Report.Inconclusive
                     "per-svar SAT not reproducible on a fresh engine")
          end
          else begin
            let rest_results =
              check_batch s (Structural.Svar_set.elements rest)
            in
            let s_cex = sat_set rest_results in
            let stats, winner, losers =
              let s1, w1, l1 = stats_of pers_results in
              let s2, w2, l2 = stats_of rest_results in
              ( Satsolver.Solver.add_stats s1 s2,
                (match w2 with Some _ -> w2 | None -> w1),
                Satsolver.Solver.add_stats l1 l2 )
            in
            record_step ~iter ~s ~s_cex ~pers_hit:Structural.Svar_set.empty
              ~seconds:(Unix.gettimeofday () -. it0)
              ~stats:(Some stats) ~winner ~losers:(Some losers);
            if Structural.Svar_set.is_empty s_cex then
              finish (Report.Secure { s_final = s })
            else loop (iter + 1) (Structural.Svar_set.diff s s_cex)
          end
        end
      in
      loop 1 s0)

let run ?initial_s ?(max_iterations = 64) ?solver_options
    ?(incremental = false) ?jobs ?portfolio ?(certify = false) ?cex_vcd spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let s0 =
    match initial_s with Some s -> s | None -> Spec.s_neg_victim spec
  in
  let steps = ref [] in
  let procedure =
    match jobs with
    | Some _ -> "UPEC-SSC (Alg. 1, per-svar)"
    | None ->
        if incremental then "UPEC-SSC (Alg. 1, incremental)"
        else "UPEC-SSC (Alg. 1)"
  in
  (* engine registry: workers create engines inside pool domains, so the
     list is mutex-protected; reads happen after the pool has drained *)
  let reg_mu = Mutex.create () in
  let engines = ref [] in
  let register e =
    Mutex.lock reg_mu;
    engines := e :: !engines;
    Mutex.unlock reg_mu
  in
  let cex_validated = ref None in
  let validate_cex ~claimed cex =
    if certify then begin
      let v = Certval.validate ?vcd_prefix:cex_vcd ~claimed nl cex in
      cex_validated := Some v.Certval.v_ok;
      v.Certval.v_ok
    end
    else begin
      (match cex_vcd with
      | Some _ ->
          ignore (Certval.validate ?vcd_prefix:cex_vcd ~claimed nl cex)
      | None -> ());
      true
    end
  in
  let finish verdict =
    {
      Report.procedure;
      variant = spec.Spec.variant;
      verdict;
      steps = List.rev !steps;
      total_seconds = Unix.gettimeofday () -. t0;
      state_bits = Netlist.state_bits nl;
      svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
      cert =
        (if certify then
           Some
             {
               Report.ct_totals =
                 List.fold_left
                   (fun acc e ->
                     Cert.Proof.add_totals acc (Ipc.Engine.cert_totals e))
                   Cert.Proof.zero_totals !engines;
               ct_cex_validated = !cex_validated;
             }
         else None);
    }
  in
  let record_step ~iter ~s ~s_cex ~pers_hit ~seconds ~stats ~winner ~losers =
    steps :=
      {
        Report.st_iter = iter;
        st_k = 1;
        st_s_size = Structural.Svar_set.cardinal s;
        st_cex = s_cex;
        st_pers_hit = pers_hit;
        st_seconds = seconds;
        st_stats = stats;
        st_winner = winner;
        st_losers = losers;
      }
      :: !steps
  in
  match jobs with
  | Some j ->
      run_per_svar ~jobs:(max 1 j) ?solver_options ?portfolio ~certify
        ~register ~max_iterations spec s0 finish record_step validate_cex
  | None ->
      let checker =
        if incremental then
          make_incremental_checker ?solver_options ?portfolio ~certify
            ~register spec s0
        else check_once ?solver_options ?portfolio ~certify ~register spec
      in
      let rec loop iter s =
        if iter > max_iterations then
          finish (Report.Inconclusive "iteration budget exhausted")
        else begin
          let it0 = Unix.gettimeofday () in
          let result, stats, winner, losers = checker s in
          match result with
          | None ->
              record_step ~iter ~s ~s_cex:Structural.Svar_set.empty
                ~pers_hit:Structural.Svar_set.empty
                ~seconds:(Unix.gettimeofday () -. it0)
                ~stats:(Some stats) ~winner ~losers:(Some losers);
              finish (Report.Secure { s_final = s })
          | Some (cex, s_cex) ->
              let pers_hit =
                Structural.Svar_set.filter (Spec.is_pers spec) s_cex
              in
              record_step ~iter ~s ~s_cex ~pers_hit
                ~seconds:(Unix.gettimeofday () -. it0)
                ~stats:(Some stats) ~winner ~losers:(Some losers);
              if Structural.Svar_set.is_empty s_cex then
                finish
                  (Report.Inconclusive
                     "counterexample without S_cex (spurious model)")
              else if not (Structural.Svar_set.is_empty pers_hit) then
                if validate_cex ~claimed:s_cex cex then
                  finish (Report.Vulnerable { s_cex; cex })
                else
                  finish
                    (Report.Inconclusive
                       "counterexample rejected by simulator validation")
              else loop (iter + 1) (Structural.Svar_set.diff s s_cex)
        end
      in
      loop 1 s0
