(** Crash-safe persistence of UPEC-SSC iteration state.

    After every completed iteration, the driver can persist the
    algorithm's frontier — the candidate set(s), the iteration counter,
    the unroll depth and the svars already degraded to Unknown — and a
    later run can resume from it, reaching the {e same} final verdict
    as an uninterrupted run (iteration state is a semantic fact of the
    formula, not of the schedule).

    The on-disk form is a versioned line-based text file ending in an
    [end] marker; {!save} publishes it atomically (write to a temp file,
    [fsync], [rename]) so a crash at any point leaves either the
    previous checkpoint or the new one — never a torn file. A config
    hash over the algorithm, design variant, persistence model and the
    full svar universe guards resumption: state recorded under any
    other configuration is refused rather than misread. *)

type alg = Alg1 | Alg2

type t = {
  ck_alg : alg;
  ck_variant : string;  (** ["vulnerable"] or ["secure"] (informational) *)
  ck_config_hash : string;  (** see {!config_hash} *)
  ck_iter : int;  (** next iteration to run (1-based) *)
  ck_k : int;  (** unroll depth of that iteration; always 1 for Alg1 *)
  ck_frames : string list array;
      (** per-cycle candidate sets as svar names; Alg1 uses one frame,
          Alg2 one per cycle [0..k] *)
  ck_unknown : (string * string) list;
      (** svars degraded to Unknown with the resource reason; excluded
          from the frame sets but surfaced in the final report *)
}

val config_hash : alg:alg -> Spec.t -> string
(** Hex digest fingerprinting everything the stored names depend on.
    Resume refuses a checkpoint whose hash differs from the current
    run's. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] on unknown version, truncation
    (missing [end] marker) or any malformed record. *)

val save : string -> t -> unit
(** Atomic publish: temp file + [fsync] + [rename]. May raise
    [Unix.Unix_error] / [Sys_error] on I/O failure. *)

val load : string -> (t, string) result
(** [Error] (never an exception) on unreadable or malformed files. *)

val pp : Format.formatter -> t -> unit
