(* Crash-safe persistence of UPEC-SSC iteration state.

   The checkpoint is deliberately string-based: it stores svar *names*,
   not svars, so (de)serialization is a pure string transformation that
   can be property-tested without building a SoC, and the algorithm
   layer owns the name -> svar resolution (guarded by the config hash,
   which changes whenever the name universe could). *)

type alg = Alg1 | Alg2

type t = {
  ck_alg : alg;
  ck_variant : string;
  ck_config_hash : string;
  ck_iter : int;  (* next iteration to run (1-based) *)
  ck_k : int;  (* unroll depth of that iteration; always 1 for Alg1 *)
  ck_frames : string list array;
      (* per-frame candidate sets as sorted svar names; Alg1 uses a
         single frame, Alg2 one per cycle 0..k *)
  ck_unknown : (string * string) list;
      (* svars degraded to Unknown so far, with the budget reason — they
         are out of every frame set but must surface in the report *)
}

let version = 1
let magic = "upec-ssc-checkpoint"

(* ---- config hash ----------------------------------------------------

   Fingerprint of everything the iteration state depends on: algorithm,
   design variant, persistence model, state size and the full svar
   universe with per-svar persistence flags. Resuming under any other
   configuration would silently misinterpret the stored names. *)

let config_hash ~alg spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let b = Buffer.create 4096 in
  Buffer.add_string b (match alg with Alg1 -> "alg1" | Alg2 -> "alg2");
  Buffer.add_char b '\n';
  Buffer.add_string b
    (match spec.Spec.variant with
    | Spec.Vulnerable -> "vulnerable"
    | Spec.Secure -> "secure");
  Buffer.add_char b '\n';
  Buffer.add_string b
    (match spec.Spec.pers_model with
    | Spec.Full_pers -> "full-pers"
    | Spec.Memory_only -> "memory-only");
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (Rtl.Netlist.state_bits nl));
  Buffer.add_char b '\n';
  let names =
    Rtl.Structural.Svar_set.fold
      (fun sv acc ->
        (Rtl.Structural.svar_name sv, Spec.is_pers spec sv) :: acc)
      (Rtl.Structural.all_svars nl)
      []
    |> List.sort compare
  in
  List.iter
    (fun (n, pers) ->
      Buffer.add_string b n;
      Buffer.add_string b (if pers then " p\n" else " -\n"))
    names;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---- percent-encoding ----------------------------------------------

   Names and reasons are arbitrary byte strings as far as the format is
   concerned; everything outside [A-Za-z0-9_.:\[\]-] is %XX-escaped so a
   record is always one token on one line. *)

let enc_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = ':' || c = '[' || c = ']' || c = '-'

let encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if enc_ok c then Buffer.add_char b c
      else Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        (match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
        | None -> failwith "Checkpoint.decode: bad escape");
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

(* ---- text form ------------------------------------------------------ *)

let to_string ck =
  let b = Buffer.create 4096 in
  Printf.bprintf b "%s %d\n" magic version;
  Printf.bprintf b "hash %s\n" (encode ck.ck_config_hash);
  Printf.bprintf b "alg %s\n"
    (match ck.ck_alg with Alg1 -> "alg1" | Alg2 -> "alg2");
  Printf.bprintf b "variant %s\n" (encode ck.ck_variant);
  Printf.bprintf b "iter %d\n" ck.ck_iter;
  Printf.bprintf b "k %d\n" ck.ck_k;
  Printf.bprintf b "frames %d\n" (Array.length ck.ck_frames);
  Array.iteri
    (fun i names ->
      Printf.bprintf b "frame %d %d\n" i (List.length names);
      List.iter (fun n -> Printf.bprintf b "s %s\n" (encode n)) names)
    ck.ck_frames;
  List.iter
    (fun (n, reason) ->
      Printf.bprintf b "unknown %s %s\n" (encode n) (encode reason))
    ck.ck_unknown;
  Buffer.add_string b "end\n";
  Buffer.contents b

let of_string text =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let lines =
    (* tokens must be preserved exactly — an encoded empty name is an
       empty token, which [String.trim] would silently swallow — so only
       strip a Windows '\r' and skip blank lines *)
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l =
             let n = String.length l in
             if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
           in
           if String.trim l = "" then None
           else Some (String.split_on_char ' ' l))
  in
  match lines with
  | [ m; v ] :: rest when m = magic -> (
      match int_of_string_opt v with
      | Some ver when ver = version -> (
          let hash = ref None
          and alg = ref None
          and variant = ref None
          and iter = ref None
          and k = ref None
          and nframes = ref None in
          let frames = ref [] (* (idx, rev names) in rev order *)
          and unknown = ref []
          and ended = ref false
          and err = ref None in
          let set what r v =
            match !r with
            | None -> r := Some v
            | Some _ -> err := Some ("duplicate " ^ what)
          in
          let int_field what r s =
            match int_of_string_opt s with
            | Some i when i >= 0 -> set what r i
            | _ -> err := Some ("bad " ^ what)
          in
          List.iter
            (fun toks ->
              if !err = None then
                if !ended then err := Some "content after end marker"
                else
                  match toks with
                  | [ "hash"; h ] -> set "hash" hash (decode h)
                  | [ "alg"; "alg1" ] -> set "alg" alg Alg1
                  | [ "alg"; "alg2" ] -> set "alg" alg Alg2
                  | [ "variant"; v ] -> set "variant" variant (decode v)
                  | [ "iter"; i ] -> int_field "iter" iter i
                  | [ "k"; i ] -> int_field "k" k i
                  | [ "frames"; i ] -> int_field "frames" nframes i
                  | [ "frame"; i; _count ] -> (
                      match int_of_string_opt i with
                      | Some i when i = List.length !frames ->
                          frames := (i, ref []) :: !frames
                      | _ -> err := Some "bad frame header")
                  | [ "s"; n ] -> (
                      match !frames with
                      | (_, names) :: _ -> names := decode n :: !names
                      | [] -> err := Some "svar before frame header")
                  | [ "unknown"; n; reason ] ->
                      unknown := (decode n, decode reason) :: !unknown
                  | [ "end" ] -> ended := true
                  | _ -> err := Some "unrecognised line")
            rest;
          match (!err, !hash, !alg, !variant, !iter, !k, !nframes) with
          | Some m, _, _, _, _, _, _ -> fail "%s" m
          | _, None, _, _, _, _, _ -> fail "missing hash"
          | _, _, None, _, _, _, _ -> fail "missing alg"
          | _, _, _, None, _, _, _ -> fail "missing variant"
          | _, _, _, _, None, _, _ -> fail "missing iter"
          | _, _, _, _, _, None, _ -> fail "missing k"
          | _, _, _, _, _, _, None -> fail "missing frames"
          | ( None,
              Some hash,
              Some alg,
              Some variant,
              Some iter,
              Some k,
              Some nframes ) ->
              if not !ended then
                fail "truncated checkpoint (no end marker)"
              else if List.length !frames <> nframes then
                fail "frame count mismatch"
              else
                Ok
                  {
                    ck_alg = alg;
                    ck_variant = variant;
                    ck_config_hash = hash;
                    ck_iter = iter;
                    ck_k = k;
                    ck_frames =
                      (let arr = Array.make nframes [] in
                       List.iter
                         (fun (i, names) -> arr.(i) <- List.rev !names)
                         !frames;
                       arr);
                    ck_unknown = List.rev !unknown;
                  })
      | _ -> fail "unsupported checkpoint version")
  | _ -> fail "not a %s file" magic

(* ---- atomic file I/O ------------------------------------------------ *)

let save path ck =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let text = to_string ck in
      let n = String.length text in
      let written = Unix.write_substring fd text 0 n in
      if written <> n then failwith "Checkpoint.save: short write";
      (* the rename must only ever publish fully-persisted bytes: a
         crash between write and rename leaves the previous checkpoint
         untouched, never a torn file under [path] *)
      Unix.fsync fd);
  Sys.rename tmp path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error "unreadable checkpoint file"

let pp fmt ck =
  Format.fprintf fmt
    "%s iteration %d, k=%d, |S|=%d%s, %d svar(s) unknown [%s, hash %s]"
    (match ck.ck_alg with Alg1 -> "Alg. 1" | Alg2 -> "Alg. 2")
    ck.ck_iter ck.ck_k
    (match Array.length ck.ck_frames with
    | 0 -> 0
    | n -> List.length ck.ck_frames.(n - 1))
    (if Array.length ck.ck_frames > 1 then
       Printf.sprintf " (%d frames)" (Array.length ck.ck_frames)
     else "")
    (List.length ck.ck_unknown)
    ck.ck_variant
    (String.sub ck.ck_config_hash 0 (min 12 (String.length ck.ck_config_hash)))
