open Rtl

(** Algorithm 2: the unrolled UPEC-SSC procedure (Fig. 4).

    Maintains one state set per cycle; the property is unrolled cycle
    by cycle until either a persistent state variable diverges (a
    vulnerability, with an {e explicit} multi-cycle counterexample as
    Sec. 3.5 advocates) or no new state variables are influenced at the
    deepest cycle. A [Hold] outcome still requires the inductive proof,
    which {!conclude} performs by running Algorithm 1 from the final
    set. *)

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

val run :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?reset_start:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  Spec.t ->
  Report.run * outcome
(** [reset_start] pins cycle 0 to the concrete reset state, degrading
    IPC to plain bounded model checking — the E9 comparison. A [Hold]
    outcome under [reset_start] carries no inductive meaning; it shows
    BMC finding nothing within the window.

    [jobs] selects the per-(frame, svar) strategy: each pair [(j, sv)]
    with [sv] in the cycle-[j] set is decided independently on a pool
    of [jobs] workers. The unrolled property only assumes equivalence
    at cycle 0 — a set that never shrinks — so pair verdicts are
    semantic and the trace is identical for every [jobs] value.
    [portfolio] races that many solver configurations per SAT call.

    [certify] and [cex_vcd] behave as in {!Alg1.run}: every UNSAT
    result is revalidated by the independent RUP checker, SAT models by
    clause evaluation, and a vulnerable verdict's multi-cycle
    counterexample is replayed through the standalone simulator before
    it is reported. *)

val conclude :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  Spec.t ->
  Report.run
(** Run the unrolled procedure; on [Hold], finish with the Algorithm 1
    induction from the computed set and merge the reports (certification
    accounting from both phases is summed). *)
