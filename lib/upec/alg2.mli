open Rtl

(** Algorithm 2: the unrolled UPEC-SSC procedure (Fig. 4).

    Maintains one state set per cycle; the property is unrolled cycle
    by cycle until either a persistent state variable diverges (a
    vulnerability, with an {e explicit} multi-cycle counterexample as
    Sec. 3.5 advocates) or no new state variables are influenced at the
    deepest cycle. A [Hold] outcome still requires the inductive proof,
    which {!conclude} performs by running Algorithm 1 from the final
    set. *)

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

val run :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?reset_start:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run * outcome
(** [reset_start] pins cycle 0 to the concrete reset state, degrading
    IPC to plain bounded model checking — the E9 comparison. A [Hold]
    outcome under [reset_start] carries no inductive meaning; it shows
    BMC finding nothing within the window.

    [jobs] selects the per-(frame, svar) strategy: each pair [(j, sv)]
    with [sv] in the cycle-[j] set is decided independently on a pool
    of [jobs] workers. The unrolled property only assumes equivalence
    at cycle 0 — a set that never shrinks — so pair verdicts are
    semantic and the trace is identical for every [jobs] value.
    [portfolio] races that many solver configurations per SAT call.

    [certify] and [cex_vcd] behave as in {!Alg1.run}: every UNSAT
    result is revalidated by the independent RUP checker, SAT models by
    clause evaluation, and a vulnerable verdict's multi-cycle
    counterexample is replayed through the standalone simulator before
    it is reported.

    {b Resource governance} ([budget], [budget_retries],
    [budget_escalation]) works as in {!Alg1.run}; in the per-svar
    strategy a pair [(j, sv)] still Unknown after the last retry stays
    in the cycle-[j] set but is no longer checked, recorded in
    [Report.unknowns] as ["name@j"]. Any undecided pair degrades a
    standalone Secure verdict to [Inconclusive]; the [Hold] outcome
    survives, because {!conclude}'s induction re-decides every svar
    from scratch and subsumes the bounded window.

    {b Checkpoint/resume} ([checkpoint_file], [resume], [should_stop])
    also as in {!Alg1.run}; the checkpoint stores the full per-cycle
    frame array and the current unroll depth. [resume] refuses
    checkpoints written by Algorithm 1 ([Invalid_argument]); use
    {!conclude} to resume a combined run from either phase. *)

val conclude :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run
(** Run the unrolled procedure; on [Hold], finish with the Algorithm 1
    induction from the computed set and merge the reports (certification
    accounting from both phases is summed).

    With [checkpoint_file], the unrolled phase writes Alg2 checkpoints
    and the induction phase overwrites them with Alg1 checkpoints; a
    [resume] checkpoint of either kind is routed to the right phase
    (an Alg1 checkpoint skips the unrolled phase entirely). *)
