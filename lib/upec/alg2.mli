open Rtl

(** Algorithm 2: the unrolled UPEC-SSC procedure (Fig. 4).

    Maintains one state set per cycle; the property is unrolled cycle
    by cycle until either a persistent state variable diverges (a
    vulnerability, with an {e explicit} multi-cycle counterexample as
    Sec. 3.5 advocates) or no new state variables are influenced at the
    deepest cycle. A [Hold] outcome still requires the inductive proof,
    which {!conclude_with} performs by running Algorithm 1 from the
    final set. *)

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

val run_with :
  ?resume:Checkpoint.t -> Options.t -> Spec.t -> Report.run * outcome
(** The primary entry point; every knob lives in {!Options.t}.

    [Options.reset_start] pins cycle 0 to the concrete reset state,
    degrading IPC to plain bounded model checking — the E9 comparison.
    A [Hold] outcome under [reset_start] carries no inductive meaning;
    it shows BMC finding nothing within the window.

    {b Strategy selection.} [Options.jobs = Some j] decides each pair
    [(cycle, sv)] independently on a pool of [j] workers. The unrolled
    property only assumes equivalence at cycle 0 — a set that never
    shrinks — so pair verdicts are semantic and the trace is identical
    for every job count. [Options.jobs = None] runs one monolithic
    check per iteration; with [Options.incremental] set, a single warm
    solver session is reused across iterations {e and} across
    unroll-depth growth — when the depth grows only the new frame's
    constraints are appended, and the shrinking per-cycle goal travels
    on solver assumptions, so learnt clauses survive the whole
    refinement.

    {b Problem reduction.} [Options.simp] (on by default) restricts
    witness-free solves to the cone of influence of the property; it
    never changes verdicts, and counterexample extraction always runs
    on the full encoding. [Options.portfolio] races that many solver
    configurations per SAT call.

    [Options.certify] and [Options.cex_vcd] behave as in
    {!Alg1.run_with}: every UNSAT result is revalidated by the
    independent RUP checker, SAT models by clause evaluation, and a
    vulnerable verdict's multi-cycle counterexample is replayed through
    the standalone simulator before it is reported.

    {b Resource governance} works as in {!Alg1.run_with}; in the
    per-svar strategy a pair [(j, sv)] still Unknown after the last
    retry stays in the cycle-[j] set but is no longer checked, recorded
    in [Report.unknowns] as ["name@j"]. Any undecided pair degrades a
    standalone Secure verdict to [Inconclusive]; the [Hold] outcome
    survives, because {!conclude_with}'s induction re-decides every
    svar from scratch and subsumes the bounded window.

    {b Checkpoint/resume} also as in {!Alg1.run_with}; the checkpoint
    stores the full per-cycle frame array and the current unroll depth.
    [resume] refuses checkpoints written by Algorithm 1
    ([Invalid_argument]); use {!conclude_with} to resume a combined run
    from either phase. *)

val conclude_with :
  ?resume:Checkpoint.t ->
  ?svar_cache:Alg1.svar_cache ->
  Options.t ->
  Spec.t ->
  Report.run
(** Run the unrolled procedure; on [Hold], finish with the Algorithm 1
    induction from the computed set and merge the reports
    (certification and reduction accounting from both phases is
    summed).

    With [Options.checkpoint_file], the unrolled phase writes Alg2
    checkpoints and the induction phase overwrites them with Alg1
    checkpoints; a [resume] checkpoint of either kind is routed to the
    right phase (an Alg1 checkpoint skips the unrolled phase
    entirely).

    [svar_cache] memoises the induction phase's per-svar checks (see
    {!Alg1.svar_cache}); the unrolled phase never consults it — its
    (cycle, svar) obligations live in a k-deep formula that no 2-cycle
    lemma answers. *)

val run :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?reset_start:bool ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run * outcome
(** Legacy optional-argument surface with its historical defaults
    ([max_k] 8, [max_iterations] 128, [incremental] false); forwards
    to {!run_with}.
    @deprecated Use {!run_with} with an {!Options.t} record. *)

val conclude :
  ?max_k:int ->
  ?max_iterations:int ->
  ?solver_options:Satsolver.Solver.options ->
  ?jobs:int ->
  ?portfolio:int ->
  ?certify:bool ->
  ?cex_vcd:string ->
  ?budget:Satsolver.Solver.budget ->
  ?budget_retries:int ->
  ?budget_escalation:float ->
  ?checkpoint_file:string ->
  ?resume:Checkpoint.t ->
  ?should_stop:(unit -> bool) ->
  Spec.t ->
  Report.run
(** Legacy optional-argument surface; forwards to {!conclude_with}.
    @deprecated Use {!conclude_with} with an {!Options.t} record. *)
