module S = Satsolver.Solver

type design = {
  d_variant : string;
  d_pers : string;
  d_depth : int;
  d_banks : int;
  d_arbiter : string;
  d_dma : bool;
  d_hwpe : bool;
  d_uart : bool;
  d_timer : bool;
  d_dma_on_private : bool;
  d_timer_width : int;
}

let default_design =
  {
    d_variant = "vulnerable";
    d_pers = "full";
    d_depth = 8;
    d_banks = 2;
    d_arbiter = "rr";
    d_dma = true;
    d_hwpe = true;
    d_uart = true;
    d_timer = true;
    d_dma_on_private = Soc.Config.formal_default.Soc.Config.dma_on_private;
    d_timer_width = Soc.Config.formal_default.Soc.Config.timer_width;
  }

let arbiter_of_string = function
  | "fixed" -> `Fixed_priority
  | "tdma" -> `Tdma
  | _ -> `Round_robin

let config_of d =
  {
    Soc.Config.formal_default with
    Soc.Config.pub_depth = d.d_depth;
    priv_depth = d.d_depth;
    pub_banks = d.d_banks;
    priv_banks = d.d_banks;
    with_dma = d.d_dma;
    with_hwpe = d.d_hwpe;
    with_uart = d.d_uart;
    with_timer = d.d_timer;
    dma_on_private = d.d_dma_on_private;
    timer_width = d.d_timer_width;
    arbiter = arbiter_of_string d.d_arbiter;
  }

let spec_of d =
  let soc = Soc.Builder.build (config_of d) Soc.Builder.Formal in
  let variant =
    match d.d_variant with "secure" -> Spec.Secure | _ -> Spec.Vulnerable
  in
  let pers_model =
    match d.d_pers with "memory" -> Spec.Memory_only | _ -> Spec.Full_pers
  in
  Spec.make ~pers_model soc variant

let resolve_jobs = function
  | Some 0 -> Some (Parallel.Pool.default_jobs ())
  | j -> j

let budget_of ~conflicts ~props ~seconds =
  {
    S.max_conflicts = (if conflicts > 0 then conflicts else -1);
    max_propagations = (if props > 0 then props else -1);
    max_seconds = (if seconds > 0.0 then seconds else 0.0);
  }

(* ---------- JSON codec ---------- *)

let design_to_json d =
  Json.Obj
    [
      ("variant", Json.Str d.d_variant);
      ("pers", Json.Str d.d_pers);
      ("depth", Json.Int d.d_depth);
      ("banks", Json.Int d.d_banks);
      ("arbiter", Json.Str d.d_arbiter);
      ("dma", Json.Bool d.d_dma);
      ("hwpe", Json.Bool d.d_hwpe);
      ("uart", Json.Bool d.d_uart);
      ("timer", Json.Bool d.d_timer);
      ("dma_on_private", Json.Bool d.d_dma_on_private);
      ("timer_width", Json.Int d.d_timer_width);
    ]

(* Every accessor tolerates an absent member (falls back to the
   default) but refuses a type-mismatched one — a job that says
   ["depth": "eight"] is an error, not depth 8. *)
let mem_err k what = raise (Json.Parse_error (k ^ ": expected " ^ what))

let get_str j k d =
  match Json.member k j with
  | Json.Null -> d
  | v -> ( match Json.to_str v with Some s -> s | None -> mem_err k "string")

let get_int j k d =
  match Json.member k j with
  | Json.Null -> d
  | v -> ( match Json.to_int v with Some i -> i | None -> mem_err k "int")

let get_bool j k d =
  match Json.member k j with
  | Json.Null -> d
  | v -> ( match Json.to_bool v with Some b -> b | None -> mem_err k "bool")

let get_float j k d =
  match Json.member k j with
  | Json.Null -> d
  | v -> ( match Json.to_float v with Some f -> f | None -> mem_err k "number")

let design_of_json j =
  let d = default_design in
  {
    d_variant = get_str j "variant" d.d_variant;
    d_pers = get_str j "pers" d.d_pers;
    d_depth = get_int j "depth" d.d_depth;
    d_banks = get_int j "banks" d.d_banks;
    d_arbiter = get_str j "arbiter" d.d_arbiter;
    d_dma = get_bool j "dma" d.d_dma;
    d_hwpe = get_bool j "hwpe" d.d_hwpe;
    d_uart = get_bool j "uart" d.d_uart;
    d_timer = get_bool j "timer" d.d_timer;
    d_dma_on_private = get_bool j "dma_on_private" d.d_dma_on_private;
    d_timer_width = get_int j "timer_width" d.d_timer_width;
  }

(* Canonical form for content addressing: the historical flag layer
   tolerates unknown enumeration strings (they fall back to the
   defaults in [config_of]/[spec_of]), so two designs that build the
   same spec must digest the same. *)
let canonical d =
  {
    d with
    d_variant = (match d.d_variant with "secure" -> "secure" | _ -> "vulnerable");
    d_pers = (match d.d_pers with "memory" -> "memory" | _ -> "full");
    d_arbiter =
      (match d.d_arbiter with
      | "fixed" -> "fixed"
      | "tdma" -> "tdma"
      | _ -> "rr");
  }

let design_key d = Json.to_string_compact (design_to_json (canonical d))

let options_to_json ~alg (o : Options.t) =
  Json.Obj
    [
      ("alg", Json.Int alg);
      ("max_iterations", Json.Int o.Options.max_iterations);
      ("max_k", Json.Int o.Options.max_k);
      ("incremental", Json.Bool o.Options.incremental);
      ("simp", Json.Bool o.Options.simp);
      ( "jobs",
        match o.Options.jobs with Some n -> Json.Int n | None -> Json.Null );
      ("portfolio", Json.Int o.Options.portfolio);
      ("certify", Json.Bool o.Options.certify);
      ("cert_jobs", Json.Int o.Options.cert_jobs);
      ("max_conflicts", Json.Int o.Options.budget.S.max_conflicts);
      ("max_propagations", Json.Int o.Options.budget.S.max_propagations);
      ("max_seconds", Json.Float o.Options.budget.S.max_seconds);
      ("budget_retries", Json.Int o.Options.budget_retries);
      ("budget_escalation", Json.Float o.Options.budget_escalation);
      ("reset_start", Json.Bool o.Options.reset_start);
    ]

let options_of_json j =
  let d = Options.default in
  let alg = get_int j "alg" 1 in
  let jobs =
    match Json.member "jobs" j with
    | Json.Null -> None
    | v -> (
        match Json.to_int v with
        | Some n -> Some n
        | None -> mem_err "jobs" "int")
  in
  ( alg,
    {
      d with
      Options.max_iterations = get_int j "max_iterations" d.Options.max_iterations;
      max_k = get_int j "max_k" d.Options.max_k;
      incremental = get_bool j "incremental" d.Options.incremental;
      simp = get_bool j "simp" d.Options.simp;
      jobs;
      portfolio = get_int j "portfolio" d.Options.portfolio;
      certify = get_bool j "certify" d.Options.certify;
      cert_jobs = get_int j "cert_jobs" d.Options.cert_jobs;
      budget =
        {
          S.max_conflicts =
            get_int j "max_conflicts" d.Options.budget.S.max_conflicts;
          max_propagations =
            get_int j "max_propagations" d.Options.budget.S.max_propagations;
          max_seconds =
            get_float j "max_seconds" d.Options.budget.S.max_seconds;
        };
      budget_retries = get_int j "budget_retries" d.Options.budget_retries;
      budget_escalation =
        get_float j "budget_escalation" d.Options.budget_escalation;
      reset_start = get_bool j "reset_start" d.Options.reset_start;
    } )
