module S = Satsolver.Solver

type t = {
  max_iterations : int;
  max_k : int;
  solver_options : S.options option;
  incremental : bool;
  simp : bool;
  jobs : int option;
  portfolio : int;
  certify : bool;
  cert_jobs : int;
  cex_vcd : string option;
  budget : S.budget;
  budget_retries : int;
  budget_escalation : float;
  checkpoint_file : string option;
  should_stop : (unit -> bool) option;
  reset_start : bool;
}

let default =
  {
    max_iterations = 128;
    max_k = 8;
    solver_options = None;
    incremental = true;
    simp = true;
    jobs = None;
    portfolio = 1;
    certify = false;
    cert_jobs = 0;
    cex_vcd = None;
    budget = S.no_budget;
    budget_retries = 2;
    budget_escalation = 4.0;
    checkpoint_file = None;
    should_stop = None;
    reset_start = false;
  }

let pp fmt o =
  Format.fprintf fmt
    "@[<h>incremental=%b simp=%b jobs=%s portfolio=%d certify=%b \
     cert_jobs=%d reset_start=%b max_k=%d max_iterations=%d@]"
    o.incremental o.simp
    (match o.jobs with Some j -> string_of_int j | None -> "none")
    o.portfolio o.certify o.cert_jobs o.reset_start o.max_k o.max_iterations
