(** Shared job-description semantics for every UPEC-SSC front end.

    [bin/upec_ssc] (Cmdliner flags), the proof farm daemon and its
    worker processes (line-delimited JSON jobs) all describe the same
    thing: a SoC design point plus an {!Options.t}. This module is the
    single source of truth for that mapping — the string enumerations
    ("vulnerable"/"secure", "rr"/"fixed"/"tdma", …), the defaults, the
    budget assembly and the JSON codec — so a job submitted to the
    farm and the equivalent [upec_ssc check] invocation build
    bit-identical specs and options. No Cmdliner dependency: the
    flag layer stays in [bin]. *)

type design = {
  d_variant : string;  (** "vulnerable" or "secure" *)
  d_pers : string;  (** S_pers model: "full" or "memory" *)
  d_depth : int;  (** words per SRAM bank *)
  d_banks : int;  (** banks per region (power of two) *)
  d_arbiter : string;  (** "rr", "fixed" or "tdma" *)
  d_dma : bool;
  d_hwpe : bool;
  d_uart : bool;
  d_timer : bool;
  d_dma_on_private : bool;  (** give the DMA a private-crossbar master port *)
  d_timer_width : int;
}
(** A SoC design point, [Soc.Config.formal_default] shaped, covering
    every structural knob of {!Soc.Config} that matters to the
    security verdict. The IP presence flags and [d_timer_width] are
    the natural "RTL delta" knobs: changing one mutates a single IP's
    logic while keeping the rest of the design content-identical.
    This record is the single source of design construction shared by
    [upec_ssc], the proof farm and the scenario matrix
    ([Scenarios.Scenario.spec] embeds one). *)

val default_design : design
(** [formal_default] at depth 8, 2 banks, round-robin, every IP on,
    8-bit timer — the same defaults as [upec_ssc check]. *)

val config_of : design -> Soc.Config.t
val spec_of : design -> Spec.t
(** Build the formal-mode SoC and wrap it in a {!Spec.t}; unknown
    variant/pers strings fall back to the defaults (matching the
    historical flag behaviour). *)

val resolve_jobs : int option -> int option
(** [Some 0] (auto) becomes [Some (Parallel.Pool.default_jobs ())]. *)

val budget_of :
  conflicts:int -> props:int -> seconds:float -> Satsolver.Solver.budget
(** Flag semantics: 0 (or [0.0]) means unlimited. *)

(** {1 JSON codec}

    The farm's job protocol. Missing members take the defaults above,
    so [{}] is a valid job description. [Json.Parse_error] on
    type-mismatched members. *)

val design_to_json : design -> Json.t
val design_of_json : Json.t -> design

val canonical : design -> design
(** Collapse unknown enumeration strings onto the defaults they fall
    back to in {!config_of}/{!spec_of}, so designs that build the same
    spec compare (and digest) equal. *)

val design_key : design -> string
(** Canonical compact-JSON encoding of {!canonical}[ d] — the basis of
    the spec-derived farm cache keys ({!Fingerprint.design_spec}). *)

val options_to_json : alg:int -> Options.t -> Json.t
val options_of_json : Json.t -> int * Options.t
(** Returns [(alg, options)]; [alg] defaults to 1. Round-trips every
    option a farm job can carry (strategy, budgets, certification);
    process-local fields ([should_stop], [checkpoint_file], [cex_vcd],
    [solver_options]) are not part of the wire format and come back as
    the {!Options.default} values. [jobs] is kept literal — apply
    {!resolve_jobs} at the execution site. *)
