(** One record for every knob of the UPEC-SSC procedures.

    {!Alg1.run_with}, {!Alg2.run_with} and {!Alg2.conclude_with} take
    this record instead of a dozen optional arguments; build it with a
    functional update of {!default}:

    {[ Upec.Alg1.run_with { Upec.Options.default with jobs = Some 4 } spec ]}

    The legacy entry points ({!Alg1.run}, {!Alg2.run}, {!Alg2.conclude})
    are thin wrappers that assemble this record with their historical
    defaults. *)

type t = {
  max_iterations : int;  (** refinement-iteration cap (default 128) *)
  max_k : int;  (** Alg2 unrolling-depth cap (default 8) *)
  solver_options : Satsolver.Solver.options option;
  incremental : bool;
      (** reuse one solver session across iterations — assumptions and
          activation literals instead of fresh engines — keeping learnt
          clauses and branching heuristics warm (default [true]).
          Monolithic strategies only; the per-svar strategy is already
          incremental within each worker. Verdict classes are
          unaffected; the reported witness set of a monolithic run may
          differ (both are correct). *)
  simp : bool;
      (** cone-of-influence problem reduction for witness-free solves
          (default [true]); never changes verdicts or counterexamples —
          see {!Ipc.Engine.create} *)
  jobs : int option;
      (** [Some j] selects the per-svar strategy on [j] workers; [None]
          the monolithic strategy *)
  portfolio : int;  (** solver configurations raced per SAT call *)
  certify : bool;  (** self-checking verdicts (DRUP / model / replay) *)
  cert_jobs : int;
      (** with [certify], [> 0] streams each UNSAT certificate into the
          pipelined parallel checker on that many domains while the
          solver searches ({!Cert.Pipeline}); [0] (default) keeps the
          post-hoc sequential check. Accept/reject is identical. *)
  cex_vcd : string option;  (** waveform-pair prefix for counterexamples *)
  budget : Satsolver.Solver.budget;  (** per-solve resource budget *)
  budget_retries : int;
  budget_escalation : float;
  checkpoint_file : string option;
  should_stop : (unit -> bool) option;  (** cooperative interrupt *)
  reset_start : bool;  (** Alg2 only: BMC-from-reset comparison mode *)
}

val default : t

val pp : Format.formatter -> t -> unit
(** One-line summary of the strategy-determining fields. *)
