(** Formal/statistical cross-check over {!Scenario.spec}s.

    One scenario, two verdicts: the UPEC-SSC procedure on the
    formal-scale design and the {!Stat} detector on paired
    simulation-scale trials. Agreement is asserted in both directions
    — a formal VULNERABLE must come with a statistically significant
    timing delta {e and} a counterexample that replays on the concrete
    simulator ({!Upec.Replay.check}); a formal SECURE must come with
    no significant delta. The matrix run treats any disagreement (or a
    formal Inconclusive) as a failure. *)

type outcome = {
  oc_spec : Scenario.spec;  (** canonicalised *)
  oc_report : Upec.Report.run;
      (** the formal report, with [("scenario", …)] and [("stat", …)]
          schema-3 extension blocks attached *)
  oc_stat : Stat.result;
  oc_replay : bool option;
      (** [Some ok] when the verdict carried a counterexample *)
  oc_agree : bool;  (** formal and statistical verdicts agree *)
  oc_expected_ok : bool;  (** formal verdict matches [sp_expected] *)
  oc_stat_seconds : float;
}

val formal_verdict_string : Upec.Report.run -> string
(** ["secure"] / ["vulnerable"] / ["inconclusive"]. *)

val run :
  ?options:Upec.Options.t ->
  ?stat_init_n:int ->
  ?stat_max_n:int ->
  Scenario.spec ->
  outcome
(** Full cross-check of one scenario. [options] configures the formal
    run (default {!Upec.Options.default}); [stat_init_n] / [stat_max_n]
    forward to {!Stat.escalating}. *)

val run_matrix :
  ?options:Upec.Options.t ->
  ?stat_init_n:int ->
  ?stat_max_n:int ->
  ?progress:(outcome -> unit) ->
  Scenario.spec list ->
  outcome list
(** {!run} over a scenario list, calling [progress] after each. *)

val to_json : outcome -> Upec.Json.t
(** One BENCH_matrix entry: identity, fingerprint, formal verdict and
    cost, the statistical block, replay status and the agreement
    flags. *)

val matrix_to_json : outcome list -> Upec.Json.t
(** The BENCH_matrix.json artefact: totals, disagreement counts and
    the per-scenario entries. *)
