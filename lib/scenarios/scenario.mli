(** Declarative scenario specifications.

    A {!spec} is the single source of truth for one verification
    scenario: which SoC design to build (as deltas over the default
    {!Upec.Cli.design}), which UPEC-SSC procedure decides it, which
    victim firmware exercises it at simulation scale, and which
    verdict class the paper predicts. Everything downstream — the
    formal run, the statistical cross-check, the farm job, the CLI
    flags — desugars to or from this record, so a scenario named in a
    JSON file, a [--scenario] flag and a farm job body all denote the
    same experiment. *)

(** Attack families from the BUSted paper and its surroundings. Each
    family fixes a design template, a procedure and a firmware shape;
    parameter points then sweep the structural knobs. *)
type family =
  | Busted_timer  (** DMA contention probed through the APB timer *)
  | Busted_timer_free
      (** timer-free variant: persistence-limited footprint channel,
          decided by the unrolled procedure *)
  | Hwpe_progressive  (** HWPE progressive-write footprint attacker *)
  | Dma_contention
      (** multi-master bank contention, DMA ports on public SRAM only *)
  | Interrupt_victim  (** victim work arrives in interrupt-driven bursts *)
  | Prefetcher
      (** cache/prefetcher-like streaming IP (DMA alone) crossing the
          victim's banks *)
  | Tdma_interconnect  (** time-division arbitration closes the channel *)
  | Countermeasure
      (** Sec. 4.2 policy: victim data in private SRAM, spies excluded *)
  | No_spies  (** no bus-mastering IPs at all — vacuously secure *)

val all_families : family list

val family_to_string : family -> string
(** snake_case name, also the JSON encoding ([family_of_string] is its
    inverse). *)

val family_of_string : string -> family option

type expectation = Expect_vulnerable | Expect_secure

val expectation_to_string : expectation -> string
(** ["vulnerable"] / ["secure"]. *)

type spec = {
  sp_name : string;  (** unique within a matrix run *)
  sp_family : family;
  sp_design : Upec.Cli.design;  (** deltas over the default design *)
  sp_alg : int;  (** 1 = fixed-point, 2 = unrolled + induction *)
  sp_secret : int;  (** victim accesses in the secret class *)
  sp_public : int;  (** victim accesses in the public class *)
  sp_expected : expectation;
}

val default_for : family -> spec
(** The family template: its design deltas, fastest deciding
    procedure, access-count split and expected verdict. *)

val to_json : spec -> Upec.Json.t

val of_json : Upec.Json.t -> spec
(** Only ["family"] is required; other members default from the family
    template. ["design"] members override the {e template's} design,
    not the global default — [{"family": "tdma_interconnect",
    "design": {"depth": 3}}] keeps the TDMA arbiter. Raises
    {!Upec.Json.Parse_error} on malformed input. *)

val load_file : string -> spec
(** Parse a [.json] spec file. *)

val canonical : spec -> spec
(** Normalises the embedded design ({!Upec.Cli.canonical}) so
    equivalent spellings fingerprint identically. *)

val fingerprint : spec -> string
(** Content digest of the canonicalised spec — stable across sessions,
    sensitive to every member. *)

(** {1 Catalog} *)

type point = { pt_depth : int; pt_banks : int; pt_timer_width : int }

val point : ?banks:int -> ?timer_width:int -> int -> point
(** [point depth] with [banks = 2], [timer_width = 8]. *)

val at_point : family -> point -> spec
(** The family template at a sweep point; the name encodes the
    non-default coordinates (["busted_timer_d4_b4"]). *)

val sweep_points : family -> point list
(** At least 3 structurally distinct design points per family. *)

val catalog : spec list
(** Every family at every sweep point — the full scenario matrix. *)

val find : string -> spec option
(** Catalog lookup by name; a bare family name returns
    {!default_for}. *)

(** {1 Simulation} *)

val sim_config : spec -> Soc.Config.t
(** The simulation-scale sibling of the spec's design: structural
    features (IP presence, arbitration, bank count, DMA topology)
    carry over; formal-scale size knobs (bank depth, timer width) stay
    at simulation defaults. *)

val firmware : spec -> Soc.Config.t -> n:int -> Isa.Asm.stmt list
(** The family's three-phase attack program with an [n]-access
    victim. *)

val measure : spec -> seed:int -> n:int -> float
(** One trial: run the firmware under the seeded schedule and return
    the family's observable (timer reading or retrieval-phase cycle
    count). *)

val sample_pair : spec -> seed:int -> float * float
(** [(secret, public)] measurements of one paired trial: both classes
    run under the same seed, so scheduler jitter cancels and only the
    victim's access count differs. *)

(** {1 Firmware and harness primitives}

    Shared with {!Attacks}; useful for bespoke experiments. *)

val byte_of : Soc.Config.t -> Soc.Memmap.periph -> int -> int
(** Byte address of a peripheral register. *)

val pub_base : Soc.Config.t -> int
val priv_base : Soc.Config.t -> int

val mmio_write : int -> int -> Isa.Asm.stmt list
(** [mmio_write addr value] — three-statement store via r10/r11. *)

val victim_section : target:int -> n:int -> Isa.Asm.stmt list
(** Looped victim: [n] loads from [target], then spin. Defines the
    labels [victim], [victim_resume] (re-entry without counter reset),
    [victim_spin] and [idle]. *)

val dense_victim_section : target:int -> n:int -> Isa.Asm.stmt list
(** Unrolled back-to-back loads — a memcpy-like victim issuing a
    request every fetch slot, dense enough to displace saturating spy
    masters. *)

val context_switch : Sim.Engine.t -> (string * int) list -> string -> unit
(** Preemptive-scheduler emulation: point the core at a label with a
    fresh pipeline state. *)

val run_to_halt : ?max_cycles:int -> Sim.Engine.t -> int
(** Step until the core halts; returns the cycle count. Raises
    [Failure] after [max_cycles] (default 60000). *)

val run_phases :
  Soc.Config.t ->
  rom:Rtl.Bitvec.t array ->
  symbols:(string * int) list ->
  phases:(string * int) list ->
  Sim.Engine.t * int * int
(** Run preparation to its halt, each [(label, cycles)] slice in turn,
    then the [retrieval] phase to its halt. Returns the engine, the
    total cycle count and the retrieval-phase cycle count. *)

val run_schedule :
  Soc.Config.t ->
  rom:Rtl.Bitvec.t array ->
  symbols:(string * int) list ->
  slice:int ->
  Sim.Engine.t * int
(** Single-slice compatibility wrapper over {!run_phases}. *)
