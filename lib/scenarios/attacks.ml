open Isa.Asm
open Isa.Encoding

type dma_timer_reading = { dt_accesses : int; dt_timer : int; dt_cycles : int }
type hwpe_reading = { hw_accesses : int; hw_zero_cells : int }

(* ---- E1: DMA + timer ---- *)

let dma_timer_program cfg ~n =
  Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Timer 0) 2
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Dma 1) 0
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Dma 2) 64
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Dma 3) 24
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Dma 0) 1
  @ [ I Ebreak ]
  @ Scenario.victim_section ~target:(Scenario.pub_base cfg) ~n
  @ [
      L "retrieval";
      Li (10, Scenario.byte_of cfg Soc.Memmap.Timer 1);
      I (Lw (28, 10, 0));
      I Ebreak;
    ]

let dma_timer_of ?(slice = 120) spec ns =
  let cfg = Scenario.sim_config spec in
  List.map
    (fun n ->
      let rom, symbols = assemble_with_symbols (dma_timer_program cfg ~n) in
      let eng, cycles = Scenario.run_schedule cfg ~rom ~symbols ~slice in
      {
        dt_accesses = n;
        dt_timer = Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" 28);
        dt_cycles = cycles;
      })
    ns

(* ---- E7: HWPE + memory ---- *)

let primed_word_base = 512

let hwpe_program cfg ~primed_words ~n =
  let region = Scenario.pub_base cfg + (primed_word_base * 4) in
  [
    Li (5, region);
    Li (6, primed_words);
    L "prime";
    I (Sw (0, 5, 0));
    I (Addi (5, 5, 4));
    I (Addi (6, 6, -1));
    Bne_l (6, 0, "prime");
  ]
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Hwpe 1) primed_word_base
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Hwpe 2) primed_words
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Hwpe 3) 1
  @ Scenario.mmio_write (Scenario.byte_of cfg Soc.Memmap.Hwpe 0) 1
  @ [ I Ebreak ]
  @ Scenario.victim_section ~target:region ~n
  @ [
      L "retrieval";
      Li (5, region + ((primed_words - 1) * 4));
      Li (6, primed_words);
      Li (28, 0);
      L "scan";
      I (Lw (7, 5, 0));
      Bne_l (7, 0, "found");
      I (Addi (28, 28, 1));
      I (Addi (5, 5, -4));
      I (Addi (6, 6, -1));
      Bne_l (6, 0, "scan");
      L "found";
      I Ebreak;
    ]

let hwpe_memory_of ?(slice = 640) ?(primed_words = 1024) spec ns =
  let cfg = Scenario.sim_config spec in
  List.map
    (fun n ->
      let rom, symbols =
        assemble_with_symbols (hwpe_program cfg ~primed_words ~n)
      in
      let eng, _ = Scenario.run_schedule cfg ~rom ~symbols ~slice in
      {
        hw_accesses = n;
        hw_zero_cells =
          Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" 28);
      })
    ns

(* ---- deprecated flag-era shims ---- *)

(* The legacy entry points took a raw simulation config; desugar its
   structural features onto a Scenario.spec so the design construction
   path is the same one the matrix uses. Simulation-scale size knobs
   (memory sizes, data width) are sim_default's — which is what every
   historical caller passed. *)
let design_of_sim (cfg : Soc.Config.t) =
  {
    Upec.Cli.default_design with
    Upec.Cli.d_banks = cfg.Soc.Config.pub_banks;
    d_dma = cfg.Soc.Config.with_dma;
    d_hwpe = cfg.Soc.Config.with_hwpe;
    d_uart = cfg.Soc.Config.with_uart;
    d_timer = cfg.Soc.Config.with_timer;
    d_dma_on_private = cfg.Soc.Config.dma_on_private;
    d_arbiter =
      (match cfg.Soc.Config.arbiter with
      | `Fixed_priority -> "fixed"
      | `Tdma -> "tdma"
      | `Round_robin -> "rr");
  }

let spec_of_sim family cfg =
  {
    (Scenario.default_for family) with
    Scenario.sp_design = design_of_sim cfg;
  }

let dma_timer ?(cfg = Soc.Config.sim_default) ns =
  dma_timer_of (spec_of_sim Scenario.Busted_timer cfg) ns

let hwpe_memory ?(cfg = Soc.Config.sim_default) ns =
  hwpe_memory_of (spec_of_sim Scenario.Hwpe_progressive cfg) ns

let hwpe_memory_with_noise ?cfg ~noisy_timer ns =
  ignore noisy_timer;
  (hwpe_memory [@warning "-3"]) ?cfg ns
