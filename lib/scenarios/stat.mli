(** Statistical leak detection over cycle-count samples.

    The empirical half of the scenario cross-check: given paired
    secret-class / public-class timing measurements (one pair per
    seeded trial through {!Sim.Engine}), Welch's unequal-variance
    t-test decides whether the two distributions differ and Cohen's d
    sizes the effect. The decision has an explicit inconclusive band —
    a mid-band effect at low sample count escalates the sample size
    instead of guessing — mirroring how the formal side degrades to
    Inconclusive rather than misreport. PASCAL-style: statistical
    evidence complements, never replaces, the formal verdict. *)

type verdict =
  | Leak  (** significant delta with a large standardised effect *)
  | No_leak  (** no significant delta and a negligible effect *)
  | Inconclusive  (** mid-band after every escalation *)

type result = {
  st_verdict : verdict;
  st_t : float;  (** Welch's t statistic (secret - public) *)
  st_df : float;  (** Welch–Satterthwaite degrees of freedom *)
  st_p : float;  (** two-sided p-value *)
  st_d : float;  (** Cohen's d (pooled sd), capped at ±1000 *)
  st_n : int;  (** samples per class at the final test *)
  st_escalations : int;  (** sample-size doublings performed *)
  st_mean_secret : float;
  st_mean_public : float;
  st_sd_secret : float;
  st_sd_public : float;
}

val p_value : t:float -> df:float -> float
(** Two-sided Student-t tail probability, via the regularised
    incomplete beta function (pure OCaml, no external tables). *)

val welch_t : float array -> float array -> float * float
(** [(t, df)]; [(nan, 0.)] when both sample variances are zero. *)

val cohen_d : float array -> float array -> float
(** Pooled-sd effect size; a zero-variance nonzero delta is capped at
    ±1000 rather than infinite. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; [0.] for fewer than 2 samples. *)

val test :
  ?alpha:float ->
  ?d_small:float ->
  ?d_large:float ->
  ?weak_p:float ->
  secret:float array ->
  public:float array ->
  unit ->
  result
(** One fixed-size test. Decision: [p < alpha] and [|d| >= d_large] is
    {!Leak}; [p > weak_p] and [|d| < d_small] is {!No_leak}; anything
    in between is {!Inconclusive}. Two identical constant samples are
    {!No_leak}; two different constants are a zero-noise {!Leak}.
    Defaults: [alpha = 1e-3], [d_small = 0.2], [d_large = 0.8],
    [weak_p = 0.1]. Raises [Invalid_argument] below 2 samples per
    class. *)

val escalating :
  ?alpha:float ->
  ?d_small:float ->
  ?d_large:float ->
  ?weak_p:float ->
  ?init_n:int ->
  ?max_n:int ->
  sample:(int -> float * float) ->
  unit ->
  result
(** Draw [(secret, public)] measurement pairs from [sample] (called
    with the 0-based trial index — derive the trial's noise seed from
    it) starting at [init_n] pairs, doubling while the verdict stays
    {!Inconclusive}, up to [max_n]. At [max_n] a significant delta
    ([p < alpha]) is ruled {!Leak} even mid-band; otherwise the result
    stays {!Inconclusive}. Samples are drawn once and reused across
    escalations. Defaults: [init_n = 12], [max_n = 96]. *)

val verdict_to_string : verdict -> string
(** ["leak"], ["no_leak"], ["inconclusive"]. *)

val to_json : result -> Upec.Json.t
(** The ["stat"] report block (schema 3): verdict, t, df, p, Cohen's
    d, per-class moments and the escalation count. *)
