(* Cross-checking the formal verdict against empirical timing.

   For one scenario: run the UPEC-SSC procedure the spec names on the
   formal-scale design, run the statistical detector on the
   simulation-scale sibling, and demand that the two agree —
   VULNERABLE must come with a significant timing delta (and a
   counterexample that replays on the concrete simulator), SECURE must
   come with no significant delta. A disagreement means either a
   modelling gap between the two scales or a bug in one of the
   stacks; the matrix treats it as a hard failure. *)

module Json = Upec.Json

type outcome = {
  oc_spec : Scenario.spec;
  oc_report : Upec.Report.run;  (* carries scenario + stat extra blocks *)
  oc_stat : Stat.result;
  oc_replay : bool option;  (* [Some ok] for vulnerable verdicts *)
  oc_agree : bool;
  oc_expected_ok : bool;
  oc_stat_seconds : float;
}

let formal_verdict_string (r : Upec.Report.run) =
  match r.Upec.Report.verdict with
  | Upec.Report.Secure _ -> "secure"
  | Upec.Report.Vulnerable _ -> "vulnerable"
  | Upec.Report.Inconclusive _ -> "inconclusive"

let run_formal ?(options = Upec.Options.default) (s : Scenario.spec) =
  let spec = Upec.Cli.spec_of s.Scenario.sp_design in
  let report =
    match s.Scenario.sp_alg with
    | 2 -> Upec.Alg2.conclude_with options spec
    | _ -> Upec.Alg1.run_with options spec
  in
  (spec, report)

let run_stat ?stat_init_n ?stat_max_n (s : Scenario.spec) =
  Stat.escalating ?init_n:stat_init_n ?max_n:stat_max_n
    ~sample:(fun seed -> Scenario.sample_pair s ~seed)
    ()

let agreement (report : Upec.Report.run) (stat : Stat.result) replay =
  match (report.Upec.Report.verdict, stat.Stat.st_verdict) with
  | Upec.Report.Vulnerable _, Stat.Leak ->
      (* the formal witness must also survive concrete replay *)
      replay = Some true
  | Upec.Report.Secure _, Stat.No_leak -> true
  | _ -> false

let expected_ok (s : Scenario.spec) (report : Upec.Report.run) =
  match (s.Scenario.sp_expected, report.Upec.Report.verdict) with
  | Scenario.Expect_vulnerable, Upec.Report.Vulnerable _ -> true
  | Scenario.Expect_secure, Upec.Report.Secure _ -> true
  | _ -> false

let run ?options ?stat_init_n ?stat_max_n (s : Scenario.spec) =
  let s = Scenario.canonical s in
  let spec, report = run_formal ?options s in
  let replay =
    match report.Upec.Report.verdict with
    | Upec.Report.Vulnerable { cex; _ } ->
        (* replay the formal witness as one empirical sample: the
           counterexample trajectory must reproduce on the concrete
           simulator of the same netlist *)
        Some (Upec.Replay.check spec.Upec.Spec.soc.Soc.Builder.netlist cex)
    | _ -> None
  in
  let t0 = Unix.gettimeofday () in
  let stat = run_stat ?stat_init_n ?stat_max_n s in
  let stat_seconds = Unix.gettimeofday () -. t0 in
  let report =
    {
      report with
      Upec.Report.extra =
        [ ("scenario", Scenario.to_json s); ("stat", Stat.to_json stat) ];
    }
  in
  {
    oc_spec = s;
    oc_report = report;
    oc_stat = stat;
    oc_replay = replay;
    oc_agree = agreement report stat replay;
    oc_expected_ok = expected_ok s report;
    oc_stat_seconds = stat_seconds;
  }

let to_json o =
  let r = o.oc_report in
  Json.Obj
    [
      ("name", Json.Str o.oc_spec.Scenario.sp_name);
      ( "family",
        Json.Str (Scenario.family_to_string o.oc_spec.Scenario.sp_family) );
      ( "expected",
        Json.Str (Scenario.expectation_to_string o.oc_spec.Scenario.sp_expected)
      );
      ("fingerprint", Json.Str (Scenario.fingerprint o.oc_spec));
      ( "formal",
        Json.Obj
          [
            ("verdict", Json.Str (formal_verdict_string r));
            ("procedure", Json.Str r.Upec.Report.procedure);
            ("seconds", Json.Float r.Upec.Report.total_seconds);
            ("iterations", Json.Int (Upec.Report.iterations r));
          ] );
      ("stat", Stat.to_json o.oc_stat);
      ("stat_seconds", Json.Float o.oc_stat_seconds);
      ( "replay_ok",
        match o.oc_replay with Some b -> Json.Bool b | None -> Json.Null );
      ("agree", Json.Bool o.oc_agree);
      ("expected_ok", Json.Bool o.oc_expected_ok);
    ]

let run_matrix ?options ?stat_init_n ?stat_max_n ?(progress = fun _ -> ())
    specs =
  List.map
    (fun s ->
      let o = run ?options ?stat_init_n ?stat_max_n s in
      progress o;
      o)
    specs

let matrix_to_json outcomes =
  let disagreements =
    List.length (List.filter (fun o -> not o.oc_agree) outcomes)
  in
  let unexpected =
    List.length (List.filter (fun o -> not o.oc_expected_ok) outcomes)
  in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("total", Json.Int (List.length outcomes));
      ("disagreements", Json.Int disagreements);
      ("unexpected", Json.Int unexpected);
      ("scenarios", Json.List (List.map to_json outcomes));
    ]
