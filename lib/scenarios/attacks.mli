(** End-to-end attack firmware scenarios, shared by the runnable
    examples and the benchmark harness (experiments E1 and E7).

    Both scenarios follow the three-phase structure of Sec. 2.2
    (preparation / recording / retrieval), realised as one firmware
    image whose phases are separated by the task switch points. The
    victim's secret is its number of memory accesses [n]; the victim
    phase is padded to a fixed cycle budget so only contention — not
    code length — reaches the attacker.

    The design under test comes from a {!Scenario.spec}: the same
    declarative record the scenario matrix, the farm and the CLI use.
    The legacy [?cfg] entry points survive as deprecated shims that
    desugar the config's structural features onto a spec. *)

type dma_timer_reading = {
  dt_accesses : int;  (** victim accesses n *)
  dt_timer : int;  (** timer value read by the attacker *)
  dt_cycles : int;  (** total cycles to halt *)
}

val dma_timer_of :
  ?slice:int -> Scenario.spec -> int list -> dma_timer_reading list
(** The Fig. 1 attack: DMA transfer + timer auto-start, on the spec's
    design at simulation scale ({!Scenario.sim_config}). A lower timer
    reading at the retrieval point means the DMA finished later, i.e.
    more victim accesses won arbitration. [slice] is the victim's
    fixed cycle budget (default 120). *)

type hwpe_reading = {
  hw_accesses : int;
  hw_zero_cells : int;
      (** zero cells above the HWPE frontier at retrieval: higher means
          the accelerator made less progress *)
}

val hwpe_memory_of :
  ?slice:int ->
  ?primed_words:int ->
  Scenario.spec ->
  int list ->
  hwpe_reading list
(** The Sec. 4.1 variant: accelerator progressively overwriting a
    primed region; retrieval scans the footprint. No timer access.
    Defaults keep the historical E7 amplitudes ([slice = 640],
    [primed_words = 1024]). *)

val dma_timer : ?cfg:Soc.Config.t -> int list -> dma_timer_reading list
[@@deprecated
  "construct a Scenario.spec and use dma_timer_of; only the config's \
   structural features survive the desugaring"]

val hwpe_memory : ?cfg:Soc.Config.t -> int list -> hwpe_reading list
[@@deprecated
  "construct a Scenario.spec and use hwpe_memory_of; only the config's \
   structural features survive the desugaring"]

val hwpe_memory_with_noise :
  ?cfg:Soc.Config.t -> noisy_timer:bool -> int list -> hwpe_reading list
[@@deprecated "use hwpe_memory_of; the attack never reads the timer"]
(** Same attack; [noisy_timer] documents that the attack is oblivious
    to timer countermeasures (the flag has no effect on the
    readings). *)
