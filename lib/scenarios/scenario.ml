open Isa.Asm
module Json = Upec.Json

(* ---------------------------------------------------------------- *)
(* Spec: a scenario as data                                          *)
(* ---------------------------------------------------------------- *)

type family =
  | Busted_timer
  | Busted_timer_free
  | Hwpe_progressive
  | Dma_contention
  | Interrupt_victim
  | Prefetcher
  | Tdma_interconnect
  | Countermeasure
  | No_spies

let all_families =
  [
    Busted_timer;
    Busted_timer_free;
    Hwpe_progressive;
    Dma_contention;
    Interrupt_victim;
    Prefetcher;
    Tdma_interconnect;
    Countermeasure;
    No_spies;
  ]

let family_to_string = function
  | Busted_timer -> "busted_timer"
  | Busted_timer_free -> "busted_timer_free"
  | Hwpe_progressive -> "hwpe_progressive"
  | Dma_contention -> "dma_contention"
  | Interrupt_victim -> "interrupt_victim"
  | Prefetcher -> "prefetcher"
  | Tdma_interconnect -> "tdma_interconnect"
  | Countermeasure -> "countermeasure"
  | No_spies -> "no_spies"

let family_of_string s =
  List.find_opt (fun f -> family_to_string f = s) all_families

type expectation = Expect_vulnerable | Expect_secure

let expectation_to_string = function
  | Expect_vulnerable -> "vulnerable"
  | Expect_secure -> "secure"

type spec = {
  sp_name : string;
  sp_family : family;
  sp_design : Upec.Cli.design;
  sp_alg : int;
  sp_secret : int;
  sp_public : int;
  sp_expected : expectation;
}

(* Family templates: the design deltas that create (or close) the
   channel, the procedure that decides the family fastest, and the
   victim access-count split. Parameter sweeps start from these. *)

let base_design family =
  let d = Upec.Cli.default_design in
  match family with
  | Busted_timer | Interrupt_victim -> d
  | Busted_timer_free ->
      { d with Upec.Cli.d_dma = false; d_timer = false; d_pers = "memory" }
  | Hwpe_progressive -> { d with Upec.Cli.d_dma = false }
  | Dma_contention -> { d with Upec.Cli.d_dma_on_private = false }
  | Prefetcher -> { d with Upec.Cli.d_hwpe = false }
  | Tdma_interconnect -> { d with Upec.Cli.d_arbiter = "tdma" }
  | Countermeasure -> { d with Upec.Cli.d_variant = "secure" }
  | No_spies -> { d with Upec.Cli.d_dma = false; d_hwpe = false }

let base_alg = function Busted_timer_free -> 2 | _ -> 1

let base_expected = function
  | Tdma_interconnect | Countermeasure | No_spies -> Expect_secure
  | _ -> Expect_vulnerable

(* Victim access counts per class. Footprint attacks watch a slow
   secondary effect (accelerator progress through a primed region), so
   they need a larger split than the cycle-exact timer probes. *)
let base_split = function
  | Busted_timer_free | Hwpe_progressive -> (48, 4)
  | Dma_contention -> (40, 4)
  | Prefetcher -> (28, 4)
  | Interrupt_victim -> (16, 2)
  | _ -> (12, 2)

let default_for family =
  let secret, public = base_split family in
  {
    sp_name = family_to_string family;
    sp_family = family;
    sp_design = base_design family;
    sp_alg = base_alg family;
    sp_secret = secret;
    sp_public = public;
    sp_expected = base_expected family;
  }

(* ---------------------------------------------------------------- *)
(* JSON codec                                                        *)
(* ---------------------------------------------------------------- *)

let to_json s =
  Json.Obj
    [
      ("name", Json.Str s.sp_name);
      ("family", Json.Str (family_to_string s.sp_family));
      ("design", Upec.Cli.design_to_json s.sp_design);
      ("alg", Json.Int s.sp_alg);
      ("secret_accesses", Json.Int s.sp_secret);
      ("public_accesses", Json.Int s.sp_public);
      ("expected", Json.Str (expectation_to_string s.sp_expected));
    ]

let parse_err msg = raise (Json.Parse_error msg)

(* Design members override the family template, not the global
   defaults: a spec that says [{"family": "tdma_interconnect",
   "design": {"depth": 4}}] keeps the TDMA arbiter. *)
let merge_design base over =
  match (base, over) with
  | Json.Obj b, Json.Obj o ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match List.assoc_opt k o with Some w -> (k, w) | None -> (k, v))
           b)
  | _, _ -> parse_err "design: expected object"

let of_json j =
  let family =
    match Json.to_str (Json.member "family" j) with
    | None -> parse_err "family: missing or not a string"
    | Some s -> (
        match family_of_string s with
        | Some f -> f
        | None -> parse_err ("family: unknown \"" ^ s ^ "\""))
  in
  let d = default_for family in
  let design =
    match Json.member "design" j with
    | Json.Null -> d.sp_design
    | dj ->
        Upec.Cli.design_of_json
          (merge_design (Upec.Cli.design_to_json d.sp_design) dj)
  in
  let get_int k dflt =
    match Json.member k j with
    | Json.Null -> dflt
    | v -> (
        match Json.to_int v with
        | Some i -> i
        | None -> parse_err (k ^ ": expected int"))
  in
  let expected =
    match Json.member "expected" j with
    | Json.Null -> d.sp_expected
    | v -> (
        match Json.to_str v with
        | Some "vulnerable" -> Expect_vulnerable
        | Some "secure" -> Expect_secure
        | _ -> parse_err "expected: \"vulnerable\" or \"secure\"")
  in
  let name =
    match Json.member "name" j with
    | Json.Null -> d.sp_name
    | v -> (
        match Json.to_str v with
        | Some s -> s
        | None -> parse_err "name: expected string")
  in
  {
    sp_name = name;
    sp_family = family;
    sp_design = design;
    sp_alg = get_int "alg" d.sp_alg;
    sp_secret = get_int "secret_accesses" d.sp_secret;
    sp_public = get_int "public_accesses" d.sp_public;
    sp_expected = expected;
  }

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json (Json.of_string s)

let canonical s = { s with sp_design = Upec.Cli.canonical s.sp_design }

let fingerprint s =
  Digest.to_hex
    (Digest.string ("scenario:1:" ^ Json.to_string_compact (to_json (canonical s))))

(* ---------------------------------------------------------------- *)
(* Catalog: >= 8 families x >= 3 parameter points                    *)
(* ---------------------------------------------------------------- *)

type point = { pt_depth : int; pt_banks : int; pt_timer_width : int }

let point ?(banks = 2) ?(timer_width = 8) depth =
  { pt_depth = depth; pt_banks = banks; pt_timer_width = timer_width }

let at_point family pt =
  let d = default_for family in
  let design =
    {
      d.sp_design with
      Upec.Cli.d_depth = pt.pt_depth;
      d_banks = pt.pt_banks;
      d_timer_width = pt.pt_timer_width;
    }
  in
  let name =
    Printf.sprintf "%s_d%d%s%s" d.sp_name pt.pt_depth
      (if pt.pt_banks <> 2 then Printf.sprintf "_b%d" pt.pt_banks else "")
      (if pt.pt_timer_width <> 8 then Printf.sprintf "_tw%d" pt.pt_timer_width
       else "")
  in
  { d with sp_name = name; sp_design = design }

(* The sweep varies bank-depth everywhere and, per family, one of the
   orthogonal axes (bank count, timer width) — every family is
   exercised at >= 3 structurally distinct design points. *)
let sweep_points family =
  match family with
  | Busted_timer | Interrupt_victim | Tdma_interconnect ->
      [ point 3; point 4 ~banks:4; point 6 ~timer_width:6 ]
  | Busted_timer_free | Hwpe_progressive | No_spies ->
      [ point 3; point 4 ~banks:4; point 6 ]
  | Dma_contention | Prefetcher ->
      [ point 3; point 4 ~banks:4; point 6 ~timer_width:6 ]
  | Countermeasure -> [ point 3; point 4; point 6 ~banks:4 ]

let catalog =
  List.concat_map
    (fun family -> List.map (at_point family) (sweep_points family))
    all_families

let find name =
  match List.find_opt (fun s -> s.sp_name = name) catalog with
  | Some s -> Some s
  | None ->
      List.find_opt (fun f -> family_to_string f = name) all_families
      |> Option.map default_for

(* ---------------------------------------------------------------- *)
(* Simulation-scale sibling                                          *)
(* ---------------------------------------------------------------- *)

(* The statistical cross-check runs the structural features that
   create (or close) the channel — IP presence, arbitration policy,
   bank count, DMA port topology — at simulation scale. Formal-scale
   size knobs (bank depth, timer width) stay at their simulation
   defaults: depth 3 SRAMs cannot hold firmware-scale footprints, and
   a 6-bit timer wraps within one time slice. *)
let sim_config s =
  let d = Upec.Cli.canonical s.sp_design in
  {
    Soc.Config.sim_default with
    Soc.Config.pub_banks = d.Upec.Cli.d_banks;
    priv_banks = d.Upec.Cli.d_banks;
    with_dma = d.Upec.Cli.d_dma;
    with_hwpe = d.Upec.Cli.d_hwpe;
    with_uart = d.Upec.Cli.d_uart;
    with_timer = d.Upec.Cli.d_timer;
    dma_on_private = d.Upec.Cli.d_dma_on_private;
    arbiter =
      (match d.Upec.Cli.d_arbiter with
      | "fixed" -> `Fixed_priority
      | "tdma" -> `Tdma
      | _ -> `Round_robin);
  }

(* ---------------------------------------------------------------- *)
(* Firmware (three-phase: preparation / recording / retrieval)       *)
(* ---------------------------------------------------------------- *)

let byte_of cfg p reg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.periph_reg_addr cfg p reg)

let pub_base cfg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Pub)

let priv_base cfg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Priv)

let mmio_write addr value = [ Li (10, addr); Li (11, value); I (Sw (11, 10, 0)) ]

(* The victim performs [n] loads from [target] and then spins; its
   time slice ends when the scheduler (the harness, standing in for a
   timer-interrupt driven RTOS) preempts it, so the slice length is
   fixed by construction and only contention — not victim code length
   — is observable afterwards. [victim_resume] re-enters the loop
   without reinitialising the counter (the interrupt-driven schedule
   preempts mid-count); [idle] parks the core between slices. *)
let victim_section ~target ~n =
  [
    L "victim";
    Li (12, target);
    Li (13, n);
    L "victim_resume";
    Beq_l (13, 0, "victim_spin");
    L "victim_loop";
    I (Lw (15, 12, 0));
    I (Addi (13, 13, -1));
    Bne_l (13, 0, "victim_loop");
    L "victim_spin";
    J "victim_spin";
    L "idle";
    J "idle";
  ]

(* Back-to-back unrolled loads: a memcpy-like victim issuing a request
   every fetch slot. The looped victim above requests only every ~6
   cycles, which two saturating spy masters absorb into their free
   arbitration slots without losing a beat — the denser stream is what
   actually displaces them. *)
let dense_victim_section ~target ~n =
  [ L "victim"; Li (12, target) ]
  @ List.concat (List.init n (fun _ -> [ I (Lw (15, 12, 0)) ]))
  @ [ L "victim_spin"; J "victim_spin"; L "idle"; J "idle" ]

(* Footprint attacks prime a small region and let the HWPE overwrite
   it progressively; smaller than the legacy E7 footprint so a
   many-trial statistical run stays cheap. *)
let primed_words = 256
let primed_word_base = 512

let timer_dma_prep ?(len = 24) cfg =
  mmio_write (byte_of cfg Soc.Memmap.Timer 0) 2
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 1) 0
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 2) 64
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 3) len
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 0) 1

let timer_read_retrieval cfg =
  [
    L "retrieval";
    Li (10, byte_of cfg Soc.Memmap.Timer 1);
    I (Lw (28, 10, 0));
    I Ebreak;
  ]

let hwpe_footprint_program cfg ~n =
  let region = pub_base cfg + (primed_word_base * 4) in
  [
    Li (5, region);
    Li (6, primed_words);
    L "prime";
    I (Sw (0, 5, 0));
    I (Addi (5, 5, 4));
    I (Addi (6, 6, -1));
    Bne_l (6, 0, "prime");
  ]
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 1) primed_word_base
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 2) primed_words
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 3) 1
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 0) 1
  @ [ I Ebreak ]
  @ victim_section ~target:region ~n
  @ [
      L "retrieval";
      Li (5, region + ((primed_words - 1) * 4));
      Li (6, primed_words);
      Li (28, 0);
      L "scan";
      I (Lw (7, 5, 0));
      Bne_l (7, 0, "found");
      I (Addi (28, 28, 1));
      I (Addi (5, 5, -4));
      I (Addi (6, 6, -1));
      Bne_l (6, 0, "scan");
      L "found";
      I Ebreak;
    ]

(* Multi-master contention: a long DMA stream (plus, when present, a
   concurrent HWPE job) crosses the victim's banks; the attacker's
   clock is the poll loop on the DMA done bit — no timer involved. *)
let dma_poll_retrieval cfg =
  [
    L "retrieval";
    Li (10, byte_of cfg Soc.Memmap.Dma 0);
    L "poll";
    I (Lw (7, 10, 0));
    I (Andi (7, 7, 2));
    Beq_l (7, 0, "poll");
    I Ebreak;
  ]

let contention_program cfg ~n ~hwpe =
  (if hwpe then
     mmio_write (byte_of cfg Soc.Memmap.Hwpe 1) 1024
     @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 2) 512
     @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 3) 1
     @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 0) 1
   else [])
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 1) 0
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 2) 1600
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 3) 300
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 0) 1
  @ [ I Ebreak ]
  @ (if hwpe then dense_victim_section else victim_section)
      ~target:(pub_base cfg) ~n
  @ dma_poll_retrieval cfg

let firmware s cfg ~n =
  match s.sp_family with
  | Busted_timer | Tdma_interconnect ->
      timer_dma_prep cfg @ [ I Ebreak ]
      @ victim_section ~target:(pub_base cfg) ~n
      @ timer_read_retrieval cfg
  | Interrupt_victim ->
      (* longer DMA job so the contention window spans the victim's
         first two interrupt-driven bursts *)
      timer_dma_prep ~len:48 cfg
      @ [ I Ebreak ]
      @ victim_section ~target:(pub_base cfg) ~n
      @ timer_read_retrieval cfg
  | Countermeasure ->
      (* Sec. 4.2 policy: the victim's protected range lives in
         private SRAM and the spying masters are configured out of it,
         so the victim's accesses cross no shared arbiter. *)
      timer_dma_prep cfg @ [ I Ebreak ]
      @ victim_section ~target:(priv_base cfg) ~n
      @ timer_read_retrieval cfg
  | No_spies ->
      (* no DMA to auto-start on: free-run the timer from preparation *)
      mmio_write (byte_of cfg Soc.Memmap.Timer 0) 1
      @ [ I Ebreak ]
      @ victim_section ~target:(pub_base cfg) ~n
      @ timer_read_retrieval cfg
  | Busted_timer_free | Hwpe_progressive -> hwpe_footprint_program cfg ~n
  | Dma_contention -> contention_program cfg ~n ~hwpe:true
  | Prefetcher -> contention_program cfg ~n ~hwpe:false

(* ---------------------------------------------------------------- *)
(* Schedule harness (shared with Attacks)                            *)
(* ---------------------------------------------------------------- *)

(* Preemptive scheduler emulation: force the core to a label by
   loading a fresh pipeline state (bubble fetch at the entry, memory
   FSM idle, halt flag cleared). *)
let context_switch eng symbols label =
  let entry = List.assoc label symbols in
  Sim.Engine.poke_reg eng "cpu.halted" (Rtl.Bitvec.zero 1);
  Sim.Engine.poke_reg eng "cpu.valid" (Rtl.Bitvec.zero 1);
  Sim.Engine.poke_reg eng "cpu.mem_state" (Rtl.Bitvec.zero 2);
  Sim.Engine.poke_reg eng "cpu.if_pc" (Rtl.Bitvec.of_int ~width:32 entry)

let run_to_halt ?(max_cycles = 60000) eng =
  let rec go cycles =
    if cycles > max_cycles then failwith "Scenario: firmware did not halt"
    else if Rtl.Bitvec.to_int (Sim.Engine.peek_output eng "halted") = 1 then
      cycles
    else begin
      Sim.Engine.step eng;
      go (cycles + 1)
    end
  in
  go 0

(* Run the generalised schedule: preparation to its EBREAK, each
   [(label, cycles)] phase in turn, then retrieval to its EBREAK.
   Returns the engine, the total cycle count and the retrieval-phase
   cycle count (the timer-free observable). *)
let run_phases cfg ~rom ~symbols ~phases =
  let soc = Soc.Builder.build cfg (Soc.Builder.Sim { rom }) in
  let eng = Sim.Engine.create soc.Soc.Builder.netlist in
  let prep_cycles = run_to_halt eng in
  let slice_cycles =
    List.fold_left
      (fun acc (label, cycles) ->
        context_switch eng symbols label;
        Sim.Engine.run eng cycles;
        acc + cycles)
      0 phases
  in
  context_switch eng symbols "retrieval";
  let retrieval_cycles = run_to_halt eng in
  (eng, prep_cycles + slice_cycles + retrieval_cycles, retrieval_cycles)

let run_schedule cfg ~rom ~symbols ~slice =
  let eng, total, _ = run_phases cfg ~rom ~symbols ~phases:[ ("victim", slice) ] in
  (eng, total)

(* ---------------------------------------------------------------- *)
(* Seeded trials                                                     *)
(* ---------------------------------------------------------------- *)

(* Deterministic per-trial nuisance noise: a seeded LCG jitters the
   scheduler's slice lengths, standing in for the interrupt skew and
   scheduling drift a real RTOS exhibits. Both classes of a paired
   trial share the seed, so the only systematic difference between
   the distributions is the victim's secret. *)
let jitter seed =
  let state = ref (((seed * 0x9E3779B1) lxor 0x5DEECE66) land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else (!state lsr 16) mod bound

let phases_for s ~seed =
  let j = jitter seed in
  match s.sp_family with
  | Interrupt_victim ->
      (* the victim's work arrives in interrupt-driven bursts *)
      [
        ("victim", 48 + j 6);
        ("idle", 24);
        ("victim_resume", 48 + j 6);
        ("idle", 24);
        ("victim_resume", 48 + j 6);
      ]
  | Busted_timer_free | Hwpe_progressive -> [ ("victim", 240 + j 16) ]
  | Dma_contention | Prefetcher -> [ ("victim", 200 + j 8) ]
  | _ -> [ ("victim", 120 + j 8) ]

let measure s ~seed ~n =
  let cfg = sim_config s in
  let rom, symbols = assemble_with_symbols (firmware s cfg ~n) in
  let phases = phases_for s ~seed in
  let eng, _total, retrieval_cycles = run_phases cfg ~rom ~symbols ~phases in
  match s.sp_family with
  | Busted_timer | Interrupt_victim | Tdma_interconnect | Countermeasure
  | No_spies ->
      float_of_int (Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" 28))
  | Busted_timer_free | Hwpe_progressive | Dma_contention | Prefetcher ->
      float_of_int retrieval_cycles

let sample_pair s ~seed =
  (measure s ~seed ~n:s.sp_secret, measure s ~seed ~n:s.sp_public)
