(* Welch's t-test + Cohen's d over cycle-count samples, with
   sample-size escalation. Pure OCaml: the Student-t tail probability
   is computed through the regularised incomplete beta function
   (Lanczos log-gamma + Lentz continued fraction), accurate to ~1e-10
   over the df >= 1 range we use — far below the decision thresholds. *)

type verdict = Leak | No_leak | Inconclusive

type result = {
  st_verdict : verdict;
  st_t : float;
  st_df : float;
  st_p : float;  (* two-sided *)
  st_d : float;  (* Cohen's d, pooled-sd *)
  st_n : int;  (* samples per class at the final test *)
  st_escalations : int;
  st_mean_secret : float;
  st_mean_public : float;
  st_sd_secret : float;
  st_sd_public : float;
}

(* ---- special functions ---- *)

let rec log_gamma x =
  (* Lanczos, g = 7, n = 9; |relative error| < 1e-13 for x > 0 *)
  let c =
    [|
      0.99999999999980993;
      676.5203681218851;
      -1259.1392167224028;
      771.32342877765313;
      -176.61502916214059;
      12.507343278686905;
      -0.13857109526572012;
      9.9843695780195716e-6;
      1.5056327351493116e-7;
    |]
  in
  if x < 0.5 then
    (* reflection *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma_pos (1.0 -. x) c
  else log_gamma_pos x c

and log_gamma_pos x c =
  let x = x -. 1.0 in
  let a = ref c.(0) in
  let t = x +. 7.5 in
  for i = 1 to 8 do
    a := !a +. (c.(i) /. (x +. float_of_int i))
  done;
  (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Lentz's algorithm for the incomplete-beta continued fraction. *)
let betacf a b x =
  let max_iter = 200 and eps = 3e-14 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let fm = float_of_int m in
       let m2 = 2.0 *. fm in
       let aa = fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa =
         -.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < eps then raise Exit
     done
   with Exit -> ());
  !h

(* Regularised incomplete beta I_x(a, b). *)
let betai a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)

let p_value ~t ~df =
  if df <= 0.0 then 1.0
  else if Float.is_nan t then 1.0
  else betai (df /. 2.0) 0.5 (df /. (df +. (t *. t)))

(* ---- sample statistics ---- *)

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  (* unbiased; 0 for n < 2 *)
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (n - 1)

let welch_t sec pub =
  let n1 = float_of_int (Array.length sec)
  and n2 = float_of_int (Array.length pub) in
  let v1 = variance sec and v2 = variance pub in
  let se2 = (v1 /. n1) +. (v2 /. n2) in
  if se2 = 0.0 then (Float.nan, 0.0)
  else
    let t = (mean sec -. mean pub) /. sqrt se2 in
    let df =
      se2 *. se2
      /. ((v1 /. n1 *. (v1 /. n1) /. (n1 -. 1.0))
         +. (v2 /. n2 *. (v2 /. n2) /. (n2 -. 1.0)))
    in
    (t, df)

(* A constant-vs-constant split still deserves a magnitude: cap d so
   zero-variance leaks (a noiseless counter) classify as huge effects
   instead of NaN. *)
let d_cap = 1000.0

let cohen_d sec pub =
  let n1 = float_of_int (Array.length sec)
  and n2 = float_of_int (Array.length pub) in
  let v1 = variance sec and v2 = variance pub in
  let pooled =
    (((n1 -. 1.0) *. v1) +. ((n2 -. 1.0) *. v2)) /. (n1 +. n2 -. 2.0)
  in
  let delta = mean sec -. mean pub in
  if pooled = 0.0 then if delta = 0.0 then 0.0 else Float.copy_sign d_cap delta
  else
    let d = delta /. sqrt pooled in
    if Float.abs d > d_cap then Float.copy_sign d_cap d else d

(* ---- decision ---- *)

let default_alpha = 1e-3
let default_d_small = 0.2
let default_d_large = 0.8
let default_weak_p = 0.1

let test ?(alpha = default_alpha) ?(d_small = default_d_small)
    ?(d_large = default_d_large) ?(weak_p = default_weak_p) ~secret ~public ()
    =
  let n = min (Array.length secret) (Array.length public) in
  if n < 2 then invalid_arg "Stat.test: need at least 2 samples per class";
  let m1 = mean secret and m2 = mean public in
  let v1 = variance secret and v2 = variance public in
  let d = cohen_d secret public in
  let t, df, p =
    if v1 = 0.0 && v2 = 0.0 then
      (* both classes constant: identical -> certainly no timing
         delta; different -> a noiseless, perfectly repeatable delta *)
      if m1 = m2 then (0.0, 0.0, 1.0) else (Float.infinity, 0.0, 0.0)
    else
      let t, df = welch_t secret public in
      (t, df, p_value ~t ~df)
  in
  let verdict =
    if p < alpha && Float.abs d >= d_large then Leak
    else if p > weak_p && Float.abs d < d_small then No_leak
    else Inconclusive
  in
  {
    st_verdict = verdict;
    st_t = t;
    st_df = df;
    st_p = p;
    st_d = d;
    st_n = n;
    st_escalations = 0;
    st_mean_secret = m1;
    st_mean_public = m2;
    st_sd_secret = sqrt v1;
    st_sd_public = sqrt v2;
  }

let escalating ?alpha ?d_small ?d_large ?weak_p ?(init_n = 12) ?(max_n = 96)
    ~sample () =
  if init_n < 2 then invalid_arg "Stat.escalating: init_n < 2";
  let secret = ref [] and public = ref [] and drawn = ref 0 in
  let draw_upto n =
    while !drawn < n do
      let s, p = sample !drawn in
      secret := s :: !secret;
      public := p :: !public;
      incr drawn
    done
  in
  let arrays () =
    (Array.of_list (List.rev !secret), Array.of_list (List.rev !public))
  in
  let rec go n escalations =
    draw_upto n;
    let sec, pub = arrays () in
    let r = { (test ?alpha ?d_small ?d_large ?weak_p ~secret:sec ~public:pub ()) with st_escalations = escalations } in
    match r.st_verdict with
    | Leak | No_leak -> r
    | Inconclusive ->
        if n >= max_n then
          (* final call on everything drawn: a significant delta is a
             leak even if the standardised effect is mid-band *)
          let verdict =
            if r.st_p < (match alpha with Some a -> a | None -> default_alpha)
            then Leak
            else Inconclusive
          in
          { r with st_verdict = verdict }
        else go (min max_n (n * 2)) (escalations + 1)
  in
  go init_n 0

let verdict_to_string = function
  | Leak -> "leak"
  | No_leak -> "no_leak"
  | Inconclusive -> "inconclusive"

let json_float f =
  (* non-finite floats emit as null in Upec.Json; keep the artefact
     numeric *)
  if Float.is_finite f then Upec.Json.Float f
  else Upec.Json.Str (if f > 0.0 then "inf" else if f < 0.0 then "-inf" else "nan")

let to_json r =
  Upec.Json.Obj
    [
      ("verdict", Upec.Json.Str (verdict_to_string r.st_verdict));
      ("t", json_float r.st_t);
      ("df", json_float r.st_df);
      ("p", json_float r.st_p);
      ("cohen_d", json_float r.st_d);
      ("n_per_class", Upec.Json.Int r.st_n);
      ("escalations", Upec.Json.Int r.st_escalations);
      ("mean_secret", json_float r.st_mean_secret);
      ("mean_public", json_float r.st_mean_public);
      ("sd_secret", json_float r.st_sd_secret);
      ("sd_public", json_float r.st_sd_public);
    ]
