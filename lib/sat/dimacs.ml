(* Lines are split first so 'c' comments and the 'p' header keep their
   line-oriented meaning; within a line, any blank characters separate
   tokens (spaces, tabs, and the stray '\r' of CRLF files). SATLIB
   archives additionally end some files with a '%' line followed by a
   lone '0' — everything from a '%' token on is ignored. *)

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

let tokens_of_line line =
  let n = String.length line in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_space line.[!i] do
      incr i
    done;
    let start = !i in
    while !i < n && not (is_space line.[!i]) do
      incr i
    done;
    if !i > start then toks := String.sub line start (!i - start) :: !toks
  done;
  List.rev !toks

exception Done

let m_header_mismatch = Obs.Metrics.counter "dimacs.header_mismatch"

let parse text =
  let nvars = ref 0 in
  let declared = ref None in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  (try
     List.iter
       (fun line ->
         match tokens_of_line line with
         | [] -> ()
         | first :: _ when String.length first > 0 && first.[0] = 'c' -> ()
         | "%" :: _ -> raise Done
         | "p" :: rest -> (
             match rest with
             | [ "cnf"; nv; nc ] -> (
                 match int_of_string_opt nv with
                 | Some n ->
                     nvars := max !nvars n;
                     declared := int_of_string_opt nc
                 | None -> failwith "Dimacs.parse: malformed problem line")
             | _ -> failwith "Dimacs.parse: malformed problem line")
         | toks ->
             List.iter
               (fun tok ->
                 if tok = "%" then raise Done
                 else
                   let i =
                     match int_of_string_opt tok with
                     | Some i -> i
                     | None ->
                         failwith ("Dimacs.parse: bad token " ^ tok)
                   in
                   if i = 0 then begin
                     clauses := List.rev !current :: !clauses;
                     current := []
                   end
                   else begin
                     nvars := max !nvars (abs i);
                     current := Lit.of_dimacs i :: !current
                   end)
               toks)
       lines
   with Done -> ());
  if !current <> [] then clauses := List.rev !current :: !clauses;
  let clauses = List.rev !clauses in
  (* A wrong header is not fatal (the clauses themselves are
     authoritative) but it usually means a truncated or hand-edited
     file — surface it instead of silently ignoring it. *)
  (match !declared with
  | Some nc when nc <> List.length clauses ->
      Obs.Metrics.incr m_header_mismatch;
      Obs.Trace.event "dimacs.header_mismatch"
        ~attrs:
          [
            ("declared", Obs.Trace.Int nc);
            ("parsed", Obs.Trace.Int (List.length clauses));
          ]
  | _ -> ());
  (!nvars, clauses)

let parse_file path =
  (* binary mode: a CRLF file must reach the tokenizer verbatim (it
     strips '\r' itself), and [in_channel_length] only matches the
     bytes read when no newline translation happens *)
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse text)

let print fmt (nvars, clauses) =
  Format.fprintf fmt "p cnf %d %d@." nvars (List.length clauses);
  List.iter
    (fun clause ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) clause;
      Format.fprintf fmt "0@.")
    clauses

let load solver text =
  let nvars, clauses = parse text in
  for _ = Solver.nvars solver to nvars - 1 do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
