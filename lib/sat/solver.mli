(** CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal
    propagation, first-UIP learning with recursive clause minimisation,
    EVSIDS branching, phase saving, Luby restarts and LBD-based learnt
    clause database reduction. Supports incremental solving under
    assumptions; clauses may be added between [solve] calls.

    Feature toggles exist so benches can ablate individual heuristics. *)

type t

type options = {
  use_vsids : bool;  (** activity-ordered decisions (else lowest index) *)
  use_restarts : bool;
  use_phase_saving : bool;
  use_minimization : bool;  (** learnt clause minimisation *)
  var_decay : float;  (** EVSIDS decay, in (0, 1) *)
  clause_decay : float;
  restart_base : int;  (** conflicts per Luby unit *)
  max_learnts_factor : float;  (** learnt DB size as fraction of clauses *)
  init_polarity : bool;
      (** initial saved phase of fresh variables (portfolio diversification) *)
}

val default_options : options
val create : ?options:options -> unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val nvars : t -> int

val nclauses : t -> int
(** Number of problem clauses in the {!export} view: original clauses
    plus the root-level trail as unit clauses; learnt clauses excluded.
    Observability hook for the CNF-reduction accounting. *)

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause. Duplicate literals are removed; tautologies
    are dropped; an empty (or falsified-at-level-0) clause makes the
    instance trivially unsatisfiable. *)

type result = Sat | Unsat

exception Interrupted
(** Raised out of {!solve} when the termination callback fires. The
    solver unwinds to decision level 0 and stays usable. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve the current clause set under the given assumptions. *)

(** {1 Resource budgets} *)

type budget = {
  max_conflicts : int;  (** per-call conflict cap; negative = unlimited *)
  max_propagations : int;  (** per-call propagation cap; negative = unlimited *)
  max_seconds : float;  (** per-call wall-clock cap; nonpositive = unlimited *)
}
(** Per-[solve_bounded] resource limits, measured from the start of the
    call (the cumulative counters keep running across calls). *)

val no_budget : budget
val conflict_budget : int -> budget
val time_budget : float -> budget

val scale_budget : budget -> float -> budget
(** Multiply every finite limit by the factor (escalating retries);
    unlimited components stay unlimited. *)

val pp_budget : Format.formatter -> budget -> unit

type outcome = Solved of result | Unknown of string
(** [Unknown reason] when the budget ran out before a verdict; [reason]
    names the exhausted resource. *)

val solve_bounded : ?assumptions:Lit.t list -> ?budget:budget -> t -> outcome
(** Like {!solve}, but gives up with [Unknown] once the budget is
    exhausted instead of searching forever. The solver unwinds to
    decision level 0 and stays usable — clauses learnt before the
    exhaustion are kept, so a retry with a larger budget resumes from a
    strictly stronger clause database. A termination callback firing
    still raises {!Interrupted}: cancellation is a control transfer,
    exhaustion is a result. *)

val set_terminate : t -> (unit -> bool) option -> unit
(** Install (or clear) a callback polled once per search-loop step
    (conflict or decision). When it returns [true], the current [solve]
    raises {!Interrupted}. Used by the portfolio runner to cancel
    losers through a shared atomic flag. *)

(** {1 Proof tracing (DRUP)} *)

type tracer = {
  trace_add : Lit.t array -> unit;
  trace_delete : Lit.t array -> unit;
  trace_barrier : unit -> unit;
}
(** Certificate sink. [trace_add] fires for every clause the solver adds
    beyond the clauses given to {!add_clause}: learnt clauses (unit and
    multi-literal), input clauses strengthened at level 0 (false
    literals dropped), and the empty clause when unsatisfiability is
    detected without assumptions. [trace_delete] fires when a learnt
    clause is removed by database reduction. Every traced addition is
    RUP with respect to the input clauses plus the previously traced
    additions (minus deletions), so the stream — interpreted as a DRUP
    certificate — can be validated by unit propagation alone. The
    arrays are fresh; the callee may keep them.

    [trace_barrier] fires at restarts and after learnt-database
    reductions — natural phase boundaries of the search. It carries no
    proof content and any point between steps is a valid DRUP split; the
    barrier is a pacing hint. A sink that only records steps ignores it;
    a pipelined checker uses it to close an epoch ({!Cert.Pipeline}). *)

val set_tracer : t -> tracer option -> unit
(** Install (or clear) the certificate sink. Install it before the
    first {!add_clause} so level-0 strengthenings are captured. *)

val export : t -> int * Lit.t list list
(** [(nvars, clauses)]: a snapshot of the problem — every original
    clause plus the root-level trail as unit clauses (learnt clauses
    are implied and omitted). Loading the snapshot into a fresh solver
    yields an equisatisfiable instance with identical variable
    numbering; a trivially-unsat solver exports the empty clause. *)

val value : t -> Lit.t -> bool
(** Value of a literal in the model of the last [Sat] answer. Raises
    [Invalid_argument] if the last call did not return [Sat]. *)

val value_var : t -> int -> bool

val unsat_assumptions : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset of the
    assumptions sufficient for unsatisfiability (the final conflict
    clause restricted to assumption literals). Empty when the clause set
    itself is unsatisfiable. *)

(** {1 Statistics} *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;
  deleted_clauses : int;
}

val stats : t -> stats
val diff_stats : stats -> stats -> stats
(** Componentwise [a - b]: the cost of one check on a cumulative
    counter. *)

val add_stats : stats -> stats -> stats
val zero_stats : stats

val pp_stats : Format.formatter -> stats -> unit
