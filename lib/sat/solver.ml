(* CDCL solver, MiniSat-flavoured. The implementation notes below follow
   the usual conventions:
   - assigns.(v): 0 = unassigned, 1 = true, -1 = false
   - a clause watches its first two literals; it is registered in the
     watch list of the *negation* of each watched literal, so when a
     literal p is enqueued (made true) the clauses in watches.(p) have a
     watched literal that just became false. *)

type clause = {
  mutable lits : int array;  (* Lit.to_int encoded *)
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable removed : bool;
}

type options = {
  use_vsids : bool;
  use_restarts : bool;
  use_phase_saving : bool;
  use_minimization : bool;
  var_decay : float;
  clause_decay : float;
  restart_base : int;
  max_learnts_factor : float;
  init_polarity : bool;
}

let default_options =
  {
    use_vsids = true;
    use_restarts = true;
    use_phase_saving = true;
    use_minimization = true;
    var_decay = 0.95;
    clause_decay = 0.999;
    restart_base = 100;
    max_learnts_factor = 0.4;
    init_polarity = false;
  }

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;
  deleted_clauses : int;
}

type budget = {
  max_conflicts : int;
  max_propagations : int;
  max_seconds : float;
}

let no_budget = { max_conflicts = -1; max_propagations = -1; max_seconds = 0.0 }

let conflict_budget n = { no_budget with max_conflicts = n }
let time_budget s = { no_budget with max_seconds = s }

let scale_budget b f =
  let scale_i n = if n < 0 then n else max 1 (int_of_float (float_of_int n *. f)) in
  {
    max_conflicts = scale_i b.max_conflicts;
    max_propagations = scale_i b.max_propagations;
    max_seconds = (if b.max_seconds <= 0.0 then b.max_seconds else b.max_seconds *. f);
  }

let pp_budget fmt b =
  let parts =
    (if b.max_conflicts >= 0 then [ Printf.sprintf "conflicts<=%d" b.max_conflicts ] else [])
    @ (if b.max_propagations >= 0 then
         [ Printf.sprintf "propagations<=%d" b.max_propagations ]
       else [])
    @
    if b.max_seconds > 0.0 then [ Printf.sprintf "time<=%.3gs" b.max_seconds ]
    else []
  in
  Format.fprintf fmt "%s"
    (if parts = [] then "unlimited" else String.concat " " parts)

type tracer = {
  trace_add : Lit.t array -> unit;
  trace_delete : Lit.t array -> unit;
  trace_barrier : unit -> unit;
}

(* Growable clause vectors for watch lists. *)
module Cvec = struct
  type t = { mutable data : clause array; mutable len : int }

  let dummy =
    { lits = [||]; learnt = false; activity = 0.; lbd = 0; removed = true }

  let create () = { data = Array.make 4 dummy; len = 0 }

  let push v c =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) dummy in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- c;
    v.len <- v.len + 1

  let remove v c =
    let rec find i = if i >= v.len then -1 else if v.data.(i) == c then i else find (i + 1) in
    let i = find 0 in
    if i >= 0 then begin
      v.data.(i) <- v.data.(v.len - 1);
      v.len <- v.len - 1
    end
end

type lastres = RSat | RUnsat | RNone

type t = {
  opts : options;
  mutable nvars : int;
  mutable assigns : int array;  (* by var *)
  mutable level : int array;  (* by var *)
  mutable reason : clause option array;  (* by var *)
  mutable activity : float array;  (* by var *)
  mutable polarity : bool array;  (* saved phase, by var *)
  mutable seen : bool array;  (* by var, scratch *)
  mutable watches : Cvec.t array;  (* by lit code *)
  mutable heap : int array;  (* binary max-heap of vars *)
  mutable heap_len : int;
  mutable heap_pos : int array;  (* by var; -1 when absent *)
  mutable trail : int array;  (* lit codes *)
  mutable trail_len : int;
  mutable trail_lim : int array;
  mutable trail_lim_len : int;
  mutable qhead : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable nlearnts : int;
  mutable var_inc : float;
  mutable clause_inc : float;
  mutable ok : bool;  (* false once trivially unsat *)
  mutable model : int array;
  mutable last_result : lastres;
  mutable conflict_core : int list;  (* assumption lits of final conflict *)
  mutable terminate : (unit -> bool) option;  (* polled during search *)
  mutable tracer : tracer option;  (* DRUP certificate sink *)
  (* resource limits of the in-flight [solve_bounded] call, as absolute
     thresholds against the cumulative counters; -1 / nonpositive
     deadline mean unlimited *)
  mutable lim_conflicts : int;
  mutable lim_propagations : int;
  mutable lim_deadline : float;  (* Unix.gettimeofday threshold *)
  mutable lim_clock_poll : int;  (* countdown until the next clock read *)
  (* stats *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learnt_total : int;
  mutable n_deleted : int;
}

let create ?(options = default_options) () =
  {
    opts = options;
    nvars = 0;
    assigns = [||];
    level = [||];
    reason = [||];
    activity = [||];
    polarity = [||];
    seen = [||];
    watches = [||];
    heap = [||];
    heap_len = 0;
    heap_pos = [||];
    trail = [||];
    trail_len = 0;
    trail_lim = [||];
    trail_lim_len = 0;
    qhead = 0;
    clauses = [];
    learnts = [];
    nlearnts = 0;
    var_inc = 1.0;
    clause_inc = 1.0;
    ok = true;
    model = [||];
    last_result = RNone;
    conflict_core = [];
    terminate = None;
    tracer = None;
    lim_conflicts = -1;
    lim_propagations = -1;
    lim_deadline = 0.0;
    lim_clock_poll = 0;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_learnt_total = 0;
    n_deleted = 0;
  }

let nvars t = t.nvars

let grow_array a n default =
  let old = Array.length a in
  if n <= old then a
  else begin
    let bigger = Array.make (max n (max 16 (2 * old))) default in
    Array.blit a 0 bigger 0 old;
    bigger
  end

(* ---- value of literals ---- *)

let lit_value t l =
  (* 1 true, -1 false, 0 undef *)
  let a = t.assigns.(l lsr 1) in
  if l land 1 = 0 then a else -a

(* ---- VSIDS heap (max-heap on activity) ---- *)

let heap_lt t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_lt t t.heap.(i) t.heap.(parent) then begin
      heap_swap t i parent;
      heap_up t parent
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_len && heap_lt t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_len && heap_lt t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap <- grow_array t.heap (t.heap_len + 1) 0;
    t.heap.(t.heap_len) <- v;
    t.heap_pos.(v) <- t.heap_len;
    t.heap_len <- t.heap_len + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  t.heap_pos.(t.heap.(0)) <- 0;
  t.heap_pos.(v) <- -1;
  if t.heap_len > 0 then heap_down t 0;
  v

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  t.assigns <- grow_array t.assigns t.nvars 0;
  t.level <- grow_array t.level t.nvars 0;
  t.reason <- grow_array t.reason t.nvars None;
  t.activity <- grow_array t.activity t.nvars 0.0;
  t.polarity <- grow_array t.polarity t.nvars false;
  t.seen <- grow_array t.seen t.nvars false;
  t.heap_pos <- grow_array t.heap_pos t.nvars (-1);
  t.trail <- grow_array t.trail t.nvars 0;
  if Array.length t.watches < 2 * t.nvars then begin
    let old = Array.length t.watches in
    let bigger =
      Array.init (max (2 * t.nvars) (2 * old)) (fun i ->
          if i < old then t.watches.(i) else Cvec.create ())
    in
    t.watches <- bigger
  end;
  t.assigns.(v) <- 0;
  t.level.(v) <- 0;
  t.reason.(v) <- None;
  t.activity.(v) <- 0.0;
  t.polarity.(v) <- t.opts.init_polarity;
  t.seen.(v) <- false;
  t.heap_pos.(v) <- -1;
  heap_insert t v;
  v

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

let var_decay t = t.var_inc <- t.var_inc /. t.opts.var_decay

let clause_bump t (c : clause) =
  c.activity <- c.activity +. t.clause_inc;
  if c.activity > 1e20 then begin
    List.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.clause_inc <- t.clause_inc *. 1e-20
  end

let clause_decay t = t.clause_inc <- t.clause_inc /. t.opts.clause_decay

(* ---- trail ---- *)

let decision_level t = t.trail_lim_len

let enqueue t l reason =
  let v = l lsr 1 in
  t.assigns.(v) <- (if l land 1 = 0 then 1 else -1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail <- grow_array t.trail (t.trail_len + 1) 0;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

let new_decision_level t =
  t.trail_lim <- grow_array t.trail_lim (t.trail_lim_len + 1) 0;
  t.trail_lim.(t.trail_lim_len) <- t.trail_len;
  t.trail_lim_len <- t.trail_lim_len + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_len - 1 downto bound do
      let l = t.trail.(i) in
      let v = l lsr 1 in
      if t.opts.use_phase_saving then t.polarity.(v) <- l land 1 = 0;
      t.assigns.(v) <- 0;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_len <- bound;
    t.qhead <- bound;
    t.trail_lim_len <- lvl
  end

(* ---- watches ---- *)

let attach t c =
  Cvec.push t.watches.(c.lits.(0) lxor 1) c;
  Cvec.push t.watches.(c.lits.(1) lxor 1) c

let detach t c =
  Cvec.remove t.watches.(c.lits.(0) lxor 1) c;
  Cvec.remove t.watches.(c.lits.(1) lxor 1) c

(* ---- propagation ---- *)

exception Conflict of clause

let propagate t =
  try
    while t.qhead < t.trail_len do
      let p = t.trail.(t.qhead) in
      t.qhead <- t.qhead + 1;
      t.n_propagations <- t.n_propagations + 1;
      let ws = t.watches.(p) in
      let i = ref 0 in
      while !i < ws.Cvec.len do
        let c = ws.Cvec.data.(!i) in
        if c.removed then begin
          (* lazy removal *)
          ws.Cvec.data.(!i) <- ws.Cvec.data.(ws.Cvec.len - 1);
          ws.Cvec.len <- ws.Cvec.len - 1
        end
        else begin
          let false_lit = p lxor 1 in
          (* Ensure the false literal is at position 1. *)
          if c.lits.(0) = false_lit then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- false_lit
          end;
          if lit_value t c.lits.(0) = 1 then incr i (* satisfied *)
          else begin
            (* Find a new literal to watch. *)
            let n = Array.length c.lits in
            let rec find k = if k >= n then -1 else if lit_value t c.lits.(k) <> -1 then k else find (k + 1) in
            let k = find 2 in
            if k >= 0 then begin
              c.lits.(1) <- c.lits.(k);
              c.lits.(k) <- false_lit;
              Cvec.push t.watches.(c.lits.(1) lxor 1) c;
              ws.Cvec.data.(!i) <- ws.Cvec.data.(ws.Cvec.len - 1);
              ws.Cvec.len <- ws.Cvec.len - 1
            end
            else if lit_value t c.lits.(0) = -1 then begin
              (* conflict *)
              t.qhead <- t.trail_len;
              raise (Conflict c)
            end
            else begin
              (* unit *)
              enqueue t c.lits.(0) (Some c);
              incr i
            end
          end
        end
      done
    done;
    None
  with Conflict c -> Some c

(* ---- proof tracing ---- *)

(* The callbacks receive fresh arrays: clause literal arrays are mutated
   later by watch reordering, so aliasing would corrupt the certificate. *)
let trace_add t lits =
  match t.tracer with
  | None -> ()
  | Some tr -> tr.trace_add (Array.map Lit.of_int lits)

let trace_delete t lits =
  match t.tracer with
  | None -> ()
  | Some tr -> tr.trace_delete (Array.map Lit.of_int lits)

let trace_barrier t =
  match t.tracer with None -> () | Some tr -> tr.trace_barrier ()

let set_tracer t tr = t.tracer <- tr

(* ---- clause addition ---- *)

let add_clause t lits =
  if t.ok then begin
    t.last_result <- RNone;
    if decision_level t > 0 then cancel_until t 0;
    (* normalise: dedupe, drop false-at-0, detect tautology / sat-at-0 *)
    let lits = List.sort_uniq Stdlib.compare (List.map Lit.to_int lits) in
    let n_orig = List.length lits in
    let tauto =
      let rec chk = function
        | a :: (b :: _ as rest) -> if a lxor 1 = b then true else chk rest
        | _ -> false
      in
      chk lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value t l <> -1) lits in
      let sat0 = List.exists (fun l -> lit_value t l = 1) lits in
      if not sat0 then
        (* the stored clause may be a strict strengthening of the input
           (false-at-0 literals dropped); trace it so a proof checker's
           clause database mirrors ours.  The strengthened clause is RUP
           w.r.t. the input clause plus the root-level units. *)
        let simplified = List.length lits < n_orig in
        match lits with
        | [] ->
            trace_add t [||];
            t.ok <- false
        | [ l ] -> (
            if simplified then trace_add t [| l |];
            enqueue t l None;
            match propagate t with
            | None -> ()
            | Some _ ->
                trace_add t [||];
                t.ok <- false)
        | _ ->
            if simplified then trace_add t (Array.of_list lits);
            let c =
              {
                lits = Array.of_list lits;
                learnt = false;
                activity = 0.0;
                lbd = 0;
                removed = false;
              }
            in
            t.clauses <- c :: t.clauses;
            attach t c
    end
  end

(* ---- conflict analysis ---- *)

let compute_lbd t lits =
  let levels = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace levels t.level.(l lsr 1) ()) lits;
  Hashtbl.length levels

(* Is l redundant w.r.t. the current learnt clause (all its reason
   antecedents eventually hit seen literals)? On failure, the marks
   added during this check are undone to keep later checks sound. *)
let lit_redundant t l abstract_levels to_clear =
  let stack = ref [ l ] in
  let local_marks = ref [] in
  let ok = ref true in
  (try
     while !stack <> [] do
       let p =
         match !stack with x :: rest -> stack := rest; x | [] -> assert false
       in
       match t.reason.(p lsr 1) with
       | None ->
           ok := false;
           raise Exit
       | Some c ->
           Array.iter
             (fun q ->
               let v = q lsr 1 in
               if (not t.seen.(v)) && t.level.(v) > 0 then begin
                 if
                   t.reason.(v) <> None
                   && abstract_levels land (1 lsl (t.level.(v) land 31)) <> 0
                 then begin
                   t.seen.(v) <- true;
                   local_marks := v :: !local_marks;
                   stack := q :: !stack
                 end
                 else begin
                   ok := false;
                   raise Exit
                 end
               end)
             c.lits
     done
   with Exit -> ());
  if !ok then to_clear := !local_marks @ !to_clear
  else List.iter (fun v -> t.seen.(v) <- false) !local_marks;
  !ok

let analyze t confl =
  (* returns (learnt lits array with UIP first, backtrack level, lbd) *)
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (t.trail_len - 1) in
  let confl = ref (Some confl) in
  let to_clear = ref [] in
  let continue_loop = ref true in
  while !continue_loop do
    (match !confl with
    | None -> assert false
    | Some c ->
        if c.learnt then clause_bump t c;
        Array.iter
          (fun q ->
            if q <> !p then begin
              let v = q lsr 1 in
              if (not t.seen.(v)) && t.level.(v) > 0 then begin
                var_bump t v;
                t.seen.(v) <- true;
                to_clear := v :: !to_clear;
                if t.level.(v) >= decision_level t then incr path_c
                else learnt := q :: !learnt
              end
            end)
          c.lits);
    (* next literal to expand *)
    while not t.seen.(t.trail.(!index) lsr 1) do
      decr index
    done;
    p := t.trail.(!index);
    decr index;
    let v = !p lsr 1 in
    t.seen.(v) <- false;
    confl := t.reason.(v);
    decr path_c;
    if !path_c <= 0 then continue_loop := false
  done;
  let uip = !p lxor 1 in
  (* minimisation *)
  let tail =
    if t.opts.use_minimization then begin
      let abstract_levels =
        List.fold_left
          (fun acc q -> acc lor (1 lsl (t.level.(q lsr 1) land 31)))
          0 !learnt
      in
      List.filter
        (fun q ->
          t.reason.(q lsr 1) = None
          || not (lit_redundant t q abstract_levels to_clear))
        !learnt
    end
    else !learnt
  in
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  let lits = Array.of_list (uip :: tail) in
  (* backtrack level: highest level among tail; move that literal to
     position 1 so it is watched. *)
  let bt =
    if Array.length lits = 1 then 0
    else begin
      let max_i = ref 1 in
      for i = 2 to Array.length lits - 1 do
        if t.level.(lits.(i) lsr 1) > t.level.(lits.(!max_i) lsr 1) then
          max_i := i
      done;
      let tmp = lits.(1) in
      lits.(1) <- lits.(!max_i);
      lits.(!max_i) <- tmp;
      t.level.(lits.(1) lsr 1)
    end
  in
  (lits, bt, compute_lbd t lits)

(* Final conflict analysis: [failed] is an assumption literal found
   false. Returns the subset of assumption literals responsible (the
   decisions reachable in the reason graph from [failed]), including
   [failed] itself. *)
let analyze_final t failed =
  let core = ref [ failed ] in
  if decision_level t > 0 then begin
    let seen = Array.make t.nvars false in
    seen.(failed lsr 1) <- true;
    for i = t.trail_len - 1 downto t.trail_lim.(0) do
      let q = t.trail.(i) in
      let v = q lsr 1 in
      if seen.(v) then begin
        (match t.reason.(v) with
        | None ->
            (* a decision at level >= 1 under assumptions is an
               assumption; it was enqueued with its own polarity *)
            if t.level.(v) > 0 && q <> failed then core := q :: !core
        | Some c ->
            Array.iter (fun r -> if r <> q then seen.(r lsr 1) <- true) c.lits);
        seen.(v) <- false
      end
    done
  end;
  !core

(* ---- learnt DB reduction ---- *)

let reduce_db t =
  let cmp a b =
    (* worse first: higher lbd, then lower activity *)
    if a.lbd <> b.lbd then Stdlib.compare b.lbd a.lbd
    else Stdlib.compare a.activity b.activity
  in
  let arr = Array.of_list t.learnts in
  Array.sort cmp arr;
  let n = Array.length arr in
  let locked c =
    Array.length c.lits > 0
    &&
    let l = c.lits.(0) in
    lit_value t l = 1
    && (match t.reason.(l lsr 1) with Some r -> r == c | None -> false)
  in
  let removed = ref 0 in
  Array.iteri
    (fun i c ->
      if i < n / 2 && c.lbd > 2 && not (locked c) then begin
        trace_delete t c.lits;
        c.removed <- true;
        (* watches cleaned lazily; detach eagerly to keep lists short *)
        detach t c;
        incr removed
      end)
    arr;
  t.learnts <- List.filter (fun c -> not c.removed) t.learnts;
  t.nlearnts <- t.nlearnts - !removed;
  t.n_deleted <- t.n_deleted + !removed

(* ---- decisions ---- *)

let pick_branch_var t =
  if t.opts.use_vsids then begin
    let v = ref (-1) in
    while !v < 0 && t.heap_len > 0 do
      let cand = heap_pop t in
      if t.assigns.(cand) = 0 then v := cand
    done;
    !v
  end
  else begin
    let rec find i =
      if i >= t.nvars then -1 else if t.assigns.(i) = 0 then i else find (i + 1)
    in
    find 0
  end

let luby y x =
  (* MiniSat's Luby sequence: find the finite subsequence containing
     index x, then the position within it. *)
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

(* ---- main search ---- *)

type result = Sat | Unsat

exception Found_unsat
exception Interrupted
exception Budget_exhausted of string

let check_terminate t =
  (match t.terminate with
  | Some f -> if f () then raise Interrupted
  | None -> ());
  if t.lim_conflicts >= 0 && t.n_conflicts >= t.lim_conflicts then
    raise (Budget_exhausted "conflict budget exhausted");
  if t.lim_propagations >= 0 && t.n_propagations >= t.lim_propagations then
    raise (Budget_exhausted "propagation budget exhausted");
  if t.lim_deadline > 0.0 then begin
    (* the clock is orders of magnitude dearer than a counter compare:
       read it once every 256 search steps *)
    t.lim_clock_poll <- t.lim_clock_poll - 1;
    if t.lim_clock_poll <= 0 then begin
      t.lim_clock_poll <- 256;
      if Unix.gettimeofday () > t.lim_deadline then
        raise (Budget_exhausted "time budget exhausted")
    end
  end

let search t ~assumptions ~conflict_budget =
  (* returns Some result, or None if budget exhausted (restart) *)
  let max_learnts =
    max 1000
      (int_of_float
         (t.opts.max_learnts_factor *. float_of_int (List.length t.clauses)))
  in
  let conflicts_here = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       check_terminate t;
       match propagate t with
       | Some confl ->
           t.n_conflicts <- t.n_conflicts + 1;
           incr conflicts_here;
           if decision_level t = 0 then begin
             trace_add t [||];
             t.ok <- false;
             t.conflict_core <- [];
             result := Some Unsat
           end
           else begin
             let lits, bt, lbd = analyze t confl in
             trace_add t lits;
             cancel_until t bt;
             (if Array.length lits = 1 then enqueue t lits.(0) None
              else begin
                let c =
                  { lits; learnt = true; activity = 0.0; lbd; removed = false }
                in
                t.learnts <- c :: t.learnts;
                t.nlearnts <- t.nlearnts + 1;
                t.n_learnt_total <- t.n_learnt_total + 1;
                clause_bump t c;
                attach t c;
                enqueue t lits.(0) (Some c)
              end);
             var_decay t;
             clause_decay t
           end
       | None ->
           if
             t.opts.use_restarts
             && conflict_budget >= 0
             && !conflicts_here >= conflict_budget
           then begin
             (* restart *)
             cancel_until t 0;
             t.n_restarts <- t.n_restarts + 1;
             trace_barrier t;
             raise Exit
           end
           else begin
             if t.nlearnts >= max_learnts then begin
               reduce_db t;
               trace_barrier t
             end;
             (* assumption handling / decision *)
             let next = ref (-2) in
             while !next = -2 do
               if decision_level t < List.length assumptions then begin
                 let p = List.nth assumptions (decision_level t) in
                 let pv = lit_value t (Lit.to_int p) in
                 if pv = 1 then new_decision_level t (* already satisfied *)
                 else if pv = -1 then begin
                   t.conflict_core <- analyze_final t (Lit.to_int p);
                   result := Some Unsat;
                   raise Found_unsat
                 end
                 else next := Lit.to_int p
               end
               else begin
                 let v = pick_branch_var t in
                 if v < 0 then begin
                   result := Some Sat;
                   raise Found_unsat (* exit loops; result already set *)
                 end
                 else next := (2 * v) + if t.polarity.(v) then 0 else 1
               end
             done;
             t.n_decisions <- t.n_decisions + 1;
             new_decision_level t;
             enqueue t !next None
           end
     done;
     !result
   with
  | Exit -> None
  | Found_unsat -> !result)

type outcome = Solved of result | Unknown of string

let clear_limits t =
  t.lim_conflicts <- -1;
  t.lim_propagations <- -1;
  t.lim_deadline <- 0.0

let set_limits t budget =
  t.lim_conflicts <-
    (if budget.max_conflicts < 0 then -1
     else t.n_conflicts + budget.max_conflicts);
  t.lim_propagations <-
    (if budget.max_propagations < 0 then -1
     else t.n_propagations + budget.max_propagations);
  t.lim_deadline <-
    (if budget.max_seconds <= 0.0 then 0.0
     else Unix.gettimeofday () +. budget.max_seconds);
  t.lim_clock_poll <- 0

let solve_bounded_core ?(assumptions = []) ?(budget = no_budget) t =
  if not t.ok then begin
    t.last_result <- RUnsat;
    t.conflict_core <- [];
    Solved Unsat
  end
  else begin
    cancel_until t 0;
    t.conflict_core <- [];
    set_limits t budget;
    let rec loop restarts =
      let budget =
        if t.opts.use_restarts then
          int_of_float (luby 2.0 restarts *. float_of_int t.opts.restart_base)
        else -1
      in
      match search t ~assumptions ~conflict_budget:budget with
      | Some r -> r
      | None -> loop (restarts + 1)
    in
    match loop 0 with
    | r ->
        clear_limits t;
        (match r with
        | Sat ->
            t.model <- Array.sub t.assigns 0 t.nvars;
            t.last_result <- RSat
        | Unsat -> t.last_result <- RUnsat);
        cancel_until t 0;
        Solved r
    | exception Interrupted ->
        (* leave the solver reusable: unwind to level 0 *)
        clear_limits t;
        cancel_until t 0;
        t.last_result <- RNone;
        raise Interrupted
    | exception Budget_exhausted reason ->
        (* same unwinding discipline as Interrupted, but the exhaustion
           is a result, not a control transfer: the caller keeps racing
           siblings or escalates the budget on the same solver *)
        clear_limits t;
        cancel_until t 0;
        t.last_result <- RNone;
        Unknown reason
  end

(* Observability handles, hoisted so the per-solve cost is a handful
   of atomic adds (plus one span line when tracing is on). *)
let m_solves = Obs.Metrics.counter "sat.solves"
let m_budget_exhausted = Obs.Metrics.counter "sat.budget_exhausted"
let m_conflicts = Obs.Metrics.counter "sat.conflicts"
let m_propagations = Obs.Metrics.counter "sat.propagations"
let m_restarts = Obs.Metrics.counter "sat.restarts"
let h_solve_seconds = Obs.Metrics.histogram "sat.solve_seconds"
let h_ppc = Obs.Metrics.histogram "sat.propagations_per_conflict"

let solve_bounded ?(assumptions = []) ?(budget = no_budget) t =
  Obs.Metrics.incr m_solves;
  let c0 = t.n_conflicts
  and p0 = t.n_propagations
  and r0 = t.n_restarts in
  let t0 = Unix.gettimeofday () in
  let finish verdict =
    let dc = t.n_conflicts - c0 and dp = t.n_propagations - p0 in
    Obs.Metrics.add m_conflicts dc;
    Obs.Metrics.add m_propagations dp;
    Obs.Metrics.add m_restarts (t.n_restarts - r0);
    Obs.Metrics.observe h_solve_seconds (Unix.gettimeofday () -. t0);
    if dc > 0 then
      Obs.Metrics.observe h_ppc (float_of_int dp /. float_of_int dc);
    (match verdict with
    | Some (Unknown _) -> Obs.Metrics.incr m_budget_exhausted
    | _ -> ());
    if Obs.Trace.enabled () then
      Obs.Trace.emit_span "sat.solve" ~t0 ~t1:(Unix.gettimeofday ())
        ~attrs:
          [
            ( "result",
              Obs.Trace.Str
                (match verdict with
                | Some (Solved Sat) -> "sat"
                | Some (Solved Unsat) -> "unsat"
                | Some (Unknown _) -> "unknown"
                | None -> "interrupted") );
            ("conflicts", Obs.Trace.Int dc);
            ("propagations", Obs.Trace.Int dp);
          ]
  in
  match solve_bounded_core ~assumptions ~budget t with
  | r ->
      finish (Some r);
      r
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish None;
      Printexc.raise_with_backtrace e bt

let solve ?(assumptions = []) t =
  match solve_bounded ~assumptions t with
  | Solved r -> r
  | Unknown _ -> assert false (* no budget was set *)

let set_terminate t f = t.terminate <- f

let export t =
  (* Snapshot the problem: all original clauses plus the level-0 trail
     (root-level units and their propagation consequences) as unit
     clauses. Learnt clauses are implied and intentionally left out, so
     a portfolio racer starts from the same logical problem with its
     own search dynamics. *)
  if decision_level t > 0 then cancel_until t 0;
  let units =
    List.init t.trail_len (fun i -> [ Lit.of_int t.trail.(i) ])
  in
  let clauses =
    List.rev_map
      (fun c -> Array.to_list (Array.map Lit.of_int c.lits))
      t.clauses
  in
  let clauses = if t.ok then clauses else [ [] ] in
  (t.nvars, List.rev_append (List.rev units) clauses)

let nclauses t =
  (* same view of the problem as [export]: original clauses plus the
     root-level trail as units, learnt clauses excluded *)
  if decision_level t > 0 then cancel_until t 0;
  List.length t.clauses + t.trail_len

let value t l =
  if t.last_result <> RSat then invalid_arg "Solver.value: last result not Sat";
  let v = Lit.var l in
  if v >= Array.length t.model then invalid_arg "Solver.value: unknown var";
  let a = t.model.(v) in
  (* unassigned vars (eliminated by simplification) default to false *)
  if Lit.sign l then a = 1 else a <> 1

let value_var t v = value t (Lit.pos v)

let unsat_assumptions t =
  if t.last_result <> RUnsat then
    invalid_arg "Solver.unsat_assumptions: last result not Unsat";
  List.map Lit.of_int t.conflict_core

let stats t =
  {
    conflicts = t.n_conflicts;
    decisions = t.n_decisions;
    propagations = t.n_propagations;
    restarts = t.n_restarts;
    learnt_clauses = t.n_learnt_total;
    deleted_clauses = t.n_deleted;
  }

let diff_stats a b =
  {
    conflicts = a.conflicts - b.conflicts;
    decisions = a.decisions - b.decisions;
    propagations = a.propagations - b.propagations;
    restarts = a.restarts - b.restarts;
    learnt_clauses = a.learnt_clauses - b.learnt_clauses;
    deleted_clauses = a.deleted_clauses - b.deleted_clauses;
  }

let add_stats a b =
  {
    conflicts = a.conflicts + b.conflicts;
    decisions = a.decisions + b.decisions;
    propagations = a.propagations + b.propagations;
    restarts = a.restarts + b.restarts;
    learnt_clauses = a.learnt_clauses + b.learnt_clauses;
    deleted_clauses = a.deleted_clauses + b.deleted_clauses;
  }

let zero_stats =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_clauses = 0;
    deleted_clauses = 0;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "conflicts=%d decisions=%d propagations=%d restarts=%d learnt=%d deleted=%d"
    s.conflicts s.decisions s.propagations s.restarts s.learnt_clauses
    s.deleted_clauses
