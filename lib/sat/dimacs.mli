(** DIMACS CNF reading and writing, for interoperability and for
    debugging the solver against external tools. *)

val parse : string -> int * Lit.t list list
(** [parse text] reads a DIMACS CNF body and returns
    [(num_vars, clauses)]. Comment lines, blank lines, tabs, CRLF line
    endings, trailing whitespace and the SATLIB ['%'] end marker are
    all tolerated; raises [Failure] on malformed input. *)

val parse_file : string -> int * Lit.t list list

val print : Format.formatter -> int * Lit.t list list -> unit
(** Write a problem in DIMACS format. *)

val load : Solver.t -> string -> unit
(** Parse and add all clauses into a solver, allocating variables as
    needed (variables must start at 1 in the file). *)
