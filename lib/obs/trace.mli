(** Span tracer: nested, domain-safe begin/end spans streamed as JSONL.

    One process-global sink. When no sink is installed every call is a
    cheap no-op (one atomic load), so instrumentation can stay compiled
    into hot paths. Events are buffered as complete lines and flushed
    wholesale, so a file cut short by a crash or interrupt is still
    line-by-line parseable JSON.

    Span nesting is tracked per domain: a span opened on a worker
    domain parents to the innermost span open {e on that domain}, and
    every event records the domain id, so cross-domain traces can be
    reassembled.

    Schema (one JSON object per line):
    {v
    {"ev":"begin","id":N,"parent":M,"name":S,"t":T,"dom":D,"attrs":{..}}
    {"ev":"end","id":N,"name":S,"t":T,"dom":D,"attrs":{..}}
    {"ev":"instant","id":N,"parent":M,"name":S,"t":T,"dom":D,"attrs":{..}}
    v}
    [t] is seconds since the sink was installed; [parent] is 0 for
    root spans; an [end] whose body raised carries ["error":true] in
    its attrs. *)

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val set_sink : out_channel -> unit
(** Install [oc] as the global trace sink and start the clock. The
    channel is owned by the tracer from now on: {!close} closes it.
    Raises [Invalid_argument] if a sink is already installed. *)

val close : unit -> unit
(** Flush buffered events, close the sink channel and uninstall the
    sink. Idempotent; a no-op when no sink is installed. Spans still
    open keep unwinding harmlessly (their events are dropped). *)

val with_file : string -> (unit -> 'a) -> 'a
(** [with_file path f] traces [f ()] into [path]. The sink is closed
    (and the buffer flushed) on both normal and exceptional exit, so
    an aborted run leaves a parseable prefix. *)

val enabled : unit -> bool
(** [true] iff a sink is installed. Use to skip costly attribute
    construction, not for correctness. *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] emits a [begin] event, runs [f] with the span
    as the innermost parent on this domain, and emits the matching
    [end] event — also when [f] raises (the [end] then carries
    ["error":true]). When tracing is disabled this is just [f ()]. *)

val event : ?attrs:(string * attr) list -> string -> unit
(** Zero-duration [instant] event under the current span. *)

val emit_span :
  ?attrs:(string * attr) list -> string -> t0:float -> t1:float -> unit
(** Manual span for non-lexical scopes: emits a [begin]/[end] pair
    with the given absolute [Unix.gettimeofday] bounds, parented under
    the current span of this domain. *)
