type counter = { c : int Atomic.t }
type gauge = { g : float Atomic.t }

let nbuckets = 32
let lowest = 1e-6

type histogram = {
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

(* Creation is rare and cold; updates go through the returned handle
   and never touch the registry, so a plain Hashtbl + mutex is fine. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let intern name make classify =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some i -> (
          match classify i with
          | Some x -> x
          | None ->
              invalid_arg
                ("Obs.Metrics: " ^ name
               ^ " already registered as a different instrument kind"))
      | None ->
          let x = make () in
          x)

let counter name =
  intern name
    (fun () ->
      let c = { c = Atomic.make 0 } in
      Hashtbl.replace registry name (C c);
      c)
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c.c
let add c n = ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

let gauge name =
  intern name
    (fun () ->
      let g = { g = Atomic.make 0.0 } in
      Hashtbl.replace registry name (G g);
      g)
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g v

let histogram name =
  intern name
    (fun () ->
      let h =
        {
          h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
        }
      in
      Hashtbl.replace registry name (H h);
      h)
    (function H h -> Some h | _ -> None)

let bucket_of v =
  if v < lowest then 0
  else
    let i = int_of_float (Float.log2 (v /. lowest)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let bucket_upper i = lowest *. Float.pow 2.0 (float_of_int (i + 1))

(* Boxed-float CAS: compare_and_set is physical equality, and [old] is
   exactly the box we read, so the loop is ABA-safe. *)
let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let observe h v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  Atomic.incr h.h_buckets.(bucket_of v);
  Atomic.incr h.h_count;
  atomic_add_float h.h_sum v

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let snap_hist h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let n = Atomic.get h.h_buckets.(i) in
    if n > 0 then buckets := (bucket_upper i, n) :: !buckets
  done;
  {
    hs_count = Atomic.get h.h_count;
    hs_sum = Atomic.get h.h_sum;
    hs_buckets = !buckets;
  }

let snapshot () =
  let cs = ref [] and gs = ref [] and hs = ref [] in
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter
        (fun name i ->
          match i with
          | C c -> cs := (name, Atomic.get c.c) :: !cs
          | G g -> gs := (name, Atomic.get g.g) :: !gs
          | H h -> hs := (name, snap_hist h) :: !hs)
        registry);
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !cs;
    gauges = List.sort by_name !gs;
    histograms = List.sort by_name !hs;
  }

let hist_mean hs =
  if hs.hs_count = 0 then 0.0 else hs.hs_sum /. float_of_int hs.hs_count

let pp_table fmt s =
  Format.fprintf fmt "@[<v>--- metrics ---@,";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-36s %12d@," name v)
    s.counters;
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-36s %12.3f@," name v)
    s.gauges;
  List.iter
    (fun (name, hs) ->
      Format.fprintf fmt "%-36s count=%d sum=%.4f mean=%.6f@," name
        hs.hs_count hs.hs_sum (hist_mean hs))
    s.histograms;
  Format.fprintf fmt "@]"

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let to_json s =
  let b = Buffer.create 1024 in
  let obj render xs =
    Buffer.add_char b '{';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        render x)
      xs;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%S:%d" name v))
    s.counters;
  Buffer.add_string b ",\"gauges\":";
  obj
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "%S:%s" name (json_float v)))
    s.gauges;
  Buffer.add_string b ",\"histograms\":";
  obj
    (fun (name, hs) ->
      Buffer.add_string b
        (Printf.sprintf "%S:{\"count\":%d,\"sum\":%s,\"buckets\":[" name
           hs.hs_count (json_float hs.hs_sum));
      List.iteri
        (fun i (ub, n) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "[%s,%d]" (json_float ub) n))
        hs.hs_buckets;
      Buffer.add_string b "]}")
    s.histograms;
  Buffer.add_char b '}';
  Buffer.contents b

let dump_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json (snapshot ()));
      output_char oc '\n')

let reset () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | C c -> Atomic.set c.c 0
          | G g -> Atomic.set g.g 0.0
          | H h ->
              Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0.0)
        registry)
