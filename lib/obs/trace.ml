type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type sink = {
  oc : out_channel;
  buf : Buffer.t;
  mu : Mutex.t;
  start : float;
  mutable closed : bool;
}

let sink : sink option Atomic.t = Atomic.make None
let next_id = Atomic.make 1

(* Per-domain stack of open span ids: nesting is a property of the
   domain's call stack, so no cross-domain locking is needed to find a
   span's parent. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get sink <> None

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_float b f =
  (* JSON has no inf/nan literals; clamp to null rather than emit an
     unparseable token. *)
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
  else Buffer.add_string b "null"

let add_attrs b attrs =
  Buffer.add_string b ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":";
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f -> add_float b f
      | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
      | Str s ->
          Buffer.add_char b '"';
          json_escape b s;
          Buffer.add_char b '"')
    attrs;
  Buffer.add_char b '}'

(* Flush threshold: big enough to amortise the write syscall, small
   enough that a killed run loses little. Lines are appended whole
   under the sink mutex, so the file never contains a torn line. *)
let flush_threshold = 32 * 1024

let emit s line =
  Mutex.protect s.mu (fun () ->
      if not s.closed then begin
        Buffer.add_string s.buf line;
        Buffer.add_char s.buf '\n';
        if Buffer.length s.buf >= flush_threshold then begin
          Buffer.output_buffer s.oc s.buf;
          Buffer.clear s.buf
        end
      end)

let render s ~ev ~id ?parent ~name ~t ?(attrs = []) () =
  let b = Buffer.create 160 in
  Buffer.add_string b "{\"ev\":\"";
  Buffer.add_string b ev;
  Buffer.add_string b "\",\"id\":";
  Buffer.add_string b (string_of_int id);
  (match parent with
  | Some p ->
      Buffer.add_string b ",\"parent\":";
      Buffer.add_string b (string_of_int p)
  | None -> ());
  Buffer.add_string b ",\"name\":\"";
  json_escape b name;
  Buffer.add_string b "\",\"t\":";
  add_float b (t -. s.start);
  Buffer.add_string b ",\"dom\":";
  Buffer.add_string b (string_of_int (Domain.self () :> int));
  if attrs <> [] then add_attrs b attrs;
  Buffer.add_char b '}';
  Buffer.contents b

let set_sink oc =
  let s =
    {
      oc;
      buf = Buffer.create (2 * flush_threshold);
      mu = Mutex.create ();
      start = Unix.gettimeofday ();
      closed = false;
    }
  in
  if not (Atomic.compare_and_set sink None (Some s)) then
    invalid_arg "Obs.Trace.set_sink: a sink is already installed"

let close () =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      Mutex.protect s.mu (fun () ->
          if not s.closed then begin
            s.closed <- true;
            (try
               Buffer.output_buffer s.oc s.buf;
               Buffer.clear s.buf;
               flush s.oc;
               close_out s.oc
             with _ -> close_out_noerr s.oc)
          end);
      Atomic.set sink None

let with_file path f =
  let oc = open_out path in
  (match Atomic.get sink with
  | Some _ ->
      close_out_noerr oc;
      invalid_arg "Obs.Trace.with_file: a sink is already installed"
  | None -> set_sink oc);
  (* Same discipline as Cert.Proof.with_file_tracer: the sink is
     flushed and closed on abnormal exit too, so an interrupted run
     leaves whole, parseable lines behind. *)
  Fun.protect ~finally:close f

let current_parent () =
  match !(Domain.DLS.get stack_key) with [] -> 0 | p :: _ -> p

let with_span ?(attrs = []) name f =
  match Atomic.get sink with
  | None -> f ()
  | Some s ->
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = current_parent () in
      emit s
        (render s ~ev:"begin" ~id ~parent ~name ~t:(Unix.gettimeofday ())
           ~attrs ());
      let stack = Domain.DLS.get stack_key in
      stack := id :: !stack;
      let pop () =
        match !stack with i :: rest when i = id -> stack := rest | _ -> ()
      in
      (match f () with
      | v ->
          pop ();
          emit s (render s ~ev:"end" ~id ~name ~t:(Unix.gettimeofday ()) ());
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          pop ();
          emit s
            (render s ~ev:"end" ~id ~name ~t:(Unix.gettimeofday ())
               ~attrs:[ ("error", Bool true) ] ());
          Printexc.raise_with_backtrace e bt)

let event ?(attrs = []) name =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = current_parent () in
      emit s
        (render s ~ev:"instant" ~id ~parent ~name ~t:(Unix.gettimeofday ())
           ~attrs ())

let emit_span ?(attrs = []) name ~t0 ~t1 =
  match Atomic.get sink with
  | None -> ()
  | Some s ->
      let id = Atomic.fetch_and_add next_id 1 in
      let parent = current_parent () in
      emit s (render s ~ev:"begin" ~id ~parent ~name ~t:t0 ~attrs ());
      emit s (render s ~ev:"end" ~id ~name ~t:t1 ())
