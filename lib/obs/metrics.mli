(** Process-wide metrics registry: counters, gauges and log-scale
    histograms with lock-free atomic updates.

    Instruments are created (or looked up) by name — creation takes a
    lock, so call sites should hoist their handles to module level and
    update through them on the hot path. Updates are wait-free for
    counters and bucket counts and a CAS loop for float cells; no
    update ever blocks another domain.

    Histograms are log₂-scale: bucket [i] counts observations in
    [[lb·2^i, lb·2^(i+1))] with [lb = 1e-6] and 32 buckets, spanning
    one microsecond to ~4000 s — wide enough for solve times and
    dimensionless ratios alike. Values below the lowest bound land in
    bucket 0, values beyond the highest in the last bucket. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or create the named counter (starts at 0). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
(** Find or create the named gauge (starts at 0.0). *)

val set_gauge : gauge -> float -> unit

val histogram : string -> histogram
(** Find or create the named histogram. *)

val observe : histogram -> float -> unit
(** Record one observation (negative values are clamped to 0). *)

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and observes its wall-clock duration in
    seconds, also when [f] raises. *)

(** {2 Snapshots and dumps} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_buckets : (float * int) list;
      (** (inclusive upper bound of bucket, count), non-empty buckets
          only, ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}
(** All lists sorted by name. A snapshot is cumulative for the whole
    process since start (or the last {!reset}). *)

val snapshot : unit -> snapshot

val hist_mean : hist_snapshot -> float
(** [hs_sum / hs_count]; 0 when empty. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Human-readable table: counters, gauges, then histograms with
    count/mean/max-bucket. *)

val to_json : snapshot -> string
(** The snapshot as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{"count":..,
    "sum":..,"buckets":[[ub,n],..]},..}}]. *)

val dump_file : string -> unit
(** Write [to_json (snapshot ())] to the given path. *)

val reset : unit -> unit
(** Zero every registered instrument in place — existing handles stay
    valid. Meant for tests and for bracketing measurements. *)
