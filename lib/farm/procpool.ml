module Json = Upec.Json

type failure =
  | Timeout
  | Crashed
  | Read_error
  | Protocol of string
  | Spawn_failed
  | Closed

let failure_to_string = function
  | Timeout -> "timeout"
  | Crashed -> "crashed"
  | Read_error -> "read_error"
  | Protocol msg -> "protocol: " ^ msg
  | Spawn_failed -> "spawn_failed"
  | Closed -> "closed"

let retryable = function Closed -> false | _ -> true

type reply = Reply of Json.t | Failed of failure

type proc = {
  p_pid : int;
  p_stdin : Unix.file_descr;
  p_stdout : Unix.file_descr;
}

type pending = {
  j_done : reply -> unit;
  j_deadline : float;  (** +infinity when no watchdog *)
  j_buf : Buffer.t;
}

type worker = {
  mutable w_proc : proc option;
  mutable w_job : pending option;
  mutable w_served : bool;
      (** the current process has delivered at least one reply *)
}

(* Consecutive worker deaths that never served a single reply open
   the breaker: a broken worker binary (exec failure surfaces as an
   instant EOF, not a spawn exception) must not melt into an
   infinite respawn loop. *)
let fast_fail_limit = 6
let breaker_cooldown = 30.0

type t = {
  t_argv : string array;
  t_timeout : float;
  t_workers : worker array;
  mutable t_crashes : int;
  mutable t_timeouts : int;
  mutable t_spawn_failures : int;
  mutable t_fast_fails : int;
  mutable t_breaker_until : float;
}

let create ~worker_argv ~jobs ~job_timeout =
  {
    t_argv = worker_argv;
    t_timeout = job_timeout;
    t_workers =
      Array.init (max 0 jobs) (fun _ ->
          { w_proc = None; w_job = None; w_served = false });
    t_crashes = 0;
    t_timeouts = 0;
    t_spawn_failures = 0;
    t_fast_fails = 0;
    t_breaker_until = 0.0;
  }

let jobs t = Array.length t.t_workers

let idle t =
  Array.fold_left
    (fun n w -> if w.w_job = None then n + 1 else n)
    0 t.t_workers

let inflight t =
  Array.fold_left
    (fun n w -> if w.w_job = None then n else n + 1)
    0 t.t_workers

let degraded t =
  Array.length t.t_workers = 0
  ||
  if t.t_fast_fails >= fast_fail_limit then
    if Unix.gettimeofday () < t.t_breaker_until then true
    else begin
      (* cooldown over: half-open — probe with fresh credit *)
      t.t_fast_fails <- 0;
      false
    end
  else false

let fast_fail t w =
  if not w.w_served then begin
    t.t_fast_fails <- t.t_fast_fails + 1;
    if t.t_fast_fails >= fast_fail_limit then
      t.t_breaker_until <- Unix.gettimeofday () +. breaker_cooldown
  end

(* All four pipe ends are cloexec: [create_process] dup2s [in_r] and
   [out_w] onto the child's stdin/stdout (dup2 clears the flag), and
   every other end vanishes at exec. Without this a worker inherits
   the daemon's write end of its *own* stdin pipe and never sees EOF
   when the daemon dies — an orphan that blocks forever. *)
let spawn t =
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  match Unix.create_process t.t_argv.(0) t.t_argv in_r out_w Unix.stderr with
  | pid ->
      Unix.close in_r;
      Unix.close out_w;
      Some { p_pid = pid; p_stdin = in_w; p_stdout = out_r }
  | exception Unix.Unix_error _ ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ in_r; in_w; out_r; out_w ];
      t.t_spawn_failures <- t.t_spawn_failures + 1;
      t.t_fast_fails <- t.t_fast_fails + 1;
      if t.t_fast_fails >= fast_fail_limit then
        t.t_breaker_until <- Unix.gettimeofday () +. breaker_cooldown;
      None

let reap proc =
  (try Unix.close proc.p_stdin with Unix.Unix_error _ -> ());
  (try Unix.close proc.p_stdout with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] proc.p_pid) with Unix.Unix_error _ -> ()

let fail_job w reason =
  match w.w_job with
  | None -> ()
  | Some j ->
      w.w_job <- None;
      j.j_done (Failed reason)

(* A worker that died (EOF on stdout, or killed by the watchdog) is
   reaped and its slot cleared; the next submit respawns lazily. *)
let retire w reason =
  (match w.w_proc with Some p -> reap p | None -> ());
  w.w_proc <- None;
  w.w_served <- false;
  fail_job w reason

let deadline_of t timeout =
  let limit = match timeout with Some s -> s | None -> t.t_timeout in
  if limit > 0.0 then Unix.gettimeofday () +. limit else infinity

let submit t ?timeout request on_done =
  let slot =
    Array.fold_left
      (fun acc w ->
        match acc with
        | Some _ -> acc
        | None -> if w.w_job = None then Some w else None)
      None t.t_workers
  in
  match slot with
  | None -> false
  | Some _ when degraded t -> false
  | Some w -> (
      let proc =
        match w.w_proc with
        | Some p -> Some p
        | None ->
            let p = spawn t in
            w.w_proc <- p;
            w.w_served <- false;
            p
      in
      match proc with
      | None ->
          on_done (Failed Spawn_failed);
          true
      | Some proc -> (
          let line = Json.to_string_compact request ^ "\n" in
          let arm () =
            w.w_job <-
              Some
                {
                  j_done = on_done;
                  j_deadline = deadline_of t timeout;
                  j_buf = Buffer.create 4096;
                }
          in
          let write_ok p =
            match Wire.write_all p.p_stdin line with
            | () -> true
            | exception (Unix.Unix_error _ | Wire.Timeout) -> false
          in
          if write_ok proc then begin
            arm ();
            true
          end
          else begin
            (* stdin broken: the worker died between jobs; respawn once *)
            t.t_crashes <- t.t_crashes + 1;
            fast_fail t w;
            reap proc;
            w.w_proc <- None;
            w.w_served <- false;
            match spawn t with
            | None ->
                on_done (Failed Spawn_failed);
                true
            | Some p ->
                w.w_proc <- Some p;
                if write_ok p then begin
                  arm ();
                  true
                end
                else begin
                  t.t_crashes <- t.t_crashes + 1;
                  fast_fail t w;
                  reap p;
                  w.w_proc <- None;
                  on_done (Failed Crashed);
                  true
                end
          end))

let fds t =
  Array.fold_left
    (fun acc w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some _ -> p.p_stdout :: acc
      | _ -> acc)
    [] t.t_workers

let complete t w line =
  match w.w_job with
  | None -> ()
  | Some j -> (
      w.w_job <- None;
      w.w_served <- true;
      t.t_fast_fails <- 0;
      match Json.of_string line with
      | json -> j.j_done (Reply json)
      | exception Json.Parse_error msg -> j.j_done (Failed (Protocol msg)))

let handle_readable t readable =
  Array.iter
    (fun w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some j when List.memq p.p_stdout readable -> (
          let chunk = Bytes.create 65536 in
          match Unix.read p.p_stdout chunk 0 65536 with
          | 0 ->
              t.t_crashes <- t.t_crashes + 1;
              fast_fail t w;
              retire w Crashed
          | n -> (
              Buffer.add_subbytes j.j_buf chunk 0 n;
              let s = Buffer.contents j.j_buf in
              match String.index_opt s '\n' with
              | Some i -> complete t w (String.sub s 0 i)
              | None -> ())
          | exception Unix.Unix_error _ ->
              t.t_crashes <- t.t_crashes + 1;
              fast_fail t w;
              retire w Read_error)
      | _ -> ())
    t.t_workers

let next_deadline t =
  Array.fold_left
    (fun acc w ->
      match w.w_job with
      | Some j when j.j_deadline < infinity -> (
          match acc with
          | Some d -> Some (min d j.j_deadline)
          | None -> Some j.j_deadline)
      | _ -> acc)
    None t.t_workers

let expire t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some j when j.j_deadline <= now ->
          (* only this worker dies; the daemon and its siblings keep
             serving — the process boundary is the blast radius *)
          (try Unix.kill p.p_pid Sys.sigkill with Unix.Unix_error _ -> ());
          t.t_timeouts <- t.t_timeouts + 1;
          retire w Timeout
      | _ -> ())
    t.t_workers

let crashes t = t.t_crashes
let timeouts t = t.t_timeouts
let spawn_failures t = t.t_spawn_failures

let close t =
  Array.iter
    (fun w ->
      (match w.w_proc with
      | Some p ->
          (try Unix.kill p.p_pid Sys.sigterm with Unix.Unix_error _ -> ());
          reap p
      | None -> ());
      w.w_proc <- None;
      fail_job w Closed)
    t.t_workers
