module Json = Upec.Json

type proc = {
  p_pid : int;
  p_stdin : Unix.file_descr;
  p_stdout : Unix.file_descr;
}

type pending = {
  j_done : reply -> unit;
  j_deadline : float;  (** +infinity when no watchdog *)
  j_buf : Buffer.t;
}

and reply = Reply of Json.t | Failed of string

type worker = { mutable w_proc : proc option; mutable w_job : pending option }

type t = {
  t_argv : string array;
  t_timeout : float;
  t_workers : worker array;
  mutable t_crashes : int;
  mutable t_timeouts : int;
}

let create ~worker_argv ~jobs ~job_timeout =
  {
    t_argv = worker_argv;
    t_timeout = job_timeout;
    t_workers =
      Array.init (max 1 jobs) (fun _ -> { w_proc = None; w_job = None });
    t_crashes = 0;
    t_timeouts = 0;
  }

let jobs t = Array.length t.t_workers

let idle t =
  Array.fold_left
    (fun n w -> if w.w_job = None then n + 1 else n)
    0 t.t_workers

let spawn t =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process t.t_argv.(0) t.t_argv in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  Unix.set_close_on_exec in_w;
  Unix.set_close_on_exec out_r;
  { p_pid = pid; p_stdin = in_w; p_stdout = out_r }

let reap proc =
  (try Unix.close proc.p_stdin with Unix.Unix_error _ -> ());
  (try Unix.close proc.p_stdout with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] proc.p_pid) with Unix.Unix_error _ -> ()

let fail_job w reason =
  match w.w_job with
  | None -> ()
  | Some j ->
      w.w_job <- None;
      j.j_done (Failed reason)

(* A worker that died (EOF on stdout, or killed by the watchdog) is
   reaped and its slot cleared; the next submit respawns lazily. *)
let retire w reason =
  (match w.w_proc with Some p -> reap p | None -> ());
  w.w_proc <- None;
  fail_job w reason

let submit t request on_done =
  let slot =
    Array.fold_left
      (fun acc w -> match acc with Some _ -> acc | None -> if w.w_job = None then Some w else None)
      None t.t_workers
  in
  match slot with
  | None -> false
  | Some w ->
      let proc =
        match w.w_proc with
        | Some p -> p
        | None ->
            let p = spawn t in
            w.w_proc <- Some p;
            p
      in
      let line = Json.to_string_compact request ^ "\n" in
      let ok =
        match
          Unix.write_substring proc.p_stdin line 0 (String.length line)
        with
        | n -> n = String.length line
        | exception Unix.Unix_error _ -> false
      in
      if not ok then begin
        (* stdin broken: the worker died between jobs; respawn once *)
        t.t_crashes <- t.t_crashes + 1;
        reap proc;
        let p = spawn t in
        w.w_proc <- Some p;
        match
          Unix.write_substring p.p_stdin line 0 (String.length line)
        with
        | _ ->
            w.w_job <-
              Some
                {
                  j_done = on_done;
                  j_deadline =
                    (if t.t_timeout > 0.0 then
                       Unix.gettimeofday () +. t.t_timeout
                     else infinity);
                  j_buf = Buffer.create 4096;
                };
            true
        | exception Unix.Unix_error _ ->
            w.w_proc <- None;
            reap p;
            on_done (Failed "worker spawn failed");
            true
      end
      else begin
        w.w_job <-
          Some
            {
              j_done = on_done;
              j_deadline =
                (if t.t_timeout > 0.0 then Unix.gettimeofday () +. t.t_timeout
                 else infinity);
              j_buf = Buffer.create 4096;
            };
        true
      end

let fds t =
  Array.fold_left
    (fun acc w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some _ -> p.p_stdout :: acc
      | _ -> acc)
    [] t.t_workers

let complete w line =
  match w.w_job with
  | None -> ()
  | Some j -> (
      w.w_job <- None;
      match Json.of_string line with
      | json -> j.j_done (Reply json)
      | exception Json.Parse_error msg ->
          j.j_done (Failed ("worker protocol error: " ^ msg)))

let handle_readable t readable =
  Array.iter
    (fun w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some j when List.memq p.p_stdout readable -> (
          let chunk = Bytes.create 65536 in
          match Unix.read p.p_stdout chunk 0 65536 with
          | 0 ->
              t.t_crashes <- t.t_crashes + 1;
              retire w "worker crashed"
          | n -> (
              Buffer.add_subbytes j.j_buf chunk 0 n;
              let s = Buffer.contents j.j_buf in
              match String.index_opt s '\n' with
              | Some i -> complete w (String.sub s 0 i)
              | None -> ())
          | exception Unix.Unix_error _ ->
              t.t_crashes <- t.t_crashes + 1;
              retire w "worker read error")
      | _ -> ())
    t.t_workers

let next_deadline t =
  Array.fold_left
    (fun acc w ->
      match w.w_job with
      | Some j when j.j_deadline < infinity -> (
          match acc with
          | Some d -> Some (min d j.j_deadline)
          | None -> Some j.j_deadline)
      | _ -> acc)
    None t.t_workers

let expire t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun w ->
      match (w.w_proc, w.w_job) with
      | Some p, Some j when j.j_deadline <= now ->
          (* only this worker dies; the daemon and its siblings keep
             serving — the process boundary is the blast radius *)
          (try Unix.kill p.p_pid Sys.sigkill with Unix.Unix_error _ -> ());
          t.t_timeouts <- t.t_timeouts + 1;
          retire w "timeout"
      | _ -> ())
    t.t_workers

let crashes t = t.t_crashes
let timeouts t = t.t_timeouts

let close t =
  Array.iter
    (fun w ->
      (match w.w_proc with
      | Some p ->
          (try Unix.kill p.p_pid Sys.sigterm with Unix.Unix_error _ -> ());
          reap p
      | None -> ());
      w.w_proc <- None;
      fail_job w "pool closed")
    t.t_workers
