(** A farm job: one verification request.

    The wire format is the {!Upec.Cli} JSON codec wrapped with an
    optional client-chosen [id] (echoed in replies so batch clients
    can correlate): [{"id": "...", "design": {...}, "options": {...}}].
    Every member is optional — [{}] is the default check.

    Alternatively a job may name a scenario instead of a design:
    [{"scenario": "busted_timer_d4"}] (catalog lookup) or
    [{"scenario": {"family": "busted_timer", ...}}] (inline
    {!Scenarios.Scenario} spec). The scenario supplies the design, the
    deciding procedure (unless [options.alg] overrides it) and — when
    [id] is absent — the correlation id. ["design"] and ["scenario"]
    are mutually exclusive. *)

type t = {
  jb_id : string;  (** client correlation id; "" when absent *)
  jb_design : Upec.Cli.design;
  jb_alg : int;  (** 1 = Alg. 1 fixed point, 2 = unrolled + induction *)
  jb_options : Upec.Options.t;
}

val of_json : Upec.Json.t -> t
(** [Upec.Json.Parse_error] on type-mismatched members, an unknown
    scenario name, or a job carrying both ["design"] and
    ["scenario"]. *)

val to_json : t -> Upec.Json.t
(** Always the desugared form ([id]/[design]/[options]) — scenario
    jobs serialise as the design they resolved to, so replies and job
    echoes are spec-independent. *)

val options_key : t -> string
(** Hex digest of everything besides the design that can change the
    report: the algorithm and the full options wire encoding. Keys the
    report-level cache together with {!Upec.Fingerprint.design_spec}. *)
