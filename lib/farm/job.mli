(** A farm job: one verification request.

    The wire format is the {!Upec.Cli} JSON codec wrapped with an
    optional client-chosen [id] (echoed in replies so batch clients
    can correlate): [{"id": "...", "design": {...}, "options": {...}}].
    Every member is optional — [{}] is the default check. *)

type t = {
  jb_id : string;  (** client correlation id; "" when absent *)
  jb_design : Upec.Cli.design;
  jb_alg : int;  (** 1 = Alg. 1 fixed point, 2 = unrolled + induction *)
  jb_options : Upec.Options.t;
}

val of_json : Upec.Json.t -> t
(** [Upec.Json.Parse_error] on type-mismatched members. *)

val to_json : t -> Upec.Json.t

val options_key : t -> string
(** Hex digest of everything besides the design that can change the
    report: the algorithm and the full options wire encoding. Keys the
    report-level cache together with {!Upec.Fingerprint.design}. *)
