(** The farm daemon: job queue, worker dispatch, cache ownership.

    One [select]-driven event loop multiplexes the listening Unix
    domain socket, every client connection and every busy worker's
    pipe. The daemon is the cache's single writer: worker outcomes
    (new lemmas + report) are merged and published here; workers only
    ever read snapshots.

    Request ops (one JSON object per line):
    - [{"op":"submit","job":{...}}] — reply arrives when the job
      completes; unchanged resubmissions are answered from the report
      cache without dispatching a worker at all.
    - [{"op":"status"}] — queue depth, worker/cache/failure counts.
    - [{"op":"gc","max_lemmas":N,"max_reports":N}] — LRU eviction.
    - [{"op":"ping"}], [{"op":"shutdown"}].

    Replies: [{"ok":true,...}] or [{"ok":false,"error":"..."}], with
    the job's [id] echoed on submit replies. *)

type t

val create :
  ?log:out_channel ->
  cache_dir:string ->
  worker_argv:string array ->
  workers:int ->
  job_timeout:float ->
  unit ->
  t
(** [log] receives every request and reply line (the JSONL protocol
    log). [worker_argv] launches one worker process (the farm
    binary's [worker] subcommand). *)

val store : t -> Store.t

val serve : t -> socket:string -> should_stop:(unit -> bool) -> unit
(** Bind, listen and serve until [should_stop] or a [shutdown]
    request. The socket file is unlinked on the way out. *)

val run_batch : t -> jobs:Upec.Json.t list -> Upec.Json.t list
(** One-shot mode: feed the job list through the same queue/pool
    machinery (no socket) and return the submit replies in
    submission order. *)

val close : t -> unit
(** Kill the workers and publish the index. *)
