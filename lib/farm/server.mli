(** The farm daemon: job queue, leases, worker dispatch, cache
    ownership, graceful degradation.

    One [select]-driven event loop multiplexes every listening socket
    (Unix domain and/or TCP), every client connection and every busy
    worker's pipe. The daemon is the cache's single writer: worker
    outcomes (new lemmas + report) are merged and published here;
    workers only ever read snapshots.

    {b Leases.} Every dispatched job is held as a lease (job, client
    reply, attempt count, per-attempt deadline). A worker death —
    crash, watchdog SIGKILL, torn reply — returns the lease to the
    queue up to [job_retries] times with the per-attempt timeout
    escalated by [retry_escalation] each round; a job that keeps
    killing workers is reported as {e poisoned}
    ([{"ok":false,"poisoned":true,...}]), never silently dropped. A
    retried job re-runs from the same cache snapshot discipline as a
    clean one, so a verdict that arrives after a retry is
    bit-identical to an uninjected run — retries can duplicate work,
    never manufacture answers.

    {b Degradation.} The submit queue is bounded ([max_queue]): past
    the bound, submissions are shed immediately with
    [{"ok":false,"overloaded":true,...}]. When no worker can serve
    (zero-worker pool, or the worker binary keeps dying — the pool's
    circuit breaker), cache hits are still answered inline and misses
    get [{"ok":false,"degraded":true,...}] instead of queueing
    forever. Damaged store files are quarantined ({!Store}) and the
    key re-solves.

    {b Transport.} Unix-socket clients speak raw LDJSON as before.
    TCP clients ({!Wire.Tcp} listeners) speak length-framed LDJSON
    and must answer an HMAC challenge within the handshake deadline
    when an [auth_token] is configured; unauthenticated connections
    are refused with an error reply. Replies are written under a
    deadline — a client that stops reading loses its connection, not
    the daemon.

    Request ops (one JSON object per line/frame):
    - [{"op":"submit","job":{...}}] — reply arrives when the job
      completes; unchanged resubmissions are answered from the report
      cache without dispatching a worker at all.
    - [{"op":"status"}] — queue/lease depth, worker/cache/failure and
      degradation counters.
    - [{"op":"gc","max_lemmas":N,"max_reports":N}] — LRU eviction.
    - [{"op":"ping"}], [{"op":"shutdown"}]. *)

type t

val create :
  ?log:out_channel ->
  ?job_retries:int ->
  ?retry_escalation:float ->
  ?max_queue:int ->
  ?auth_token:string ->
  cache_dir:string ->
  worker_argv:string array ->
  workers:int ->
  job_timeout:float ->
  unit ->
  t
(** [log] receives every request and reply line (the JSONL protocol
    log). [worker_argv] launches one worker process (the farm
    binary's [worker] subcommand). [job_retries] (default 1) bounds
    how many times a worker-killing job is requeued before it is
    poisoned; [retry_escalation] (default 2.0) multiplies the
    per-attempt timeout each retry. [max_queue] (default 256) bounds
    the submit queue. [auth_token] arms the TCP HMAC handshake. *)

val store : t -> Store.t

val serve : t -> listeners:Wire.addr list -> should_stop:(unit -> bool) -> unit
(** Bind every listener, serve until [should_stop] or a [shutdown]
    request. Unix socket files are unlinked on the way out. *)

val run_batch : t -> jobs:Upec.Json.t list -> Upec.Json.t list
(** One-shot mode: feed the job list through the same
    queue/lease/pool machinery (no socket) and return the submit
    replies in submission order. *)

val close : t -> unit
(** Kill the workers and publish the index. *)
