let parse spec =
  List.filter_map
    (fun tok ->
      let tok = String.trim tok in
      if tok = "" then None
      else
        match String.index_opt tok ':' with
        | None -> Some (tok, 1)
        | Some i -> (
            let name = String.sub tok 0 i in
            match
              int_of_string_opt
                (String.sub tok (i + 1) (String.length tok - i - 1))
            with
            | Some n -> Some (name, n)
            | None -> Some (name, 1)))
    (String.split_on_char ',' spec)

(* In-process budgets: each process may fire [count] times. *)
let local : (string, int ref) Hashtbl.t = Hashtbl.create 8

(* The environment is re-read on every call (tests flip directives at
   runtime; the injection points are nowhere near a hot path) and the
   in-process budgets reset when the spec changes. *)
let cached = ref ("", [])

let directives () =
  let spec =
    match Sys.getenv_opt "UPEC_FARM_CHAOS" with None -> "" | Some s -> s
  in
  let prev_spec, prev = !cached in
  if prev_spec = spec then prev
  else begin
    let d = if spec = "" then [] else parse spec in
    Hashtbl.reset local;
    cached := (spec, d);
    d
  end

let budget_dir () =
  match Sys.getenv_opt "UPEC_FARM_CHAOS_DIR" with
  | None | Some "" -> None
  | Some d -> Some d
let active () = directives () <> []
let armed name = List.mem_assoc name (directives ())

let fire_local name count =
  let r =
    match Hashtbl.find_opt local name with
    | Some r -> r
    | None ->
        let r = ref count in
        Hashtbl.add local name r;
        r
  in
  if !r > 0 then begin
    decr r;
    true
  end
  else false

(* Shared budgets: one lock-serialised decimal counter file per
   directive, so the allowance is global across the daemon, its
   workers and their respawns. An absent file is seeded from the
   directive count under the same lock (first toucher wins). *)
let fire_shared ~dir name count =
  let path = Filename.concat dir name in
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error _ -> false
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.lockf fd Unix.F_LOCK 0
           with Unix.Unix_error _ -> ());
          let remaining =
            let b = Bytes.create 32 in
            match Unix.read fd b 0 32 with
            | 0 -> count
            | n -> (
                match int_of_string_opt (String.trim (Bytes.sub_string b 0 n)) with
                | Some r -> r
                | None -> 0)
            | exception Unix.Unix_error _ -> 0
          in
          if remaining > 0 then begin
            let s = string_of_int (remaining - 1) in
            (try
               ignore (Unix.lseek fd 0 Unix.SEEK_SET);
               Unix.ftruncate fd 0;
               ignore (Unix.write_substring fd s 0 (String.length s))
             with Unix.Unix_error _ -> ());
            true
          end
          else false)

let fire name =
  match List.assoc_opt name (directives ()) with
  | None -> false
  | Some count -> (
      match budget_dir () with
      | Some dir -> fire_shared ~dir name count
      | None -> fire_local name count)

let arm_dir ~dir specs =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (name, count) ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc (string_of_int count);
      close_out oc)
    specs;
  let spec =
    String.concat ","
      (List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c) specs)
  in
  [ ("UPEC_FARM_CHAOS", spec); ("UPEC_FARM_CHAOS_DIR", dir) ]
