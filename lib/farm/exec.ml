open Rtl
module Json = Upec.Json

type outcome = {
  oc_id : string;
  oc_report : Json.t;
  oc_report_key : string;
  oc_report_hit : bool;
  oc_lemma_hits : int;
  oc_lemma_misses : int;
  oc_invalidated : int;
  oc_new_lemmas : (string * string * bool) list;
  oc_seconds : float;
}

let m_lemma_hits = Obs.Metrics.counter "farm.lemma_hits"
let m_lemma_misses = Obs.Metrics.counter "farm.lemma_misses"
let m_invalidations = Obs.Metrics.counter "farm.invalidations"

let report_key_of ~fingerprint job =
  Digest.to_hex (Digest.string (fingerprint ^ ":" ^ Job.options_key job))

(* Spec-derived: the canonical design record digests without building
   the netlist, so a report-level probe is O(1) — and a job that
   arrived as deprecated CLI flags keys identically to the same design
   spelled as a Scenario.spec. *)
let report_key job =
  report_key_of
    ~fingerprint:(Upec.Fingerprint.design_spec job.Job.jb_design)
    job

(* Re-mark the [cache] block of a cached artefact as a report hit,
   keeping everything else byte-identical. *)
let mark_report_hit json =
  let patch_cache = function
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "report_hit" then (k, Json.Bool true) else (k, v))
             kvs)
    | v -> v
  in
  match json with
  | Json.Obj kvs ->
      Json.Obj
        (List.map
           (fun (k, v) -> if k = "cache" then (k, patch_cache v) else (k, v))
           kvs)
  | v -> v

let run ~store job =
  let t0 = Unix.gettimeofday () in
  let rkey = report_key job in
  match Store.report store ~key:rkey with
  | Some cached ->
      {
        oc_id = job.Job.jb_id;
        oc_report = mark_report_hit cached;
        oc_report_key = rkey;
        oc_report_hit = true;
        oc_lemma_hits = 0;
        oc_lemma_misses = 0;
        oc_invalidated = 0;
        oc_new_lemmas = [];
        oc_seconds = Unix.gettimeofday () -. t0;
      }
  | None ->
      let spec = Upec.Cli.spec_of job.Job.jb_design in
      let fp = Upec.Fingerprint.make spec in
      let fingerprint = Upec.Fingerprint.design fp in
      let hits = ref 0 and misses = ref 0 and invalidated = ref 0 in
      let cached_svars = ref [] in
      let new_lemmas = ref [] in
      (* Fresh results of this very run also answer repeat lookups
         (pers svars are re-checked every iteration; when the removed
         svars are outside the check's cone the key recurs). Those
         replays are intra-run memoisation, not farm-cache service, so
         they stay out of the hit/miss/invalidation accounting and of
         [cached_svars] — a cold run reports zero hits. *)
      let pending = Hashtbl.create 64 in
      let svar_cache =
        {
          Upec.Alg1.sc_lookup =
            (fun sv ~s ->
              let name = Structural.svar_name sv in
              let key = Upec.Fingerprint.check_key fp sv ~s in
              match Hashtbl.find_opt pending (name, key) with
              | Some _ as replay -> replay
              | None ->
                  let answer = Store.lemma store ~svar:name ~key in
                  (match answer with
                  | Some _ ->
                      incr hits;
                      Obs.Metrics.incr m_lemma_hits;
                      cached_svars := name :: !cached_svars
                  | None ->
                      incr misses;
                      Obs.Metrics.incr m_lemma_misses;
                      if Store.has_svar store ~svar:name then begin
                        incr invalidated;
                        Obs.Metrics.incr m_invalidations
                      end);
                  answer);
          sc_store =
            (fun sv ~s ~holds ->
              let name = Structural.svar_name sv in
              let key = Upec.Fingerprint.check_key fp sv ~s in
              Hashtbl.replace pending (name, key) holds;
              new_lemmas := (name, key, holds) :: !new_lemmas);
        }
      in
      let options =
        {
          job.Job.jb_options with
          Upec.Options.jobs = Upec.Cli.resolve_jobs job.Job.jb_options.Upec.Options.jobs;
        }
      in
      let report =
        if job.Job.jb_alg = 2 then
          Upec.Alg2.conclude_with ~svar_cache options spec
        else Upec.Alg1.run_with ~svar_cache options spec
      in
      let report =
        {
          report with
          Upec.Report.cache =
            Some
              {
                Upec.Report.ca_fingerprint = fingerprint;
                ca_report_hit = false;
                ca_lemma_hits = !hits;
                ca_lemma_misses = !misses;
                ca_invalidated = !invalidated;
                ca_cached_svars = List.sort_uniq compare !cached_svars;
              };
        }
      in
      {
        oc_id = job.Job.jb_id;
        oc_report = Upec.Report.to_json report;
        oc_report_key = rkey;
        oc_report_hit = false;
        oc_lemma_hits = !hits;
        oc_lemma_misses = !misses;
        oc_invalidated = !invalidated;
        oc_new_lemmas = List.rev !new_lemmas;
        oc_seconds = Unix.gettimeofday () -. t0;
      }

let outcome_to_json o =
  Json.Obj
    [
      ("id", Json.Str o.oc_id);
      ("report_key", Json.Str o.oc_report_key);
      ("report_hit", Json.Bool o.oc_report_hit);
      ("lemma_hits", Json.Int o.oc_lemma_hits);
      ("lemma_misses", Json.Int o.oc_lemma_misses);
      ("invalidated", Json.Int o.oc_invalidated);
      ( "new_lemmas",
        Json.List
          (List.map
             (fun (svar, key, holds) ->
               Json.List [ Json.Str svar; Json.Str key; Json.Bool holds ])
             o.oc_new_lemmas) );
      ("seconds", Json.Float o.oc_seconds);
      ("report", o.oc_report);
    ]

let req k conv j =
  match conv (Json.member k j) with
  | Some v -> v
  | None -> raise (Json.Parse_error ("outcome: bad member " ^ k))

let outcome_of_json j =
  {
    oc_id = req "id" Json.to_str j;
    oc_report = Json.member "report" j;
    oc_report_key = req "report_key" Json.to_str j;
    oc_report_hit = req "report_hit" Json.to_bool j;
    oc_lemma_hits = req "lemma_hits" Json.to_int j;
    oc_lemma_misses = req "lemma_misses" Json.to_int j;
    oc_invalidated = req "invalidated" Json.to_int j;
    oc_new_lemmas =
      (match Json.to_list (Json.member "new_lemmas" j) with
      | None -> raise (Json.Parse_error "outcome: bad member new_lemmas")
      | Some l ->
          List.map
            (function
              | Json.List [ Json.Str svar; Json.Str key; Json.Bool holds ] ->
                  (svar, key, holds)
              | _ -> raise (Json.Parse_error "outcome: bad lemma entry"))
            l);
    oc_seconds = req "seconds" Json.to_float j;
  }
