module Json = Upec.Json

let m_jobs = Obs.Metrics.counter "farm.jobs"
let m_report_hits = Obs.Metrics.counter "farm.report_hits"
let m_report_misses = Obs.Metrics.counter "farm.report_misses"
let m_lemma_hits = Obs.Metrics.counter "farm.lemma_hits"
let m_lemma_misses = Obs.Metrics.counter "farm.lemma_misses"
let m_invalidations = Obs.Metrics.counter "farm.invalidations"
let m_worker_failures = Obs.Metrics.counter "farm.worker_failures"
let g_queue_depth = Obs.Metrics.gauge "farm.queue_depth"
let h_job_seconds = Obs.Metrics.histogram "farm.job_seconds"

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  mutable c_alive : bool;
}

type t = {
  t_store : Store.t;
  t_pool : Procpool.t;
  t_log : out_channel option;
  t_queue : (Job.t * (Json.t -> unit)) Queue.t;
  mutable t_shutdown : bool;
}

let create ?log ~cache_dir ~worker_argv ~workers ~job_timeout () =
  {
    t_store = Store.load ~dir:cache_dir;
    t_pool = Procpool.create ~worker_argv ~jobs:workers ~job_timeout;
    t_log = log;
    t_queue = Queue.create ();
    t_shutdown = false;
  }

let store t = t.t_store

let log_line t dir json =
  match t.t_log with
  | None -> ()
  | Some oc ->
      output_string oc
        (Json.to_string_compact
           (Json.Obj [ ("dir", Json.Str dir); ("msg", json) ]));
      output_char oc '\n';
      flush oc

let error_reply ?(id = "") msg =
  Json.Obj
    [ ("ok", Json.Bool false); ("id", Json.Str id); ("error", Json.Str msg) ]

let submit_reply outcome =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("id", Json.Str outcome.Exec.oc_id);
      ("report_key", Json.Str outcome.Exec.oc_report_key);
      ("cached", Json.Bool outcome.Exec.oc_report_hit);
      ("lemma_hits", Json.Int outcome.Exec.oc_lemma_hits);
      ("lemma_misses", Json.Int outcome.Exec.oc_lemma_misses);
      ("invalidated", Json.Int outcome.Exec.oc_invalidated);
      ("seconds", Json.Float outcome.Exec.oc_seconds);
      ("report", outcome.Exec.oc_report);
    ]

let account outcome =
  Obs.Metrics.incr m_jobs;
  if outcome.Exec.oc_report_hit then Obs.Metrics.incr m_report_hits
  else Obs.Metrics.incr m_report_misses;
  Obs.Metrics.add m_lemma_hits outcome.Exec.oc_lemma_hits;
  Obs.Metrics.add m_lemma_misses outcome.Exec.oc_lemma_misses;
  Obs.Metrics.add m_invalidations outcome.Exec.oc_invalidated;
  Obs.Metrics.observe h_job_seconds outcome.Exec.oc_seconds

(* Merge a worker's outcome into the cache and publish. The daemon is
   the only writer, so this is the only place the store changes. *)
let merge t outcome =
  List.iter
    (fun (svar, key, holds) -> Store.add_lemma t.t_store ~svar ~key ~holds)
    outcome.Exec.oc_new_lemmas;
  if not outcome.Exec.oc_report_hit then
    Store.add_report t.t_store ~key:outcome.Exec.oc_report_key
      outcome.Exec.oc_report;
  Store.save t.t_store

let dispatch t =
  let rec go () =
    if (not (Queue.is_empty t.t_queue)) && Procpool.idle t.t_pool > 0 then begin
      let job, reply = Queue.pop t.t_queue in
      let request = Json.Obj [ ("job", Job.to_json job) ] in
      let accepted =
        Procpool.submit t.t_pool request (fun r ->
            (match r with
            | Procpool.Reply json -> (
                match Json.to_str (Json.member "error" json) with
                | Some msg ->
                    Obs.Metrics.incr m_worker_failures;
                    reply (error_reply ~id:job.Job.jb_id msg)
                | None -> (
                    match Exec.outcome_of_json json with
                    | outcome ->
                        Obs.Trace.with_span "farm.job"
                          ~attrs:
                            [
                              ("id", Obs.Trace.Str job.Job.jb_id);
                              ( "report_key",
                                Obs.Trace.Str outcome.Exec.oc_report_key );
                            ]
                          (fun () -> merge t outcome);
                        account outcome;
                        reply (submit_reply outcome)
                    | exception Json.Parse_error msg ->
                        Obs.Metrics.incr m_worker_failures;
                        reply
                          (error_reply ~id:job.Job.jb_id
                             ("worker protocol error: " ^ msg))))
            | Procpool.Failed reason ->
                Obs.Metrics.incr m_worker_failures;
                reply (error_reply ~id:job.Job.jb_id reason));
            Obs.Metrics.set_gauge g_queue_depth
              (float_of_int (Queue.length t.t_queue)))
      in
      if not accepted then
        (* raced with a slot going busy; retry on the next loop turn *)
        Queue.push (job, reply) t.t_queue
      else go ()
    end
  in
  go ();
  Obs.Metrics.set_gauge g_queue_depth (float_of_int (Queue.length t.t_queue))

let handle_submit t j reply =
  match Job.of_json (Json.member "job" j) with
  | exception Json.Parse_error msg -> reply (error_reply ("bad job: " ^ msg))
  | job -> (
      (* report-level fast path: an unchanged job never reaches a
         worker — the daemon answers from the cache in-line *)
      match
        let rkey = Exec.report_key job in
        (rkey, Store.report t.t_store ~key:rkey)
      with
      | rkey, Some cached ->
          let outcome =
            {
              Exec.oc_id = job.Job.jb_id;
              oc_report = Exec.mark_report_hit cached;
              oc_report_key = rkey;
              oc_report_hit = true;
              oc_lemma_hits = 0;
              oc_lemma_misses = 0;
              oc_invalidated = 0;
              oc_new_lemmas = [];
              oc_seconds = 0.0;
            }
          in
          account outcome;
          reply (submit_reply outcome)
      | _, None ->
          Queue.push (job, reply) t.t_queue;
          dispatch t
      | exception e ->
          reply
            (error_reply ~id:job.Job.jb_id
               ("job rejected: " ^ Printexc.to_string e)))

let status_json t =
  let lemmas, reports = Store.counts t.t_store in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("queue_depth", Json.Int (Queue.length t.t_queue));
      ("workers", Json.Int (Procpool.jobs t.t_pool));
      ("idle_workers", Json.Int (Procpool.idle t.t_pool));
      ("cache_lemmas", Json.Int lemmas);
      ("cache_reports", Json.Int reports);
      ("worker_crashes", Json.Int (Procpool.crashes t.t_pool));
      ("worker_timeouts", Json.Int (Procpool.timeouts t.t_pool));
      ("jobs_served", Json.Int (Obs.Metrics.counter_value m_jobs));
      ("report_hits", Json.Int (Obs.Metrics.counter_value m_report_hits));
      ("report_misses", Json.Int (Obs.Metrics.counter_value m_report_misses));
    ]

let handle_request t j reply =
  log_line t "in" j;
  let reply out =
    log_line t "out" out;
    reply out
  in
  match Json.to_str (Json.member "op" j) with
  | Some "submit" -> handle_submit t j reply
  | Some "status" -> reply (status_json t)
  | Some "ping" -> reply (Json.Obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ])
  | Some "gc" ->
      let cap k d =
        match Json.to_int (Json.member k j) with Some n -> n | None -> d
      in
      let evl, evr =
        Store.gc t.t_store ~max_lemmas:(cap "max_lemmas" 100_000)
          ~max_reports:(cap "max_reports" 1_000)
      in
      Store.save t.t_store;
      reply
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("evicted_lemmas", Json.Int evl);
             ("evicted_reports", Json.Int evr);
           ])
  | Some "shutdown" ->
      t.t_shutdown <- true;
      reply (Json.Obj [ ("ok", Json.Bool true); ("bye", Json.Bool true) ])
  | Some op -> reply (error_reply ("unknown op: " ^ op))
  | None -> reply (error_reply "missing op")

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let conn_reply conn out =
  if conn.c_alive then
    match write_all conn.c_fd (Json.to_string_compact out ^ "\n") with
    | () -> ()
    | exception Unix.Unix_error _ -> conn.c_alive <- false

(* Extract complete lines from a connection buffer, leaving the
   partial tail in place. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)

let handle_conn_data t conn =
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Json.of_string line with
        | j -> handle_request t j (conn_reply conn)
        | exception Json.Parse_error msg ->
            conn_reply conn (error_reply ("bad request: " ^ msg)))
    (drain_lines conn.c_buf)

let select_step t ~extra_read ~on_extra =
  let pool_fds = Procpool.fds t.t_pool in
  let fds = extra_read @ pool_fds in
  let timeout =
    match Procpool.next_deadline t.t_pool with
    | Some d -> Float.max 0.01 (Float.min 1.0 (d -. Unix.gettimeofday ()))
    | None -> 1.0
  in
  (match Unix.select fds [] [] timeout with
  | readable, _, _ ->
      Procpool.handle_readable t.t_pool
        (List.filter (fun fd -> List.memq fd pool_fds) readable);
      List.iter
        (fun fd -> if List.memq fd extra_read then on_extra fd)
        readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  Procpool.expire t.t_pool;
  dispatch t

let serve t ~socket ~should_stop =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        !conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      while not (t.t_shutdown || should_stop ()) do
        let extra_read =
          listen_fd :: List.map (fun c -> c.c_fd) !conns
        in
        select_step t ~extra_read ~on_extra:(fun fd ->
            if fd == listen_fd then begin
              let cfd, _ = Unix.accept listen_fd in
              conns :=
                { c_fd = cfd; c_buf = Buffer.create 4096; c_alive = true }
                :: !conns
            end
            else
              match List.find_opt (fun c -> c.c_fd == fd) !conns with
              | None -> ()
              | Some conn -> (
                  match Unix.read conn.c_fd chunk 0 65536 with
                  | 0 -> conn.c_alive <- false
                  | n ->
                      Buffer.add_subbytes conn.c_buf chunk 0 n;
                      handle_conn_data t conn
                  | exception Unix.Unix_error _ -> conn.c_alive <- false));
        (* sweep dead connections *)
        let dead, alive = List.partition (fun c -> not c.c_alive) !conns in
        List.iter
          (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
          dead;
        conns := alive
      done)

let run_batch t ~jobs =
  let n = List.length jobs in
  let results = Array.make n None in
  let done_count = ref 0 in
  List.iteri
    (fun i j ->
      handle_request t
        (Json.Obj [ ("op", Json.Str "submit"); ("job", j) ])
        (fun out ->
          results.(i) <- Some out;
          incr done_count))
    jobs;
  while !done_count < n do
    select_step t ~extra_read:[] ~on_extra:(fun _ -> ())
  done;
  Array.to_list
    (Array.map (function Some r -> r | None -> error_reply "lost") results)

let close t =
  Procpool.close t.t_pool;
  Store.save t.t_store
