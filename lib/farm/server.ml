module Json = Upec.Json

let m_jobs = Obs.Metrics.counter "farm.jobs"
let m_report_hits = Obs.Metrics.counter "farm.report_hits"
let m_report_misses = Obs.Metrics.counter "farm.report_misses"
let m_lemma_hits = Obs.Metrics.counter "farm.lemma_hits"
let m_lemma_misses = Obs.Metrics.counter "farm.lemma_misses"
let m_invalidations = Obs.Metrics.counter "farm.invalidations"
let m_worker_failures = Obs.Metrics.counter "farm.worker_failures"
let m_worker_timeouts = Obs.Metrics.counter "farm.worker_timeouts"
let m_worker_crashes = Obs.Metrics.counter "farm.worker_crashes"
let m_worker_protocol = Obs.Metrics.counter "farm.worker_protocol_errors"
let m_job_retries = Obs.Metrics.counter "farm.job_retries"
let m_jobs_poisoned = Obs.Metrics.counter "farm.jobs_poisoned"
let m_jobs_shed = Obs.Metrics.counter "farm.jobs_shed"
let m_jobs_degraded = Obs.Metrics.counter "farm.jobs_degraded"
let m_auth_failures = Obs.Metrics.counter "farm.auth_failures"
let g_queue_depth = Obs.Metrics.gauge "farm.queue_depth"
let g_lease_age = Obs.Metrics.gauge "farm.lease_age_seconds"
let h_job_seconds = Obs.Metrics.histogram "farm.job_seconds"

(* How long a TCP client gets to answer the HMAC challenge, and how
   long a reply write may stall before the connection is retired. *)
let handshake_timeout = 10.0
let write_timeout = 30.0

type conn_mode = Raw | Framed

type auth_state =
  | Authed  (** raw conns, and TCP without a configured token *)
  | Awaiting of string  (** TCP challenge nonce sent, response pending *)

type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t;
  c_mode : conn_mode;
  mutable c_auth : auth_state;
  mutable c_expires : float;  (** handshake deadline; [infinity] after *)
  mutable c_alive : bool;
}

(* An accepted job the daemon owes an answer for: queued, then leased
   to a worker, requeued on worker death, and finally answered —
   exactly once — with a verdict, an error, or a poisoned notice. *)
type lease = {
  ls_job : Job.t;
  ls_reply : Json.t -> unit;
  mutable ls_attempts : int;
  mutable ls_started : float;  (** current attempt's dispatch time *)
}

type t = {
  t_store : Store.t;
  t_pool : Procpool.t;
  t_log : out_channel option;
  t_queue : lease Queue.t;
  t_inflight : lease list ref;
  t_job_timeout : float;
  t_job_retries : int;
  t_retry_escalation : float;
  t_max_queue : int;
  t_auth_token : string option;
  mutable t_shutdown : bool;
}

let create ?log ?(job_retries = 1) ?(retry_escalation = 2.0) ?(max_queue = 256)
    ?auth_token ~cache_dir ~worker_argv ~workers ~job_timeout () =
  {
    t_store = Store.load ~writer:true ~dir:cache_dir ();
    t_pool = Procpool.create ~worker_argv ~jobs:workers ~job_timeout;
    t_log = log;
    t_queue = Queue.create ();
    t_inflight = ref [];
    t_job_timeout = job_timeout;
    t_job_retries = max 0 job_retries;
    t_retry_escalation = Float.max 1.0 retry_escalation;
    t_max_queue = max 1 max_queue;
    t_auth_token = auth_token;
    t_shutdown = false;
  }

let store t = t.t_store

let log_line t dir json =
  match t.t_log with
  | None -> ()
  | Some oc ->
      output_string oc
        (Json.to_string_compact
           (Json.Obj [ ("dir", Json.Str dir); ("msg", json) ]));
      output_char oc '\n';
      flush oc

let log_event t kind fields =
  log_line t "event" (Json.Obj (("event", Json.Str kind) :: fields))

let error_reply ?(id = "") msg =
  Json.Obj
    [ ("ok", Json.Bool false); ("id", Json.Str id); ("error", Json.Str msg) ]

(* Degradation refusals carry a machine-readable flag next to the
   error string: "poisoned", "overloaded" or "degraded". *)
let refusal_reply ~kind ?(id = "") ?(fields = []) msg =
  Json.Obj
    ([
       ("ok", Json.Bool false);
       ("id", Json.Str id);
       (kind, Json.Bool true);
       ("error", Json.Str msg);
     ]
    @ fields)

let submit_reply outcome =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("id", Json.Str outcome.Exec.oc_id);
      ("report_key", Json.Str outcome.Exec.oc_report_key);
      ("cached", Json.Bool outcome.Exec.oc_report_hit);
      ("lemma_hits", Json.Int outcome.Exec.oc_lemma_hits);
      ("lemma_misses", Json.Int outcome.Exec.oc_lemma_misses);
      ("invalidated", Json.Int outcome.Exec.oc_invalidated);
      ("seconds", Json.Float outcome.Exec.oc_seconds);
      ("report", outcome.Exec.oc_report);
    ]

let account outcome =
  Obs.Metrics.incr m_jobs;
  if outcome.Exec.oc_report_hit then Obs.Metrics.incr m_report_hits
  else Obs.Metrics.incr m_report_misses;
  Obs.Metrics.add m_lemma_hits outcome.Exec.oc_lemma_hits;
  Obs.Metrics.add m_lemma_misses outcome.Exec.oc_lemma_misses;
  Obs.Metrics.add m_invalidations outcome.Exec.oc_invalidated;
  Obs.Metrics.observe h_job_seconds outcome.Exec.oc_seconds

(* Merge a worker's outcome into the cache and publish. The daemon is
   the only writer, so this is the only place the store changes. *)
let merge t outcome =
  List.iter
    (fun (svar, key, holds) -> Store.add_lemma t.t_store ~svar ~key ~holds)
    outcome.Exec.oc_new_lemmas;
  if not outcome.Exec.oc_report_hit then
    Store.add_report t.t_store ~key:outcome.Exec.oc_report_key
      outcome.Exec.oc_report;
  Store.save t.t_store

let update_gauges t =
  Obs.Metrics.set_gauge g_queue_depth (float_of_int (Queue.length t.t_queue));
  let now = Unix.gettimeofday () in
  let oldest =
    List.fold_left
      (fun acc l -> Float.max acc (now -. l.ls_started))
      0.0 !(t.t_inflight)
  in
  Obs.Metrics.set_gauge g_lease_age oldest

let drop_inflight t lease =
  t.t_inflight := List.filter (fun l -> l != lease) !(t.t_inflight)

let failure_metric = function
  | Procpool.Timeout -> m_worker_timeouts
  | Procpool.Crashed | Procpool.Read_error | Procpool.Spawn_failed
  | Procpool.Closed ->
      m_worker_crashes
  | Procpool.Protocol _ -> m_worker_protocol

(* All queued work is refused as degraded: no worker can serve, and a
   cache miss held forever is a hang, not an answer. *)
let shed_degraded t =
  while not (Queue.is_empty t.t_queue) do
    let lease = Queue.pop t.t_queue in
    Obs.Metrics.incr m_jobs_degraded;
    log_event t "degraded" [ ("id", Json.Str lease.ls_job.Job.jb_id) ];
    lease.ls_reply
      (refusal_reply ~kind:"degraded" ~id:lease.ls_job.Job.jb_id
         "no workers available; cache-only mode")
  done

let rec dispatch t =
  if Procpool.degraded t.t_pool then shed_degraded t
  else if (not (Queue.is_empty t.t_queue)) && Procpool.idle t.t_pool > 0 then begin
    let lease = Queue.pop t.t_queue in
    lease.ls_attempts <- lease.ls_attempts + 1;
    lease.ls_started <- Unix.gettimeofday ();
    let timeout =
      if t.t_job_timeout <= 0.0 then None
      else
        Some
          (t.t_job_timeout
          *. (t.t_retry_escalation ** float_of_int (lease.ls_attempts - 1)))
    in
    let request = Json.Obj [ ("job", Job.to_json lease.ls_job) ] in
    (* register the lease before submitting: a Spawn_failed callback
       fires synchronously from inside submit *)
    t.t_inflight := lease :: !(t.t_inflight);
    let accepted =
      Procpool.submit t.t_pool ?timeout request (fun r ->
          on_worker_reply t lease r)
    in
    if not accepted then begin
      (* raced with a slot going busy (or the breaker opening);
         retry on the next loop turn *)
      drop_inflight t lease;
      lease.ls_attempts <- lease.ls_attempts - 1;
      Queue.push lease t.t_queue
    end
    else dispatch t
  end;
  update_gauges t

and on_worker_reply t lease r =
  drop_inflight t lease;
  (match r with
  | Procpool.Reply json -> (
      match Json.to_str (Json.member "error" json) with
      | Some msg ->
          (* the worker itself answered with an error: the job failed
             deterministically (bad design, solver exception) — a
             fresh worker would fail identically, so no retry *)
          Obs.Metrics.incr m_worker_failures;
          lease.ls_reply (error_reply ~id:lease.ls_job.Job.jb_id msg)
      | None -> (
          match Exec.outcome_of_json json with
          | outcome ->
              Obs.Trace.with_span "farm.job"
                ~attrs:
                  [
                    ("id", Obs.Trace.Str lease.ls_job.Job.jb_id);
                    ("report_key", Obs.Trace.Str outcome.Exec.oc_report_key);
                    ("attempts", Obs.Trace.Int lease.ls_attempts);
                  ]
                (fun () -> merge t outcome);
              account outcome;
              lease.ls_reply (submit_reply outcome)
          | exception Json.Parse_error msg ->
              retry_or_poison t lease (Procpool.Protocol msg)))
  | Procpool.Failed failure -> retry_or_poison t lease failure);
  update_gauges t

(* The lease layer's contract: a worker death returns the job to the
   queue with an escalated timeout, a bounded number of times; after
   that the job is poisoned and reported. It is never silently
   dropped, and a retried solve starts from the same published cache
   snapshot as a clean one — the verdict cannot differ. *)
and retry_or_poison t lease failure =
  Obs.Metrics.incr m_worker_failures;
  Obs.Metrics.incr (failure_metric failure);
  let reason = Procpool.failure_to_string failure in
  if Procpool.retryable failure && lease.ls_attempts <= t.t_job_retries then begin
    Obs.Metrics.incr m_job_retries;
    log_event t "retry"
      [
        ("id", Json.Str lease.ls_job.Job.jb_id);
        ("attempt", Json.Int lease.ls_attempts);
        ("failure", Json.Str reason);
      ];
    Queue.push lease t.t_queue;
    dispatch t
  end
  else begin
    Obs.Metrics.incr m_jobs_poisoned;
    log_event t "poisoned"
      [
        ("id", Json.Str lease.ls_job.Job.jb_id);
        ("attempts", Json.Int lease.ls_attempts);
        ("failure", Json.Str reason);
      ];
    lease.ls_reply
      (refusal_reply ~kind:"poisoned" ~id:lease.ls_job.Job.jb_id
         ~fields:[ ("attempts", Json.Int lease.ls_attempts) ]
         (Printf.sprintf "job killed its worker (%s) %d time%s; quarantined"
            reason lease.ls_attempts
            (if lease.ls_attempts = 1 then "" else "s")))
  end

let handle_submit t j reply =
  match Job.of_json (Json.member "job" j) with
  | exception Json.Parse_error msg -> reply (error_reply ("bad job: " ^ msg))
  | job -> (
      (* report-level fast path: an unchanged job never reaches a
         worker — the daemon answers from the cache in-line. This
         path survives every degraded mode. *)
      match
        let rkey = Exec.report_key job in
        (rkey, Store.report t.t_store ~key:rkey)
      with
      | rkey, Some cached ->
          let outcome =
            {
              Exec.oc_id = job.Job.jb_id;
              oc_report = Exec.mark_report_hit cached;
              oc_report_key = rkey;
              oc_report_hit = true;
              oc_lemma_hits = 0;
              oc_lemma_misses = 0;
              oc_invalidated = 0;
              oc_new_lemmas = [];
              oc_seconds = 0.0;
            }
          in
          account outcome;
          reply (submit_reply outcome)
      | _, None ->
          if Procpool.degraded t.t_pool then begin
            Obs.Metrics.incr m_jobs_degraded;
            log_event t "degraded" [ ("id", Json.Str job.Job.jb_id) ];
            reply
              (refusal_reply ~kind:"degraded" ~id:job.Job.jb_id
                 "no workers available; cache-only mode")
          end
          else if Queue.length t.t_queue >= t.t_max_queue then begin
            Obs.Metrics.incr m_jobs_shed;
            log_event t "overloaded" [ ("id", Json.Str job.Job.jb_id) ];
            reply
              (refusal_reply ~kind:"overloaded" ~id:job.Job.jb_id
                 ~fields:[ ("queue_limit", Json.Int t.t_max_queue) ]
                 "submit queue full; resubmit later")
          end
          else begin
            Queue.push
              {
                ls_job = job;
                ls_reply = reply;
                ls_attempts = 0;
                ls_started = Unix.gettimeofday ();
              }
              t.t_queue;
            dispatch t
          end
      | exception e ->
          reply
            (error_reply ~id:job.Job.jb_id
               ("job rejected: " ^ Printexc.to_string e)))

let status_json t =
  let lemmas, reports = Store.counts t.t_store in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("queue_depth", Json.Int (Queue.length t.t_queue));
      ("queue_limit", Json.Int t.t_max_queue);
      ("inflight", Json.Int (List.length !(t.t_inflight)));
      ("workers", Json.Int (Procpool.jobs t.t_pool));
      ("idle_workers", Json.Int (Procpool.idle t.t_pool));
      ("degraded", Json.Bool (Procpool.degraded t.t_pool));
      ("cache_lemmas", Json.Int lemmas);
      ("cache_reports", Json.Int reports);
      ("store_quarantined", Json.Int (Store.quarantined t.t_store));
      ("worker_crashes", Json.Int (Procpool.crashes t.t_pool));
      ("worker_timeouts", Json.Int (Procpool.timeouts t.t_pool));
      ("worker_spawn_failures", Json.Int (Procpool.spawn_failures t.t_pool));
      ("job_retries", Json.Int (Obs.Metrics.counter_value m_job_retries));
      ("jobs_poisoned", Json.Int (Obs.Metrics.counter_value m_jobs_poisoned));
      ("jobs_shed", Json.Int (Obs.Metrics.counter_value m_jobs_shed));
      ("jobs_degraded", Json.Int (Obs.Metrics.counter_value m_jobs_degraded));
      ("auth_failures", Json.Int (Obs.Metrics.counter_value m_auth_failures));
      ("jobs_served", Json.Int (Obs.Metrics.counter_value m_jobs));
      ("report_hits", Json.Int (Obs.Metrics.counter_value m_report_hits));
      ("report_misses", Json.Int (Obs.Metrics.counter_value m_report_misses));
    ]

let handle_request t j reply =
  log_line t "in" j;
  let reply out =
    log_line t "out" out;
    reply out
  in
  match Json.to_str (Json.member "op" j) with
  | Some "submit" -> handle_submit t j reply
  | Some "status" -> reply (status_json t)
  | Some "ping" ->
      reply (Json.Obj [ ("ok", Json.Bool true); ("pong", Json.Bool true) ])
  | Some "gc" ->
      let cap k d =
        match Json.to_int (Json.member k j) with Some n -> n | None -> d
      in
      let evl, evr =
        Store.gc t.t_store ~max_lemmas:(cap "max_lemmas" 100_000)
          ~max_reports:(cap "max_reports" 1_000)
      in
      Store.save t.t_store;
      reply
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("evicted_lemmas", Json.Int evl);
             ("evicted_reports", Json.Int evr);
           ])
  | Some "shutdown" ->
      t.t_shutdown <- true;
      reply (Json.Obj [ ("ok", Json.Bool true); ("bye", Json.Bool true) ])
  | Some op -> reply (error_reply ("unknown op: " ^ op))
  | None -> reply (error_reply "missing op")

(* Reply writes run under a deadline: a client that stops reading
   retires its connection, never wedges the daemon. *)
let conn_reply conn out =
  if conn.c_alive then begin
    let payload = Json.to_string_compact out in
    let deadline = Unix.gettimeofday () +. write_timeout in
    match
      match conn.c_mode with
      | Raw -> Wire.write_all ~deadline conn.c_fd (payload ^ "\n")
      | Framed -> Wire.write_frame ~deadline conn.c_fd payload
    with
    | () -> ()
    | exception (Unix.Unix_error _ | Wire.Timeout) -> conn.c_alive <- false
  end

(* Extract complete lines from a connection buffer, leaving the
   partial tail in place. *)
let drain_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)

(* Framed connections: pop every complete frame; the first must be
   the HMAC response while a challenge is pending. Framing damage
   (bad header) is protocol corruption — refuse and drop. *)
let drain_frames t conn =
  let rec go () =
    match Wire.pop_frame conn.c_buf with
    | None -> ()
    | Some payload ->
        (match Json.of_string payload with
        | j -> (
            match conn.c_auth with
            | Awaiting nonce ->
                if
                  match t.t_auth_token with
                  | Some token -> Wire.auth_check ~token ~nonce j
                  | None -> true
                then begin
                  conn.c_auth <- Authed;
                  conn.c_expires <- infinity;
                  (* a bare request from an authed-by-default client
                     is still a request, not a handshake *)
                  if Json.to_str (Json.member "op" j) <> Some "auth" then
                    handle_request t j (conn_reply conn)
                end
                else begin
                  Obs.Metrics.incr m_auth_failures;
                  log_event t "auth_failed" [];
                  conn_reply conn (error_reply "auth failed");
                  conn.c_alive <- false
                end
            | Authed ->
                if Json.to_str (Json.member "op" j) <> Some "auth" then
                  handle_request t j (conn_reply conn))
        | exception Json.Parse_error msg ->
            conn_reply conn (error_reply ("bad request: " ^ msg)));
        if conn.c_alive then go ()
  in
  match go () with
  | () -> ()
  | exception Failure msg ->
      conn_reply conn (error_reply ("bad frame: " ^ msg));
      conn.c_alive <- false

let handle_conn_data t conn =
  match conn.c_mode with
  | Framed -> drain_frames t conn
  | Raw ->
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Json.of_string line with
            | j -> handle_request t j (conn_reply conn)
            | exception Json.Parse_error msg ->
                conn_reply conn (error_reply ("bad request: " ^ msg)))
        (drain_lines conn.c_buf)

let select_step t ~extra_read ~on_extra =
  let pool_fds = Procpool.fds t.t_pool in
  let fds = extra_read @ pool_fds in
  let timeout =
    match Procpool.next_deadline t.t_pool with
    | Some d -> Float.max 0.01 (Float.min 1.0 (d -. Unix.gettimeofday ()))
    | None -> 1.0
  in
  (match Unix.select fds [] [] timeout with
  | readable, _, _ ->
      Procpool.handle_readable t.t_pool
        (List.filter (fun fd -> List.memq fd pool_fds) readable);
      List.iter
        (fun fd -> if List.memq fd extra_read then on_extra fd)
        readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  Procpool.expire t.t_pool;
  dispatch t

let bind_listener addr =
  match addr with
  | Wire.Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Raw)
  | Wire.Tcp (host, port) ->
      let ip =
        match Unix.inet_addr_of_string host with
        | ip -> ip
        | exception Failure _ -> (
            match host with
            | "localhost" -> Unix.inet_addr_loopback
            | _ -> Unix.inet_addr_any)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      (fd, Framed)

let accept_conn t listen_mode listen_fd =
  let cfd, _ = Unix.accept listen_fd in
  match listen_mode with
  | Raw ->
      Some
        {
          c_fd = cfd;
          c_buf = Buffer.create 4096;
          c_mode = Raw;
          c_auth = Authed;
          c_expires = infinity;
          c_alive = true;
        }
  | Framed -> (
      (* the handshake opens with our challenge; an unauthenticated
         peer gets [handshake_timeout] seconds, then the sweep *)
      let nonce = Wire.fresh_nonce () in
      let conn =
        {
          c_fd = cfd;
          c_buf = Buffer.create 4096;
          c_mode = Framed;
          c_auth =
            (match t.t_auth_token with
            | Some _ -> Awaiting nonce
            | None -> Awaiting nonce (* consumed or bypassed in drain *));
          c_expires = Unix.gettimeofday () +. handshake_timeout;
          c_alive = true;
        }
      in
      match
        Wire.write_frame
          ~deadline:(Unix.gettimeofday () +. write_timeout)
          cfd
          (Json.to_string_compact (Wire.auth_challenge ~nonce))
      with
      | () -> Some conn
      | exception (Unix.Unix_error _ | Wire.Timeout) ->
          (try Unix.close cfd with Unix.Unix_error _ -> ());
          None)

let serve t ~listeners ~should_stop =
  let bound = List.map bind_listener listeners in
  let conns = ref [] in
  let chunk = Bytes.create 65536 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
        !conns;
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        bound;
      List.iter
        (function
          | Wire.Unix_path path -> (
              try Unix.unlink path with Unix.Unix_error _ -> ())
          | Wire.Tcp _ -> ())
        listeners)
    (fun () ->
      while not (t.t_shutdown || should_stop ()) do
        let listen_fds = List.map fst bound in
        let extra_read = listen_fds @ List.map (fun c -> c.c_fd) !conns in
        select_step t ~extra_read ~on_extra:(fun fd ->
            match List.find_opt (fun (lfd, _) -> lfd == fd) bound with
            | Some (lfd, mode) -> (
                match accept_conn t mode lfd with
                | Some conn -> conns := conn :: !conns
                | None -> ())
            | None -> (
                match List.find_opt (fun c -> c.c_fd == fd) !conns with
                | None -> ()
                | Some conn -> (
                    match Unix.read conn.c_fd chunk 0 65536 with
                    | 0 -> conn.c_alive <- false
                    | n ->
                        Buffer.add_subbytes conn.c_buf chunk 0 n;
                        handle_conn_data t conn
                    | exception Unix.Unix_error _ -> conn.c_alive <- false)));
        (* sweep dead connections and expired handshakes *)
        let now = Unix.gettimeofday () in
        List.iter
          (fun c ->
            if c.c_alive && c.c_expires < now then begin
              Obs.Metrics.incr m_auth_failures;
              log_event t "handshake_timeout" [];
              conn_reply c (error_reply "auth handshake timed out");
              c.c_alive <- false
            end)
          !conns;
        let dead, alive = List.partition (fun c -> not c.c_alive) !conns in
        List.iter
          (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
          dead;
        conns := alive
      done)

let run_batch t ~jobs =
  let n = List.length jobs in
  let results = Array.make n None in
  let done_count = ref 0 in
  List.iteri
    (fun i j ->
      handle_request t
        (Json.Obj [ ("op", Json.Str "submit"); ("job", j) ])
        (fun out ->
          results.(i) <- Some out;
          incr done_count))
    jobs;
  while !done_count < n do
    select_step t ~extra_read:[] ~on_extra:(fun _ -> ())
  done;
  Array.to_list
    (Array.map (function Some r -> r | None -> error_reply "lost") results)

let close t =
  Procpool.close t.t_pool;
  Store.save t.t_store
