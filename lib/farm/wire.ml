module Json = Upec.Json

type addr = Unix_path of string | Tcp of string * int

exception Timeout

let addr_of_string s =
  match String.rindex_opt s ':' with
  | None -> Unix_path s
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 && port < 65536 ->
          Tcp ((if host = "" then "127.0.0.1" else host), port)
      | _ -> Unix_path s)

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let remaining deadline =
  if deadline = infinity then None
  else Some (deadline -. Unix.gettimeofday ())

let wait fd ~deadline ~for_read =
  match remaining deadline with
  | None -> ()
  | Some left ->
      if left <= 0.0 then raise Timeout;
      let rec go left =
        let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
        match Unix.select r w [] left with
        | [], [], [] -> raise Timeout
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            let left = deadline -. Unix.gettimeofday () in
            if left <= 0.0 then raise Timeout else go left
      in
      go left

let resolve host =
  match Unix.inet_addr_of_string host with
  | ip -> ip
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | h when Array.length h.Unix.h_addr_list > 0 -> h.Unix.h_addr_list.(0)
      | _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "resolve", host))
      | exception Not_found ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "resolve", host)))

let connect ?(deadline = infinity) addr =
  match addr with
  | Unix_path p ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX p)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Tcp (host, port) ->
      let ip = resolve host in
      let fd =
        Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (ip, port)))
          Unix.SOCK_STREAM 0
      in
      (try
         Unix.set_nonblock fd;
         (match Unix.connect fd (Unix.ADDR_INET (ip, port)) with
         | () -> ()
         | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
           -> (
             wait fd ~deadline ~for_read:false;
             (* with no deadline the select is skipped; poll until the
                connect resolves either way *)
             (if deadline = infinity then
                match Unix.select [] [ fd ] [] (-1.0) with
                | _ -> ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
             match Unix.getsockopt_error fd with
             | None -> ()
             | Some err -> raise (Unix.Unix_error (err, "connect", ""))));
         Unix.clear_nonblock fd;
         fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e)

let write_all ?(deadline = infinity) fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      wait fd ~deadline ~for_read:false;
      let len = if Chaos.armed "short_write" then 1 else n - off in
      match Unix.write_substring fd s off len with
      | w -> go (off + w)
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          go off
    end
  in
  go 0

let read_more ?(deadline = infinity) fd buf =
  wait fd ~deadline ~for_read:true;
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 65536 with
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        n
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        wait fd ~deadline ~for_read:true;
        go ()
  in
  go ()

(* -------- length framing -------- *)

(* Caps a malicious or corrupt header before it becomes an
   allocation: no farm message approaches this. *)
let max_frame = 64 * 1024 * 1024

let frame payload = Printf.sprintf "%08x\n%s\n" (String.length payload) payload

let write_frame ?deadline fd payload = write_all ?deadline fd (frame payload)

let pop_frame buf =
  let s = Buffer.contents buf in
  let have = String.length s in
  if have < 9 then None
  else begin
    if s.[8] <> '\n' then failwith "Wire: bad frame header";
    let len =
      match int_of_string_opt ("0x" ^ String.sub s 0 8) with
      | Some l when l >= 0 && l <= max_frame -> l
      | Some _ -> failwith "Wire: oversized frame"
      | None -> failwith "Wire: bad frame header"
    in
    let total = 9 + len + 1 in
    if have < total then None
    else begin
      if s.[9 + len] <> '\n' then failwith "Wire: bad frame terminator";
      let payload = String.sub s 9 len in
      Buffer.clear buf;
      Buffer.add_substring buf s total (have - total);
      Some payload
    end
  end

let rec read_frame ?(deadline = infinity) fd buf =
  match pop_frame buf with
  | Some payload -> payload
  | None ->
      if read_more ~deadline fd buf = 0 then raise End_of_file
      else read_frame ~deadline fd buf

(* -------- authentication -------- *)

(* HMAC (RFC 2104) over the stdlib Digest hash; block size 64. *)
let hmac ~key msg =
  let key = if String.length key > 64 then Digest.string key else key in
  let pad fill =
    let b = Bytes.make 64 (Char.chr fill) in
    String.iteri
      (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor fill)))
      key;
    Bytes.to_string b
  in
  Digest.to_hex (Digest.string (pad 0x5c ^ Digest.string (pad 0x36 ^ msg)))

let constant_time_eq a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri
         (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i]))
         a;
       !acc = 0
     end

let nonce_counter = ref 0

let fresh_nonce () =
  let urandom =
    match open_in_bin "/dev/urandom" with
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match really_input_string ic 16 with
            | s -> Some s
            | exception End_of_file -> None)
    | exception Sys_error _ -> None
  in
  incr nonce_counter;
  let seed =
    match urandom with
    | Some s -> s
    | None ->
        Printf.sprintf "%f:%d:%d:%d" (Unix.gettimeofday ()) (Unix.getpid ())
          !nonce_counter
          (Hashtbl.hash (Sys.getcwd ()))
  in
  Digest.to_hex (Digest.string seed)

let load_token path =
  let ic = open_in_bin path in
  let token =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> String.trim (really_input_string ic (in_channel_length ic)))
  in
  if token = "" then failwith ("Wire: empty auth token in " ^ path);
  token

let auth_challenge ~nonce =
  Json.Obj [ ("farm", Json.Str "upec-farm 1"); ("challenge", Json.Str nonce) ]

let auth_response ~token ~nonce =
  Json.Obj [ ("op", Json.Str "auth"); ("auth", Json.Str (hmac ~key:token nonce)) ]

let auth_check ~token ~nonce j =
  match Json.to_str (Json.member "auth" j) with
  | Some mac -> constant_time_eq mac (hmac ~key:token nonce)
  | None -> false
