module Json = Upec.Json

let request ~socket json =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let line = Json.to_string_compact json ^ "\n" in
      let n = String.length line in
      if Unix.write_substring fd line 0 n <> n then
        failwith "Farm.Client: short write";
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let rec read_line () =
        match Unix.read fd chunk 0 65536 with
        | 0 -> failwith "Farm.Client: connection closed before reply"
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            let s = Buffer.contents buf in
            (match String.index_opt s '\n' with
            | Some i -> String.sub s 0 i
            | None -> read_line ())
      in
      Json.of_string (read_line ()))
