module Json = Upec.Json

type target = { tg_addr : Wire.addr; tg_token : string option }

let local socket = { tg_addr = Wire.Unix_path socket; tg_token = None }

let target ?token_file addr =
  {
    tg_addr = Wire.addr_of_string addr;
    tg_token = Option.map Wire.load_token token_file;
  }

exception Unavailable of string

(* Unseeded Random would give every client process the same jitter —
   the retries would stampede together, which is the opposite of the
   point. *)
let jitter_state =
  lazy
    (Random.State.make
       [|
         Unix.getpid ();
         int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF;
       |])

let read_reply_line ~deadline fd =
  let buf = Buffer.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None ->
        if Wire.read_more ~deadline fd buf = 0 then raise End_of_file
        else go ()
  in
  go ()

(* chaos: drop the connection after sending, before the reply — the
   retry (against an idempotent server) must absorb it *)
let chaos_drop fd =
  if Chaos.fire "drop_conn" then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise End_of_file
  end

(* chaos: stall past our own read deadline, then let the read time
   out — exercises the deadline, then the retry *)
let chaos_stall ~deadline =
  if Chaos.fire "stall_conn" then
    if deadline < infinity then
      Unix.sleepf (Float.max 0.0 (deadline -. Unix.gettimeofday ()) +. 0.05)

let attempt ~deadline t json =
  let fd = Wire.connect ~deadline t.tg_addr in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match t.tg_addr with
      | Wire.Unix_path _ ->
          Wire.write_all ~deadline fd (Json.to_string_compact json ^ "\n");
          chaos_drop fd;
          chaos_stall ~deadline;
          Json.of_string (read_reply_line ~deadline fd)
      | Wire.Tcp _ ->
          let buf = Buffer.create 4096 in
          let challenge = Json.of_string (Wire.read_frame ~deadline fd buf) in
          (match
             (t.tg_token, Json.to_str (Json.member "challenge" challenge))
           with
          | Some token, Some nonce ->
              Wire.write_frame ~deadline fd
                (Json.to_string_compact (Wire.auth_response ~token ~nonce))
          | _ ->
              (* no token (or no challenge): send the request bare and
                 let the server's refusal come back as a normal reply *)
              ());
          Wire.write_frame ~deadline fd (Json.to_string_compact json);
          chaos_drop fd;
          chaos_stall ~deadline;
          Json.of_string (Wire.read_frame ~deadline fd buf))

let retryable = function
  | Wire.Timeout | End_of_file -> true
  | Unix.Unix_error _ -> true
  | Failure _ -> true (* torn frame *)
  | Json.Parse_error _ -> true (* torn reply line *)
  | _ -> false

let describe = function
  | Wire.Timeout -> "deadline exceeded"
  | End_of_file -> "connection closed before reply"
  | Unix.Unix_error (err, fn, _) ->
      Printf.sprintf "%s: %s" fn (Unix.error_message err)
  | Failure msg -> msg
  | Json.Parse_error msg -> "bad reply: " ^ msg
  | e -> Printexc.to_string e

let request ?(timeout = 600.0) ?(attempts = 3) ?(backoff = 0.25) t json =
  let attempts = max 1 attempts in
  let rec go n =
    let deadline =
      if timeout > 0.0 then Unix.gettimeofday () +. timeout else infinity
    in
    match attempt ~deadline t json with
    | reply -> reply
    | exception e when retryable e ->
        if n >= attempts then raise (Unavailable (describe e))
        else begin
          let scale = 0.5 +. Random.State.float (Lazy.force jitter_state) 1.0 in
          Unix.sleepf (backoff *. (2.0 ** float_of_int (n - 1)) *. scale);
          go (n + 1)
        end
  in
  go 1
