(** Fault injection for the farm — the chaos harness.

    Faults are {e directives} named in the [UPEC_FARM_CHAOS]
    environment variable (comma-separated, each [name] or
    [name:count], default count 1). Because workers are separate
    processes that inherit the daemon's environment, a directive set
    on the daemon reaches every injection point in the fleet.

    A directive's remaining budget lives either in-process (each
    process may fire [count] times — so a respawned worker re-arms,
    which is how a {e poisoned} job is manufactured) or, when
    [UPEC_FARM_CHAOS_DIR] names a directory, in a lock-serialised
    budget file shared by every process (fire exactly [count] times
    {e globally} — how a single mid-batch worker kill is
    manufactured, surviving the respawn).

    Directives wired through the farm:
    - [kill_worker_mid_job] — the worker SIGKILLs itself after
      reading a job, before solving it;
    - [drop_conn] — the client closes its connection after sending a
      request, before reading the reply (exercises retry);
    - [stall_conn] — the client sleeps past its own read deadline
      before reading the reply (exercises the deadline, then retry);
    - [short_write] — every {!Wire.write_all} moves one byte per
      syscall (exercises the short-write loops; armed, not budgeted);
    - [truncate_store] — {!Store} publishes a report file cut in
      half (manufactures on-disk damage the quarantine must catch).

    Production builds pay one [Sys.getenv_opt] per process: with the
    variable unset, {!armed} and {!fire} are static [false]. *)

val active : unit -> bool
(** [UPEC_FARM_CHAOS] is set and non-empty. *)

val armed : string -> bool
(** The directive is present (budget not consulted). *)

val fire : string -> bool
(** Consume one unit of the directive's budget; [true] when the
    fault should be injected now. Never raises. *)

val arm_dir : dir:string -> (string * int) list -> (string * string) list
(** Test helper: create [dir], seed one budget file per (directive,
    count), and return the [(name, value)] environment bindings
    ([UPEC_FARM_CHAOS], [UPEC_FARM_CHAOS_DIR]) a spawned daemon
    needs. *)
