(** On-disk content-addressed verdict/lemma cache.

    Layout under the cache directory:
    - [index] — versioned text file listing every entry with an LRU
      stamp: lemma lines carry (svar, key, verdict) inline, report
      lines point at [reports/<key>.json];
    - [reports/<key>.json] — cached schema-2 report artefacts.

    Durability follows [Upec.Checkpoint]: every publish is
    temp-file + write + fsync + rename, so a crash can lose at most
    the unflushed tail of the current session, never tear a file. A
    corrupt or version-mismatched index is treated as an empty cache
    (the farm re-solves; it never crashes on cache damage).

    Damage is {e quarantined}, never trusted: a report file that
    fails to read or parse is dropped from the index, moved to
    [quarantine/] (writer handles only) and counted; a damaged index
    is set aside the same way. The key re-solves cleanly — corruption
    can cost work, never a verdict.

    Concurrency: single writer (the daemon). Worker processes open
    read-only snapshots per job with {!load} and never call {!save};
    the daemon merges their new lemmas and publishes. *)

type t

val load : ?writer:bool -> dir:string -> unit -> t
(** Open (creating the directory if needed). Never raises on cache
    damage — a damaged index loads as empty. [writer] (default
    [false]) marks the single-writer handle: only it may move
    damaged files into [quarantine/]; readers just count and miss. *)

val dir : t -> string

val lemma : t -> svar:string -> key:string -> bool option
(** Cached verdict of a per-svar check, bumping its LRU stamp. *)

val add_lemma : t -> svar:string -> key:string -> holds:bool -> unit
(** In-memory until {!save}; duplicate (svar, key) pairs overwrite. *)

val has_svar : t -> svar:string -> bool
(** Whether any lemma (under any key — i.e. any design content) is
    cached for this state variable; a lookup miss with [has_svar]
    true is an {e invalidation}, the re-solved cone of a delta. *)

val report : t -> key:string -> Upec.Json.t option
(** Cached report, bumping its stamp. An unreadable or unparseable
    report file is a miss {e and} a quarantine: the entry is dropped
    and (on a writer handle) the file moved aside. *)

val add_report : t -> key:string -> Upec.Json.t -> unit
(** Publishes the report file atomically right away; the index entry
    lands at the next {!save}. *)

val save : t -> unit
(** Publish the index atomically. *)

val gc : t -> max_lemmas:int -> max_reports:int -> int * int
(** Evict least-recently-used entries beyond the caps; report files
    are unlinked. Returns (lemmas evicted, reports evicted). The
    caller is expected to {!save} afterwards. *)

val counts : t -> int * int
(** (lemmas, reports) currently cached. *)

val quarantined : t -> int
(** Damaged files detected (and, as writer, moved aside) since
    {!load}. *)
