module Json = Upec.Json

let magic = "upec-farm-cache 1"

(* svar names contain no whitespace by construction, but the index is
   a whitespace-split format, so encode defensively. *)
let encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '%' | '\n' | '\t' ->
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
       | Some c ->
           Buffer.add_char b (Char.chr c);
           i := !i + 2
       | None -> failwith "Store.decode: bad escape"
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

type lemma_entry = { le_holds : bool; mutable le_stamp : int }
type report_entry = { mutable re_stamp : int }

type t = {
  st_dir : string;
  st_writer : bool;  (* may move damaged files aside *)
  st_lemmas : (string * string, lemma_entry) Hashtbl.t;  (* (svar, key) *)
  st_svars : (string, int) Hashtbl.t;  (* svar -> lemma count *)
  st_reports : (string, report_entry) Hashtbl.t;  (* report key *)
  mutable st_stamp : int;  (* monotonic LRU clock *)
  mutable st_quarantined : int;  (* damaged files set aside this session *)
}

let dir t = t.st_dir
let index_path t = Filename.concat t.st_dir "index"
let reports_dir t = Filename.concat t.st_dir "reports"
let report_path t key = Filename.concat (reports_dir t) (key ^ ".json")
let quarantine_dir t = Filename.concat t.st_dir "quarantine"

(* Move a damaged file out of the cache's namespace: it is never
   trusted again, but it is kept for forensics and counted. Readers
   (worker snapshots) only count — the daemon owns the files. *)
let quarantine t path =
  t.st_quarantined <- t.st_quarantined + 1;
  if t.st_writer then begin
    (try Unix.mkdir (quarantine_dir t) 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let base = Filename.concat (quarantine_dir t) (Filename.basename path) in
    let rec dest n =
      let p = if n = 0 then base else Printf.sprintf "%s.%d" base n in
      if Sys.file_exists p then dest (n + 1) else p
    in
    try Sys.rename path (dest 0) with Sys_error _ -> ()
  end

let incr_svar t svar d =
  let c = (match Hashtbl.find_opt t.st_svars svar with Some c -> c | None -> 0) + d in
  if c <= 0 then Hashtbl.remove t.st_svars svar
  else Hashtbl.replace t.st_svars svar c

let tick t =
  t.st_stamp <- t.st_stamp + 1;
  t.st_stamp

let parse_index t text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | first :: rest when first = magic ->
      List.iter
        (fun line ->
          match String.split_on_char ' ' line with
          | [ "L"; svar; key; holds; stamp ] ->
              let svar = decode svar in
              let holds = holds = "1" in
              let stamp = int_of_string stamp in
              if not (Hashtbl.mem t.st_lemmas (svar, key)) then begin
                Hashtbl.replace t.st_lemmas (svar, key)
                  { le_holds = holds; le_stamp = stamp };
                incr_svar t svar 1
              end;
              if stamp > t.st_stamp then t.st_stamp <- stamp
          | [ "R"; key; stamp ] ->
              let stamp = int_of_string stamp in
              Hashtbl.replace t.st_reports key { re_stamp = stamp };
              if stamp > t.st_stamp then t.st_stamp <- stamp
          | [ "" ] | [] -> ()
          | _ -> failwith "Store: malformed index line")
        rest
  | _ -> failwith "Store: bad index magic"

let load ?(writer = false) ~dir () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t =
    {
      st_dir = dir;
      st_writer = writer;
      st_lemmas = Hashtbl.create 1024;
      st_svars = Hashtbl.create 256;
      st_reports = Hashtbl.create 64;
      st_stamp = 0;
      st_quarantined = 0;
    }
  in
  (try Unix.mkdir (reports_dir t) 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (if Sys.file_exists (index_path t) then
     match
       let ic = open_in_bin (index_path t) in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     with
     | text -> (
         try parse_index t text
         with _ ->
           (* damaged cache = empty cache, never a crash; the broken
              index is set aside, not overwritten silently *)
           Hashtbl.reset t.st_lemmas;
           Hashtbl.reset t.st_svars;
           Hashtbl.reset t.st_reports;
           quarantine t (index_path t))
     | exception Sys_error _ -> ());
  (* drop index entries whose report file is gone *)
  Hashtbl.iter
    (fun key _ ->
      if not (Sys.file_exists (report_path t key)) then
        Hashtbl.remove t.st_reports key)
    (Hashtbl.copy t.st_reports);
  t

let lemma t ~svar ~key =
  match Hashtbl.find_opt t.st_lemmas (svar, key) with
  | Some e ->
      e.le_stamp <- tick t;
      Some e.le_holds
  | None -> None

let add_lemma t ~svar ~key ~holds =
  if not (Hashtbl.mem t.st_lemmas (svar, key)) then incr_svar t svar 1;
  Hashtbl.replace t.st_lemmas (svar, key)
    { le_holds = holds; le_stamp = tick t }

let has_svar t ~svar = Hashtbl.mem t.st_svars svar

let atomic_write ~dir:d ~path text =
  (* chaos: publish a torn artefact — the rename stays atomic, the
     content is damaged, and the read-side quarantine must catch it *)
  let text =
    if Chaos.fire "truncate_store" then
      String.sub text 0 (String.length text / 2)
    else text
  in
  let tmp = Filename.temp_file ~temp_dir:d (Filename.basename path) ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length text in
      if Unix.write_substring fd text 0 n <> n then
        failwith "Store: short write";
      Unix.fsync fd);
  Sys.rename tmp path

let report t ~key =
  match Hashtbl.find_opt t.st_reports key with
  | None -> None
  | Some e -> (
      let damaged () =
        (* an unreadable or unparseable artefact is never trusted and
           never retried: drop the index entry and set the file aside
           so the key re-solves cleanly *)
        Hashtbl.remove t.st_reports key;
        quarantine t (report_path t key);
        None
      in
      match
        let ic = open_in_bin (report_path t key) in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> (
          match
            let j = Json.of_string text in
            (* strict parsing: a cached artefact under an unsupported
               schema version is as untrustworthy as a torn one *)
            ignore (Json.schema_version ~supported:[ 2; 3 ] j);
            j
          with
          | j ->
              e.re_stamp <- tick t;
              Some j
          | exception Json.Parse_error _ -> damaged ())
      | exception Sys_error _ -> damaged ())

let add_report t ~key json =
  atomic_write ~dir:t.st_dir ~path:(report_path t key) (Json.to_string json);
  Hashtbl.replace t.st_reports key { re_stamp = tick t }

let save t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Hashtbl.iter
    (fun (svar, key) e ->
      Printf.bprintf b "L %s %s %d %d\n" (encode svar) key
        (if e.le_holds then 1 else 0)
        e.le_stamp)
    t.st_lemmas;
  Hashtbl.iter
    (fun key e -> Printf.bprintf b "R %s %d\n" key e.re_stamp)
    t.st_reports;
  atomic_write ~dir:t.st_dir ~path:(index_path t) (Buffer.contents b)

let evict_oldest count stamps remove =
  (* [stamps]: (stamp, id) list; evict the [count] oldest *)
  let sorted = List.sort compare stamps in
  let rec go n = function
    | (_, id) :: rest when n > 0 ->
        remove id;
        go (n - 1) rest
    | _ -> ()
  in
  go count sorted

let gc t ~max_lemmas ~max_reports =
  let nl = Hashtbl.length t.st_lemmas and nr = Hashtbl.length t.st_reports in
  let evl = max 0 (nl - max_lemmas) and evr = max 0 (nr - max_reports) in
  if evl > 0 then
    evict_oldest evl
      (Hashtbl.fold (fun k e acc -> (e.le_stamp, k) :: acc) t.st_lemmas [])
      (fun (svar, key) ->
        Hashtbl.remove t.st_lemmas (svar, key);
        incr_svar t svar (-1));
  if evr > 0 then
    evict_oldest evr
      (Hashtbl.fold (fun k e acc -> (e.re_stamp, k) :: acc) t.st_reports [])
      (fun key ->
        Hashtbl.remove t.st_reports key;
        try Sys.remove (report_path t key) with Sys_error _ -> ());
  (evl, evr)

let counts t = (Hashtbl.length t.st_lemmas, Hashtbl.length t.st_reports)
let quarantined t = t.st_quarantined
