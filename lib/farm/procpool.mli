(** Worker {e process} pool.

    Unlike [Parallel.Pool]'s domains, workers are separate processes
    (fork/exec of the farm binary's [worker] subcommand): each job
    runs under its own GC and heap, and a crash or a stuck solver
    kills one worker, never the daemon. The watchdog discipline
    mirrors [Parallel.Pool]: a per-job deadline, enforced here with
    SIGKILL + respawn because a process (unlike a domain) can be
    killed safely.

    Protocol: one request line down the worker's stdin, one reply
    line back on its stdout (line-delimited JSON). A worker that
    closes its stdout (crash, exit) fails its in-flight job with an
    error outcome and is respawned lazily.

    The pool is select-friendly: the daemon multiplexes worker fds
    with its client sockets ({!fds}/{!handle_readable}/{!deadline}). *)

type t

type reply =
  | Reply of Upec.Json.t  (** worker's reply line, parsed *)
  | Failed of string  (** crash/timeout/garbage; worker respawned *)

val create : worker_argv:string array -> jobs:int -> job_timeout:float -> t
(** [worker_argv.(0)] is the executable path. [job_timeout <= 0.]
    disables the watchdog. Workers are spawned lazily. *)

val jobs : t -> int
val idle : t -> int
(** Workers (spawned or not) without an in-flight job. *)

val submit : t -> Upec.Json.t -> (reply -> unit) -> bool
(** Hand one request line to an idle worker; [false] when none is
    idle. The callback fires from {!handle_readable} or {!expire}. *)

val fds : t -> Unix.file_descr list
(** Stdout fds of busy workers, for the caller's select. *)

val handle_readable : t -> Unix.file_descr list -> unit
(** Drain readable worker fds; complete jobs fire their callbacks. *)

val next_deadline : t -> float option
(** Earliest in-flight deadline (absolute, [Unix.gettimeofday]
    clock), for the caller's select timeout. *)

val expire : t -> unit
(** SIGKILL every worker past its deadline; their jobs fail with
    [Failed "timeout"]. *)

val crashes : t -> int
val timeouts : t -> int

val close : t -> unit
(** Terminate every worker (TERM, then KILL) and reap. *)
