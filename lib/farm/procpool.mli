(** Worker {e process} pool.

    Unlike [Parallel.Pool]'s domains, workers are separate processes
    (fork/exec of the farm binary's [worker] subcommand): each job
    runs under its own GC and heap, and a crash or a stuck solver
    kills one worker, never the daemon. The watchdog discipline
    mirrors [Parallel.Pool]: a per-job deadline, enforced here with
    SIGKILL + respawn because a process (unlike a domain) can be
    killed safely.

    Protocol: one request line down the worker's stdin, one reply
    line back on its stdout (line-delimited JSON). A worker that
    closes its stdout (crash, exit) fails its in-flight job with a
    taxonomised {!failure} and is respawned lazily.

    Failures are typed, not stringly: the server's lease layer
    retries {!Timeout}/{!Crashed}/{!Read_error}/{!Protocol} (the
    worker died or spoke garbage — the job itself may be fine on a
    fresh process) and reports each class under its own metric.

    The pool degrades instead of wedging: created with [jobs = 0] it
    is permanently {!degraded} (a cache-only farm), and a run of
    consecutive worker deaths that never produced a single reply
    (e.g. the worker binary is broken) opens a circuit breaker —
    {!degraded} turns true for a cooldown period so the server sheds
    to cache-only instead of burning respawns.

    The pool is select-friendly: the daemon multiplexes worker fds
    with its client sockets ({!fds}/{!handle_readable}/{!expire}). *)

type t

type failure =
  | Timeout  (** the per-job deadline expired; the worker was SIGKILLed *)
  | Crashed  (** EOF on stdout before a reply: crash, OOM-kill, exit *)
  | Read_error  (** the worker pipe errored mid-reply *)
  | Protocol of string  (** a reply line that does not parse *)
  | Spawn_failed  (** could not fork/exec a worker at all *)
  | Closed  (** the pool was shut down with the job in flight *)

val failure_to_string : failure -> string
(** Stable lowercase tags: ["timeout"], ["crashed"], ["read_error"],
    ["protocol: ..."], ["spawn_failed"], ["closed"]. *)

val retryable : failure -> bool
(** Whether a fresh worker could plausibly complete the job:
    everything except [Closed]. *)

type reply = Reply of Upec.Json.t  (** worker's reply line, parsed *)
           | Failed of failure

val create : worker_argv:string array -> jobs:int -> job_timeout:float -> t
(** [worker_argv.(0)] is the executable path. [job_timeout <= 0.]
    disables the watchdog. [jobs = 0] creates a permanently degraded
    (cache-only) pool. Workers are spawned lazily. *)

val jobs : t -> int
val idle : t -> int
(** Workers (spawned or not) without an in-flight job. *)

val inflight : t -> int

val submit : t -> ?timeout:float -> Upec.Json.t -> (reply -> unit) -> bool
(** Hand one request line to an idle worker; [false] when none is
    idle (or the pool is degraded). [timeout] overrides the pool
    default for this job — the lease layer escalates it per attempt.
    The callback fires from {!handle_readable}, {!expire} or
    {!close}, never inside [submit] except on [Spawn_failed]. *)

val fds : t -> Unix.file_descr list
(** Stdout fds of busy workers, for the caller's select. *)

val handle_readable : t -> Unix.file_descr list -> unit
(** Drain readable worker fds; complete jobs fire their callbacks. *)

val next_deadline : t -> float option
(** Earliest in-flight deadline (absolute, [Unix.gettimeofday]
    clock), for the caller's select timeout. *)

val expire : t -> unit
(** SIGKILL every worker past its deadline; their jobs fail with
    [Failed Timeout]. *)

val degraded : t -> bool
(** No worker can serve right now: zero-worker pool, or the
    consecutive-death circuit breaker is open (cooldown pending). *)

val crashes : t -> int
val timeouts : t -> int
val spawn_failures : t -> int

val close : t -> unit
(** Terminate every worker (TERM, then KILL) and reap. *)
