(** Transport substrate for the farm protocol.

    Two address families, one protocol:

    - [Unix_path p] — the original local transport. Messages are raw
      line-delimited JSON, no handshake; trust is filesystem
      permissions on the socket.
    - [Tcp (host, port)] — the multi-host transport. Every message is
      a {e length-framed} LDJSON line ([%08x\n] byte-count header,
      then exactly that many payload bytes, then ['\n']), so a
      receiver can size its read, detect truncation, and never
      confuse a torn write with a short message. Connections open
      with a shared-secret HMAC challenge/response and are refused
      (with [{"ok":false,"error":"..."}]) before any op otherwise.

    All blocking reads and writes here take an absolute [deadline]
    ([Unix.gettimeofday] clock; [infinity] disables). A missed
    deadline raises {!Timeout} — callers decide whether that retires
    a connection (server) or triggers a retry (client). Writes loop
    on partial [write] and [EINTR]; a kernel that accepts one byte at
    a time still gets the whole message. *)

type addr = Unix_path of string | Tcp of string * int

val addr_of_string : string -> addr
(** ["host:port"] parses as [Tcp] (the last [':'] splits, so IPv6
    literals work unbracketed); anything else is a [Unix_path]. *)

val addr_to_string : addr -> string

val connect : ?deadline:float -> addr -> Unix.file_descr
(** Resolve and connect with the deadline applied to the TCP connect
    itself (non-blocking connect + select). Raises {!Timeout} or
    [Unix.Unix_error]. The returned fd is blocking. *)

exception Timeout
(** A read or write missed its deadline. *)

val write_all : ?deadline:float -> Unix.file_descr -> string -> unit
(** Write the whole string, looping on short writes and [EINTR],
    waiting for writability under the deadline. Honours the
    [short_write] chaos directive (one byte per syscall) so the loop
    is exercised, not just trusted. *)

val read_more : ?deadline:float -> Unix.file_descr -> Buffer.t -> int
(** Wait (under deadline) for readability, then append one chunk to
    [buf]; returns the byte count, 0 on EOF. *)

(** {1 Length framing} *)

val frame : string -> string
(** [%08x\n] ^ payload ^ ["\n"]. *)

val write_frame : ?deadline:float -> Unix.file_descr -> string -> unit

val pop_frame : Buffer.t -> string option
(** Extract one complete frame from an accumulation buffer, leaving
    any partial tail in place; [None] when incomplete. Raises
    [Failure] on a malformed header or a missing trailing newline —
    framing damage, not a short read. *)

val read_frame : ?deadline:float -> Unix.file_descr -> Buffer.t -> string
(** Blocking-read frames via [buf] until one completes. Raises
    [End_of_file] on EOF mid-frame, {!Timeout}, or [Failure] on
    framing damage. *)

(** {1 Authentication} *)

val hmac : key:string -> string -> string
(** HMAC (RFC 2104) over the stdlib [Digest] hash, hex-encoded.
    Shared-secret transport auth, not a public signature scheme. *)

val constant_time_eq : string -> string -> bool

val fresh_nonce : unit -> string
(** Unpredictable per-connection challenge (urandom when available,
    else time/pid/counter digest). *)

val load_token : string -> string
(** Read a token file, trimmed. Raises [Sys_error]. Refuses an empty
    token with [Failure] — an empty secret authenticates nobody. *)

val auth_challenge : nonce:string -> Upec.Json.t
val auth_response : token:string -> nonce:string -> Upec.Json.t
val auth_check : token:string -> nonce:string -> Upec.Json.t -> bool
