(** Fault-tolerant farm client: one request/reply exchange per call,
    over either transport, with deadlines and bounded retries.

    Every attempt runs under one absolute deadline covering connect,
    write and read — a stalled daemon costs [timeout] seconds, never
    hangs the caller. Writes loop on partial [write]. A failed
    attempt (connect refused, deadline missed, connection dropped
    before the reply, torn frame) is retried up to [attempts] times
    with jittered exponential backoff; requests are idempotent on the
    server (resubmitting a job hits its cache entry), so a retry can
    duplicate work but never a verdict.

    Over TCP the client answers the server's HMAC challenge with the
    shared token before the request ({!Wire}); without a token it
    sends the request bare and the server refuses it — an auth
    refusal is a {e reply}, not an IO failure, and is never
    retried. *)

type target = { tg_addr : Wire.addr; tg_token : string option }

val local : string -> target
(** Unix-socket target, no token. *)

val target : ?token_file:string -> string -> target
(** Parse ["host:port"] or a socket path ({!Wire.addr_of_string})
    and load the token file if given. Raises [Sys_error] on an
    unreadable file, [Failure] on an empty token. *)

exception Unavailable of string
(** Every attempt failed; the message names the last failure. *)

val request :
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  target ->
  Upec.Json.t ->
  Upec.Json.t
(** [timeout] (default 600 s, [<= 0.] disables) bounds each attempt;
    [attempts] (default 3) bounds the retries; [backoff] (default
    0.25 s) seeds the jittered exponential delay between them.
    Raises {!Unavailable} when the last attempt fails and
    [Upec.Json.Parse_error] never (torn replies are retried as IO
    failures). *)
