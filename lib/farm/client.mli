(** Minimal farm client: one line-delimited-JSON request/reply
    exchange per call over the daemon's Unix domain socket. *)

val request : socket:string -> Upec.Json.t -> Upec.Json.t
(** Connect, send one request line, read one reply line. Raises
    [Unix.Unix_error] when the daemon is unreachable,
    [Failure] on a truncated reply and [Upec.Json.Parse_error] on a
    malformed one. *)
