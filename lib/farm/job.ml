module Json = Upec.Json

type t = {
  jb_id : string;
  jb_design : Upec.Cli.design;
  jb_alg : int;
  jb_options : Upec.Options.t;
}

let of_json j =
  let scenario =
    match Json.member "scenario" j with
    | Json.Null -> None
    | Json.Str name -> (
        match Scenarios.Scenario.find name with
        | Some s -> Some s
        | None ->
            raise (Json.Parse_error ("scenario: unknown \"" ^ name ^ "\"")))
    | spec_json -> Some (Scenarios.Scenario.of_json spec_json)
  in
  let id =
    match Json.to_str (Json.member "id" j) with
    | Some s -> s
    | None -> (
        (* a scenario job correlates by its scenario name by default *)
        match scenario with
        | Some s -> s.Scenarios.Scenario.sp_name
        | None -> "")
  in
  let design =
    match (scenario, Json.member "design" j) with
    | Some s, Json.Null -> s.Scenarios.Scenario.sp_design
    | Some _, _ ->
        raise (Json.Parse_error "job: \"design\" conflicts with \"scenario\"")
    | None, dj -> Upec.Cli.design_of_json dj
  in
  let alg, options = Upec.Cli.options_of_json (Json.member "options" j) in
  let alg =
    (* the scenario names its deciding procedure unless the options
       override it explicitly *)
    match scenario with
    | Some s when Json.member "alg" (Json.member "options" j) = Json.Null ->
        s.Scenarios.Scenario.sp_alg
    | _ -> alg
  in
  { jb_id = id; jb_design = design; jb_alg = alg; jb_options = options }

let to_json t =
  Json.Obj
    [
      ("id", Json.Str t.jb_id);
      ("design", Upec.Cli.design_to_json t.jb_design);
      ("options", Upec.Cli.options_to_json ~alg:t.jb_alg t.jb_options);
    ]

let options_key t =
  Digest.to_hex
    (Digest.string
       (Json.to_string_compact
          (Upec.Cli.options_to_json ~alg:t.jb_alg t.jb_options)))
