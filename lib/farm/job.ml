module Json = Upec.Json

type t = {
  jb_id : string;
  jb_design : Upec.Cli.design;
  jb_alg : int;
  jb_options : Upec.Options.t;
}

let of_json j =
  let id =
    match Json.to_str (Json.member "id" j) with Some s -> s | None -> ""
  in
  let design = Upec.Cli.design_of_json (Json.member "design" j) in
  let alg, options = Upec.Cli.options_of_json (Json.member "options" j) in
  { jb_id = id; jb_design = design; jb_alg = alg; jb_options = options }

let to_json t =
  Json.Obj
    [
      ("id", Json.Str t.jb_id);
      ("design", Upec.Cli.design_to_json t.jb_design);
      ("options", Upec.Cli.options_to_json ~alg:t.jb_alg t.jb_options);
    ]

let options_key t =
  Digest.to_hex
    (Digest.string
       (Json.to_string_compact
          (Upec.Cli.options_to_json ~alg:t.jb_alg t.jb_options)))
