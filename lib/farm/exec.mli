(** Execute one farm job against a cache store.

    Two cache levels:
    - {b report}: key = canonical design-spec digest × options digest
      ({!Upec.Fingerprint.design_spec}). A hit returns the stored
      artefact (with its [cache] block re-marked [report_hit]) without
      building a netlist or an engine at all; jobs spelled as
      deprecated CLI flags and as {!Scenarios.Scenario} specs hit the
      same entries.
    - {b lemma}: within a miss, every per-svar Algorithm 1 check is
      answered from {!Upec.Fingerprint.check_key}-addressed lemmas
      when its key matches ({!Upec.Alg1.svar_cache}); the refinement
      loop replays with cached answers, so the warm verdict — and the
      whole iteration table — is bit-identical to the cold run's. An
      RTL delta changes exactly the keys whose check content it
      touches; only that cone re-solves.

    [run] never writes the store: new lemmas and the report travel in
    the {!outcome} for the daemon (the single writer) to merge. The
    lemma cache engages only under the per-svar strategy
    ([Options.jobs = Some _]); monolithic runs still get report-level
    caching. *)

type outcome = {
  oc_id : string;  (** echo of the job's correlation id *)
  oc_report : Upec.Json.t;
  oc_report_key : string;
  oc_report_hit : bool;
  oc_lemma_hits : int;
  oc_lemma_misses : int;
  oc_invalidated : int;
      (** misses on svars that had cached lemmas under other keys *)
  oc_new_lemmas : (string * string * bool) list;  (** svar, key, holds *)
  oc_seconds : float;
}

val report_key : Job.t -> string
(** Digest of the canonical design spec and the options wire encoding;
    O(1) — no SoC build, no solving. *)

val mark_report_hit : Upec.Json.t -> Upec.Json.t
(** Re-mark a cached artefact's [cache] block as a report hit,
    leaving every other byte as the cold run wrote it. *)

val run : store:Store.t -> Job.t -> outcome

val outcome_to_json : outcome -> Upec.Json.t
val outcome_of_json : Upec.Json.t -> outcome
(** Wire codec for the worker protocol; [Upec.Json.Parse_error] on
    malformed input. *)
