open Rtl

type t = {
  oc : out_channel;
  mutable signals : (string * Expr.t * string) list;
      (** name, expr, vcd id; emptied by [close] so the engine hook
          stops evaluating (and retaining) the expressions *)
  last : (string, Bitvec.t) Hashtbl.t;  (** vcd id -> last value *)
  mutable time : int;
  mutable closed : bool;
}

let vcd_id i =
  (* Printable VCD identifier codes: '!' .. '~' base-94. *)
  let rec go i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let emit_value oc id v =
  let w = Bitvec.width v in
  if w = 1 then Printf.fprintf oc "%d%s\n" (Bitvec.to_int v) id
  else begin
    output_char oc 'b';
    for i = w - 1 downto 0 do
      output_char oc (if Bitvec.bit v i then '1' else '0')
    done;
    Printf.fprintf oc " %s\n" id
  end

(* VCD identifiers may not contain whitespace (it delimits the tokens
   of a [$var] line) and bracketed suffixes are reserved for the
   bit-select field. Hierarchical SoC names ("soc.sram0.mem[3]") are
   therefore split into a sanitised reference plus an index token. *)
let sanitize name =
  let safe c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '$' -> c
    | _ -> '_'
  in
  let s = String.map safe name in
  if s = "" then "_" else s

let split_index name =
  (* "mem[3]" -> ("mem", Some "[3]"); anything else -> (name, None) *)
  match String.rindex_opt name '[' with
  | Some i when String.length name > i + 1 && name.[String.length name - 1] = ']'
    -> (
      let idx = String.sub name (i + 1) (String.length name - i - 2) in
      match int_of_string_opt idx with
      | Some _ when i > 0 ->
          (String.sub name 0 i, Some (Printf.sprintf "[%s]" idx))
      | _ -> (name, None))
  | _ -> (name, None)

let attach engine oc ?(module_name = "top") exprs =
  let signals =
    List.mapi (fun i (name, e) -> (name, e, vcd_id i)) exprs
  in
  Printf.fprintf oc "$date reproduction run $end\n";
  Printf.fprintf oc "$version upec-ssc sim $end\n";
  Printf.fprintf oc "$timescale 1 ns $end\n";
  Printf.fprintf oc "$scope module %s $end\n" (sanitize module_name);
  List.iter
    (fun (name, e, id) ->
      let base, index = split_index name in
      match index with
      | Some idx ->
          Printf.fprintf oc "$var wire %d %s %s %s $end\n" (Expr.width e) id
            (sanitize base) idx
      | None ->
          Printf.fprintf oc "$var wire %d %s %s $end\n" (Expr.width e) id
            (sanitize name))
    signals;
  Printf.fprintf oc "$upscope $end\n$enddefinitions $end\n";
  let t =
    {
      oc;
      signals;
      last = Hashtbl.create (max 16 (List.length signals));
      time = 0;
      closed = false;
    }
  in
  Printf.fprintf oc "#0\n";
  List.iter
    (fun (_, e, id) ->
      let v = Engine.peek engine e in
      emit_value oc id v;
      Hashtbl.replace t.last id v)
    signals;
  Engine.on_step engine (fun eng ->
      if not t.closed then begin
        t.time <- t.time + 1;
        Printf.fprintf t.oc "#%d\n" t.time;
        List.iter
          (fun (_, e, id) ->
            let v = Engine.peek eng e in
            let changed =
              match Hashtbl.find_opt t.last id with
              | Some prev -> not (Bitvec.equal prev v)
              | None -> true
            in
            if changed then begin
              emit_value t.oc id v;
              Hashtbl.replace t.last id v
            end)
          t.signals
      end);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Final timestamp: without it viewers clip the dump at the last
       change, hiding the final cycle's values. *)
    Printf.fprintf t.oc "#%d\n" (t.time + 1);
    (* The on_step hook cannot be detached, but it can be made free:
       drop the expression list (so nothing is evaluated or retained)
       and the last-value table. *)
    t.signals <- [];
    Hashtbl.reset t.last;
    flush t.oc
  end
