open Rtl

(** VCD (Value Change Dump) waveform writer.

    Attach to an engine to dump the values of selected expressions after
    every step; the resulting file can be opened with GTKWave or any VCD
    viewer. *)

type t

val attach :
  Engine.t -> out_channel -> ?module_name:string -> (string * Expr.t) list -> t
(** Write the VCD header now and a snapshot after every subsequent step.
    The channel is flushed but not closed by {!close}. Signal names are
    sanitised to the VCD identifier alphabet and a trailing ["[i]"]
    (memory cell) becomes the standard bit-select token, so
    hierarchical SoC names are emitted well-formed. *)

val close : t -> unit
(** Stop recording (detaches are not possible; the hook becomes a
    no-op and releases the signal expressions and last-value table),
    emit a final [#time] marker so the last cycle stays visible in
    viewers, and flush the channel. Idempotent. *)
