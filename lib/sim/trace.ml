open Rtl

type t = {
  names : string array;
  index : (string, int) Hashtbl.t;  (** name -> column *)
  exprs : Expr.t array;
  mutable rows : Bitvec.t array array;  (** growable; [len] rows valid *)
  mutable len : int;
}

let attach engine exprs =
  let names = Array.of_list (List.map fst exprs) in
  let index = Hashtbl.create (max 16 (Array.length names)) in
  Array.iteri
    (fun i n -> if not (Hashtbl.mem index n) then Hashtbl.add index n i)
    names;
  let t =
    {
      names;
      index;
      exprs = Array.of_list (List.map snd exprs);
      rows = [||];
      len = 0;
    }
  in
  Engine.on_step engine (fun eng ->
      if t.len = Array.length t.rows then begin
        let cap = max 16 (2 * Array.length t.rows) in
        let rows = Array.make cap [||] in
        Array.blit t.rows 0 rows 0 t.len;
        t.rows <- rows
      end;
      t.rows.(t.len) <- Array.map (fun e -> Engine.peek eng e) t.exprs;
      t.len <- t.len + 1);
  t

let length t = t.len

let index_of t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Trace.index_of: unknown signal " ^ name)

let get t name cycle =
  let idx = index_of t name in
  if cycle < 0 || cycle >= t.len then
    invalid_arg "Trace.get: cycle out of range";
  t.rows.(cycle).(idx)

let series t name =
  let idx = index_of t name in
  List.init t.len (fun c -> t.rows.(c).(idx))

let pp fmt t =
  Format.fprintf fmt "@[<v>cycle  %s@,"
    (String.concat "  " (Array.to_list t.names));
  for c = 0 to t.len - 1 do
    Format.fprintf fmt "%5d  %s@," c
      (String.concat "  "
         (Array.to_list (Array.map Bitvec.to_string t.rows.(c))))
  done;
  Format.fprintf fmt "@]"
