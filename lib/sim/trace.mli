open Rtl

(** Bounded recording of named expressions over simulation cycles. *)

type t

val attach : Engine.t -> (string * Expr.t) list -> t
(** Record the given expressions after every subsequent step of the
    engine. Values are evaluated post-edge (i.e. they reflect the state
    after the clock edge of that cycle). *)

val length : t -> int
(** Number of recorded cycles. *)

val get : t -> string -> int -> Bitvec.t
(** [get t name cycle] is the recorded value; [cycle] counts from 0 =
    first recorded step. O(1). Raises [Invalid_argument] for an
    unknown signal name or an out-of-range cycle. *)

val series : t -> string -> Bitvec.t list
(** All recorded values of one signal, oldest first. Raises
    [Invalid_argument] for an unknown signal name. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump, one row per cycle. *)
