module Coi = struct
  type stats = {
    total_nodes : int;
    total_ands : int;
    cone_nodes : int;
    cone_ands : int;
  }

  (* Iterative DFS: unrolled miters nest thousands of AND levels, so a
     recursive walk would overflow the stack. *)
  let reachable g ~roots =
    let seen = Array.make (Aig.num_nodes g) false in
    let stack = ref (List.rev_map Aig.node_of roots) in
    let push n = if not seen.(n) then stack := n :: !stack in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
          stack := rest;
          if not seen.(n) then begin
            seen.(n) <- true;
            match Aig.fanins g n with
            | None -> ()
            | Some (a, b) ->
                push (Aig.node_of a);
                push (Aig.node_of b)
          end
    done;
    seen

  (* Early-exit cone/delta intersection: walks the fan-in of [roots]
     but stops at the first node flagged in [changed]. The farm uses
     this to ask "can this RTL delta influence that proof obligation?"
     without materialising the full cone. *)
  let intersects g ~roots ~changed =
    if Array.length changed <> Aig.num_nodes g then
      invalid_arg "Simp.Coi.intersects: changed array length mismatch";
    let seen = Array.make (Aig.num_nodes g) false in
    let stack = ref (List.rev_map Aig.node_of roots) in
    let push n = if not seen.(n) then stack := n :: !stack in
    let hit = ref false in
    while (not !hit) && !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
          stack := rest;
          if not seen.(n) then begin
            seen.(n) <- true;
            if changed.(n) then hit := true
            else
              match Aig.fanins g n with
              | None -> ()
              | Some (a, b) ->
                  push (Aig.node_of a);
                  push (Aig.node_of b)
          end
    done;
    !hit

  let stats g ~roots =
    let seen = reachable g ~roots in
    let cone_nodes = ref 0 and cone_ands = ref 0 in
    Array.iteri
      (fun n in_cone ->
        if in_cone then begin
          incr cone_nodes;
          if Aig.fanins g n <> None then incr cone_ands
        end)
      seen;
    {
      total_nodes = Aig.num_nodes g;
      total_ands = Aig.num_ands g;
      cone_nodes = !cone_nodes;
      cone_ands = !cone_ands;
    }

  let pp_stats fmt s =
    Format.fprintf fmt "cone %d/%d nodes (%d/%d ands)" s.cone_nodes
      s.total_nodes s.cone_ands s.total_ands
end

module Sweep = struct
  type t = {
    sg : Aig.t;
    map : (int, Aig.lit) Hashtbl.t;  (* original node -> rebuilt positive lit *)
  }

  let m_rebuilds = Obs.Metrics.counter "simp.rebuilds"
  let h_rebuild = Obs.Metrics.histogram "simp.rebuild_seconds"

  let mapped_lit map l =
    match Hashtbl.find_opt map (Aig.node_of l) with
    | None -> None
    | Some p -> Some (if Aig.complemented l then Aig.lit_not p else p)

  let rebuild_core g ~roots =
    let sg = Aig.create () in
    let map = Hashtbl.create 4096 in
    Hashtbl.add map 0 Aig.true_lit;
    (* Post-order over the cone with an explicit stack: a node is
       rebuilt once both fanins are; mk_and re-runs strashing and the
       local constant rules over the kept logic. *)
    let rec visit stack =
      match stack with
      | [] -> ()
      | n :: rest when Hashtbl.mem map n -> visit rest
      | n :: rest -> (
          match Aig.fanins g n with
          | None ->
              Hashtbl.add map n (Aig.fresh_var sg);
              visit rest
          | Some (a, b) -> (
              match (mapped_lit map a, mapped_lit map b) with
              | Some ma, Some mb ->
                  Hashtbl.add map n (Aig.mk_and sg ma mb);
                  visit rest
              | ma, mb ->
                  let need l = function
                    | Some _ -> []
                    | None -> [ Aig.node_of l ]
                  in
                  visit (need a ma @ need b mb @ stack)))
    in
    visit (List.map Aig.node_of roots);
    { sg; map }

  let rebuild g ~roots =
    Obs.Metrics.incr m_rebuilds;
    Obs.Metrics.time h_rebuild (fun () ->
        Obs.Trace.with_span "simp.rebuild"
          ~attrs:
            [
              ("full_nodes", Obs.Trace.Int (Aig.num_nodes g));
              ("roots", Obs.Trace.Int (List.length roots));
            ]
          (fun () -> rebuild_core g ~roots))

  let graph t = t.sg

  let map t l =
    match mapped_lit t.map l with
    | Some m -> m
    | None -> invalid_arg "Simp.Sweep.map: literal outside the rebuilt cone"
end

type reduction = {
  red_solves : int;
  red_full_vars : int;
  red_full_clauses : int;
  red_vars : int;
  red_clauses : int;
}

let zero_reduction =
  {
    red_solves = 0;
    red_full_vars = 0;
    red_full_clauses = 0;
    red_vars = 0;
    red_clauses = 0;
  }

let merge_reduction a b =
  {
    red_solves = a.red_solves + b.red_solves;
    red_full_vars = max a.red_full_vars b.red_full_vars;
    red_full_clauses = max a.red_full_clauses b.red_full_clauses;
    red_vars = max a.red_vars b.red_vars;
    red_clauses = max a.red_clauses b.red_clauses;
  }

let pp_reduction fmt r =
  Format.fprintf fmt
    "%d reduced solve(s); vars %d -> %d, clauses %d -> %d" r.red_solves
    r.red_full_vars r.red_vars r.red_full_clauses r.red_clauses
