(** Problem reduction over And-Inverter Graphs.

    A proof engine's AIG holds the {e whole} two-instance miter —
    every state variable, input and parameter of every materialised
    frame — while any single proof obligation only constrains the
    logic that can reach its root literals. This module computes that
    cone of influence and rebuilds it into a fresh, compact graph:

    - {b cone of influence} ({!Coi}): the transitive fan-in of a set
      of root literals, with size accounting against the full graph;
    - {b sweeping rebuild} ({!Sweep}): re-derives the cone bottom-up
      through {!Aig.mk_and}, so structural hashing and the local
      constant-propagation rules (absorption of constants, [x & x],
      [x & ¬x]) run again over exactly the kept logic, and node
      numbering becomes dense — the Tseitin encoding of the rebuilt
      graph is the reduced CNF.

    Reductions are verdict-preserving by construction: the rebuilt
    cone is structurally equivalent to the original cone, and Tseitin
    definitions of nodes {e outside} the constrained cone are
    satisfiable extensions (each dropped definition only names a fresh
    variable), so adding or removing them never flips SAT/UNSAT.
    See METHOD.md, "The reduction pipeline". *)

module Coi : sig
  type stats = {
    total_nodes : int;  (** nodes in the full graph (constant included) *)
    total_ands : int;
    cone_nodes : int;  (** nodes reachable from the roots *)
    cone_ands : int;
  }

  val reachable : Aig.t -> roots:Aig.lit list -> bool array
  (** Per-node membership in the transitive fan-in of [roots]
      (index = node; length = {!Aig.num_nodes}). *)

  val intersects : Aig.t -> roots:Aig.lit list -> changed:bool array -> bool
  (** Whether the transitive fan-in of [roots] contains a node flagged
      in [changed] (indexed like {!reachable}'s result). Early-exits
      on the first hit, so a positive answer can be much cheaper than
      {!reachable}; used for cache-invalidation queries ("can this
      delta influence that obligation?"). [Invalid_argument] when
      [changed] does not cover the graph. *)

  val stats : Aig.t -> roots:Aig.lit list -> stats

  val pp_stats : Format.formatter -> stats -> unit
end

module Sweep : sig
  type t
  (** A rebuilt cone: a fresh graph plus the literal map into it. *)

  val rebuild : Aig.t -> roots:Aig.lit list -> t
  (** Rebuild the cone of [roots] into a fresh graph. Emits a
      [simp.rebuild] span and bumps the [simp.rebuilds] counter. *)

  val graph : t -> Aig.t

  val map : t -> Aig.lit -> Aig.lit
  (** Image of an original literal in the rebuilt graph. Raises
      [Invalid_argument] for literals outside the rebuilt cone. *)
end

(** {1 Reduction accounting}

    What an engine actually solved versus what the unreduced encoding
    would have been; surfaced in reports and the smoke bench. *)

type reduction = {
  red_solves : int;  (** solves answered on a reduced problem *)
  red_full_vars : int;  (** CNF vars of the unreduced encoding *)
  red_full_clauses : int;
  red_vars : int;  (** CNF vars actually given to the solver *)
  red_clauses : int;
}

val zero_reduction : reduction

val merge_reduction : reduction -> reduction -> reduction
(** Solve counts add; sizes take the componentwise maximum (the
    representative largest problem across engines). *)

val pp_reduction : Format.formatter -> reduction -> unit
