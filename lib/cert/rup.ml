(* Forward RUP certificate checker.

   This is a deliberately independent implementation: the only machinery
   is unit propagation over a clause database, written from scratch —
   none of the solver's search loop, conflict analysis, restart or
   deletion heuristics are involved. A clause C is RUP (reverse unit
   propagable) w.r.t. a database F when asserting the negation of every
   literal of C and running unit propagation on F yields a conflict;
   equivalently, F entails C by the weakest useful proof system. A DRUP
   certificate is valid when every added clause is RUP w.r.t. the
   original formula plus the earlier (undeleted) additions, and the
   stream ends in a derived conflict.

   Literals are manipulated in the [Satsolver.Lit] int encoding
   (2*var + sign bit, negation = [lxor 1]) — sharing the encoding is
   what lets the checker consume the solver's certificate directly. *)

module L = Satsolver.Lit

type clause = { c_lits : int array; mutable c_active : bool }

(* growable watch list *)
type wvec = { mutable data : clause array; mutable len : int }

let dummy = { c_lits = [||]; c_active = false }
let wvec () = { data = [||]; len = 0 }

let wpush v c =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- c;
  v.len <- v.len + 1

type t = {
  mutable nv : int;
  mutable assigns : int array;  (* by var: 0 unset, 1 true, -1 false *)
  mutable watches : wvec array;  (* by lit code: clauses watching it *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  index : (int list, clause list ref) Hashtbl.t;  (* for deletions *)
  mutable contradiction : bool;  (* empty clause derived / root conflict *)
  mutable props : int;
}

let create nvars =
  let nv = max 1 nvars in
  {
    nv;
    assigns = Array.make nv 0;
    watches = Array.init (2 * nv) (fun _ -> wvec ());
    trail = Array.make (max 16 nv) 0;
    trail_len = 0;
    qhead = 0;
    index = Hashtbl.create 1024;
    contradiction = false;
    props = 0;
  }

let ensure_var st v =
  if v >= st.nv then begin
    let nv = max (v + 1) (2 * st.nv) in
    let assigns = Array.make nv 0 in
    Array.blit st.assigns 0 assigns 0 st.nv;
    let watches = Array.init (2 * nv) (fun _ -> wvec ()) in
    Array.blit st.watches 0 watches 0 (2 * st.nv);
    st.assigns <- assigns;
    st.watches <- watches;
    st.nv <- nv
  end

let value st l =
  let a = st.assigns.(l lsr 1) in
  if l land 1 = 0 then a else -a

let enqueue st l =
  st.assigns.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
  if st.trail_len = Array.length st.trail then begin
    let trail = Array.make (2 * st.trail_len) 0 in
    Array.blit st.trail 0 trail 0 st.trail_len;
    st.trail <- trail
  end;
  st.trail.(st.trail_len) <- l;
  st.trail_len <- st.trail_len + 1

exception Conflict

let propagate st =
  while st.qhead < st.trail_len do
    let p = st.trail.(st.qhead) in
    st.qhead <- st.qhead + 1;
    st.props <- st.props + 1;
    let fl = p lxor 1 in
    (* every clause watching [fl] — which just became false *)
    let ws = st.watches.(fl) in
    let i = ref 0 in
    while !i < ws.len do
      let c = ws.data.(!i) in
      if not c.c_active then begin
        ws.data.(!i) <- ws.data.(ws.len - 1);
        ws.len <- ws.len - 1
      end
      else begin
        if c.c_lits.(0) = fl then begin
          c.c_lits.(0) <- c.c_lits.(1);
          c.c_lits.(1) <- fl
        end;
        if value st c.c_lits.(0) = 1 then incr i
        else begin
          let n = Array.length c.c_lits in
          let k = ref 2 in
          while !k < n && value st c.c_lits.(!k) = -1 do
            incr k
          done;
          if !k < n then begin
            c.c_lits.(1) <- c.c_lits.(!k);
            c.c_lits.(!k) <- fl;
            wpush st.watches.(c.c_lits.(1)) c;
            ws.data.(!i) <- ws.data.(ws.len - 1);
            ws.len <- ws.len - 1
          end
          else if value st c.c_lits.(0) = -1 then raise Conflict
          else begin
            if value st c.c_lits.(0) = 0 then enqueue st c.c_lits.(0);
            incr i
          end
        end
      end
    done
  done

let propagate_root st =
  try propagate st
  with Conflict ->
    st.contradiction <- true;
    st.qhead <- st.trail_len

(* [lits] sorted, deduplicated, tautology-free *)
let insert st lits =
  Array.iter (fun l -> ensure_var st (l lsr 1)) lits;
  let key = Array.to_list lits in
  let cl = { c_lits = Array.copy lits; c_active = true } in
  (match Hashtbl.find_opt st.index key with
  | Some r -> r := cl :: !r
  | None -> Hashtbl.add st.index key (ref [ cl ]));
  let n = Array.length cl.c_lits in
  if n = 0 then st.contradiction <- true
  else begin
    (* bring up to two non-false literals to the watch positions *)
    let w = ref 0 in
    (try
       for k = 0 to n - 1 do
         if value st cl.c_lits.(k) <> -1 then begin
           let tmp = cl.c_lits.(!w) in
           cl.c_lits.(!w) <- cl.c_lits.(k);
           cl.c_lits.(k) <- tmp;
           incr w;
           if !w = 2 then raise Exit
         end
       done
     with Exit -> ());
    if !w = 0 then st.contradiction <- true
    else if !w = 1 then begin
      (* unit (or already satisfied) at level 0: the remaining literals
         are permanently false, so the clause can never be watched —
         record its level-0 consequence instead *)
      if value st cl.c_lits.(0) = 0 then begin
        enqueue st cl.c_lits.(0);
        propagate_root st
      end
    end
    else begin
      wpush st.watches.(cl.c_lits.(0)) cl;
      wpush st.watches.(cl.c_lits.(1)) cl
    end
  end

(* Is asserting the negation of [lits] refuted by unit propagation?
   Temporary assignments are undone before returning. *)
let rup_implied st lits =
  st.contradiction
  ||
  let root = st.trail_len in
  let ok = ref false in
  (try
     Array.iter
       (fun l ->
         ensure_var st (l lsr 1);
         match value st l with
         | 1 -> raise Exit (* contains a level-0 truth: trivially implied *)
         | -1 -> ()
         | _ -> enqueue st (l lxor 1))
       lits;
     try propagate st with Conflict -> ok := true
   with Exit -> ok := true);
  for i = root to st.trail_len - 1 do
    st.assigns.(st.trail.(i) lsr 1) <- 0
  done;
  st.trail_len <- root;
  st.qhead <- root;
  !ok

let delete st lits =
  match Hashtbl.find_opt st.index (Array.to_list lits) with
  | Some r -> (
      match !r with
      | c :: rest ->
          (* lazy detach: propagation skips inactive clauses. Level-0
             assignments implied by the clause are kept (drat-trim
             forward-mode semantics; the solver never revokes them
             either). *)
          c.c_active <- false;
          r := rest;
          true
      | [] -> false)
  | None -> false

let assumptions_conflict st assumptions =
  st.contradiction
  ||
  let root = st.trail_len in
  let ok = ref false in
  (try
     List.iter
       (fun l ->
         ensure_var st (l lsr 1);
         match value st l with
         | -1 -> raise Exit (* assumption already refuted at level 0 *)
         | 1 -> ()
         | _ -> enqueue st l)
       assumptions;
     try propagate st with Conflict -> ok := true
   with Exit -> ok := true);
  for i = root to st.trail_len - 1 do
    st.assigns.(st.trail.(i) lsr 1) <- 0
  done;
  st.trail_len <- root;
  st.qhead <- root;
  !ok

(* ---- driver ---- *)

type summary = { adds : int; deletes : int; propagations : int }

exception Check_failed of string

let normalize lits =
  let sorted = List.sort_uniq Stdlib.compare lits in
  let rec tauto = function
    | a :: (b :: _ as rest) -> a lxor 1 = b || tauto rest
    | _ -> false
  in
  if tauto sorted then None else Some (Array.of_list sorted)

let check ?(assumptions = []) ~nvars ~clauses ~proof () =
  let st = create nvars in
  let adds = ref 0 and deletes = ref 0 in
  try
    List.iter
      (fun c ->
        match normalize (List.map L.to_int c) with
        | None -> () (* tautologies are vacuous *)
        | Some arr -> insert st arr)
      clauses;
    propagate_root st;
    List.iteri
      (fun i step ->
        match step with
        | Proof.Add lits -> (
            incr adds;
            match normalize (Array.to_list (Array.map L.to_int lits)) with
            | None -> () (* a tautology is trivially implied *)
            | Some arr ->
                if rup_implied st arr then insert st arr
                else
                  raise
                    (Check_failed
                       (Printf.sprintf
                          "step %d: added clause is not implied by unit \
                           propagation"
                          i)))
        | Proof.Delete lits -> (
            incr deletes;
            match normalize (Array.to_list (Array.map L.to_int lits)) with
            | None ->
                raise
                  (Check_failed
                     (Printf.sprintf "step %d: deletion of a tautology" i))
            | Some arr ->
                if not (delete st arr) then
                  raise
                    (Check_failed
                       (Printf.sprintf
                          "step %d: deleted clause is not in the database" i))))
      proof;
    if
      st.contradiction
      || assumptions_conflict st (List.map L.to_int assumptions)
    then Ok { adds = !adds; deletes = !deletes; propagations = st.props }
    else
      Error
        "certificate does not derive a conflict: no empty clause was added \
         and unit propagation under the assumptions succeeds"
  with Check_failed msg -> Error msg
