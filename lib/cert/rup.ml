(* Forward RUP certificate checker.

   This is a deliberately independent implementation: the only machinery
   is unit propagation over a clause database, written from scratch —
   none of the solver's search loop, conflict analysis, restart or
   deletion heuristics are involved. A clause C is RUP (reverse unit
   propagable) w.r.t. a database F when asserting the negation of every
   literal of C and running unit propagation on F yields a conflict;
   equivalently, F entails C by the weakest useful proof system. A DRUP
   certificate is valid when every added clause is RUP w.r.t. the
   original formula plus the earlier (undeleted) additions, and the
   stream ends in a derived conflict.

   Literals are manipulated in the [Satsolver.Lit] int encoding
   (2*var + sign bit, negation = [lxor 1]) — sharing the encoding is
   what lets the checker consume the solver's certificate directly.

   Clause storage is a flat arena: one int array of literal payload plus
   offset/size tables, clauses named by dense ids in insertion order.
   The arena arrays are append-only — nothing mutates a clause once
   written (the classic watched-literal trick of swapping lits in place
   is replaced by per-state watch side-tables [wa]/[wb]) — so a state
   can be forked for a parallel shard ({!Pipeline}) by capturing the
   array references plus a copy of the small active-flag prefix: the
   literal payload is shared, immutable and safe to read from another
   domain once the capture is published with a happens-before edge. *)

module L = Satsolver.Lit

(* growable int vector (watch lists of clause ids) *)
type ivec = { mutable data : int array; mutable len : int }

let ivec () = { data = [||]; len = 0 }

let ipush v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

type t = {
  (* arena: shared, append-only clause payload. A forked shard holds
     captures of these arrays; the owner may grow them (replacing the
     reference with a larger copy), which never disturbs a capture. *)
  mutable a_data : int array;  (* flat literal payload *)
  mutable a_dlen : int;
  mutable a_offs : int array;  (* cid -> offset into a_data *)
  mutable a_sizes : int array;  (* cid -> literal count *)
  mutable a_n : int;  (* clause ids in [0, a_n) are readable *)
  (* activity flags. cids < base live in [prefix_active] (a private
     copy taken at fork time); cids >= base in [active], index - base.
     An owner state has base = 0. *)
  base : int;
  prefix_active : Bytes.t;
  mutable active : Bytes.t;
  (* the two watched literals of each watched clause, by cid; -1 when
     the clause is unwatched (unit or empty at activation) *)
  mutable wa : int array;
  mutable wb : int array;
  mutable nv : int;
  mutable assigns : int array;  (* by var: 0 unset, 1 true, -1 false *)
  mutable watches : ivec array;  (* by lit code: cids watching it *)
  mutable trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  index : (int list, int list ref) Hashtbl.t;  (* for deletions *)
  mutable contradiction : bool;  (* empty clause derived / root conflict *)
  mutable props : int;
}

let create nvars =
  let nv = max 1 nvars in
  {
    a_data = Array.make 1024 0;
    a_dlen = 0;
    a_offs = Array.make 256 0;
    a_sizes = Array.make 256 0;
    a_n = 0;
    base = 0;
    prefix_active = Bytes.empty;
    active = Bytes.make 256 '\000';
    wa = Array.make 256 (-1);
    wb = Array.make 256 (-1);
    nv;
    assigns = Array.make nv 0;
    watches = Array.init (2 * nv) (fun _ -> ivec ());
    trail = Array.make (max 16 nv) 0;
    trail_len = 0;
    qhead = 0;
    index = Hashtbl.create 1024;
    contradiction = false;
    props = 0;
  }

let ensure_var st v =
  if v >= st.nv then begin
    let nv = max (v + 1) (2 * st.nv) in
    let assigns = Array.make nv 0 in
    Array.blit st.assigns 0 assigns 0 st.nv;
    let watches = Array.init (2 * nv) (fun _ -> ivec ()) in
    Array.blit st.watches 0 watches 0 (2 * st.nv);
    st.assigns <- assigns;
    st.watches <- watches;
    st.nv <- nv
  end

(* make [wa]/[wb]/[active] indexable at [cid] *)
let ensure_cid st cid =
  (if cid >= Array.length st.wa then begin
     let cap = max (cid + 1) (2 * Array.length st.wa) in
     let wa = Array.make cap (-1) and wb = Array.make cap (-1) in
     Array.blit st.wa 0 wa 0 (Array.length st.wa);
     Array.blit st.wb 0 wb 0 (Array.length st.wb);
     st.wa <- wa;
     st.wb <- wb
   end);
  if cid >= st.base then begin
    let i = cid - st.base in
    if i >= Bytes.length st.active then begin
      let cap = max (i + 1) (2 * Bytes.length st.active) in
      let b = Bytes.make cap '\000' in
      Bytes.blit st.active 0 b 0 (Bytes.length st.active);
      st.active <- b
    end
  end

let is_active st cid =
  if cid < st.base then Bytes.unsafe_get st.prefix_active cid <> '\000'
  else Bytes.unsafe_get st.active (cid - st.base) <> '\000'

let set_active st cid v =
  let c = if v then '\001' else '\000' in
  if cid < st.base then Bytes.set st.prefix_active cid c
  else Bytes.set st.active (cid - st.base) c

let clause_lits st cid =
  Array.sub st.a_data st.a_offs.(cid) st.a_sizes.(cid)

(* append [lits] to the arena (no activation); returns the new cid *)
let arena_add st lits =
  let n = Array.length lits in
  if st.a_dlen + n > Array.length st.a_data then begin
    let cap = max (st.a_dlen + n) (2 * Array.length st.a_data) in
    let data = Array.make cap 0 in
    Array.blit st.a_data 0 data 0 st.a_dlen;
    st.a_data <- data
  end;
  if st.a_n = Array.length st.a_offs then begin
    let cap = 2 * Array.length st.a_offs in
    let offs = Array.make cap 0 and sizes = Array.make cap 0 in
    Array.blit st.a_offs 0 offs 0 st.a_n;
    Array.blit st.a_sizes 0 sizes 0 st.a_n;
    st.a_offs <- offs;
    st.a_sizes <- sizes
  end;
  Array.blit lits 0 st.a_data st.a_dlen n;
  st.a_offs.(st.a_n) <- st.a_dlen;
  st.a_sizes.(st.a_n) <- n;
  st.a_dlen <- st.a_dlen + n;
  let cid = st.a_n in
  st.a_n <- st.a_n + 1;
  cid

let value st l =
  let a = st.assigns.(l lsr 1) in
  if l land 1 = 0 then a else -a

let enqueue st l =
  st.assigns.(l lsr 1) <- (if l land 1 = 0 then 1 else -1);
  if st.trail_len = Array.length st.trail then begin
    let trail = Array.make (2 * st.trail_len) 0 in
    Array.blit st.trail 0 trail 0 st.trail_len;
    st.trail <- trail
  end;
  st.trail.(st.trail_len) <- l;
  st.trail_len <- st.trail_len + 1

exception Conflict

let propagate st =
  while st.qhead < st.trail_len do
    let p = st.trail.(st.qhead) in
    st.qhead <- st.qhead + 1;
    st.props <- st.props + 1;
    let fl = p lxor 1 in
    (* every clause watching [fl] — which just became false *)
    let ws = st.watches.(fl) in
    let i = ref 0 in
    while !i < ws.len do
      let cid = ws.data.(!i) in
      if not (is_active st cid) then begin
        ws.data.(!i) <- ws.data.(ws.len - 1);
        ws.len <- ws.len - 1
      end
      else begin
        let la = st.wa.(cid) in
        let lb = st.wb.(cid) in
        let other = if la = fl then lb else la in
        if value st other = 1 then incr i
        else begin
          let off = st.a_offs.(cid) in
          let n = st.a_sizes.(cid) in
          let repl = ref (-1) in
          let k = ref 0 in
          while !repl < 0 && !k < n do
            let l = st.a_data.(off + !k) in
            if l <> la && l <> lb && value st l <> -1 then repl := l;
            incr k
          done;
          if !repl >= 0 then begin
            (* move this clause's watch from [fl] to the replacement *)
            (if la = fl then st.wa.(cid) <- !repl else st.wb.(cid) <- !repl);
            ipush st.watches.(!repl) cid;
            ws.data.(!i) <- ws.data.(ws.len - 1);
            ws.len <- ws.len - 1
          end
          else if value st other = -1 then raise Conflict
          else begin
            if value st other = 0 then enqueue st other;
            incr i
          end
        end
      end
    done
  done

let propagate_root st =
  try propagate st
  with Conflict ->
    st.contradiction <- true;
    st.qhead <- st.trail_len

(* Activate an arena clause: set its flag, establish watches, record a
   level-0 consequence if it is unit. [lits] sorted, deduplicated,
   tautology-free (the invariant of every arena clause). *)
let activate st cid =
  let off = st.a_offs.(cid) in
  let n = st.a_sizes.(cid) in
  for k = 0 to n - 1 do
    ensure_var st (st.a_data.(off + k) lsr 1)
  done;
  ensure_cid st cid;
  set_active st cid true;
  if n = 0 then st.contradiction <- true
  else begin
    (* up to two non-false literals become the watches *)
    let w0 = ref (-1) and w1 = ref (-1) in
    let k = ref 0 in
    while !w1 < 0 && !k < n do
      let l = st.a_data.(off + !k) in
      if value st l <> -1 then if !w0 < 0 then w0 := l else w1 := l;
      incr k
    done;
    if !w0 < 0 then st.contradiction <- true
    else if !w1 < 0 then begin
      (* unit (or already satisfied) at level 0: the remaining literals
         are permanently false, so the clause can never be watched —
         record its level-0 consequence instead *)
      st.wa.(cid) <- -1;
      st.wb.(cid) <- -1;
      if value st !w0 = 0 then begin
        enqueue st !w0;
        propagate_root st
      end
    end
    else begin
      st.wa.(cid) <- !w0;
      st.wb.(cid) <- !w1;
      ipush st.watches.(!w0) cid;
      ipush st.watches.(!w1) cid
    end
  end

(* [lits] sorted, deduplicated, tautology-free *)
let insert st lits =
  let cid = arena_add st lits in
  let key = Array.to_list lits in
  (match Hashtbl.find_opt st.index key with
  | Some r -> r := cid :: !r
  | None -> Hashtbl.add st.index key (ref [ cid ]));
  activate st cid;
  cid

(* Is asserting the negation of [lits] refuted by unit propagation?
   Temporary assignments are undone before returning. *)
let rup_implied st lits =
  st.contradiction
  ||
  let root = st.trail_len in
  let ok = ref false in
  (try
     Array.iter
       (fun l ->
         ensure_var st (l lsr 1);
         match value st l with
         | 1 -> raise Exit (* contains a level-0 truth: trivially implied *)
         | -1 -> ()
         | _ -> enqueue st (l lxor 1))
       lits;
     try propagate st with Conflict -> ok := true
   with Exit -> ok := true);
  for i = root to st.trail_len - 1 do
    st.assigns.(st.trail.(i) lsr 1) <- 0
  done;
  st.trail_len <- root;
  st.qhead <- root;
  !ok

let deactivate st cid =
  (* lazy detach: propagation skips inactive clauses. Level-0
     assignments implied by the clause are kept (drat-trim forward-mode
     semantics; the solver never revokes them either). *)
  set_active st cid false

let delete st lits =
  match Hashtbl.find_opt st.index (Array.to_list lits) with
  | Some r -> (
      match !r with
      | cid :: rest ->
          deactivate st cid;
          r := rest;
          Some cid
      | [] -> None)
  | None -> None

let assumptions_conflict st assumptions =
  st.contradiction
  ||
  let root = st.trail_len in
  let ok = ref false in
  (try
     List.iter
       (fun l ->
         ensure_var st (l lsr 1);
         match value st l with
         | -1 -> raise Exit (* assumption already refuted at level 0 *)
         | 1 -> ()
         | _ -> enqueue st l)
       assumptions;
     try propagate st with Conflict -> ok := true
   with Exit -> ok := true);
  for i = root to st.trail_len - 1 do
    st.assigns.(st.trail.(i) lsr 1) <- 0
  done;
  st.trail_len <- root;
  st.qhead <- root;
  !ok

(* Fork a checker state for one shard: share (by reference) captured
   arena arrays — append-only, so entries below [visible] are immutable
   wherever the references travel — plus a snapshot of the small
   mutable state: activity prefix (ownership transfers to the fork),
   trusted root trail, contradiction flag. The snapshot values describe
   the database at epoch start, which is earlier than the owner's
   current state — that is why they are explicit arguments rather than
   read off an owner state (reading the owner's mutable fields from
   another domain would also be a race). The caller is responsible for
   the happens-before edge when the fork crosses domains. *)
let fork ~data ~offs ~sizes ~visible ~base ~prefix_active ~trail ~trail_len
    ~contradiction ~nv =
  let nv = max 1 nv in
  let sh =
    {
      a_data = data;
      a_dlen = 0;
      (* owner-only; a fork never appends *)
      a_offs = offs;
      a_sizes = sizes;
      a_n = visible;
      base;
      prefix_active;
      active = Bytes.make (max 16 (visible - base)) '\000';
      wa = Array.make (max 16 visible) (-1);
      wb = Array.make (max 16 visible) (-1);
      nv;
      assigns = Array.make nv 0;
      watches = Array.init (2 * nv) (fun _ -> ivec ());
      trail = Array.make (max 16 nv) 0;
      trail_len = 0;
      qhead = 0;
      index = Hashtbl.create 64;
      contradiction;
      props = 0;
    }
  in
  (* The snapshot trail is already a unit-propagation fixpoint of the
     active prefix (the owner propagates to fixpoint after every
     insertion and deletions never unassign), so its literals are
     replanted as trusted facts and the queue head skips them. *)
  for i = 0 to trail_len - 1 do
    let l = trail.(i) in
    ensure_var sh (l lsr 1);
    enqueue sh l
  done;
  sh.qhead <- sh.trail_len;
  (* watch the active prefix. No clause of it is unit-with-unset-lit
     (that consequence would already be on the trail), so this builds
     watches without triggering propagation. *)
  for cid = 0 to base - 1 do
    if Bytes.get prefix_active cid <> '\000' then activate sh cid
  done;
  sh

(* ---- driver ---- *)

type summary = { adds : int; deletes : int; propagations : int }

exception Check_failed of string

let normalize lits =
  let sorted = List.sort_uniq Stdlib.compare lits in
  let rec tauto = function
    | a :: (b :: _ as rest) -> a lxor 1 = b || tauto rest
    | _ -> false
  in
  if tauto sorted then None else Some (Array.of_list sorted)

let load_cnf st clauses =
  List.iter
    (fun c ->
      match normalize (List.map L.to_int c) with
      | None -> () (* tautologies are vacuous *)
      | Some arr -> ignore (insert st arr))
    clauses;
  propagate_root st

let final_conflict st assumptions =
  st.contradiction || assumptions_conflict st (List.map L.to_int assumptions)

let no_conflict_reason =
  "certificate does not derive a conflict: no empty clause was added and \
   unit propagation under the assumptions succeeds"

let check ?(assumptions = []) ~nvars ~clauses ~proof () =
  let st = create nvars in
  let adds = ref 0 and deletes = ref 0 in
  try
    load_cnf st clauses;
    List.iteri
      (fun i step ->
        match step with
        | Proof.Add lits -> (
            incr adds;
            match normalize (Array.to_list (Array.map L.to_int lits)) with
            | None -> () (* a tautology is trivially implied *)
            | Some arr ->
                if rup_implied st arr then ignore (insert st arr)
                else
                  raise
                    (Check_failed
                       (Printf.sprintf
                          "step %d: added clause is not implied by unit \
                           propagation"
                          i)))
        | Proof.Delete lits -> (
            incr deletes;
            match normalize (Array.to_list (Array.map L.to_int lits)) with
            | None ->
                raise
                  (Check_failed
                     (Printf.sprintf "step %d: deletion of a tautology" i))
            | Some arr ->
                if delete st arr = None then
                  raise
                    (Check_failed
                       (Printf.sprintf
                          "step %d: deleted clause is not in the database" i))))
      proof;
    if final_conflict st assumptions then
      Ok { adds = !adds; deletes = !deletes; propagations = st.props }
    else Error no_conflict_reason
  with Check_failed msg -> Error msg
