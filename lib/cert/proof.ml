module S = Satsolver.Solver
module L = Satsolver.Lit

type step = Add of L.t array | Delete of L.t array

type t = {
  mutable rev_steps : step list;
  mutable n_adds : int;
  mutable n_deletes : int;
  mutable n_lits : int;
}

let create () = { rev_steps = []; n_adds = 0; n_deletes = 0; n_lits = 0 }

let record p step =
  (match step with
  | Add c ->
      p.n_adds <- p.n_adds + 1;
      p.n_lits <- p.n_lits + Array.length c
  | Delete c ->
      p.n_deletes <- p.n_deletes + 1;
      p.n_lits <- p.n_lits + Array.length c);
  p.rev_steps <- step :: p.rev_steps

let tracer p =
  {
    S.trace_add = (fun c -> record p (Add c));
    S.trace_delete = (fun c -> record p (Delete c));
    S.trace_barrier = ignore;
  }

let steps p = List.rev p.rev_steps
let of_steps steps =
  let p = create () in
  List.iter (record p) steps;
  p

let n_adds p = p.n_adds
let n_deletes p = p.n_deletes
let n_lits p = p.n_lits
let length p = p.n_adds + p.n_deletes

(* ---- DRUP text form ---- *)

let output_step fmt step =
  let clause prefix c =
    Format.fprintf fmt "%s" prefix;
    Array.iter (fun l -> Format.fprintf fmt "%d " (L.to_dimacs l)) c;
    Format.fprintf fmt "0@\n"
  in
  match step with Add c -> clause "" c | Delete c -> clause "d " c

let output_drup fmt p =
  List.iter (output_step fmt) (steps p);
  Format.fprintf fmt "@?"

let to_string p = Format.asprintf "%a" output_drup p

let file_tracer oc =
  let line prefix c =
    output_string oc prefix;
    Array.iter
      (fun l ->
        output_string oc (string_of_int (L.to_dimacs l));
        output_char oc ' ')
      c;
    output_string oc "0\n"
  in
  { S.trace_add = line ""; trace_delete = line "d "; trace_barrier = ignore }

let complete_marker = "c qed"
let truncated_marker = "c truncated"

let with_file_tracer path f =
  let oc = open_out path in
  match f (file_tracer oc) with
  | v ->
      output_string oc (complete_marker ^ "\n");
      close_out oc;
      v
  | exception e ->
      (* abnormal exit (budget exhaustion, interrupt, a certification
         failure raised mid-solve): still flush and close the sink, and
         stamp the file so a reader can tell a cut-short certificate
         from a complete one *)
      let bt = Printexc.get_raw_backtrace () in
      (try
         output_string oc (truncated_marker ^ "\n");
         close_out oc
       with _ -> close_out_noerr oc);
      Printexc.raise_with_backtrace e bt

type stream_end = Complete | Truncated | Unterminated

(* Line-incremental DRUP reader: pulls lines from [next] one at a time
   and emits each finished step, so a 100k-step certificate is checked
   in bounded memory — only the line and the clause under construction
   are live. The return value reports how the stream ended, from the
   marker lines stamped by [with_file_tracer] (or their absence). *)
let read_drup ~next ~emit =
  let current = ref [] in
  let deleting = ref false in
  let ending = ref Unterminated in
  let flush () =
    let c = Array.of_list (List.rev !current) in
    emit (if !deleting then Delete c else Add c);
    current := [];
    deleting := false
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some line ->
        let line = String.trim line in
        (* "c ..." comment lines — including the completion/truncation
           markers of [with_file_tracer] — are not proof steps *)
        if line = complete_marker then ending := Complete
        else if line = truncated_marker then ending := Truncated
        else if
          not
            (line = "c"
            || String.length line >= 2
               && line.[0] = 'c'
               && line.[1] = ' ')
        then
          String.split_on_char ' ' line
          |> List.iter (fun tok ->
                 match String.trim tok with
                 | "" -> ()
                 | "d" -> deleting := true
                 | tok -> (
                     match int_of_string_opt tok with
                     | Some 0 -> flush ()
                     | Some i -> current := L.of_dimacs i :: !current
                     | None -> failwith ("Proof.parse_drup: bad token " ^ tok)));
        loop ()
  in
  loop ();
  !ending

let line_reader_of_string text =
  let pos = ref 0 in
  let n = String.length text in
  fun () ->
    if !pos >= n then None
    else
      let stop =
        match String.index_from_opt text !pos '\n' with
        | Some i -> i
        | None -> n
      in
      let line = String.sub text !pos (stop - !pos) in
      pos := stop + 1;
      Some line

let read_drup_channel ic ~emit =
  read_drup ~next:(fun () -> In_channel.input_line ic) ~emit

let parse_drup text =
  let rev = ref [] in
  let (_ : stream_end) =
    read_drup
      ~next:(line_reader_of_string text)
      ~emit:(fun s -> rev := s :: !rev)
  in
  List.rev !rev

(* ---- certification accounting ---- *)

type totals = {
  unsat_checked : int;
  sat_checked : int;
  unknown_skipped : int;
  proof_steps : int;
  proof_lits : int;
  epochs : int;
  spilled_epochs : int;
  solve_seconds : float;
  check_seconds : float;
}

let zero_totals =
  {
    unsat_checked = 0;
    sat_checked = 0;
    unknown_skipped = 0;
    proof_steps = 0;
    proof_lits = 0;
    epochs = 0;
    spilled_epochs = 0;
    solve_seconds = 0.0;
    check_seconds = 0.0;
  }

let add_totals a b =
  {
    unsat_checked = a.unsat_checked + b.unsat_checked;
    sat_checked = a.sat_checked + b.sat_checked;
    unknown_skipped = a.unknown_skipped + b.unknown_skipped;
    proof_steps = a.proof_steps + b.proof_steps;
    proof_lits = a.proof_lits + b.proof_lits;
    epochs = a.epochs + b.epochs;
    spilled_epochs = a.spilled_epochs + b.spilled_epochs;
    solve_seconds = a.solve_seconds +. b.solve_seconds;
    check_seconds = a.check_seconds +. b.check_seconds;
  }

let pp_totals fmt t =
  Format.fprintf fmt
    "%d UNSAT proof(s) checked (%d steps, %d lits), %d model(s) checked; \
     solve %.3fs, check %.3fs"
    t.unsat_checked t.proof_steps t.proof_lits t.sat_checked t.solve_seconds
    t.check_seconds;
  if t.epochs > 0 then
    Format.fprintf fmt "; pipelined in %d epoch(s) (%d spilled)" t.epochs
      t.spilled_epochs;
  if t.unknown_skipped > 0 then
    Format.fprintf fmt "; %d unknown verdict(s) uncertified" t.unknown_skipped
