(** DRUP certificate recording.

    A proof is the ordered stream of clause additions and deletions
    emitted by {!Satsolver.Solver} through its tracer hook. Interpreted
    as a DRUP certificate, each added clause must be derivable from the
    original formula plus the earlier (undeleted) additions by unit
    propagation alone — which is exactly what {!Rup.check} verifies. *)

module L = Satsolver.Lit

type step = Add of L.t array | Delete of L.t array

type t
(** In-memory recorder (append-only). *)

val create : unit -> t
val record : t -> step -> unit
val tracer : t -> Satsolver.Solver.tracer
(** The sink to install with [Solver.set_tracer]. *)

val steps : t -> step list
(** Steps in emission order. *)

val of_steps : step list -> t

val n_adds : t -> int
val n_deletes : t -> int

val n_lits : t -> int
(** Total literal count over all steps — the certificate size. *)

val length : t -> int
(** Total step count. *)

val output_drup : Format.formatter -> t -> unit
(** Standard DRUP text: one clause per line, deletions prefixed [d],
    clauses terminated by [0]. *)

val to_string : t -> string

val file_tracer : out_channel -> Satsolver.Solver.tracer
(** A streaming sink writing DRUP text directly to a channel: bounded
    memory for proofs too large to keep in-core. *)

val complete_marker : string
(** Comment line stamped at the end of a DRUP file that was written to
    completion by {!with_file_tracer}. *)

val truncated_marker : string
(** Comment line stamped when the writer exited abnormally: the file is
    a valid DRUP prefix but not the whole certificate. *)

val with_file_tracer : string -> (Satsolver.Solver.tracer -> 'a) -> 'a
(** [with_file_tracer path f] opens [path], hands [f] a streaming DRUP
    sink, and {e always} closes the file: on normal return the file ends
    with {!complete_marker}, on an exception (budget exhaustion,
    interrupt, solver failure) it ends with {!truncated_marker} and the
    exception is re-raised — abnormal exits leave a truncation-detectable
    file, never a silently short one. *)

type stream_end =
  | Complete  (** the stream ended with {!complete_marker} *)
  | Truncated  (** the stream ended with {!truncated_marker} *)
  | Unterminated  (** no marker: writer died, or marker-less legacy text *)

val read_drup :
  next:(unit -> string option) -> emit:(step -> unit) -> stream_end
(** Line-incremental DRUP reader: pulls lines from [next] until it
    returns [None], emitting each completed step — bounded memory
    regardless of certificate size. Tolerates ["c ..."] comment lines
    and reports which end-of-stream marker (if any) was seen. Raises
    [Failure] on malformed input. *)

val read_drup_channel : in_channel -> emit:(step -> unit) -> stream_end
(** {!read_drup} over a channel's lines. *)

val parse_drup : string -> step list
(** Inverse of {!output_drup}: a thin list-building wrapper over
    {!read_drup}; tolerates ["c ..."] comment lines (such as the
    markers above); raises [Failure] on malformed input. *)

(** {1 Certification accounting} *)

type totals = {
  unsat_checked : int;  (** UNSAT verdicts revalidated by {!Rup.check} *)
  sat_checked : int;  (** SAT models revalidated by {!Model.check} *)
  unknown_skipped : int;
      (** solves that ended [Unknown] (budget exhausted / interrupted):
          nothing to certify, but the gap is accounted, not hidden *)
  proof_steps : int;
  proof_lits : int;
  epochs : int;  (** pipelined checking: proof epochs dispatched *)
  spilled_epochs : int;
      (** epochs that overflowed the checker queue and went to disk *)
  solve_seconds : float;  (** wall time of the certified solves *)
  check_seconds : float;
      (** wall time spent checking certificates; for pipelined
          certification, only the {e residual} drain after the solver
          finished — the overlapped work is hidden inside
          [solve_seconds] *)
}

val zero_totals : totals
val add_totals : totals -> totals -> totals
val pp_totals : Format.formatter -> totals -> unit
