(** Independent forward RUP certificate checker.

    Validates a DRUP certificate (a {!Proof.step} stream) against the
    original CNF using only unit propagation over its own clause
    database — none of the solver's search machinery is reused, so a
    bug in the solver's learning, restarts or deletion cannot also hide
    in the checker. The only shared convention is the literal encoding
    of {!Satsolver.Lit}.

    Clauses live in a flat, append-only arena (payload array + offset /
    size tables, dense ids in insertion order); watched literals are
    kept in per-state side tables rather than by reordering clause
    literals in place. Nothing ever mutates a written clause, so
    {!fork} can hand the arena prefix to a checker shard on another
    domain by reference — the basis of the pipelined parallel checker
    in {!Pipeline}. *)

module L = Satsolver.Lit

(** {1 High-level entry point} *)

type summary = {
  adds : int;  (** addition steps processed *)
  deletes : int;  (** deletion steps processed *)
  propagations : int;  (** literals propagated while checking *)
}

val check :
  ?assumptions:L.t list ->
  nvars:int ->
  clauses:L.t list list ->
  proof:Proof.step list ->
  unit ->
  (summary, string) result
(** [check ~assumptions ~nvars ~clauses ~proof ()] replays the
    certificate forward: each added clause must be derivable from the
    current database by unit propagation (or be satisfied at level 0);
    each deleted clause must be present. The certificate is accepted
    when a conflict is established — either the empty clause is derived
    (plain unsatisfiability), or, for UNSAT-under-assumptions verdicts,
    asserting the assumption literals makes unit propagation fail on
    the final database. Returns [Error reason] otherwise; a corrupted
    certificate is reported with its failing step index. *)

(** {1 Checker-state engine}

    Low-level interface used by {!Pipeline} (and by {!check} itself).
    The record is exposed so a coordinator can snapshot arena bounds and
    trail lengths without copying; treat every field as read-only unless
    you are the state's owner. *)

type ivec = { mutable data : int array; mutable len : int }

type t = {
  mutable a_data : int array;  (** arena: flat literal payload *)
  mutable a_dlen : int;
  mutable a_offs : int array;  (** arena: cid to offset *)
  mutable a_sizes : int array;  (** arena: cid to literal count *)
  mutable a_n : int;  (** clause ids in [\[0, a_n)] are readable *)
  base : int;
      (** activity of cids below [base] lives in [prefix_active] (a
          private copy taken by {!fork}); owner states have [base = 0] *)
  prefix_active : Bytes.t;
  mutable active : Bytes.t;  (** activity of cids at or above [base] *)
  mutable wa : int array;  (** watched literal per cid (-1: unwatched) *)
  mutable wb : int array;
  mutable nv : int;
  mutable assigns : int array;
  mutable watches : ivec array;
  mutable trail : int array;
  mutable trail_len : int;
  mutable qhead : int;
  index : (int list, int list ref) Hashtbl.t;
  mutable contradiction : bool;
  mutable props : int;
}

val create : int -> t
(** [create nvars] is a fresh owner state (empty arena). *)

val normalize : int list -> int array option
(** Sort, deduplicate; [None] for tautologies. Every clause entering
    the arena is normalized. *)

val insert : t -> int array -> int
(** Append a normalized clause to the arena, register it for deletion
    lookup, activate it (watches / level-0 consequence / contradiction).
    Returns its clause id. No RUP validation — callers decide whether
    the clause is trusted (CNF, coordinator replay) or must pass
    {!rup_implied} first (checking). *)

val delete : t -> int array -> int option
(** Deactivate the most recent active clause with these literals
    (lazy detach; level-0 consequences are kept, matching drat-trim's
    forward mode). Returns its cid, or [None] if absent. *)

val activate : t -> int -> unit
(** Activate an arena clause by id (shards activating their epoch's
    additions, {!fork} rebuilding a prefix). *)

val deactivate : t -> int -> unit

val rup_implied : t -> int array -> bool
(** Is the clause derivable from the active database by unit
    propagation? Leaves the state unchanged. *)

val assumptions_conflict : t -> int list -> bool
(** Does asserting the assumption literals make propagation fail on the
    active database? Leaves the state unchanged. *)

val propagate_root : t -> unit
(** Propagate to fixpoint; a conflict sets [contradiction]. *)

val clause_lits : t -> int -> int array
(** Copy of an arena clause's literals. *)

val fork :
  data:int array ->
  offs:int array ->
  sizes:int array ->
  visible:int ->
  base:int ->
  prefix_active:Bytes.t ->
  trail:int array ->
  trail_len:int ->
  contradiction:bool ->
  nv:int ->
  t
(** Build a shard state over captured arena arrays (readable up to
    [visible]; append-only, so the capture stays valid while the owner
    grows) with the given epoch-start snapshot: activity of cids below
    [base] from [prefix_active] (ownership transfers to the fork, which
    may flip flags when its epoch deletes prefix clauses), the trusted
    root trail replanted verbatim, and watches rebuilt over the active
    prefix. Cross-domain use requires the caller to publish the capture
    with a happens-before edge (e.g. a work-queue lock). *)

val load_cnf : t -> L.t list list -> unit
(** Insert the original formula (trusted) and propagate to fixpoint. *)

val final_conflict : t -> L.t list -> bool
(** The acceptance condition on the final database: a derived
    contradiction, or propagation failure under the assumptions. *)

val no_conflict_reason : string
(** The [Error] reason when {!final_conflict} is false at stream end. *)
