(** Independent forward RUP certificate checker.

    Validates a DRUP certificate (a {!Proof.step} stream) against the
    original CNF using only unit propagation over its own clause
    database — none of the solver's search machinery is reused, so a
    bug in the solver's learning, restarts or deletion cannot also hide
    in the checker. The only shared convention is the literal encoding
    of {!Satsolver.Lit}. *)

module L = Satsolver.Lit

type summary = {
  adds : int;  (** addition steps processed *)
  deletes : int;  (** deletion steps processed *)
  propagations : int;  (** literals propagated while checking *)
}

val check :
  ?assumptions:L.t list ->
  nvars:int ->
  clauses:L.t list list ->
  proof:Proof.step list ->
  unit ->
  (summary, string) result
(** [check ~assumptions ~nvars ~clauses ~proof ()] replays the
    certificate forward: each added clause must be derivable from the
    current database by unit propagation (or be satisfied at level 0);
    each deleted clause must be present. The certificate is accepted
    when a conflict is established — either the empty clause is derived
    (plain unsatisfiability), or, for UNSAT-under-assumptions verdicts,
    asserting the assumption literals makes unit propagation fail on
    the final database. Returns [Error reason] otherwise; a corrupted
    certificate is reported with its failing step index. *)
