(** SAT-side certification: does a claimed model really satisfy the
    formula? Trivial by design — evaluating a CNF under an assignment
    involves none of the solver's machinery, which is the point. *)

module L = Satsolver.Lit

val check :
  clauses:L.t list list -> value:(int -> bool) -> (unit, string) result
(** [check ~clauses ~value] verifies that every clause contains a
    literal made true by the assignment [value : var -> bool]. *)
