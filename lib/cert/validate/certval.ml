open Rtl

type mismatch = {
  v_instance : Ipc.Unroller.instance;
  v_frame : int;
  v_svar : Structural.svar;
  v_expected : Bitvec.t;
  v_simulated : Bitvec.t;
}

type result = {
  v_ok : bool;
  v_mismatches : mismatch list;
  v_frames : int;
  v_diverged : Structural.Svar_set.t;
  v_missing : Structural.Svar_set.t;
  v_vcd_files : string list;
}

let load_state nl eng cex inst =
  List.iter
    (fun (s : Expr.signal) ->
      Sim.Engine.set_param eng s.Expr.s_name (Ipc.Cex.param_value cex s))
    nl.Netlist.params;
  Structural.Svar_set.iter
    (fun sv ->
      let v = Ipc.Cex.svar_value cex inst ~frame:0 sv in
      match sv with
      | Structural.Sreg s -> Sim.Engine.poke_reg eng s.Expr.s_name v
      | Structural.Smem (m, i) -> Sim.Engine.poke_mem eng m.Expr.m_name i v)
    (Structural.all_svars nl)

(* Waveform selection: every register and primary input, plus the cells
   of any claimed memory svars (dumping whole memories would drown the
   divergence being inspected). *)
let vcd_signals nl claimed =
  let regs =
    List.map
      (fun (r : Netlist.reg_def) ->
        (r.Netlist.rd_signal.Expr.s_name, Expr.reg r.Netlist.rd_signal))
      nl.Netlist.regs
  in
  let inputs =
    List.map (fun (s : Expr.signal) -> (s.Expr.s_name, Expr.input s))
      nl.Netlist.inputs
  in
  let cells =
    Structural.Svar_set.fold
      (fun sv acc ->
        match sv with
        | Structural.Smem (m, i) ->
            ( Structural.svar_name sv,
              Expr.memread m (Expr.of_int ~width:m.Expr.m_addr_width i) )
            :: acc
        | Structural.Sreg _ -> acc)
      claimed []
  in
  inputs @ regs @ List.rev cells

let sim_svar eng sv =
  match sv with
  | Structural.Sreg s -> Sim.Engine.reg_value eng s.Expr.s_name
  | Structural.Smem (m, i) -> Sim.Engine.mem_value eng m.Expr.m_name i

let validate ?vcd_prefix ?(claimed = Structural.Svar_set.empty) nl cex =
  let k = Ipc.Cex.frames cex in
  let two = Ipc.Cex.two_instance cex in
  let instances =
    if two then [ Ipc.Unroller.A; Ipc.Unroller.B ] else [ Ipc.Unroller.A ]
  in
  let svars = Structural.all_svars nl in
  (* one engine per instance, stepped in lockstep so divergence can be
     observed on the simulators themselves, not on the SAT model *)
  let engines =
    List.map
      (fun inst ->
        let eng = Sim.Engine.create nl in
        load_state nl eng cex inst;
        (inst, eng))
      instances
  in
  let vcds, vcd_files =
    match vcd_prefix with
    | None -> ([], [])
    | Some prefix ->
        let sigs = vcd_signals nl claimed in
        let opened =
          List.map
            (fun (inst, eng) ->
              let path =
                Printf.sprintf "%s.%s.vcd" prefix
                  (match inst with Ipc.Unroller.A -> "A" | Ipc.Unroller.B -> "B")
              in
              let oc = open_out path in
              let module_name =
                match inst with Ipc.Unroller.A -> "instance_A" | _ -> "instance_B"
              in
              ((Sim.Vcd.attach eng oc ~module_name sigs, oc), path))
            engines
        in
        (List.map fst opened, List.map snd opened)
  in
  let mismatches = ref [] in
  let diverged = ref Structural.Svar_set.empty in
  (* the replay loop can raise (simulator failure, interrupt): the VCD
     headers and whatever frames were dumped must still reach disk as a
     well-formed, inspectable prefix *)
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (v, oc) ->
          (try Sim.Vcd.close v with _ -> ());
          close_out_noerr oc)
        vcds)
    (fun () ->
  for frame = 1 to k do
    (* drive cycle [frame-1] inputs into every instance, step together *)
    List.iter
      (fun (inst, eng) ->
        List.iter
          (fun (s : Expr.signal) ->
            Sim.Engine.set_input eng s.Expr.s_name
              (Ipc.Cex.input_value cex inst ~frame:(frame - 1) s))
          nl.Netlist.inputs;
        Sim.Engine.step eng)
      engines;
    (* replay fidelity: simulated state must equal the SAT witness *)
    List.iter
      (fun (inst, eng) ->
        Structural.Svar_set.iter
          (fun sv ->
            let expected = Ipc.Cex.svar_value cex inst ~frame sv in
            let simulated = sim_svar eng sv in
            if not (Bitvec.equal expected simulated) then
              mismatches :=
                {
                  v_instance = inst;
                  v_frame = frame;
                  v_svar = sv;
                  v_expected = expected;
                  v_simulated = simulated;
                }
                :: !mismatches)
          svars)
      engines;
    (* divergence: which svars differ between the *simulated* instances *)
    (match engines with
    | [ (_, ea); (_, eb) ] ->
        Structural.Svar_set.iter
          (fun sv ->
            if not (Bitvec.equal (sim_svar ea sv) (sim_svar eb sv)) then
              diverged := Structural.Svar_set.add sv !diverged)
          svars
    | _ -> ())
  done);
  let missing = Structural.Svar_set.diff claimed !diverged in
  {
    v_ok = !mismatches = [] && Structural.Svar_set.is_empty missing;
    v_mismatches = List.rev !mismatches;
    v_frames = k;
    v_diverged = !diverged;
    v_missing = missing;
    v_vcd_files = vcd_files;
  }

let pp_mismatch fmt mm =
  Format.fprintf fmt "instance %a, cycle %d, %a: cex=%a sim=%a"
    Ipc.Unroller.pp_instance mm.v_instance mm.v_frame Structural.pp_svar
    mm.v_svar Bitvec.pp mm.v_expected Bitvec.pp mm.v_simulated

let pp_result fmt r =
  if r.v_ok then
    Format.fprintf fmt
      "counterexample validated: %d cycle(s) replayed, %d svar(s) diverge"
      r.v_frames
      (Structural.Svar_set.cardinal r.v_diverged)
  else begin
    Format.fprintf fmt "counterexample REJECTED:";
    List.iter (fun mm -> Format.fprintf fmt "@\n  %a" pp_mismatch mm)
      r.v_mismatches;
    Structural.Svar_set.iter
      (fun sv ->
        Format.fprintf fmt "@\n  claimed divergence of %a not observed"
          Structural.pp_svar sv)
      r.v_missing
  end
