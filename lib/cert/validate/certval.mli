open Rtl

(** SAT-side verdict certification: replay a two-instance counterexample
    from {!Ipc.Cex} through the standalone cycle-accurate simulator
    {!Sim.Engine} on the real netlist.

    The simulator shares nothing with the proof pipeline (no AIG, no
    bit-blaster, no unroller, no SAT solver), so agreement means the
    claimed trace is a genuine behaviour of the design, and the claimed
    observable divergence really occurs — not an artefact of an encoding
    bug. *)

type mismatch = {
  v_instance : Ipc.Unroller.instance;
  v_frame : int;
  v_svar : Structural.svar;
  v_expected : Bitvec.t;  (** value claimed by the SAT witness *)
  v_simulated : Bitvec.t;  (** value the simulator computed *)
}

type result = {
  v_ok : bool;
      (** the replay matched cycle-by-cycle and every claimed svar
          divergence was observed on the simulators *)
  v_mismatches : mismatch list;  (** replay disagreements, if any *)
  v_frames : int;  (** cycles replayed *)
  v_diverged : Structural.Svar_set.t;
      (** svars that differ between the simulated A and B instances at
          some cycle >= 1 *)
  v_missing : Structural.Svar_set.t;
      (** claimed svars whose divergence the simulation did not show *)
  v_vcd_files : string list;  (** paths written when [vcd_prefix] set *)
}

val validate :
  ?vcd_prefix:string ->
  ?claimed:Structural.Svar_set.t ->
  Netlist.t ->
  Ipc.Cex.t ->
  result
(** [validate ~claimed nl cex] concretises the witness (parameters,
    frame-0 state, per-cycle inputs for both instances), steps the two
    simulator instances in lockstep for all [Ipc.Cex.frames cex]
    cycles, and checks (1) every simulated state value equals the
    witness value — cycle by cycle, svar by svar — and (2) every svar
    in [claimed] (the reported S_cex, or the per-svar witness) actually
    diverges between the simulated instances. With [vcd_prefix],
    paired waveforms [<prefix>.A.vcd] / [<prefix>.B.vcd] are dumped for
    inspection. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp_result : Format.formatter -> result -> unit
