module L = Satsolver.Lit

let lit_true value l = if L.sign l then value (L.var l) else not (value (L.var l))

let check ~clauses ~value =
  let rec loop i = function
    | [] -> Ok ()
    | c :: rest ->
        if List.exists (lit_true value) c then loop (i + 1) rest
        else
          Error (Printf.sprintf "model falsifies clause %d of the formula" i)
  in
  loop 0 clauses
