(* Pipelined parallel DRUP certification.

   The sequential story — record the whole certificate, then replay it
   through {!Rup.check} after the verdict — makes certification a
   post-hoc tax of the same order as the solve itself. This module
   turns it into a streaming coordinator + checker-shard engine:

   - The solver's tracer feeds steps straight into a {e coordinator}
     living on the solver's own domain. The coordinator maintains the
     checker clause database by {e trusted replay} (insert / delete /
     propagate, but no RUP validation — validation is the expensive
     part) and buffers the raw steps of the current epoch.

   - At barrier hints (restarts, database reductions) once enough steps
     accumulated, the epoch is {e closed}: the coordinator snapshots the
     database state as of epoch start (arena bounds + a copy of the
     active-flag prefix + the root-trail length — the payload arrays are
     shared, append-only), replays the epoch into its own database, and
     hands the compiled epoch to a checker shard via the injected
     [dispatch] hook (inline by default; a domain pool when driven by
     [Parallel.Portfolio]).

   - A shard {!Rup.fork}s a state from the snapshot and re-validates
     every addition of its epoch with full RUP checking. Soundness of
     the sharding: the shard's snapshot state is semantically identical
     to the sequential checker's state at epoch start (unit propagation
     is confluent, and deletion keeps level-0 consequences — drat-trim
     forward semantics — so the trusted trail replant loses nothing),
     hence a shard accepts its epoch iff the sequential checker accepts
     those same steps. All epochs accepted + final conflict derived =
     sequential accept; any shard rejecting = sequential reject (the
     sequential run fails at or before the same step).

   - Backpressure: when more than [max_pending] epochs are in flight,
     newly closed epochs {e spill} to disk in DRUP text form (stamped
     with the {!Proof.complete_marker} / {!Proof.truncated_marker}
     discipline) instead of stalling the solver or growing the queue;
     they are re-read and checked during the final drain. *)

module S = Satsolver.Solver
module L = Satsolver.Lit

type summary = {
  steps : int;  (** proof steps streamed *)
  lits : int;  (** total literals streamed *)
  adds : int;
  deletes : int;
  propagations : int;  (** coordinator + all shards *)
  epochs : int;
  spilled_epochs : int;
  drain_seconds : float;
      (** wall time {!finish} spent draining after the solver was done —
          the residual, non-overlapped cost of certification *)
}

type dispatch = {
  d_run : (unit -> unit) -> unit;
      (** run one epoch-check task, possibly on another domain; the
          tasks never raise *)
  d_shutdown : unit -> unit;  (** stop the backing workers; idempotent *)
}

let inline_dispatch = { d_run = (fun f -> f ()); d_shutdown = ignore }

(* compiled epoch step: the coordinator (sole owner of the deletion
   index) resolves every step to a dense clause id at close time, so
   shards never need an index of their own *)
type estep =
  | E_add of int
  | E_del of int
  | E_skip  (* tautology addition: trivially implied, no clause id *)
  | E_bad of string  (* rejected at compile time (malformed deletion) *)

type epoch = {
  e_idx : int;
  e_step0 : int;  (* global index of the epoch's first step *)
  (* snapshot of the database at epoch start *)
  e_first_cid : int;
  e_trail_len : int;
  e_contradiction : bool;
  e_nv : int;
  e_prefix_active : Bytes.t;
  (* captured after the epoch was replayed into the coordinator: the
     arrays are append-only, so entries below [e_visible] (resp.
     [e_trail_len]) are immutable wherever these references travel *)
  e_data : int array;
  e_offs : int array;
  e_sizes : int array;
  e_visible : int;
  e_trail : int array;
  e_steps : (int * estep) array;  (* (global step, op); [||] if spilled *)
  e_spill : string option;
}

type t = {
  st : Rup.t;  (* coordinator database: trusted replay *)
  assumptions : int list;
  epoch_target : int;
  max_pending : int;
  spill_dir : string;
  dispatch : dispatch;
  cancelled : bool Atomic.t;
  (* coordinator-side accounting (solver thread only) *)
  mutable raw : Proof.step array;
  mutable raw_n : int;
  mutable raw_step0 : int;
  mutable n_steps : int;
  mutable n_lits : int;
  mutable n_adds : int;
  mutable n_deletes : int;
  mutable epochs : int;
  mutable spilled : epoch list;  (* newest first *)
  mutable finished : bool;
  (* shared with shards *)
  mu : Mutex.t;
  cv : Condition.t;
  mutable pending : int;
  mutable errors : (int * int * string) list;  (* epoch, global step, msg *)
  mutable shard_props : int;
  mutable busy_seconds : float;
}

let m_clauses_checked = Obs.Metrics.counter "cert.clauses_checked"
let g_checker_lag = Obs.Metrics.gauge "cert.checker_lag"
let h_clauses_per_sec = Obs.Metrics.histogram "cert.clauses_per_sec"

let default_epoch_target = 2048

let create ?(dispatch = inline_dispatch) ?(epoch_target = default_epoch_target)
    ?(max_pending = 4) ?spill_dir ?(assumptions = []) ~nvars ~clauses () =
  let st = Rup.create nvars in
  Rup.load_cnf st clauses;
  {
    st;
    assumptions = List.map L.to_int assumptions;
    epoch_target = max 1 epoch_target;
    max_pending = max 0 max_pending;
    spill_dir =
      (match spill_dir with
      | Some d -> d
      | None -> Filename.get_temp_dir_name ());
    dispatch;
    cancelled = Atomic.make false;
    raw = Array.make 64 (Proof.Add [||]);
    raw_n = 0;
    raw_step0 = 0;
    n_steps = 0;
    n_lits = 0;
    n_adds = 0;
    n_deletes = 0;
    epochs = 0;
    spilled = [];
    finished = false;
    mu = Mutex.create ();
    cv = Condition.create ();
    pending = 0;
    errors = [];
    shard_props = 0;
    busy_seconds = 0.0;
  }

(* ---- checker shards ---- *)

exception Epoch_failed of int * string
exception Cancelled

let fork_of_epoch ep =
  Rup.fork ~data:ep.e_data ~offs:ep.e_offs ~sizes:ep.e_sizes
    ~visible:ep.e_visible ~base:ep.e_first_cid
    ~prefix_active:ep.e_prefix_active ~trail:ep.e_trail
    ~trail_len:ep.e_trail_len ~contradiction:ep.e_contradiction ~nv:ep.e_nv

let poll_cancel t i =
  if i land 63 = 0 && Atomic.get t.cancelled then raise Cancelled

(* Re-validate one in-memory epoch on a fork of its snapshot. *)
let check_epoch t ep =
  let sh = fork_of_epoch ep in
  let checked = ref 0 in
  Array.iteri
    (fun i (gstep, op) ->
      poll_cancel t i;
      match op with
      | E_skip -> ()
      | E_del cid -> Rup.deactivate sh cid
      | E_add cid ->
          let lits = Rup.clause_lits sh cid in
          if Rup.rup_implied sh lits then begin
            Rup.activate sh cid;
            incr checked
          end
          else
            raise
              (Epoch_failed
                 ( gstep,
                   "added clause is not implied by unit propagation" ))
      | E_bad msg -> raise (Epoch_failed (gstep, msg)))
    ep.e_steps;
  (!checked, sh.Rup.props)

(* Re-validate one spilled epoch from its DRUP file. The clause ids of
   its additions are consecutive from [e_first_cid] (the coordinator
   replayed the same steps), which lets the re-read be verified against
   the arena — a corrupted or mismatching file is rejected. *)
let check_spilled t ep path =
  let sh = fork_of_epoch ep in
  (* deletions inside a spilled epoch are resolved by literals: rebuild
     the index over the active snapshot (ascending, so the head of each
     bucket is the newest clause, matching the coordinator's order) *)
  for cid = 0 to ep.e_first_cid - 1 do
    if Bytes.get ep.e_prefix_active cid <> '\000' then begin
      let key = Array.to_list (Rup.clause_lits sh cid) in
      match Hashtbl.find_opt sh.Rup.index key with
      | Some r -> r := cid :: !r
      | None -> Hashtbl.add sh.Rup.index key (ref [ cid ])
    end
  done;
  let next_cid = ref ep.e_first_cid in
  let gstep = ref ep.e_step0 in
  let checked = ref 0 in
  let emit step =
    poll_cancel t (!gstep - ep.e_step0);
    let g = !gstep in
    incr gstep;
    match step with
    | Proof.Add c -> (
        match Rup.normalize (Array.to_list (Array.map L.to_int c)) with
        | None -> ()
        | Some arr ->
            if
              !next_cid >= ep.e_visible
              || arr <> Rup.clause_lits sh !next_cid
            then
              raise
                (Epoch_failed
                   (g, "spill file does not match the recorded certificate"))
            else if Rup.rup_implied sh arr then begin
              Rup.activate sh !next_cid;
              (let key = Array.to_list arr in
               match Hashtbl.find_opt sh.Rup.index key with
               | Some r -> r := !next_cid :: !r
               | None -> Hashtbl.add sh.Rup.index key (ref [ !next_cid ]));
              incr next_cid;
              incr checked
            end
            else
              raise
                (Epoch_failed
                   (g, "added clause is not implied by unit propagation")))
    | Proof.Delete c -> (
        match Rup.normalize (Array.to_list (Array.map L.to_int c)) with
        | None -> raise (Epoch_failed (g, "deletion of a tautology"))
        | Some arr ->
            if Rup.delete sh arr = None then
              raise
                (Epoch_failed (g, "deleted clause is not in the database")))
  in
  let ending =
    In_channel.with_open_text path (fun ic -> Proof.read_drup_channel ic ~emit)
  in
  (match ending with
  | Proof.Complete -> ()
  | Proof.Truncated | Proof.Unterminated ->
      raise
        (Epoch_failed
           ( ep.e_step0,
             Printf.sprintf
               "spilled epoch %d is truncated (file %s does not end with \
                the completion marker)"
               ep.e_idx (Filename.basename path) )));
  (!checked, sh.Rup.props)

(* Run one shard task and record its outcome; never raises (tasks may
   execute on pool domains whose exceptions would be swallowed, or
   inline inside the solver's tracer callback). *)
let run_shard t ep check =
  let t0 = Unix.gettimeofday () in
  let result =
    try
      Obs.Trace.with_span "cert.check"
        ~attrs:
          [
            ("epoch", Obs.Trace.Int ep.e_idx);
            ("steps", Obs.Trace.Int (Array.length ep.e_steps));
          ]
        (fun () -> Ok (check ()))
    with
    | Epoch_failed (gstep, msg) -> Error (gstep, msg)
    | Cancelled -> Ok (0, 0)
    | e -> Error (ep.e_step0, "checker exception: " ^ Printexc.to_string e)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Mutex.lock t.mu;
  t.pending <- t.pending - 1;
  (match result with
  | Ok (checked, props) ->
      t.shard_props <- t.shard_props + props;
      t.busy_seconds <- t.busy_seconds +. dt;
      if checked > 0 then begin
        Obs.Metrics.add m_clauses_checked checked;
        if dt > 0.0 then
          Obs.Metrics.observe h_clauses_per_sec (float_of_int checked /. dt)
      end
  | Error (gstep, msg) -> t.errors <- (ep.e_idx, gstep, msg) :: t.errors);
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

(* ---- coordinator (solver thread) ---- *)

let write_spill t ep_idx steps n =
  let path =
    Filename.temp_file ~temp_dir:t.spill_dir
      (Printf.sprintf "upec-epoch-%d-" ep_idx)
      ".drup"
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let tr = Proof.file_tracer oc in
      match
        for i = 0 to n - 1 do
          match steps.(i) with
          | Proof.Add c -> tr.S.trace_add c
          | Proof.Delete c -> tr.S.trace_delete c
        done
      with
      | () -> output_string oc (Proof.complete_marker ^ "\n")
      | exception e ->
          (* stamp before the [finally] close so even a failed writer
             leaves a truncation-detectable file, never a silently
             short one *)
          (try output_string oc (Proof.truncated_marker ^ "\n")
           with _ -> ());
          raise e);
  path

let close_epoch t =
  if t.raw_n > 0 && not (Atomic.get t.cancelled) then begin
    let st = t.st in
    let e_idx = t.epochs in
    t.epochs <- e_idx + 1;
    (* snapshot before replay: this is the database state the epoch's
       additions must be validated against *)
    let e_first_cid = st.Rup.a_n in
    let e_trail_len = st.Rup.trail_len in
    let e_contradiction = st.Rup.contradiction in
    let e_nv = st.Rup.nv in
    let e_prefix_active = Bytes.sub st.Rup.active 0 e_first_cid in
    (* trusted replay: compile each step to a clause id while advancing
       the coordinator database (no RUP validation here) *)
    let n = t.raw_n in
    let esteps = Array.make n (0, E_skip) in
    for i = 0 to n - 1 do
      let gstep = t.raw_step0 + i in
      let op =
        match t.raw.(i) with
        | Proof.Add c -> (
            match Rup.normalize (Array.to_list (Array.map L.to_int c)) with
            | None -> E_skip
            | Some arr -> E_add (Rup.insert st arr))
        | Proof.Delete c -> (
            match Rup.normalize (Array.to_list (Array.map L.to_int c)) with
            | None -> E_bad "deletion of a tautology"
            | Some arr -> (
                match Rup.delete st arr with
                | Some cid -> E_del cid
                | None -> E_bad "deleted clause is not in the database"))
      in
      esteps.(i) <- (gstep, op)
    done;
    let ep =
      {
        e_idx;
        e_step0 = t.raw_step0;
        e_first_cid;
        e_trail_len;
        e_contradiction;
        e_nv;
        e_prefix_active;
        e_data = st.Rup.a_data;
        e_offs = st.Rup.a_offs;
        e_sizes = st.Rup.a_sizes;
        e_visible = st.Rup.a_n;
        e_trail = st.Rup.trail;
        e_steps = esteps;
        e_spill = None;
      }
    in
    t.raw_step0 <- t.raw_step0 + n;
    t.raw_n <- 0;
    Mutex.lock t.mu;
    let backlogged = t.pending >= t.max_pending in
    if not backlogged then t.pending <- t.pending + 1;
    Obs.Metrics.set_gauge g_checker_lag (float_of_int t.pending);
    Mutex.unlock t.mu;
    if backlogged then begin
      (* checkers are behind: spill this epoch to disk instead of
         queueing it, and re-check it during the final drain *)
      let path = write_spill t e_idx t.raw n in
      t.spilled <-
        { ep with e_steps = [||]; e_spill = Some path } :: t.spilled
    end
    else t.dispatch.d_run (fun () -> run_shard t ep (fun () -> check_epoch t ep))
  end

let push t step =
  if not (Atomic.get t.cancelled || t.finished) then begin
    if t.raw_n = Array.length t.raw then begin
      let raw = Array.make (2 * t.raw_n) (Proof.Add [||]) in
      Array.blit t.raw 0 raw 0 t.raw_n;
      t.raw <- raw
    end;
    t.raw.(t.raw_n) <- step;
    t.raw_n <- t.raw_n + 1;
    t.n_steps <- t.n_steps + 1;
    (match step with
    | Proof.Add c ->
        t.n_adds <- t.n_adds + 1;
        t.n_lits <- t.n_lits + Array.length c
    | Proof.Delete c ->
        t.n_deletes <- t.n_deletes + 1;
        t.n_lits <- t.n_lits + Array.length c);
    (* hard cap: configurations without restarts never emit barriers *)
    if t.raw_n >= 4 * t.epoch_target then close_epoch t
  end

let tracer t =
  {
    S.trace_add = (fun c -> push t (Proof.Add c));
    S.trace_delete = (fun c -> push t (Proof.Delete c));
    S.trace_barrier =
      (fun () -> if t.raw_n >= t.epoch_target then close_epoch t);
  }

let drain t =
  Mutex.lock t.mu;
  while t.pending > 0 do
    Condition.wait t.cv t.mu
  done;
  Mutex.unlock t.mu

let remove_spills t =
  List.iter
    (fun ep ->
      match ep.e_spill with
      | Some path -> ( try Sys.remove path with Sys_error _ -> ())
      | None -> ())
    t.spilled

let spill_files t =
  List.rev_map
    (fun ep -> match ep.e_spill with Some p -> p | None -> assert false)
    t.spilled

let finish t =
  if t.finished then invalid_arg "Pipeline.finish: already finished";
  let t0 = Unix.gettimeofday () in
  close_epoch t;
  t.finished <- true;
  (* in-flight shards first, then the spilled epochs (which needed the
     checkers to be idle anyway — that is why they were spilled) *)
  drain t;
  List.iter
    (fun ep ->
      match ep.e_spill with
      | None -> ()
      | Some path ->
          Mutex.lock t.mu;
          t.pending <- t.pending + 1;
          Mutex.unlock t.mu;
          t.dispatch.d_run (fun () ->
              run_shard t ep (fun () -> check_spilled t ep path)))
    (List.rev t.spilled);
  drain t;
  t.dispatch.d_shutdown ();
  remove_spills t;
  Obs.Metrics.set_gauge g_checker_lag 0.0;
  let result =
    match
      List.sort (fun (_, a, _) (_, b, _) -> compare a b) t.errors
    with
    | (eidx, gstep, msg) :: _ ->
        Error (Printf.sprintf "epoch %d, step %d: %s" eidx gstep msg)
    | [] ->
        if t.st.Rup.contradiction || Rup.assumptions_conflict t.st t.assumptions
        then
          Ok
            {
              steps = t.n_steps;
              lits = t.n_lits;
              adds = t.n_adds;
              deletes = t.n_deletes;
              propagations = t.st.Rup.props + t.shard_props;
              epochs = t.epochs;
              spilled_epochs = List.length t.spilled;
              drain_seconds = Unix.gettimeofday () -. t0;
            }
        else Error Rup.no_conflict_reason
  in
  result

let cancel t =
  if not t.finished then begin
    Atomic.set t.cancelled true;
    t.finished <- true;
    t.raw_n <- 0;
    (* shards poll the flag and bail out quickly; wait for them so no
       task still references this pipeline when the caller moves on *)
    drain t;
    t.dispatch.d_shutdown ();
    remove_spills t
  end

let busy_seconds t = t.busy_seconds
