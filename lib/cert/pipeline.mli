(** Pipelined parallel DRUP certification: check the certificate while
    the solver is still producing it.

    A coordinator on the solver's domain consumes the tracer stream,
    maintains the checker clause database by trusted replay, and splits
    the stream into {e epochs} at the solver's barrier hints. Each
    closed epoch is RUP-validated by a checker shard ({!Rup.fork}) —
    inline by default, on pool domains when a [dispatch] is injected
    (see [Parallel.Portfolio]). Shards share the immutable clause arena
    by reference; only the small activity prefix is copied per epoch.
    When more than [max_pending] epochs are in flight, newly closed
    epochs spill to disk in DRUP text form and are re-checked during
    {!finish} — backpressure never stalls the solver.

    Accept/reject behaviour is identical to {!Rup.check} on the recorded
    stream: shard snapshots are semantically equal to the sequential
    checker's state at epoch start (unit propagation is confluent;
    deletion keeps level-0 consequences), so each shard accepts exactly
    the steps the sequential checker would.

    Threading contract: {!tracer}, {!finish} and {!cancel} must be
    called from the thread driving the solver (they mutate the
    coordinator). A pipeline is finished or cancelled exactly once. *)

type t

type summary = {
  steps : int;  (** proof steps streamed *)
  lits : int;  (** total literals streamed *)
  adds : int;
  deletes : int;
  propagations : int;  (** coordinator + all shards *)
  epochs : int;
  spilled_epochs : int;
  drain_seconds : float;
      (** wall time {!finish} spent draining after the solver was done —
          the residual, non-overlapped cost of certification *)
}

type dispatch = {
  d_run : (unit -> unit) -> unit;
      (** run one epoch-check task, possibly on another domain; tasks
          never raise *)
  d_shutdown : unit -> unit;  (** stop the backing workers; idempotent *)
}

val inline_dispatch : dispatch
(** Runs every check on the calling thread, at epoch-close time — the
    streaming semantics without extra domains. *)

val create :
  ?dispatch:dispatch ->
  ?epoch_target:int ->
  ?max_pending:int ->
  ?spill_dir:string ->
  ?assumptions:Satsolver.Lit.t list ->
  nvars:int ->
  clauses:Satsolver.Lit.t list list ->
  unit ->
  t
(** Load the original CNF (trusted) and stand ready to consume a tracer
    stream. [epoch_target] (default 2048) is the step count past which
    the next barrier closes an epoch (hard cap at 4x for barrier-less
    configurations); [max_pending] (default 4) bounds in-flight epochs
    before spilling — 0 spills every epoch; [spill_dir] defaults to the
    system temp directory. [assumptions] are the solve's assumption
    literals, needed for the final-conflict acceptance test. *)

val tracer : t -> Satsolver.Solver.tracer
(** The sink to install with [Solver.set_tracer] {e before} clause
    loading, exactly like [Proof.tracer]. *)

val finish : t -> (summary, string) result
(** Close the last epoch, drain in-flight shards, re-check spilled
    epochs, evaluate the final-conflict condition and release workers
    and spill files. [Error] reasons name the failing epoch and global
    step (including which epoch's spill file was truncated). Call after
    the solver returned UNSAT. *)

val cancel : t -> unit
(** Cooperative teardown for losers and non-UNSAT outcomes: stop
    accepting steps, let in-flight shards notice and bail, release
    workers and spill files. Idempotent; never raises. *)

val spill_files : t -> string list
(** Paths of currently spilled epochs (before {!finish} removes them) —
    for audit and tests. *)

val busy_seconds : t -> float
(** Total wall time shards spent checking (overlapped work). *)
