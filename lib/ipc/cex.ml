open Rtl

type t = {
  k : int;
  two : bool;
  nl : Netlist.t;
  svals : (string, Bitvec.t) Hashtbl.t;  (* "A/3/name" -> value *)
  ivals : (string, Bitvec.t) Hashtbl.t;
  pvals : (string, Bitvec.t) Hashtbl.t;
}

let key inst frame name =
  Printf.sprintf "%s/%d/%s"
    (match inst with Unroller.A -> "A" | Unroller.B -> "B")
    frame name

let vec_value model vec =
  let w = Array.length vec in
  let v = ref 0 in
  for i = w - 1 downto 0 do
    v := (!v lsl 1) lor (if model vec.(i) then 1 else 0)
  done;
  Bitvec.of_int ~width:w !v

let extract u model =
  let nl = Unroller.netlist u in
  let k = Unroller.frames u in
  let two = Unroller.two_instance u in
  let instances = if two then [ Unroller.A; Unroller.B ] else [ Unroller.A ] in
  let svals = Hashtbl.create 1024 in
  let ivals = Hashtbl.create 256 in
  let pvals = Hashtbl.create 16 in
  let svars = Structural.all_svars nl in
  List.iter
    (fun inst ->
      for frame = 0 to k do
        Structural.Svar_set.iter
          (fun sv ->
            let vec = Unroller.svar_vec u inst ~frame sv in
            Hashtbl.replace svals
              (key inst frame (Structural.svar_name sv))
              (vec_value model vec))
          svars;
        List.iter
          (fun (s : Expr.signal) ->
            let vec = Unroller.input_vec u inst ~frame s in
            Hashtbl.replace ivals
              (key inst frame s.Expr.s_name)
              (vec_value model vec))
          nl.Netlist.inputs
      done)
    instances;
  List.iter
    (fun (s : Expr.signal) ->
      Hashtbl.replace pvals s.Expr.s_name
        (vec_value model (Unroller.param_vec u s)))
    nl.Netlist.params;
  { k; two; nl; svals; ivals; pvals }

let frames t = t.k
let two_instance t = t.two

let svar_value t inst ~frame sv =
  Hashtbl.find t.svals (key inst frame (Structural.svar_name sv))

let input_value t inst ~frame (s : Expr.signal) =
  Hashtbl.find t.ivals (key inst frame s.Expr.s_name)

let param_value t (s : Expr.signal) = Hashtbl.find t.pvals s.Expr.s_name
let param_value_by_name t name = Hashtbl.find t.pvals name

let poke_svar t inst ~frame sv v =
  Hashtbl.replace t.svals (key inst frame (Structural.svar_name sv)) v

let diff_svars t ~frame =
  if not t.two then Structural.Svar_set.empty
  else
    Structural.Svar_set.filter
      (fun sv ->
        not
          (Bitvec.equal
             (svar_value t Unroller.A ~frame sv)
             (svar_value t Unroller.B ~frame sv)))
      (Structural.all_svars t.nl)

let diff_inputs t ~frame =
  if not t.two then []
  else
    List.filter
      (fun s ->
        not
          (Bitvec.equal
             (input_value t Unroller.A ~frame s)
             (input_value t Unroller.B ~frame s)))
      t.nl.Netlist.inputs

let pp_gen ~full fmt t =
  let open Format in
  fprintf fmt "@[<v>counterexample over %d cycle(s)%s@," t.k
    (if t.two then " (two instances)" else "");
  if Hashtbl.length t.pvals > 0 then begin
    fprintf fmt "parameters:@,";
    List.iter
      (fun (s : Expr.signal) ->
        fprintf fmt "  %s = %a@," s.Expr.s_name Bitvec.pp
          (param_value t s))
      t.nl.Netlist.params
  end;
  for frame = 0 to t.k do
    fprintf fmt "cycle %d:@," frame;
    if frame < t.k || t.k = 0 then
      List.iter
        (fun (s : Expr.signal) ->
          let va = input_value t Unroller.A ~frame s in
          if t.two then begin
            let vb = input_value t Unroller.B ~frame s in
            if full || not (Bitvec.equal va vb) then
              fprintf fmt "  in  %s: A=%a B=%a@," s.Expr.s_name Bitvec.pp va
                Bitvec.pp vb
          end
          else if full then
            fprintf fmt "  in  %s = %a@," s.Expr.s_name Bitvec.pp va)
        t.nl.Netlist.inputs;
    let to_show =
      if full then Structural.all_svars t.nl else diff_svars t ~frame
    in
    Structural.Svar_set.iter
      (fun sv ->
        let va = svar_value t Unroller.A ~frame sv in
        if t.two then
          let vb = svar_value t Unroller.B ~frame sv in
          fprintf fmt "  st  %s: A=%a B=%a@," (Structural.svar_name sv)
            Bitvec.pp va Bitvec.pp vb
        else
          fprintf fmt "  st  %s = %a@," (Structural.svar_name sv) Bitvec.pp va)
      to_show
  done;
  fprintf fmt "@]"

let pp fmt t = pp_gen ~full:false fmt t
let pp_full fmt t = pp_gen ~full:true fmt t
