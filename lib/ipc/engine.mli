(** Property checking over an unrolled design.

    A session owns the AIG, the unroller and one SAT solver. Properties
    are given as AIG literals: assumptions are asserted permanently;
    each solve temporarily asserts its proof obligation through solver
    assumptions, so successive solves reuse all learnt clauses.

    With [portfolio > 1], every solve exports the current CNF and races
    that many diversified solver configurations in parallel domains (see
    {!Parallel.Portfolio}); the verdict is identical to the sequential
    one, but learnt clauses are not carried between checks.

    With [certify], every solve is self-checking: the CNF snapshot is
    solved with DRUP tracing on, UNSAT verdicts are revalidated by the
    independent forward checker {!Cert.Rup} and SAT models by
    {!Cert.Model}; a rejected certificate raises
    {!Certification_failed} rather than returning an unvouched verdict.
    Certified solves always take the snapshot path, so the incremental
    clause reuse of sequential mode is traded for checkability.

    With [simp] (the default), witness-free solves — {!decide} with
    [~cex:false] — are answered on a {e reduced} problem: only the cone
    of influence of the permanent constraints and the obligation is
    encoded ({!Simp}). Witness-producing solves always encode the full
    extraction set, so counterexamples are bit-identical with [simp] on
    or off; certified reduced solves have their DRUP proof checked
    against the reduced CNF they actually solved. *)

type t

exception Certification_failed of string
(** A solver verdict whose certificate the independent checker rejected
    — either the solver or the checker is wrong, and the verdict cannot
    be trusted. *)

exception Unknown_verdict of string
(** Raised by the unbounded entry points ({!check}, {!check_sat},
    {!sat}) when a solve ends [Unknown] — only possible after
    {!set_budget} or {!set_interrupt}; budget-aware callers use
    {!decide} (or the [_bounded] variants) instead. *)

val create :
  ?solver_options:Satsolver.Solver.options ->
  ?portfolio:int ->
  ?portfolio_configs:Satsolver.Solver.options list ->
  ?certify:bool ->
  ?cert_jobs:int ->
  ?simp:bool ->
  two_instance:bool ->
  Rtl.Netlist.t ->
  t
(** [simp] (default [true]) enables cone-of-influence reduction for
    witness-free solves; it never changes verdicts or counterexamples.

    [cert_jobs] (default [0]) only matters with [certify]: when positive,
    UNSAT certificates are checked by the pipelined streaming checker
    ({!Cert.Pipeline}) on that many checker domains {e while the solver
    searches}, instead of by a post-hoc sequential {!Cert.Rup.check}
    pass. Verdicts and accept/reject decisions are identical; only the
    wall-clock attribution changes — [check_seconds] in {!cert_totals}
    then counts only the residual drain after the solver finished. *)

val unroller : t -> Unroller.t
val graph : t -> Aig.t

val ensure_frames : t -> int -> unit

val assume : t -> Aig.lit -> unit
(** Permanently assume the literal. *)

val assume_implication : t -> Aig.lit -> Aig.lit -> unit
(** Permanently assume [a -> b]; with a fresh activation variable as
    [a], this arms retractable obligations for incremental checking.
    When [a] is a free variable it must be a dedicated activation
    literal occurring nowhere else in the problem: problem reduction
    drops obligations whose activation variable a given solve does not
    assume. *)

val pre_encode : t -> unit
(** Force SAT encodings for every state variable, input and parameter of
    all materialised frames. Called implicitly before each
    witness-producing solve; incremental — frames already encoded are
    skipped. *)

val sat_vars : t -> int
(** Number of SAT variables allocated so far (observability hook for the
    incremental pre-encoding). *)

val set_budget : t -> Satsolver.Solver.budget -> unit
(** Resource budget applied to every subsequent solve (each portfolio
    racer gets the full budget independently). Default
    {!Satsolver.Solver.no_budget}. *)

val budget : t -> Satsolver.Solver.budget

val set_interrupt : t -> (unit -> bool) option -> unit
(** Cooperative cancellation hook, polled from inside every subsequent
    solve. When it returns [true] the solve unwinds and reports
    [Unknown "interrupted"]; the engine stays usable. *)

(** {1 Deciding proof obligations} *)

type query =
  | Goal of Aig.lit  (** do the assumptions imply this literal? *)
  | Violation of Aig.lit list
      (** is the conjunction of these literals reachable under the
          assumptions? *)

type verdict =
  | Proved  (** the goal holds / the violation is unreachable *)
  | Refuted of Cex.t option
      (** a witness exists; carried unless the call said [~cex:false] *)
  | Unknown of string
      (** budget ran out or the interrupt fired — a resource fact about
          this solve, not a property of the instance *)

val decide : ?cex:bool -> t -> query -> verdict
(** The one entry point every solve goes through. [Goal g] asks whether
    the assumptions imply [g] ([Proved] iff assumptions ∧ ¬g is UNSAT);
    [Violation ls] asks whether assumptions ∧ ⋀ls is reachable
    ([Refuted] iff SAT — the violation exists). With [~cex:false]
    (default [true]) no counterexample is extracted and the solve may
    run on the reduced problem; [Refuted None] then only reports
    existence. *)

(** {1 Legacy entry points}

    Thin views of {!decide}, kept so existing callers compile.
    @deprecated Use {!decide}: [check t g] is [decide t (Goal g)],
    [check_sat t ls] is [decide t (Violation ls)], [sat t ls] is
    [decide ~cex:false t (Violation ls)]; the [_bounded] forms
    correspond to matching [Unknown] instead of letting it raise. *)

type outcome = Holds | Cex of Cex.t

type 'a bounded = Decided of 'a | Unknown of string
    (** Three-valued solve result: [Unknown reason] when the budget ran
        out or the interrupt fired before a verdict. *)

val check_bounded : t -> Aig.lit -> outcome bounded
(** @deprecated Use [decide t (Goal goal)]. *)

val check_sat_bounded : t -> Aig.lit list -> Cex.t option bounded
(** @deprecated Use [decide t (Violation lits)]. *)

val sat_bounded : t -> Aig.lit list -> bool bounded
(** @deprecated Use [decide ~cex:false t (Violation lits)]. *)

val check : t -> Aig.lit -> outcome
(** [check t goal] decides whether the assumptions imply [goal]. If
    satisfiable with [¬goal], returns the extracted counterexample over
    all materialised frames.
    @deprecated Use [decide t (Goal goal)]. *)

val check_sat : t -> Aig.lit list -> Cex.t option
(** Low-level: is the conjunction of assumptions and the given literals
    satisfiable? Returns the witness if so.
    @deprecated Use [decide t (Violation lits)]. *)

val sat : t -> Aig.lit list -> bool
(** Like {!check_sat} but without counterexample extraction — the cheap
    form for per-svar condition checks where only the verdict matters.
    @deprecated Use [decide ~cex:false t (Violation lits)]. *)

(** {1 Statistics} *)

val reduction_stats : t -> Simp.reduction option
(** Reduction accounting for this engine: how many solves ran on a
    reduced problem and the CNF size of the unreduced encoding versus
    what was actually given to the solver. Both sides are measured, not
    estimated; the first call finalises the accounting (it may encode
    the remaining extraction set to measure the unreduced size), so call
    it only once the run is over. [None] when the engine was created
    with [~simp:false] or no solve was ever reduced. *)

val solve_stats : t -> Satsolver.Solver.stats
(** Cumulative statistics of the engine's own solver (sequential solves
    only; portfolio solves run in throwaway solvers). *)

val last_stats : t -> Satsolver.Solver.stats
(** Statistics of the most recent solve alone: the per-check delta in
    sequential mode, the winning configuration's totals in portfolio
    mode. *)

val last_winner : t -> int option
(** Index of the configuration that won the most recent portfolio race;
    [None] after a sequential solve. *)

val last_losers_stats : t -> Satsolver.Solver.stats
(** Summed statistics of the losing configurations of the most recent
    portfolio race — zero after a sequential solve. *)

val certifying : t -> bool

val simplifying : t -> bool
(** Whether problem reduction is enabled for witness-free solves. *)

val cert_totals : t -> Cert.Proof.totals
(** Cumulative certification accounting for this engine: verdicts
    checked, proof sizes, and solve vs check wall time. *)
