(** Property checking over an unrolled design.

    A session owns the AIG, the unroller and one SAT solver. Properties
    are given as AIG literals: assumptions are asserted permanently;
    each {!check} call temporarily asserts the negation of the proof
    obligation through an activation literal, so successive checks with
    different obligations reuse all learnt clauses.

    With [portfolio > 1], every solve exports the current CNF and races
    that many diversified solver configurations in parallel domains (see
    {!Parallel.Portfolio}); the verdict is identical to the sequential
    one, but learnt clauses are not carried between checks.

    With [certify], every solve is self-checking: the CNF snapshot is
    solved with DRUP tracing on, UNSAT verdicts are revalidated by the
    independent forward checker {!Cert.Rup} and SAT models by
    {!Cert.Model}; a rejected certificate raises
    {!Certification_failed} rather than returning an unvouched verdict.
    Certified solves always take the snapshot path, so the incremental
    clause reuse of sequential mode is traded for checkability. *)

type t

exception Certification_failed of string
(** A solver verdict whose certificate the independent checker rejected
    — either the solver or the checker is wrong, and the verdict cannot
    be trusted. *)

exception Unknown_verdict of string
(** Raised by the unbounded entry points ({!check}, {!check_sat},
    {!sat}) when a solve ends [Unknown] — only possible after
    {!set_budget} or {!set_interrupt}; budget-aware callers use the
    [_bounded] variants instead. *)

val create :
  ?solver_options:Satsolver.Solver.options ->
  ?portfolio:int ->
  ?portfolio_configs:Satsolver.Solver.options list ->
  ?certify:bool ->
  two_instance:bool ->
  Rtl.Netlist.t ->
  t

val unroller : t -> Unroller.t
val graph : t -> Aig.t

val ensure_frames : t -> int -> unit

val assume : t -> Aig.lit -> unit
(** Permanently assume the literal. *)

val assume_implication : t -> Aig.lit -> Aig.lit -> unit
(** Permanently assume [a -> b]; with a fresh activation variable as
    [a], this arms retractable obligations for incremental checking. *)

val pre_encode : t -> unit
(** Force SAT encodings for every state variable, input and parameter of
    all materialised frames. Called implicitly before each solve;
    incremental — frames already encoded are skipped. *)

val sat_vars : t -> int
(** Number of SAT variables allocated so far (observability hook for the
    incremental pre-encoding). *)

val set_budget : t -> Satsolver.Solver.budget -> unit
(** Resource budget applied to every subsequent solve (each portfolio
    racer gets the full budget independently). Default
    {!Satsolver.Solver.no_budget}. *)

val budget : t -> Satsolver.Solver.budget

val set_interrupt : t -> (unit -> bool) option -> unit
(** Cooperative cancellation hook, polled from inside every subsequent
    solve. When it returns [true] the solve unwinds and reports
    [Unknown "interrupted"]; the engine stays usable. *)

type outcome = Holds | Cex of Cex.t

type 'a bounded = Decided of 'a | Unknown of string
    (** Three-valued solve result: [Unknown reason] when the budget ran
        out or the interrupt fired before a verdict — a resource fact
        about this solve, not a property of the instance. *)

val check_bounded : t -> Aig.lit -> outcome bounded
val check_sat_bounded : t -> Aig.lit list -> Cex.t option bounded
val sat_bounded : t -> Aig.lit list -> bool bounded

val check : t -> Aig.lit -> outcome
(** [check t goal] decides whether the assumptions imply [goal]. If
    satisfiable with [¬goal], returns the extracted counterexample over
    all materialised frames. *)

val check_sat : t -> Aig.lit list -> Cex.t option
(** Low-level: is the conjunction of assumptions and the given literals
    satisfiable? Returns the witness if so. *)

val sat : t -> Aig.lit list -> bool
(** Like {!check_sat} but without counterexample extraction — the cheap
    form for per-svar condition checks where only the verdict matters. *)

val solve_stats : t -> Satsolver.Solver.stats
(** Cumulative statistics of the engine's own solver (sequential solves
    only; portfolio solves run in throwaway solvers). *)

val last_stats : t -> Satsolver.Solver.stats
(** Statistics of the most recent solve alone: the per-check delta in
    sequential mode, the winning configuration's totals in portfolio
    mode. *)

val last_winner : t -> int option
(** Index of the configuration that won the most recent portfolio race;
    [None] after a sequential solve. *)

val last_losers_stats : t -> Satsolver.Solver.stats
(** Summed statistics of the losing configurations of the most recent
    portfolio race — zero after a sequential solve. *)

val certifying : t -> bool

val cert_totals : t -> Cert.Proof.totals
(** Cumulative certification accounting for this engine: verdicts
    checked, proof sizes, and solve vs check wall time. *)
