open Rtl

(** Extracted counterexamples: a concrete two-instance waveform over
    the materialised time frames (Sec. 3.5 of the paper asks for
    explicit multi-cycle counterexamples; this module is their
    representation). *)

type t

val extract : Unroller.t -> (Aig.lit -> bool) -> t
(** Snapshot every state variable, input and parameter over all
    materialised frames of both instances under the given AIG model. *)

val frames : t -> int
val two_instance : t -> bool
val svar_value : t -> Unroller.instance -> frame:int -> Structural.svar -> Bitvec.t
val input_value : t -> Unroller.instance -> frame:int -> Expr.signal -> Bitvec.t
val param_value : t -> Expr.signal -> Bitvec.t
val param_value_by_name : t -> string -> Bitvec.t

val diff_svars : t -> frame:int -> Structural.Svar_set.t
(** State variables whose values differ between the two instances at
    the given cycle (S_cex of the paper when read at the violated
    cycle). Empty for single-instance counterexamples. *)

val diff_inputs : t -> frame:int -> Expr.signal list

val poke_svar :
  t -> Unroller.instance -> frame:int -> Structural.svar -> Bitvec.t -> unit
(** Overwrite one recorded state value. Fault-injection hook for
    validator tests — a mutated witness must be rejected by
    {!Certval.validate}; never used by the extraction pipeline. *)

val pp : Format.formatter -> t -> unit
(** Waveform dump: parameters, then per cycle the inputs and the
    differing state variables with their A/B values. *)

val pp_full : Format.formatter -> t -> unit
(** Like {!pp} but prints every state variable, not only differing
    ones. *)
