module S = Satsolver.Solver
module L = Satsolver.Lit

exception Certification_failed of string
exception Unknown_verdict of string

type t = {
  g : Aig.t;
  u : Unroller.t;
  solver : S.t;
  cnf : Aig.Cnf.ctx;
  portfolio : int;  (* configs raced per solve; <= 1 means sequential *)
  configs : S.options list option;
  seq_options : S.options option;  (* for certified sequential re-solves *)
  certify : bool;
  mutable pre_encoded : int;  (* high-water mark: frames <= this are done *)
  mutable params_encoded : bool;
  mutable last_stats : S.stats;
  mutable last_winner_ : int option;
  mutable last_losers_ : S.stats;
  mutable cert_tot : Cert.Proof.totals;
  mutable budget : S.budget;  (* applies to every subsequent solve *)
  mutable interrupt : (unit -> bool) option;  (* cooperative cancellation *)
}

let create ?solver_options ?(portfolio = 1) ?portfolio_configs
    ?(certify = false) ~two_instance nl =
  let g = Aig.create () in
  let u = Unroller.create g nl ~two_instance in
  let solver = S.create ?options:solver_options () in
  let cnf = Aig.Cnf.create g solver in
  {
    g;
    u;
    solver;
    cnf;
    portfolio;
    configs = portfolio_configs;
    seq_options = solver_options;
    certify;
    pre_encoded = -1;
    params_encoded = false;
    last_stats = S.zero_stats;
    last_winner_ = None;
    last_losers_ = S.zero_stats;
    cert_tot = Cert.Proof.zero_totals;
    budget = S.no_budget;
    interrupt = None;
  }

let set_budget t b = t.budget <- b
let budget t = t.budget
let set_interrupt t f = t.interrupt <- f

let unroller t = t.u
let graph t = t.g
let ensure_frames t k = Unroller.ensure_frames t.u k
let assume t l = Aig.Cnf.assert_lit t.cnf l
let assume_implication t a b = Aig.Cnf.assert_implies t.cnf a b

(* Pre-encode every extractable variable so model extraction never
   consults a SAT variable allocated after solving. Incremental: the set
   of state variables and inputs at a materialised frame never changes,
   so frames at or below the high-water mark are skipped. *)
let h_pre_encode = Obs.Metrics.histogram "ipc.pre_encode_seconds"

let pre_encode_core t =
  let nl = Unroller.netlist t.u in
  let instances =
    if Unroller.two_instance t.u then [ Unroller.A; Unroller.B ]
    else [ Unroller.A ]
  in
  let svars = Rtl.Structural.all_svars nl in
  List.iter
    (fun inst ->
      for frame = t.pre_encoded + 1 to Unroller.frames t.u do
        Rtl.Structural.Svar_set.iter
          (fun sv ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.svar_vec t.u inst ~frame sv))
          svars;
        List.iter
          (fun (s : Rtl.Expr.signal) ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.input_vec t.u inst ~frame s))
          nl.Rtl.Netlist.inputs
      done)
    instances;
  t.pre_encoded <- Unroller.frames t.u;
  if not t.params_encoded then begin
    List.iter
      (fun (s : Rtl.Expr.signal) ->
        Array.iter
          (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
          (Unroller.param_vec t.u s))
      nl.Rtl.Netlist.params;
    t.params_encoded <- true
  end

let pre_encode t =
  (* Only instrument when there is work to do: the common call is a
     no-op re-check on the hot path of every SAT query. *)
  if t.pre_encoded < Unroller.frames t.u || not t.params_encoded then
    Obs.Metrics.time h_pre_encode (fun () ->
        Obs.Trace.with_span "ipc.pre_encode"
          ~attrs:[ ("frames", Obs.Trace.Int (Unroller.frames t.u)) ]
          (fun () -> pre_encode_core t))

let sat_vars t = S.nvars t.solver

(* Value of an AIG literal under a SAT-variable valuation. *)
let model_fn_of t sat_value =
  let g = t.g in
  fun l -> Aig.eval g (fun var_lit -> sat_value var_lit) l

(* Certified solves always go through the export/portfolio path (with
   jobs possibly 1): the engine's incremental solver keeps activation
   clauses from every past obligation, while a certificate must be
   checked against one self-contained CNF snapshot. *)
let solve_certified t ~configs ~nvars ~clauses ~assumptions =
  let t0 = Unix.gettimeofday () in
  let o =
    Parallel.Portfolio.solve ?configs ~certify:true ~budget:t.budget
      ?interrupt:t.interrupt ~jobs:(max 1 t.portfolio) ~nvars ~clauses
      ~assumptions ()
  in
  let solve_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  (match o.Parallel.Portfolio.verdict with
  | Parallel.Portfolio.Unknown _ ->
      (* nothing to certify — but the gap in coverage is accounted, so a
         certification summary cannot silently overstate what it vouches
         for *)
      t.cert_tot <-
        Cert.Proof.add_totals t.cert_tot
          {
            Cert.Proof.zero_totals with
            Cert.Proof.unknown_skipped = 1;
            solve_seconds = solve_s;
          }
  | Parallel.Portfolio.Unsat -> (
      let proof =
        match o.Parallel.Portfolio.proof with
        | Some p -> p
        | None -> assert false (* certify:true always records *)
      in
      match
        Cert.Rup.check ~assumptions ~nvars ~clauses
          ~proof:(Cert.Proof.steps proof) ()
      with
      | Ok _ ->
          t.cert_tot <-
            Cert.Proof.add_totals t.cert_tot
              {
                Cert.Proof.zero_totals with
                Cert.Proof.unsat_checked = 1;
                proof_steps = Cert.Proof.length proof;
                proof_lits = Cert.Proof.n_lits proof;
                solve_seconds = solve_s;
                check_seconds = Unix.gettimeofday () -. t1;
              }
      | Error msg ->
          raise (Certification_failed ("UNSAT certificate rejected: " ^ msg)))
  | Parallel.Portfolio.Sat model -> (
      let value v = v < Array.length model && model.(v) in
      match Cert.Model.check ~clauses ~value with
      | Ok () ->
          t.cert_tot <-
            Cert.Proof.add_totals t.cert_tot
              {
                Cert.Proof.zero_totals with
                Cert.Proof.sat_checked = 1;
                solve_seconds = solve_s;
                check_seconds = Unix.gettimeofday () -. t1;
              }
      | Error msg -> raise (Certification_failed ("model rejected: " ^ msg))));
  o

let m_checks = Obs.Metrics.counter "ipc.checks"

let solve_raw_core t extra =
  pre_encode t;
  let assumptions = List.map (Aig.Cnf.sat_lit t.cnf) extra in
  if (not t.certify) && t.portfolio <= 1 then begin
    let before = S.stats t.solver in
    S.set_terminate t.solver t.interrupt;
    t.last_winner_ <- None;
    t.last_losers_ <- S.zero_stats;
    match
      let r = S.solve_bounded ~assumptions ~budget:t.budget t.solver in
      t.last_stats <- S.diff_stats (S.stats t.solver) before;
      r
    with
    | S.Unknown reason -> `Unknown reason
    | exception S.Interrupted ->
        t.last_stats <- S.diff_stats (S.stats t.solver) before;
        `Unknown "interrupted"
    | S.Solved S.Unsat -> `Unsat
    | S.Solved S.Sat ->
        let sat_value lit =
          try S.value t.solver lit with Invalid_argument _ -> false
        in
        `Sat (fun l -> sat_value (Aig.Cnf.sat_lit t.cnf l))
  end
  else begin
    let nvars, clauses = S.export t.solver in
    let configs =
      match (t.configs, t.seq_options) with
      | (Some _ as cs), _ -> cs
      | None, Some o when t.portfolio <= 1 -> Some [ o ]
      | None, _ -> None
    in
    let o =
      if t.certify then solve_certified t ~configs ~nvars ~clauses ~assumptions
      else
        Parallel.Portfolio.solve ?configs ~budget:t.budget
          ?interrupt:t.interrupt ~jobs:t.portfolio ~nvars ~clauses ~assumptions
          ()
    in
    t.last_stats <- o.Parallel.Portfolio.stats;
    t.last_winner_ <-
      (if t.portfolio > 1 && o.Parallel.Portfolio.winner >= 0 then
         Some o.Parallel.Portfolio.winner
       else None);
    t.last_losers_ <- o.Parallel.Portfolio.losers_stats;
    match o.Parallel.Portfolio.verdict with
    | Parallel.Portfolio.Unknown reason -> `Unknown reason
    | Parallel.Portfolio.Unsat -> `Unsat
    | Parallel.Portfolio.Sat model ->
        let sat_value lit =
          let v = L.var lit in
          if v < Array.length model then
            if L.sign lit then model.(v) else not model.(v)
          else false
        in
        `Sat (fun l -> sat_value (Aig.Cnf.sat_lit t.cnf l))
  end

let solve_raw t extra =
  Obs.Metrics.incr m_checks;
  Obs.Trace.with_span "ipc.check"
    ~attrs:
      [
        ( "mode",
          Obs.Trace.Str
            (if t.certify then "certified"
             else if t.portfolio > 1 then "portfolio"
             else "incremental") );
        ("assumptions", Obs.Trace.Int (List.length extra));
      ]
    (fun () -> solve_raw_core t extra)

type outcome = Holds | Cex of Cex.t
type 'a bounded = Decided of 'a | Unknown of string

let check_sat_bounded t extra =
  match solve_raw t extra with
  | `Unsat -> Decided None
  | `Sat value -> Decided (Some (Cex.extract t.u (model_fn_of t value)))
  | `Unknown reason -> Unknown reason

let sat_bounded t extra =
  match solve_raw t extra with
  | `Unsat -> Decided false
  | `Sat _ -> Decided true
  | `Unknown reason -> Unknown reason

let check_bounded t goal =
  match check_sat_bounded t [ Aig.lit_not goal ] with
  | Decided None -> Decided Holds
  | Decided (Some cex) -> Decided (Cex cex)
  | Unknown reason -> Unknown reason

(* Legacy unbounded API: an engine without budget or interrupt can never
   answer Unknown, so these only raise for callers that installed a
   budget and then used the wrong entry point. *)
let check_sat t extra =
  match check_sat_bounded t extra with
  | Decided r -> r
  | Unknown reason -> raise (Unknown_verdict reason)

let sat t extra =
  match sat_bounded t extra with
  | Decided b -> b
  | Unknown reason -> raise (Unknown_verdict reason)

let check t goal =
  match check_bounded t goal with
  | Decided o -> o
  | Unknown reason -> raise (Unknown_verdict reason)

let solve_stats t = S.stats t.solver
let last_stats t = t.last_stats
let last_winner t = t.last_winner_
let last_losers_stats t = t.last_losers_
let certifying t = t.certify
let cert_totals t = t.cert_tot
