module S = Satsolver.Solver
module L = Satsolver.Lit

exception Certification_failed of string
exception Unknown_verdict of string

type t = {
  g : Aig.t;
  u : Unroller.t;
  solver : S.t;
  cnf : Aig.Cnf.ctx;
  portfolio : int;  (* configs raced per solve; <= 1 means sequential *)
  configs : S.options list option;
  seq_options : S.options option;  (* for certified sequential re-solves *)
  certify : bool;
  cert_jobs : int;  (* > 0: pipelined streaming checker on that many domains *)
  simp : bool;  (* problem reduction for witness-free solves *)
  mutable assumed : Aig.lit list;  (* permanent assumptions, reversed *)
  mutable implications : (Aig.lit * Aig.lit) list;  (* reversed *)
  mutable pre_encoded : int;  (* high-water mark: frames <= this are done *)
  mutable params_encoded : bool;
  mutable last_stats : S.stats;
  mutable last_winner_ : int option;
  mutable last_losers_ : S.stats;
  mutable cert_tot : Cert.Proof.totals;
  mutable budget : S.budget;  (* applies to every subsequent solve *)
  mutable interrupt : (unit -> bool) option;  (* cooperative cancellation *)
  mutable red_solves : int;  (* solves answered on a reduced problem *)
  mutable red_snapshot : (int * int) option;  (* last reduced (vars, clauses) *)
  mutable red_report : Simp.reduction option;  (* finalised accounting *)
}

let create ?solver_options ?(portfolio = 1) ?portfolio_configs
    ?(certify = false) ?(cert_jobs = 0) ?(simp = true) ~two_instance nl =
  let g = Aig.create () in
  let u = Unroller.create g nl ~two_instance in
  let solver = S.create ?options:solver_options () in
  let cnf = Aig.Cnf.create g solver in
  {
    g;
    u;
    solver;
    cnf;
    portfolio;
    configs = portfolio_configs;
    seq_options = solver_options;
    certify;
    cert_jobs = max 0 cert_jobs;
    simp;
    assumed = [];
    implications = [];
    pre_encoded = -1;
    params_encoded = false;
    last_stats = S.zero_stats;
    last_winner_ = None;
    last_losers_ = S.zero_stats;
    cert_tot = Cert.Proof.zero_totals;
    budget = S.no_budget;
    interrupt = None;
    red_solves = 0;
    red_snapshot = None;
    red_report = None;
  }

let set_budget t b = t.budget <- b
let budget t = t.budget
let set_interrupt t f = t.interrupt <- f

let unroller t = t.u
let graph t = t.g
let ensure_frames t k = Unroller.ensure_frames t.u k

let assume t l =
  t.assumed <- l :: t.assumed;
  Aig.Cnf.assert_lit t.cnf l

let assume_implication t a b =
  t.implications <- (a, b) :: t.implications;
  Aig.Cnf.assert_implies t.cnf a b

(* Pre-encode every extractable variable so model extraction never
   consults a SAT variable allocated after solving. Incremental: the set
   of state variables and inputs at a materialised frame never changes,
   so frames at or below the high-water mark are skipped. *)
let h_pre_encode = Obs.Metrics.histogram "ipc.pre_encode_seconds"

let pre_encode_core t =
  let nl = Unroller.netlist t.u in
  let instances =
    if Unroller.two_instance t.u then [ Unroller.A; Unroller.B ]
    else [ Unroller.A ]
  in
  let svars = Rtl.Structural.all_svars nl in
  List.iter
    (fun inst ->
      for frame = t.pre_encoded + 1 to Unroller.frames t.u do
        Rtl.Structural.Svar_set.iter
          (fun sv ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.svar_vec t.u inst ~frame sv))
          svars;
        List.iter
          (fun (s : Rtl.Expr.signal) ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.input_vec t.u inst ~frame s))
          nl.Rtl.Netlist.inputs
      done)
    instances;
  t.pre_encoded <- Unroller.frames t.u;
  if not t.params_encoded then begin
    List.iter
      (fun (s : Rtl.Expr.signal) ->
        Array.iter
          (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
          (Unroller.param_vec t.u s))
      nl.Rtl.Netlist.params;
    t.params_encoded <- true
  end

let pre_encode t =
  (* Only instrument when there is work to do: the common call is a
     no-op re-check on the hot path of every SAT query. *)
  if t.pre_encoded < Unroller.frames t.u || not t.params_encoded then
    Obs.Metrics.time h_pre_encode (fun () ->
        Obs.Trace.with_span "ipc.pre_encode"
          ~attrs:[ ("frames", Obs.Trace.Int (Unroller.frames t.u)) ]
          (fun () -> pre_encode_core t))

let sat_vars t = S.nvars t.solver

(* Value of an AIG literal under a SAT-variable valuation. *)
let model_fn_of t sat_value =
  let g = t.g in
  fun l -> Aig.eval g (fun var_lit -> sat_value var_lit) l

(* Certified solves always go through the export/portfolio path (with
   jobs possibly 1): the engine's incremental solver keeps activation
   clauses from every past obligation, while a certificate must be
   checked against one self-contained CNF snapshot. *)
let solve_certified t ~configs ~nvars ~clauses ~assumptions =
  let t0 = Unix.gettimeofday () in
  let o =
    Parallel.Portfolio.solve ?configs ~certify:true ~cert_jobs:t.cert_jobs
      ~budget:t.budget ?interrupt:t.interrupt ~jobs:(max 1 t.portfolio) ~nvars
      ~clauses ~assumptions ()
  in
  let solve_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  (match o.Parallel.Portfolio.verdict with
  | Parallel.Portfolio.Unknown _ ->
      (* nothing to certify — but the gap in coverage is accounted, so a
         certification summary cannot silently overstate what it vouches
         for *)
      t.cert_tot <-
        Cert.Proof.add_totals t.cert_tot
          {
            Cert.Proof.zero_totals with
            Cert.Proof.unknown_skipped = 1;
            solve_seconds = solve_s;
          }
  | Parallel.Portfolio.Unsat ->
      if t.cert_jobs > 0 then begin
        (* pipelined mode: the stream was checked while the solver ran;
           only the residual drain after the last step counts as check
           time — the rest overlapped the search *)
        match o.Parallel.Portfolio.cert with
        | Some (Ok s) ->
            let drain = min solve_s s.Cert.Pipeline.drain_seconds in
            t.cert_tot <-
              Cert.Proof.add_totals t.cert_tot
                {
                  Cert.Proof.zero_totals with
                  Cert.Proof.unsat_checked = 1;
                  proof_steps = s.Cert.Pipeline.steps;
                  proof_lits = s.Cert.Pipeline.lits;
                  epochs = s.Cert.Pipeline.epochs;
                  spilled_epochs = s.Cert.Pipeline.spilled_epochs;
                  solve_seconds = solve_s -. drain;
                  check_seconds = drain;
                }
        | Some (Error msg) ->
            raise (Certification_failed ("UNSAT certificate rejected: " ^ msg))
        | None ->
            (* an Unsat winner always settles its pipeline *)
            raise
              (Certification_failed
                 "UNSAT verdict arrived without a checked certificate stream")
      end
      else begin
        let proof =
          match o.Parallel.Portfolio.proof with
          | Some p -> p
          | None -> assert false (* certify:true always records *)
        in
        match
          Cert.Rup.check ~assumptions ~nvars ~clauses
            ~proof:(Cert.Proof.steps proof) ()
        with
        | Ok _ ->
            t.cert_tot <-
              Cert.Proof.add_totals t.cert_tot
                {
                  Cert.Proof.zero_totals with
                  Cert.Proof.unsat_checked = 1;
                  proof_steps = Cert.Proof.length proof;
                  proof_lits = Cert.Proof.n_lits proof;
                  solve_seconds = solve_s;
                  check_seconds = Unix.gettimeofday () -. t1;
                }
        | Error msg ->
            raise (Certification_failed ("UNSAT certificate rejected: " ^ msg))
      end
  | Parallel.Portfolio.Sat model -> (
      let value v = v < Array.length model && model.(v) in
      match Cert.Model.check ~clauses ~value with
      | Ok () ->
          t.cert_tot <-
            Cert.Proof.add_totals t.cert_tot
              {
                Cert.Proof.zero_totals with
                Cert.Proof.sat_checked = 1;
                solve_seconds = solve_s;
                check_seconds = Unix.gettimeofday () -. t1;
              }
      | Error msg -> raise (Certification_failed ("model rejected: " ^ msg))));
  o

let m_checks = Obs.Metrics.counter "ipc.checks"
let m_reduced = Obs.Metrics.counter "simp.reduced_solves"
let m_vars_saved = Obs.Metrics.counter "simp.vars_saved"
let m_clauses_saved = Obs.Metrics.counter "simp.clauses_saved"

(* Reduced CNF for a witness-free solve on the snapshot path: rebuild
   the cone of the tracked permanent constraints plus this solve's
   assumption literals into a fresh graph ([Simp.Sweep]), Tseitin-encode
   it into a throwaway solver, and export {e that}. Dropped Tseitin
   definitions only name otherwise-unconstrained fresh variables, so the
   reduced CNF is equisatisfiable with the full snapshot; certified
   solves check their DRUP proof against exactly this reduced CNF. *)
let reduced_snapshot t extra =
  Obs.Trace.with_span "simp.snapshot"
    ~attrs:[ ("assumptions", Obs.Trace.Int (List.length extra)) ]
  @@ fun () ->
  (* Per-property cone of influence over the armed obligations: an
     implication whose activation variable is not assumed by this solve
     is satisfied by setting that variable false, and — activation
     variables appearing nowhere else (see {!assume_implication}) —
     neither it nor its consequent cone can affect the verdict, so both
     are dropped. Implications whose antecedent is not a free variable
     are kept unconditionally. *)
  let droppable a =
    (not (List.memq a extra))
    && (not (Aig.is_const a))
    && (not (Aig.complemented a))
    && Aig.fanins t.g (Aig.node_of a) = None
  in
  let kept = List.filter (fun (a, _) -> not (droppable a)) t.implications in
  let roots =
    List.rev_append t.assumed
      (List.fold_left (fun acc (a, b) -> a :: b :: acc) extra kept)
  in
  let sw = Simp.Sweep.rebuild t.g ~roots in
  let solver = S.create () in
  let ctx = Aig.Cnf.create (Simp.Sweep.graph sw) solver in
  List.iter
    (fun l -> Aig.Cnf.assert_lit ctx (Simp.Sweep.map sw l))
    (List.rev t.assumed);
  List.iter
    (fun (a, b) ->
      Aig.Cnf.assert_implies ctx (Simp.Sweep.map sw a) (Simp.Sweep.map sw b))
    (List.rev kept);
  let assumptions =
    List.map (fun l -> Aig.Cnf.sat_lit ctx (Simp.Sweep.map sw l)) extra
  in
  let nvars, clauses = S.export solver in
  t.red_snapshot <- Some (nvars, List.length clauses);
  (nvars, clauses, assumptions)

let solve_raw_core t ~want_cex extra =
  (* Reduction (simp): a witness-free solve only needs the logic that
     can reach its constraint cone. Sequentially that means skipping
     [pre_encode] — the lazy Tseitin encoding then IS the
     cone-of-influence reduction; on the snapshot path the reduced CNF
     is rebuilt from the tracked roots. Witness-producing solves always
     encode the full extraction set, so their CNF — and with it the
     model and the extracted counterexample — is bit-identical with
     simp on or off. *)
  let reduce = t.simp && not want_cex in
  if not reduce then pre_encode t;
  if (not t.certify) && t.portfolio <= 1 then begin
    if reduce then begin
      t.red_solves <- t.red_solves + 1;
      Obs.Metrics.incr m_reduced
    end;
    let assumptions = List.map (Aig.Cnf.sat_lit t.cnf) extra in
    let before = S.stats t.solver in
    S.set_terminate t.solver t.interrupt;
    t.last_winner_ <- None;
    t.last_losers_ <- S.zero_stats;
    match
      let r = S.solve_bounded ~assumptions ~budget:t.budget t.solver in
      t.last_stats <- S.diff_stats (S.stats t.solver) before;
      r
    with
    | S.Unknown reason -> `Unknown reason
    | exception S.Interrupted ->
        t.last_stats <- S.diff_stats (S.stats t.solver) before;
        `Unknown "interrupted"
    | S.Solved S.Unsat -> `Unsat
    | S.Solved S.Sat ->
        let sat_value lit =
          try S.value t.solver lit with Invalid_argument _ -> false
        in
        `Sat (fun l -> sat_value (Aig.Cnf.sat_lit t.cnf l))
  end
  else begin
    let nvars, clauses, assumptions =
      if reduce then begin
        t.red_solves <- t.red_solves + 1;
        Obs.Metrics.incr m_reduced;
        let nvars, clauses, assumptions = reduced_snapshot t extra in
        Obs.Metrics.add m_vars_saved (max 0 (S.nvars t.solver - nvars));
        Obs.Metrics.add m_clauses_saved
          (max 0 (S.nclauses t.solver - List.length clauses));
        (nvars, clauses, assumptions)
      end
      else begin
        let assumptions = List.map (Aig.Cnf.sat_lit t.cnf) extra in
        let nvars, clauses = S.export t.solver in
        (nvars, clauses, assumptions)
      end
    in
    let configs =
      match (t.configs, t.seq_options) with
      | (Some _ as cs), _ -> cs
      | None, Some o when t.portfolio <= 1 -> Some [ o ]
      | None, _ -> None
    in
    let o =
      if t.certify then solve_certified t ~configs ~nvars ~clauses ~assumptions
      else
        Parallel.Portfolio.solve ?configs ~budget:t.budget
          ?interrupt:t.interrupt ~jobs:t.portfolio ~nvars ~clauses ~assumptions
          ()
    in
    t.last_stats <- o.Parallel.Portfolio.stats;
    t.last_winner_ <-
      (if t.portfolio > 1 && o.Parallel.Portfolio.winner >= 0 then
         Some o.Parallel.Portfolio.winner
       else None);
    t.last_losers_ <- o.Parallel.Portfolio.losers_stats;
    match o.Parallel.Portfolio.verdict with
    | Parallel.Portfolio.Unknown reason -> `Unknown reason
    | Parallel.Portfolio.Unsat -> `Unsat
    | Parallel.Portfolio.Sat model ->
        (* only consulted by witness-producing solves, which never use
           the reduced snapshot — the model indexes the full CNF *)
        let sat_value lit =
          let v = L.var lit in
          if v < Array.length model then
            if L.sign lit then model.(v) else not model.(v)
          else false
        in
        `Sat (fun l -> sat_value (Aig.Cnf.sat_lit t.cnf l))
  end

let solve_raw t ~want_cex extra =
  Obs.Metrics.incr m_checks;
  Obs.Trace.with_span "ipc.check"
    ~attrs:
      [
        ( "mode",
          Obs.Trace.Str
            (if t.certify then "certified"
             else if t.portfolio > 1 then "portfolio"
             else "incremental") );
        ("assumptions", Obs.Trace.Int (List.length extra));
        ("reduced", Obs.Trace.Bool (t.simp && not want_cex));
      ]
    (fun () -> solve_raw_core t ~want_cex extra)

(* --- the unified three-valued interface ----------------------------- *)

type query = Goal of Aig.lit | Violation of Aig.lit list
type verdict = Proved | Refuted of Cex.t option | Unknown of string

let decide ?(cex = true) t q : verdict =
  let extra =
    match q with Goal g -> [ Aig.lit_not g ] | Violation ls -> ls
  in
  match solve_raw t ~want_cex:cex extra with
  | `Unsat -> Proved
  | `Unknown reason -> Unknown reason
  | `Sat value ->
      Refuted
        (if cex then Some (Cex.extract t.u (model_fn_of t value)) else None)

(* --- legacy pairs, now thin views of [decide] ----------------------- *)

type outcome = Holds | Cex of Cex.t
type 'a bounded = Decided of 'a | Unknown of string

let check_sat_bounded t extra : Cex.t option bounded =
  match decide t (Violation extra) with
  | Proved -> Decided None
  | Refuted c -> Decided (Some (Option.get c))
  | Unknown reason -> Unknown reason

let sat_bounded t extra : bool bounded =
  match decide ~cex:false t (Violation extra) with
  | Proved -> Decided false
  | Refuted _ -> Decided true
  | Unknown reason -> Unknown reason

let check_bounded t goal : outcome bounded =
  match decide t (Goal goal) with
  | Proved -> Decided Holds
  | Refuted c -> Decided (Cex (Option.get c))
  | Unknown reason -> Unknown reason

(* Legacy unbounded API: an engine without budget or interrupt can never
   answer Unknown, so these only raise for callers that installed a
   budget and then used the wrong entry point. *)
let check_sat t extra =
  match check_sat_bounded t extra with
  | Decided r -> r
  | Unknown reason -> raise (Unknown_verdict reason)

let sat t extra =
  match sat_bounded t extra with
  | Decided b -> b
  | Unknown reason -> raise (Unknown_verdict reason)

let check t goal =
  match check_bounded t goal with
  | Decided o -> o
  | Unknown reason -> raise (Unknown_verdict reason)

(* --- reduction accounting ------------------------------------------- *)

let reduction_stats t =
  if (not t.simp) || t.red_solves = 0 then None
  else
    match t.red_report with
    | Some _ as r -> r
    | None ->
        (* Both sides are measured, never estimated. Reduced: the CNF
           the reduced solves actually shipped — the last rebuilt
           snapshot, or (sequentially) the solver's lazily-encoded
           constraint cone. Full: the same solver after [pre_encode],
           which is exactly the CNF a simp-off run would have held —
           lazy Tseitin encodes each node once, so encoding the
           extraction set now (the run is over) measures it. Cached:
           the first call finalises the accounting. *)
        let red_vars, red_clauses =
          match t.red_snapshot with
          | Some (v, c) -> (v, c)
          | None -> (S.nvars t.solver, S.nclauses t.solver)
        in
        pre_encode t;
        let r =
          Some
            {
              Simp.red_solves = t.red_solves;
              red_full_vars = S.nvars t.solver;
              red_full_clauses = S.nclauses t.solver;
              red_vars;
              red_clauses;
            }
        in
        t.red_report <- r;
        r

let solve_stats t = S.stats t.solver
let last_stats t = t.last_stats
let last_winner t = t.last_winner_
let last_losers_stats t = t.last_losers_
let certifying t = t.certify
let simplifying t = t.simp
let cert_totals t = t.cert_tot
