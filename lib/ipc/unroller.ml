open Rtl
open Bitblast

type instance = A | B

let pp_instance fmt = function
  | A -> Format.pp_print_string fmt "A"
  | B -> Format.pp_print_string fmt "B"

(* Per-frame, per-instance storage keyed by signal / mem ids. *)
type frame = {
  f_regs : (int, Blaster.vec) Hashtbl.t;  (* signal id -> vec *)
  f_mems : (int, Blaster.vec array) Hashtbl.t;  (* mem id -> element vecs *)
  f_inputs : (int, Blaster.vec) Hashtbl.t;  (* signal id -> vec *)
}

(* Growable frame store: O(1) indexed lookup and amortised O(1) append.
   The previous [frame list] representation made [frame_of] O(n) and the
   append on advance O(n), turning deep unrollings quadratic. *)
type frames = { mutable arr : frame array; mutable len : int }

let fv_create () = { arr = [||]; len = 0 }

let fv_get fv i =
  if i < 0 || i >= fv.len then invalid_arg "Unroller: frame out of range";
  fv.arr.(i)

let fv_push fv f =
  if fv.len = Array.length fv.arr then begin
    let cap = max 4 (2 * fv.len) in
    let arr = Array.make cap f in
    Array.blit fv.arr 0 arr 0 fv.len;
    fv.arr <- arr
  end;
  fv.arr.(fv.len) <- f;
  fv.len <- fv.len + 1

type t = {
  g : Aig.t;
  nl : Netlist.t;
  duo : bool;
  params : (int, Blaster.vec) Hashtbl.t;  (* shared across inst and time *)
  frames_a : frames;  (* index 0 first *)
  frames_b : frames;
  mutable nframes : int;  (* highest state frame materialised *)
}

let graph t = t.g
let netlist t = t.nl
let two_instance t = t.duo

let new_frame () =
  {
    f_regs = Hashtbl.create 64;
    f_mems = Hashtbl.create 8;
    f_inputs = Hashtbl.create 32;
  }

let create g nl ~two_instance =
  let t =
    {
      g;
      nl;
      duo = two_instance;
      params = Hashtbl.create 8;
      frames_a = fv_create ();
      frames_b = fv_create ();
      nframes = -1;
    }
  in
  List.iter
    (fun (s : Expr.signal) ->
      Hashtbl.replace t.params s.Expr.s_id
        (Blaster.fresh_vec g s.Expr.s_width))
    nl.Netlist.params;
  t

let instances t = if t.duo then [ A; B ] else [ A ]

let frames_of t inst = match inst with A -> t.frames_a | B -> t.frames_b
let frame_of t inst i = fv_get (frames_of t inst) i

let fresh_state_frame t =
  let mk () =
    let f = new_frame () in
    List.iter
      (fun rd ->
        let s = rd.Netlist.rd_signal in
        Hashtbl.replace f.f_regs s.Expr.s_id
          (Blaster.fresh_vec t.g s.Expr.s_width))
      t.nl.Netlist.regs;
    List.iter
      (fun md ->
        let m = md.Netlist.md_mem in
        Hashtbl.replace f.f_mems m.Expr.m_id
          (Array.init m.Expr.m_depth (fun _ ->
               Blaster.fresh_vec t.g m.Expr.m_data_width)))
      t.nl.Netlist.mems;
    f
  in
  (mk, ())

let env_of t inst i =
  let f = frame_of t inst i in
  {
    Blaster.lookup_input =
      (fun s ->
        match Hashtbl.find_opt f.f_inputs s.Expr.s_id with
        | Some v -> v
        | None ->
            let v = Blaster.fresh_vec t.g s.Expr.s_width in
            Hashtbl.replace f.f_inputs s.Expr.s_id v;
            v);
    Blaster.lookup_param = (fun s -> Hashtbl.find t.params s.Expr.s_id);
    Blaster.lookup_reg = (fun s -> Hashtbl.find f.f_regs s.Expr.s_id);
    Blaster.lookup_mem = (fun m idx -> (Hashtbl.find f.f_mems m.Expr.m_id).(idx));
  }

(* Compute frame i+1 of one instance from frame i. *)
let h_frame_seconds = Obs.Metrics.histogram "unroll.frame_seconds"

let advance t inst =
  let i = (frames_of t inst).len - 1 in
  Obs.Metrics.time h_frame_seconds @@ fun () ->
  Obs.Trace.with_span "unroll.advance"
    ~attrs:
      [
        ("frame", Obs.Trace.Int (i + 1));
        ("instance", Obs.Trace.Str (match inst with A -> "A" | B -> "B"));
      ]
  @@ fun () ->
  let blast = Blaster.blaster t.g (env_of t inst i) in
  let next = new_frame () in
  List.iter
    (fun rd ->
      let s = rd.Netlist.rd_signal in
      Hashtbl.replace next.f_regs s.Expr.s_id (blast rd.Netlist.rd_next))
    t.nl.Netlist.regs;
  List.iter
    (fun md ->
      let m = md.Netlist.md_mem in
      let cur = Hashtbl.find (frame_of t inst i).f_mems m.Expr.m_id in
      (* Apply write ports; fold from last to first so the first port
         wins on an address clash, matching the simulator. *)
      let ports =
        List.map
          (fun wp ->
            ( blast wp.Netlist.wp_enable,
              blast wp.Netlist.wp_addr,
              blast wp.Netlist.wp_data ))
          md.Netlist.md_ports
      in
      let elems =
        Array.init m.Expr.m_depth (fun idx ->
            List.fold_left
              (fun acc (en, addr, data) ->
                let hit =
                  Aig.mk_and t.g en.(0) (Blaster.v_eq_const t.g addr idx)
                in
                Blaster.v_mux t.g hit data acc)
              cur.(idx) (List.rev ports))
      in
      Hashtbl.replace next.f_mems m.Expr.m_id elems)
    t.nl.Netlist.mems;
  fv_push (frames_of t inst) next

let ensure_frames t k =
  if t.nframes < 0 then begin
    (* materialise frame 0: fully symbolic starting state *)
    List.iter
      (fun inst ->
        let mk, () = fresh_state_frame t in
        fv_push (frames_of t inst) (mk ()))
      (instances t);
    t.nframes <- 0
  end;
  while t.nframes < k do
    List.iter (fun inst -> advance t inst) (instances t);
    t.nframes <- t.nframes + 1
  done

let frames t = t.nframes

let check_frame t i =
  if i > t.nframes then
    invalid_arg
      (Printf.sprintf "Unroller: frame %d not materialised (have %d)" i
         t.nframes)

let check_inst t inst =
  if inst = B && not t.duo then
    invalid_arg "Unroller: instance B of a single-instance unroller"

let reg_vec t inst ~frame s =
  check_inst t inst;
  check_frame t frame;
  Hashtbl.find (frame_of t inst frame).f_regs s.Expr.s_id

let mem_vec t inst ~frame m idx =
  check_inst t inst;
  check_frame t frame;
  (Hashtbl.find (frame_of t inst frame).f_mems m.Expr.m_id).(idx)

let svar_vec t inst ~frame v =
  match v with
  | Structural.Sreg s -> reg_vec t inst ~frame s
  | Structural.Smem (m, i) -> mem_vec t inst ~frame m i

let input_vec t inst ~frame s =
  check_inst t inst;
  check_frame t frame;
  let f = frame_of t inst frame in
  match Hashtbl.find_opt f.f_inputs s.Expr.s_id with
  | Some v -> v
  | None ->
      let v = Blaster.fresh_vec t.g s.Expr.s_width in
      Hashtbl.replace f.f_inputs s.Expr.s_id v;
      v

let param_vec t s = Hashtbl.find t.params s.Expr.s_id

let blast_at t inst ~frame e =
  check_inst t inst;
  check_frame t frame;
  Blaster.blaster t.g (env_of t inst frame) e

let svar_equal_lit t ~frame v =
  if not t.duo then invalid_arg "Unroller.svar_equal_lit: single instance";
  Blaster.v_eq t.g (svar_vec t A ~frame v) (svar_vec t B ~frame v)

let inputs_equal_lit t ~frame s =
  if not t.duo then invalid_arg "Unroller.inputs_equal_lit: single instance";
  Blaster.v_eq t.g (input_vec t A ~frame s) (input_vec t B ~frame s)
