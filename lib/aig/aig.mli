(** And-Inverter Graphs with structural hashing.

    Nodes are either the constant, free variables, or two-input AND
    gates; edges carry an optional complement. A literal is encoded as
    [2 * node + (1 if complemented)]; {!true_lit} and {!false_lit} are
    the two polarities of the constant node. Structural hashing and
    local simplification keep the graph small. *)

type t
(** A growable graph. *)

type lit = int

val create : unit -> t
val true_lit : lit
val false_lit : lit
val fresh_var : t -> lit
(** A new free variable (positive literal). *)

val lit_not : lit -> lit
val is_const : lit -> bool
val num_nodes : t -> int
(** Nodes allocated so far (constant and variables included). *)

val num_ands : t -> int

(** {1 Traversal}

    Read-only structural access, for cone-of-influence analyses and
    graph rewrites (see {!Simp}). *)

val node_of : lit -> int
(** Node index of a literal ([l / 2]). *)

val complemented : lit -> bool
(** Whether the literal carries the complement edge. *)

val lit_of_node : int -> lit
(** Positive literal of a node. *)

val fanins : t -> int -> (lit * lit) option
(** [fanins t node] is [Some (a, b)] for an AND node, [None] for the
    constant node and free variables. Raises [Invalid_argument] for
    unallocated node indices. *)

val mk_and : t -> lit -> lit -> lit
val mk_or : t -> lit -> lit -> lit
val mk_xor : t -> lit -> lit -> lit
val mk_xnor : t -> lit -> lit -> lit
val mk_mux : t -> lit -> lit -> lit -> lit
(** [mk_mux t sel a b] is [if sel then a else b]. *)

val mk_implies : t -> lit -> lit -> lit
val mk_and_list : t -> lit list -> lit
val mk_or_list : t -> lit list -> lit

(** {1 Evaluation}

    For testing: evaluate literals under an assignment of variables. *)

val eval : t -> (lit -> bool) -> lit -> bool
(** [eval t var_value l]: [var_value] is consulted for variable nodes
    (given the positive literal of the variable). *)

(** {1 CNF encoding} *)

module Cnf : sig
  type ctx
  (** Incremental Tseitin context bound to one SAT solver. Nodes are
      encoded on demand, once. *)

  val create : t -> Satsolver.Solver.t -> ctx

  val sat_lit : ctx -> lit -> Satsolver.Lit.t
  (** SAT literal equisatisfiable with the AIG literal; encodes the
      transitive fan-in into the solver on first use. *)

  val assert_lit : ctx -> lit -> unit
  (** Add a unit clause forcing the AIG literal true. *)

  val assert_implies : ctx -> lit -> lit -> unit
  (** Add clause [¬a ∨ b]. *)
end
