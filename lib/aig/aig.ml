type lit = int

(* Node 0 is the constant node: literal 0 = true, literal 1 = false.
   Variable nodes have fanins (-1, -1). AND nodes store two fanin
   literals with fanin0 >= fanin1 (normalised for hashing). *)

type t = {
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable n : int;  (** nodes allocated *)
  mutable n_ands : int;
  strash : (int * int, int) Hashtbl.t;  (** (fanin0, fanin1) -> node *)
}

let true_lit = 0
let false_lit = 1
let lit_not l = l lxor 1
let node_of l = l lsr 1
let compl_of l = l land 1
let is_const l = node_of l = 0

let create () =
  let t =
    {
      fanin0 = Array.make 1024 (-1);
      fanin1 = Array.make 1024 (-1);
      n = 1;
      n_ands = 0;
      strash = Hashtbl.create 1024;
    }
  in
  t

let grow t =
  if t.n >= Array.length t.fanin0 then begin
    let cap = 2 * Array.length t.fanin0 in
    let f0 = Array.make cap (-1) and f1 = Array.make cap (-1) in
    Array.blit t.fanin0 0 f0 0 t.n;
    Array.blit t.fanin1 0 f1 0 t.n;
    t.fanin0 <- f0;
    t.fanin1 <- f1
  end

let fresh_var t =
  grow t;
  let node = t.n in
  t.fanin0.(node) <- -1;
  t.fanin1.(node) <- -1;
  t.n <- t.n + 1;
  2 * node

let num_nodes t = t.n
let num_ands t = t.n_ands
let complemented l = compl_of l = 1
let lit_of_node n = 2 * n

let fanins t node =
  if node < 0 || node >= t.n then invalid_arg "Aig.fanins: unallocated node";
  let f0 = t.fanin0.(node) in
  if f0 < 0 then None else Some (f0, t.fanin1.(node))

let mk_and t a b =
  (* Local simplifications. *)
  if a = false_lit || b = false_lit then false_lit
  else if a = true_lit then b
  else if b = true_lit then a
  else if a = b then a
  else if a = lit_not b then false_lit
  else begin
    let a, b = if a > b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash (a, b) with
    | Some node -> 2 * node
    | None ->
        grow t;
        let node = t.n in
        t.fanin0.(node) <- a;
        t.fanin1.(node) <- b;
        t.n <- t.n + 1;
        t.n_ands <- t.n_ands + 1;
        Hashtbl.add t.strash (a, b) node;
        2 * node
  end

let mk_or t a b = lit_not (mk_and t (lit_not a) (lit_not b))

let mk_xor t a b =
  (* (a & ~b) | (~a & b) *)
  if a = b then false_lit
  else if a = lit_not b then true_lit
  else if a = false_lit then b
  else if b = false_lit then a
  else if a = true_lit then lit_not b
  else if b = true_lit then lit_not a
  else mk_or t (mk_and t a (lit_not b)) (mk_and t (lit_not a) b)

let mk_xnor t a b = lit_not (mk_xor t a b)

let mk_mux t sel a b =
  if sel = true_lit then a
  else if sel = false_lit then b
  else if a = b then a
  else mk_or t (mk_and t sel a) (mk_and t (lit_not sel) b)

let mk_implies t a b = mk_or t (lit_not a) b
let mk_and_list t = List.fold_left (mk_and t) true_lit
let mk_or_list t = List.fold_left (mk_or t) false_lit

let eval t var_value l =
  let memo = Hashtbl.create 64 in
  let rec node_val node =
    if node = 0 then true
    else
      match Hashtbl.find_opt memo node with
      | Some v -> v
      | None ->
          let v =
            if t.fanin0.(node) < 0 then var_value (2 * node)
            else lit_val t.fanin0.(node) && lit_val t.fanin1.(node)
          in
          Hashtbl.add memo node v;
          v
  and lit_val l =
    let v = node_val (node_of l) in
    if compl_of l = 1 then not v else v
  in
  lit_val l

module Cnf = struct
  module S = Satsolver.Solver
  module L = Satsolver.Lit

  type ctx = {
    graph : t;
    solver : S.t;
    mutable node_var : int array;  (** AIG node -> SAT var, -1 if absent *)
  }

  let create graph solver =
    let ctx = { graph; solver; node_var = Array.make graph.n (-1) } in
    (* Encode the constant node eagerly. *)
    let v = S.new_var solver in
    S.add_clause solver [ L.pos v ];
    ctx.node_var.(0) <- v;
    ctx

  let rec encode_node ctx node =
    if node >= Array.length ctx.node_var then begin
      let bigger = Array.make (max ctx.graph.n (node + 1)) (-1) in
      Array.blit ctx.node_var 0 bigger 0 (Array.length ctx.node_var);
      ctx.node_var <- bigger
    end;
    if ctx.node_var.(node) >= 0 then ctx.node_var.(node)
    else begin
      let v = S.new_var ctx.solver in
      ctx.node_var.(node) <- v;
      let f0 = ctx.graph.fanin0.(node) in
      if f0 >= 0 then begin
        let f1 = ctx.graph.fanin1.(node) in
        let a = encode_lit ctx f0 and b = encode_lit ctx f1 in
        (* v <-> a & b *)
        S.add_clause ctx.solver [ L.neg_of_var v; a ];
        S.add_clause ctx.solver [ L.neg_of_var v; b ];
        S.add_clause ctx.solver
          [ L.pos v; L.negate a; L.negate b ]
      end;
      v
    end

  and encode_lit ctx l =
    let v = encode_node ctx (node_of l) in
    if compl_of l = 1 then L.neg_of_var v else L.pos v

  let sat_lit ctx l = encode_lit ctx l
  let assert_lit ctx l = S.add_clause ctx.solver [ sat_lit ctx l ]

  let assert_implies ctx a b =
    S.add_clause ctx.solver [ L.negate (sat_lit ctx a); sat_lit ctx b ]
end
