# Program the DMA to copy 8 words within public RAM, then wait for it.
        li   t0, 0x0
        li   t1, 0x11111111 # pattern
        li   t2, 8
fill:
        sw   t1, 0(t0)
        addi t0, t0, 4
        addi t1, t1, 1
        addi t2, t2, -1
        bne  t2, zero, fill

        li   t0, 0x20044    # dma.src (word address)
        sw   zero, 0(t0)
        li   t0, 0x20048    # dma.dst
        li   t1, 64
        sw   t1, 0(t0)
        li   t0, 0x2004c    # dma.len
        li   t1, 8
        sw   t1, 0(t0)
        li   t0, 0x20040    # dma.ctrl: start
        li   t1, 1
        sw   t1, 0(t0)
wait:
        lw   a0, 0(t0)      # status: bit0 busy, bit1 done
        andi a1, a0, 2
        beq  a1, zero, wait
        li   t0, 0x100      # first copied word (byte address 64*4)
        lw   a2, 0(t0)
        ebreak
