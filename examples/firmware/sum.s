# Sum the integers 1..100 into a0 and store the result in memory.
        li   t0, 0          # loop counter
        li   a0, 0          # accumulator
        li   t1, 100
loop:
        addi t0, t0, 1
        add  a0, a0, t0
        blt  t0, t1, loop
        li   t2, 0x0        # public RAM base (byte address)
        sw   a0, 0(t2)
        lw   a1, 0(t2)      # read it back
        ebreak
