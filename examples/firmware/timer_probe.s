# Enable the system timer, burn some cycles, read the elapsed count.
# Timer ctrl/value live in the APB region of the memory map.
        li   t0, 0x20000    # timer ctrl  (byte address)
        li   t1, 1
        sw   t1, 0(t0)      # enable
        li   t2, 50
spin:
        addi t2, t2, -1
        bne  t2, zero, spin
        li   t0, 0x20004    # timer value
        lw   a0, 0(t0)
        ebreak
