(* The Fig. 1 attack, end to end in simulation: DMA + timer.

   Preparation: the attacker task programs the DMA with a transfer and
   arms the timer's auto-start-on-DMA-completion event.
   Recording: the victim task performs a secret-dependent number of
   memory accesses; each access that wins bus arbitration against the
   DMA delays the transfer, postponing the timer's start.
   Retrieval: back in the attacker task, the timer value reveals how
   long ago the DMA finished — and with it the victim's access count.

   Run with:  dune exec examples/busted_dma_timer.exe *)

let () =
  Format.printf "== BUSted-style attack: DMA contention read via timer ==@.@.";
  Format.printf
    "The attacker arms the timer to start when its DMA transfer completes;@.";
  Format.printf
    "victim accesses that win arbitration delay the DMA, so a LOWER timer@.";
  Format.printf "reading at the retrieval point means MORE victim accesses.@.@.";
  Format.printf "victim accesses | timer at retrieval | total cycles@.";
  Format.printf "----------------+--------------------+-------------@.";
  let readings =
    Scenarios.Attacks.dma_timer_of
      (Scenarios.Scenario.default_for Scenarios.Scenario.Busted_timer)
      [ 0; 2; 4; 6; 8; 10 ]
  in
  List.iter
    (fun r ->
      Format.printf "%15d | %18d | %12d@." r.Scenarios.Attacks.dt_accesses
        r.Scenarios.Attacks.dt_timer r.Scenarios.Attacks.dt_cycles)
    readings;
  let distinguishable =
    List.length
      (List.sort_uniq compare
         (List.map (fun r -> r.Scenarios.Attacks.dt_timer) readings))
  in
  Format.printf "@.distinct timer readings: %d of %d runs@." distinguishable
    (List.length readings);
  if distinguishable > 1 then
    Format.printf
      "=> the timer leaks the victim's memory access behaviour (no cache,@.   \
       no attacker concurrency — an MCU-wide timing side channel).@."
  else
    Format.printf "=> no leak observed under this schedule (try other phases)@."
