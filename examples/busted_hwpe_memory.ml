(* The new BUSted variant of Sec. 4.1: accelerator + memory — no timer.

   Preparation: the attacker primes a writable memory region with zeros
   and configures the HWPE accelerator to progressively overwrite it
   with non-zero values.
   Recording: the victim's memory accesses contend with the HWPE on the
   interconnect; every lost arbitration round stalls the accelerator.
   Retrieval: the attacker scans the primed region downwards and counts
   the zero cells above the overwrite frontier. The HWPE's progress acts
   as a clock — defeating the popular countermeasure of denying
   untrusted tasks timer access.

   Run with:  dune exec examples/busted_hwpe_memory.exe *)

let () =
  Format.printf "== BUSted variant (Sec. 4.1): accelerator + memory ==@.@.";
  Format.printf
    "The attacker reads the HWPE's progress from the primed memory region;@.";
  Format.printf "no timer IP is touched at any point.@.@.";
  Format.printf "victim accesses | zero cells above the HWPE frontier@.";
  Format.printf "----------------+-----------------------------------@.";
  let readings =
    Scenarios.Attacks.hwpe_memory_of
      (Scenarios.Scenario.default_for Scenarios.Scenario.Hwpe_progressive)
      [ 0; 32; 64; 96; 128 ]
  in
  List.iter
    (fun r ->
      Format.printf "%15d | %34d@." r.Scenarios.Attacks.hw_accesses
        r.Scenarios.Attacks.hw_zero_cells)
    readings;
  let distinct =
    List.length
      (List.sort_uniq compare
         (List.map (fun r -> r.Scenarios.Attacks.hw_zero_cells) readings))
  in
  Format.printf "@.distinct progress readings: %d of %d runs@." distinct
    (List.length readings);
  if distinct > 1 then
    Format.printf
      "=> the memory footprint leaks the victim's access behaviour without@.   \
       any timer — the previously unknown attack variant found by UPEC-SSC.@."
  else Format.printf "=> no leak observed under this schedule@."
