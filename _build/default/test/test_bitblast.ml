(* Tests for the AIG and the word-level bit-blaster. The central
   property: for random expressions and random input values, the
   bit-blasted AIG evaluates to exactly what the concrete simulator
   evaluator computes. *)

open Rtl

let bv w v = Bitvec.of_int ~width:w v

(* ---- AIG unit tests ---- *)

let test_aig_consts () =
  let g = Aig.create () in
  Alcotest.(check int) "and(T,F)" Aig.false_lit
    (Aig.mk_and g Aig.true_lit Aig.false_lit);
  let x = Aig.fresh_var g in
  Alcotest.(check int) "and(x,T)" x (Aig.mk_and g x Aig.true_lit);
  Alcotest.(check int) "and(x,x)" x (Aig.mk_and g x x);
  Alcotest.(check int) "and(x,~x)" Aig.false_lit
    (Aig.mk_and g x (Aig.lit_not x));
  Alcotest.(check int) "xor(x,x)" Aig.false_lit (Aig.mk_xor g x x);
  Alcotest.(check int) "xor(x,~x)" Aig.true_lit (Aig.mk_xor g x (Aig.lit_not x))

let test_aig_strash () =
  let g = Aig.create () in
  let x = Aig.fresh_var g and y = Aig.fresh_var g in
  let a1 = Aig.mk_and g x y in
  let a2 = Aig.mk_and g y x in
  Alcotest.(check int) "structural sharing (commuted)" a1 a2;
  let n = Aig.num_ands g in
  ignore (Aig.mk_and g x y);
  Alcotest.(check int) "no new node" n (Aig.num_ands g)

let test_aig_eval () =
  let g = Aig.create () in
  let x = Aig.fresh_var g and y = Aig.fresh_var g in
  let f = Aig.mk_xor g x y in
  let value assign l = List.assoc l assign in
  Alcotest.(check bool) "xor(1,0)" true
    (Aig.eval g (value [ (x, true); (y, false) ]) f);
  Alcotest.(check bool) "xor(1,1)" false
    (Aig.eval g (value [ (x, true); (y, true) ]) f);
  let m = Aig.mk_mux g x y (Aig.lit_not y) in
  Alcotest.(check bool) "mux sel=1" true
    (Aig.eval g (value [ (x, true); (y, true) ]) m);
  Alcotest.(check bool) "mux sel=0" true
    (Aig.eval g (value [ (x, false); (y, false) ]) m)

(* ---- AIG <-> CNF consistency ---- *)

let test_cnf_equisat () =
  let g = Aig.create () in
  let x = Aig.fresh_var g and y = Aig.fresh_var g and z = Aig.fresh_var g in
  (* f = (x ^ y) & ~z  — satisfiable; f & (x<->y) unsat *)
  let f = Aig.mk_and g (Aig.mk_xor g x y) (Aig.lit_not z) in
  let solver = Satsolver.Solver.create () in
  let ctx = Aig.Cnf.create g solver in
  Aig.Cnf.assert_lit ctx f;
  Alcotest.(check bool) "sat" true
    (Satsolver.Solver.solve solver = Satsolver.Solver.Sat);
  (* model must actually satisfy f *)
  let model l = Satsolver.Solver.value solver (Aig.Cnf.sat_lit ctx l) in
  Alcotest.(check bool) "model satisfies f" true (Aig.eval g model f);
  Aig.Cnf.assert_lit ctx (Aig.mk_xnor g x y);
  Alcotest.(check bool) "unsat with x<->y" true
    (Satsolver.Solver.solve solver = Satsolver.Solver.Unsat)

(* ---- bit-blaster vs concrete evaluation ---- *)

(* Random expression generator over a fixed set of input signals. *)
let inputs_8 =
  [| Expr.signal "bb_a" 8; Expr.signal "bb_b" 8; Expr.signal "bb_c" 8 |]

let gen_expr rs depth =
  let open Expr in
  let rec go depth w =
    if depth = 0 then
      match Random.State.int rs 3 with
      | 0 -> of_int ~width:w (Random.State.int rs (1 lsl min w 30))
      | _ ->
          let s = inputs_8.(Random.State.int rs 3) in
          uresize (input s) w
    else
      let sub w = go (depth - 1) w in
      match Random.State.int rs 16 with
      | 0 -> binop Add (sub w) (sub w)
      | 1 -> binop Sub (sub w) (sub w)
      | 2 -> binop And (sub w) (sub w)
      | 3 -> binop Or (sub w) (sub w)
      | 4 -> binop Xor (sub w) (sub w)
      | 5 -> unop Not (sub w)
      | 6 -> unop Neg (sub w)
      | 7 -> mux (sub 1) (sub w) (sub w)
      | 8 -> uresize (binop Eq (sub 8) (sub 8)) w
      | 9 -> uresize (binop Ult (sub 8) (sub 8)) w
      | 10 -> uresize (binop Slt (sub 8) (sub 8)) w
      | 11 ->
          if w >= 2 then concat (sub (w / 2)) (sub (w - (w / 2))) else sub w
      | 12 ->
          let inner = sub (w + 2) in
          slice inner ~hi:w ~lo:1
      | 13 -> binop Shl (sub w) (sub w)
      | 14 -> binop Lshr (sub w) (sub w)
      | _ -> binop Mul (sub w) (sub w)
  in
  go depth 8

let concrete_env values =
  {
    Sim.Eval.lookup_input =
      (fun s -> List.assoc s.Expr.s_name values);
    Sim.Eval.lookup_param = (fun _ -> assert false);
    Sim.Eval.lookup_reg = (fun _ -> assert false);
    Sim.Eval.lookup_mem = (fun _ _ -> assert false);
  }

let qcheck_blast_matches_eval =
  QCheck.Test.make ~count:500 ~name:"bit-blast agrees with concrete eval"
    QCheck.(pair (int_range 0 1073741823) (int_range 1 5))
    (fun (seed, depth) ->
      let rs = Random.State.make [| seed |] in
      let e = gen_expr rs depth in
      let values =
        Array.to_list
          (Array.map
             (fun (s : Expr.signal) ->
               (s.Expr.s_name, bv 8 (Random.State.int rs 256)))
             inputs_8)
      in
      let expected = Sim.Eval.eval (concrete_env values) e in
      (* blast with fresh AIG vars for inputs, then evaluate the AIG
         under the same input values *)
      let g = Aig.create () in
      let bound = Hashtbl.create 8 in
      let env =
        {
          Bitblast.Blaster.lookup_input =
            (fun s ->
              match Hashtbl.find_opt bound s.Expr.s_name with
              | Some v -> v
              | None ->
                  let v = Bitblast.Blaster.fresh_vec g s.Expr.s_width in
                  Hashtbl.replace bound s.Expr.s_name v;
                  v);
          lookup_param = (fun _ -> assert false);
          lookup_reg = (fun _ -> assert false);
          lookup_mem = (fun _ _ -> assert false);
        }
      in
      let vec = Bitblast.Blaster.blaster g env e in
      let lit_assignment = Hashtbl.create 64 in
      Hashtbl.iter
        (fun name v ->
          let value = List.assoc name values in
          Array.iteri
            (fun i l -> Hashtbl.replace lit_assignment l (Bitvec.bit value i))
            v)
        bound;
      let var_value l =
        match Hashtbl.find_opt lit_assignment l with
        | Some b -> b
        | None -> false
      in
      let got = ref 0 in
      Array.iteri
        (fun i l -> if Aig.eval g var_value l then got := !got lor (1 lsl i))
        vec;
      !got = Bitvec.to_int expected)

(* memory read lowering *)
let test_blast_memread () =
  let m = Expr.memory "bbm" ~addr_width:3 ~data_width:8 ~depth:5 in
  let addr_sig = Expr.signal "bb_addr" 3 in
  let e = Expr.memread m (Expr.input addr_sig) in
  let g = Aig.create () in
  let addr_vec = Bitblast.Blaster.fresh_vec g 3 in
  let elem_vecs = Array.init 5 (fun _ -> Bitblast.Blaster.fresh_vec g 8) in
  let env =
    {
      Bitblast.Blaster.lookup_input = (fun _ -> addr_vec);
      lookup_param = (fun _ -> assert false);
      lookup_reg = (fun _ -> assert false);
      lookup_mem = (fun _ i -> elem_vecs.(i));
    }
  in
  let out = Bitblast.Blaster.blaster g env e in
  (* concrete: elements 10,20,30,40,50; reading each address *)
  let elem_values = [| 10; 20; 30; 40; 50 |] in
  let check_addr a expected =
    let assign = Hashtbl.create 64 in
    Array.iteri
      (fun i l -> Hashtbl.replace assign l (a land (1 lsl i) <> 0))
      addr_vec;
    Array.iteri
      (fun idx vec ->
        Array.iteri
          (fun i l ->
            Hashtbl.replace assign l (elem_values.(idx) land (1 lsl i) <> 0))
          vec)
      elem_vecs;
    let var_value l =
      match Hashtbl.find_opt assign l with Some b -> b | None -> false
    in
    let got = ref 0 in
    Array.iteri
      (fun i l -> if Aig.eval g var_value l then got := !got lor (1 lsl i))
      out;
    Alcotest.(check int) (Printf.sprintf "mem[%d]" a) expected !got
  in
  check_addr 0 10;
  check_addr 4 50;
  check_addr 5 0;
  (* out of range -> 0, like the simulator *)
  check_addr 7 0

let () =
  Alcotest.run "bitblast"
    [
      ( "aig",
        [
          Alcotest.test_case "constant rules" `Quick test_aig_consts;
          Alcotest.test_case "structural hashing" `Quick test_aig_strash;
          Alcotest.test_case "evaluation" `Quick test_aig_eval;
          Alcotest.test_case "cnf equisatisfiable" `Quick test_cnf_equisat;
        ] );
      ( "blaster",
        [
          Alcotest.test_case "memory read" `Quick test_blast_memread;
          QCheck_alcotest.to_alcotest qcheck_blast_matches_eval;
        ] );
    ]
