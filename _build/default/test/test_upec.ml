(* End-to-end tests of the UPEC-SSC method: invariant soundness,
   vulnerability detection on the baseline SoC, and the security proof
   under the Sec. 4.2 countermeasure. *)

open Rtl

let tiny = Soc.Config.formal_tiny

let spec_of ?(cfg = tiny) ?(pers = Upec.Spec.Full_pers) variant =
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  Upec.Spec.make ~pers_model:pers soc variant

(* ---- spec / classification ---- *)

let test_s_neg_victim_covers_all () =
  let spec = spec_of Upec.Spec.Vulnerable in
  let s = Upec.Spec.s_neg_victim spec in
  (* the formal netlist has no CPU, so S_neg_victim = all svars *)
  Alcotest.(check int)
    "all svars"
    (Structural.Svar_set.cardinal
       (Structural.all_svars spec.Upec.Spec.soc.Soc.Builder.netlist))
    (Structural.Svar_set.cardinal s)

let test_pers_classification () =
  let spec = spec_of Upec.Spec.Vulnerable in
  let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
  let by_name n =
    Structural.Sreg (Netlist.find_reg nl n).Netlist.rd_signal
  in
  Alcotest.(check bool) "hwpe.cnt persistent" true
    (Upec.Spec.is_pers spec (by_name "hwpe.cnt"));
  Alcotest.(check bool) "timer.value persistent" true
    (Upec.Spec.is_pers spec (by_name "timer.value"));
  Alcotest.(check bool) "xbar resp not persistent" false
    (Upec.Spec.is_pers spec (by_name "xbar_pub.pub0.resp_valid"));
  Alcotest.(check bool) "sram raddr_q not persistent" false
    (Upec.Spec.is_pers spec (by_name "pub0.raddr_q"));
  let cell =
    Structural.Smem ((Netlist.find_mem nl "pub0.mem").Netlist.md_mem, 0)
  in
  Alcotest.(check bool) "memory cell persistent" true
    (Upec.Spec.is_pers spec cell);
  (* memory-only model (cells must come from that spec's own netlist) *)
  let spec_m = spec_of ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable in
  let nl_m = spec_m.Upec.Spec.soc.Soc.Builder.netlist in
  let cnt_m =
    Structural.Sreg (Netlist.find_reg nl_m "hwpe.cnt").Netlist.rd_signal
  in
  let cell_m =
    Structural.Smem ((Netlist.find_mem nl_m "pub0.mem").Netlist.md_mem, 0)
  in
  Alcotest.(check bool) "hwpe.cnt not pers in memory-only" false
    (Upec.Spec.is_pers spec_m cnt_m);
  Alcotest.(check bool) "cell pers in memory-only" true
    (Upec.Spec.is_pers spec_m cell_m)

let test_victim_cell_guard () =
  let spec = spec_of Upec.Spec.Vulnerable in
  let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
  let cell i =
    Structural.Smem ((Netlist.find_mem nl "pub0.mem").Netlist.md_mem, i)
  in
  (match Upec.Spec.victim_cell_guard spec (cell 0) with
  | Some _ -> ()
  | None -> Alcotest.fail "cells must have a guard");
  let reg =
    Structural.Sreg (Netlist.find_reg nl "hwpe.cnt").Netlist.rd_signal
  in
  Alcotest.(check bool) "registers have no guard" true
    (Upec.Spec.victim_cell_guard spec reg = None)

(* ---- macro semantics (Fig. 3) ---- *)

let fresh_engine spec =
  let eng =
    Ipc.Engine.create ~two_instance:true spec.Upec.Spec.soc.Soc.Builder.netlist
  in
  Ipc.Engine.ensure_frames eng 1;
  Upec.Macros.assume_env eng spec ~frames:1;
  Upec.Macros.victim_task_executing eng spec ~frame:0;
  eng

let addr_sig spec =
  List.find
    (fun (s : Expr.signal) -> s.Expr.s_name = "victim.addr")
    spec.Upec.Spec.soc.Soc.Builder.netlist.Netlist.inputs

let test_macro_nonprotected_equal () =
  (* with the victim macro assumed, the two instances cannot disagree on
     a non-protected address *)
  let spec = spec_of Upec.Spec.Vulnerable in
  let eng = fresh_engine spec in
  let u = Ipc.Engine.unroller eng in
  let s = addr_sig spec in
  let addr_neq =
    Aig.lit_not (Ipc.Unroller.inputs_equal_lit u ~frame:0 s)
  in
  let prot =
    (Ipc.Unroller.blast_at u Ipc.Unroller.A ~frame:0
       (Upec.Spec.in_range spec (Expr.input s))).(0)
  in
  (* satisfiable: differing protected addresses *)
  Alcotest.(check bool) "protected addresses may differ" true
    (Ipc.Engine.check_sat eng [ addr_neq; prot ] <> None);
  (* unsatisfiable: differing non-protected addresses *)
  Alcotest.(check bool) "non-protected addresses cannot differ" true
    (Ipc.Engine.check_sat eng [ addr_neq; Aig.lit_not prot ] = None)

let test_macro_req_we_equal () =
  let spec = spec_of Upec.Spec.Vulnerable in
  let eng = fresh_engine spec in
  let u = Ipc.Engine.unroller eng in
  let req =
    List.find
      (fun (s : Expr.signal) -> s.Expr.s_name = "victim.req")
      spec.Upec.Spec.soc.Soc.Builder.netlist.Netlist.inputs
  in
  let req_neq = Aig.lit_not (Ipc.Unroller.inputs_equal_lit u ~frame:0 req) in
  Alcotest.(check bool) "request presence is not confidential" true
    (Ipc.Engine.check_sat eng [ req_neq ] = None)

let test_macro_threat_model_disjoint () =
  (* the spying IPs' configured ranges cannot overlap the protected
     range under the assumed environment *)
  let spec = spec_of Upec.Spec.Vulnerable in
  let eng = fresh_engine spec in
  let u = Ipc.Engine.unroller eng in
  let dma = Option.get spec.Upec.Spec.soc.Soc.Builder.dma in
  (* dma.src itself inside the victim range *)
  let src_in_range =
    (Ipc.Unroller.blast_at u Ipc.Unroller.A ~frame:0
       (Upec.Spec.in_range spec (Soc.Dma.src_reg dma))).(0)
  in
  (* only reachable when len = 0 (an empty range is disjoint) *)
  let len_nonzero =
    (Ipc.Unroller.blast_at u Ipc.Unroller.A ~frame:0
       Expr.(
         Soc.Dma.len_reg dma
         <>: zero spec.Upec.Spec.soc.Soc.Builder.soc_cfg.Soc.Config.addr_width)).(0)
  in
  Alcotest.(check bool) "active dma src outside protected range" true
    (Ipc.Engine.check_sat eng [ src_in_range; len_nonzero ] = None)

(* ---- invariants ---- *)

let test_invariants_sound_vulnerable () =
  let spec = spec_of Upec.Spec.Vulnerable in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) ("base: " ^ name) true ok)
    (Upec.Invariant.check_base spec);
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) ("step: " ^ name) true ok)
    (Upec.Invariant.check_inductive spec)

let test_invariants_sound_secure () =
  let spec = spec_of Upec.Spec.Secure in
  Alcotest.(check bool) "all sound" true (Upec.Invariant.all_sound spec)

let test_secure_has_more_invariants () =
  let v = List.length (Upec.Spec.invariants (spec_of Upec.Spec.Vulnerable)) in
  let s = List.length (Upec.Spec.invariants (spec_of Upec.Spec.Secure)) in
  Alcotest.(check bool) "secure adds private-xbar invariants" true (s > v)

(* ---- Algorithm 1 ---- *)

let test_alg1_vulnerable () =
  let spec = spec_of Upec.Spec.Vulnerable in
  let report = Upec.Alg1.run spec in
  Alcotest.(check bool) "vulnerable" true (Upec.Report.is_vulnerable report);
  match report.Upec.Report.verdict with
  | Upec.Report.Vulnerable { s_cex; cex } ->
      let pers_hits =
        Structural.Svar_set.filter (Upec.Spec.is_pers spec) s_cex
      in
      Alcotest.(check bool) "persistent state reached" true
        (not (Structural.Svar_set.is_empty pers_hits));
      (* the confidential difference must come from protected accesses *)
      let base = Bitvec.to_int (Ipc.Cex.param_value_by_name cex "victim_base") in
      let limit =
        Bitvec.to_int (Ipc.Cex.param_value_by_name cex "victim_limit")
      in
      Alcotest.(check bool) "well-formed range" true (base <= limit)
  | _ -> Alcotest.fail "expected vulnerable"

let test_alg1_secure () =
  let spec = spec_of Upec.Spec.Secure in
  let report = Upec.Alg1.run spec in
  Alcotest.(check bool) "secure" true (Upec.Report.is_secure report);
  Alcotest.(check bool) "took multiple iterations" true
    (Upec.Report.iterations report > 1);
  match report.Upec.Report.verdict with
  | Upec.Report.Secure { s_final } ->
      (* S_pers ⊂ S_final: no persistent state was ever removed *)
      let pers =
        Structural.Svar_set.filter (Upec.Spec.is_pers spec)
          (Upec.Spec.s_neg_victim spec)
      in
      Alcotest.(check bool) "S_pers subset of final S" true
        (Structural.Svar_set.subset pers s_final);
      (* only interconnect-class state may have been removed *)
      let removed =
        Structural.Svar_set.diff (Upec.Spec.s_neg_victim spec) s_final
      in
      Structural.Svar_set.iter
        (fun sv ->
          Alcotest.(check bool)
            (Structural.svar_name sv ^ " removed is interconnect")
            true
            (Soc.Builder.is_interconnect spec.Upec.Spec.soc sv))
        removed
  | _ -> Alcotest.fail "expected secure"

let test_alg1_no_spies_secure_even_without_countermeasure () =
  (* control experiment: with no DMA and no HWPE there is no spying IP,
     and the baseline SoC is already secure w.r.t. the threat model *)
  let cfg = { tiny with Soc.Config.with_dma = false; with_hwpe = false } in
  let report = Upec.Alg1.run (spec_of ~cfg Upec.Spec.Vulnerable) in
  Alcotest.(check bool) "secure without spying IPs" true
    (Upec.Report.is_secure report)

let test_alg1_fixed_priority_also_vulnerable () =
  let cfg = { tiny with Soc.Config.arbiter = `Fixed_priority } in
  let report = Upec.Alg1.run (spec_of ~cfg Upec.Spec.Vulnerable) in
  Alcotest.(check bool) "vulnerable under fixed priority" true
    (Upec.Report.is_vulnerable report)

let test_alg1_fixed_priority_secure_proof () =
  let cfg = { tiny with Soc.Config.arbiter = `Fixed_priority } in
  let report = Upec.Alg1.run (spec_of ~cfg Upec.Spec.Secure) in
  Alcotest.(check bool) "countermeasure holds under fixed priority" true
    (Upec.Report.is_secure report)

let test_incremental_agrees () =
  (* the incremental engine must reach the same verdicts and the same
     fixed point as the per-check engine *)
  let spec_v = spec_of Upec.Spec.Vulnerable in
  let rv = Upec.Alg1.run ~incremental:true spec_v in
  Alcotest.(check bool) "vulnerable (incremental)" true
    (Upec.Report.is_vulnerable rv);
  let spec_s = spec_of Upec.Spec.Secure in
  let plain = Upec.Alg1.run spec_s in
  let inc = Upec.Alg1.run ~incremental:true spec_s in
  (match (plain.Upec.Report.verdict, inc.Upec.Report.verdict) with
  | Upec.Report.Secure { s_final = a }, Upec.Report.Secure { s_final = b } ->
      Alcotest.(check bool) "same fixed point" true
        (Structural.Svar_set.equal a b)
  | _ -> Alcotest.fail "both engines must prove the secured SoC")

let test_tdma_contention_free_is_secure () =
  (* the Sec. 6 future-work direction: a contention-free TDMA
     interconnect closes the channel class without remapping the
     victim's memory — proven with the *baseline* policy assumptions *)
  let cfg = { tiny with Soc.Config.arbiter = `Tdma } in
  let spec = spec_of ~cfg Upec.Spec.Vulnerable in
  Alcotest.(check bool) "tdma invariants sound" true
    (Upec.Invariant.all_sound spec);
  let report = Upec.Alg1.run spec in
  Alcotest.(check bool) "secure without the memory countermeasure" true
    (Upec.Report.is_secure report)

let test_bmc_from_reset_misses () =
  (* E9: with a concrete reset start the same property detects nothing —
     the preparation phase lives in the symbolic starting state *)
  let spec = spec_of Upec.Spec.Vulnerable in
  let report, outcome = Upec.Alg2.run ~max_k:3 ~reset_start:true spec in
  (match outcome with
  | Upec.Alg2.Found_vulnerable ->
      Alcotest.fail "BMC from reset cannot see the attack"
  | Upec.Alg2.Hold _ | Upec.Alg2.Gave_up -> ());
  Alcotest.(check bool) "reported without inductive claim" true
    (match report.Upec.Report.verdict with
    | Upec.Report.Inconclusive _ -> true
    | Upec.Report.Secure _ | Upec.Report.Vulnerable _ -> false)

(* ---- Algorithm 2 ---- *)

let test_alg2_hwpe_memory_variant () =
  (* the Sec. 4.1 scenario: accelerator + memory, no timer required;
     S_pers restricted to memory cells (footprint retrieval) and the DMA
     removed to isolate the HWPE channel *)
  let cfg = { tiny with Soc.Config.with_dma = false } in
  let spec = spec_of ~cfg ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable in
  let report, outcome = Upec.Alg2.run spec in
  Alcotest.(check bool) "vulnerable" true (outcome = Upec.Alg2.Found_vulnerable);
  match report.Upec.Report.verdict with
  | Upec.Report.Vulnerable { s_cex; cex } ->
      (* the retrieval vehicle is a public memory cell outside the
         protected range *)
      let is_pub_cell sv =
        match sv with
        | Structural.Smem (m, _) ->
            List.exists
              (Expr.mems_equal m)
              spec.Upec.Spec.soc.Soc.Builder.pub_mems
        | Structural.Sreg _ -> false
      in
      Alcotest.(check bool) "footprint in public memory" true
        (Structural.Svar_set.exists is_pub_cell s_cex);
      Structural.Svar_set.iter
        (fun sv ->
          Alcotest.(check bool)
            (Structural.svar_name sv ^ " outside protected range")
            false
            (Upec.Macros.cell_guard_concrete spec cex sv))
        s_cex
  | _ -> Alcotest.fail "expected vulnerable"

let test_alg2_reports_hwpe_progress () =
  (* the counterexample should show diverging HWPE progress *)
  let cfg = { tiny with Soc.Config.with_dma = false } in
  let spec = spec_of ~cfg ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable in
  let report, _ = Upec.Alg2.run spec in
  match report.Upec.Report.verdict with
  | Upec.Report.Vulnerable { cex; _ } ->
      let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
      let cnt =
        Structural.Sreg (Netlist.find_reg nl "hwpe.cnt").Netlist.rd_signal
      in
      let k = Ipc.Cex.frames cex in
      let any_progress_diff =
        List.exists
          (fun f ->
            not
              (Bitvec.equal
                 (Ipc.Cex.svar_value cex Ipc.Unroller.A ~frame:f cnt)
                 (Ipc.Cex.svar_value cex Ipc.Unroller.B ~frame:f cnt)))
          (List.init (k + 1) Fun.id)
      in
      Alcotest.(check bool) "hwpe progress differs somewhere" true
        any_progress_diff
  | _ -> Alcotest.fail "expected vulnerable"

let test_alg1_memory_only_secure () =
  let spec = spec_of ~pers:Upec.Spec.Memory_only Upec.Spec.Secure in
  let report = Upec.Alg1.run spec in
  Alcotest.(check bool) "secure in memory-only model too" true
    (Upec.Report.is_secure report)

let test_report_printing () =
  let report = Upec.Alg1.run (spec_of Upec.Spec.Vulnerable) in
  let s = Format.asprintf "%a" Upec.Report.pp report in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions VULNERABLE" true (contains "VULNERABLE");
  Alcotest.(check bool) "mentions iterations table" true (contains "|S|");
  let summary = Format.asprintf "%a" Upec.Report.pp_summary report in
  Alcotest.(check bool) "summary nonempty" true (String.length summary > 10)

let () =
  Alcotest.run "upec"
    [
      ( "spec",
        [
          Alcotest.test_case "S_neg_victim" `Quick test_s_neg_victim_covers_all;
          Alcotest.test_case "S_pers classification" `Quick
            test_pers_classification;
          Alcotest.test_case "victim cell guards" `Quick test_victim_cell_guard;
        ] );
      ( "macros",
        [
          Alcotest.test_case "protected vs non-protected accesses" `Quick
            test_macro_nonprotected_equal;
          Alcotest.test_case "request shape equal" `Quick
            test_macro_req_we_equal;
          Alcotest.test_case "threat-model disjointness" `Quick
            test_macro_threat_model_disjoint;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "sound on baseline" `Quick
            test_invariants_sound_vulnerable;
          Alcotest.test_case "sound on secured" `Quick
            test_invariants_sound_secure;
          Alcotest.test_case "countermeasure adds invariants" `Quick
            test_secure_has_more_invariants;
        ] );
      ( "alg1",
        [
          Alcotest.test_case "detects vulnerability" `Quick test_alg1_vulnerable;
          Alcotest.test_case "proves countermeasure secure" `Slow
            test_alg1_secure;
          Alcotest.test_case "no spies, no vulnerability" `Slow
            test_alg1_no_spies_secure_even_without_countermeasure;
          Alcotest.test_case "fixed-priority also vulnerable" `Quick
            test_alg1_fixed_priority_also_vulnerable;
          Alcotest.test_case "fixed-priority secure proof" `Slow
            test_alg1_fixed_priority_secure_proof;
          Alcotest.test_case "memory-only secure proof" `Slow
            test_alg1_memory_only_secure;
          Alcotest.test_case "incremental engine agrees" `Slow
            test_incremental_agrees;
          Alcotest.test_case "tdma interconnect secure" `Slow
            test_tdma_contention_free_is_secure;
        ] );
      ( "alg2",
        [
          Alcotest.test_case "hwpe+memory variant detected" `Quick
            test_alg2_hwpe_memory_variant;
          Alcotest.test_case "hwpe progress in cex" `Quick
            test_alg2_reports_hwpe_progress;
          Alcotest.test_case "bmc from reset misses" `Slow
            test_bmc_from_reset_misses;
        ] );
      ( "report",
        [ Alcotest.test_case "printing" `Quick test_report_printing ] );
    ]
