(* Focused tests for the interconnect building blocks: address map,
   configuration validation, arbiters (including qcheck properties over
   random request sequences), and the bus routing helpers. *)

open Rtl

let cfg = Soc.Config.formal_tiny

(* ---- memory map ---- *)

let test_memmap_regions () =
  Alcotest.(check int) "pub base" 0 (Soc.Memmap.region_base cfg Soc.Memmap.Pub);
  Alcotest.(check int) "priv base" 64
    (Soc.Memmap.region_base cfg Soc.Memmap.Priv);
  Alcotest.(check int) "apb base" 128
    (Soc.Memmap.region_base cfg Soc.Memmap.Apb);
  Alcotest.(check int) "pub words" 8 (Soc.Memmap.pub_words cfg);
  Alcotest.(check bool) "pub addr in pub" true (Soc.Memmap.in_pub_range cfg 3);
  Alcotest.(check bool) "priv addr not in pub" false
    (Soc.Memmap.in_pub_range cfg 65);
  Alcotest.(check bool) "unmapped pub tail" false
    (Soc.Memmap.in_pub_range cfg 9)

let test_memmap_cells () =
  (* interleaving: consecutive addresses alternate banks *)
  Alcotest.(check int) "bank0 idx0" 0
    (Soc.Memmap.cell_addr cfg Soc.Memmap.Pub ~bank:0 ~index:0);
  Alcotest.(check int) "bank1 idx0" 1
    (Soc.Memmap.cell_addr cfg Soc.Memmap.Pub ~bank:1 ~index:0);
  Alcotest.(check int) "bank0 idx1" 2
    (Soc.Memmap.cell_addr cfg Soc.Memmap.Pub ~bank:0 ~index:1);
  Alcotest.(check int) "priv bank1 idx3" (64 + 7)
    (Soc.Memmap.cell_addr cfg Soc.Memmap.Priv ~bank:1 ~index:3)

let test_memmap_periph () =
  Alcotest.(check int) "timer reg 1" (128 + 1)
    (Soc.Memmap.periph_reg_addr cfg Soc.Memmap.Timer 1);
  Alcotest.(check int) "uart reg 0" (128 + 48)
    (Soc.Memmap.periph_reg_addr cfg Soc.Memmap.Uart 0);
  Alcotest.(check int) "byte addr" 516 (Soc.Memmap.byte_addr cfg 129)

let test_memmap_decoders_agree () =
  (* the expression-level decoder agrees with the integer-level map on
     every address *)
  let open Netlist.Builder in
  let b = create "dectest" in
  let addr = input b "addr" cfg.Soc.Config.addr_width in
  output b "pub0" (Soc.Memmap.decode_sram_select cfg addr Soc.Memmap.Pub ~bank:0);
  output b "pub1" (Soc.Memmap.decode_sram_select cfg addr Soc.Memmap.Pub ~bank:1);
  output b "priv0"
    (Soc.Memmap.decode_sram_select cfg addr Soc.Memmap.Priv ~bank:0);
  output b "timer" (Soc.Memmap.decode_periph_select cfg addr Soc.Memmap.Timer);
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  for a = 0 to 255 do
    Sim.Engine.set_input_int eng "addr" a;
    let expect_pub0 =
      Soc.Memmap.in_pub_range cfg a && a land 1 = 0
    in
    let expect_pub1 = Soc.Memmap.in_pub_range cfg a && a land 1 = 1 in
    let expect_priv0 = Soc.Memmap.in_priv_range cfg a && a land 1 = 0 in
    let expect_timer = a >= 128 && a < 144 in
    let check name expected =
      Alcotest.(check bool)
        (Printf.sprintf "%s @%d" name a)
        expected
        (Bitvec.to_int (Sim.Engine.peek_output eng name) = 1)
    in
    check "pub0" expect_pub0;
    check "pub1" expect_pub1;
    check "priv0" expect_priv0;
    check "timer" expect_timer
  done

(* ---- config validation ---- *)

let test_config_validation () =
  let expect_invalid c =
    match Soc.Config.validate c with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "invalid config accepted"
  in
  Soc.Config.validate Soc.Config.formal_tiny;
  Soc.Config.validate Soc.Config.formal_default;
  Soc.Config.validate Soc.Config.sim_default;
  expect_invalid { cfg with Soc.Config.pub_banks = 3 };
  expect_invalid { cfg with Soc.Config.data_width = 4 };
  expect_invalid { cfg with Soc.Config.pub_depth = 1000 };
  expect_invalid { cfg with Soc.Config.timer_width = 1 };
  let scaled = Soc.Config.scale cfg ~factor:2 in
  Alcotest.(check int) "scale doubles depth" 8 scaled.Soc.Config.pub_depth

(* ---- arbiters: build a harness netlist around one arbiter ---- *)

let arbiter_harness which n =
  let open Netlist.Builder in
  let b = create "arb" in
  let reqs = List.init n (fun i -> input b (Printf.sprintf "r%d" i) 1) in
  let grants =
    match which with
    | `Round_robin -> Soc.Arbiter.round_robin b ~name:"a" reqs
    | `Fixed -> Soc.Arbiter.fixed_priority reqs
    | `Tdma -> Soc.Arbiter.tdma b ~name:"a" reqs
  in
  List.iteri (fun i g -> output b (Printf.sprintf "g%d" i) g) grants;
  Sim.Engine.create (finalize b)

let qcheck_arbiter_sound =
  QCheck.Test.make ~count:200
    ~name:"arbiter: grants one-hot and imply requests"
    QCheck.(
      triple
        (oneofl [ `Round_robin; `Fixed; `Tdma ])
        (int_range 2 4)
        (list_of_size Gen.(int_range 1 20) (int_range 0 15)))
    (fun (which, n, reqs_per_cycle) ->
      let eng = arbiter_harness which n in
      List.for_all
        (fun req_bits ->
          for i = 0 to n - 1 do
            Sim.Engine.set_input_int eng (Printf.sprintf "r%d" i)
              ((req_bits lsr i) land 1)
          done;
          let grants =
            List.init n (fun i ->
                Bitvec.to_int
                  (Sim.Engine.peek_output eng (Printf.sprintf "g%d" i)))
          in
          let popcount = List.fold_left ( + ) 0 grants in
          let implied =
            List.for_all2
              (fun g i -> g = 0 || (req_bits lsr i) land 1 = 1)
              grants
              (List.init n Fun.id)
          in
          Sim.Engine.step eng;
          popcount <= 1 && implied)
        reqs_per_cycle)

let qcheck_rr_work_conserving =
  QCheck.Test.make ~count:200
    ~name:"round-robin grants whenever someone requests"
    QCheck.(
      pair (int_range 2 4) (list_of_size Gen.(int_range 1 20) (int_range 1 15)))
    (fun (n, reqs_per_cycle) ->
      let eng = arbiter_harness `Round_robin n in
      List.for_all
        (fun req_bits ->
          let req_bits = req_bits land ((1 lsl n) - 1) in
          for i = 0 to n - 1 do
            Sim.Engine.set_input_int eng (Printf.sprintf "r%d" i)
              ((req_bits lsr i) land 1)
          done;
          let granted =
            List.exists
              (fun i ->
                Bitvec.to_int
                  (Sim.Engine.peek_output eng (Printf.sprintf "g%d" i))
                = 1)
              (List.init n Fun.id)
          in
          Sim.Engine.step eng;
          req_bits = 0 || granted)
        reqs_per_cycle)

let test_rr_no_starvation () =
  (* all three masters hammer; everyone is granted within 2n cycles *)
  let n = 3 in
  let eng = arbiter_harness `Round_robin n in
  for i = 0 to n - 1 do
    Sim.Engine.set_input_int eng (Printf.sprintf "r%d" i) 1
  done;
  let got = Array.make n 0 in
  for _ = 1 to 2 * n do
    for i = 0 to n - 1 do
      got.(i) <-
        got.(i)
        + Bitvec.to_int (Sim.Engine.peek_output eng (Printf.sprintf "g%d" i))
    done;
    Sim.Engine.step eng
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "master %d served" i) true (c >= 1))
    got

let test_fixed_priority_starves () =
  let eng = arbiter_harness `Fixed 2 in
  Sim.Engine.set_input_int eng "r0" 1;
  Sim.Engine.set_input_int eng "r1" 1;
  for _ = 1 to 5 do
    Alcotest.(check int) "master 0 wins" 1
      (Bitvec.to_int (Sim.Engine.peek_output eng "g0"));
    Alcotest.(check int) "master 1 starves" 0
      (Bitvec.to_int (Sim.Engine.peek_output eng "g1"));
    Sim.Engine.step eng
  done

let test_tdma_slot_schedule () =
  (* grants rotate with the slot counter regardless of who else asks *)
  let n = 3 in
  let eng = arbiter_harness `Tdma n in
  for i = 0 to n - 1 do
    Sim.Engine.set_input_int eng (Printf.sprintf "r%d" i) 1
  done;
  let sequence = ref [] in
  for _ = 1 to 6 do
    let winner =
      List.find_opt
        (fun i ->
          Bitvec.to_int (Sim.Engine.peek_output eng (Printf.sprintf "g%d" i))
          = 1)
        (List.init n Fun.id)
    in
    sequence := winner :: !sequence;
    Sim.Engine.step eng
  done;
  match List.rev !sequence with
  | [ Some a; Some b; Some c; Some a'; Some b'; Some c' ] ->
      Alcotest.(check bool) "all distinct in a round" true
        (List.sort_uniq compare [ a; b; c ] = [ 0; 1; 2 ]);
      Alcotest.(check (list int)) "period n" [ a; b; c ] [ a'; b'; c' ]
  | _ -> Alcotest.fail "tdma skipped a slot with all masters requesting"

let test_tdma_timing_independence () =
  (* master 1's grant cycles are identical whether or not master 0
     requests: the contention-freedom property *)
  let run_with_m0 m0 =
    let eng = arbiter_harness `Tdma 2 in
    Sim.Engine.set_input_int eng "r0" m0;
    Sim.Engine.set_input_int eng "r1" 1;
    List.init 8 (fun _ ->
        let g = Bitvec.to_int (Sim.Engine.peek_output eng "g1") in
        Sim.Engine.step eng;
        g)
  in
  Alcotest.(check (list int))
    "same grant pattern" (run_with_m0 0) (run_with_m0 1)

(* ---- bus helpers ---- *)

let test_bus_split_merge () =
  let open Netlist.Builder in
  let b = create "bus" in
  let req = input b "req" 1 in
  let sel = input b "sel" 1 in
  let mo =
    {
      Soc.Bus.req;
      addr = Expr.zero cfg.Soc.Config.addr_width;
      we = Expr.gnd;
      wdata = Expr.zero cfg.Soc.Config.data_width;
    }
  in
  let low, high = Soc.Bus.split_by sel mo in
  output b "req_low" low.Soc.Bus.req;
  output b "req_high" high.Soc.Bus.req;
  let nl = finalize b in
  let eng = Sim.Engine.create nl in
  Sim.Engine.set_input_int eng "req" 1;
  Sim.Engine.set_input_int eng "sel" 0;
  Alcotest.(check int) "low side" 1
    (Bitvec.to_int (Sim.Engine.peek_output eng "req_low"));
  Alcotest.(check int) "high side quiet" 0
    (Bitvec.to_int (Sim.Engine.peek_output eng "req_high"));
  Sim.Engine.set_input_int eng "sel" 1;
  Alcotest.(check int) "high side" 1
    (Bitvec.to_int (Sim.Engine.peek_output eng "req_high"))

let () =
  Alcotest.run "interconnect"
    [
      ( "memmap",
        [
          Alcotest.test_case "regions" `Quick test_memmap_regions;
          Alcotest.test_case "cell addresses" `Quick test_memmap_cells;
          Alcotest.test_case "peripheral registers" `Quick test_memmap_periph;
          Alcotest.test_case "decoders agree with map" `Quick
            test_memmap_decoders_agree;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
      ( "arbiter",
        [
          QCheck_alcotest.to_alcotest qcheck_arbiter_sound;
          QCheck_alcotest.to_alcotest qcheck_rr_work_conserving;
          Alcotest.test_case "round-robin serves everyone" `Quick
            test_rr_no_starvation;
          Alcotest.test_case "fixed priority starves" `Quick
            test_fixed_priority_starves;
          Alcotest.test_case "tdma slot schedule" `Quick test_tdma_slot_schedule;
          Alcotest.test_case "tdma timing independence" `Quick
            test_tdma_timing_independence;
        ] );
      ("bus", [ Alcotest.test_case "split/merge" `Quick test_bus_split_merge ]);
    ]
