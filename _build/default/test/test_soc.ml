(* SoC-level tests, driving the formal-mode netlist's victim bus port
   from the simulator: SRAM, APB peripherals, DMA, HWPE, arbitration,
   and — crucially — the existence of the contention timing channel. *)

open Rtl
open Testutil

let cfg = Soc.Config.formal_tiny

let pub_addr ~bank ~index = Soc.Memmap.cell_addr cfg Soc.Memmap.Pub ~bank ~index
let priv_addr ~bank ~index = Soc.Memmap.cell_addr cfg Soc.Memmap.Priv ~bank ~index

let fresh () =
  let soc = build_formal ~cfg () in
  (soc, engine_of soc)

(* ---- memory ---- *)

let test_sram_rw () =
  let _, eng = fresh () in
  let a0 = pub_addr ~bank:0 ~index:0 in
  let a1 = pub_addr ~bank:1 ~index:2 in
  ignore (bus_write eng cfg ~addr:a0 ~data:0xaa);
  ignore (bus_write eng cfg ~addr:a1 ~data:0x55);
  Alcotest.(check int) "bank0" 0xaa (bus_read_value eng cfg ~addr:a0);
  Alcotest.(check int) "bank1" 0x55 (bus_read_value eng cfg ~addr:a1);
  Alcotest.(check int) "mem array updated" 0xaa
    (Bitvec.to_int (Sim.Engine.mem_value eng "pub0.mem" 0))

let test_priv_sram_rw () =
  let _, eng = fresh () in
  let a = priv_addr ~bank:1 ~index:3 in
  ignore (bus_write eng cfg ~addr:a ~data:0x7f);
  Alcotest.(check int) "priv readback" 0x7f (bus_read_value eng cfg ~addr:a)

let test_bank_interleave () =
  (* consecutive addresses land in alternating banks *)
  let _, eng = fresh () in
  ignore (bus_write eng cfg ~addr:(pub_addr ~bank:0 ~index:0) ~data:1);
  ignore (bus_write eng cfg ~addr:(pub_addr ~bank:1 ~index:0) ~data:2);
  Alcotest.(check int) "bank0 cell" 1
    (Bitvec.to_int (Sim.Engine.mem_value eng "pub0.mem" 0));
  Alcotest.(check int) "bank1 cell" 2
    (Bitvec.to_int (Sim.Engine.mem_value eng "pub1.mem" 0))

let test_unmapped_no_grant () =
  let _, eng = fresh () in
  let unmapped = (3 lsl (cfg.Soc.Config.addr_width - 2)) + 1 in
  set_victim eng cfg ~req:1 ~addr:unmapped ~we:1 ~wdata:0;
  Alcotest.(check int) "no grant" 0
    (Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt"));
  Sim.Engine.step eng;
  Alcotest.(check int) "still none" 0
    (Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt"))

(* ---- timer ---- *)

let test_timer_counts () =
  let _, eng = fresh () in
  let ctrl = periph_addr cfg Soc.Memmap.Timer 0 in
  let value = periph_addr cfg Soc.Memmap.Timer 1 in
  Alcotest.(check int) "initially zero" 0 (bus_read_value eng cfg ~addr:value);
  ignore (bus_write eng cfg ~addr:ctrl ~data:1);
  Sim.Engine.run eng 10;
  let v = bus_read_value eng cfg ~addr:value in
  Alcotest.(check bool) "counted" true (v >= 10);
  (* disable: count freezes *)
  ignore (bus_write eng cfg ~addr:ctrl ~data:0);
  let v1 = bus_read_value eng cfg ~addr:value in
  Sim.Engine.run eng 5;
  let v2 = bus_read_value eng cfg ~addr:value in
  Alcotest.(check int) "frozen" v1 v2

let test_timer_prime () =
  let _, eng = fresh () in
  let value = periph_addr cfg Soc.Memmap.Timer 1 in
  ignore (bus_write eng cfg ~addr:value ~data:42);
  Alcotest.(check int) "primed" 42 (bus_read_value eng cfg ~addr:value)

(* ---- uart ---- *)

let test_uart_busy () =
  let _, eng = fresh () in
  let tx = periph_addr cfg Soc.Memmap.Uart 0 in
  let status = periph_addr cfg Soc.Memmap.Uart 1 in
  Alcotest.(check int) "idle" 0 (bus_read_value eng cfg ~addr:status);
  ignore (bus_write eng cfg ~addr:tx ~data:0x41);
  Alcotest.(check int) "busy" 1 (bus_read_value eng cfg ~addr:status);
  Alcotest.(check int) "data latched" 0x41 (bus_read_value eng cfg ~addr:tx);
  Sim.Engine.run eng 12;
  Alcotest.(check int) "idle again" 0 (bus_read_value eng cfg ~addr:status)

(* ---- DMA ---- *)

let dma_ctrl = periph_addr cfg Soc.Memmap.Dma 0
let dma_src = periph_addr cfg Soc.Memmap.Dma 1
let dma_dst = periph_addr cfg Soc.Memmap.Dma 2
let dma_len = periph_addr cfg Soc.Memmap.Dma 3

let test_dma_copy () =
  let _, eng = fresh () in
  (* source data in pub bank cells at word addresses 0,1,2 *)
  ignore (bus_write eng cfg ~addr:0 ~data:11);
  ignore (bus_write eng cfg ~addr:1 ~data:22);
  ignore (bus_write eng cfg ~addr:2 ~data:33);
  ignore (bus_write eng cfg ~addr:dma_src ~data:0);
  ignore (bus_write eng cfg ~addr:dma_dst ~data:4);
  ignore (bus_write eng cfg ~addr:dma_len ~data:3);
  ignore (bus_write eng cfg ~addr:dma_ctrl ~data:1);
  Sim.Engine.run eng 30;
  Alcotest.(check int) "copied 0" 11 (bus_read_value eng cfg ~addr:4);
  Alcotest.(check int) "copied 1" 22 (bus_read_value eng cfg ~addr:5);
  Alcotest.(check int) "copied 2" 33 (bus_read_value eng cfg ~addr:6);
  let status = bus_read_value eng cfg ~addr:dma_ctrl in
  Alcotest.(check int) "done, not busy" 2 status

let test_dma_to_private () =
  let _, eng = fresh () in
  ignore (bus_write eng cfg ~addr:0 ~data:0x5a);
  ignore (bus_write eng cfg ~addr:dma_src ~data:0);
  ignore (bus_write eng cfg ~addr:dma_dst ~data:(priv_addr ~bank:0 ~index:1));
  ignore (bus_write eng cfg ~addr:dma_len ~data:1);
  ignore (bus_write eng cfg ~addr:dma_ctrl ~data:1);
  Sim.Engine.run eng 20;
  Alcotest.(check int) "landed in private memory" 0x5a
    (bus_read_value eng cfg ~addr:(priv_addr ~bank:0 ~index:1))

let test_dma_cfg_locked_while_busy () =
  let _, eng = fresh () in
  ignore (bus_write eng cfg ~addr:dma_src ~data:0);
  ignore (bus_write eng cfg ~addr:dma_dst ~data:4);
  ignore (bus_write eng cfg ~addr:dma_len ~data:3);
  ignore (bus_write eng cfg ~addr:dma_ctrl ~data:1);
  (* busy now: try to corrupt len *)
  ignore (bus_write eng cfg ~addr:dma_len ~data:7);
  Sim.Engine.run eng 30;
  Alcotest.(check int) "len unchanged" 3 (bus_read_value eng cfg ~addr:dma_len)

let test_timer_autostart_on_dma_done () =
  let _, eng = fresh () in
  let tctrl = periph_addr cfg Soc.Memmap.Timer 0 in
  let tvalue = periph_addr cfg Soc.Memmap.Timer 1 in
  ignore (bus_write eng cfg ~addr:tctrl ~data:2);
  (* auto-start armed *)
  ignore (bus_write eng cfg ~addr:dma_src ~data:0);
  ignore (bus_write eng cfg ~addr:dma_dst ~data:4);
  ignore (bus_write eng cfg ~addr:dma_len ~data:2);
  ignore (bus_write eng cfg ~addr:dma_ctrl ~data:1);
  Alcotest.(check int) "timer still 0 while DMA runs" 0
    (bus_read_value eng cfg ~addr:tvalue);
  Sim.Engine.run eng 30;
  let v = bus_read_value eng cfg ~addr:tvalue in
  Alcotest.(check bool) "timer started by dma_done" true (v > 0)

(* ---- HWPE ---- *)

let hwpe_ctrl = periph_addr cfg Soc.Memmap.Hwpe 0
let hwpe_dst = periph_addr cfg Soc.Memmap.Hwpe 1
let hwpe_len = periph_addr cfg Soc.Memmap.Hwpe 2
let hwpe_coef = periph_addr cfg Soc.Memmap.Hwpe 3

let start_hwpe eng ~dst ~len ~coef =
  ignore (bus_write eng cfg ~addr:hwpe_dst ~data:dst);
  ignore (bus_write eng cfg ~addr:hwpe_len ~data:len);
  ignore (bus_write eng cfg ~addr:hwpe_coef ~data:coef);
  ignore (bus_write eng cfg ~addr:hwpe_ctrl ~data:1)

let test_hwpe_overwrites () =
  let _, eng = fresh () in
  start_hwpe eng ~dst:0 ~len:4 ~coef:1;
  Sim.Engine.run eng 10;
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "cell %d" i)
      (i + 1)
      (bus_read_value eng cfg ~addr:i)
  done;
  Alcotest.(check int) "done" 2 (bus_read_value eng cfg ~addr:hwpe_ctrl)

let test_hwpe_coef_stream () =
  let _, eng = fresh () in
  start_hwpe eng ~dst:0 ~len:3 ~coef:3;
  Sim.Engine.run eng 10;
  Alcotest.(check int) "3*1" 3 (bus_read_value eng cfg ~addr:0);
  Alcotest.(check int) "3*2" 6 (bus_read_value eng cfg ~addr:1);
  Alcotest.(check int) "3*3" 9 (bus_read_value eng cfg ~addr:2)

let test_hwpe_progress_visible () =
  (* the heart of the Sec. 4.1 attack: partial progress is readable *)
  let _, eng = fresh () in
  (* prime with zeros *)
  for i = 0 to 3 do
    ignore (bus_write eng cfg ~addr:i ~data:0)
  done;
  start_hwpe eng ~dst:0 ~len:4 ~coef:1;
  Sim.Engine.run eng 2;
  (* after 2 cycles, exactly 2 writes have been granted *)
  let progress =
    List.length
      (List.filter
         (fun i -> Bitvec.to_int (Sim.Engine.mem_value eng
                                    (if i mod 2 = 0 then "pub0.mem" else "pub1.mem")
                                    (i / 2)) <> 0)
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check int) "two cells overwritten" 2 progress

(* ---- arbitration and the timing channel ---- *)

(* Run the HWPE over 4 cells while the victim port issues [victim_reads]
   reads at [victim_target] starting at cycle [victim_start]; return the
   cycle count until the HWPE is done.

   Note on arbitration dynamics: with round-robin arbitration, a victim
   that greedily re-requests after every completed read anti-aligns with
   the bank-interleaved HWPE stream and causes {e no} delay — the victim
   must win a collision cycle, which happens when the arbiter's
   last-grant points at the HWPE. This state-dependence is precisely why
   the paper's exhaustive method beats simulation-based search. *)
let hwpe_completion_time ?(victim_start = 0) ~victim_reads ~victim_target () =
  let _, eng = fresh () in
  start_hwpe eng ~dst:0 ~len:4 ~coef:1;
  let reads = ref victim_reads in
  let cycles = ref 0 in
  let rec go () =
    if !cycles > 100 then Alcotest.fail "hwpe never finished";
    let hwpe_busy = Bitvec.to_int (Sim.Engine.reg_value eng "hwpe.busy") in
    if hwpe_busy = 0 then ()
    else begin
      if !reads > 0 && !cycles >= victim_start then begin
        set_victim eng cfg ~req:1 ~addr:victim_target ~we:0 ~wdata:0;
        let gnt = Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt") in
        if gnt = 1 then decr reads
      end
      else victim_idle eng cfg;
      Sim.Engine.step eng;
      incr cycles;
      go ()
    end
  in
  go ();
  !cycles

let test_contention_channel_exists () =
  (* a victim read winning a bank-0 collision delays the HWPE; the same
     access pattern against the private memory does not: the SoC-wide
     timing side channel of Sec. 4.1 *)
  let quiet = hwpe_completion_time ~victim_reads:0 ~victim_target:0 () in
  let contended =
    hwpe_completion_time ~victim_start:2 ~victim_reads:1
      ~victim_target:(pub_addr ~bank:0 ~index:2) ()
  in
  let private_side =
    hwpe_completion_time ~victim_start:2 ~victim_reads:1
      ~victim_target:(priv_addr ~bank:0 ~index:0) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "contention delays hwpe (%d vs %d)" contended quiet)
    true (contended > quiet);
  Alcotest.(check int)
    (Printf.sprintf "private accesses do not (%d vs %d)" private_side quiet)
    quiet private_side

let test_greedy_victim_antialigns () =
  (* documents the round-robin dynamics described above: a greedy victim
     stream does not delay the bank-interleaved HWPE at all *)
  let quiet = hwpe_completion_time ~victim_reads:0 ~victim_target:0 () in
  let greedy =
    hwpe_completion_time ~victim_reads:3
      ~victim_target:(pub_addr ~bank:0 ~index:2) ()
  in
  Alcotest.(check int) "greedy victim causes no delay" quiet greedy

let test_round_robin_fairness () =
  (* DMA copying within bank 0 while victim also reads bank 0: both
     must make progress (no starvation) *)
  let _, eng = fresh () in
  ignore (bus_write eng cfg ~addr:0 ~data:9);
  ignore (bus_write eng cfg ~addr:dma_src ~data:0);
  ignore (bus_write eng cfg ~addr:dma_dst ~data:2);
  ignore (bus_write eng cfg ~addr:dma_len ~data:1);
  ignore (bus_write eng cfg ~addr:dma_ctrl ~data:1);
  (* victim keeps reading the same bank *)
  let v = bus_read_value eng cfg ~addr:0 in
  Alcotest.(check int) "victim read ok" 9 v;
  Sim.Engine.run eng 20;
  Alcotest.(check int) "dma finished too" 9 (bus_read_value eng cfg ~addr:2)

let test_tdma_no_contention_channel () =
  (* under TDMA, the HWPE's completion time is a function of the slot
     schedule only — victim traffic cannot modulate it *)
  let cfg_tdma = { cfg with Soc.Config.arbiter = `Tdma } in
  let completion ~victim_reads ~victim_start =
    let soc = build_formal ~cfg:cfg_tdma () in
    let eng = engine_of soc in
    ignore (bus_write eng cfg_tdma ~addr:hwpe_dst ~data:0);
    ignore (bus_write eng cfg_tdma ~addr:hwpe_len ~data:4);
    ignore (bus_write eng cfg_tdma ~addr:hwpe_coef ~data:1);
    ignore (bus_write eng cfg_tdma ~addr:hwpe_ctrl ~data:1);
    let reads = ref victim_reads in
    let cycles = ref 0 in
    let rec go () =
      if !cycles > 200 then Alcotest.fail "hwpe never finished under tdma";
      if Bitvec.to_int (Sim.Engine.reg_value eng "hwpe.busy") = 0 then ()
      else begin
        if !reads > 0 && !cycles >= victim_start then begin
          set_victim eng cfg_tdma ~req:1 ~addr:(pub_addr ~bank:0 ~index:2)
            ~we:0 ~wdata:0;
          let gnt =
            Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt")
          in
          if gnt = 1 then decr reads
        end
        else victim_idle eng cfg_tdma;
        Sim.Engine.step eng;
        incr cycles;
        go ()
      end
    in
    go ();
    !cycles
  in
  let quiet = completion ~victim_reads:0 ~victim_start:0 in
  List.iter
    (fun (reads, start) ->
      Alcotest.(check int)
        (Printf.sprintf "victim (%d reads from cycle %d) cannot delay hwpe"
           reads start)
        quiet
        (completion ~victim_reads:reads ~victim_start:start))
    [ (1, 0); (1, 1); (1, 2); (3, 0); (3, 2) ]

let test_fixed_priority_config () =
  let cfg_fp = { cfg with Soc.Config.arbiter = `Fixed_priority } in
  let soc = build_formal ~cfg:cfg_fp () in
  let eng = engine_of soc in
  (* single-master transactions still work *)
  ignore (bus_write eng cfg_fp ~addr:1 ~data:0x3c);
  Alcotest.(check int) "rw under fixed priority" 0x3c
    (bus_read_value eng cfg_fp ~addr:1)

let test_netlist_stats () =
  let soc, _ = fresh () in
  let bits = Netlist.state_bits soc.Soc.Builder.netlist in
  Alcotest.(check bool)
    (Printf.sprintf "state bits = %d" bits)
    true (bits > 100)

let () =
  Alcotest.run "soc"
    [
      ( "memory",
        [
          Alcotest.test_case "public sram rw" `Quick test_sram_rw;
          Alcotest.test_case "private sram rw" `Quick test_priv_sram_rw;
          Alcotest.test_case "bank interleaving" `Quick test_bank_interleave;
          Alcotest.test_case "unmapped never granted" `Quick
            test_unmapped_no_grant;
        ] );
      ( "peripherals",
        [
          Alcotest.test_case "timer counts" `Quick test_timer_counts;
          Alcotest.test_case "timer primeable" `Quick test_timer_prime;
          Alcotest.test_case "uart busy" `Quick test_uart_busy;
        ] );
      ( "dma",
        [
          Alcotest.test_case "copy" `Quick test_dma_copy;
          Alcotest.test_case "copy to private" `Quick test_dma_to_private;
          Alcotest.test_case "config locked while busy" `Quick
            test_dma_cfg_locked_while_busy;
          Alcotest.test_case "timer auto-start" `Quick
            test_timer_autostart_on_dma_done;
        ] );
      ( "hwpe",
        [
          Alcotest.test_case "progressive overwrite" `Quick test_hwpe_overwrites;
          Alcotest.test_case "coefficient stream" `Quick test_hwpe_coef_stream;
          Alcotest.test_case "partial progress visible" `Quick
            test_hwpe_progress_visible;
        ] );
      ( "arbitration",
        [
          Alcotest.test_case "contention timing channel exists" `Quick
            test_contention_channel_exists;
          Alcotest.test_case "greedy victim anti-aligns" `Quick
            test_greedy_victim_antialigns;
          Alcotest.test_case "round-robin fairness" `Quick
            test_round_robin_fairness;
          Alcotest.test_case "tdma removes the channel" `Quick
            test_tdma_no_contention_channel;
          Alcotest.test_case "fixed-priority variant" `Quick
            test_fixed_priority_config;
          Alcotest.test_case "netlist stats" `Quick test_netlist_stats;
        ] );
    ]
