(* Tests for the RV32 core: firmware programs executed on the full
   simulated SoC. *)

open Rtl
open Testutil

let cfg = Soc.Config.sim_default

let run_program ?(max_cycles = 20000) prog =
  let soc = build_sim ~cfg prog in
  let eng = Sim.Engine.create soc.Soc.Builder.netlist in
  let cycles = run_until_halt ~max_cycles eng in
  (eng, cycles)

let i x = Isa.Asm.I x

(* byte addresses of the memory map *)
let pub_base = Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Pub)
let priv_base =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Priv)
let timer_value_addr =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.periph_reg_addr cfg Soc.Memmap.Timer 1)
let timer_ctrl_addr =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.periph_reg_addr cfg Soc.Memmap.Timer 0)

let test_arith () =
  let open Isa.Encoding in
  let eng, _ =
    run_program
      [
        i (Addi (1, 0, 5));
        i (Addi (2, 0, 7));
        i (Add (3, 1, 2));
        i (Sub (4, 2, 1));
        i (Xor (5, 1, 2));
        i (Or (6, 1, 2));
        i (And (7, 1, 2));
        i (Slli (8, 1, 4));
        i (Srli (9, 8, 2));
        i Ebreak;
      ]
  in
  Alcotest.(check int) "add" 12 (cpu_reg eng 3);
  Alcotest.(check int) "sub" 2 (cpu_reg eng 4);
  Alcotest.(check int) "xor" 2 (cpu_reg eng 5);
  Alcotest.(check int) "or" 7 (cpu_reg eng 6);
  Alcotest.(check int) "and" 5 (cpu_reg eng 7);
  Alcotest.(check int) "slli" 80 (cpu_reg eng 8);
  Alcotest.(check int) "srli" 20 (cpu_reg eng 9)

let test_signed_ops () =
  let open Isa.Encoding in
  let eng, _ =
    run_program
      [
        i (Addi (1, 0, -5));
        i (Srai (2, 1, 1));
        i (Slti (3, 1, 0));
        i (Sltiu (4, 1, 0));
        i (Slt (5, 0, 1));
        i (Sltu (6, 0, 1));
        i Ebreak;
      ]
  in
  Alcotest.(check int) "addi negative" 0xfffffffb (cpu_reg eng 1);
  Alcotest.(check int) "srai" 0xfffffffd (cpu_reg eng 2);
  Alcotest.(check int) "slti (-5 < 0)" 1 (cpu_reg eng 3);
  Alcotest.(check int) "sltiu (big < 0)" 0 (cpu_reg eng 4);
  Alcotest.(check int) "slt (0 < -5)" 0 (cpu_reg eng 5);
  Alcotest.(check int) "sltu (0 < big)" 1 (cpu_reg eng 6)

let test_lui_auipc () =
  let open Isa.Encoding in
  let eng, _ =
    run_program [ i (Lui (1, 0x12345)); i (Auipc (2, 0x1)); i Ebreak ]
  in
  Alcotest.(check int) "lui" 0x12345000 (cpu_reg eng 1);
  (* auipc at pc=4 *)
  Alcotest.(check int) "auipc" 0x1004 (cpu_reg eng 2)

let test_branch_loop () =
  let open Isa.Asm in
  let open Isa.Encoding in
  (* sum 1..10 into x3 *)
  let eng, _ =
    run_program
      [
        I (Addi (1, 0, 0));
        (* i *)
        I (Addi (3, 0, 0));
        (* sum *)
        L "loop";
        I (Addi (1, 1, 1));
        I (Add (3, 3, 1));
        I (Addi (2, 0, 10));
        Blt_l (1, 2, "loop");
        I Ebreak;
      ]
  in
  Alcotest.(check int) "sum 1..10" 55 (cpu_reg eng 3)

let test_branch_not_taken_penalty () =
  let open Isa.Encoding in
  (* not-taken branch costs 1 cycle; taken costs 2 (bubble) *)
  let _, c_not_taken =
    run_program [ i (Beq (1, 2, 8)); i Ebreak; i Ebreak ]
  in
  let open Isa.Asm in
  let _, c_taken =
    run_program [ I (Addi (1, 0, 1)); Bne_l (1, 0, "t"); Nop; L "t"; I Ebreak ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "taken (%d) > not taken (%d)" c_taken c_not_taken)
    true
    (c_taken > c_not_taken)

let test_jal_jalr_call () =
  let open Isa.Asm in
  let open Isa.Encoding in
  let eng, _ =
    run_program
      [
        Jal_l (1, "func");
        (* call *)
        I (Addi (3, 0, 99));
        (* after return *)
        I Ebreak;
        L "func";
        I (Addi (2, 0, 42));
        I (Jalr (0, 1, 0));
        (* return *)
      ]
  in
  Alcotest.(check int) "function ran" 42 (cpu_reg eng 2);
  Alcotest.(check int) "returned" 99 (cpu_reg eng 3);
  Alcotest.(check int) "link register" 4 (cpu_reg eng 1)

let test_memory_rw () =
  let open Isa.Asm in
  let open Isa.Encoding in
  let eng, _ =
    run_program
      [
        Li (1, pub_base);
        I (Addi (2, 0, 123));
        I (Sw (2, 1, 0));
        I (Sw (2, 1, 4));
        I (Lw (3, 1, 0));
        I (Addi (3, 3, 1));
        I (Sw (3, 1, 8));
        I (Lw (4, 1, 8));
        I Ebreak;
      ]
  in
  Alcotest.(check int) "store/load roundtrip" 124 (cpu_reg eng 4);
  Alcotest.(check int) "memory cell" 123
    (Bitvec.to_int (Sim.Engine.mem_value eng "pub0.mem" 0));
  (* word address 1 -> bank 1, index 0 *)
  Alcotest.(check int) "interleaved cell" 123
    (Bitvec.to_int (Sim.Engine.mem_value eng "pub1.mem" 0))

let test_private_memory_access () =
  let open Isa.Asm in
  let open Isa.Encoding in
  let eng, _ =
    run_program
      [
        Li (1, priv_base);
        I (Addi (2, 0, 77));
        I (Sw (2, 1, 0));
        I (Lw (3, 1, 0));
        I Ebreak;
      ]
  in
  Alcotest.(check int) "private rw" 77 (cpu_reg eng 3)

let test_fibonacci_in_memory () =
  let open Isa.Asm in
  let open Isa.Encoding in
  (* compute fib(0..9) into memory, read back fib(9) *)
  let eng, _ =
    run_program
      [
        Li (1, pub_base);
        I (Addi (2, 0, 0));
        I (Addi (3, 0, 1));
        I (Sw (2, 1, 0));
        I (Sw (3, 1, 4));
        I (Addi (4, 0, 2));
        (* index *)
        L "loop";
        I (Lw (5, 1, 0));
        I (Lw (6, 1, 4));
        I (Add (7, 5, 6));
        I (Sw (6, 1, 0));
        I (Sw (7, 1, 4));
        I (Addi (4, 4, 1));
        I (Addi (8, 0, 10));
        Blt_l (4, 8, "loop");
        I (Lw (9, 1, 4));
        I Ebreak;
      ]
  in
  Alcotest.(check int) "fib(9)" 34 (cpu_reg eng 9)

let test_timer_measured_delay () =
  let open Isa.Asm in
  let open Isa.Encoding in
  (* measure elapsed cycles around a loop with the system timer *)
  let prog n =
    [
      Li (1, timer_ctrl_addr);
      I (Addi (2, 0, 1));
      I (Sw (2, 1, 0));
      (* enable timer *)
      I (Addi (3, 0, n));
      L "spin";
      I (Addi (3, 3, -1));
      Bne_l (3, 0, "spin");
      Li (4, timer_value_addr);
      I (Lw (5, 4, 0));
      I Ebreak;
    ]
  in
  let eng1, _ = run_program (prog 5) in
  let eng2, _ = run_program (prog 10) in
  let t1 = cpu_reg eng1 5 and t2 = cpu_reg eng2 5 in
  Alcotest.(check bool)
    (Printf.sprintf "longer loop reads larger timer (%d vs %d)" t2 t1)
    true (t2 > t1)

let test_x0_hardwired () =
  let open Isa.Encoding in
  let eng, _ = run_program [ i (Addi (0, 0, 7)); i (Add (1, 0, 0)); i Ebreak ] in
  Alcotest.(check int) "x0 stays zero" 0 (cpu_reg eng 1)

let test_halt_stops_execution () =
  let open Isa.Encoding in
  let soc =
    build_sim ~cfg [ i (Addi (1, 0, 1)); i Ebreak; i (Addi (1, 0, 9)) ]
  in
  let eng = Sim.Engine.create soc.Soc.Builder.netlist in
  ignore (run_until_halt eng);
  Sim.Engine.run eng 10;
  Alcotest.(check int) "post-halt instruction not executed" 1 (cpu_reg eng 1)

let periph_byte p reg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.periph_reg_addr cfg p reg)

let mmio_write reg_addr value =
  let open Isa.Asm in
  let open Isa.Encoding in
  [ Li (10, reg_addr); Li (11, value); I (Sw (11, 10, 0)) ]

let test_load_stall_with_contention () =
  (* Functional results are independent of IP traffic, but the cycle
     count is not. One greedy IP cannot delay a sparse CPU stream under
     round-robin (the CPU wins its collisions); with both the DMA and
     the HWPE saturating the banks, the CPU loses arbitration rounds
     and its loop visibly slows down. *)
  let open Isa.Asm in
  let open Isa.Encoding in
  let ip_setup =
    (* HWPE: overwrite 64 words from word 0 *)
    mmio_write (periph_byte Soc.Memmap.Hwpe 1) 0
    @ mmio_write (periph_byte Soc.Memmap.Hwpe 2) 64
    @ mmio_write (periph_byte Soc.Memmap.Hwpe 3) 1
    (* DMA: copy 64 words within the public memory *)
    @ mmio_write (periph_byte Soc.Memmap.Dma 1) 0
    @ mmio_write (periph_byte Soc.Memmap.Dma 2) 64
    @ mmio_write (periph_byte Soc.Memmap.Dma 3) 64
    @ mmio_write (periph_byte Soc.Memmap.Dma 0) 1
    @ mmio_write (periph_byte Soc.Memmap.Hwpe 0) 1
  in
  let measured_loop =
    [
      Li (1, pub_base);
      I (Addi (2, 0, 20));
      L "loop";
      I (Lw (3, 1, 0));
      I (Lw (4, 1, 4));
      I (Addi (2, 2, -1));
      Bne_l (2, 0, "loop");
      I Ebreak;
    ]
  in
  let nop_setup = List.concat_map (fun _ -> [ Nop; Nop; Nop ]) ip_setup in
  ignore nop_setup;
  (* equalise the setup cost with harmless MMIO writes to the UART *)
  let idle_setup =
    List.concat_map
      (fun _ -> mmio_write (periph_byte Soc.Memmap.Uart 0) 0)
      [ (); (); (); (); (); (); (); () ]
  in
  let _, cycles_noisy = run_program (ip_setup @ measured_loop) in
  let _, cycles_quiet = run_program (idle_setup @ measured_loop) in
  Alcotest.(check bool)
    (Printf.sprintf "ip traffic slows the cpu (%d vs %d)" cycles_noisy
       cycles_quiet)
    true
    (cycles_noisy > cycles_quiet)

let () =
  Alcotest.run "cpu"
    [
      ( "alu",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "signed ops" `Quick test_signed_ops;
          Alcotest.test_case "lui/auipc" `Quick test_lui_auipc;
          Alcotest.test_case "x0 hardwired" `Quick test_x0_hardwired;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch loop" `Quick test_branch_loop;
          Alcotest.test_case "branch penalty" `Quick
            test_branch_not_taken_penalty;
          Alcotest.test_case "call/return" `Quick test_jal_jalr_call;
          Alcotest.test_case "halt" `Quick test_halt_stops_execution;
        ] );
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_memory_rw;
          Alcotest.test_case "private region" `Quick test_private_memory_access;
          Alcotest.test_case "fibonacci" `Quick test_fibonacci_in_memory;
        ] );
      ( "timing",
        [
          Alcotest.test_case "timer measures delay" `Quick
            test_timer_measured_delay;
          Alcotest.test_case "load stall under contention" `Quick
            test_load_stall_with_contention;
        ] );
    ]
