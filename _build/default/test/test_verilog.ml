(* Structural checks on the Verilog backend (no Verilog simulator is
   available in this environment, so the tests validate shape:
   identifier legality, port lists, per-register processes, memory
   declarations and ROM initialisation). *)

open Rtl

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let build_counter () =
  let open Netlist.Builder in
  let b = create "counter" in
  let enable = input b "enable" 1 in
  let count = reg b ~init:(Bitvec.of_int ~width:8 5) "count" 8 in
  set_next b count (Expr.mux enable Expr.(count +: one 8) count);
  output b "value" count;
  finalize b

let test_counter_emission () =
  let v = Verilog.to_string (build_counter ()) in
  Alcotest.(check bool) "module header" true (contains v "module top_counter(");
  Alcotest.(check bool) "clk port" true (contains v "input wire clk");
  Alcotest.(check bool) "enable port" true
    (contains v "input wire [0:0] enable");
  Alcotest.(check bool) "output port" true
    (contains v "output wire [7:0] value");
  Alcotest.(check bool) "register decl" true (contains v "reg [7:0] count;");
  Alcotest.(check bool) "reset value" true (contains v "count <= 8'h5;");
  Alcotest.(check bool) "endmodule" true (contains v "endmodule")

let test_one_process_per_register () =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  let nl = soc.Soc.Builder.netlist in
  let v = Verilog.to_string nl in
  let regs = List.length nl.Netlist.regs in
  let mems_with_ports =
    List.length
      (List.filter (fun md -> md.Netlist.md_ports <> []) nl.Netlist.mems)
  in
  Alcotest.(check int) "always blocks" (regs + mems_with_ports)
    (count_occurrences v "always @(posedge clk)")

let test_soc_memories () =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  let v = Verilog.to_string soc.Soc.Builder.netlist in
  Alcotest.(check bool) "pub bank array" true
    (contains v "reg [7:0] pub0_mem [0:3];");
  Alcotest.(check bool) "mangled dotted names" true (contains v "dma_state");
  Alcotest.(check bool) "symbolic params become inputs" true
    (contains v "input wire [7:0] victim_base")

let test_rom_initialisation () =
  let rom =
    Isa.Asm.assemble [ Isa.Asm.I (Isa.Encoding.Addi (1, 0, 1)); Isa.Asm.I Isa.Encoding.Ebreak ]
  in
  let soc = Soc.Builder.build Soc.Config.sim_default (Soc.Builder.Sim { rom }) in
  let v = Verilog.to_string soc.Soc.Builder.netlist in
  Alcotest.(check bool) "initial block for rom" true (contains v "initial begin");
  Alcotest.(check bool) "first instruction word" true
    (contains v "cpu_rom[0] = 32'h100093;")

let test_identifier_legality () =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  let v = Verilog.to_string soc.Soc.Builder.netlist in
  (* dotted RTL names must not survive into declarations *)
  String.split_on_char '\n' v
  |> List.iter (fun line ->
         if contains line "  reg [" || contains line "  wire [" then
           Alcotest.(check bool)
             ("no dot in: " ^ line)
             false (String.contains line '.'))

let test_name_collisions_resolved () =
  let open Netlist.Builder in
  let b = create "collide" in
  let x1 = reg b "a.b" 4 in
  let x2 = reg b "a_b" 4 in
  ignore x1;
  ignore x2;
  let v = Verilog.to_string (finalize b) in
  Alcotest.(check bool) "both registers present" true
    (contains v "reg [3:0] a_b;" && contains v "reg [3:0] a_b_0;")

let test_write_file () =
  let path = Filename.temp_file "upec" ".v" in
  Verilog.write_file path (build_counter ());
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (contains text "endmodule")

let () =
  Alcotest.run "verilog"
    [
      ( "emission",
        [
          Alcotest.test_case "counter" `Quick test_counter_emission;
          Alcotest.test_case "one process per register" `Quick
            test_one_process_per_register;
          Alcotest.test_case "soc memories" `Quick test_soc_memories;
          Alcotest.test_case "rom initialisation" `Quick test_rom_initialisation;
          Alcotest.test_case "identifier legality" `Quick
            test_identifier_legality;
          Alcotest.test_case "name collisions" `Quick
            test_name_collisions_resolved;
          Alcotest.test_case "write_file" `Quick test_write_file;
        ] );
    ]
