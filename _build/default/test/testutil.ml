(* Shared helpers for SoC-level tests: drive the formal-mode netlist's
   victim bus port from a simulator, mimicking CPU transactions. *)

open Rtl

let bv w v = Bitvec.of_int ~width:w v

let build_formal ?(cfg = Soc.Config.formal_tiny) () =
  Soc.Builder.build cfg Soc.Builder.Formal

let engine_of (soc : Soc.Builder.t) = Sim.Engine.create soc.Soc.Builder.netlist

let set_victim eng (cfg : Soc.Config.t) ~req ~addr ~we ~wdata =
  Sim.Engine.set_input_int eng "victim.req" req;
  Sim.Engine.set_input eng "victim.addr" (bv cfg.Soc.Config.addr_width addr);
  Sim.Engine.set_input_int eng "victim.we" we;
  Sim.Engine.set_input eng "victim.wdata" (bv cfg.Soc.Config.data_width wdata)

let victim_idle eng cfg = set_victim eng cfg ~req:0 ~addr:0 ~we:0 ~wdata:0

exception Bus_timeout of string

(* Issue one write; returns the number of cycles it stalled for. *)
let bus_write ?(max_wait = 50) eng cfg ~addr ~data =
  let rec wait n =
    if n > max_wait then raise (Bus_timeout (Printf.sprintf "write @%x" addr));
    set_victim eng cfg ~req:1 ~addr ~we:1 ~wdata:data;
    let gnt = Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt") in
    Sim.Engine.step eng;
    if gnt = 1 then n else wait (n + 1)
  in
  let stalls = wait 0 in
  victim_idle eng cfg;
  stalls

(* Issue one read; returns (value, stall_cycles). *)
let bus_read ?(max_wait = 50) eng cfg ~addr =
  let rec wait n =
    if n > max_wait then raise (Bus_timeout (Printf.sprintf "read @%x" addr));
    set_victim eng cfg ~req:1 ~addr ~we:0 ~wdata:0;
    let gnt = Bitvec.to_int (Sim.Engine.peek_output eng "victim.gnt") in
    Sim.Engine.step eng;
    if gnt = 1 then n else wait (n + 1)
  in
  let stalls = wait 0 in
  victim_idle eng cfg;
  (* response arrives in the cycle after the grant *)
  let rvalid = Bitvec.to_int (Sim.Engine.peek_output eng "victim.rvalid") in
  if rvalid <> 1 then raise (Bus_timeout (Printf.sprintf "rvalid @%x" addr));
  let v = Bitvec.to_int (Sim.Engine.peek_output eng "victim.rdata") in
  Sim.Engine.step eng;
  (v, stalls)

let bus_read_value ?max_wait eng cfg ~addr = fst (bus_read ?max_wait eng cfg ~addr)

(* Peripheral register addresses *)
let periph_addr cfg p reg = Soc.Memmap.periph_reg_addr cfg p reg

(* Simulation-mode SoC running a firmware image. *)
let build_sim ?(cfg = Soc.Config.sim_default) program =
  let rom = Isa.Asm.assemble program in
  Soc.Builder.build cfg (Soc.Builder.Sim { rom })

let run_until_halt ?(max_cycles = 20000) eng =
  let rec go n =
    if n > max_cycles then failwith "run_until_halt: cycle budget exhausted";
    if Bitvec.to_int (Sim.Engine.peek_output eng "halted") = 1 then n
    else begin
      Sim.Engine.step eng;
      go (n + 1)
    end
  in
  go 0

let cpu_reg eng i =
  if i = 0 then 0 else Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" i)
