(* Tests for the IFT baseline: propagation rules, instrumentation in
   simulation, and the formal taint-reachability comparison. *)

open Rtl


(* ---- a small design for rule-level tests ---- *)

let build_rules_design () =
  let open Netlist.Builder in
  let b = create "rules" in
  let a = input b "a" 8 in
  let c = input b "c" 8 in
  let r_and = reg b "r_and" 8 in
  let r_xor = reg b "r_xor" 8 in
  let r_add = reg b "r_add" 8 in
  let r_mux = reg b "r_mux" 8 in
  let sel = input b "sel" 1 in
  set_next b r_and Expr.(a &: c);
  set_next b r_xor Expr.(a ^: c);
  set_next b r_add Expr.(a +: c);
  set_next b r_mux (Expr.mux sel a c);
  finalize b

let instrumented () =
  let nl = build_rules_design () in
  let inst, sh = Ift.Taint.instrument nl ~taint_inputs:[ "a" ] in
  (nl, inst, sh)

let taint_of eng name = Bitvec.to_int (Sim.Engine.reg_value eng (name ^ "#t"))

let test_and_rule () =
  (* taint(a) & c: tainted bits pass only where the other operand is 1
     (or also tainted) *)
  let _, inst, _ = instrumented () in
  let eng = Sim.Engine.create inst in
  Sim.Engine.set_input_int eng "a" 0xff;
  Sim.Engine.set_input_int eng "c" 0x0f;
  Sim.Engine.set_input_int eng "a#t" 0xf0;
  Sim.Engine.step eng;
  (* AND with c=0x0f: tainted high nibble of a meets zeros -> untainted *)
  Alcotest.(check int) "and taint masked" 0x00 (taint_of eng "r_and");
  Sim.Engine.set_input_int eng "c" 0xf0;
  Sim.Engine.step eng;
  Alcotest.(check int) "and taint passes" 0xf0 (taint_of eng "r_and")

let test_xor_rule () =
  let _, inst, _ = instrumented () in
  let eng = Sim.Engine.create inst in
  Sim.Engine.set_input_int eng "a#t" 0x3c;
  Sim.Engine.step eng;
  Alcotest.(check int) "xor taint union" 0x3c (taint_of eng "r_xor")

let test_add_smears () =
  let _, inst, _ = instrumented () in
  let eng = Sim.Engine.create inst in
  Sim.Engine.set_input_int eng "a#t" 0x01;
  Sim.Engine.step eng;
  Alcotest.(check int) "add smears fully" 0xff (taint_of eng "r_add")

let test_mux_rules () =
  let _, inst, _ = instrumented () in
  let eng = Sim.Engine.create inst in
  (* untainted selector picks the taint of the selected branch *)
  Sim.Engine.set_input_int eng "sel" 1;
  Sim.Engine.set_input_int eng "a#t" 0x55;
  Sim.Engine.step eng;
  Alcotest.(check int) "mux selects taint" 0x55 (taint_of eng "r_mux");
  Sim.Engine.set_input_int eng "sel" 0;
  Sim.Engine.step eng;
  Alcotest.(check int) "other branch untainted" 0x00 (taint_of eng "r_mux")

let test_untainted_inputs_stay_clear () =
  let _, inst, _ = instrumented () in
  let eng = Sim.Engine.create inst in
  Sim.Engine.set_input_int eng "a" 0xab;
  Sim.Engine.set_input_int eng "c" 0xcd;
  Sim.Engine.run eng 5;
  Alcotest.(check int) "no taint without source" 0
    (taint_of eng "r_and" lor taint_of eng "r_xor" lor taint_of eng "r_add")

(* ---- memory taint ---- *)

let test_memory_taint () =
  let open Netlist.Builder in
  let b = create "memtaint" in
  let wen = input b "wen" 1 in
  let waddr = input b "waddr" 2 in
  let wdata = input b "wdata" 8 in
  let raddr = input b "raddr" 2 in
  let m = mem b "m" ~addr_width:2 ~data_width:8 ~depth:4 in
  write_port b m ~enable:wen ~addr:waddr ~data:wdata;
  let rd = reg b "rd" 8 in
  set_next b rd (Expr.memread m raddr);
  let nl = finalize b in
  let inst, _sh = Ift.Taint.instrument nl ~taint_inputs:[ "wdata"; "waddr" ] in
  let eng = Sim.Engine.create inst in
  (* tainted data written to cell 2 *)
  Sim.Engine.set_input_int eng "wen" 1;
  Sim.Engine.set_input_int eng "waddr" 2;
  Sim.Engine.set_input_int eng "wdata" 0x77;
  Sim.Engine.set_input_int eng "wdata#t" 0xff;
  Sim.Engine.step eng;
  Alcotest.(check int) "cell 2 tainted" 0xff
    (Bitvec.to_int (Sim.Engine.reg_value eng "m#t[2]"));
  Alcotest.(check int) "cell 1 clean" 0
    (Bitvec.to_int (Sim.Engine.reg_value eng "m#t[1]"));
  (* reading the tainted cell taints the destination register *)
  Sim.Engine.set_input_int eng "wen" 0;
  Sim.Engine.set_input_int eng "raddr" 2;
  Sim.Engine.step eng;
  Alcotest.(check int) "read taints register" 0xff (taint_of eng "rd");
  (* a tainted write address taints every cell *)
  Sim.Engine.set_input_int eng "wen" 1;
  Sim.Engine.set_input_int eng "wdata#t" 0;
  Sim.Engine.set_input_int eng "waddr#t" 1;
  Sim.Engine.step eng;
  Alcotest.(check int) "address taint smears cells" 0xff
    (Bitvec.to_int (Sim.Engine.reg_value eng "m#t[0]"))

(* ---- taint never disappears spuriously / soundness vs simulation ---- *)

let qcheck_taint_soundness =
  (* flipping a tainted input bit can only change state bits that the
     shadow marks tainted *)
  QCheck.Test.make ~count:100 ~name:"taint over-approximates influence"
    QCheck.(triple (int_range 0 255) (int_range 0 255) (int_range 0 255))
    (fun (av, cv, flip) ->
      let nl = build_rules_design () in
      let inst, _ = Ift.Taint.instrument nl ~taint_inputs:[ "a" ] in
      let run a_value =
        let eng = Sim.Engine.create inst in
        Sim.Engine.set_input_int eng "a" a_value;
        Sim.Engine.set_input_int eng "c" cv;
        Sim.Engine.set_input_int eng "sel" 1;
        Sim.Engine.set_input_int eng "a#t" flip;
        Sim.Engine.step eng;
        eng
      in
      let e1 = run av in
      let e2 = run (av lxor flip) in
      List.for_all
        (fun r ->
          let v1 = Bitvec.to_int (Sim.Engine.reg_value e1 r) in
          let v2 = Bitvec.to_int (Sim.Engine.reg_value e2 r) in
          let taint = Bitvec.to_int (Sim.Engine.reg_value e1 (r ^ "#t")) in
          v1 lxor v2 land lnot taint = 0)
        [ "r_and"; "r_xor"; "r_add"; "r_mux" ])

(* ---- formal comparison on the SoC ---- *)

let spec_of variant =
  let soc = Soc.Builder.build Soc.Config.formal_tiny Soc.Builder.Formal in
  Upec.Spec.make soc variant

let test_formal_flow_on_vulnerable () =
  let verdict, _secs = Ift.Formal.analyze ~max_k:2 (spec_of Upec.Spec.Vulnerable) in
  match verdict with
  | Ift.Formal.Flow { tainted; _ } ->
      Alcotest.(check bool) "some persistent state tainted" true (tainted <> [])
  | Ift.Formal.No_flow _ -> Alcotest.fail "IFT must alarm on the baseline SoC"

let test_formal_false_positive_on_secure () =
  (* the key qualitative claim of Sec. 5: the taint abstraction smears
     through arbitration, so IFT alarms even on the design UPEC-SSC
     proves secure *)
  let verdict, _secs = Ift.Formal.analyze ~max_k:3 (spec_of Upec.Spec.Secure) in
  match verdict with
  | Ift.Formal.Flow _ -> ()
  | Ift.Formal.No_flow _ ->
      Alcotest.fail
        "expected a (false) IFT alarm on the secured SoC; if this starts \
         failing the taint rules became more precise than anticipated"

let () =
  Alcotest.run "ift"
    [
      ( "rules",
        [
          Alcotest.test_case "and" `Quick test_and_rule;
          Alcotest.test_case "xor" `Quick test_xor_rule;
          Alcotest.test_case "add smears" `Quick test_add_smears;
          Alcotest.test_case "mux" `Quick test_mux_rules;
          Alcotest.test_case "no spurious taint" `Quick
            test_untainted_inputs_stay_clear;
        ] );
      ("memory", [ Alcotest.test_case "memory taint" `Quick test_memory_taint ]);
      ("property", [ QCheck_alcotest.to_alcotest qcheck_taint_soundness ]);
      ( "formal",
        [
          Alcotest.test_case "flow on vulnerable" `Slow
            test_formal_flow_on_vulnerable;
          Alcotest.test_case "false positive on secure" `Slow
            test_formal_false_positive_on_secure;
        ] );
    ]
