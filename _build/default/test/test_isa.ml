(* Tests for instruction encoding and the assembler. *)

open Rtl

let all_sample_instrs =
  let open Isa.Encoding in
  [
    Lui (1, 0x12345);
    Auipc (2, 0xfffff);
    Jal (1, 2048);
    Jal (0, -4);
    Jalr (1, 2, -8);
    Beq (1, 2, 16);
    Bne (3, 4, -16);
    Blt (5, 6, 64);
    Bge (7, 8, -64);
    Bltu (9, 10, 254);
    Bgeu (11, 12, -256);
    Lw (1, 2, 4);
    Lw (3, 4, -4);
    Sw (5, 6, 8);
    Sw (7, 8, -2048);
    Addi (1, 2, 2047);
    Addi (3, 4, -2048);
    Slti (5, 6, 1);
    Sltiu (7, 8, 100);
    Xori (9, 10, -1);
    Ori (11, 12, 0x55);
    Andi (13, 14, 0xff);
    Slli (15, 16, 31);
    Srli (17, 18, 1);
    Srai (19, 20, 16);
    Add (21, 22, 23);
    Sub (24, 25, 26);
    Sll (27, 28, 29);
    Slt (30, 31, 1);
    Sltu (2, 3, 4);
    Xor (5, 6, 7);
    Srl (8, 9, 10);
    Sra (11, 12, 13);
    Or (14, 15, 16);
    And (17, 18, 19);
    Ecall;
    Ebreak;
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      match Isa.Encoding.decode (Isa.Encoding.encode i) with
      | Some i' ->
          Alcotest.(check string)
            (Format.asprintf "%a" Isa.Encoding.pp i)
            (Format.asprintf "%a" Isa.Encoding.pp i)
            (Format.asprintf "%a" Isa.Encoding.pp i')
      | None ->
          Alcotest.fail
            (Format.asprintf "decode failed for %a" Isa.Encoding.pp i))
    all_sample_instrs

let test_known_encodings () =
  (* cross-checked against a reference assembler *)
  let check name expected i =
    Alcotest.(check int) name expected (Bitvec.to_int (Isa.Encoding.encode i))
  in
  check "addi x1, x0, 1" 0x00100093 (Isa.Encoding.Addi (1, 0, 1));
  check "add x3, x1, x2" 0x002081b3 (Isa.Encoding.Add (3, 1, 2));
  check "lui x5, 0x12345" 0x123452b7 (Isa.Encoding.Lui (5, 0x12345));
  check "lw x6, 8(x7)" 0x0083a303 (Isa.Encoding.Lw (6, 7, 8));
  check "sw x6, 12(x7)" 0x0063a623 (Isa.Encoding.Sw (6, 7, 12));
  check "jal x1, 8" 0x008000ef (Isa.Encoding.Jal (1, 8));
  check "beq x1, x2, 8" 0x00208463 (Isa.Encoding.Beq (1, 2, 8));
  check "ebreak" 0x00100073 Isa.Encoding.Ebreak

let test_imm_range_checks () =
  Alcotest.check_raises "addi imm too large"
    (Invalid_argument "immediate 2048 out of 12-bit range") (fun () ->
      ignore (Isa.Encoding.encode (Isa.Encoding.Addi (1, 0, 2048))));
  Alcotest.check_raises "branch offset odd"
    (Invalid_argument "branch offset must be even") (fun () ->
      ignore (Isa.Encoding.encode (Isa.Encoding.Beq (1, 2, 3))))

let test_assembler_labels () =
  let open Isa.Asm in
  let prog =
    [
      I (Isa.Encoding.Addi (1, 0, 0));
      L "loop";
      I (Isa.Encoding.Addi (1, 1, 1));
      Bne_l (1, 2, "loop");
      I Isa.Encoding.Ebreak;
    ]
  in
  let words = assemble prog in
  Alcotest.(check int) "4 words" 4 (Array.length words);
  (* the bne at word 2 must jump back 4 bytes *)
  match Isa.Encoding.decode words.(2) with
  | Some (Isa.Encoding.Bne (1, 2, -4)) -> ()
  | Some i ->
      Alcotest.fail (Format.asprintf "unexpected %a" Isa.Encoding.pp i)
  | None -> Alcotest.fail "undecodable branch"

let test_assembler_li () =
  let open Isa.Asm in
  let check_li v =
    let words = assemble [ Li (5, v) ] in
    Alcotest.(check int) "2 words" 2 (Array.length words);
    match (Isa.Encoding.decode words.(0), Isa.Encoding.decode words.(1)) with
    | Some (Isa.Encoding.Lui (5, hi)), Some (Isa.Encoding.Addi (5, 5, lo)) ->
        let got = ((hi lsl 12) + lo) land 0xffffffff in
        Alcotest.(check int) (Printf.sprintf "li %d" v) (v land 0xffffffff) got
    | _ -> Alcotest.fail "li expansion shape"
  in
  List.iter check_li [ 0; 1; 0x800; 0xfff; 0x1000; 0x12345678; -1; -4096 ]

let test_assembler_errors () =
  let open Isa.Asm in
  (try
     ignore (assemble [ J "nowhere" ]);
     Alcotest.fail "undefined label accepted"
   with Failure msg ->
     Alcotest.(check string) "msg" "undefined label nowhere" msg);
  try
    ignore (assemble [ L "a"; L "a" ]);
    Alcotest.fail "duplicate label accepted"
  with Failure msg -> Alcotest.(check string) "msg" "duplicate label a" msg

let test_disassemble () =
  let words = Isa.Asm.assemble [ I (Isa.Encoding.Addi (1, 0, 5)) ] in
  match Isa.Asm.disassemble words with
  | [ line ] ->
      Alcotest.(check bool) "mentions addi" true
        (String.length line > 0
        &&
        let rec contains i =
          i + 4 <= String.length line
          && (String.sub line i 4 = "addi" || contains (i + 1))
        in
        contains 0)
  | _ -> Alcotest.fail "expected one line"

let qcheck_encode_decode =
  QCheck.Test.make ~count:500 ~name:"random instr encode/decode roundtrip"
    QCheck.(int_range 0 1073741823)
    (fun seed ->
      let rs = Random.State.make [| seed |] in
      let reg () = Random.State.int rs 32 in
      let imm12 () = Random.State.int rs 4096 - 2048 in
      let off13 () = (Random.State.int rs 2048 - 1024) * 2 in
      let off21 () = (Random.State.int rs 16384 - 8192) * 2 in
      let sh () = Random.State.int rs 32 in
      let open Isa.Encoding in
      let i =
        match Random.State.int rs 12 with
        | 0 -> Lui (reg (), Random.State.int rs (1 lsl 20))
        | 1 -> Auipc (reg (), Random.State.int rs (1 lsl 20))
        | 2 -> Jal (reg (), off21 ())
        | 3 -> Jalr (reg (), reg (), imm12 ())
        | 4 -> Beq (reg (), reg (), off13 ())
        | 5 -> Lw (reg (), reg (), imm12 ())
        | 6 -> Sw (reg (), reg (), imm12 ())
        | 7 -> Addi (reg (), reg (), imm12 ())
        | 8 -> Slli (reg (), reg (), sh ())
        | 9 -> Sub (reg (), reg (), reg ())
        | 10 -> And (reg (), reg (), reg ())
        | _ -> Bgeu (reg (), reg (), off13 ())
      in
      Isa.Encoding.decode (Isa.Encoding.encode i) = Some i)

(* ---- text parser ---- *)

let test_parser_basic () =
  let prog =
    Isa.Parser.parse
      "start:\n  li t0, 0x20\n  addi t1, zero, 42\n  sw t1, 0(t0)\n  lw t2, \
       0(t0)\n  beq t1, t2, done\n  j start\ndone:\n  ebreak\n"
  in
  let words = Isa.Asm.assemble prog in
  (* li = 2 words, then 5 instructions + ebreak *)
  Alcotest.(check int) "word count" 8 (Array.length words);
  match Isa.Encoding.decode words.(2) with
  | Some (Isa.Encoding.Addi (6, 0, 42)) -> ()
  | _ -> Alcotest.fail "addi t1, zero, 42 mis-parsed"

let test_parser_abi_names () =
  let check name idx =
    match Isa.Parser.parse (Printf.sprintf "addi %s, zero, 1" name) with
    | [ Isa.Asm.I (Isa.Encoding.Addi (r, 0, 1)) ] ->
        Alcotest.(check int) name idx r
    | _ -> Alcotest.fail ("parse failed for " ^ name)
  in
  List.iter
    (fun (n, i) -> check n i)
    [ ("ra", 1); ("sp", 2); ("t0", 5); ("s0", 8); ("fp", 8); ("a0", 10);
      ("a7", 17); ("s11", 27); ("t6", 31); ("x13", 13) ]

let test_parser_comments_and_blank () =
  let prog =
    Isa.Parser.parse "# full line comment\n\n  nop ; trailing\n  ebreak\n"
  in
  Alcotest.(check int) "two statements" 2 (List.length prog)

let test_parser_pseudo () =
  (match Isa.Parser.parse "mv a0, a1" with
  | [ Isa.Asm.I (Isa.Encoding.Addi (10, 11, 0)) ] -> ()
  | _ -> Alcotest.fail "mv");
  (match Isa.Parser.parse "not a0, a1" with
  | [ Isa.Asm.I (Isa.Encoding.Xori (10, 11, -1)) ] -> ()
  | _ -> Alcotest.fail "not");
  match Isa.Parser.parse "ret" with
  | [ Isa.Asm.I (Isa.Encoding.Jalr (0, 1, 0)) ] -> ()
  | _ -> Alcotest.fail "ret"

let test_parser_mem_operand () =
  (match Isa.Parser.parse "lw a0, -8(sp)" with
  | [ Isa.Asm.I (Isa.Encoding.Lw (10, 2, -8)) ] -> ()
  | _ -> Alcotest.fail "negative offset");
  match Isa.Parser.parse "sw a0, (t0)" with
  | [ Isa.Asm.I (Isa.Encoding.Sw (10, 5, 0)) ] -> ()
  | _ -> Alcotest.fail "implicit zero offset"

let test_parser_errors () =
  let expect_failure src =
    match Isa.Parser.parse src with
    | exception Failure msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions line (%s)" msg)
          true
          (String.length msg > 5 && String.sub msg 0 5 = "line ")
    | _ -> Alcotest.fail ("accepted bad input: " ^ src)
  in
  expect_failure "frobnicate x1, x2";
  expect_failure "addi x99, x0, 1";
  expect_failure "addi x1, x0";
  expect_failure "lw x1, nonsense"

let test_parser_roundtrip_via_iss () =
  (* parse, assemble, run: the sum.s firmware computes 5050 *)
  let src =
    "  li t0, 0\n  li a0, 0\n  li t1, 100\nloop:\n  addi t0, t0, 1\n  add a0, \
     a0, t0\n  blt t0, t1, loop\n  ebreak\n"
  in
  let rom = Isa.Asm.assemble (Isa.Parser.parse src) in
  let mem =
    { Isa.Iss.load_word = (fun _ -> 0); Isa.Iss.store_word = (fun _ _ -> ()) }
  in
  let iss = Isa.Iss.create ~rom mem in
  ignore (Isa.Iss.run iss);
  Alcotest.(check int) "a0 = 5050" 5050 (Isa.Iss.reg iss 10)

let () =
  Alcotest.run "isa"
    [
      ( "parser",
        [
          Alcotest.test_case "basic program" `Quick test_parser_basic;
          Alcotest.test_case "abi register names" `Quick test_parser_abi_names;
          Alcotest.test_case "comments and blanks" `Quick
            test_parser_comments_and_blank;
          Alcotest.test_case "pseudo instructions" `Quick test_parser_pseudo;
          Alcotest.test_case "memory operands" `Quick test_parser_mem_operand;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_parser_errors;
          Alcotest.test_case "roundtrip through iss" `Quick
            test_parser_roundtrip_via_iss;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "sample roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "immediate range checks" `Quick
            test_imm_range_checks;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "labels" `Quick test_assembler_labels;
          Alcotest.test_case "li expansion" `Quick test_assembler_li;
          Alcotest.test_case "errors" `Quick test_assembler_errors;
          Alcotest.test_case "disassemble" `Quick test_disassemble;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_encode_decode ]);
    ]
