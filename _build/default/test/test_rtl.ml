(* Tests for the RTL IR: bit vectors, expression smart constructors,
   netlist builder, structural analysis. *)

open Rtl

let bv w v = Bitvec.of_int ~width:w v

(* ---- Bitvec ---- *)

let test_bv_basic () =
  Alcotest.(check int) "of_int trunc" 0x3a (Bitvec.to_int (bv 8 0x13a));
  Alcotest.(check int) "neg wraps" 0xff (Bitvec.to_int (bv 8 (-1)));
  Alcotest.(check int) "signed" (-1) (Bitvec.to_signed_int (bv 8 0xff));
  Alcotest.(check int) "signed positive" 127 (Bitvec.to_signed_int (bv 8 127));
  Alcotest.(check bool) "bit" true (Bitvec.bit (bv 8 0b100) 2);
  Alcotest.(check bool) "bit low" false (Bitvec.bit (bv 8 0b100) 1);
  Alcotest.(check string) "pp" "8'h3a" (Bitvec.to_string (bv 8 0x3a))

let test_bv_arith () =
  Alcotest.(check int) "add wrap" 0 (Bitvec.to_int (Bitvec.add (bv 8 255) (bv 8 1)));
  Alcotest.(check int) "sub wrap" 255 (Bitvec.to_int (Bitvec.sub (bv 8 0) (bv 8 1)));
  Alcotest.(check int) "mul" 6 (Bitvec.to_int (Bitvec.mul (bv 8 2) (bv 8 3)));
  Alcotest.(check int) "mul wrap" ((200 * 200) land 255)
    (Bitvec.to_int (Bitvec.mul (bv 8 200) (bv 8 200)));
  Alcotest.(check int) "neg" 0xfe (Bitvec.to_int (Bitvec.neg (bv 8 2)))

let test_bv_mul_wide () =
  (* wide multiplication must not overflow the native int *)
  let a = bv 32 0xdeadbeef and b = bv 32 0x12345678 in
  let expected =
    Int64.to_int
      (Int64.logand
         (Int64.mul (Int64.of_int 0xdeadbeef) (Int64.of_int 0x12345678))
         0xffffffffL)
  in
  Alcotest.(check int) "32-bit mul" expected (Bitvec.to_int (Bitvec.mul a b))

let test_bv_shifts () =
  Alcotest.(check int) "shl" 0b100 (Bitvec.to_int (Bitvec.shl (bv 8 1) (bv 8 2)));
  Alcotest.(check int) "shl overflow" 0
    (Bitvec.to_int (Bitvec.shl (bv 8 1) (bv 8 9)));
  Alcotest.(check int) "lshr" 1 (Bitvec.to_int (Bitvec.lshr (bv 8 4) (bv 8 2)));
  Alcotest.(check int) "ashr sign" 0xff
    (Bitvec.to_int (Bitvec.ashr (bv 8 0x80) (bv 8 7)));
  Alcotest.(check int) "ashr big amount" 0xff
    (Bitvec.to_int (Bitvec.ashr (bv 8 0x80) (bv 8 200)));
  Alcotest.(check int) "lshr big amount" 0
    (Bitvec.to_int (Bitvec.lshr (bv 8 0x80) (bv 8 200)))

let test_bv_cmp () =
  Alcotest.(check int) "ult" 1 (Bitvec.to_int (Bitvec.ult (bv 8 3) (bv 8 5)));
  Alcotest.(check int) "ult false" 0 (Bitvec.to_int (Bitvec.ult (bv 8 5) (bv 8 3)));
  Alcotest.(check int) "slt negative" 1
    (Bitvec.to_int (Bitvec.slt (bv 8 0xff) (bv 8 1)));
  Alcotest.(check int) "sle equal" 1
    (Bitvec.to_int (Bitvec.sle (bv 8 7) (bv 8 7)))

let test_bv_structure () =
  Alcotest.(check int) "concat" 0xab
    (Bitvec.to_int (Bitvec.concat (bv 4 0xa) (bv 4 0xb)));
  Alcotest.(check int) "slice" 0xa
    (Bitvec.to_int (Bitvec.slice (bv 8 0xab) ~hi:7 ~lo:4));
  Alcotest.(check int) "zero_extend" 0xab
    (Bitvec.to_int (Bitvec.zero_extend (bv 8 0xab) 16));
  Alcotest.(check int) "sign_extend" 0xffab
    (Bitvec.to_int (Bitvec.sign_extend (bv 8 0xab) 16));
  Alcotest.(check int) "redxor" 1 (Bitvec.to_int (Bitvec.redxor (bv 8 0b0111)));
  Alcotest.(check int) "redand ones" 1 (Bitvec.to_int (Bitvec.redand (Bitvec.ones 5)))

let test_bv_invalid () =
  Alcotest.check_raises "width 0" (Invalid_argument "Bitvec: width 0 out of [1, 62]")
    (fun () -> ignore (bv 0 1));
  Alcotest.check_raises "slice range"
    (Invalid_argument "Bitvec.slice: [8:0] out of range for width 8") (fun () ->
      ignore (Bitvec.slice (bv 8 0) ~hi:8 ~lo:0))

(* ---- Expr smart constructors ---- *)

let test_expr_const_fold () =
  let open Expr in
  let a = of_int ~width:8 3 and b = of_int ~width:8 5 in
  (match node (a +: b) with
  | Const v -> Alcotest.(check int) "3+5" 8 (Bitvec.to_int v)
  | _ -> Alcotest.fail "expected constant fold");
  let x = input (signal "x" 8) in
  Alcotest.(check bool) "x+0 = x" true (equal (x +: zero 8) x);
  Alcotest.(check bool) "x&0 = 0" true (equal (x &: zero 8) (zero 8));
  Alcotest.(check bool) "x|x = x" true (equal (x |: x) x);
  Alcotest.(check bool) "x^x = 0" true (equal (x ^: x) (zero 8));
  Alcotest.(check bool) "x==x folds" true (equal (x ==: x) vdd);
  Alcotest.(check bool) "mux const" true (equal (mux vdd x (zero 8)) x);
  Alcotest.(check bool) "not not x" true (equal (~:(~:x)) x)

let test_expr_hashcons () =
  let open Expr in
  let x = input (signal "hx" 8) in
  let y = input (signal "hy" 8) in
  Alcotest.(check bool) "same node shared" true (equal (x +: y) (x +: y));
  Alcotest.(check bool) "different ops distinct" false (equal (x +: y) (x -: y))

let test_expr_width_check () =
  let open Expr in
  let x = input (signal "wx" 8) and y = input (signal "wy" 4) in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Expr.binop: width mismatch 8 vs 4") (fun () ->
      ignore (x +: y))

let test_expr_slices () =
  let open Expr in
  let x = input (signal "sx" 8) and y = input (signal "sy" 8) in
  let c = concat x y in
  Alcotest.(check bool) "slice of concat low" true
    (equal (slice c ~hi:7 ~lo:0) y);
  Alcotest.(check bool) "slice of concat high" true
    (equal (slice c ~hi:15 ~lo:8) x);
  Alcotest.(check bool) "full slice is identity" true
    (equal (slice x ~hi:7 ~lo:0) x);
  Alcotest.(check int) "nested slice" 1
    (width (bit (slice x ~hi:6 ~lo:3) 2));
  Alcotest.(check bool) "uresize narrower" true
    (equal (uresize x 4) (slice x ~hi:3 ~lo:0))

let test_mux_list () =
  let open Expr in
  let sel = input (signal "msel" 2) in
  let m =
    mux_list sel ~default:(of_int ~width:8 0)
      [ (0, of_int ~width:8 10); (3, of_int ~width:8 30) ]
  in
  Alcotest.(check int) "width" 8 (width m)

(* ---- Netlist builder ---- *)

let build_counter () =
  let open Netlist.Builder in
  let b = create "counter" in
  let enable = input b "enable" 1 in
  let count = reg b "count" 8 in
  set_next b count (Expr.mux enable Expr.(count +: one 8) count);
  output b "count_out" count;
  finalize b

let test_builder_basic () =
  let nl = build_counter () in
  Alcotest.(check int) "one input" 1 (List.length nl.Netlist.inputs);
  Alcotest.(check int) "one reg" 1 (List.length nl.Netlist.regs);
  Alcotest.(check int) "state bits" 8 (Netlist.state_bits nl);
  let rd = Netlist.find_reg nl "count" in
  Alcotest.(check int) "next width" 8 (Expr.width rd.Netlist.rd_next)

let test_builder_default_hold () =
  let open Netlist.Builder in
  let b = create "hold" in
  let r = reg b "r" 4 in
  let nl = finalize b in
  let rd = Netlist.find_reg nl "r" in
  Alcotest.(check bool) "holds value" true (Expr.equal rd.Netlist.rd_next r)

let test_builder_duplicate_names () =
  let open Netlist.Builder in
  let b = create "dup" in
  ignore (input b "x" 1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Netlist.Builder: duplicate name x") (fun () ->
      ignore (reg b "x" 1))

let test_builder_double_set_next () =
  let open Netlist.Builder in
  let b = create "dsn" in
  let r = reg b "r" 1 in
  set_next b r Expr.gnd;
  Alcotest.check_raises "double set"
    (Invalid_argument "Netlist.Builder.set_next r: already set") (fun () ->
      set_next b r Expr.vdd)

let test_builder_mem () =
  let open Netlist.Builder in
  let b = create "memtest" in
  let waddr = input b "waddr" 3 in
  let wdata = input b "wdata" 8 in
  let wen = input b "wen" 1 in
  let m = mem b "m" ~addr_width:3 ~data_width:8 ~depth:8 in
  write_port b m ~enable:wen ~addr:waddr ~data:wdata;
  output b "rd0" (Expr.memread m (Expr.zero 3));
  let nl = finalize b in
  Alcotest.(check int) "mem state bits" 64 (Netlist.state_bits nl);
  let md = Netlist.find_mem nl "m" in
  Alcotest.(check int) "one port" 1 (List.length md.Netlist.md_ports)

(* ---- Structural ---- *)

let build_two_ip () =
  let open Netlist.Builder in
  let b = create "soc" in
  let _ = input b "irq" 1 in
  let dma_cnt = reg b "dma.count" 8 in
  let dma_busy = reg b "dma.busy" 1 in
  let tim_val = reg b "timer.value" 8 in
  set_next b tim_val Expr.(tim_val +: uresize dma_busy 8);
  set_next b dma_cnt Expr.(dma_cnt +: one 8);
  ignore dma_busy;
  let m = mem b "sram.mem" ~addr_width:2 ~data_width:8 ~depth:4 in
  write_port b m ~enable:Expr.vdd ~addr:(Expr.uresize dma_cnt 2) ~data:dma_cnt;
  finalize b

let test_structural_svars () =
  let nl = build_two_ip () in
  let all = Structural.all_svars nl in
  Alcotest.(check int) "3 regs + 4 mem elements" 7
    (Structural.Svar_set.cardinal all);
  let dma = Structural.svars_of_ip nl "dma" in
  Alcotest.(check int) "dma has 2" 2 (Structural.Svar_set.cardinal dma);
  let sram = Structural.svars_of_ip nl "sram" in
  Alcotest.(check int) "sram has 4" 4 (Structural.Svar_set.cardinal sram)

let test_structural_cone () =
  let nl = build_two_ip () in
  let rd = Netlist.find_reg nl "timer.value" in
  let cone = Structural.cone_of rd.Netlist.rd_next in
  Alcotest.(check bool) "depends on dma.busy" true
    (Structural.Svar_set.exists
       (fun v -> Structural.svar_name v = "dma.busy")
       cone);
  Alcotest.(check bool) "independent of dma.count" false
    (Structural.Svar_set.exists
       (fun v -> Structural.svar_name v = "dma.count")
       cone)

let test_structural_support_mem () =
  let nl = build_two_ip () in
  let md = Netlist.find_mem nl "sram.mem" in
  let sup = Structural.reg_support nl (Structural.Smem (md.Netlist.md_mem, 0)) in
  Alcotest.(check bool) "mem element depends on dma.count" true
    (Structural.Svar_set.exists
       (fun v -> Structural.svar_name v = "dma.count")
       sup)

let test_svar_names () =
  let nl = build_two_ip () in
  let md = Netlist.find_mem nl "sram.mem" in
  Alcotest.(check string) "mem elem name" "sram.mem[2]"
    (Structural.svar_name (Structural.Smem (md.Netlist.md_mem, 2)));
  Alcotest.(check string) "ip of mem elem" "sram"
    (Structural.ip_of (Structural.Smem (md.Netlist.md_mem, 2)))

let test_pp_svar_set () =
  let nl = build_two_ip () in
  let md = Netlist.find_mem nl "sram.mem" in
  let set =
    Structural.Svar_set.of_list
      [
        Structural.Smem (md.Netlist.md_mem, 0);
        Structural.Smem (md.Netlist.md_mem, 1);
        Structural.Smem (md.Netlist.md_mem, 2);
      ]
  in
  let s = Format.asprintf "%a" Structural.pp_svar_set set in
  Alcotest.(check string) "ranges abbreviated" "sram.mem[0..2]" s

(* ---- pretty-printing and netlist import ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_expr () =
  let open Expr in
  let x = input (signal "ppx" 8) and y = input (signal "ppy" 8) in
  let s = Pp.expr_to_string (mux (x ==: y) (x +: y) (x ^: y)) in
  Alcotest.(check bool) "mentions operands" true
    (contains s "ppx" && contains s "ppy");
  Alcotest.(check bool) "mentions mux" true (contains s "?");
  let c = Pp.expr_to_string (of_int ~width:8 0x2a) in
  Alcotest.(check string) "constant form" "8'h2a" c

let test_pp_netlist () =
  let nl = build_counter () in
  let s = Format.asprintf "%a" Pp.pp_netlist nl in
  Alcotest.(check bool) "module header" true (contains s "module counter");
  Alcotest.(check bool) "register line" true (contains s "reg    [8] count");
  Alcotest.(check bool) "output line" true (contains s "output count_out")

let test_netlist_import () =
  let original = build_counter () in
  let b = Netlist.Builder.create "extended" in
  Netlist.Builder.import b original;
  let extra = Netlist.Builder.reg b "shadow" 8 in
  let count_e =
    Expr.reg (Netlist.find_reg original "count").Netlist.rd_signal
  in
  Netlist.Builder.set_next b extra count_e;
  let nl = Netlist.Builder.finalize b in
  Alcotest.(check int) "both registers" 2 (List.length nl.Netlist.regs);
  (* semantics preserved: the extended design still counts, and the new
     register follows one cycle behind *)
  let eng = Sim.Engine.create nl in
  Sim.Engine.set_input_int eng "enable" 1;
  Sim.Engine.run eng 3;
  Alcotest.(check int) "count" 3 (Bitvec.to_int (Sim.Engine.reg_value eng "count"));
  Alcotest.(check int) "shadow lags" 2
    (Bitvec.to_int (Sim.Engine.reg_value eng "shadow"))

let test_netlist_import_name_clash () =
  let original = build_counter () in
  let b = Netlist.Builder.create "clash" in
  Netlist.Builder.import b original;
  Alcotest.check_raises "duplicate name rejected"
    (Invalid_argument "Netlist.Builder: duplicate name count") (fun () ->
      ignore (Netlist.Builder.reg b "count" 8))

let test_expr_size () =
  let open Expr in
  let x = input (signal "szx" 8) in
  let shared = x +: one 8 in
  let e = shared *: shared in
  (* sharing counts nodes once *)
  Alcotest.(check bool) "size is small" true (size e <= 4)

(* ---- qcheck: bitvec algebraic properties ---- *)

let arb_bv =
  QCheck.make
    ~print:(fun (w, v) -> Printf.sprintf "(%d, %d)" w v)
    QCheck.Gen.(
      let* w = int_range 1 32 in
      let* v = int_bound ((1 lsl w) - 1) in
      return (w, v))

let qcheck_add_comm =
  QCheck.Test.make ~count:200 ~name:"bitvec add commutative"
    (QCheck.pair arb_bv QCheck.(int_range 0 1000000))
    (fun ((w, v1), v2) ->
      let a = bv w v1 and b = bv w v2 in
      Bitvec.equal (Bitvec.add a b) (Bitvec.add b a))

let qcheck_sub_add =
  QCheck.Test.make ~count:200 ~name:"bitvec (a-b)+b = a"
    (QCheck.pair arb_bv QCheck.(int_range 0 1000000))
    (fun ((w, v1), v2) ->
      let a = bv w v1 and b = bv w v2 in
      Bitvec.equal (Bitvec.add (Bitvec.sub a b) b) a)

let qcheck_concat_slice =
  QCheck.Test.make ~count:200 ~name:"slice undoes concat"
    (QCheck.pair arb_bv arb_bv)
    (fun ((w1, v1), (w2, v2)) ->
      QCheck.assume (w1 + w2 <= Bitvec.max_width);
      let a = bv w1 v1 and b = bv w2 v2 in
      let c = Bitvec.concat a b in
      Bitvec.equal (Bitvec.slice c ~hi:(w1 + w2 - 1) ~lo:w2) a
      && Bitvec.equal (Bitvec.slice c ~hi:(w2 - 1) ~lo:0) b)

let qcheck_demorgan =
  QCheck.Test.make ~count:200 ~name:"bitvec De Morgan"
    (QCheck.pair arb_bv QCheck.(int_range 0 1000000))
    (fun ((w, v1), v2) ->
      let a = bv w v1 and b = bv w v2 in
      Bitvec.equal
        (Bitvec.lognot (Bitvec.logand a b))
        (Bitvec.logor (Bitvec.lognot a) (Bitvec.lognot b)))

let () =
  Alcotest.run "rtl"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bv_basic;
          Alcotest.test_case "arithmetic" `Quick test_bv_arith;
          Alcotest.test_case "wide multiplication" `Quick test_bv_mul_wide;
          Alcotest.test_case "shifts" `Quick test_bv_shifts;
          Alcotest.test_case "comparisons" `Quick test_bv_cmp;
          Alcotest.test_case "structure" `Quick test_bv_structure;
          Alcotest.test_case "invalid arguments" `Quick test_bv_invalid;
        ] );
      ( "expr",
        [
          Alcotest.test_case "constant folding" `Quick test_expr_const_fold;
          Alcotest.test_case "hash consing" `Quick test_expr_hashcons;
          Alcotest.test_case "width checking" `Quick test_expr_width_check;
          Alcotest.test_case "slice simplification" `Quick test_expr_slices;
          Alcotest.test_case "mux_list" `Quick test_mux_list;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basic;
          Alcotest.test_case "register holds by default" `Quick
            test_builder_default_hold;
          Alcotest.test_case "duplicate names rejected" `Quick
            test_builder_duplicate_names;
          Alcotest.test_case "double set_next rejected" `Quick
            test_builder_double_set_next;
          Alcotest.test_case "memories" `Quick test_builder_mem;
        ] );
      ( "structural",
        [
          Alcotest.test_case "state variables" `Quick test_structural_svars;
          Alcotest.test_case "fan-in cones" `Quick test_structural_cone;
          Alcotest.test_case "memory support" `Quick test_structural_support_mem;
          Alcotest.test_case "svar names" `Quick test_svar_names;
          Alcotest.test_case "svar set printing" `Quick test_pp_svar_set;
        ] );
      ( "pp+import",
        [
          Alcotest.test_case "expression printing" `Quick test_pp_expr;
          Alcotest.test_case "netlist printing" `Quick test_pp_netlist;
          Alcotest.test_case "netlist import" `Quick test_netlist_import;
          Alcotest.test_case "import name clash" `Quick
            test_netlist_import_name_clash;
          Alcotest.test_case "expr size with sharing" `Quick test_expr_size;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_add_comm; qcheck_sub_add; qcheck_concat_slice; qcheck_demorgan ]
      );
    ]
