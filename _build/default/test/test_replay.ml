(* Cross-validation of the formal stack: every counterexample produced
   by the UPEC-SSC procedures must replay exactly on the concrete
   simulator. A divergence would mean the bit-blaster, the unroller or
   the model extraction disagree with the RTL semantics. *)

open Rtl

let tiny = Soc.Config.formal_tiny

let spec_of ?(cfg = tiny) ?(pers = Upec.Spec.Full_pers) variant =
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  Upec.Spec.make ~pers_model:pers soc variant

let get_cex report =
  match report.Upec.Report.verdict with
  | Upec.Report.Vulnerable { cex; _ } -> cex
  | Upec.Report.Secure _ | Upec.Report.Inconclusive _ ->
      Alcotest.fail "expected a vulnerable verdict with a counterexample"

let check_replays spec report =
  let nl = spec.Upec.Spec.soc.Soc.Builder.netlist in
  let cex = get_cex report in
  let mismatches = Upec.Replay.replay nl cex in
  List.iter
    (fun mm ->
      Format.eprintf "mismatch: %a@." Upec.Replay.pp_mismatch mm)
    mismatches;
  Alcotest.(check int) "no simulator mismatches" 0 (List.length mismatches)

let test_alg1_cex_replays () =
  let spec = spec_of Upec.Spec.Vulnerable in
  check_replays spec (Upec.Alg1.run spec)

let test_alg2_cex_replays () =
  let cfg = { tiny with Soc.Config.with_dma = false } in
  let spec = spec_of ~cfg ~pers:Upec.Spec.Memory_only Upec.Spec.Vulnerable in
  let report, _ = Upec.Alg2.run spec in
  check_replays spec report

let test_fixed_priority_cex_replays () =
  let cfg = { tiny with Soc.Config.arbiter = `Fixed_priority } in
  let spec = spec_of ~cfg Upec.Spec.Vulnerable in
  check_replays spec (Upec.Alg1.run spec)

let test_single_instance_cex_replays () =
  (* a plain (non-relational) IPC counterexample also replays *)
  let open Netlist.Builder in
  let b = create "ctr" in
  let en = input b "en" 1 in
  let c = reg b "c" 8 in
  set_next b c (Expr.mux en Expr.(c +: one 8) c);
  let nl = finalize b in
  let eng = Ipc.Engine.create ~two_instance:false nl in
  Ipc.Engine.ensure_frames eng 3;
  let u = Ipc.Engine.unroller eng in
  let g = Ipc.Engine.graph eng in
  let c3 =
    Ipc.Unroller.reg_vec u Ipc.Unroller.A ~frame:3
      (Netlist.find_reg nl "c").Netlist.rd_signal
  in
  (* claim: c(3) != 77 — must fail; the cex must replay *)
  let goal =
    Aig.lit_not
      (Bitblast.Blaster.v_eq g c3
         (Bitblast.Blaster.const_vec (Bitvec.of_int ~width:8 77)))
  in
  match Ipc.Engine.check eng goal with
  | Ipc.Engine.Holds -> Alcotest.fail "expected cex"
  | Ipc.Engine.Cex cex ->
      Alcotest.(check bool) "replays" true (Upec.Replay.check nl cex)

let () =
  Alcotest.run "replay"
    [
      ( "cex-vs-simulator",
        [
          Alcotest.test_case "alg1 counterexample" `Quick test_alg1_cex_replays;
          Alcotest.test_case "alg2 counterexample" `Quick test_alg2_cex_replays;
          Alcotest.test_case "fixed-priority counterexample" `Quick
            test_fixed_priority_cex_replays;
          Alcotest.test_case "single-instance counterexample" `Quick
            test_single_instance_cex_replays;
        ] );
    ]
