(* The ISS golden model, and differential testing of the RTL core
   against it: random terminating programs must leave the architectural
   registers and the data memory in identical states. *)

open Rtl

let cfg = Soc.Config.sim_default

let pub_base =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Pub)

let pub_bytes = Soc.Memmap.pub_words cfg * 4

(* flat memory model over the public RAM region *)
let flat_memory () =
  let table : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let mem =
    {
      Isa.Iss.load_word =
        (fun addr ->
          match Hashtbl.find_opt table (addr land lnot 3) with
          | Some v -> v
          | None -> 0);
      Isa.Iss.store_word =
        (fun addr v -> Hashtbl.replace table (addr land lnot 3) v);
    }
  in
  (mem, table)

let run_iss prog =
  let rom = Isa.Asm.assemble prog in
  let mem, table = flat_memory () in
  let iss = Isa.Iss.create ~rom mem in
  ignore (Isa.Iss.run iss);
  (iss, table)

(* ---- ISS unit tests ---- *)

let i x = Isa.Asm.I x

let test_iss_arith () =
  let open Isa.Encoding in
  let iss, _ =
    run_iss [ i (Addi (1, 0, 40)); i (Addi (2, 1, 2)); i (Add (3, 1, 2)); i Ebreak ]
  in
  Alcotest.(check int) "x3" 82 (Isa.Iss.reg iss 3);
  Alcotest.(check bool) "halted" true (Isa.Iss.halted iss)

let test_iss_wrap () =
  let open Isa.Encoding in
  let iss, _ =
    run_iss
      [ i (Addi (1, 0, -1)); i (Addi (2, 1, 1)); i (Srai (3, 1, 4)); i Ebreak ]
  in
  Alcotest.(check int) "wrap to zero" 0 (Isa.Iss.reg iss 2);
  Alcotest.(check int) "arithmetic shift keeps sign" 0xffffffff
    (Isa.Iss.reg iss 3)

let test_iss_memory () =
  let open Isa.Asm in
  let open Isa.Encoding in
  let iss, table =
    run_iss
      [ Li (1, 0x1000); I (Addi (2, 0, 99)); I (Sw (2, 1, 4)); I (Lw (3, 1, 4)); I Ebreak ]
  in
  Alcotest.(check int) "loaded back" 99 (Isa.Iss.reg iss 3);
  Alcotest.(check int) "stored" 99 (Hashtbl.find table 0x1004)

let test_iss_loop () =
  let open Isa.Asm in
  let open Isa.Encoding in
  let iss, _ =
    run_iss
      [
        I (Addi (1, 0, 0));
        I (Addi (2, 0, 0));
        L "loop";
        I (Addi (1, 1, 1));
        I (Add (2, 2, 1));
        I (Addi (3, 0, 100));
        Blt_l (1, 3, "loop");
        I Ebreak;
      ]
  in
  Alcotest.(check int) "sum 1..100" 5050 (Isa.Iss.reg iss 2)

let test_iss_x0 () =
  let open Isa.Encoding in
  let iss, _ = run_iss [ i (Addi (0, 0, 7)); i (Add (1, 0, 0)); i Ebreak ] in
  Alcotest.(check int) "x0 immutable" 0 (Isa.Iss.reg iss 1)

(* ---- differential testing against the RTL core ---- *)

(* Random terminating programs: a DAG of segments with forward branches
   only; loads/stores go through pointer registers x1..x2 initialised to
   word-aligned addresses inside the public RAM. *)
let gen_program rs =
  let n_segments = 2 + Random.State.int rs 4 in
  let seg_label i = Printf.sprintf "seg%d" i in
  let reg () = 4 + Random.State.int rs 12 in
  let ptr () = 1 + Random.State.int rs 2 in
  let off () = 4 * Random.State.int rs 16 in
  let random_instr () =
    let open Isa.Encoding in
    match Random.State.int rs 14 with
    | 0 -> Isa.Asm.I (Addi (reg (), reg (), Random.State.int rs 4096 - 2048))
    | 1 -> Isa.Asm.I (Add (reg (), reg (), reg ()))
    | 2 -> Isa.Asm.I (Sub (reg (), reg (), reg ()))
    | 3 -> Isa.Asm.I (Xor (reg (), reg (), reg ()))
    | 4 -> Isa.Asm.I (Or (reg (), reg (), reg ()))
    | 5 -> Isa.Asm.I (And (reg (), reg (), reg ()))
    | 6 -> Isa.Asm.I (Slli (reg (), reg (), Random.State.int rs 32))
    | 7 -> Isa.Asm.I (Srli (reg (), reg (), Random.State.int rs 32))
    | 8 -> Isa.Asm.I (Srai (reg (), reg (), Random.State.int rs 32))
    | 9 -> Isa.Asm.I (Slt (reg (), reg (), reg ()))
    | 10 -> Isa.Asm.I (Sltu (reg (), reg (), reg ()))
    | 11 -> Isa.Asm.I (Lui (reg (), Random.State.int rs (1 lsl 20)))
    | 12 -> Isa.Asm.I (Lw (reg (), ptr (), off ()))
    | _ -> Isa.Asm.I (Sw (reg (), ptr (), off ()))
  in
  let header =
    [
      Isa.Asm.Li (1, pub_base + 4 * (Random.State.int rs 64));
      Isa.Asm.Li (2, pub_base + 256 + (4 * Random.State.int rs 64));
      Isa.Asm.Li (3, Random.State.int rs 1000);
    ]
  in
  let segments =
    List.concat
      (List.init n_segments (fun s ->
           let body =
             List.init (1 + Random.State.int rs 8) (fun _ -> random_instr ())
           in
           let branch =
             if s < n_segments - 1 && Random.State.bool rs then
               let target = s + 1 + Random.State.int rs (n_segments - s - 1) in
               let a = reg () and b = reg () in
               [
                 (match Random.State.int rs 4 with
                 | 0 -> Isa.Asm.Beq_l (a, b, seg_label target)
                 | 1 -> Isa.Asm.Bne_l (a, b, seg_label target)
                 | 2 -> Isa.Asm.Blt_l (a, b, seg_label target)
                 | _ -> Isa.Asm.Bgeu_l (a, b, seg_label target));
               ]
             else []
           in
           (Isa.Asm.L (seg_label s) :: body) @ branch))
  in
  header @ segments @ [ Isa.Asm.I Isa.Encoding.Ebreak ]

let run_rtl prog =
  let rom = Isa.Asm.assemble prog in
  let soc = Soc.Builder.build cfg (Soc.Builder.Sim { rom }) in
  let eng = Sim.Engine.create soc.Soc.Builder.netlist in
  let rec go n =
    if n > 50000 then failwith "rtl did not halt"
    else if Bitvec.to_int (Sim.Engine.peek_output eng "halted") = 1 then eng
    else begin
      Sim.Engine.step eng;
      go (n + 1)
    end
  in
  go 0

let rtl_mem_word eng byte_addr =
  let word = (byte_addr - pub_base) / 4 in
  let bank = word land (cfg.Soc.Config.pub_banks - 1) in
  let index = word / cfg.Soc.Config.pub_banks in
  Bitvec.to_int (Sim.Engine.mem_value eng (Printf.sprintf "pub%d.mem" bank) index)

let qcheck_rtl_vs_iss =
  QCheck.Test.make ~count:60 ~name:"RTL core matches the ISS golden model"
    QCheck.(int_range 0 1073741823)
    (fun seed ->
      let rs = Random.State.make [| seed |] in
      let prog = gen_program rs in
      let iss, table = run_iss prog in
      let eng = run_rtl prog in
      (* architectural registers *)
      let regs_ok =
        List.for_all
          (fun r ->
            let rtl =
              if r = 0 then 0
              else Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" r)
            in
            rtl = Isa.Iss.reg iss r)
          (List.init 32 Fun.id)
      in
      (* every memory word the ISS touched *)
      let mem_ok =
        Hashtbl.fold
          (fun addr v acc ->
            acc
            && addr >= pub_base
            && addr < pub_base + pub_bytes
            && rtl_mem_word eng addr = v)
          table true
      in
      regs_ok && mem_ok)

let () =
  Alcotest.run "iss"
    [
      ( "golden model",
        [
          Alcotest.test_case "arithmetic" `Quick test_iss_arith;
          Alcotest.test_case "wrapping and shifts" `Quick test_iss_wrap;
          Alcotest.test_case "memory" `Quick test_iss_memory;
          Alcotest.test_case "loop" `Quick test_iss_loop;
          Alcotest.test_case "x0" `Quick test_iss_x0;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest qcheck_rtl_vs_iss ]);
    ]
