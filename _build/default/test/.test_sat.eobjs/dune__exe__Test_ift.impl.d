test/test_ift.ml: Alcotest Bitvec Expr Ift List Netlist QCheck QCheck_alcotest Rtl Sim Soc Upec
