test/test_ipc.ml: Aig Alcotest Array Bitblast Bitvec Expr Format Gen Ipc List Netlist QCheck QCheck_alcotest Random Rtl Sim String Structural
