test/test_replay.ml: Aig Alcotest Bitblast Bitvec Expr Format Ipc List Netlist Rtl Soc Upec
