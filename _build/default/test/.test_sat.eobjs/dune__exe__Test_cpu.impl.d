test/test_cpu.ml: Alcotest Bitvec Isa List Printf Rtl Sim Soc Testutil
