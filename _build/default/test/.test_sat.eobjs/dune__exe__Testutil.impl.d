test/testutil.ml: Bitvec Isa Printf Rtl Sim Soc
