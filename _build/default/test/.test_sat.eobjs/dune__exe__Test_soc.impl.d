test/test_soc.ml: Alcotest Bitvec List Netlist Printf Rtl Sim Soc Testutil
