test/test_bitblast.ml: Aig Alcotest Array Bitblast Bitvec Expr Hashtbl List Printf QCheck QCheck_alcotest Random Rtl Satsolver Sim
