test/test_verilog.ml: Alcotest Bitvec Expr Filename Isa List Netlist Rtl Soc String Sys Verilog
