test/test_isa.ml: Alcotest Array Bitvec Format Isa List Printf QCheck QCheck_alcotest Random Rtl String
