test/test_rtl.ml: Alcotest Bitvec Expr Format Int64 List Netlist Pp Printf QCheck QCheck_alcotest Rtl Sim String Structural
