test/test_iss.ml: Alcotest Bitvec Fun Hashtbl Isa List Printf QCheck QCheck_alcotest Random Rtl Sim Soc
