test/test_sat.ml: Alcotest Dimacs Format List Lit Printf QCheck QCheck_alcotest Random Satsolver Solver
