test/test_iss.mli:
