test/test_upec.ml: Aig Alcotest Array Bitvec Expr Format Fun Ipc List Netlist Option Rtl Soc String Structural Upec
