test/test_interconnect.ml: Alcotest Array Bitvec Expr Fun Gen List Netlist Printf QCheck QCheck_alcotest Rtl Sim Soc
