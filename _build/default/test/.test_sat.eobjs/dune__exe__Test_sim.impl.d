test/test_sim.ml: Alcotest Bitvec Expr Filename Gen List Netlist QCheck QCheck_alcotest Rtl Sim String Sys
