test/test_ift.mli:
