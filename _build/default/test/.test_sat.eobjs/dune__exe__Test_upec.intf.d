test/test_upec.mli:
