(* Firmware runner: assemble a .s file and execute it on the simulated
   SoC, with optional instruction tracing and VCD waveform output.

   Examples:
     dune exec bin/soc_run.exe -- examples/firmware/quicksort.s
     dune exec bin/soc_run.exe -- prog.s --trace --vcd waves.vcd
     dune exec bin/soc_run.exe -- prog.s --arbiter tdma --max-cycles 100000 *)

open Cmdliner

let run path trace vcd_path arbiter max_cycles dump_mem =
  let cfg =
    {
      Soc.Config.sim_default with
      Soc.Config.arbiter =
        (match arbiter with
        | "tdma" -> `Tdma
        | "fixed" -> `Fixed_priority
        | _ -> `Round_robin);
    }
  in
  let stmts = Isa.Parser.parse_file path in
  let rom = Isa.Asm.assemble stmts in
  Format.printf "assembled %d words from %s@." (Array.length rom) path;
  let soc = Soc.Builder.build cfg (Soc.Builder.Sim { rom }) in
  let nl = soc.Soc.Builder.netlist in
  let eng = Sim.Engine.create nl in
  let core = Option.get soc.Soc.Builder.cpu in
  let vcd =
    Option.map
      (fun p ->
        let oc = open_out p in
        let v =
          Sim.Vcd.attach eng oc ~module_name:"soc"
            [
              ("pc", Soc.Cpu.pc core);
              ("halted", Soc.Cpu.halted core);
              ("dma_busy", Rtl.Expr.reg (Rtl.Netlist.find_reg nl "dma.busy").Rtl.Netlist.rd_signal);
              ("hwpe_busy", Rtl.Expr.reg (Rtl.Netlist.find_reg nl "hwpe.busy").Rtl.Netlist.rd_signal);
              ("hwpe_cnt", Rtl.Expr.reg (Rtl.Netlist.find_reg nl "hwpe.cnt").Rtl.Netlist.rd_signal);
              ("timer", Rtl.Expr.reg (Rtl.Netlist.find_reg nl "timer.value").Rtl.Netlist.rd_signal);
            ]
        in
        (v, oc))
      vcd_path
  in
  let listing = Isa.Asm.disassemble rom in
  let last_pc = ref (-1) in
  let rec go cycles =
    if cycles > max_cycles then begin
      Format.printf "cycle budget exhausted at pc=0x%x@."
        (Rtl.Bitvec.to_int (Sim.Engine.peek_output eng "pc"));
      cycles
    end
    else if Rtl.Bitvec.to_int (Sim.Engine.peek_output eng "halted") = 1 then
      cycles
    else begin
      (if trace then
         let pc = Rtl.Bitvec.to_int (Sim.Engine.peek_output eng "pc") in
         if pc <> !last_pc then begin
           last_pc := pc;
           match List.nth_opt listing (pc / 4) with
           | Some line -> Format.printf "%s@." line
           | None -> ()
         end);
      Sim.Engine.step eng;
      go (cycles + 1)
    end
  in
  let cycles = go 0 in
  Option.iter
    (fun (v, oc) ->
      Sim.Vcd.close v;
      close_out oc;
      Format.printf "waveform written to %s@." (Option.get vcd_path))
    vcd;
  Format.printf "halted after %d cycles@." cycles;
  Format.printf "registers:@.";
  for i = 0 to 31 do
    let v =
      if i = 0 then 0
      else Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" i)
    in
    if v <> 0 then Format.printf "  x%-2d = 0x%08x (%d)@." i v v
  done;
  if dump_mem > 0 then begin
    Format.printf "public memory (first %d words):@." dump_mem;
    for w = 0 to dump_mem - 1 do
      let bank = w land (cfg.Soc.Config.pub_banks - 1) in
      let idx = w / cfg.Soc.Config.pub_banks in
      let v =
        Rtl.Bitvec.to_int
          (Sim.Engine.mem_value eng (Printf.sprintf "pub%d.mem" bank) idx)
      in
      if v <> 0 then Format.printf "  [0x%04x] = 0x%08x@." (w * 4) v
    done
  end

let () =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FIRMWARE.s")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print each executed instruction.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~doc:"Write a VCD waveform of key signals.")
  in
  let arbiter =
    Arg.(
      value & opt string "rr"
      & info [ "arbiter" ] ~doc:"Arbitration policy: rr, fixed or tdma.")
  in
  let max_cycles =
    Arg.(value & opt int 200000 & info [ "max-cycles" ] ~doc:"Cycle budget.")
  in
  let dump_mem =
    Arg.(
      value & opt int 0
      & info [ "dump-mem" ] ~doc:"Dump the first N words of public memory.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "soc_run" ~doc:"Run RV32 firmware on the simulated SoC")
      Term.(const run $ path $ trace $ vcd $ arbiter $ max_cycles $ dump_mem)
  in
  exit (Cmd.eval cmd)
