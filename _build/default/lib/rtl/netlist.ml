type write_port = { wp_enable : Expr.t; wp_addr : Expr.t; wp_data : Expr.t }

type reg_def = {
  rd_signal : Expr.signal;
  rd_next : Expr.t;
  rd_init : Bitvec.t option;
}

type mem_def = {
  md_mem : Expr.mem;
  md_ports : write_port list;
  md_init : Bitvec.t array option;
}

type t = {
  name : string;
  inputs : Expr.signal list;
  params : Expr.signal list;
  regs : reg_def list;
  mems : mem_def list;
  outputs : (string * Expr.t) list;
}

module Builder = struct
  type pending_reg = {
    pr_signal : Expr.signal;
    pr_init : Bitvec.t option;
    mutable pr_next : Expr.t option;
  }

  type pending_mem = {
    pm_mem : Expr.mem;
    pm_init : Bitvec.t array option;
    mutable pm_ports : write_port list;  (** reversed *)
  }

  type builder = {
    b_name : string;
    mutable b_inputs : Expr.signal list;  (** reversed *)
    mutable b_params : Expr.signal list;  (** reversed *)
    mutable b_regs : pending_reg list;  (** reversed *)
    mutable b_mems : pending_mem list;  (** reversed *)
    mutable b_outputs : (string * Expr.t) list;  (** reversed *)
    b_reg_by_id : (int, pending_reg) Hashtbl.t;
    b_names : (string, unit) Hashtbl.t;
  }

  let create name =
    {
      b_name = name;
      b_inputs = [];
      b_params = [];
      b_regs = [];
      b_mems = [];
      b_outputs = [];
      b_reg_by_id = Hashtbl.create 64;
      b_names = Hashtbl.create 64;
    }

  let claim_name b name =
    if Hashtbl.mem b.b_names name then
      invalid_arg (Printf.sprintf "Netlist.Builder: duplicate name %s" name);
    Hashtbl.add b.b_names name ()

  let input b name w =
    claim_name b name;
    let s = Expr.signal name w in
    b.b_inputs <- s :: b.b_inputs;
    Expr.input s

  let param b name w =
    claim_name b name;
    let s = Expr.signal name w in
    b.b_params <- s :: b.b_params;
    Expr.param s

  let reg b ?init name w =
    claim_name b name;
    (match init with
    | Some v when Bitvec.width v <> w ->
        invalid_arg (Printf.sprintf "Netlist.Builder.reg %s: init width" name)
    | _ -> ());
    let s = Expr.signal name w in
    let pr = { pr_signal = s; pr_init = init; pr_next = None } in
    b.b_regs <- pr :: b.b_regs;
    Hashtbl.add b.b_reg_by_id s.Expr.s_id pr;
    Expr.reg s

  let set_next b r next =
    match Expr.node r with
    | Expr.Reg s -> (
        match Hashtbl.find_opt b.b_reg_by_id s.Expr.s_id with
        | None ->
            invalid_arg "Netlist.Builder.set_next: register of another builder"
        | Some pr ->
            if pr.pr_next <> None then
              invalid_arg
                (Printf.sprintf "Netlist.Builder.set_next %s: already set"
                   s.Expr.s_name);
            if Expr.width next <> s.Expr.s_width then
              invalid_arg
                (Printf.sprintf "Netlist.Builder.set_next %s: width mismatch"
                   s.Expr.s_name);
            pr.pr_next <- Some next)
    | _ -> invalid_arg "Netlist.Builder.set_next: not a register expression"

  let mem b ?init name ~addr_width ~data_width ~depth =
    claim_name b name;
    (match init with
    | Some a when Array.length a <> depth ->
        invalid_arg (Printf.sprintf "Netlist.Builder.mem %s: init length" name)
    | _ -> ());
    let m = Expr.memory name ~addr_width ~data_width ~depth in
    b.b_mems <- { pm_mem = m; pm_init = init; pm_ports = [] } :: b.b_mems;
    m

  let write_port b m ~enable ~addr ~data =
    if Expr.width enable <> 1 then
      invalid_arg "Netlist.Builder.write_port: enable must be 1 bit";
    if Expr.width addr <> m.Expr.m_addr_width then
      invalid_arg "Netlist.Builder.write_port: address width";
    if Expr.width data <> m.Expr.m_data_width then
      invalid_arg "Netlist.Builder.write_port: data width";
    let pm =
      try List.find (fun pm -> pm.pm_mem.Expr.m_id = m.Expr.m_id) b.b_mems
      with Not_found ->
        invalid_arg "Netlist.Builder.write_port: memory of another builder"
    in
    pm.pm_ports <-
      { wp_enable = enable; wp_addr = addr; wp_data = data } :: pm.pm_ports

  let output b name e =
    claim_name b name;
    b.b_outputs <- (name, e) :: b.b_outputs

  let import b (nl : t) =
    List.iter
      (fun (s : Expr.signal) ->
        claim_name b s.Expr.s_name;
        b.b_inputs <- s :: b.b_inputs)
      nl.inputs;
    List.iter
      (fun (s : Expr.signal) ->
        claim_name b s.Expr.s_name;
        b.b_params <- s :: b.b_params)
      nl.params;
    List.iter
      (fun rd ->
        let s = rd.rd_signal in
        claim_name b s.Expr.s_name;
        let pr =
          { pr_signal = s; pr_init = rd.rd_init; pr_next = Some rd.rd_next }
        in
        b.b_regs <- pr :: b.b_regs;
        Hashtbl.add b.b_reg_by_id s.Expr.s_id pr)
      nl.regs;
    List.iter
      (fun md ->
        let m = md.md_mem in
        claim_name b m.Expr.m_name;
        b.b_mems <-
          { pm_mem = m; pm_init = md.md_init; pm_ports = List.rev md.md_ports }
          :: b.b_mems)
      nl.mems;
    List.iter
      (fun (name, e) ->
        claim_name b name;
        b.b_outputs <- (name, e) :: b.b_outputs)
      nl.outputs

  let finalize b =
    let regs =
      List.rev_map
        (fun pr ->
          let next =
            match pr.pr_next with
            | Some e -> e
            | None -> Expr.reg pr.pr_signal
          in
          { rd_signal = pr.pr_signal; rd_next = next; rd_init = pr.pr_init })
        b.b_regs
    in
    let mems =
      List.rev_map
        (fun pm ->
          {
            md_mem = pm.pm_mem;
            md_ports = List.rev pm.pm_ports;
            md_init = pm.pm_init;
          })
        b.b_mems
    in
    {
      name = b.b_name;
      inputs = List.rev b.b_inputs;
      params = List.rev b.b_params;
      regs;
      mems;
      outputs = List.rev b.b_outputs;
    }
end

let find_reg t name =
  List.find (fun rd -> rd.rd_signal.Expr.s_name = name) t.regs

let find_mem t name = List.find (fun md -> md.md_mem.Expr.m_name = name) t.mems

let find_output t name =
  match List.assoc_opt name t.outputs with
  | Some e -> e
  | None -> raise Not_found

let reg_signals t = List.map (fun rd -> rd.rd_signal) t.regs

let state_bits t =
  let reg_bits =
    List.fold_left (fun acc rd -> acc + rd.rd_signal.Expr.s_width) 0 t.regs
  in
  let mem_bits =
    List.fold_left
      (fun acc md ->
        acc + (md.md_mem.Expr.m_depth * md.md_mem.Expr.m_data_width))
      0 t.mems
  in
  reg_bits + mem_bits

let stats t =
  let nodes =
    let seen = Hashtbl.create 1024 in
    let count = ref 0 in
    let rec go e =
      if not (Hashtbl.mem seen (Expr.tag e)) then begin
        Hashtbl.add seen (Expr.tag e) ();
        incr count;
        match Expr.node e with
        | Expr.Const _ | Expr.Input _ | Expr.Param _ | Expr.Reg _ -> ()
        | Expr.Memread (_, a) | Expr.Unop (_, a) | Expr.Slice (a, _, _) -> go a
        | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
            go a;
            go b
        | Expr.Mux (s, a, b) ->
            go s;
            go a;
            go b
      end
    in
    List.iter (fun rd -> go rd.rd_next) t.regs;
    List.iter
      (fun md ->
        List.iter
          (fun wp ->
            go wp.wp_enable;
            go wp.wp_addr;
            go wp.wp_data)
          md.md_ports)
      t.mems;
    List.iter (fun (_, e) -> go e) t.outputs;
    !count
  in
  Printf.sprintf "%s: %d inputs, %d params, %d regs, %d mems, %d state bits, %d expr nodes"
    t.name (List.length t.inputs) (List.length t.params) (List.length t.regs)
    (List.length t.mems) (state_bits t) nodes
