lib/rtl/structural.ml: Expr Format Hashtbl List Netlist Printf Set Stdlib String
