lib/rtl/verilog.mli: Format Netlist
