lib/rtl/verilog.ml: Array Bitvec Buffer Expr Format Hashtbl List Netlist Option Printf String
