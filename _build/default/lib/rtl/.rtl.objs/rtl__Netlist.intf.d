lib/rtl/netlist.mli: Bitvec Expr
