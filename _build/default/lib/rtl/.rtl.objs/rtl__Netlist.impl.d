lib/rtl/netlist.ml: Array Bitvec Expr Hashtbl List Printf
