lib/rtl/pp.ml: Bitvec Expr Format List Netlist
