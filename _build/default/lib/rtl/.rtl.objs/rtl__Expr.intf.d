lib/rtl/expr.mli: Bitvec
