lib/rtl/bitvec.mli: Format
