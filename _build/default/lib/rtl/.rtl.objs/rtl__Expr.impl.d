lib/rtl/expr.ml: Bitvec Hashtbl List Printf Stdlib
