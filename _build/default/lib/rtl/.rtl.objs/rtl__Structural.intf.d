lib/rtl/structural.mli: Expr Format Netlist Set
