lib/rtl/bitvec.ml: Format Hashtbl Printf Stdlib Sys
