lib/rtl/pp.mli: Expr Format Netlist
