(** Structural analysis of netlists: state variables, per-IP grouping,
    fan-in cones.

    State variables are the unit of reasoning of UPEC-SSC: every
    register is one state variable, and every memory element (one word)
    is one state variable, as the paper treats memory arrays
    element-wise when classifying counterexamples. *)

(** A state variable: a register, or one element of a memory array. *)
type svar = Sreg of Expr.signal | Smem of Expr.mem * int

val svar_name : svar -> string
(** ["dma.count"] for registers, ["sram0.mem[3]"] for memory elements. *)

val svar_width : svar -> int
val compare_svar : svar -> svar -> int
val equal_svar : svar -> svar -> bool
val pp_svar : Format.formatter -> svar -> unit

module Svar_set : Set.S with type elt = svar

val all_svars : Netlist.t -> Svar_set.t
(** Every state variable of the netlist (S_all of the paper, minus the
    parts not modelled as state). *)

val ip_of : svar -> string
(** Owning IP by naming convention: the dotted prefix of the name, e.g.
    ["dma"] for ["dma.count"]; the whole name when there is no dot. *)

val svars_of_ip : Netlist.t -> string -> Svar_set.t
(** All state variables whose {!ip_of} equals the given prefix. *)

val svars_matching : Netlist.t -> (svar -> bool) -> Svar_set.t

val mem_elements : Expr.mem -> Svar_set.t
(** All elements of one memory as state variables. *)

val cone_of : Expr.t -> Svar_set.t
(** State variables read (directly) by an expression: registers
    occurring in it, plus, for every memory read, all elements of the
    memory read. Conservative for memories. *)

val reg_support : Netlist.t -> svar -> Svar_set.t
(** Fan-in of the next-state function of a state variable: the state
    variables whose current value can influence its value at the next
    cycle. For memory elements the write ports' cones are included. *)

val pp_svar_set : Format.formatter -> Svar_set.t -> unit
(** Comma-separated names; abbreviates runs of elements of the same
    memory as ["m[lo..hi]"]. *)
