(* The emitter works in three passes: (1) choose legal identifiers,
   (2) count node uses to decide which hash-consed sub-expressions get
   their own wire, (3) print wires in dependency order, then registers,
   memories and outputs. *)

let mangle table name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let base = Buffer.contents buf in
  let base = if base = "" || (base.[0] >= '0' && base.[0] <= '9') then "n" ^ base else base in
  let rec unique candidate i =
    if Hashtbl.mem table candidate then unique (Printf.sprintf "%s_%d" base i) (i + 1)
    else candidate
  in
  let id = unique base 0 in
  Hashtbl.replace table id ();
  id

type names = {
  used : (string, unit) Hashtbl.t;
  sig_names : (int, string) Hashtbl.t;  (* signal id -> identifier *)
  mem_names : (int, string) Hashtbl.t;
}

let signal_id names (s : Expr.signal) =
  match Hashtbl.find_opt names.sig_names s.Expr.s_id with
  | Some n -> n
  | None ->
      let n = mangle names.used s.Expr.s_name in
      Hashtbl.replace names.sig_names s.Expr.s_id n;
      n

let mem_id names (m : Expr.mem) =
  match Hashtbl.find_opt names.mem_names m.Expr.m_id with
  | Some n -> n
  | None ->
      let n = mangle names.used m.Expr.m_name in
      Hashtbl.replace names.mem_names m.Expr.m_id n;
      n

(* roots of the combinational logic *)
let roots (nl : Netlist.t) =
  List.map (fun rd -> rd.Netlist.rd_next) nl.Netlist.regs
  @ List.concat_map
      (fun md ->
        List.concat_map
          (fun wp -> [ wp.Netlist.wp_enable; wp.Netlist.wp_addr; wp.Netlist.wp_data ])
          md.Netlist.md_ports)
      nl.Netlist.mems
  @ List.map snd nl.Netlist.outputs

let count_uses rs =
  let uses = Hashtbl.create 1024 in
  let bump e =
    let t = Expr.tag e in
    Hashtbl.replace uses t (1 + Option.value ~default:0 (Hashtbl.find_opt uses t))
  in
  let seen = Hashtbl.create 1024 in
  let rec go e =
    bump e;
    if not (Hashtbl.mem seen (Expr.tag e)) then begin
      Hashtbl.add seen (Expr.tag e) ();
      match Expr.node e with
      | Expr.Const _ | Expr.Input _ | Expr.Param _ | Expr.Reg _ -> ()
      | Expr.Memread (_, a) | Expr.Unop (_, a) | Expr.Slice (a, _, _) -> go a
      | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
          go a;
          go b
      | Expr.Mux (s, a, b) ->
          go s;
          go a;
          go b
    end
  in
  List.iter go rs;
  uses

let is_leaf e =
  match Expr.node e with
  | Expr.Const _ | Expr.Input _ | Expr.Param _ | Expr.Reg _ -> true
  | Expr.Memread _ | Expr.Unop _ | Expr.Binop _ | Expr.Mux _ | Expr.Concat _
  | Expr.Slice _ ->
      false

let emit fmt (nl : Netlist.t) =
  let names =
    {
      used = Hashtbl.create 256;
      sig_names = Hashtbl.create 256;
      mem_names = Hashtbl.create 16;
    }
  in
  List.iter (fun k -> Hashtbl.replace names.used k ())
    [ "clk"; "rst"; "module"; "input"; "output"; "wire"; "reg"; "assign";
      "always"; "begin"; "end"; "if"; "else"; "posedge"; "signed" ];
  let rs = roots nl in
  let uses = count_uses rs in
  (* decide wires: shared non-leaf nodes, and slice/memread operands *)
  let wire_of : (int, string) Hashtbl.t = Hashtbl.create 256 in
  let wire_decls = Buffer.create 1024 in
  let wire_defs = Buffer.create 4096 in
  let rec atom e =
    (* a printable operand: leaf, or a named wire *)
    match Expr.node e with
    | Expr.Const b ->
        Printf.sprintf "%d'h%x" (Bitvec.width b) (Bitvec.to_int b)
    | Expr.Input s | Expr.Param s | Expr.Reg s -> signal_id names s
    | Expr.Memread _ | Expr.Unop _ | Expr.Binop _ | Expr.Mux _ | Expr.Concat _
    | Expr.Slice _ ->
        wire e
  and wire e =
    match Hashtbl.find_opt wire_of (Expr.tag e) with
    | Some w -> w
    | None ->
        let w = mangle names.used (Printf.sprintf "w%d" (Expr.tag e)) in
        Hashtbl.replace wire_of (Expr.tag e) w;
        let body = rhs e in
        Buffer.add_string wire_decls
          (Printf.sprintf "  wire [%d:0] %s;\n" (Expr.width e - 1) w);
        Buffer.add_string wire_defs
          (Printf.sprintf "  assign %s = %s;\n" w body);
        w
  and operand e =
    (* inline small single-use nodes, name the rest *)
    if is_leaf e then atom e
    else if Option.value ~default:0 (Hashtbl.find_opt uses (Expr.tag e)) > 1
    then wire e
    else Printf.sprintf "(%s)" (rhs e)
  and rhs e =
    match Expr.node e with
    | Expr.Const _ | Expr.Input _ | Expr.Param _ | Expr.Reg _ -> atom e
    | Expr.Memread (m, a) ->
        let mn = mem_id names m in
        let an = operand a in
        if m.Expr.m_depth < 1 lsl m.Expr.m_addr_width then
          (* out-of-range reads are zero, as in the simulator *)
          Printf.sprintf "(%s < %d) ? %s[%s] : %d'h0" an m.Expr.m_depth mn an
            m.Expr.m_data_width
        else Printf.sprintf "%s[%s]" mn an
    | Expr.Unop (op, a) -> (
        let an = operand a in
        match op with
        | Expr.Not -> "~" ^ an
        | Expr.Neg -> "-" ^ an
        | Expr.Redand -> "&" ^ an
        | Expr.Redor -> "|" ^ an
        | Expr.Redxor -> "^" ^ an)
    | Expr.Binop (op, a, b) -> (
        let an = operand a and bn = operand b in
        let bin s = Printf.sprintf "%s %s %s" an s bn in
        match op with
        | Expr.Add -> bin "+"
        | Expr.Sub -> bin "-"
        | Expr.Mul -> bin "*"
        | Expr.And -> bin "&"
        | Expr.Or -> bin "|"
        | Expr.Xor -> bin "^"
        | Expr.Eq -> bin "=="
        | Expr.Ne -> bin "!="
        | Expr.Ult -> bin "<"
        | Expr.Ule -> bin "<="
        | Expr.Slt -> Printf.sprintf "$signed(%s) < $signed(%s)" an bn
        | Expr.Sle -> Printf.sprintf "$signed(%s) <= $signed(%s)" an bn
        | Expr.Shl -> bin "<<"
        | Expr.Lshr -> bin ">>"
        | Expr.Ashr -> Printf.sprintf "$signed(%s) >>> %s" an bn)
    | Expr.Mux (s, a, b) ->
        Printf.sprintf "%s ? %s : %s" (operand s) (operand a) (operand b)
    | Expr.Concat (a, b) -> Printf.sprintf "{%s, %s}" (operand a) (operand b)
    | Expr.Slice (a, hi, lo) ->
        (* part-selects require a named operand *)
        let an = if is_leaf a then atom a else wire a in
        if hi = lo then Printf.sprintf "%s[%d]" an hi
        else Printf.sprintf "%s[%d:%d]" an hi lo
  in
  (* reserve port names first so internal wires cannot steal them *)
  let ports =
    List.map
      (fun (s : Expr.signal) -> (signal_id names s, s.Expr.s_width, `In))
      (nl.Netlist.inputs @ nl.Netlist.params)
    @ List.map
        (fun (name, e) -> (mangle names.used name, Expr.width e, `Out))
        nl.Netlist.outputs
  in
  let reg_ids =
    List.map (fun rd -> signal_id names rd.Netlist.rd_signal) nl.Netlist.regs
  in
  ignore reg_ids;
  (* compute all rhs strings (fills wire buffers) *)
  let reg_nexts =
    List.map
      (fun rd ->
        (rd, signal_id names rd.Netlist.rd_signal, rhs rd.Netlist.rd_next))
      nl.Netlist.regs
  in
  let mem_ports =
    List.map
      (fun md ->
        ( md,
          mem_id names md.Netlist.md_mem,
          List.map
            (fun wp ->
              ( rhs wp.Netlist.wp_enable,
                rhs wp.Netlist.wp_addr,
                rhs wp.Netlist.wp_data ))
            md.Netlist.md_ports ))
      nl.Netlist.mems
  in
  let outputs =
    List.map2
      (fun (name, e) (port_name, _, _) -> (name, port_name, rhs e))
      nl.Netlist.outputs
      (List.filter (fun (_, _, dir) -> dir = `Out) ports)
  in
  (* ---- print ---- *)
  let p f = Format.fprintf fmt f in
  p "// generated by upec-ssc from netlist '%s'@." nl.Netlist.name;
  p "// semantics notes: parameters are inputs the environment holds stable;@.";
  p "// rst loads the simulator's reset values.@.";
  p "module %s(@." (mangle names.used ("top_" ^ nl.Netlist.name));
  p "  input wire clk,@.";
  p "  input wire rst%s@."
    (if ports = [] then "" else ",");
  List.iteri
    (fun i (name, w, dir) ->
      let comma = if i = List.length ports - 1 then "" else "," in
      match dir with
      | `In -> p "  input wire [%d:0] %s%s@." (w - 1) name comma
      | `Out -> p "  output wire [%d:0] %s%s@." (w - 1) name comma)
    ports;
  p ");@.@.";
  (* registers *)
  List.iter
    (fun (rd, id, _) ->
      p "  reg [%d:0] %s;@." (rd.Netlist.rd_signal.Expr.s_width - 1) id)
    reg_nexts;
  (* memories *)
  List.iter
    (fun (md, id, _) ->
      let m = md.Netlist.md_mem in
      p "  reg [%d:0] %s [0:%d];@." (m.Expr.m_data_width - 1) id
        (m.Expr.m_depth - 1))
    mem_ports;
  p "@.%s@.%s@." (Buffer.contents wire_decls) (Buffer.contents wire_defs);
  (* clocked processes *)
  List.iter
    (fun (rd, id, next) ->
      let init =
        match rd.Netlist.rd_init with
        | Some v -> Bitvec.to_int v
        | None -> 0
      in
      p "  always @@(posedge clk)@.";
      p "    if (rst) %s <= %d'h%x;@." id rd.Netlist.rd_signal.Expr.s_width
        init;
      p "    else %s <= %s;@.@." id next)
    reg_nexts;
  List.iter
    (fun ((md : Netlist.mem_def), id, ports) ->
      (match md.Netlist.md_init with
      | Some contents when Array.exists (fun v -> not (Bitvec.is_zero v)) contents
        ->
          p "  initial begin@.";
          Array.iteri
            (fun i v ->
              if not (Bitvec.is_zero v) then
                p "    %s[%d] = %d'h%x;@." id i (Bitvec.width v)
                  (Bitvec.to_int v))
            contents;
          p "  end@."
      | Some _ | None -> ());
      if ports <> [] then begin
        p "  always @@(posedge clk) begin@.";
        (* reversed so the first port wins on an address clash *)
        List.iter
          (fun (en, addr, data) ->
            p "    if (!rst && (%s)) %s[%s] <= %s;@." en id addr data)
          (List.rev ports);
        p "  end@.@."
      end)
    mem_ports;
  (* outputs *)
  List.iter (fun (_, port, body) -> p "  assign %s = %s;@." port body) outputs;
  p "@.endmodule@."

let to_string nl = Format.asprintf "%a" emit nl

let write_file path nl =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  emit fmt nl;
  Format.pp_print_flush fmt ();
  close_out oc
