type t = { w : int; v : int }

let max_width = Sys.int_size - 1

let mask w = if w = max_width then -1 lsr 1 else (1 lsl w) - 1

let check_width w =
  if w < 1 || w > max_width then
    invalid_arg (Printf.sprintf "Bitvec: width %d out of [1, %d]" w max_width)

let of_int ~width v =
  check_width width;
  { w = width; v = v land mask width }

let width t = t.w
let to_int t = t.v

let to_signed_int t =
  if t.v land (1 lsl (t.w - 1)) <> 0 then t.v - (1 lsl t.w) else t.v

let zero w = of_int ~width:w 0
let one w = of_int ~width:w 1
let ones w = { w; v = mask w }
let equal a b = a.w = b.w && a.v = b.v
let compare a b = Stdlib.compare (a.w, a.v) (b.w, b.v)
let hash t = Hashtbl.hash (t.w, t.v)
let is_zero t = t.v = 0

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  t.v land (1 lsl i) <> 0

let same_width a b =
  assert (a.w = b.w);
  a.w

let add a b =
  let w = same_width a b in
  { w; v = (a.v + b.v) land mask w }

let sub a b =
  let w = same_width a b in
  { w; v = (a.v - b.v) land mask w }

let mul a b =
  let w = same_width a b in
  (* Split to avoid overflow for wide vectors: (ah*2^h + al)(bh*2^h + bl) *)
  if w <= 31 then { w; v = a.v * b.v land mask w }
  else begin
    let h = w / 2 in
    let mh = mask h in
    let al = a.v land mh and ah = a.v lsr h in
    let bl = b.v land mh and bh = b.v lsr h in
    let low = al * bl in
    let mid = ((al * bh) + (ah * bl)) lsl h in
    { w; v = (low + mid) land mask w }
  end

let neg a = { w = a.w; v = -a.v land mask a.w }

let logand a b =
  let w = same_width a b in
  { w; v = a.v land b.v }

let logor a b =
  let w = same_width a b in
  { w; v = a.v lor b.v }

let logxor a b =
  let w = same_width a b in
  { w; v = a.v lxor b.v }

let lognot a = { w = a.w; v = lnot a.v land mask a.w }

let shl a b =
  let n = b.v in
  if n >= a.w then zero a.w else { w = a.w; v = a.v lsl n land mask a.w }

let lshr a b =
  let n = b.v in
  if n >= a.w then zero a.w else { w = a.w; v = a.v lsr n }

let ashr a b =
  let n = if b.v >= a.w then a.w - 1 else b.v in
  let s = to_signed_int a in
  { w = a.w; v = s asr n land mask a.w }

let of_bool b = { w = 1; v = (if b then 1 else 0) }

let eq a b =
  let _ = same_width a b in
  of_bool (a.v = b.v)

let ne a b =
  let _ = same_width a b in
  of_bool (a.v <> b.v)

let ult a b =
  let _ = same_width a b in
  of_bool (a.v < b.v)

let ule a b =
  let _ = same_width a b in
  of_bool (a.v <= b.v)

let slt a b =
  let _ = same_width a b in
  of_bool (to_signed_int a < to_signed_int b)

let sle a b =
  let _ = same_width a b in
  of_bool (to_signed_int a <= to_signed_int b)

let redand a = of_bool (a.v = mask a.w)
let redor a = of_bool (a.v <> 0)

let redxor a =
  let rec popcount acc v = if v = 0 then acc else popcount (acc + (v land 1)) (v lsr 1) in
  of_bool (popcount 0 a.v land 1 = 1)

let concat hi lo =
  let w = hi.w + lo.w in
  check_width w;
  { w; v = (hi.v lsl lo.w) lor lo.v }

let slice t ~hi ~lo =
  if lo < 0 || hi >= t.w || hi < lo then
    invalid_arg
      (Printf.sprintf "Bitvec.slice: [%d:%d] out of range for width %d" hi lo t.w);
  { w = hi - lo + 1; v = (t.v lsr lo) land mask (hi - lo + 1) }

let zero_extend t w =
  if w < t.w then invalid_arg "Bitvec.zero_extend: narrower target";
  check_width w;
  { w; v = t.v }

let sign_extend t w =
  if w < t.w then invalid_arg "Bitvec.sign_extend: narrower target";
  check_width w;
  { w; v = to_signed_int t land mask w }

let pp fmt t = Format.fprintf fmt "%d'h%x" t.w t.v
let to_string t = Format.asprintf "%a" pp t
