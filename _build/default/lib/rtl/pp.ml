open Format

let unop_str = function
  | Expr.Not -> "~"
  | Expr.Neg -> "-"
  | Expr.Redand -> "&"
  | Expr.Redor -> "|"
  | Expr.Redxor -> "^"

let binop_str = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.And -> "&"
  | Expr.Or -> "|"
  | Expr.Xor -> "^"
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="
  | Expr.Ult -> "<u"
  | Expr.Ule -> "<=u"
  | Expr.Slt -> "<s"
  | Expr.Sle -> "<=s"
  | Expr.Shl -> "<<"
  | Expr.Lshr -> ">>"
  | Expr.Ashr -> ">>>"

let rec pp_expr fmt e =
  match Expr.node e with
  | Expr.Const b -> Bitvec.pp fmt b
  | Expr.Input s -> fprintf fmt "%s" s.Expr.s_name
  | Expr.Param s -> fprintf fmt "$%s" s.Expr.s_name
  | Expr.Reg s -> fprintf fmt "%s" s.Expr.s_name
  | Expr.Memread (m, a) -> fprintf fmt "%s[%a]" m.Expr.m_name pp_expr a
  | Expr.Unop (op, a) -> fprintf fmt "%s(%a)" (unop_str op) pp_expr a
  | Expr.Binop (op, a, b) ->
      fprintf fmt "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Expr.Mux (s, a, b) ->
      fprintf fmt "(%a ? %a : %a)" pp_expr s pp_expr a pp_expr b
  | Expr.Concat (a, b) -> fprintf fmt "{%a, %a}" pp_expr a pp_expr b
  | Expr.Slice (a, hi, lo) -> fprintf fmt "%a[%d:%d]" pp_expr a hi lo

let expr_to_string e = asprintf "%a" pp_expr e

let pp_netlist fmt (nl : Netlist.t) =
  fprintf fmt "@[<v>module %s@," nl.Netlist.name;
  List.iter
    (fun s -> fprintf fmt "  input  [%d] %s@," s.Expr.s_width s.Expr.s_name)
    nl.Netlist.inputs;
  List.iter
    (fun s -> fprintf fmt "  param  [%d] %s@," s.Expr.s_width s.Expr.s_name)
    nl.Netlist.params;
  List.iter
    (fun rd ->
      fprintf fmt "  reg    [%d] %s <= %a@," rd.Netlist.rd_signal.Expr.s_width
        rd.Netlist.rd_signal.Expr.s_name pp_expr rd.Netlist.rd_next)
    nl.Netlist.regs;
  List.iter
    (fun md ->
      let m = md.Netlist.md_mem in
      fprintf fmt "  mem    %s[%d] x %d bits@," m.Expr.m_name m.Expr.m_depth
        m.Expr.m_data_width;
      List.iter
        (fun wp ->
          fprintf fmt "    write when %a: [%a] <= %a@," pp_expr
            wp.Netlist.wp_enable pp_expr wp.Netlist.wp_addr pp_expr
            wp.Netlist.wp_data)
        md.Netlist.md_ports)
    nl.Netlist.mems;
  List.iter
    (fun (name, e) -> fprintf fmt "  output %s = %a@," name pp_expr e)
    nl.Netlist.outputs;
  fprintf fmt "endmodule@]"
