(** Fixed-width bit vectors.

    Values are unsigned bit patterns of a declared width between 1 and
    {!max_width} bits, stored in a native [int]. All arithmetic wraps
    modulo [2^width]; all operands of binary operations must have equal
    widths (checked by assertion). Signed interpretations are provided
    by the [s]-prefixed observers and operations. *)

type t

val max_width : int
(** Largest supported width (62 bits on 64-bit platforms). *)

val width : t -> int
(** Declared width in bits. *)

val to_int : t -> int
(** Unsigned value, in [0, 2^width). *)

val to_signed_int : t -> int
(** Two's-complement interpretation of the bit pattern. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] truncates [v] to [width] bits. Negative [v] is
    interpreted in two's complement. Raises [Invalid_argument] on
    widths outside [1, max_width]. *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val one : int -> t
(** [one w] is the vector of width [w] with value 1. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val equal : t -> t -> bool
(** Structural equality: same width and same bit pattern. *)

val compare : t -> t -> int

val hash : t -> int

val is_zero : t -> bool

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = least significant). Raises
    [Invalid_argument] if [i] is out of range. *)

(** {1 Arithmetic (wrapping)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** {1 Shifts}

    Shift amounts are taken from the full unsigned value of the second
    operand; amounts [>= width] produce zero (or all sign bits for
    [ashr]). *)

val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

(** {1 Comparisons (1-bit results)} *)

val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t

(** {1 Reductions (1-bit results)} *)

val redand : t -> t
val redor : t -> t
val redxor : t -> t

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo] forms a vector of width [width hi + width lo] with
    [hi] in the most significant bits. *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] extracts bits [hi..lo] inclusive, a vector of
    width [hi - lo + 1]. Raises [Invalid_argument] on a bad range. *)

val zero_extend : t -> int -> t
(** [zero_extend v w] widens [v] to width [w >= width v] with zeros. *)

val sign_extend : t -> int -> t
(** [sign_extend v w] widens [v] to width [w >= width v] replicating
    the sign bit. *)

val pp : Format.formatter -> t -> unit
(** Prints as [width'hHEX], e.g. [8'h3a]. *)

val to_string : t -> string
