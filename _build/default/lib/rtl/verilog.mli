(** Structural Verilog-2001 emission.

    Exports a netlist as a single synthesisable module so the designs
    built with this library (the SoC, its taint-instrumented variant)
    can be taken to standard simulators and FPGA/ASIC flows. The
    translation is direct:

    - primary inputs and parameters become module inputs (parameters are
      inputs the environment must hold stable);
    - every register becomes a [reg] with one clocked process; an
      [init] value is emitted as synchronous reset behaviour under the
      [rst] input;
    - memories become unpacked [reg] arrays with their write ports in
      one clocked process (first port wins on an address clash, matching
      the simulator);
    - shared combinational sub-expressions are factored into [wire]
      assignments (one per hash-consed node above a size threshold).

    Identifiers are mangled: dots and other non-identifier characters
    become underscores; collisions get numeric suffixes. *)

val emit : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

val write_file : string -> Netlist.t -> unit
