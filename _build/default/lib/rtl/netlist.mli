(** Flat synchronous netlists.

    A netlist is a set of primary inputs, symbolic parameters, registers
    (each with a next-state expression and an optional reset value used
    only by the simulator), memories (each with write ports) and named
    outputs. Hierarchy is expressed by dotted signal names
    (["dma.count"]); {!Structural} exploits this convention. *)

type write_port = {
  wp_enable : Expr.t;  (** 1 bit *)
  wp_addr : Expr.t;  (** [addr_width] bits *)
  wp_data : Expr.t;  (** [data_width] bits *)
}

type reg_def = {
  rd_signal : Expr.signal;
  rd_next : Expr.t;
  rd_init : Bitvec.t option;
      (** simulator reset value; ignored by the symbolic engines *)
}

type mem_def = {
  md_mem : Expr.mem;
  md_ports : write_port list;  (** earlier ports win on address clash *)
  md_init : Bitvec.t array option;  (** simulator initial contents *)
}

type t = private {
  name : string;
  inputs : Expr.signal list;
  params : Expr.signal list;
  regs : reg_def list;
  mems : mem_def list;
  outputs : (string * Expr.t) list;
}

(** Mutable builder for assembling a netlist. *)
module Builder : sig
  type builder

  val create : string -> builder

  val input : builder -> string -> int -> Expr.t
  (** Declare a primary input and return its expression. *)

  val param : builder -> string -> int -> Expr.t
  (** Declare a symbolic parameter (stable over time). *)

  val reg : builder -> ?init:Bitvec.t -> string -> int -> Expr.t
  (** Declare a register; its next-state must later be set with
      {!set_next}, otherwise the register holds its value. *)

  val set_next : builder -> Expr.t -> Expr.t -> unit
  (** [set_next b r next] sets the next-state of register expression [r]
      (which must come from {!reg}). Raises [Invalid_argument] if [r] is
      not a register of this builder, widths mismatch, or the next-state
      was already set. *)

  val mem :
    builder ->
    ?init:Bitvec.t array ->
    string ->
    addr_width:int ->
    data_width:int ->
    depth:int ->
    Expr.mem
  (** Declare a memory. *)

  val write_port : builder -> Expr.mem -> enable:Expr.t -> addr:Expr.t -> data:Expr.t -> unit

  val output : builder -> string -> Expr.t -> unit
  (** Name an expression as a netlist output (observable point). *)

  val import : builder -> t -> unit
  (** Re-register every element of an existing netlist (same signals,
      same next-state functions, same outputs) into this builder, so a
      design can be extended with new logic — e.g. taint-tracking
      shadow state. Raises [Invalid_argument] on name clashes. *)

  val finalize : builder -> t
  (** Check completeness and produce the immutable netlist. Registers
      without an explicit next-state keep their value. *)
end

val find_reg : t -> string -> reg_def
(** Find a register by full dotted name. Raises [Not_found]. *)

val find_mem : t -> string -> mem_def
val find_output : t -> string -> Expr.t
val reg_signals : t -> Expr.signal list
val stats : t -> string
(** One-line summary: #inputs, #regs, #state bits, #mems, #nodes. *)

val state_bits : t -> int
(** Total number of state bits: register widths plus [depth * data_width]
    summed over memories. *)
