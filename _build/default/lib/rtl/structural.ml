type svar = Sreg of Expr.signal | Smem of Expr.mem * int

let svar_name = function
  | Sreg s -> s.Expr.s_name
  | Smem (m, i) -> Printf.sprintf "%s[%d]" m.Expr.m_name i

let svar_width = function
  | Sreg s -> s.Expr.s_width
  | Smem (m, _) -> m.Expr.m_data_width

let compare_svar a b =
  match (a, b) with
  | Sreg x, Sreg y -> Expr.compare_signal x y
  | Smem (mx, ix), Smem (my, iy) ->
      let c = Expr.compare_mem mx my in
      if c <> 0 then c else Stdlib.compare ix iy
  | Sreg _, Smem _ -> -1
  | Smem _, Sreg _ -> 1

let equal_svar a b = compare_svar a b = 0
let pp_svar fmt v = Format.pp_print_string fmt (svar_name v)

module Svar_set = Set.Make (struct
  type t = svar

  let compare = compare_svar
end)

let mem_elements m =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (Svar_set.add (Smem (m, i)) acc)
  in
  go (m.Expr.m_depth - 1) Svar_set.empty

let all_svars (nl : Netlist.t) =
  let regs =
    List.fold_left
      (fun acc rd -> Svar_set.add (Sreg rd.Netlist.rd_signal) acc)
      Svar_set.empty nl.Netlist.regs
  in
  List.fold_left
    (fun acc md -> Svar_set.union acc (mem_elements md.Netlist.md_mem))
    regs nl.Netlist.mems

let ip_of v =
  let name =
    match v with Sreg s -> s.Expr.s_name | Smem (m, _) -> m.Expr.m_name
  in
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let svars_matching nl p = Svar_set.filter p (all_svars nl)
let svars_of_ip nl prefix = svars_matching nl (fun v -> ip_of v = prefix)

let cone_of e =
  let seen = Hashtbl.create 64 in
  let acc = ref Svar_set.empty in
  let rec go e =
    if not (Hashtbl.mem seen (Expr.tag e)) then begin
      Hashtbl.add seen (Expr.tag e) ();
      match Expr.node e with
      | Expr.Const _ | Expr.Input _ | Expr.Param _ -> ()
      | Expr.Reg s -> acc := Svar_set.add (Sreg s) !acc
      | Expr.Memread (m, a) ->
          acc := Svar_set.union (mem_elements m) !acc;
          go a
      | Expr.Unop (_, a) | Expr.Slice (a, _, _) -> go a
      | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
          go a;
          go b
      | Expr.Mux (s, a, b) ->
          go s;
          go a;
          go b
    end
  in
  go e;
  !acc

let reg_support (nl : Netlist.t) v =
  match v with
  | Sreg s ->
      let rd =
        List.find
          (fun rd -> Expr.signals_equal rd.Netlist.rd_signal s)
          nl.Netlist.regs
      in
      cone_of rd.Netlist.rd_next
  | Smem (m, i) ->
      let md =
        List.find
          (fun md -> Expr.mems_equal md.Netlist.md_mem m)
          nl.Netlist.mems
      in
      let from_ports =
        List.fold_left
          (fun acc wp ->
            Svar_set.union acc
              (Svar_set.union
                 (cone_of wp.Netlist.wp_enable)
                 (Svar_set.union
                    (cone_of wp.Netlist.wp_addr)
                    (cone_of wp.Netlist.wp_data))))
          Svar_set.empty md.Netlist.md_ports
      in
      Svar_set.add (Smem (m, i)) from_ports

let pp_svar_set fmt set =
  (* Group memory elements of the same memory into ranges for brevity. *)
  let regs, mems =
    Svar_set.fold
      (fun v (regs, mems) ->
        match v with
        | Sreg s -> (s.Expr.s_name :: regs, mems)
        | Smem (m, i) ->
            let key = m.Expr.m_name in
            let cur = try List.assoc key mems with Not_found -> [] in
            (regs, (key, i :: cur) :: List.remove_assoc key mems))
      set ([], [])
  in
  let ranges indices =
    let sorted = List.sort_uniq Stdlib.compare indices in
    let rec go acc = function
      | [] -> List.rev acc
      | x :: rest ->
          let rec extend last = function
            | y :: more when y = last + 1 -> extend y more
            | tail -> (last, tail)
          in
          let hi, tail = extend x rest in
          go ((x, hi) :: acc) tail
    in
    go [] sorted
  in
  let mem_strs =
    List.map
      (fun (name, indices) ->
        let parts =
          List.map
            (fun (lo, hi) ->
              if lo = hi then Printf.sprintf "%s[%d]" name lo
              else Printf.sprintf "%s[%d..%d]" name lo hi)
            (ranges indices)
        in
        String.concat ", " parts)
      mems
  in
  Format.pp_print_string fmt
    (String.concat ", " (List.sort Stdlib.compare regs @ List.sort Stdlib.compare mem_strs))
