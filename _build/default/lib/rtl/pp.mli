(** Pretty-printing of expressions and netlists (a Verilog-flavoured
    human-readable dump, for debugging and documentation). *)

val pp_expr : Format.formatter -> Expr.t -> unit
(** Inline rendering; shared sub-expressions are not factored. Intended
    for small expressions (assertions, counterexample explanations). *)

val expr_to_string : Expr.t -> string

val pp_netlist : Format.formatter -> Netlist.t -> unit
(** Full dump: inputs, params, registers with next-state expressions,
    memories with write ports, outputs. *)
