(** Hash-consed word-level combinational expressions.

    Every expression node carries a width and a unique tag. Construction
    goes through smart constructors that check widths, fold constants and
    structurally share identical nodes, so downstream passes (simulation,
    bit-blasting) can memoise on {!tag}. *)

(** A named signal: a primary input or the current-cycle value of a
    register. [id] is unique per process. *)
type signal = private { s_name : string; s_width : int; s_id : int }

(** A memory array identity. *)
type mem = private {
  m_name : string;
  m_addr_width : int;
  m_data_width : int;
  m_depth : int;  (** number of elements, [<= 2^m_addr_width] *)
  m_id : int;
}

type unop = Not | Neg | Redand | Redor | Redxor

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Eq
  | Ne
  | Ult
  | Ule
  | Slt
  | Sle
  | Shl
  | Lshr
  | Ashr

type t = private { tag : int; width : int; node : node }

and node =
  | Const of Bitvec.t
  | Input of signal  (** primary input, free each cycle *)
  | Param of signal  (** symbolic constant, free but stable over time *)
  | Reg of signal  (** current value of a register *)
  | Memread of mem * t  (** asynchronous read port *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (sel, then_, else_)], [sel] has width 1 *)
  | Concat of t * t  (** [Concat (hi, lo)] *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)], bits [hi..lo] *)

val tag : t -> int
val width : t -> int
val node : t -> node

(** {1 Signal and memory creation} *)

val signal : string -> int -> signal
(** Fresh signal with a fresh id. Widths checked as in {!Bitvec}. *)

val memory : string -> addr_width:int -> data_width:int -> depth:int -> mem
(** Fresh memory identity. Raises [Invalid_argument] if [depth] exceeds
    [2^addr_width] or is not positive. *)

(** {1 Smart constructors} *)

val const : Bitvec.t -> t
val of_int : width:int -> int -> t
val zero : int -> t
val one : int -> t
val ones : int -> t
val vdd : t  (** 1-bit constant 1 *)

val gnd : t  (** 1-bit constant 0 *)

val input : signal -> t
val param : signal -> t
val reg : signal -> t
val memread : mem -> t -> t
val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val mux : t -> t -> t -> t
val concat : t -> t -> t
val slice : t -> hi:int -> lo:int -> t

(** {1 Convenience} *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( &: ) : t -> t -> t
val ( |: ) : t -> t -> t
val ( ^: ) : t -> t -> t
val ( ~: ) : t -> t
val ( ==: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( <: ) : t -> t -> t  (** unsigned *)

val ( <=: ) : t -> t -> t  (** unsigned *)

val ( >: ) : t -> t -> t  (** unsigned *)

val ( >=: ) : t -> t -> t  (** unsigned *)

val slt : t -> t -> t
val sle : t -> t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val bit : t -> int -> t
(** [bit e i] is the 1-bit slice at position [i]. *)

val zero_extend : t -> int -> t
val sign_extend : t -> int -> t

val uresize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val and_list : t list -> t
(** Conjunction of 1-bit expressions; [vdd] for the empty list. *)

val or_list : t list -> t
(** Disjunction of 1-bit expressions; [gnd] for the empty list. *)

val mux_list : t -> default:t -> (int * t) list -> t
(** [mux_list sel ~default cases] selects the case whose index equals
    the unsigned value of [sel], else [default]. *)

val equal : t -> t -> bool
(** Physical (hash-consed) equality. *)

val size : t -> int
(** Number of distinct nodes reachable from the expression. *)

val signals_equal : signal -> signal -> bool
val compare_signal : signal -> signal -> int
val mems_equal : mem -> mem -> bool
val compare_mem : mem -> mem -> int
