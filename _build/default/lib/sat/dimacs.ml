let parse text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match
          List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
        with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> failwith "Dimacs.parse: malformed problem line"
      end
      else
        List.iter
          (fun tok ->
            if tok <> "" then begin
              let i =
                try int_of_string tok
                with Failure _ -> failwith ("Dimacs.parse: bad token " ^ tok)
              in
              if i = 0 then begin
                clauses := List.rev !current :: !clauses;
                current := []
              end
              else begin
                nvars := max !nvars (abs i);
                current := Lit.of_dimacs i :: !current
              end
            end)
          (String.split_on_char ' ' line))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  (!nvars, List.rev !clauses)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text

let print fmt (nvars, clauses) =
  Format.fprintf fmt "p cnf %d %d@." nvars (List.length clauses);
  List.iter
    (fun clause ->
      List.iter (fun l -> Format.fprintf fmt "%d " (Lit.to_dimacs l)) clause;
      Format.fprintf fmt "0@.")
    clauses

let load solver text =
  let nvars, clauses = parse text in
  for _ = Solver.nvars solver to nvars - 1 do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses
