type t = int

let make v sign =
  if v < 0 then invalid_arg "Lit.make: negative variable";
  (2 * v) + if sign then 0 else 1

let pos v = make v true
let neg_of_var v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_int l = l
let of_int i = i
let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs i =
  if i = 0 then invalid_arg "Lit.of_dimacs: zero";
  if i > 0 then pos (i - 1) else neg_of_var (-i - 1)

let compare = Stdlib.compare
let pp fmt l = Format.fprintf fmt "%d" (to_dimacs l)
