lib/sat/dimacs.ml: Format List Lit Solver String
