lib/sat/lit.ml: Format Stdlib
