(** Propositional literals.

    A literal packs a variable index (non-negative int) and a sign. The
    encoding is [2 * var + (if negative then 1 else 0)], compatible with
    MiniSat conventions. *)

type t = private int

val make : int -> bool -> t
(** [make v sign] is the literal over variable [v]; [sign = true] gives
    the positive literal. *)

val pos : int -> t
val neg_of_var : int -> t
val var : t -> int
val sign : t -> bool
(** [true] for positive literals. *)

val negate : t -> t
val to_int : t -> int
(** The raw encoding, usable as an array index in [0, 2*nvars). *)

val of_int : int -> t
val to_dimacs : t -> int
(** Signed DIMACS form: [var+1] or [-(var+1)]. *)

val of_dimacs : int -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
