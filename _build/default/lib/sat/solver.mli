(** CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal
    propagation, first-UIP learning with recursive clause minimisation,
    EVSIDS branching, phase saving, Luby restarts and LBD-based learnt
    clause database reduction. Supports incremental solving under
    assumptions; clauses may be added between [solve] calls.

    Feature toggles exist so benches can ablate individual heuristics. *)

type t

type options = {
  use_vsids : bool;  (** activity-ordered decisions (else lowest index) *)
  use_restarts : bool;
  use_phase_saving : bool;
  use_minimization : bool;  (** learnt clause minimisation *)
  var_decay : float;  (** EVSIDS decay, in (0, 1) *)
  clause_decay : float;
  restart_base : int;  (** conflicts per Luby unit *)
  max_learnts_factor : float;  (** learnt DB size as fraction of clauses *)
}

val default_options : options
val create : ?options:options -> unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index. *)

val nvars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause. Duplicate literals are removed; tautologies
    are dropped; an empty (or falsified-at-level-0) clause makes the
    instance trivially unsatisfiable. *)

type result = Sat | Unsat

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve the current clause set under the given assumptions. *)

val value : t -> Lit.t -> bool
(** Value of a literal in the model of the last [Sat] answer. Raises
    [Invalid_argument] if the last call did not return [Sat]. *)

val value_var : t -> int -> bool

val unsat_assumptions : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset of the
    assumptions sufficient for unsatisfiability (the final conflict
    clause restricted to assumption literals). Empty when the clause set
    itself is unsatisfiable. *)

(** {1 Statistics} *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;
  deleted_clauses : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
