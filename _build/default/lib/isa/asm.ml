open Rtl

type stmt =
  | L of string
  | I of Encoding.instr
  | Li of Encoding.reg * int
  | La of Encoding.reg * string
  | Jal_l of Encoding.reg * string
  | J of string
  | Beq_l of Encoding.reg * Encoding.reg * string
  | Bne_l of Encoding.reg * Encoding.reg * string
  | Blt_l of Encoding.reg * Encoding.reg * string
  | Bge_l of Encoding.reg * Encoding.reg * string
  | Bltu_l of Encoding.reg * Encoding.reg * string
  | Bgeu_l of Encoding.reg * Encoding.reg * string
  | Nop

let stmt_words = function
  | L _ -> 0
  | Li _ | La _ -> 2
  | I _ | Jal_l _ | J _ | Beq_l _ | Bne_l _ | Blt_l _ | Bge_l _ | Bltu_l _
  | Bgeu_l _ | Nop ->
      1

let size_in_words stmts =
  List.fold_left (fun acc s -> acc + stmt_words s) 0 stmts

(* split a 32-bit value into LUI/ADDI parts: v = (hi << 12) + sext(lo) *)
let split_imm v =
  let v = v land 0xffffffff in
  let lo = v land 0xfff in
  let lo_signed = if lo >= 0x800 then lo - 0x1000 else lo in
  let hi = ((v - lo_signed) lsr 12) land 0xfffff in
  (hi, lo_signed)

let assemble_with_symbols stmts =
  (* pass 1: label addresses *)
  let labels = Hashtbl.create 16 in
  let pos = ref 0 in
  List.iter
    (fun s ->
      (match s with
      | L name ->
          if Hashtbl.mem labels name then failwith ("duplicate label " ^ name);
          Hashtbl.replace labels name (!pos * 4)
      | _ -> ());
      pos := !pos + stmt_words s)
    stmts;
  let resolve name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> failwith ("undefined label " ^ name)
  in
  (* pass 2: emit *)
  let words = ref [] in
  let pc = ref 0 in
  let emit i =
    words := Encoding.encode i :: !words;
    pc := !pc + 4
  in
  List.iter
    (fun s ->
      match s with
      | L _ -> ()
      | I i -> emit i
      | Nop -> emit (Encoding.Addi (0, 0, 0))
      | Li (rd, v) ->
          let hi, lo = split_imm v in
          emit (Encoding.Lui (rd, hi));
          emit (Encoding.Addi (rd, rd, lo))
      | La (rd, name) ->
          let hi, lo = split_imm (resolve name) in
          emit (Encoding.Lui (rd, hi));
          emit (Encoding.Addi (rd, rd, lo))
      | Jal_l (rd, name) -> emit (Encoding.Jal (rd, resolve name - !pc))
      | J name -> emit (Encoding.Jal (0, resolve name - !pc))
      | Beq_l (a, b, name) -> emit (Encoding.Beq (a, b, resolve name - !pc))
      | Bne_l (a, b, name) -> emit (Encoding.Bne (a, b, resolve name - !pc))
      | Blt_l (a, b, name) -> emit (Encoding.Blt (a, b, resolve name - !pc))
      | Bge_l (a, b, name) -> emit (Encoding.Bge (a, b, resolve name - !pc))
      | Bltu_l (a, b, name) -> emit (Encoding.Bltu (a, b, resolve name - !pc))
      | Bgeu_l (a, b, name) -> emit (Encoding.Bgeu (a, b, resolve name - !pc)))
    stmts;
  ( Array.of_list (List.rev !words),
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels [] )

let assemble stmts = fst (assemble_with_symbols stmts)

let disassemble words =
  Array.to_list
    (Array.mapi
       (fun i w ->
         let addr = i * 4 in
         match Encoding.decode w with
         | Some instr -> Format.asprintf "%4x: %a" addr Encoding.pp instr
         | None -> Printf.sprintf "%4x: .word 0x%08x" addr (Bitvec.to_int w))
       words)
