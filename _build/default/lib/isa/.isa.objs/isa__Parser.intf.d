lib/isa/parser.mli: Asm
