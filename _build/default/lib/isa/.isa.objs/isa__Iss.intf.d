lib/isa/iss.mli: Bitvec Rtl
