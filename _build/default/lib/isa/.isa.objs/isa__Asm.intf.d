lib/isa/asm.mli: Bitvec Encoding Rtl
