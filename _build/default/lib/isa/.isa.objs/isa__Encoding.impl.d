lib/isa/encoding.ml: Bitvec Format Printf Rtl
