lib/isa/asm.ml: Array Bitvec Encoding Format Hashtbl List Printf Rtl
