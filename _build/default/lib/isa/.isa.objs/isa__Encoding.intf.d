lib/isa/encoding.mli: Bitvec Format Rtl
