lib/isa/parser.ml: Asm Encoding List Printf String
