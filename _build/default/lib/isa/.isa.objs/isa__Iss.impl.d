lib/isa/iss.ml: Array Bitvec Encoding Rtl
