open Rtl

type reg = int

type instr =
  | Lui of reg * int
  | Auipc of reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int
  | Addi of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Xori of reg * reg * int
  | Ori of reg * reg * int
  | Andi of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Ecall
  | Ebreak

let check_reg r =
  if r < 0 || r > 31 then invalid_arg (Printf.sprintf "bad register x%d" r);
  r

let check_imm ~bits ~signed v =
  let lo = if signed then -(1 lsl (bits - 1)) else 0 in
  let hi = if signed then (1 lsl (bits - 1)) - 1 else (1 lsl bits) - 1 in
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "immediate %d out of %d-bit range" v bits);
  v land ((1 lsl bits) - 1)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (check_reg rs2 lsl 20) lor (check_reg rs1 lsl 15)
  lor (funct3 lsl 12) lor (check_reg rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  let imm = check_imm ~bits:12 ~signed:true imm in
  (imm lsl 20) lor (check_reg rs1 lsl 15) lor (funct3 lsl 12)
  lor (check_reg rd lsl 7) lor opcode

let shift_type ~funct7 ~shamt ~rs1 ~funct3 ~rd =
  if shamt < 0 || shamt > 31 then invalid_arg "shift amount out of range";
  (funct7 lsl 25) lor (shamt lsl 20) lor (check_reg rs1 lsl 15)
  lor (funct3 lsl 12) lor (check_reg rd lsl 7) lor 0b0010011

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  let imm = check_imm ~bits:12 ~signed:true imm in
  ((imm lsr 5) lsl 25) lor (check_reg rs2 lsl 20) lor (check_reg rs1 lsl 15)
  lor (funct3 lsl 12) lor ((imm land 0x1f) lsl 7) lor opcode

let b_type ~imm ~rs2 ~rs1 ~funct3 =
  if imm land 1 <> 0 then invalid_arg "branch offset must be even";
  let imm = check_imm ~bits:13 ~signed:true imm in
  let b12 = (imm lsr 12) land 1 and b11 = (imm lsr 11) land 1 in
  let b10_5 = (imm lsr 5) land 0x3f and b4_1 = (imm lsr 1) land 0xf in
  (b12 lsl 31) lor (b10_5 lsl 25) lor (check_reg rs2 lsl 20)
  lor (check_reg rs1 lsl 15) lor (funct3 lsl 12) lor (b4_1 lsl 8)
  lor (b11 lsl 7) lor 0b1100011

let u_type ~imm20 ~rd ~opcode =
  let imm20 = check_imm ~bits:20 ~signed:false imm20 in
  (imm20 lsl 12) lor (check_reg rd lsl 7) lor opcode

let j_type ~imm ~rd =
  if imm land 1 <> 0 then invalid_arg "jump offset must be even";
  let imm = check_imm ~bits:21 ~signed:true imm in
  let b20 = (imm lsr 20) land 1 in
  let b10_1 = (imm lsr 1) land 0x3ff in
  let b11 = (imm lsr 11) land 1 in
  let b19_12 = (imm lsr 12) land 0xff in
  (b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12)
  lor (check_reg rd lsl 7) lor 0b1101111

let encode_int = function
  | Lui (rd, imm) -> u_type ~imm20:imm ~rd ~opcode:0b0110111
  | Auipc (rd, imm) -> u_type ~imm20:imm ~rd ~opcode:0b0010111
  | Jal (rd, off) -> j_type ~imm:off ~rd
  | Jalr (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b1100111
  | Beq (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b000
  | Bne (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b001
  | Blt (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b100
  | Bge (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b101
  | Bltu (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b110
  | Bgeu (rs1, rs2, off) -> b_type ~imm:off ~rs2 ~rs1 ~funct3:0b111
  | Lw (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b010 ~rd ~opcode:0b0000011
  | Sw (rs2, rs1, imm) -> s_type ~imm ~rs2 ~rs1 ~funct3:0b010 ~opcode:0b0100011
  | Addi (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b000 ~rd ~opcode:0b0010011
  | Slti (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b010 ~rd ~opcode:0b0010011
  | Sltiu (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b011 ~rd ~opcode:0b0010011
  | Xori (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b100 ~rd ~opcode:0b0010011
  | Ori (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b110 ~rd ~opcode:0b0010011
  | Andi (rd, rs1, imm) -> i_type ~imm ~rs1 ~funct3:0b111 ~rd ~opcode:0b0010011
  | Slli (rd, rs1, sh) -> shift_type ~funct7:0 ~shamt:sh ~rs1 ~funct3:0b001 ~rd
  | Srli (rd, rs1, sh) -> shift_type ~funct7:0 ~shamt:sh ~rs1 ~funct3:0b101 ~rd
  | Srai (rd, rs1, sh) ->
      shift_type ~funct7:0b0100000 ~shamt:sh ~rs1 ~funct3:0b101 ~rd
  | Add (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b000 ~rd ~opcode:0b0110011
  | Sub (rd, rs1, rs2) ->
      r_type ~funct7:0b0100000 ~rs2 ~rs1 ~funct3:0b000 ~rd ~opcode:0b0110011
  | Sll (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b001 ~rd ~opcode:0b0110011
  | Slt (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b010 ~rd ~opcode:0b0110011
  | Sltu (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b011 ~rd ~opcode:0b0110011
  | Xor (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b100 ~rd ~opcode:0b0110011
  | Srl (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b101 ~rd ~opcode:0b0110011
  | Sra (rd, rs1, rs2) ->
      r_type ~funct7:0b0100000 ~rs2 ~rs1 ~funct3:0b101 ~rd ~opcode:0b0110011
  | Or (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b110 ~rd ~opcode:0b0110011
  | And (rd, rs1, rs2) ->
      r_type ~funct7:0 ~rs2 ~rs1 ~funct3:0b111 ~rd ~opcode:0b0110011
  | Ecall -> 0b1110011
  | Ebreak -> (1 lsl 20) lor 0b1110011

let encode i = Bitvec.of_int ~width:32 (encode_int i)

let sext v bits = if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let decode w =
  let w = Bitvec.to_int w in
  let opcode = w land 0x7f in
  let rd = (w lsr 7) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let funct7 = w lsr 25 in
  let imm_i = sext (w lsr 20) 12 in
  let imm_s = sext (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1f)) 12 in
  let imm_b =
    sext
      ((((w lsr 31) land 1) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3f) lsl 5)
      lor (((w lsr 8) land 0xf) lsl 1))
      13
  in
  let imm_u = (w lsr 12) land 0xfffff in
  let imm_j =
    sext
      ((((w lsr 31) land 1) lsl 20)
      lor (((w lsr 12) land 0xff) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3ff) lsl 1))
      21
  in
  match opcode with
  | 0b0110111 -> Some (Lui (rd, imm_u))
  | 0b0010111 -> Some (Auipc (rd, imm_u))
  | 0b1101111 -> Some (Jal (rd, imm_j))
  | 0b1100111 when funct3 = 0 -> Some (Jalr (rd, rs1, imm_i))
  | 0b1100011 -> (
      match funct3 with
      | 0b000 -> Some (Beq (rs1, rs2, imm_b))
      | 0b001 -> Some (Bne (rs1, rs2, imm_b))
      | 0b100 -> Some (Blt (rs1, rs2, imm_b))
      | 0b101 -> Some (Bge (rs1, rs2, imm_b))
      | 0b110 -> Some (Bltu (rs1, rs2, imm_b))
      | 0b111 -> Some (Bgeu (rs1, rs2, imm_b))
      | _ -> None)
  | 0b0000011 when funct3 = 0b010 -> Some (Lw (rd, rs1, imm_i))
  | 0b0100011 when funct3 = 0b010 -> Some (Sw (rs2, rs1, imm_s))
  | 0b0010011 -> (
      match funct3 with
      | 0b000 -> Some (Addi (rd, rs1, imm_i))
      | 0b010 -> Some (Slti (rd, rs1, imm_i))
      | 0b011 -> Some (Sltiu (rd, rs1, imm_i))
      | 0b100 -> Some (Xori (rd, rs1, imm_i))
      | 0b110 -> Some (Ori (rd, rs1, imm_i))
      | 0b111 -> Some (Andi (rd, rs1, imm_i))
      | 0b001 when funct7 = 0 -> Some (Slli (rd, rs1, rs2))
      | 0b101 when funct7 = 0 -> Some (Srli (rd, rs1, rs2))
      | 0b101 when funct7 = 0b0100000 -> Some (Srai (rd, rs1, rs2))
      | _ -> None)
  | 0b0110011 -> (
      match (funct3, funct7) with
      | 0b000, 0 -> Some (Add (rd, rs1, rs2))
      | 0b000, 0b0100000 -> Some (Sub (rd, rs1, rs2))
      | 0b001, 0 -> Some (Sll (rd, rs1, rs2))
      | 0b010, 0 -> Some (Slt (rd, rs1, rs2))
      | 0b011, 0 -> Some (Sltu (rd, rs1, rs2))
      | 0b100, 0 -> Some (Xor (rd, rs1, rs2))
      | 0b101, 0 -> Some (Srl (rd, rs1, rs2))
      | 0b101, 0b0100000 -> Some (Sra (rd, rs1, rs2))
      | 0b110, 0 -> Some (Or (rd, rs1, rs2))
      | 0b111, 0 -> Some (And (rd, rs1, rs2))
      | _ -> None)
  | 0b1110011 when w = 0b1110011 -> Some Ecall
  | 0b1110011 when w = (1 lsl 20) lor 0b1110011 -> Some Ebreak
  | _ -> None

let pp fmt i =
  let x n = Printf.sprintf "x%d" n in
  let s =
    match i with
    | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%x" (x rd) imm
    | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%x" (x rd) imm
    | Jal (rd, off) -> Printf.sprintf "jal %s, %d" (x rd) off
    | Jalr (rd, rs1, imm) -> Printf.sprintf "jalr %s, %s, %d" (x rd) (x rs1) imm
    | Beq (a, b, o) -> Printf.sprintf "beq %s, %s, %d" (x a) (x b) o
    | Bne (a, b, o) -> Printf.sprintf "bne %s, %s, %d" (x a) (x b) o
    | Blt (a, b, o) -> Printf.sprintf "blt %s, %s, %d" (x a) (x b) o
    | Bge (a, b, o) -> Printf.sprintf "bge %s, %s, %d" (x a) (x b) o
    | Bltu (a, b, o) -> Printf.sprintf "bltu %s, %s, %d" (x a) (x b) o
    | Bgeu (a, b, o) -> Printf.sprintf "bgeu %s, %s, %d" (x a) (x b) o
    | Lw (rd, rs1, imm) -> Printf.sprintf "lw %s, %d(%s)" (x rd) imm (x rs1)
    | Sw (rs2, rs1, imm) -> Printf.sprintf "sw %s, %d(%s)" (x rs2) imm (x rs1)
    | Addi (rd, rs1, imm) -> Printf.sprintf "addi %s, %s, %d" (x rd) (x rs1) imm
    | Slti (rd, rs1, imm) -> Printf.sprintf "slti %s, %s, %d" (x rd) (x rs1) imm
    | Sltiu (rd, rs1, imm) ->
        Printf.sprintf "sltiu %s, %s, %d" (x rd) (x rs1) imm
    | Xori (rd, rs1, imm) -> Printf.sprintf "xori %s, %s, %d" (x rd) (x rs1) imm
    | Ori (rd, rs1, imm) -> Printf.sprintf "ori %s, %s, %d" (x rd) (x rs1) imm
    | Andi (rd, rs1, imm) -> Printf.sprintf "andi %s, %s, %d" (x rd) (x rs1) imm
    | Slli (rd, rs1, sh) -> Printf.sprintf "slli %s, %s, %d" (x rd) (x rs1) sh
    | Srli (rd, rs1, sh) -> Printf.sprintf "srli %s, %s, %d" (x rd) (x rs1) sh
    | Srai (rd, rs1, sh) -> Printf.sprintf "srai %s, %s, %d" (x rd) (x rs1) sh
    | Add (rd, a, b) -> Printf.sprintf "add %s, %s, %s" (x rd) (x a) (x b)
    | Sub (rd, a, b) -> Printf.sprintf "sub %s, %s, %s" (x rd) (x a) (x b)
    | Sll (rd, a, b) -> Printf.sprintf "sll %s, %s, %s" (x rd) (x a) (x b)
    | Slt (rd, a, b) -> Printf.sprintf "slt %s, %s, %s" (x rd) (x a) (x b)
    | Sltu (rd, a, b) -> Printf.sprintf "sltu %s, %s, %s" (x rd) (x a) (x b)
    | Xor (rd, a, b) -> Printf.sprintf "xor %s, %s, %s" (x rd) (x a) (x b)
    | Srl (rd, a, b) -> Printf.sprintf "srl %s, %s, %s" (x rd) (x a) (x b)
    | Sra (rd, a, b) -> Printf.sprintf "sra %s, %s, %s" (x rd) (x a) (x b)
    | Or (rd, a, b) -> Printf.sprintf "or %s, %s, %s" (x rd) (x a) (x b)
    | And (rd, a, b) -> Printf.sprintf "and %s, %s, %s" (x rd) (x a) (x b)
    | Ecall -> "ecall"
    | Ebreak -> "ebreak"
  in
  Format.pp_print_string fmt s
