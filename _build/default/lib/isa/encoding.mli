open Rtl

(** RV32I-subset instruction encoding (the subset implemented by
    {!Soc.Cpu}). *)

type reg = int
(** Register index 0..31. *)

type instr =
  | Lui of reg * int  (** [Lui (rd, imm20)]: upper 20 bits *)
  | Auipc of reg * int
  | Jal of reg * int  (** byte offset, even, ±1 MiB *)
  | Jalr of reg * reg * int  (** [Jalr (rd, rs1, imm12)] *)
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Bltu of reg * reg * int
  | Bgeu of reg * reg * int
  | Lw of reg * reg * int  (** [Lw (rd, rs1, imm12)] *)
  | Sw of reg * reg * int  (** [Sw (rs2, rs1, imm12)]: stores rs2 *)
  | Addi of reg * reg * int
  | Slti of reg * reg * int
  | Sltiu of reg * reg * int
  | Xori of reg * reg * int
  | Ori of reg * reg * int
  | Andi of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Add of reg * reg * reg  (** [Add (rd, rs1, rs2)] *)
  | Sub of reg * reg * reg
  | Sll of reg * reg * reg
  | Slt of reg * reg * reg
  | Sltu of reg * reg * reg
  | Xor of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Or of reg * reg * reg
  | And of reg * reg * reg
  | Ecall
  | Ebreak

val encode : instr -> Bitvec.t
(** 32-bit instruction word. Raises [Invalid_argument] when an
    immediate or register is out of range. *)

val decode : Bitvec.t -> instr option
(** Inverse of {!encode}; [None] for words outside the subset. *)

val pp : Format.formatter -> instr -> unit
