(** Text assembler front-end.

    Parses a small, standard-looking RISC-V assembly dialect into
    {!Asm.stmt} lists:

    {v
    # comments run to end of line
    start:
        li   t0, 0x20000        ; li/la expand to lui+addi
        addi t1, zero, 42
        sw   t1, 0(t0)
        lw   t2, 0(t0)
        beq  t1, t2, done
        j    start
    done:
        ebreak
    v}

    Registers may be named [x0..x31] or by ABI name ([zero], [ra], [sp],
    [gp], [tp], [t0..t6], [s0..s11], [a0..a7], [fp]). Immediates are
    decimal or [0x] hexadecimal, optionally negative. Branch and jump
    targets are labels. *)

val parse : string -> Asm.stmt list
(** Raises [Failure "line N: ..."] on syntax errors. *)

val parse_file : string -> Asm.stmt list
