let abi_names =
  [
    ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4);
    ("t0", 5); ("t1", 6); ("t2", 7);
    ("s0", 8); ("fp", 8); ("s1", 9);
    ("a0", 10); ("a1", 11); ("a2", 12); ("a3", 13);
    ("a4", 14); ("a5", 15); ("a6", 16); ("a7", 17);
    ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21); ("s6", 22);
    ("s7", 23); ("s8", 24); ("s9", 25); ("s10", 26); ("s11", 27);
    ("t3", 28); ("t4", 29); ("t5", 30); ("t6", 31);
  ]

exception Syntax of string

let parse_reg tok =
  let tok = String.lowercase_ascii tok in
  match List.assoc_opt tok abi_names with
  | Some r -> r
  | None ->
      if String.length tok >= 2 && tok.[0] = 'x' then
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some r when r >= 0 && r <= 31 -> r
        | Some _ | None -> raise (Syntax ("bad register " ^ tok))
      else raise (Syntax ("bad register " ^ tok))

let parse_imm tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> raise (Syntax ("bad immediate " ^ tok))

(* "8(x1)" -> (8, reg 1) *)
let parse_mem_operand tok =
  match String.index_opt tok '(' with
  | Some i when String.length tok > 0 && tok.[String.length tok - 1] = ')' ->
      let off = if i = 0 then 0 else parse_imm (String.sub tok 0 i) in
      let reg = String.sub tok (i + 1) (String.length tok - i - 2) in
      (off, parse_reg reg)
  | Some _ | None -> raise (Syntax ("bad memory operand " ^ tok))

let strip_comment line =
  let cut c s =
    match String.index_opt s c with Some i -> String.sub s 0 i | None -> s
  in
  cut '#' (cut ';' line)

let tokenize line =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) line)
  |> List.filter (fun s -> s <> "")

let rec parse_line line =
  let open Asm in
  match tokenize line with
  | [] -> []
  | label :: rest when String.length label > 1 && label.[String.length label - 1] = ':' ->
      L (String.sub label 0 (String.length label - 1))
      :: (match rest with [] -> [] | _ -> parse_tokens rest)
  | toks -> parse_tokens toks

and parse_tokens toks =
  let open Encoding in
  let open Asm in
  let r = parse_reg and imm = parse_imm in
  let rrr f = function
    | [ a; b; c ] -> [ I (f (r a) (r b) (r c)) ]
    | _ -> raise (Syntax "expected rd, rs1, rs2")
  in
  let rri f = function
    | [ a; b; c ] -> [ I (f (r a) (r b) (imm c)) ]
    | _ -> raise (Syntax "expected rd, rs1, imm")
  in
  let branch f = function
    | [ a; b; target ] -> [ f (r a) (r b) target ]
    | _ -> raise (Syntax "expected rs1, rs2, label")
  in
  match toks with
  | [] -> []
  | op :: args -> (
      match (String.lowercase_ascii op, args) with
      | "nop", [] -> [ Nop ]
      | "ebreak", [] -> [ I Ebreak ]
      | "ecall", [] -> [ I Ecall ]
      | "li", [ a; v ] -> [ Li (r a, imm v) ]
      | "la", [ a; l ] -> [ La (r a, l) ]
      | "lui", [ a; v ] -> [ I (Lui (r a, imm v)) ]
      | "auipc", [ a; v ] -> [ I (Auipc (r a, imm v)) ]
      | "mv", [ a; b ] -> [ I (Addi (r a, r b, 0)) ]
      | "not", [ a; b ] -> [ I (Xori (r a, r b, -1)) ]
      | "j", [ l ] -> [ J l ]
      | "jal", [ a; l ] -> [ Jal_l (r a, l) ]
      | "jalr", [ a; b; v ] -> [ I (Jalr (r a, r b, imm v)) ]
      | "ret", [] -> [ I (Jalr (0, 1, 0)) ]
      | "lw", [ a; m ] ->
          let off, base = parse_mem_operand m in
          [ I (Lw (r a, base, off)) ]
      | "sw", [ a; m ] ->
          let off, base = parse_mem_operand m in
          [ I (Sw (r a, base, off)) ]
      | "addi", _ -> rri (fun a b c -> Addi (a, b, c)) args
      | "slti", _ -> rri (fun a b c -> Slti (a, b, c)) args
      | "sltiu", _ -> rri (fun a b c -> Sltiu (a, b, c)) args
      | "xori", _ -> rri (fun a b c -> Xori (a, b, c)) args
      | "ori", _ -> rri (fun a b c -> Ori (a, b, c)) args
      | "andi", _ -> rri (fun a b c -> Andi (a, b, c)) args
      | "slli", _ -> rri (fun a b c -> Slli (a, b, c)) args
      | "srli", _ -> rri (fun a b c -> Srli (a, b, c)) args
      | "srai", _ -> rri (fun a b c -> Srai (a, b, c)) args
      | "add", _ -> rrr (fun a b c -> Add (a, b, c)) args
      | "sub", _ -> rrr (fun a b c -> Sub (a, b, c)) args
      | "sll", _ -> rrr (fun a b c -> Sll (a, b, c)) args
      | "slt", _ -> rrr (fun a b c -> Slt (a, b, c)) args
      | "sltu", _ -> rrr (fun a b c -> Sltu (a, b, c)) args
      | "xor", _ -> rrr (fun a b c -> Xor (a, b, c)) args
      | "srl", _ -> rrr (fun a b c -> Srl (a, b, c)) args
      | "sra", _ -> rrr (fun a b c -> Sra (a, b, c)) args
      | "or", _ -> rrr (fun a b c -> Or (a, b, c)) args
      | "and", _ -> rrr (fun a b c -> And (a, b, c)) args
      | "beq", _ -> branch (fun a b l -> Beq_l (a, b, l)) args
      | "bne", _ -> branch (fun a b l -> Bne_l (a, b, l)) args
      | "blt", _ -> branch (fun a b l -> Blt_l (a, b, l)) args
      | "bge", _ -> branch (fun a b l -> Bge_l (a, b, l)) args
      | "bltu", _ -> branch (fun a b l -> Bltu_l (a, b, l)) args
      | "bgeu", _ -> branch (fun a b l -> Bgeu_l (a, b, l)) args
      | op, _ -> raise (Syntax ("unknown instruction " ^ op)))

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun lineno line ->
         try parse_line (String.trim (strip_comment line))
         with Syntax msg -> failwith (Printf.sprintf "line %d: %s" (lineno + 1) msg))
       lines)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse text
