open Rtl

type memory = { load_word : int -> int; store_word : int -> int -> unit }

type t = {
  rom : Bitvec.t array;
  mem : memory;
  regs : int array;  (* 32 entries, values in [0, 2^32) *)
  mutable pc : int;
  mutable is_halted : bool;
}

let mask32 = 0xffffffff

let create ~rom mem =
  { rom; mem; regs = Array.make 32 0; pc = 0; is_halted = false }

let halted t = t.is_halted
let pc t = t.pc
let reg t i = if i = 0 then 0 else t.regs.(i)

let set_reg t i v = if i <> 0 then t.regs.(i) <- v land mask32

let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let fetch t =
  let idx = t.pc lsr 2 in
  if idx < Array.length t.rom then Encoding.decode t.rom.(idx) else None

let step t =
  if not t.is_halted then begin
    let instr = fetch t in
    let next_pc = ref ((t.pc + 4) land mask32) in
    (match instr with
    | None -> () (* unknown encodings execute as NOPs, like the core *)
    | Some i -> (
        let r = reg t in
        let open Encoding in
        match i with
        | Lui (rd, imm) -> set_reg t rd (imm lsl 12)
        | Auipc (rd, imm) -> set_reg t rd (t.pc + (imm lsl 12))
        | Jal (rd, off) ->
            set_reg t rd (t.pc + 4);
            next_pc := (t.pc + off) land mask32
        | Jalr (rd, rs1, imm) ->
            let target = (r rs1 + imm) land mask32 land lnot 1 in
            set_reg t rd (t.pc + 4);
            next_pc := target
        | Beq (a, b, off) -> if r a = r b then next_pc := (t.pc + off) land mask32
        | Bne (a, b, off) -> if r a <> r b then next_pc := (t.pc + off) land mask32
        | Blt (a, b, off) ->
            if signed (r a) < signed (r b) then next_pc := (t.pc + off) land mask32
        | Bge (a, b, off) ->
            if signed (r a) >= signed (r b) then
              next_pc := (t.pc + off) land mask32
        | Bltu (a, b, off) -> if r a < r b then next_pc := (t.pc + off) land mask32
        | Bgeu (a, b, off) ->
            if r a >= r b then next_pc := (t.pc + off) land mask32
        | Lw (rd, rs1, imm) ->
            set_reg t rd (t.mem.load_word ((r rs1 + imm) land mask32))
        | Sw (rs2, rs1, imm) ->
            t.mem.store_word ((r rs1 + imm) land mask32) (r rs2)
        | Addi (rd, rs1, imm) -> set_reg t rd (r rs1 + imm)
        | Slti (rd, rs1, imm) ->
            set_reg t rd (if signed (r rs1) < imm then 1 else 0)
        | Sltiu (rd, rs1, imm) ->
            set_reg t rd (if r rs1 < imm land mask32 then 1 else 0)
        | Xori (rd, rs1, imm) -> set_reg t rd (r rs1 lxor (imm land mask32))
        | Ori (rd, rs1, imm) -> set_reg t rd (r rs1 lor (imm land mask32))
        | Andi (rd, rs1, imm) -> set_reg t rd (r rs1 land imm land mask32)
        | Slli (rd, rs1, sh) -> set_reg t rd (r rs1 lsl sh)
        | Srli (rd, rs1, sh) -> set_reg t rd (r rs1 lsr sh)
        | Srai (rd, rs1, sh) -> set_reg t rd (signed (r rs1) asr sh)
        | Add (rd, a, b) -> set_reg t rd (r a + r b)
        | Sub (rd, a, b) -> set_reg t rd (r a - r b)
        | Sll (rd, a, b) -> set_reg t rd (r a lsl (r b land 31))
        | Slt (rd, a, b) ->
            set_reg t rd (if signed (r a) < signed (r b) then 1 else 0)
        | Sltu (rd, a, b) -> set_reg t rd (if r a < r b then 1 else 0)
        | Xor (rd, a, b) -> set_reg t rd (r a lxor r b)
        | Srl (rd, a, b) -> set_reg t rd (r a lsr (r b land 31))
        | Sra (rd, a, b) -> set_reg t rd (signed (r a) asr (r b land 31))
        | Or (rd, a, b) -> set_reg t rd (r a lor r b)
        | And (rd, a, b) -> set_reg t rd (r a land r b)
        | Ecall -> ()
        | Ebreak -> t.is_halted <- true));
    if not t.is_halted then t.pc <- !next_pc
  end

let run ?(max_steps = 100000) t =
  let rec go n =
    if t.is_halted then n
    else if n >= max_steps then failwith "Iss.run: step budget exhausted"
    else begin
      step t;
      go (n + 1)
    end
  in
  go 0
