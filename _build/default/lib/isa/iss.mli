open Rtl

(** Instruction-set simulator: an architectural golden model for the
    {!Soc.Cpu} RTL core, used for differential testing.

    Semantics follow the RTL core's conventions: the implemented RV32I
    subset; unknown opcodes and ECALL execute as NOPs; EBREAK halts.
    Memory is abstract — the harness supplies word-granular load/store
    callbacks, so it can model a flat RAM, the SoC memory map, or traps
    on stray accesses. *)

type memory = {
  load_word : int -> int;  (** byte address (word aligned) -> value *)
  store_word : int -> int -> unit;
}

type t

val create : rom:Bitvec.t array -> memory -> t
(** Execution starts at byte address 0 of [rom]. *)

val step : t -> unit
(** Execute one instruction (no-op once halted). *)

val run : ?max_steps:int -> t -> int
(** Run until EBREAK; returns the number of instructions retired.
    Raises [Failure] if the budget is exhausted. *)

val halted : t -> bool
val pc : t -> int
val reg : t -> int -> int
(** Architectural register value (32-bit, [reg t 0 = 0]). *)

val set_reg : t -> int -> int -> unit
