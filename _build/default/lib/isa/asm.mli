open Rtl

(** Two-pass assembler with labels and a few pseudo-instructions.

    Programs are lists of statements; the assembler resolves label
    references to pc-relative offsets and expands pseudo-instructions.
    [Li] always expands to two instructions (LUI + ADDI) so statement
    sizes are fixed before label resolution. *)

type stmt =
  | L of string  (** define a label at the current position *)
  | I of Encoding.instr  (** a concrete instruction *)
  | Li of Encoding.reg * int  (** load a 32-bit immediate (2 insns) *)
  | La of Encoding.reg * string  (** load a label's byte address (2 insns) *)
  | Jal_l of Encoding.reg * string
  | J of string  (** jal x0, label *)
  | Beq_l of Encoding.reg * Encoding.reg * string
  | Bne_l of Encoding.reg * Encoding.reg * string
  | Blt_l of Encoding.reg * Encoding.reg * string
  | Bge_l of Encoding.reg * Encoding.reg * string
  | Bltu_l of Encoding.reg * Encoding.reg * string
  | Bgeu_l of Encoding.reg * Encoding.reg * string
  | Nop

val assemble : stmt list -> Bitvec.t array
(** Raises [Failure] on undefined or duplicate labels, and
    [Invalid_argument] on out-of-range operands. The program is placed
    at byte address 0. *)

val assemble_with_symbols : stmt list -> Bitvec.t array * (string * int) list
(** Like {!assemble}, also returning every label's byte address (the
    symbol table) — used by harnesses that emulate preemptive task
    switches by redirecting the core to a label. *)

val size_in_words : stmt list -> int

val disassemble : Bitvec.t array -> string list
(** Best-effort listing, one line per word. *)
