open Rtl

type t = {
  b : Netlist.Builder.builder;
  cfg : Config.t;
  src : Expr.t;
  dst : Expr.t;
  len : Expr.t;
  cnt : Expr.t;
  busy : Expr.t;
  done_ : Expr.t;
  state : Expr.t;  (* 0 rd_req, 1 rd_wait, 2 wr_req *)
  data_q : Expr.t;
  slave : Bus.slave;
  get_wb : unit -> Apb.write_bus;
  mutable done_pulse : Expr.t;
  mutable connected : bool;
}

let create b ~(cfg : Config.t) =
  let aw = cfg.Config.addr_width and dw = cfg.Config.data_width in
  let src = Netlist.Builder.reg b "dma.src" aw in
  let dst = Netlist.Builder.reg b "dma.dst" aw in
  let len = Netlist.Builder.reg b "dma.len" aw in
  let cnt = Netlist.Builder.reg b "dma.cnt" aw in
  let busy = Netlist.Builder.reg b "dma.busy" 1 in
  let done_ = Netlist.Builder.reg b "dma.done" 1 in
  let state = Netlist.Builder.reg b "dma.state" 2 in
  let data_q = Netlist.Builder.reg b "dma.data_q" dw in
  let read idx =
    let status =
      Expr.uresize (Expr.concat done_ busy) dw
    in
    Expr.mux_list idx ~default:(Expr.zero dw)
      [
        (0, status);
        (1, Expr.uresize src dw);
        (2, Expr.uresize dst dw);
        (3, Expr.uresize len dw);
      ]
  in
  let slave, get_wb = Apb.reg_slave b ~name:"dma.cfg" ~cfg ~periph:Memmap.Dma ~read in
  {
    b;
    cfg;
    src;
    dst;
    len;
    cnt;
    busy;
    done_;
    state;
    data_q;
    slave;
    get_wb;
    done_pulse = Expr.gnd;
    connected = false;
  }

let st_rd_req = 0
let st_rd_wait = 1
let st_wr_req = 2

let active t =
  (* issue requests only while there is work left; a (normally
     unreachable) state with cnt >= len self-heals in [connect] *)
  Expr.(t.busy &: (t.cnt <: t.len))

let master_out t =
  let open Expr in
  let reading = t.state ==: of_int ~width:2 st_rd_req in
  let writing = t.state ==: of_int ~width:2 st_wr_req in
  {
    Bus.req = and_list [ active t; reading |: writing ];
    Bus.addr = mux reading (t.src +: t.cnt) (t.dst +: t.cnt);
    Bus.we = writing;
    Bus.wdata = t.data_q;
  }

let config_slave t = t.slave
let done_wire t = t.done_pulse

let src_reg t = t.src
let dst_reg t = t.dst
let len_reg t = t.len
let cnt_reg t = t.cnt
let busy_reg t = t.busy
let state_reg t = t.state

let connect t (mi : Bus.master_in) =
  if t.connected then invalid_arg "Dma.connect: already connected";
  t.connected <- true;
  let open Expr in
  let b = t.b in
  let wb = t.get_wb () in
  let aw = t.cfg.Config.addr_width in
  let wr idx = wb.Apb.w_en &: (wb.Apb.w_idx ==: of_int ~width:4 idx) in
  let start = wr 0 &: bit wb.Apb.w_data 0 in
  let reading = t.state ==: of_int ~width:2 st_rd_req in
  let waiting = t.state ==: of_int ~width:2 st_rd_wait in
  let writing = t.state ==: of_int ~width:2 st_wr_req in
  let act = active t in
  let last_write = and_list [ act; writing; mi.Bus.gnt ] in
  let finishing = last_write &: (t.cnt +: one aw ==: t.len) in
  t.done_pulse <- finishing;
  (* configuration registers: writable only while idle *)
  let cfg_write idx reg =
    mux (wr idx &: ~:(t.busy)) (uresize wb.Apb.w_data aw) reg
  in
  Netlist.Builder.set_next b t.src (cfg_write 1 t.src);
  Netlist.Builder.set_next b t.dst (cfg_write 2 t.dst);
  Netlist.Builder.set_next b t.len (cfg_write 3 t.len);
  (* counter and handshake FSM *)
  Netlist.Builder.set_next b t.cnt
    (mux start (zero aw) (mux last_write (t.cnt +: one aw) t.cnt));
  let stuck = t.busy &: ~:(t.cnt <: t.len) in
  Netlist.Builder.set_next b t.busy
    (mux start (t.len >: zero aw) (mux (finishing |: stuck) gnd t.busy));
  Netlist.Builder.set_next b t.done_
    (mux start gnd (mux (finishing |: stuck) vdd t.done_));
  let next_state =
    mux start (of_int ~width:2 st_rd_req)
      (mux
         (and_list [ act; reading; mi.Bus.gnt ])
         (of_int ~width:2 st_rd_wait)
         (mux
            (and_list [ t.busy; waiting; mi.Bus.rvalid ])
            (of_int ~width:2 st_wr_req)
            (mux last_write (of_int ~width:2 st_rd_req) t.state)))
  in
  Netlist.Builder.set_next b t.state next_state;
  Netlist.Builder.set_next b t.data_q
    (mux
       (and_list [ t.busy; waiting; mi.Bus.rvalid ])
       (uresize mi.Bus.rdata t.cfg.Config.data_width)
       t.data_q)
