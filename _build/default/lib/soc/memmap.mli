open Rtl

(** Address map of the SoC.

    Bus addresses are word addresses of [Config.addr_width] bits. The
    top two bits select the region:

    {v
    00  public SRAM   (banked, interleaved on the low address bits)
    01  private SRAM  (banked, interleaved)
    10  APB peripherals
    11  unmapped
    v}

    Within an SRAM region, [bank = addr mod banks] and
    [index = (addr / banks)]; addresses whose index exceeds the bank
    depth are unmapped. Within the APB region, bits [5:4] select the
    peripheral and bits [3:0] the register. *)

type region = Pub | Priv | Apb

type periph = Timer | Dma | Hwpe | Uart

val periph_id : periph -> int
val region_base : Config.t -> region -> int
(** First word address of a region. *)

val pub_words : Config.t -> int
(** Mapped words in the public region ([banks * depth]). *)

val priv_words : Config.t -> int

val cell_addr : Config.t -> region -> bank:int -> index:int -> int
(** Bus word address of one SRAM cell. *)

val periph_reg_addr : Config.t -> periph -> int -> int
(** Bus word address of an APB register. *)

val in_priv_range : Config.t -> int -> bool
(** Is this word address a mapped private-SRAM cell? *)

val in_pub_range : Config.t -> int -> bool

(** {1 Expression-level decoders} *)

val decode_region : Config.t -> Expr.t -> region -> Expr.t
(** 1-bit: the address lies in the region (mapped or not). *)

val decode_sram_select : Config.t -> Expr.t -> region -> bank:int -> Expr.t
(** 1-bit: the address selects this bank and its index is mapped. *)

val sram_index : Config.t -> Expr.t -> region -> Expr.t
(** Index within a bank, as an expression of the bank's address width
    ([log2 depth] bits, at least 1). *)

val decode_periph_select : Config.t -> Expr.t -> periph -> Expr.t
val periph_reg_index : Config.t -> Expr.t -> Expr.t
(** Register index within a peripheral (4 bits). *)

(** {1 Byte addresses (for firmware)} *)

val byte_addr : Config.t -> int -> int
(** Byte address of a bus word address ([word * 4] — the CPU uses
    byte addressing with word-aligned accesses). *)
