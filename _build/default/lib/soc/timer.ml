open Rtl

type t = {
  b : Netlist.Builder.builder;
  cfg : Config.t;
  ctrl : Expr.t;  (* bit0 enable, bit1 auto-start *)
  value : Expr.t;
  slave : Bus.slave;
  get_wb : unit -> Apb.write_bus;
  mutable connected : bool;
}

let create b ~(cfg : Config.t) =
  let dw = cfg.Config.data_width in
  let ctrl = Netlist.Builder.reg b "timer.ctrl" 2 in
  let value = Netlist.Builder.reg b "timer.value" cfg.Config.timer_width in
  let read idx =
    Expr.mux_list idx ~default:(Expr.zero dw)
      [ (0, Expr.uresize ctrl dw); (1, Expr.uresize value dw) ]
  in
  let slave, get_wb =
    Apb.reg_slave b ~name:"timer.cfg" ~cfg ~periph:Memmap.Timer ~read
  in
  { b; cfg; ctrl; value; slave; get_wb; connected = false }

let config_slave t = t.slave
let value_reg t = t.value

let connect t ~dma_done =
  if t.connected then invalid_arg "Timer.connect: already connected";
  t.connected <- true;
  let open Expr in
  let wb = t.get_wb () in
  let tw = t.cfg.Config.timer_width in
  let wr idx = wb.Apb.w_en &: (wb.Apb.w_idx ==: of_int ~width:4 idx) in
  let auto = bit t.ctrl 1 and enable = bit t.ctrl 0 in
  let auto_fire = auto &: dma_done in
  let ctrl_next =
    mux (wr 0)
      (slice wb.Apb.w_data ~hi:1 ~lo:0)
      (mux auto_fire (t.ctrl |: of_int ~width:2 1) t.ctrl)
  in
  Netlist.Builder.set_next t.b t.ctrl ctrl_next;
  let counting = enable |: auto_fire in
  let value_next =
    mux (wr 1)
      (uresize wb.Apb.w_data tw)
      (mux counting (t.value +: one tw) t.value)
  in
  Netlist.Builder.set_next t.b t.value value_next
