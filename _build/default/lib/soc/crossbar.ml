open Rtl

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let build b ~name ~(cfg : Config.t) ~masters ~slaves =
  let nm = List.length masters in
  let midx_w = max 1 (log2 (max 1 (nm - 1)) + 1) in
  let master_outs = List.map snd masters in
  (* Per slave: arbitrate, drive the slave, register response routing. *)
  let per_slave =
    List.map
      (fun (sl : Bus.slave) ->
        let sname = Printf.sprintf "%s.%s" name sl.Bus.sl_name in
        let reqs_here =
          List.map
            (fun (mo : Bus.master_out) ->
              Expr.(mo.Bus.req &: sl.Bus.sl_match mo.Bus.addr))
            master_outs
        in
        let grants =
          match cfg.Config.arbiter with
          | `Round_robin -> Arbiter.round_robin b ~name:(sname ^ ".arb") reqs_here
          | `Fixed_priority -> Arbiter.fixed_priority reqs_here
          | `Tdma -> Arbiter.tdma b ~name:(sname ^ ".arb") reqs_here
        in
        let granted_any = Expr.or_list grants in
        let mux_field f =
          List.fold_left2
            (fun acc g (mo : Bus.master_out) -> Expr.mux g (f mo) acc)
            (f (Bus.idle_master cfg))
            grants master_outs
        in
        let addr = mux_field (fun mo -> mo.Bus.addr) in
        let we = mux_field (fun mo -> mo.Bus.we) in
        let wdata = mux_field (fun mo -> mo.Bus.wdata) in
        let rdata = sl.Bus.sl_build ~granted:granted_any ~addr ~we ~wdata in
        (* response routing: one cycle after a grant, answer the winner *)
        let resp_valid = Netlist.Builder.reg b (sname ^ ".resp_valid") 1 in
        let resp_master = Netlist.Builder.reg b (sname ^ ".resp_master") midx_w in
        Netlist.Builder.set_next b resp_valid granted_any;
        let winner_idx =
          List.fold_left
            (fun acc (i, g) -> Expr.mux g (Expr.of_int ~width:midx_w i) acc)
            resp_master
            (List.mapi (fun i g -> (i, g)) grants)
        in
        Netlist.Builder.set_next b resp_master winner_idx;
        (grants, resp_valid, resp_master, rdata))
      slaves
  in
  List.mapi
    (fun i (mname, _) ->
      ignore mname;
      let gnt =
        Expr.or_list
          (List.map (fun (grants, _, _, _) -> List.nth grants i) per_slave)
      in
      let rvalid_terms =
        List.map
          (fun (_, resp_valid, resp_master, _) ->
            Expr.(resp_valid &: (resp_master ==: of_int ~width:midx_w i)))
          per_slave
      in
      let rvalid = Expr.or_list rvalid_terms in
      let rdata =
        List.fold_left2
          (fun acc hit (_, _, _, rdata) -> Expr.mux hit rdata acc)
          (Expr.zero cfg.Config.data_width)
          rvalid_terms per_slave
      in
      (fst (List.nth masters i), { Bus.gnt; rvalid; rdata }))
    masters
