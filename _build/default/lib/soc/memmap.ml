open Rtl

type region = Pub | Priv | Apb

type periph = Timer | Dma | Hwpe | Uart

let periph_id = function Timer -> 0 | Dma -> 1 | Hwpe -> 2 | Uart -> 3

let region_code = function Pub -> 0 | Priv -> 1 | Apb -> 2

let region_base (cfg : Config.t) r =
  let region_words = 1 lsl (cfg.Config.addr_width - 2) in
  region_code r * region_words

let pub_words (cfg : Config.t) = cfg.Config.pub_banks * cfg.Config.pub_depth
let priv_words (cfg : Config.t) = cfg.Config.priv_banks * cfg.Config.priv_depth

let banks_of cfg = function
  | Pub -> cfg.Config.pub_banks
  | Priv -> cfg.Config.priv_banks
  | Apb -> invalid_arg "Memmap: APB has no banks"

let depth_of cfg = function
  | Pub -> cfg.Config.pub_depth
  | Priv -> cfg.Config.priv_depth
  | Apb -> invalid_arg "Memmap: APB has no depth"

let cell_addr cfg r ~bank ~index =
  let banks = banks_of cfg r in
  assert (bank < banks && index < depth_of cfg r);
  region_base cfg r + (index * banks) + bank

let periph_reg_addr cfg p reg =
  assert (reg < 16);
  region_base cfg Apb + (16 * periph_id p) + reg

let in_range cfg r a =
  let base = region_base cfg r in
  let words = banks_of cfg r * depth_of cfg r in
  a >= base && a < base + words

let in_priv_range cfg a = in_range cfg Priv a
let in_pub_range cfg a = in_range cfg Pub a

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let decode_region (cfg : Config.t) addr r =
  let aw = cfg.Config.addr_width in
  let top = Expr.slice addr ~hi:(aw - 1) ~lo:(aw - 2) in
  Expr.(top ==: of_int ~width:2 (region_code r))

let sram_index cfg addr r =
  let aw = cfg.Config.addr_width in
  let bank_bits = log2 (banks_of cfg r) in
  let idx_lo = bank_bits in
  let idx_hi = aw - 3 in
  if idx_hi < idx_lo then Expr.zero 1
  else Expr.slice addr ~hi:idx_hi ~lo:idx_lo

let decode_sram_select cfg addr r ~bank =
  let banks = banks_of cfg r in
  let depth = depth_of cfg r in
  let bank_bits = log2 banks in
  let region_ok = decode_region cfg addr r in
  let bank_ok =
    if bank_bits = 0 then Expr.vdd
    else Expr.(slice addr ~hi:(bank_bits - 1) ~lo:0 ==: of_int ~width:bank_bits bank)
  in
  let idx = sram_index cfg addr r in
  let mapped =
    if depth >= 1 lsl Expr.width idx then Expr.vdd
    else Expr.(idx <: of_int ~width:(Expr.width idx) depth)
  in
  Expr.and_list [ region_ok; bank_ok; mapped ]

let decode_periph_select cfg addr p =
  let region_ok = decode_region cfg addr Apb in
  let id = Expr.slice addr ~hi:5 ~lo:4 in
  Expr.(region_ok &: (id ==: of_int ~width:2 (periph_id p)))

let periph_reg_index _cfg addr = Expr.slice addr ~hi:3 ~lo:0

let byte_addr _cfg word = word * 4
