open Rtl

(** Single-port synchronous SRAM banks.

    One bank is one crossbar slave. Reads are registered: the index is
    captured on grant and the data is valid the following cycle, which
    matches the crossbar's response routing. State:
    - ["<name>.mem"]: the cell array (persistent, attacker-accessible
      when the bank belongs to a region the attacker can read);
    - ["<name>.raddr_q"]: the registered read index (a transient
      interconnect-side buffer). *)

val bank :
  Netlist.Builder.builder ->
  name:string ->
  cfg:Config.t ->
  region:Memmap.region ->
  bank:int ->
  Bus.slave

val mem_name : string -> string
(** The cell-array name for a bank name ("<name>.mem"). *)
