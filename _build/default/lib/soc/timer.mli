open Rtl

(** System timer (peripheral {!Memmap.Timer}).

    Registers:
    - 0 [ctrl]: bit 0 = enable (count every cycle), bit 1 = auto-start
      (set enable when the DMA completion event fires — the hardware
      event chain of the Fig. 1 attack);
    - 1 [value]: free-running counter, writable (the attacker primes it).

    Both registers are persistent and attacker-readable: the timer is
    the classic retrieval vehicle for MCU timing side channels. *)

type t

val create : Netlist.Builder.builder -> cfg:Config.t -> t
val config_slave : t -> Bus.slave

val connect : t -> dma_done:Expr.t -> unit
(** Wire register next-states; [dma_done] is the completion event (use
    {!Rtl.Expr.gnd} when no DMA is present). *)

val value_reg : t -> Expr.t
