open Rtl

(** SoC top-level assembly.

    Two build modes share all the RTL generators:

    - {b Simulation}: the full SoC including the RV32 core executing a
      firmware image from its instruction ROM.
    - {b Formal}: the SoC {e cut at the CPU/system interface}. The
      paper's S_not_victim excludes all CPU state, and its properties
      constrain only the CPU's bus transactions — so the formal netlist
      replaces the core by free primary inputs ([victim.req],
      [victim.addr], [victim.we], [victim.wdata]) and exposes the bus
      responses as outputs. Two symbolic parameters, [victim_base] and
      [victim_limit], model the protected address range (any possible
      victim memory layout, Sec. 3.4). *)

type mode = Formal | Sim of { rom : Bitvec.t array }

(** The address range a spying IP is configured to access, as
    expressions over its configuration registers. Used by the firmware
    constraints of Sec. 4.2. *)
type ip_range = { ir_name : string; ir_base : Expr.t; ir_len : Expr.t }

type t = {
  soc_cfg : Config.t;
  netlist : Netlist.t;
  mode_formal : bool;
  victim_port : string list;  (** names of the cut inputs (formal) *)
  victim_base : Expr.signal option;
  victim_limit : Expr.signal option;
  ip_ranges : ip_range list;
  pub_mems : Expr.mem list;  (** public SRAM cell arrays *)
  priv_mems : Expr.mem list;
  cell_addr : Expr.mem -> int -> int option;
      (** bus word address of a memory element; [None] for memories that
          are not bus-addressable (CPU register file, ROM) *)
  cpu : Cpu.t option;
  dma : Dma.t option;
  pub_masters : string list;  (** master order on the public crossbar *)
  priv_masters : string list;
}

val build : Config.t -> mode -> t

(** {1 Classification helpers (Sec. 3.4)} *)

val is_interconnect : t -> Structural.svar -> bool
(** Buffers overwritten by every transaction: crossbar arbiter and
    response-routing registers, SRAM read-address registers, APB
    read-index registers. Never part of S_pers. *)

val is_cpu : t -> Structural.svar -> bool

val is_persistent : t -> Structural.svar -> bool
(** S_pers membership for registers, and for memory elements the static
    part of it (attacker-accessible array); whether a particular cell
    is inside the victim's protected range is a per-counterexample,
    parameter-dependent question handled by the UPEC macros. *)
