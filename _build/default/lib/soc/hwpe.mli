open Rtl

(** HWPE-style accelerator.

    Models the Hardware Processing Engine of the Pulpissimo case study
    (Sec. 4.1): configured with a destination region and a length, it
    progressively overwrites [dst .. dst+len-1] with the non-zero
    stream [(i+1) * coef], one word per granted write. Arbitration
    stalls delay its progress — the footprint the new BUSted variant
    reads back from memory, with no timer involved.

    Registers (peripheral {!Memmap.Hwpe}):
    - 0 [ctrl]: write bit 0 = start; read bit 0 = busy, bit 1 = done;
    - 1 [dst], 2 [len], 3 [coef] (ignored while busy).

    State lives under ["hwpe."]; configuration, status, and the
    progress counter are persistent (S_pers). *)

type t

val create : Netlist.Builder.builder -> cfg:Config.t -> t
val master_out : t -> Bus.master_out
val config_slave : t -> Bus.slave
val connect : t -> Bus.master_in -> unit
val dst_reg : t -> Expr.t
val len_reg : t -> Expr.t
val cnt_reg : t -> Expr.t
val busy_reg : t -> Expr.t
