open Rtl

(** RV32I-subset CPU core, 2-stage (fetch / execute), as in the
    Pulpissimo case study's RISC-V core.

    Supported instructions: LUI, AUIPC, JAL, JALR, BEQ/BNE/BLT/BGE/
    BLTU/BGEU, LW, SW, the OP-IMM and OP ALU groups, and EBREAK (halts
    the core). Unknown opcodes execute as NOPs. Only word-sized,
    word-aligned memory accesses are generated.

    Fetch reads a dedicated instruction ROM combinationally; data
    accesses go to the bus through a req/gnt/rvalid port and stall the
    pipeline until the response arrives — every arbitration stall is
    therefore visible in the program's timing, which is what the attack
    firmware measures.

    The core requires a 32-bit data bus ([Config.data_width = 32]); it
    is instantiated only in simulation builds (formal builds cut the
    SoC at this bus port, per the paper's S_not_victim definition). *)

type t

val create :
  Netlist.Builder.builder -> cfg:Config.t -> rom:Bitvec.t array -> t
(** [rom] holds instruction words; the core starts fetching at byte
    address 0. *)

val data_master : t -> Bus.master_out
val connect : t -> Bus.master_in -> unit
val halted : t -> Expr.t
(** High after EBREAK retires; the core then stops. *)

val pc : t -> Expr.t
(** Program counter of the instruction in execute. *)

val reg_file_mem : t -> Expr.mem
(** The architectural register file (32 x 32 memory named
    ["cpu.regs"]). *)
