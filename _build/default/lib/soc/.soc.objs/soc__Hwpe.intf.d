lib/soc/hwpe.mli: Bus Config Expr Netlist Rtl
