lib/soc/hwpe.ml: Apb Bus Config Expr Memmap Netlist Rtl
