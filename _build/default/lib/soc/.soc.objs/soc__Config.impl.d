lib/soc/config.ml: Format
