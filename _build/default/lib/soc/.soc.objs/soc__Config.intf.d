lib/soc/config.mli: Format
