lib/soc/apb.ml: Bus Config Expr Memmap Netlist Rtl
