lib/soc/crossbar.mli: Bus Config Netlist Rtl
