lib/soc/uart.ml: Apb Bus Config Expr Memmap Netlist Rtl
