lib/soc/cpu.ml: Array Bitvec Bus Config Expr Netlist Rtl
