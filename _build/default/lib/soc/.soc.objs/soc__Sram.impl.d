lib/soc/sram.ml: Bus Config Expr Memmap Netlist Rtl
