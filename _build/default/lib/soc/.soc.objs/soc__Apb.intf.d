lib/soc/apb.mli: Bus Config Expr Memmap Netlist Rtl
