lib/soc/sram.mli: Bus Config Memmap Netlist Rtl
