lib/soc/builder.ml: Bitvec Bus Config Cpu Crossbar Dma Expr Hwpe List Memmap Netlist Option Printf Rtl Sram String Structural Timer Uart
