lib/soc/timer.ml: Apb Bus Config Expr Memmap Netlist Rtl
