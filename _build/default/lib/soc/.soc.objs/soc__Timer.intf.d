lib/soc/timer.mli: Bus Config Expr Netlist Rtl
