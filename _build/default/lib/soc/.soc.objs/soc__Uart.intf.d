lib/soc/uart.mli: Bus Config Netlist Rtl
