lib/soc/memmap.mli: Config Expr Rtl
