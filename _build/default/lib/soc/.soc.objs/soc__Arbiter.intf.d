lib/soc/arbiter.mli: Expr Netlist Rtl
