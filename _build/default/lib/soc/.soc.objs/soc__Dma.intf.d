lib/soc/dma.mli: Bus Config Expr Netlist Rtl
