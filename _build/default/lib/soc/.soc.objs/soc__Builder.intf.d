lib/soc/builder.mli: Bitvec Config Cpu Dma Expr Netlist Rtl Structural
