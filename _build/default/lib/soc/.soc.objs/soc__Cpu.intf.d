lib/soc/cpu.mli: Bitvec Bus Config Expr Netlist Rtl
