lib/soc/crossbar.ml: Arbiter Bus Config Expr List Netlist Printf Rtl
