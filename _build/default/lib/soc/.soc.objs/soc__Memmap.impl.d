lib/soc/memmap.ml: Config Expr Rtl
