lib/soc/dma.ml: Apb Bus Config Expr Memmap Netlist Rtl
