lib/soc/bus.mli: Config Expr Rtl
