lib/soc/bus.ml: Config Expr Rtl
