lib/soc/arbiter.ml: Array Expr List Netlist Rtl
