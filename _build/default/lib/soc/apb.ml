open Rtl

type write_bus = { w_en : Expr.t; w_idx : Expr.t; w_data : Expr.t }

let reg_slave b ~name ~(cfg : Config.t) ~periph ~read =
  let ridx_q = Netlist.Builder.reg b (name ^ ".ridx_q") 4 in
  let wb = ref None in
  let build ~granted ~addr ~we ~wdata =
    let idx = Memmap.periph_reg_index cfg addr in
    Netlist.Builder.set_next b ridx_q (Expr.mux granted idx ridx_q);
    wb := Some { w_en = Expr.(granted &: we); w_idx = idx; w_data = wdata };
    read ridx_q
  in
  let slave =
    {
      Bus.sl_name = name;
      Bus.sl_match = (fun addr -> Memmap.decode_periph_select cfg addr periph);
      Bus.sl_build = build;
    }
  in
  let get_wb () =
    match !wb with
    | Some w -> w
    | None -> failwith (name ^ ": write bus requested before crossbar build")
  in
  (slave, get_wb)
