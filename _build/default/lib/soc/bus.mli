open Rtl

(** OBI-style bus interface records.

    A master drives [req], [addr], [we], [wdata]; the interconnect
    answers with a combinational [gnt] in the same cycle and, one cycle
    after a grant, [rvalid] with [rdata]. Masters must hold a request
    until granted; outputs must be Moore-style (functions of registers
    only), which keeps the interconnect free of combinational loops. *)

type master_out = {
  req : Expr.t;  (** 1 bit *)
  addr : Expr.t;  (** word address, [Config.addr_width] bits *)
  we : Expr.t;  (** 1 bit *)
  wdata : Expr.t;  (** [Config.data_width] bits *)
}

type master_in = {
  gnt : Expr.t;  (** 1 bit, same cycle as [req] *)
  rvalid : Expr.t;  (** 1 bit, cycle after the grant *)
  rdata : Expr.t;  (** valid when [rvalid] *)
}

val idle_master : Config.t -> master_out
(** A master that never requests. *)

val split_by : Expr.t -> master_out -> master_out * master_out
(** [split_by sel mo] routes a master to two interconnects: the first
    output requests when [sel] is low, the second when [sel] is high.
    Address and data pass through unchanged. *)

val merge_in : master_in -> master_in -> master_in
(** Combine the responses of two interconnects for one master. At most
    one side may grant (or respond) in a given cycle, which [split_by]
    guarantees. *)

(** A slave as seen by a crossbar: an address decoder and a builder
    that receives the muxed request signals and returns read data with
    next-cycle validity. *)
type slave = {
  sl_name : string;
  sl_match : Expr.t -> Expr.t;  (** address decode, 1 bit *)
  sl_build :
    granted:Expr.t -> addr:Expr.t -> we:Expr.t -> wdata:Expr.t -> Expr.t;
      (** invoked exactly once; the result must be the read data for the
          request granted in the {e previous} cycle *)
}
