open Rtl

let fixed_priority reqs =
  let rec go blocked = function
    | [] -> []
    | r :: rest ->
        Expr.(r &: ~:blocked) :: go Expr.(blocked |: r) rest
  in
  go Expr.gnd reqs

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let tdma b ~name reqs =
  match reqs with
  | [] -> []
  | [ r ] -> [ r ]
  | _ ->
      let n = List.length reqs in
      let w = max 1 (log2 (n - 1) + 1) in
      let slot = Netlist.Builder.reg b (name ^ ".slot") w in
      (* wrap at n so every master owns exactly one slot per round; a
         symbolic start with slot >= n self-heals at the next cycle *)
      let next =
        Expr.mux
          Expr.(slot >=: of_int ~width:w (n - 1))
          (Expr.zero w)
          Expr.(slot +: one w)
      in
      Netlist.Builder.set_next b slot next;
      List.mapi
        (fun i r -> Expr.(r &: (slot ==: of_int ~width:w i)))
        reqs

let round_robin b ~name reqs =
  match reqs with
  | [] -> []
  | [ r ] -> [ r ]
  | _ ->
      let n = List.length reqs in
      let w = max 1 (log2 (n - 1) + 1) in
      let last = Netlist.Builder.reg b (name ^ ".last") w in
      let req_arr = Array.of_list reqs in
      (* For each possible value of [last], grant the first requester in
         the rotated order last+1, last+2, ..., last. *)
      let grant_for_last l i =
        (* is request i granted when last = l? i wins iff i requests and
           no j strictly earlier in the rotation requests. *)
        let order = List.init n (fun k -> (l + 1 + k) mod n) in
        let rec earlier acc = function
          | [] -> acc
          | j :: _ when j = i -> acc
          | j :: rest -> earlier (Expr.(acc |: req_arr.(j))) rest
        in
        let blocked = earlier Expr.gnd order in
        Expr.(req_arr.(i) &: ~:blocked)
      in
      let grants =
        List.init n (fun i ->
            let cases =
              List.init n (fun l -> (l, grant_for_last l i))
            in
            Expr.mux_list last ~default:Expr.gnd cases)
      in
      (* advance last to the winner *)
      let next_last =
        List.fold_left
          (fun acc (i, g) -> Expr.mux g (Expr.of_int ~width:w i) acc)
          last
          (List.mapi (fun i g -> (i, g)) grants)
      in
      Netlist.Builder.set_next b last next_last;
      grants
