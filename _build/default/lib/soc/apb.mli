open Rtl

(** Peripheral register-file slaves.

    Wraps the crossbar slave protocol for memory-mapped IP registers:
    captures the register index on grant so reads have the required
    next-cycle validity, and exposes the decoded write strobe to the
    owning IP. The IP wires its register next-states from the returned
    {!write_bus} after the crossbar has been built. *)

type write_bus = {
  w_en : Expr.t;  (** a write was granted this cycle *)
  w_idx : Expr.t;  (** register index, 4 bits *)
  w_data : Expr.t;  (** data, [Config.data_width] bits *)
}

val reg_slave :
  Netlist.Builder.builder ->
  name:string ->
  cfg:Config.t ->
  periph:Memmap.periph ->
  read:(Expr.t -> Expr.t) ->
  Bus.slave * (unit -> write_bus)
(** [reg_slave b ~name ~cfg ~periph ~read] returns the slave and a
    thunk yielding the write bus; the thunk raises [Failure] until the
    crossbar has invoked the slave's build function. [read idx] must
    return the current value of register [idx] (width
    [Config.data_width]). *)
