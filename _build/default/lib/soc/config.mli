(** SoC configuration.

    The same generators build both the small configurations used for
    formal analysis and the larger ones used for firmware simulation.
    Public and private memories are banked; banks are interleaved on the
    low address bits, as in PULP-style tightly-coupled memories, so that
    victim accesses to different addresses can contend with different
    spying-IP accesses — the contention the paper's attacks exploit. *)

type t = {
  data_width : int;  (** bus data width in bits *)
  addr_width : int;  (** bus word-address width in bits *)
  pub_banks : int;  (** public SRAM banks (power of two) *)
  priv_banks : int;  (** private SRAM banks (power of two) *)
  pub_depth : int;  (** words per public bank *)
  priv_depth : int;  (** words per private bank *)
  with_dma : bool;
  with_hwpe : bool;
  with_timer : bool;
  with_uart : bool;
  dma_on_private : bool;
      (** the DMA has a master port on the private crossbar (as in
          Pulpissimo, where a few IPs besides the core reach the private
          memory) *)
  timer_width : int;
  arbiter : [ `Round_robin | `Fixed_priority | `Tdma ];
      (** [`Tdma] is the contention-free extension (see {!Arbiter.tdma}) *)
}

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent configurations (widths out
    of range, bank counts not powers of two, regions overflowing the
    address space). *)

val formal_tiny : t
(** Smallest config that exhibits every behaviour: 8-bit data, 8-bit
    addresses, 2+2 banks of 4 words. Used by unit tests. *)

val formal_default : t
(** Default config for the paper experiments (E2, E3): 8-bit data, 2+2
    banks of 8 words. *)

val sim_default : t
(** Simulation config for the firmware examples: 32-bit data, 16-bit
    word addresses, 2 public banks of 1024 words. *)

val scale : t -> factor:int -> t
(** Scale memory depths by a factor (E5 sweep). *)

val pp : Format.formatter -> t -> unit
