open Rtl

type t = {
  b : Netlist.Builder.builder;
  cfg : Config.t;
  tx_data : Expr.t;
  busy_cnt : Expr.t;
  slave : Bus.slave;
  get_wb : unit -> Apb.write_bus;
  mutable connected : bool;
}

let create b ~(cfg : Config.t) =
  let dw = cfg.Config.data_width in
  let tx_data = Netlist.Builder.reg b "uart.tx_data" dw in
  let busy_cnt = Netlist.Builder.reg b "uart.busy_cnt" 4 in
  let read idx =
    Expr.mux_list idx ~default:(Expr.zero dw)
      [
        (0, tx_data);
        (1, Expr.uresize Expr.(busy_cnt <>: zero 4) dw);
      ]
  in
  let slave, get_wb =
    Apb.reg_slave b ~name:"uart.cfg" ~cfg ~periph:Memmap.Uart ~read
  in
  { b; cfg; tx_data; busy_cnt; slave; get_wb; connected = false }

let config_slave t = t.slave

let connect t =
  if t.connected then invalid_arg "Uart.connect: already connected";
  t.connected <- true;
  let open Expr in
  let wb = t.get_wb () in
  let wr0 = wb.Apb.w_en &: (wb.Apb.w_idx ==: zero 4) in
  Netlist.Builder.set_next t.b t.tx_data (mux wr0 wb.Apb.w_data t.tx_data);
  Netlist.Builder.set_next t.b t.busy_cnt
    (mux wr0 (of_int ~width:4 10)
       (mux (t.busy_cnt >: zero 4) (t.busy_cnt -: one 4) t.busy_cnt))
