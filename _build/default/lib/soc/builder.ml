open Rtl

type mode = Formal | Sim of { rom : Bitvec.t array }

type ip_range = { ir_name : string; ir_base : Expr.t; ir_len : Expr.t }

type t = {
  soc_cfg : Config.t;
  netlist : Netlist.t;
  mode_formal : bool;
  victim_port : string list;
  victim_base : Expr.signal option;
  victim_limit : Expr.signal option;
  ip_ranges : ip_range list;
  pub_mems : Expr.mem list;
  priv_mems : Expr.mem list;
  cell_addr : Expr.mem -> int -> int option;
  cpu : Cpu.t option;
  dma : Dma.t option;
  pub_masters : string list;
  priv_masters : string list;
}

let build (cfg : Config.t) mode =
  Config.validate cfg;
  let b = Netlist.Builder.create "soc" in
  let aw = cfg.Config.addr_width and dw = cfg.Config.data_width in
  (* --- the CPU / the cut --- *)
  let cpu, victim_out, victim_port, victim_base, victim_limit =
    match mode with
    | Sim { rom } ->
        let core = Cpu.create b ~cfg ~rom in
        (Some core, Cpu.data_master core, [], None, None)
    | Formal ->
        let req = Netlist.Builder.input b "victim.req" 1 in
        let addr = Netlist.Builder.input b "victim.addr" aw in
        let we = Netlist.Builder.input b "victim.we" 1 in
        let wdata = Netlist.Builder.input b "victim.wdata" dw in
        let base = Expr.signal "victim_base" aw in
        let limit = Expr.signal "victim_limit" aw in
        (* parameters must be registered with the builder *)
        let base_e = Netlist.Builder.param b "victim_base" aw in
        let limit_e = Netlist.Builder.param b "victim_limit" aw in
        ignore base;
        ignore limit;
        let base_sig =
          match Expr.node base_e with Expr.Param s -> s | _ -> assert false
        in
        let limit_sig =
          match Expr.node limit_e with Expr.Param s -> s | _ -> assert false
        in
        ( None,
          { Bus.req; addr; we; wdata },
          [ "victim.req"; "victim.addr"; "victim.we"; "victim.wdata" ],
          Some base_sig,
          Some limit_sig )
  in
  (* --- IPs --- *)
  let dma = if cfg.Config.with_dma then Some (Dma.create b ~cfg) else None in
  let hwpe = if cfg.Config.with_hwpe then Some (Hwpe.create b ~cfg) else None in
  let timer =
    if cfg.Config.with_timer then Some (Timer.create b ~cfg) else None
  in
  let uart = if cfg.Config.with_uart then Some (Uart.create b ~cfg) else None in
  (* --- SRAM banks --- *)
  let pub_banks =
    List.init cfg.Config.pub_banks (fun i ->
        Sram.bank b ~name:(Printf.sprintf "pub%d" i) ~cfg ~region:Memmap.Pub
          ~bank:i)
  in
  let priv_banks =
    List.init cfg.Config.priv_banks (fun i ->
        Sram.bank b ~name:(Printf.sprintf "priv%d" i) ~cfg ~region:Memmap.Priv
          ~bank:i)
  in
  (* --- routing --- *)
  let in_priv (mo : Bus.master_out) = Memmap.decode_region cfg mo.Bus.addr Memmap.Priv in
  let victim_pub, victim_priv = Bus.split_by (in_priv victim_out) victim_out in
  let dma_split =
    Option.map
      (fun d ->
        let out = Dma.master_out d in
        if cfg.Config.dma_on_private then Bus.split_by (in_priv out) out
        else (out, Bus.idle_master cfg))
      dma
  in
  let pub_masters =
    [ ("victim", victim_pub) ]
    @ (match dma_split with Some (p, _) -> [ ("dma", p) ] | None -> [])
    @ match hwpe with Some h -> [ ("hwpe", Hwpe.master_out h) ] | None -> []
  in
  let priv_masters =
    [ ("victim", victim_priv) ]
    @
    match dma_split with
    | Some (_, p) when cfg.Config.dma_on_private -> [ ("dma", p) ]
    | _ -> []
  in
  let apb_slaves =
    (match timer with Some t -> [ Timer.config_slave t ] | None -> [])
    @ (match dma with Some d -> [ Dma.config_slave d ] | None -> [])
    @ (match hwpe with Some h -> [ Hwpe.config_slave h ] | None -> [])
    @ match uart with Some u -> [ Uart.config_slave u ] | None -> []
  in
  let pub_resp =
    Crossbar.build b ~name:"xbar_pub" ~cfg ~masters:pub_masters
      ~slaves:(pub_banks @ apb_slaves)
  in
  let priv_resp =
    Crossbar.build b ~name:"xbar_priv" ~cfg ~masters:priv_masters
      ~slaves:priv_banks
  in
  let resp_of name lst = List.assoc name lst in
  let victim_in =
    Bus.merge_in (resp_of "victim" pub_resp) (resp_of "victim" priv_resp)
  in
  let dma_in =
    Option.map
      (fun _ ->
        if cfg.Config.dma_on_private then
          Bus.merge_in (resp_of "dma" pub_resp) (resp_of "dma" priv_resp)
        else resp_of "dma" pub_resp)
      dma
  in
  let hwpe_in = Option.map (fun _ -> resp_of "hwpe" pub_resp) hwpe in
  (* --- connect FSMs --- *)
  Option.iter (fun d -> Dma.connect d (Option.get dma_in)) dma;
  Option.iter (fun h -> Hwpe.connect h (Option.get hwpe_in)) hwpe;
  let dma_done = match dma with Some d -> Dma.done_wire d | None -> Expr.gnd in
  Option.iter (fun t -> Timer.connect t ~dma_done) timer;
  Option.iter (fun u -> Uart.connect u) uart;
  Option.iter (fun core -> Cpu.connect core victim_in) cpu;
  (* --- outputs --- *)
  (match mode with
  | Formal ->
      Netlist.Builder.output b "victim.gnt" victim_in.Bus.gnt;
      Netlist.Builder.output b "victim.rvalid" victim_in.Bus.rvalid;
      Netlist.Builder.output b "victim.rdata" victim_in.Bus.rdata
  | Sim _ ->
      let core = Option.get cpu in
      Netlist.Builder.output b "halted" (Cpu.halted core);
      Netlist.Builder.output b "pc" (Cpu.pc core));
  Option.iter
    (fun d -> Netlist.Builder.output b "dma_done" (Dma.done_wire d))
    dma;
  let netlist = Netlist.Builder.finalize b in
  (* --- handles --- *)
  let ip_ranges =
    (match dma with
    | Some d ->
        [
          { ir_name = "dma.src"; ir_base = Dma.src_reg d; ir_len = Dma.len_reg d };
          { ir_name = "dma.dst"; ir_base = Dma.dst_reg d; ir_len = Dma.len_reg d };
        ]
    | None -> [])
    @
    match hwpe with
    | Some h ->
        [ { ir_name = "hwpe.dst"; ir_base = Hwpe.dst_reg h; ir_len = Hwpe.len_reg h } ]
    | None -> []
  in
  let pub_mems =
    List.init cfg.Config.pub_banks (fun i ->
        (Netlist.find_mem netlist (Sram.mem_name (Printf.sprintf "pub%d" i)))
          .Netlist.md_mem)
  in
  let priv_mems =
    List.init cfg.Config.priv_banks (fun i ->
        (Netlist.find_mem netlist (Sram.mem_name (Printf.sprintf "priv%d" i)))
          .Netlist.md_mem)
  in
  let cell_addr m index =
    let find region mems =
      let rec go bank = function
        | [] -> None
        | m' :: rest ->
            if Expr.mems_equal m m' then
              Some (Memmap.cell_addr cfg region ~bank ~index)
            else go (bank + 1) rest
      in
      go 0 mems
    in
    match find Memmap.Pub pub_mems with
    | Some a -> Some a
    | None -> find Memmap.Priv priv_mems
  in
  {
    soc_cfg = cfg;
    netlist;
    mode_formal = (match mode with Formal -> true | Sim _ -> false);
    victim_port;
    victim_base;
    victim_limit;
    ip_ranges;
    pub_mems;
    priv_mems;
    cell_addr;
    cpu;
    dma;
    pub_masters = List.map fst pub_masters;
    priv_masters = List.map fst priv_masters;
  }

(* ---- classification ---- *)

let name_of = Structural.svar_name

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let has_suffix suf s =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let is_interconnect _t sv =
  let n = name_of sv in
  has_prefix "xbar_" n || has_suffix ".raddr_q" n || has_suffix ".ridx_q" n

let is_cpu _t sv = has_prefix "cpu." (name_of sv)

let is_persistent t sv =
  match sv with
  | Structural.Smem (m, _) ->
      (* bus-addressable memory cells are attacker-readable (whether a
         specific cell is protected depends on the symbolic range and is
         handled by the macros) *)
      t.cell_addr m 0 <> None
  | Structural.Sreg _ ->
      let n = name_of sv in
      (not (is_interconnect t sv))
      && (not (is_cpu t sv))
      && (has_prefix "dma." n || has_prefix "hwpe." n || has_prefix "timer." n
        || has_prefix "uart." n)
