open Rtl

(** DMA engine: copies [len] words from [src] to [dst].

    Memory-mapped registers (peripheral {!Memmap.Dma}):
    - 0 [ctrl]: write bit 0 = start (resets the counter, clears [done]);
      read returns [busy] in bit 0 and [done] in bit 1;
    - 1 [src], 2 [dst], 3 [len]: word addresses / word count. Writes
      are ignored while the engine is busy, so a transfer's address
      range is stable for its whole duration.

    The engine is a read-request / read-wait / write-request FSM; each
    copied word costs at least three cycles plus any arbitration
    stalls — those stalls are the timing channel of Fig. 1. The [done]
    wire pulses high on completion (it drives the timer's auto-start
    event input). State is under the ["dma."] prefix; the configuration
    and status registers are persistent in the S_pers sense, the FSM
    state and data latch are too (they survive a context switch). *)

type t

val create : Netlist.Builder.builder -> cfg:Config.t -> t

val master_out : t -> Bus.master_out
(** The full request stream (route it with {!Bus.split_by} when the DMA
    sits on two crossbars). *)

val config_slave : t -> Bus.slave
val done_wire : t -> Expr.t
(** High in the cycle the last write is granted. *)

val connect : t -> Bus.master_in -> unit
(** Wire the FSM from the (merged) interconnect response. Must be
    called exactly once, after the crossbars are built. *)

val src_reg : t -> Expr.t
val dst_reg : t -> Expr.t
val len_reg : t -> Expr.t
val cnt_reg : t -> Expr.t
val busy_reg : t -> Expr.t
val state_reg : t -> Expr.t
val st_rd_wait : int
(** FSM encoding of the read-wait state (the cycle(s) between a granted
    read and its response) — used by the response-path invariants. *)
