open Rtl

(** Minimal UART transmitter model (peripheral {!Memmap.Uart}).

    Registers:
    - 0 [tx_data]: write starts a (modelled) transmission; persistent;
    - 1 [status]: read-only, bit 0 = busy while the shift counter runs.

    Present to make the SoC's peripheral population realistic; its
    persistent [tx_data] register participates in S_pers. *)

type t

val create : Netlist.Builder.builder -> cfg:Config.t -> t
val config_slave : t -> Bus.slave
val connect : t -> unit
