open Rtl

(** Crossbar interconnect: per-slave arbitration between masters,
    response routing back to the granting master one cycle later.

    Registers created per slave [s] under [<name>.<s>]:
    - [arb.last] (round-robin pointer, when that policy is selected)
    - [resp_valid], [resp_master]: response routing for the request
      granted in the previous cycle.

    These are the paper's "buffers in the interconnect which are
    overwritten with every communication transaction": they are
    {e not} persistent state in the S_pers sense. *)

val build :
  Netlist.Builder.builder ->
  name:string ->
  cfg:Config.t ->
  masters:(string * Bus.master_out) list ->
  slaves:Bus.slave list ->
  (string * Bus.master_in) list
(** Returns the response interface for each master, in input order. A
    master is granted only when it is the arbitration winner for the
    slave its address decodes to; requests to unmapped addresses are
    never granted. *)
