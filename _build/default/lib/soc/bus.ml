open Rtl

type master_out = {
  req : Expr.t;
  addr : Expr.t;
  we : Expr.t;
  wdata : Expr.t;
}

type master_in = { gnt : Expr.t; rvalid : Expr.t; rdata : Expr.t }

let idle_master (cfg : Config.t) =
  {
    req = Expr.gnd;
    addr = Expr.zero cfg.Config.addr_width;
    we = Expr.gnd;
    wdata = Expr.zero cfg.Config.data_width;
  }

let split_by sel mo =
  ( { mo with req = Expr.(mo.req &: ~:sel) },
    { mo with req = Expr.(mo.req &: sel) } )

let merge_in a b =
  {
    gnt = Expr.(a.gnt |: b.gnt);
    rvalid = Expr.(a.rvalid |: b.rvalid);
    rdata = Expr.mux b.rvalid b.rdata a.rdata;
  }

type slave = {
  sl_name : string;
  sl_match : Expr.t -> Expr.t;
  sl_build :
    granted:Expr.t -> addr:Expr.t -> we:Expr.t -> wdata:Expr.t -> Expr.t;
}
