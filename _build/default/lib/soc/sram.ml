open Rtl

let rec log2_up n = if n <= 1 then 0 else 1 + log2_up ((n + 1) / 2)

let mem_name name = name ^ ".mem"

let bank b ~name ~(cfg : Config.t) ~region ~bank =
  let depth =
    match region with
    | Memmap.Pub -> cfg.Config.pub_depth
    | Memmap.Priv -> cfg.Config.priv_depth
    | Memmap.Apb -> invalid_arg "Sram.bank: APB region"
  in
  let idx_w = max 1 (log2_up depth) in
  let mem =
    Netlist.Builder.mem b (mem_name name) ~addr_width:idx_w
      ~data_width:cfg.Config.data_width ~depth
  in
  let raddr_q = Netlist.Builder.reg b (name ^ ".raddr_q") idx_w in
  let build ~granted ~addr ~we ~wdata =
    let idx = Expr.uresize (Memmap.sram_index cfg addr region) idx_w in
    Netlist.Builder.write_port b mem ~enable:Expr.(granted &: we) ~addr:idx
      ~data:wdata;
    (* captured on every grant (not only reads) so that raddr_q always
       names the transaction the next cycle's response belongs to; the
       UPEC invariants on response routing rely on this *)
    Netlist.Builder.set_next b raddr_q (Expr.mux granted idx raddr_q);
    Expr.memread mem raddr_q
  in
  {
    Bus.sl_name = name;
    Bus.sl_match = (fun addr -> Memmap.decode_sram_select cfg addr region ~bank);
    Bus.sl_build = build;
  }
