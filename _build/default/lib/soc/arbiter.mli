open Rtl

(** Bus arbiters.

    Both arbiters produce a one-hot grant vector from a request vector.
    The round-robin arbiter keeps a last-granted register (named
    ["<name>.last"]) and gives priority to the requester after the last
    winner — the policy of the PULP TCDM interconnect, and the source of
    the victim-dependent grant timing the paper's attacks observe. *)

val round_robin :
  Netlist.Builder.builder -> name:string -> Expr.t list -> Expr.t list
(** [round_robin b ~name reqs] returns one grant per request. At most
    one grant is high; a grant implies its request. *)

val fixed_priority : Expr.t list -> Expr.t list
(** Stateless: index 0 wins. *)

val tdma : Netlist.Builder.builder -> name:string -> Expr.t list -> Expr.t list
(** Time-division arbiter: a free-running slot counter (named
    ["<name>.slot"]) gives each master a fixed grant slot, whether or
    not anyone else requests. Grant timing is therefore independent of
    the other masters' traffic — a contention-free interconnect, the
    "less conservative countermeasure" direction the paper's conclusion
    sketches. The price is bandwidth: each master gets 1/n of the
    slots. *)
