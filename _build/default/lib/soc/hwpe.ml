open Rtl

type t = {
  b : Netlist.Builder.builder;
  cfg : Config.t;
  dst : Expr.t;
  len : Expr.t;
  coef : Expr.t;
  cnt : Expr.t;
  busy : Expr.t;
  done_ : Expr.t;
  slave : Bus.slave;
  get_wb : unit -> Apb.write_bus;
  mutable connected : bool;
}

let create b ~(cfg : Config.t) =
  let aw = cfg.Config.addr_width and dw = cfg.Config.data_width in
  let dst = Netlist.Builder.reg b "hwpe.dst" aw in
  let len = Netlist.Builder.reg b "hwpe.len" aw in
  let coef = Netlist.Builder.reg b "hwpe.coef" dw in
  let cnt = Netlist.Builder.reg b "hwpe.cnt" aw in
  let busy = Netlist.Builder.reg b "hwpe.busy" 1 in
  let done_ = Netlist.Builder.reg b "hwpe.done" 1 in
  let read idx =
    Expr.mux_list idx ~default:(Expr.zero dw)
      [
        (0, Expr.uresize (Expr.concat done_ busy) dw);
        (1, Expr.uresize dst dw);
        (2, Expr.uresize len dw);
        (3, coef);
      ]
  in
  let slave, get_wb =
    Apb.reg_slave b ~name:"hwpe.cfg" ~cfg ~periph:Memmap.Hwpe ~read
  in
  { b; cfg; dst; len; coef; cnt; busy; done_; slave; get_wb; connected = false }

let active t = Expr.(t.busy &: (t.cnt <: t.len))

let master_out t =
  let open Expr in
  let dw = t.cfg.Config.data_width and aw = t.cfg.Config.addr_width in
  (* the "complex arithmetic" product stream: (cnt+1) * coef, non-zero
     for coef = 1 and cnt + 1 < 2^dw *)
  let stream = uresize (t.cnt +: one aw) dw *: t.coef in
  {
    Bus.req = active t;
    Bus.addr = t.dst +: t.cnt;
    Bus.we = vdd;
    Bus.wdata = stream;
  }

let config_slave t = t.slave
let dst_reg t = t.dst
let len_reg t = t.len
let cnt_reg t = t.cnt
let busy_reg t = t.busy

let connect t (mi : Bus.master_in) =
  if t.connected then invalid_arg "Hwpe.connect: already connected";
  t.connected <- true;
  let open Expr in
  let b = t.b in
  let wb = t.get_wb () in
  let aw = t.cfg.Config.addr_width in
  let wr idx = wb.Apb.w_en &: (wb.Apb.w_idx ==: of_int ~width:4 idx) in
  let start = wr 0 &: bit wb.Apb.w_data 0 in
  let granted = active t &: mi.Bus.gnt in
  let finishing = granted &: (t.cnt +: one aw ==: t.len) in
  let stuck = t.busy &: ~:(t.cnt <: t.len) in
  let cfg_write idx reg w =
    mux (wr idx &: ~:(t.busy)) (uresize wb.Apb.w_data w) reg
  in
  Netlist.Builder.set_next b t.dst (cfg_write 1 t.dst aw);
  Netlist.Builder.set_next b t.len (cfg_write 2 t.len aw);
  Netlist.Builder.set_next b t.coef
    (cfg_write 3 t.coef t.cfg.Config.data_width);
  Netlist.Builder.set_next b t.cnt
    (mux start (zero aw) (mux granted (t.cnt +: one aw) t.cnt));
  Netlist.Builder.set_next b t.busy
    (mux start (t.len >: zero aw) (mux (finishing |: stuck) gnd t.busy));
  Netlist.Builder.set_next b t.done_
    (mux start gnd (mux (finishing |: stuck) vdd t.done_))
