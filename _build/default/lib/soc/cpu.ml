open Rtl

type t = {
  b : Netlist.Builder.builder;
  cfg : Config.t;
  pc : Expr.t;
  if_pc : Expr.t;
  ir : Expr.t;
  valid : Expr.t;
  mem_state : Expr.t;  (* 0 idle, 1 wait_gnt, 2 wait_rvalid *)
  halted_r : Expr.t;
  regs : Expr.mem;
  rom : Expr.mem;
  rom_aw : int;
  mutable connected : bool;
}

let rec log2_up n = if n <= 1 then 0 else 1 + log2_up ((n + 1) / 2)

let create b ~(cfg : Config.t) ~rom =
  if cfg.Config.data_width <> 32 then
    invalid_arg "Cpu.create: requires a 32-bit data bus";
  let depth = max 2 (Array.length rom) in
  let rom_aw = max 1 (log2_up depth) in
  let rom_init =
    Array.init depth (fun i ->
        if i < Array.length rom then rom.(i) else Bitvec.zero 32)
  in
  let rom_mem =
    Netlist.Builder.mem b ~init:rom_init "cpu.rom" ~addr_width:rom_aw
      ~data_width:32 ~depth
  in
  let regs =
    Netlist.Builder.mem b "cpu.regs" ~addr_width:5 ~data_width:32 ~depth:32
  in
  let pc = Netlist.Builder.reg b "cpu.pc" 32 in
  let if_pc = Netlist.Builder.reg b "cpu.if_pc" 32 in
  let ir = Netlist.Builder.reg b "cpu.ir" 32 in
  let valid = Netlist.Builder.reg b "cpu.valid" 1 in
  let mem_state = Netlist.Builder.reg b "cpu.mem_state" 2 in
  let halted_r = Netlist.Builder.reg b "cpu.halted" 1 in
  {
    b;
    cfg;
    pc;
    if_pc;
    ir;
    valid;
    mem_state;
    halted_r;
    regs;
    rom = rom_mem;
    rom_aw;
    connected = false;
  }

(* ---- decode helpers ---- *)

let decode t =
  let open Expr in
  let ir = t.ir in
  let opcode = slice ir ~hi:6 ~lo:0 in
  let rd = slice ir ~hi:11 ~lo:7 in
  let funct3 = slice ir ~hi:14 ~lo:12 in
  let rs1 = slice ir ~hi:19 ~lo:15 in
  let rs2 = slice ir ~hi:24 ~lo:20 in
  let funct7 = slice ir ~hi:31 ~lo:25 in
  let imm_i = sign_extend (slice ir ~hi:31 ~lo:20) 32 in
  let imm_s =
    sign_extend (concat (slice ir ~hi:31 ~lo:25) (slice ir ~hi:11 ~lo:7)) 32
  in
  let imm_b =
    sign_extend
      (concat (bit ir 31)
         (concat (bit ir 7)
            (concat (slice ir ~hi:30 ~lo:25)
               (concat (slice ir ~hi:11 ~lo:8) (zero 1)))))
      32
  in
  let imm_u = concat (slice ir ~hi:31 ~lo:12) (zero 12) in
  let imm_j =
    sign_extend
      (concat (bit ir 31)
         (concat (slice ir ~hi:19 ~lo:12)
            (concat (bit ir 20)
               (concat (slice ir ~hi:30 ~lo:21) (zero 1)))))
      32
  in
  (opcode, rd, funct3, rs1, rs2, funct7, imm_i, imm_s, imm_b, imm_u, imm_j)

let read_reg t idx =
  Expr.mux
    Expr.(idx ==: zero 5)
    (Expr.zero 32) (Expr.memread t.regs idx)

let data_master t =
  let open Expr in
  let opcode, _, funct3, rs1, _, _, imm_i, imm_s, _, _, _ = decode t in
  let is_load = (opcode ==: of_int ~width:7 0b0000011) &: (funct3 ==: of_int ~width:3 0b010) in
  let is_store = (opcode ==: of_int ~width:7 0b0100011) &: (funct3 ==: of_int ~width:3 0b010) in
  let rs1_val = read_reg t rs1 in
  let ea = rs1_val +: mux is_store imm_s imm_i in
  let aw = t.cfg.Config.addr_width in
  let bus_addr = slice ea ~hi:(aw + 1) ~lo:2 in
  let idle = t.mem_state ==: zero 2 in
  let wait_gnt = t.mem_state ==: one 2 in
  let starting =
    and_list [ t.valid; ~:(t.halted_r); is_load |: is_store; idle ]
  in
  let rs2_val = read_reg t (slice t.ir ~hi:24 ~lo:20) in
  {
    Bus.req = starting |: wait_gnt;
    Bus.addr = bus_addr;
    Bus.we = is_store;
    Bus.wdata = rs2_val;
  }

let halted t = t.halted_r
let pc t = t.pc
let reg_file_mem t = t.regs

let connect t (mi : Bus.master_in) =
  if t.connected then invalid_arg "Cpu.connect: already connected";
  t.connected <- true;
  let open Expr in
  let b = t.b in
  let opcode, rd, funct3, rs1, rs2, funct7, imm_i, imm_s, imm_b, imm_u, imm_j =
    decode t
  in
  ignore imm_s;
  let rs1_val = read_reg t rs1 in
  let rs2_val = read_reg t rs2 in
  let op7 v = opcode ==: of_int ~width:7 v in
  let is_lui = op7 0b0110111 in
  let is_auipc = op7 0b0010111 in
  let is_jal = op7 0b1101111 in
  let is_jalr = op7 0b1100111 in
  let is_branch = op7 0b1100011 in
  let is_load = op7 0b0000011 &: (funct3 ==: of_int ~width:3 0b010) in
  let is_store = op7 0b0100011 &: (funct3 ==: of_int ~width:3 0b010) in
  let is_alu_imm = op7 0b0010011 in
  let is_alu_reg = op7 0b0110011 in
  let is_system = op7 0b1110011 in
  let is_ebreak = is_system &: (imm_i ==: one 32) in
  (* ALU *)
  let alu_b = mux is_alu_imm imm_i rs2_val in
  let shamt = zero_extend (slice alu_b ~hi:4 ~lo:0) 32 in
  let is_sub = is_alu_reg &: bit funct7 5 in
  let is_sra = bit funct7 5 in
  let alu_result =
    mux_list funct3 ~default:(zero 32)
      [
        (0b000, mux is_sub (rs1_val -: alu_b) (rs1_val +: alu_b));
        (0b001, shl rs1_val shamt);
        (0b010, zero_extend (slt rs1_val alu_b) 32);
        (0b011, zero_extend (rs1_val <: alu_b) 32);
        (0b100, rs1_val ^: alu_b);
        (0b101, mux is_sra (ashr rs1_val shamt) (lshr rs1_val shamt));
        (0b110, rs1_val |: alu_b);
        (0b111, rs1_val &: alu_b);
      ]
  in
  (* branches *)
  let cond =
    mux_list funct3 ~default:gnd
      [
        (0b000, rs1_val ==: rs2_val);
        (0b001, rs1_val <>: rs2_val);
        (0b100, slt rs1_val rs2_val);
        (0b101, sle rs2_val rs1_val);
        (0b110, rs1_val <: rs2_val);
        (0b111, rs2_val <=: rs1_val);
      ]
  in
  (* memory FSM *)
  let idle = t.mem_state ==: zero 2 in
  let wait_gnt = t.mem_state ==: one 2 in
  let wait_rvalid = t.mem_state ==: of_int ~width:2 2 in
  let is_mem = is_load |: is_store in
  let starting = and_list [ t.valid; ~:(t.halted_r); is_mem; idle ] in
  let req_active = starting |: wait_gnt in
  let got_gnt = req_active &: mi.Bus.gnt in
  let store_done = got_gnt &: is_store in
  let load_granted = got_gnt &: is_load in
  let load_done = wait_rvalid &: mi.Bus.rvalid in
  let mem_state_next =
    mux load_granted (of_int ~width:2 2)
      (mux (req_active &: ~:(mi.Bus.gnt)) (one 2)
         (mux (store_done |: load_done) (zero 2) t.mem_state))
  in
  Netlist.Builder.set_next b t.mem_state mem_state_next;
  (* retirement *)
  let exec_simple =
    and_list [ t.valid; ~:(t.halted_r); ~:is_mem ]
  in
  let instr_done = or_list [ exec_simple; store_done; load_done ] in
  let take_jump = is_jal |: is_jalr in
  let take_branch = is_branch &: cond in
  let redirect = instr_done &: (take_jump |: take_branch) in
  let target =
    mux is_jalr
      ((rs1_val +: imm_i) &: of_int ~width:32 (-2))
      (t.pc +: mux is_jal imm_j imm_b)
  in
  (* pc / ir advance *)
  let stall = and_list [ t.valid; is_mem; ~:(store_done |: load_done) ] in
  let refill = ~:(t.halted_r) &: ~:stall &: ~:redirect in
  let rom_idx = slice t.if_pc ~hi:(t.rom_aw + 1) ~lo:2 in
  let fetched = memread t.rom rom_idx in
  let halt_next = t.halted_r |: (instr_done &: is_ebreak) in
  Netlist.Builder.set_next b t.halted_r halt_next;
  Netlist.Builder.set_next b t.ir (mux refill fetched t.ir);
  Netlist.Builder.set_next b t.pc (mux refill t.if_pc t.pc);
  Netlist.Builder.set_next b t.if_pc
    (mux redirect target
       (mux refill (t.if_pc +: of_int ~width:32 4) t.if_pc));
  Netlist.Builder.set_next b t.valid
    (mux (redirect |: halt_next) gnd (mux refill vdd t.valid));
  (* register file write ports *)
  let writes_rd =
    or_list [ is_lui; is_auipc; is_jal; is_jalr; is_alu_imm; is_alu_reg ]
  in
  let wb_value =
    mux (is_jal |: is_jalr)
      (t.pc +: of_int ~width:32 4)
      (mux is_lui imm_u (mux is_auipc (t.pc +: imm_u) alu_result))
  in
  Netlist.Builder.write_port b t.regs
    ~enable:(and_list [ instr_done; writes_rd; rd <>: zero 5 ])
    ~addr:rd ~data:wb_value;
  Netlist.Builder.write_port b t.regs
    ~enable:(and_list [ load_done; rd <>: zero 5 ])
    ~addr:rd
    ~data:(uresize mi.Bus.rdata 32)
