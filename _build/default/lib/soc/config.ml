type t = {
  data_width : int;
  addr_width : int;
  pub_banks : int;
  priv_banks : int;
  pub_depth : int;
  priv_depth : int;
  with_dma : bool;
  with_hwpe : bool;
  with_timer : bool;
  with_uart : bool;
  dma_on_private : bool;
  timer_width : int;
  arbiter : [ `Round_robin | `Fixed_priority | `Tdma ];
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let validate t =
  let fail msg = invalid_arg ("Soc.Config: " ^ msg) in
  if t.data_width < 8 || t.data_width > 32 then fail "data_width out of [8,32]";
  if t.addr_width < 6 || t.addr_width > 30 then fail "addr_width out of [6,30]";
  if not (is_pow2 t.pub_banks) then fail "pub_banks not a power of two";
  if not (is_pow2 t.priv_banks) then fail "priv_banks not a power of two";
  if t.pub_depth < 1 || t.priv_depth < 1 then fail "bank depth < 1";
  let region_words = 1 lsl (t.addr_width - 2) in
  if t.pub_banks * t.pub_depth > region_words then fail "public region overflow";
  if t.priv_banks * t.priv_depth > region_words then
    fail "private region overflow";
  if t.timer_width < 2 || t.timer_width > t.data_width then
    fail "timer_width out of range";
  ignore (log2 t.pub_banks)

let formal_tiny =
  {
    data_width = 8;
    addr_width = 8;
    pub_banks = 2;
    priv_banks = 2;
    pub_depth = 4;
    priv_depth = 4;
    with_dma = true;
    with_hwpe = true;
    with_timer = true;
    with_uart = true;
    dma_on_private = true;
    timer_width = 8;
    arbiter = `Round_robin;
  }

let formal_default = { formal_tiny with pub_depth = 8; priv_depth = 8 }

let sim_default =
  {
    data_width = 32;
    addr_width = 16;
    pub_banks = 2;
    priv_banks = 2;
    pub_depth = 1024;
    priv_depth = 256;
    with_dma = true;
    with_hwpe = true;
    with_timer = true;
    with_uart = true;
    dma_on_private = true;
    timer_width = 32;
    arbiter = `Round_robin;
  }

let scale t ~factor =
  if factor < 1 then invalid_arg "Soc.Config.scale: factor < 1";
  { t with pub_depth = t.pub_depth * factor; priv_depth = t.priv_depth * factor }

let pp fmt t =
  Format.fprintf fmt
    "dw=%d aw=%d pub=%dx%d priv=%dx%d dma=%b hwpe=%b timer=%b uart=%b arb=%s"
    t.data_width t.addr_width t.pub_banks t.pub_depth t.priv_banks t.priv_depth
    t.with_dma t.with_hwpe t.with_timer t.with_uart
    (match t.arbiter with
    | `Round_robin -> "rr"
    | `Fixed_priority -> "fixed"
    | `Tdma -> "tdma")
