open Rtl
module U = Ipc.Unroller

let check_inductive ?solver_options spec =
  let invs = Spec.invariants spec in
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  List.map
    (fun (name, inv) ->
      let eng = Ipc.Engine.create ?solver_options ~two_instance:false nl in
      Ipc.Engine.ensure_frames eng 1;
      let u = Ipc.Engine.unroller eng in
      let env = Spec.assumed_env spec in
      Ipc.Engine.assume eng (U.blast_at u U.A ~frame:0 env).(0);
      (* the environment's non-invariant parts also hold at cycle 1
         (configuration legality is assumed throughout the window) *)
      let env1 =
        Expr.and_list
          [ Spec.range_wellformed spec; Spec.threat_model spec; Spec.policy spec ]
      in
      Ipc.Engine.assume eng (U.blast_at u U.A ~frame:1 env1).(0);
      let goal = (U.blast_at u U.A ~frame:1 inv).(0) in
      let ok =
        match Ipc.Engine.check eng goal with
        | Ipc.Engine.Holds -> true
        | Ipc.Engine.Cex _ -> false
      in
      (name, ok))
    invs

let check_base spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let aw = spec.Spec.soc.Soc.Builder.soc_cfg.Soc.Config.addr_width in
  let samples = [ (0, 0); (0, (1 lsl aw) - 1); (3, 7); (64, 71) ] in
  List.map
    (fun (name, inv) ->
      let ok =
        List.for_all
          (fun (b, l) ->
            let eng = Sim.Engine.create nl in
            Sim.Engine.set_param eng "victim_base" (Bitvec.of_int ~width:aw b);
            Sim.Engine.set_param eng "victim_limit" (Bitvec.of_int ~width:aw l);
            Bitvec.to_int (Sim.Engine.peek eng inv) = 1)
          samples
      in
      (name, ok))
    (Spec.invariants spec)

let all_sound ?solver_options spec =
  List.for_all snd (check_inductive ?solver_options spec)
  && List.for_all snd (check_base spec)
