open Rtl
module U = Ipc.Unroller

type outcome =
  | Hold of { s_final : Structural.Svar_set.t; k : int }
  | Found_vulnerable
  | Gave_up

let check_once ?solver_options ?(reset_start = false) spec s_frames k =
  (* s_frames: array of length k+1 with the per-cycle sets *)
  let eng =
    Ipc.Engine.create ?solver_options ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  Ipc.Engine.ensure_frames eng k;
  if reset_start then Macros.assume_reset_state eng spec;
  Macros.assume_env eng spec ~frames:k;
  for f = 0 to k do
    Macros.primary_input_constraints eng spec ~frame:f;
    (* Fig. 4: Victim_Task_Executing during t..t+1 only; beyond that the
       victim port carries equal traffic in both instances *)
    if f <= 1 then Macros.victim_task_executing eng spec ~frame:f
    else Macros.victim_port_equal eng spec ~frame:f
  done;
  Macros.state_equivalence_assume eng spec ~frame:0 s_frames.(0);
  let g = Ipc.Engine.graph eng in
  let goal = ref Aig.true_lit in
  for j = 1 to k do
    goal :=
      Aig.mk_and g !goal
        (Macros.state_equivalence_goal eng spec ~frame:j s_frames.(j))
  done;
  match Ipc.Engine.check eng !goal with
  | Ipc.Engine.Holds -> None
  | Ipc.Engine.Cex cex ->
      let per_frame =
        List.init k (fun j ->
            let j = j + 1 in
            (j, Macros.violations eng spec cex ~frame:j s_frames.(j)))
      in
      Some (cex, per_frame)

let run ?(max_k = 8) ?(max_iterations = 128) ?solver_options
    ?(reset_start = false) spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let s0 = Spec.s_neg_victim spec in
  let steps = ref [] in
  let finish verdict outcome =
    ( {
        Report.procedure =
          (if reset_start then "BMC-from-reset (Alg. 2 property)"
           else "UPEC-SSC-unrolled (Alg. 2)");
        variant = spec.Spec.variant;
        verdict;
        steps = List.rev !steps;
        total_seconds = Unix.gettimeofday () -. t0;
        state_bits = Netlist.state_bits nl;
        svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
      },
      outcome )
  in
  let record iter k s_size cex pers dt =
    steps :=
      {
        Report.st_iter = iter;
        st_k = k;
        st_s_size = s_size;
        st_cex = cex;
        st_pers_hit = pers;
        st_seconds = dt;
      }
      :: !steps
  in
  (* growable array of per-cycle sets *)
  let s_frames = ref [| s0; s0 |] in
  let rec loop iter k =
    if iter > max_iterations then
      finish (Report.Inconclusive "iteration budget exhausted") Gave_up
    else begin
      let it0 = Unix.gettimeofday () in
      let sf = !s_frames in
      match check_once ?solver_options ~reset_start spec sf k with
      | None ->
          let dt = Unix.gettimeofday () -. it0 in
          record iter k (Structural.Svar_set.cardinal sf.(k))
            Structural.Svar_set.empty Structural.Svar_set.empty dt;
          if Structural.Svar_set.equal sf.(k) sf.(k - 1) then
            if reset_start then
              (* a concrete-start (BMC) pass proves nothing beyond the
                 window: report it as such *)
              finish
                (Report.Inconclusive
                   (Printf.sprintf
                      "BMC from reset: no detection within %d cycles (no \
                       inductive meaning)" k))
                (Hold { s_final = sf.(k); k })
            else
              finish
                (Report.Secure { s_final = sf.(k) })
                (Hold { s_final = sf.(k); k })
          else if k >= max_k then
            finish (Report.Inconclusive "max unrolling reached") Gave_up
          else begin
            s_frames := Array.append sf [| sf.(k) |];
            loop (iter + 1) (k + 1)
          end
      | Some (cex, per_frame) ->
          let dt = Unix.gettimeofday () -. it0 in
          let all_cex =
            List.fold_left
              (fun acc (_, v) -> Structural.Svar_set.union acc v)
              Structural.Svar_set.empty per_frame
          in
          let pers_hit =
            Structural.Svar_set.filter (Spec.is_pers spec) all_cex
          in
          record iter k (Structural.Svar_set.cardinal sf.(k)) all_cex pers_hit
            dt;
          if Structural.Svar_set.is_empty all_cex then
            finish
              (Report.Inconclusive
                 "counterexample without S_cex (spurious model)")
              Gave_up
          else if not (Structural.Svar_set.is_empty pers_hit) then
            finish (Report.Vulnerable { s_cex = all_cex; cex }) Found_vulnerable
          else begin
            List.iter
              (fun (j, v) -> sf.(j) <- Structural.Svar_set.diff sf.(j) v)
              per_frame;
            loop (iter + 1) k
          end
    end
  in
  loop 1 1

let conclude ?max_k ?max_iterations ?solver_options spec =
  let report, outcome = run ?max_k ?max_iterations ?solver_options spec in
  match outcome with
  | Found_vulnerable | Gave_up -> report
  | Hold { s_final; k = _ } ->
      let induction =
        Alg1.run ~initial_s:s_final ?max_iterations ?solver_options spec
      in
      {
        induction with
        Report.procedure = "UPEC-SSC-unrolled + induction";
        steps = report.Report.steps @ induction.Report.steps;
        total_seconds =
          report.Report.total_seconds +. induction.Report.total_seconds;
      }
