lib/upec/alg1.mli: Report Rtl Satsolver Spec Structural
