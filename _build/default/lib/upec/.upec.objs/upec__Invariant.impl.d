lib/upec/invariant.ml: Array Bitvec Expr Ipc List Rtl Sim Soc Spec
