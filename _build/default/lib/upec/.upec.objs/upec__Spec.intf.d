lib/upec/spec.mli: Expr Rtl Soc Structural
