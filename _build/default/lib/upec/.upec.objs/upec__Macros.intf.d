lib/upec/macros.mli: Aig Ipc Rtl Spec Structural
