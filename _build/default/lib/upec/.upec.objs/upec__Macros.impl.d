lib/upec/macros.ml: Aig Array Bitblast Bitvec Expr Ipc List Netlist Rtl Soc Spec Structural
