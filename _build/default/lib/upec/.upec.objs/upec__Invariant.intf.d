lib/upec/invariant.mli: Satsolver Spec
