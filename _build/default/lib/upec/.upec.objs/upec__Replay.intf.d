lib/upec/replay.mli: Bitvec Format Ipc Netlist Rtl Structural
