lib/upec/report.mli: Format Ipc Rtl Spec Structural
