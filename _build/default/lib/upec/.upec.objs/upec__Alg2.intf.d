lib/upec/alg2.mli: Report Rtl Satsolver Spec Structural
