lib/upec/alg1.ml: Aig Hashtbl Ipc List Macros Netlist Report Rtl Soc Spec Structural Unix
