lib/upec/report.ml: Format Ipc List Rtl Spec Structural
