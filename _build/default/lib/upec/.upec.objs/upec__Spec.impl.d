lib/upec/spec.ml: Expr List Netlist Option Printf Rtl Soc String Structural
