lib/upec/replay.ml: Bitvec Expr Format Ipc List Netlist Rtl Sim Structural
