lib/upec/alg2.ml: Aig Alg1 Array Ipc List Macros Netlist Printf Report Rtl Soc Spec Structural Unix
