open Rtl
module U = Ipc.Unroller

let check_once ?solver_options spec s =
  let eng =
    Ipc.Engine.create ?solver_options ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  Ipc.Engine.ensure_frames eng 1;
  Macros.assume_env eng spec ~frames:1;
  for f = 0 to 1 do
    Macros.primary_input_constraints eng spec ~frame:f;
    Macros.victim_task_executing eng spec ~frame:f
  done;
  Macros.state_equivalence_assume eng spec ~frame:0 s;
  let goal = Macros.state_equivalence_goal eng spec ~frame:1 s in
  match Ipc.Engine.check eng goal with
  | Ipc.Engine.Holds -> None
  | Ipc.Engine.Cex cex -> Some (cex, Macros.violations eng spec cex ~frame:1 s)

(* Incremental variant: one engine for the whole fixed-point loop. The
   State_Equivalence(S) assumption travels through solver assumptions
   and each iteration's obligation is armed by an activation literal,
   so learnt clauses survive across iterations. *)
let make_incremental_checker ?solver_options spec s0 =
  let eng =
    Ipc.Engine.create ?solver_options ~two_instance:true
      spec.Spec.soc.Soc.Builder.netlist
  in
  Ipc.Engine.ensure_frames eng 1;
  Macros.assume_env eng spec ~frames:1;
  for f = 0 to 1 do
    Macros.primary_input_constraints eng spec ~frame:f;
    Macros.victim_task_executing eng spec ~frame:f
  done;
  let g = Ipc.Engine.graph eng in
  (* per-svar condition literals at both cycles, computed once *)
  let conds = Hashtbl.create 256 in
  Structural.Svar_set.iter
    (fun sv ->
      let eq0 = Macros.sv_condition eng spec ~frame:0 sv in
      let diff1 = Aig.lit_not (Macros.sv_condition eng spec ~frame:1 sv) in
      Hashtbl.replace conds (Structural.svar_name sv) (eq0, diff1))
    s0;
  fun s ->
    let act = Aig.fresh_var g in
    let diffs =
      Structural.Svar_set.fold
        (fun sv acc -> snd (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
        s []
    in
    Ipc.Engine.assume_implication eng act (Aig.mk_or_list g diffs);
    let assumptions =
      act
      :: Structural.Svar_set.fold
           (fun sv acc ->
             fst (Hashtbl.find conds (Structural.svar_name sv)) :: acc)
           s []
    in
    match Ipc.Engine.check_sat eng assumptions with
    | None -> None
    | Some cex -> Some (cex, Macros.violations eng spec cex ~frame:1 s)

let run ?initial_s ?(max_iterations = 64) ?solver_options
    ?(incremental = false) spec =
  let nl = spec.Spec.soc.Soc.Builder.netlist in
  let t0 = Unix.gettimeofday () in
  let s0 =
    match initial_s with Some s -> s | None -> Spec.s_neg_victim spec
  in
  let checker =
    if incremental then make_incremental_checker ?solver_options spec s0
    else check_once ?solver_options spec
  in
  let steps = ref [] in
  let finish verdict =
    {
      Report.procedure =
        (if incremental then "UPEC-SSC (Alg. 1, incremental)"
         else "UPEC-SSC (Alg. 1)");
      variant = spec.Spec.variant;
      verdict;
      steps = List.rev !steps;
      total_seconds = Unix.gettimeofday () -. t0;
      state_bits = Netlist.state_bits nl;
      svar_count = Structural.Svar_set.cardinal (Structural.all_svars nl);
    }
  in
  let rec loop iter s =
    if iter > max_iterations then
      finish (Report.Inconclusive "iteration budget exhausted")
    else begin
      let it0 = Unix.gettimeofday () in
      match checker s with
      | None ->
          steps :=
            {
              Report.st_iter = iter;
              st_k = 1;
              st_s_size = Structural.Svar_set.cardinal s;
              st_cex = Structural.Svar_set.empty;
              st_pers_hit = Structural.Svar_set.empty;
              st_seconds = Unix.gettimeofday () -. it0;
            }
            :: !steps;
          finish (Report.Secure { s_final = s })
      | Some (cex, s_cex) ->
          let pers_hit =
            Structural.Svar_set.filter (Spec.is_pers spec) s_cex
          in
          steps :=
            {
              Report.st_iter = iter;
              st_k = 1;
              st_s_size = Structural.Svar_set.cardinal s;
              st_cex = s_cex;
              st_pers_hit = pers_hit;
              st_seconds = Unix.gettimeofday () -. it0;
            }
            :: !steps;
          if Structural.Svar_set.is_empty s_cex then
            finish
              (Report.Inconclusive
                 "counterexample without S_cex (spurious model)")
          else if not (Structural.Svar_set.is_empty pers_hit) then
            finish (Report.Vulnerable { s_cex; cex })
          else loop (iter + 1) (Structural.Svar_set.diff s s_cex)
    end
  in
  loop 1 s0
