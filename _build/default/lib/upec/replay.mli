open Rtl

(** Replaying formal counterexamples on the concrete simulator.

    A two-instance counterexample is only as trustworthy as the
    bit-blasting and unrolling that produced it. This module closes the
    loop: it loads the counterexample's cycle-0 state and parameters
    into two ordinary simulator instances, drives the recorded inputs,
    and checks that the simulated state trajectory matches the
    counterexample frame by frame. A mismatch would indicate a bug in
    the formal stack (or a non-deterministic netlist). *)

type mismatch = {
  mm_instance : Ipc.Unroller.instance;
  mm_frame : int;
  mm_svar : Structural.svar;
  mm_expected : Bitvec.t;  (** value in the counterexample *)
  mm_simulated : Bitvec.t;
}

val replay : Netlist.t -> Ipc.Cex.t -> mismatch list
(** Empty when the simulator reproduces the counterexample exactly. *)

val check : Netlist.t -> Ipc.Cex.t -> bool
(** [check nl cex] is [replay nl cex = []]. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
