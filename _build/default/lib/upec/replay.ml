open Rtl

type mismatch = {
  mm_instance : Ipc.Unroller.instance;
  mm_frame : int;
  mm_svar : Structural.svar;
  mm_expected : Bitvec.t;
  mm_simulated : Bitvec.t;
}

let load_state nl eng cex inst =
  List.iter
    (fun (s : Expr.signal) ->
      Sim.Engine.set_param eng s.Expr.s_name (Ipc.Cex.param_value cex s))
    nl.Netlist.params;
  Structural.Svar_set.iter
    (fun sv ->
      let v = Ipc.Cex.svar_value cex inst ~frame:0 sv in
      match sv with
      | Structural.Sreg s -> Sim.Engine.poke_reg eng s.Expr.s_name v
      | Structural.Smem (m, i) -> Sim.Engine.poke_mem eng m.Expr.m_name i v)
    (Structural.all_svars nl)

let replay nl cex =
  let k = Ipc.Cex.frames cex in
  let instances =
    if Ipc.Cex.two_instance cex then [ Ipc.Unroller.A; Ipc.Unroller.B ]
    else [ Ipc.Unroller.A ]
  in
  let mismatches = ref [] in
  List.iter
    (fun inst ->
      let eng = Sim.Engine.create nl in
      load_state nl eng cex inst;
      for frame = 1 to k do
        List.iter
          (fun (s : Expr.signal) ->
            Sim.Engine.set_input eng s.Expr.s_name
              (Ipc.Cex.input_value cex inst ~frame:(frame - 1) s))
          nl.Netlist.inputs;
        Sim.Engine.step eng;
        Structural.Svar_set.iter
          (fun sv ->
            let expected = Ipc.Cex.svar_value cex inst ~frame sv in
            let simulated =
              match sv with
              | Structural.Sreg s -> Sim.Engine.reg_value eng s.Expr.s_name
              | Structural.Smem (m, i) ->
                  Sim.Engine.mem_value eng m.Expr.m_name i
            in
            if not (Bitvec.equal expected simulated) then
              mismatches :=
                {
                  mm_instance = inst;
                  mm_frame = frame;
                  mm_svar = sv;
                  mm_expected = expected;
                  mm_simulated = simulated;
                }
                :: !mismatches)
          (Structural.all_svars nl)
      done)
    instances;
  List.rev !mismatches

let check nl cex = replay nl cex = []

let pp_mismatch fmt mm =
  Format.fprintf fmt "instance %a, cycle %d, %a: cex=%a sim=%a"
    Ipc.Unroller.pp_instance mm.mm_instance mm.mm_frame Structural.pp_svar
    mm.mm_svar Bitvec.pp mm.mm_expected Bitvec.pp mm.mm_simulated
