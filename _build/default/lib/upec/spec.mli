open Rtl

(** Problem specification for a UPEC-SSC run: the SoC under
    verification, the assumed security policy, and the state-variable
    classification of Sec. 3.4.

    The {e vulnerable} variant assumes only the threat model: the
    victim's protected range is any well-formed memory range, and the
    spying IPs' configured ranges never intersect it (spying IPs have no
    direct access to victim memory). The {e secure} variant additionally
    assumes the Sec. 4.2 countermeasure: the protected range lies in the
    private memory, and the DMA (the only other IP with a private-memory
    port) is configured — by verified firmware — to stay out of the
    private region. *)

type variant = Vulnerable | Secure

(** What counts as persistent retrievable state. [Full_pers] is the
    paper's S_pers (all IP configuration/status/progress registers and
    attacker-accessible memory cells). [Memory_only] restricts S_pers to
    memory cells — the "no timer needed" reading of Sec. 4.1, where the
    attacker retrieves the footprint exclusively from the primed memory
    region; with it, detection requires the longer unrolling the paper
    describes. *)
type pers_model = Full_pers | Memory_only

type t = {
  soc : Soc.Builder.t;
  variant : variant;
  pers_model : pers_model;
}

val make : ?pers_model:pers_model -> Soc.Builder.t -> variant -> t
(** Requires a formal-mode SoC (raises [Invalid_argument] otherwise). *)

val s_neg_victim : t -> Structural.Svar_set.t
(** All state variables except the CPU's (Def. 1; victim memory cells
    are excluded per-counterexample through the symbolic range guard,
    not statically). *)

val is_pers : t -> Structural.svar -> bool
(** Membership in S_pers (Def. 2), up to the symbolic range guard for
    memory cells. *)

val in_range : t -> Expr.t -> Expr.t
(** [in_range t addr] is 1 iff [addr] (a word address) lies within the
    symbolic protected range. *)

val victim_cell_guard : t -> Structural.svar -> Expr.t option
(** For a bus-addressable memory element: a 1-bit expression over the
    symbolic range parameters that is true iff the cell belongs to the
    victim's protected range. [None] for other state variables. *)

(** {1 Assumed environment (Expr-level, per instance and frame)} *)

val range_wellformed : t -> Expr.t
(** The protected range is non-empty, ordered, and contained in one
    mapped memory window (public or private for [Vulnerable], private
    for [Secure]). *)

val threat_model : t -> Expr.t
(** Spying-IP configured ranges do not intersect the protected range
    and do not wrap around the address space. *)

val policy : t -> Expr.t
(** The variant's firmware policy ([Expr.vdd] for [Vulnerable]; the
    countermeasure constraints for [Secure]). *)

val invariants : t -> (string * Expr.t) list
(** Reachability invariants excluding false counterexamples from the
    symbolic starting state (Sec. 3.4): response-routing consistency for
    every SRAM bank, and (for [Secure]) the absence of DMA responses on
    the private crossbar. Each is 1-inductive under the assumptions
    above — checked by {!Invariant.check_inductive} in the tests. *)

val assumed_env : t -> Expr.t
(** Conjunction of well-formedness, threat model, policy and
    invariants. *)
