(** Checking the reachability invariants of Sec. 3.4.

    IPC properties over a symbolic starting state can produce false
    counterexamples from unreachable states; the fix is to assume
    invariants that exclude them. An assumed invariant is sound when it
    (a) holds in the reset state and (b) is 1-inductive under the same
    environment assumptions the UPEC property makes. This module checks
    both, so every invariant baked into {!Spec.invariants} is itself
    verified rather than trusted. *)

val check_inductive :
  ?solver_options:Satsolver.Solver.options ->
  Spec.t ->
  (string * bool) list
(** For each invariant: assume the environment and all invariants at
    cycle 0 and prove the invariant at cycle 1 (single instance,
    symbolic start). *)

val check_base : Spec.t -> (string * bool) list
(** Evaluate each invariant in the reset state under a sample of
    protected-range parameter valuations. *)

val all_sound : ?solver_options:Satsolver.Solver.options -> Spec.t -> bool
