open Rtl

type variant = Vulnerable | Secure

type pers_model = Full_pers | Memory_only

type t = {
  soc : Soc.Builder.t;
  variant : variant;
  pers_model : pers_model;
}

let make ?(pers_model = Full_pers) soc variant =
  if not soc.Soc.Builder.mode_formal then
    invalid_arg "Upec.Spec.make: requires a formal-mode SoC";
  { soc; variant; pers_model }

let s_neg_victim t =
  Structural.Svar_set.filter
    (fun sv -> not (Soc.Builder.is_cpu t.soc sv))
    (Structural.all_svars t.soc.Soc.Builder.netlist)

let is_pers t sv =
  match t.pers_model with
  | Full_pers -> Soc.Builder.is_persistent t.soc sv
  | Memory_only -> (
      match sv with
      | Structural.Smem (m, _) -> t.soc.Soc.Builder.cell_addr m 0 <> None
      | Structural.Sreg _ -> false)

(* ---- symbolic protected range ---- *)

let params t =
  let base = Option.get t.soc.Soc.Builder.victim_base in
  let limit = Option.get t.soc.Soc.Builder.victim_limit in
  (Expr.param base, Expr.param limit)

let in_range t addr =
  let base, limit = params t in
  Expr.(and_list [ base <=: addr; addr <=: limit ])

let victim_cell_guard t sv =
  match sv with
  | Structural.Smem (m, i) -> (
      match t.soc.Soc.Builder.cell_addr m i with
      | Some a ->
          let aw = t.soc.Soc.Builder.soc_cfg.Soc.Config.addr_width in
          Some (in_range t (Expr.of_int ~width:aw a))
      | None -> None)
  | Structural.Sreg _ -> None

(* ---- assumed environment ---- *)

let cfg t = t.soc.Soc.Builder.soc_cfg

let window t region =
  let c = cfg t in
  let base = Soc.Memmap.region_base c region in
  let words =
    match region with
    | Soc.Memmap.Pub -> Soc.Memmap.pub_words c
    | Soc.Memmap.Priv -> Soc.Memmap.priv_words c
    | Soc.Memmap.Apb -> invalid_arg "Spec.window"
  in
  (base, base + words - 1)

let range_in_window t (lo, hi) =
  let aw = (cfg t).Soc.Config.addr_width in
  let base, limit = params t in
  Expr.(
    and_list
      [ of_int ~width:aw lo <=: base; limit <=: of_int ~width:aw hi ])

let range_wellformed t =
  let base, limit = params t in
  let ordered = Expr.(base <=: limit) in
  let contained =
    match t.variant with
    | Secure -> range_in_window t (window t Soc.Memmap.Priv)
    | Vulnerable ->
        Expr.(
          range_in_window t (window t Soc.Memmap.Pub)
          |: range_in_window t (window t Soc.Memmap.Priv))
  in
  Expr.(ordered &: contained)

(* [base, base+len) as (ext_base, ext_end) in aw+1 bits, plus the
   no-wrap condition ext_end <= 2^aw *)
let ext_range t (r : Soc.Builder.ip_range) =
  let aw = (cfg t).Soc.Config.addr_width in
  let eb = Expr.zero_extend r.Soc.Builder.ir_base (aw + 1) in
  let el = Expr.zero_extend r.Soc.Builder.ir_len (aw + 1) in
  let e_end = Expr.(eb +: el) in
  let no_wrap = Expr.(e_end <=: of_int ~width:(aw + 1) (1 lsl aw)) in
  (eb, e_end, no_wrap)

let disjoint_from_victim t (r : Soc.Builder.ip_range) =
  let aw = (cfg t).Soc.Config.addr_width in
  let base, limit = params t in
  let eb, e_end, no_wrap = ext_range t r in
  let evb = Expr.zero_extend base (aw + 1) in
  let evl = Expr.zero_extend limit (aw + 1) in
  Expr.(no_wrap &: (e_end <=: evb |: (evl <: eb)))

let threat_model t =
  Expr.and_list (List.map (disjoint_from_victim t) t.soc.Soc.Builder.ip_ranges)

let dma_ranges t =
  List.filter
    (fun (r : Soc.Builder.ip_range) ->
      String.length r.Soc.Builder.ir_name >= 4
      && String.sub r.Soc.Builder.ir_name 0 4 = "dma.")
    t.soc.Soc.Builder.ip_ranges

let range_avoids_window t (r : Soc.Builder.ip_range) (lo, hi) =
  let aw = (cfg t).Soc.Config.addr_width in
  let eb, e_end, no_wrap = ext_range t r in
  Expr.(
    no_wrap
    &: (e_end <=: of_int ~width:(aw + 1) lo
       |: (of_int ~width:(aw + 1) (hi + 1) <=: eb)))

let policy t =
  match t.variant with
  | Vulnerable -> Expr.vdd
  | Secure ->
      if (cfg t).Soc.Config.dma_on_private then
        let w = window t Soc.Memmap.Priv in
        Expr.and_list
          (List.map (fun r -> range_avoids_window t r w) (dma_ranges t))
      else Expr.vdd

(* ---- invariants (Sec. 3.4) ---- *)

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let bank_invariants t ~xbar ~masters ~region ~bank_name ~bank =
  let nl = t.soc.Soc.Builder.netlist in
  let c = cfg t in
  let aw = c.Soc.Config.addr_width in
  match List.find_index (String.equal "dma") masters with
  | None -> []
  | Some dma_idx -> (
      try
        let reg name = Expr.reg (Netlist.find_reg nl name).Netlist.rd_signal in
        let rv = reg (Printf.sprintf "%s.%s.resp_valid" xbar bank_name) in
        let rm = reg (Printf.sprintf "%s.%s.resp_master" xbar bank_name) in
        let raddr = reg (Printf.sprintf "%s.raddr_q" bank_name) in
        let mw = Expr.width rm in
        let resp_to_dma = Expr.(rv &: (rm ==: of_int ~width:mw dma_idx)) in
        let banks =
          match region with
          | Soc.Memmap.Pub -> c.Soc.Config.pub_banks
          | Soc.Memmap.Priv -> c.Soc.Config.priv_banks
          | Soc.Memmap.Apb -> 1
        in
        let bb = log2 banks in
        let global =
          Expr.(
            of_int ~width:aw (Soc.Memmap.region_base c region + bank)
            +: shl (uresize raddr aw) (of_int ~width:aw bb))
        in
        let inv2 =
          ( Printf.sprintf "%s.%s: dma responses outside protected range" xbar
              bank_name,
            Expr.(~:(resp_to_dma &: in_range t global)) )
        in
        let inv1 =
          if t.variant = Secure && region = Soc.Memmap.Priv then
            [
              ( Printf.sprintf "%s.%s: no dma responses on private xbar" xbar
                  bank_name,
                Expr.(~:resp_to_dma) );
            ]
          else []
        in
        inv2 :: inv1
      with Not_found -> [])

(* Response-path consistency for the DMA (the only IP that consumes
   read data): while the DMA is waiting for a read response, the slave
   its outstanding address decodes to must be holding exactly that
   response — valid, routed to the DMA, with the read index latched from
   the outstanding address. Inductive per instance (a grant sets all
   three; without a grant there is no response and the FSM cannot be
   entering the wait state). Without it, removing transient response
   registers from S lets spurious response differences flow into the
   persistent [dma.data_q]. *)
let dma_response_invariants t =
  match t.soc.Soc.Builder.dma with
  | None -> []
  | Some dma ->
      let nl = t.soc.Soc.Builder.netlist in
      let c = cfg t in
      let reg name = Expr.reg (Netlist.find_reg nl name).Netlist.rd_signal in
      let waiting =
        Expr.(
          Soc.Dma.state_reg dma ==: of_int ~width:2 Soc.Dma.st_rd_wait)
      in
      let raddr = Expr.(Soc.Dma.src_reg dma +: Soc.Dma.cnt_reg dma) in
      (* companion invariant: the wait state is only ever entered by a
         granted read, which requires an active engine; a symbolic state
         with [rd_wait] but an idle engine would sit in the wait state
         forever while the response routing moves on *)
      let wait_implies_active =
        ( "dma: read-wait implies active transfer",
          Expr.(
            ~:waiting
            |: (Soc.Dma.busy_reg dma
               &: (Soc.Dma.cnt_reg dma <: Soc.Dma.len_reg dma))) )
      in
      let slave_inv ~xbar ~masters ~slave_name ~matches ~idx_reg ~expected_idx =
        match List.find_index (String.equal "dma") masters with
        | None -> []
        | Some dma_idx -> (
            try
              let rv = reg (Printf.sprintf "%s.%s.resp_valid" xbar slave_name) in
              let rm =
                reg (Printf.sprintf "%s.%s.resp_master" xbar slave_name)
              in
              let mw = Expr.width rm in
              let body =
                Expr.and_list
                  [
                    rv;
                    Expr.(rm ==: of_int ~width:mw dma_idx);
                    Expr.(idx_reg ==: expected_idx);
                  ]
              in
              let resp_to_dma =
                Expr.(rv &: (rm ==: of_int ~width:mw dma_idx))
              in
              [
                ( Printf.sprintf "%s.%s: dma read-wait response consistency"
                    xbar slave_name,
                  Expr.(~:(waiting &: matches) |: body) );
                (* dual: while the DMA waits, no *other* slave may hold a
                   response routed to it (a write response always leaves
                   the wait state, so this is inductive) *)
                ( Printf.sprintf "%s.%s: no stale dma responses" xbar
                    slave_name,
                  Expr.(~:(and_list [ waiting; ~:matches; resp_to_dma ])) );
              ]
            with Not_found -> [])
      in
      let sram_invs xbar masters region banks prefix =
        List.concat
          (List.init banks (fun i ->
               let name = Printf.sprintf "%s%d" prefix i in
               let idx_reg = reg (name ^ ".raddr_q") in
               let expected =
                 Expr.uresize (Soc.Memmap.sram_index c raddr region)
                   (Expr.width idx_reg)
               in
               slave_inv ~xbar ~masters ~slave_name:name
                 ~matches:(Soc.Memmap.decode_sram_select c raddr region ~bank:i)
                 ~idx_reg ~expected_idx:expected))
      in
      let apb_invs =
        let periphs =
          (if c.Soc.Config.with_timer then [ ("timer.cfg", Soc.Memmap.Timer) ]
           else [])
          @ [ ("dma.cfg", Soc.Memmap.Dma) ]
          @ (if c.Soc.Config.with_hwpe then [ ("hwpe.cfg", Soc.Memmap.Hwpe) ]
             else [])
          @
          if c.Soc.Config.with_uart then [ ("uart.cfg", Soc.Memmap.Uart) ]
          else []
        in
        List.concat_map
          (fun (name, periph) ->
            let idx_reg = reg (name ^ ".ridx_q") in
            slave_inv ~xbar:"xbar_pub"
              ~masters:t.soc.Soc.Builder.pub_masters ~slave_name:name
              ~matches:(Soc.Memmap.decode_periph_select c raddr periph)
              ~idx_reg
              ~expected_idx:(Soc.Memmap.periph_reg_index c raddr))
          periphs
      in
      wait_implies_active
      :: sram_invs "xbar_pub" t.soc.Soc.Builder.pub_masters Soc.Memmap.Pub
           c.Soc.Config.pub_banks "pub"
      @ (if c.Soc.Config.dma_on_private then
           sram_invs "xbar_priv" t.soc.Soc.Builder.priv_masters Soc.Memmap.Priv
             c.Soc.Config.priv_banks "priv"
         else [])
      @ apb_invs

let invariants t =
  let c = cfg t in
  let pub =
    List.concat
      (List.init c.Soc.Config.pub_banks (fun i ->
           bank_invariants t ~xbar:"xbar_pub"
             ~masters:t.soc.Soc.Builder.pub_masters ~region:Soc.Memmap.Pub
             ~bank_name:(Printf.sprintf "pub%d" i) ~bank:i))
  in
  let priv =
    List.concat
      (List.init c.Soc.Config.priv_banks (fun i ->
           bank_invariants t ~xbar:"xbar_priv"
             ~masters:t.soc.Soc.Builder.priv_masters ~region:Soc.Memmap.Priv
             ~bank_name:(Printf.sprintf "priv%d" i) ~bank:i))
  in
  pub @ priv @ dma_response_invariants t

let assumed_env t =
  Expr.and_list
    ([ range_wellformed t; threat_model t; policy t ]
    @ List.map snd (invariants t))
