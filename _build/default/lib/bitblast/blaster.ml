open Rtl

type vec = Aig.lit array

type env = {
  lookup_input : Expr.signal -> vec;
  lookup_param : Expr.signal -> vec;
  lookup_reg : Expr.signal -> vec;
  lookup_mem : Expr.mem -> int -> vec;
}

let const_vec b =
  Array.init (Bitvec.width b) (fun i ->
      if Bitvec.bit b i then Aig.true_lit else Aig.false_lit)

let fresh_vec g w = Array.init w (fun _ -> Aig.fresh_var g)
let v_and g a b = Array.map2 (Aig.mk_and g) a b
let v_or g a b = Array.map2 (Aig.mk_or g) a b
let v_xor g a b = Array.map2 (Aig.mk_xor g) a b
let v_not _g a = Array.map Aig.lit_not a

let full_adder g a b cin =
  let s = Aig.mk_xor g (Aig.mk_xor g a b) cin in
  let cout =
    Aig.mk_or g (Aig.mk_and g a b) (Aig.mk_and g cin (Aig.mk_xor g a b))
  in
  (s, cout)

let add_with_carry g a b cin =
  let w = Array.length a in
  let out = Array.make w Aig.false_lit in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = full_adder g a.(i) b.(i) !carry in
    out.(i) <- s;
    carry := c
  done;
  (out, !carry)

let v_add g a b = fst (add_with_carry g a b Aig.false_lit)
let v_sub g a b = fst (add_with_carry g a (v_not g b) Aig.true_lit)
let v_neg g a = v_sub g (const_vec (Bitvec.zero (Array.length a))) a

let v_mux g sel a b = Array.map2 (Aig.mk_mux g sel) a b

let v_mul g a b =
  let w = Array.length a in
  let acc = ref (const_vec (Bitvec.zero w)) in
  for i = 0 to w - 1 do
    (* partial product: (a << i) & replicate b.(i) *)
    let shifted =
      Array.init w (fun j -> if j < i then Aig.false_lit else a.(j - i))
    in
    let pp = Array.map (fun bit -> Aig.mk_and g bit b.(i)) shifted in
    acc := v_add g !acc pp
  done;
  !acc

let v_eq g a b =
  Aig.mk_and_list g (Array.to_list (Array.map2 (Aig.mk_xnor g) a b))

let v_ult g a b =
  (* a < b  <=>  borrow out of a - b *)
  let _, carry = add_with_carry g a (v_not g b) Aig.true_lit in
  Aig.lit_not carry

let v_ule g a b = Aig.lit_not (v_ult g b a)

let v_slt g a b =
  let w = Array.length a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  (* different signs: a < b iff a negative; same signs: unsigned compare *)
  Aig.mk_mux g (Aig.mk_xor g sa sb) sa (v_ult g a b)

let v_sle g a b = Aig.lit_not (v_slt g b a)

let v_eq_const g a value =
  Aig.mk_and_list g
    (List.init (Array.length a) (fun i ->
         if value land (1 lsl i) <> 0 then a.(i) else Aig.lit_not a.(i)))

(* Barrel shifter: stage k shifts by 2^k when the k-th bit of the shift
   amount is set. Shift amounts >= width must produce zero (or sign),
   which the high-amount guard handles. *)
let shifter g ~fill a amount ~left =
  let w = Array.length a in
  let stages = Array.length amount in
  let result = ref (Array.copy a) in
  for k = 0 to stages - 1 do
    let dist = 1 lsl k in
    if dist < 2 * w then begin
      let shifted =
        Array.init w (fun i ->
            if left then if i >= dist then !result.(i - dist) else fill
            else if i + dist < w then !result.(i + dist)
            else fill)
      in
      result := v_mux g amount.(k) shifted !result
    end
    else
      (* shifting by >= 2w wipes everything if the bit is set *)
      result :=
        v_mux g amount.(k) (Array.make w fill) !result
  done;
  !result

let v_shl g a b = shifter g ~fill:Aig.false_lit a b ~left:true
let v_lshr g a b = shifter g ~fill:Aig.false_lit a b ~left:false

let v_ashr g a b =
  let w = Array.length a in
  shifter g ~fill:a.(w - 1) a b ~left:false

let v_redand g a = Aig.mk_and_list g (Array.to_list a)
let v_redor g a = Aig.mk_or_list g (Array.to_list a)
let v_redxor g a = Array.fold_left (Aig.mk_xor g) Aig.false_lit a

let blaster g env =
  let memo : (int, vec) Hashtbl.t = Hashtbl.create 256 in
  let rec go e =
    match Hashtbl.find_opt memo (Expr.tag e) with
    | Some v -> v
    | None ->
        let v = compute e in
        assert (Array.length v = Expr.width e);
        Hashtbl.add memo (Expr.tag e) v;
        v
  and compute e =
    match Expr.node e with
    | Expr.Const b -> const_vec b
    | Expr.Input s -> env.lookup_input s
    | Expr.Param s -> env.lookup_param s
    | Expr.Reg s -> env.lookup_reg s
    | Expr.Memread (m, addr) ->
        let addr_bits = go addr in
        let zero = const_vec (Bitvec.zero m.Expr.m_data_width) in
        let rec select i acc =
          if i >= m.Expr.m_depth then acc
          else
            let hit = v_eq_const g addr_bits i in
            select (i + 1) (v_mux g hit (env.lookup_mem m i) acc)
        in
        select 0 zero
    | Expr.Unop (op, a) -> (
        let av = go a in
        match op with
        | Expr.Not -> v_not g av
        | Expr.Neg -> v_neg g av
        | Expr.Redand -> [| v_redand g av |]
        | Expr.Redor -> [| v_redor g av |]
        | Expr.Redxor -> [| v_redxor g av |])
    | Expr.Binop (op, a, b) -> (
        let av = go a and bv = go b in
        match op with
        | Expr.Add -> v_add g av bv
        | Expr.Sub -> v_sub g av bv
        | Expr.Mul -> v_mul g av bv
        | Expr.And -> v_and g av bv
        | Expr.Or -> v_or g av bv
        | Expr.Xor -> v_xor g av bv
        | Expr.Eq -> [| v_eq g av bv |]
        | Expr.Ne -> [| Aig.lit_not (v_eq g av bv) |]
        | Expr.Ult -> [| v_ult g av bv |]
        | Expr.Ule -> [| v_ule g av bv |]
        | Expr.Slt -> [| v_slt g av bv |]
        | Expr.Sle -> [| v_sle g av bv |]
        | Expr.Shl -> v_shl g av bv
        | Expr.Lshr -> v_lshr g av bv
        | Expr.Ashr -> v_ashr g av bv)
    | Expr.Mux (sel, a, b) ->
        let sv = go sel in
        v_mux g sv.(0) (go a) (go b)
    | Expr.Concat (hi, lo) -> Array.append (go lo) (go hi)
    | Expr.Slice (a, hi, lo) -> Array.sub (go a) lo (hi - lo + 1)
  in
  go
