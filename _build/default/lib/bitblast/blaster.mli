open Rtl

(** Word-level to bit-level lowering.

    Translates {!Rtl.Expr} trees into vectors of AIG literals. Bit 0 of
    a vector is the least significant bit. Leaves (inputs, parameters,
    registers, memory elements) are resolved through an environment so
    the unroller can bind them per time frame and per design instance.
    Memory reads out of range (address [>= depth]) produce zero, in
    agreement with the simulator. *)

type vec = Aig.lit array

type env = {
  lookup_input : Expr.signal -> vec;
  lookup_param : Expr.signal -> vec;
  lookup_reg : Expr.signal -> vec;
  lookup_mem : Expr.mem -> int -> vec;
}

val blaster : Aig.t -> env -> Expr.t -> vec
(** [blaster g env] returns a memoising translation function (one memo
    table per call to [blaster]; discard it when the environment must
    change). *)

(** {1 Word-level primitives over vectors}

    Exposed for tests and for building constraints directly at the AIG
    level. *)

val const_vec : Bitvec.t -> vec
val fresh_vec : Aig.t -> int -> vec
val v_and : Aig.t -> vec -> vec -> vec
val v_or : Aig.t -> vec -> vec -> vec
val v_xor : Aig.t -> vec -> vec -> vec
val v_not : Aig.t -> vec -> vec
val v_add : Aig.t -> vec -> vec -> vec
val v_sub : Aig.t -> vec -> vec -> vec
val v_neg : Aig.t -> vec -> vec
val v_mul : Aig.t -> vec -> vec -> vec
val v_eq : Aig.t -> vec -> vec -> Aig.lit
val v_ult : Aig.t -> vec -> vec -> Aig.lit
val v_ule : Aig.t -> vec -> vec -> Aig.lit
val v_slt : Aig.t -> vec -> vec -> Aig.lit
val v_sle : Aig.t -> vec -> vec -> Aig.lit
val v_mux : Aig.t -> Aig.lit -> vec -> vec -> vec
val v_shl : Aig.t -> vec -> vec -> vec
val v_lshr : Aig.t -> vec -> vec -> vec
val v_ashr : Aig.t -> vec -> vec -> vec
val v_eq_const : Aig.t -> vec -> int -> Aig.lit
