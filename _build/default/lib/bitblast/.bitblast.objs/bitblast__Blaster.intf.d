lib/bitblast/blaster.mli: Aig Bitvec Expr Rtl
