lib/bitblast/blaster.ml: Aig Array Bitvec Expr Hashtbl List Rtl
