lib/scenarios/attacks.ml: Isa List Rtl Sim Soc
