lib/scenarios/attacks.mli: Soc
