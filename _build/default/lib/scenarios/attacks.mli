(** End-to-end attack firmware scenarios, shared by the runnable
    examples and the benchmark harness (experiments E1 and E7).

    Both scenarios follow the three-phase structure of Sec. 2.2
    (preparation / recording / retrieval), realised as one firmware
    image whose phases are separated by the task switch points. The
    victim's secret is its number of memory accesses [n]; the victim
    phase is padded to a fixed cycle budget so only contention — not
    code length — reaches the attacker. *)

type dma_timer_reading = {
  dt_accesses : int;  (** victim accesses n *)
  dt_timer : int;  (** timer value read by the attacker *)
  dt_cycles : int;  (** total cycles to halt *)
}

val dma_timer : ?cfg:Soc.Config.t -> int list -> dma_timer_reading list
(** The Fig. 1 attack: DMA transfer + timer auto-start. A lower timer
    reading at the retrieval point means the DMA finished later, i.e.
    more victim accesses won arbitration. *)

type hwpe_reading = {
  hw_accesses : int;
  hw_zero_cells : int;
      (** zero cells above the HWPE frontier at retrieval: higher means
          the accelerator made less progress *)
}

val hwpe_memory : ?cfg:Soc.Config.t -> int list -> hwpe_reading list
(** The Sec. 4.1 variant: accelerator progressively overwriting a
    primed region; retrieval scans the footprint. No timer access. *)

val hwpe_memory_with_noise :
  ?cfg:Soc.Config.t -> noisy_timer:bool -> int list -> hwpe_reading list
(** Same attack; [noisy_timer] documents that the attack is oblivious
    to timer countermeasures (the flag exists for the E7 bench matrix
    and has no effect on the readings — the attack never reads the
    timer). *)
