open Isa.Asm
open Isa.Encoding

type dma_timer_reading = { dt_accesses : int; dt_timer : int; dt_cycles : int }
type hwpe_reading = { hw_accesses : int; hw_zero_cells : int }

let byte_of cfg p reg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.periph_reg_addr cfg p reg)

let pub_base cfg =
  Soc.Memmap.byte_addr cfg (Soc.Memmap.region_base cfg Soc.Memmap.Pub)

let mmio_write addr value = [ Li (10, addr); Li (11, value); I (Sw (11, 10, 0)) ]

(* The victim performs [n] loads from [target] and then spins; its time
   slice ends when the scheduler (the harness, standing in for a
   timer-interrupt driven RTOS) preempts it, so the slice length is
   fixed by construction and only contention — not victim code length —
   is observable afterwards. *)
let victim_section ~target ~n =
  [
    L "victim";
    Li (12, target);
    Li (13, n);
    Beq_l (13, 0, "victim_spin");
    L "victim_loop";
    I (Lw (15, 12, 0));
    I (Addi (13, 13, -1));
    Bne_l (13, 0, "victim_loop");
    L "victim_spin";
    J "victim_spin";
  ]

(* Preemptive scheduler emulation: force the core to a label by loading
   a fresh pipeline state (bubble fetch at the entry, memory FSM idle,
   halt flag cleared). *)
let context_switch eng symbols label =
  let entry = List.assoc label symbols in
  Sim.Engine.poke_reg eng "cpu.halted" (Rtl.Bitvec.zero 1);
  Sim.Engine.poke_reg eng "cpu.valid" (Rtl.Bitvec.zero 1);
  Sim.Engine.poke_reg eng "cpu.mem_state" (Rtl.Bitvec.zero 2);
  Sim.Engine.poke_reg eng "cpu.if_pc" (Rtl.Bitvec.of_int ~width:32 entry)

let run_to_halt ?(max_cycles = 60000) eng =
  let rec go cycles =
    if cycles > max_cycles then failwith "Attacks: firmware did not halt"
    else if Rtl.Bitvec.to_int (Sim.Engine.peek_output eng "halted") = 1 then
      cycles
    else begin
      Sim.Engine.step eng;
      go (cycles + 1)
    end
  in
  go 0

(* Run the three-phase schedule: preparation to its EBREAK, the victim
   for exactly [slice] cycles, then retrieval to its EBREAK. Returns
   (engine, total cycles). *)
let run_schedule cfg ~rom ~symbols ~slice =
  let soc = Soc.Builder.build cfg (Soc.Builder.Sim { rom }) in
  let eng = Sim.Engine.create soc.Soc.Builder.netlist in
  let prep_cycles = run_to_halt eng in
  context_switch eng symbols "victim";
  Sim.Engine.run eng slice;
  context_switch eng symbols "retrieval";
  let retrieval_cycles = run_to_halt eng in
  (eng, prep_cycles + slice + retrieval_cycles)

(* ---- E1: DMA + timer ---- *)

let dma_timer_program cfg ~n =
  mmio_write (byte_of cfg Soc.Memmap.Timer 0) 2
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 1) 0
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 2) 64
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 3) 24
  @ mmio_write (byte_of cfg Soc.Memmap.Dma 0) 1
  @ [ I Ebreak ]
  @ victim_section ~target:(pub_base cfg) ~n
  @ [
      L "retrieval";
      Li (10, byte_of cfg Soc.Memmap.Timer 1);
      I (Lw (28, 10, 0));
      I Ebreak;
    ]

let dma_timer ?(cfg = Soc.Config.sim_default) ns =
  List.map
    (fun n ->
      let rom, symbols = assemble_with_symbols (dma_timer_program cfg ~n) in
      let eng, cycles = run_schedule cfg ~rom ~symbols ~slice:120 in
      {
        dt_accesses = n;
        dt_timer = Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" 28);
        dt_cycles = cycles;
      })
    ns

(* ---- E7: HWPE + memory ---- *)

let primed_words = 1024
let primed_word_base = 512

let hwpe_program cfg ~n =
  let region = pub_base cfg + (primed_word_base * 4) in
  [
    Li (5, region);
    Li (6, primed_words);
    L "prime";
    I (Sw (0, 5, 0));
    I (Addi (5, 5, 4));
    I (Addi (6, 6, -1));
    Bne_l (6, 0, "prime");
  ]
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 1) primed_word_base
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 2) primed_words
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 3) 1
  @ mmio_write (byte_of cfg Soc.Memmap.Hwpe 0) 1
  @ [ I Ebreak ]
  @ victim_section ~target:region ~n
  @ [
      L "retrieval";
      Li (5, region + ((primed_words - 1) * 4));
      Li (6, primed_words);
      Li (28, 0);
      L "scan";
      I (Lw (7, 5, 0));
      Bne_l (7, 0, "found");
      I (Addi (28, 28, 1));
      I (Addi (5, 5, -4));
      I (Addi (6, 6, -1));
      Bne_l (6, 0, "scan");
      L "found";
      I Ebreak;
    ]

let hwpe_memory ?(cfg = Soc.Config.sim_default) ns =
  List.map
    (fun n ->
      let rom, symbols = assemble_with_symbols (hwpe_program cfg ~n) in
      let eng, _ = run_schedule cfg ~rom ~symbols ~slice:640 in
      {
        hw_accesses = n;
        hw_zero_cells =
          Rtl.Bitvec.to_int (Sim.Engine.mem_value eng "cpu.regs" 28);
      })
    ns

let hwpe_memory_with_noise ?cfg ~noisy_timer ns =
  ignore noisy_timer;
  hwpe_memory ?cfg ns
