open Rtl

(** Information Flow Tracking instrumentation at the RTL (the baseline
    of the Sec. 5 comparison; gate-precise rules for bitwise operators,
    conservative word-level rules for arithmetic, and classic control
    smearing for muxes, shifts and memory addressing).

    For every signal a shadow vector of the same width carries one taint
    bit per data bit. Shadow memory cells are individual registers so a
    tainted write address can conservatively taint a whole array. *)

type shadow

val instrument : Netlist.t -> taint_inputs:string list -> Netlist.t * shadow
(** [instrument nl ~taint_inputs] returns a netlist containing the
    original design plus its shadow logic, and a handle for reading
    taints. Shadow state is named ["<name>#t"]. Inputs listed in
    [taint_inputs] get fresh shadow inputs (the environment decides what
    is tainted); all other inputs and all parameters are untainted.
    Every original output gains a ["<name>#t"] shadow output. *)

val taint_of_expr : shadow -> Expr.t -> Expr.t
(** Taint vector of a combinational expression over the instrumented
    design's state. *)

val shadow_of_svar : shadow -> Structural.svar -> Expr.t option
(** The taint vector of a state variable of the {e original} netlist;
    [None] for cells of read-only memories (always untainted). *)

val shadow_input : shadow -> Expr.signal -> Expr.t option
(** The shadow input created for a tainted input signal. *)
