open Rtl

(** Formal taint reachability: the IFT formulation of the timing
    side-channel question (Sec. 5 of the paper argues this baseline is
    ill-suited; this module lets the benches quantify that claim).

    The victim's protected accesses are the taint source: whenever the
    victim port carries an address inside the symbolic protected range,
    the address and data taints are raised. The question asked is
    whether, starting from a taint-free system, taint can reach any
    persistent attacker-visible state within [k] cycles.

    Unlike UPEC-SSC the verdict is {e bounded} (no induction argument
    comes with the taint abstraction here), and the abstraction is
    conservative: taint on an arbitration input smears into every
    granted master, so secure designs can still alarm. *)

type verdict =
  | No_flow of { k : int }  (** no taint reached S_pers within k cycles *)
  | Flow of { k : int; tainted : Structural.svar list }

val analyze : ?max_k:int -> Upec.Spec.t -> verdict * float
(** Returns the verdict and the analysis wall-clock time in seconds.
    Uses the same environment assumptions (well-formedness, threat
    model, policy, invariants) as the UPEC-SSC runs for a fair
    comparison. *)
