lib/ift/taint.ml: Array Expr Hashtbl List Netlist Printf Rtl Structural
