lib/ift/formal.mli: Rtl Structural Upec
