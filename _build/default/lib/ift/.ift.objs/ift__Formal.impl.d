lib/ift/formal.ml: Aig Array Bitvec Expr Ipc List Netlist Option Rtl Soc Structural Taint Unix Upec
