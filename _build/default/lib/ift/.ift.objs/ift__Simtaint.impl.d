lib/ift/simtaint.ml: Bitvec Rtl Sim Structural Taint
