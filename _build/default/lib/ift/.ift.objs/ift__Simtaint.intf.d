lib/ift/simtaint.mli: Netlist Rtl Sim Structural Taint
