lib/ift/taint.mli: Expr Netlist Rtl Structural
