open Rtl
module U = Ipc.Unroller

type verdict =
  | No_flow of { k : int }
  | Flow of { k : int; tainted : Structural.svar list }

(* the shadow of an svar is itself a register of the instrumented
   netlist; recover it as an svar so it can be read out of a cex *)
let shadow_svar sh sv =
  match Taint.shadow_of_svar sh sv with
  | Some te -> (
      match Expr.node te with
      | Expr.Reg s -> Some (Structural.Sreg s)
      | Expr.Input _ | Expr.Param _ | Expr.Const _ | Expr.Memread _
      | Expr.Unop _ | Expr.Binop _ | Expr.Mux _ | Expr.Concat _ | Expr.Slice _
        ->
          None)
  | None -> None

let analyze ?(max_k = 4) (spec : Upec.Spec.t) =
  let t0 = Unix.gettimeofday () in
  let soc = spec.Upec.Spec.soc in
  let nl = soc.Soc.Builder.netlist in
  let inst_nl, sh =
    Taint.instrument nl ~taint_inputs:soc.Soc.Builder.victim_port
  in
  let pers_svars =
    Structural.Svar_set.filter
      (Upec.Spec.is_pers spec)
      (Structural.all_svars nl)
  in
  let input_by_name name =
    List.find (fun (s : Expr.signal) -> s.Expr.s_name = name) nl.Netlist.inputs
  in
  let shadow_in name =
    Option.get (Taint.shadow_input sh (input_by_name name))
  in
  let rec try_k k =
    if k > max_k then (No_flow { k = max_k }, Unix.gettimeofday () -. t0)
    else begin
      let eng = Ipc.Engine.create ~two_instance:false inst_nl in
      Ipc.Engine.ensure_frames eng k;
      let u = Ipc.Engine.unroller eng in
      let g = Ipc.Engine.graph eng in
      (* environment assumptions at every cycle *)
      let env = Upec.Spec.assumed_env spec in
      for f = 0 to k do
        Ipc.Engine.assume eng (U.blast_at u U.A ~frame:f env).(0)
      done;
      (* taint-free symbolic start *)
      Structural.Svar_set.iter
        (fun sv ->
          match Taint.shadow_of_svar sh sv with
          | None -> ()
          | Some te ->
              let v = U.blast_at u U.A ~frame:0 te in
              Array.iter (fun l -> Ipc.Engine.assume eng (Aig.lit_not l)) v)
        (Structural.all_svars nl);
      (* taint source: protected accesses raise address and data taint *)
      let addr_sig = input_by_name "victim.addr" in
      let prot_expr = Upec.Spec.in_range spec (Expr.input addr_sig) in
      for f = 0 to k - 1 do
        let prot = (U.blast_at u U.A ~frame:f prot_expr).(0) in
        let tie name =
          let tvec = U.blast_at u U.A ~frame:f (shadow_in name) in
          Array.iter (fun l -> Ipc.Engine.assume eng (Aig.mk_xnor g l prot)) tvec
        in
        tie "victim.addr";
        tie "victim.wdata";
        let untaint name =
          let tvec = U.blast_at u U.A ~frame:f (shadow_in name) in
          Array.iter (fun l -> Ipc.Engine.assume eng (Aig.lit_not l)) tvec
        in
        untaint "victim.req";
        untaint "victim.we"
      done;
      (* target: some persistent, non-protected state variable tainted
         at cycle k *)
      let targets =
        Structural.Svar_set.fold
          (fun sv acc ->
            match Taint.shadow_of_svar sh sv with
            | None -> acc
            | Some te ->
                let bits = U.blast_at u U.A ~frame:k te in
                let tainted = Aig.mk_or_list g (Array.to_list bits) in
                let relevant =
                  match Upec.Spec.victim_cell_guard spec sv with
                  | None -> tainted
                  | Some guard ->
                      let gl = (U.blast_at u U.A ~frame:0 guard).(0) in
                      Aig.mk_and g tainted (Aig.lit_not gl)
                in
                (sv, relevant) :: acc)
          pers_svars []
      in
      let goal = Aig.mk_or_list g (List.map snd targets) in
      match Ipc.Engine.check_sat eng [ goal ] with
      | None -> try_k (k + 1)
      | Some cex ->
          let tainted =
            List.filter_map
              (fun (sv, _) ->
                match shadow_svar sh sv with
                | Some ssv
                  when not
                         (Bitvec.is_zero
                            (Ipc.Cex.svar_value cex U.A ~frame:k ssv))
                       && not (Upec.Macros.cell_guard_concrete spec cex sv) ->
                    Some sv
                | Some _ | None -> None)
              targets
          in
          (Flow { k; tainted }, Unix.gettimeofday () -. t0)
    end
  in
  try_k 1
