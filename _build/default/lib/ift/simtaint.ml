open Rtl

let engine inst_nl = Sim.Engine.create inst_nl

let set_input_taint eng name mask =
  Sim.Engine.set_input_int eng (name ^ "#t") mask

let svar_tainted eng sh sv =
  match Taint.shadow_of_svar sh sv with
  | None -> false
  | Some te -> not (Bitvec.is_zero (Sim.Engine.peek eng te))

let count_tainted eng sh set =
  Structural.Svar_set.fold
    (fun sv acc -> if svar_tainted eng sh sv then acc + 1 else acc)
    set 0
