open Rtl

(** Simulation-based taint tracking: run the instrumented netlist in
    the ordinary simulator (the shadow logic is plain RTL) and observe
    taint spreading concretely. *)

val engine : Netlist.t -> Sim.Engine.t
(** Create a simulator for an instrumented netlist with all shadow
    state initially clear. *)

val set_input_taint : Sim.Engine.t -> string -> int -> unit
(** [set_input_taint eng "victim.addr" mask] drives the shadow input of
    a tainted source. *)

val svar_tainted : Sim.Engine.t -> Taint.shadow -> Structural.svar -> bool
(** Is any taint bit of this (original-design) state variable set? *)

val count_tainted : Sim.Engine.t -> Taint.shadow -> Structural.Svar_set.t -> int
