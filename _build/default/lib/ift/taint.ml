open Rtl

type shadow = {
  sh_regs : (int, Expr.t) Hashtbl.t;  (* signal id -> shadow reg expr *)
  sh_inputs : (int, Expr.t) Hashtbl.t;
  sh_cells : (int, Expr.t array) Hashtbl.t;  (* mem id -> per-cell regs *)
  sh_memo : (int, Expr.t) Hashtbl.t;  (* expr tag -> taint expr *)
}

let replicate bit w = Expr.mux bit (Expr.ones w) (Expr.zero w)
let any t = Expr.unop Expr.Redor t

let rec taint_with sh e =
  match Hashtbl.find_opt sh.sh_memo (Expr.tag e) with
  | Some te -> te
  | None ->
      let te = compute sh e in
      assert (Expr.width te = Expr.width e);
      Hashtbl.replace sh.sh_memo (Expr.tag e) te;
      te

and compute sh e =
  let w = Expr.width e in
  let t x = taint_with sh x in
  match Expr.node e with
  | Expr.Const _ | Expr.Param _ -> Expr.zero w
  | Expr.Input s -> (
      match Hashtbl.find_opt sh.sh_inputs s.Expr.s_id with
      | Some te -> te
      | None -> Expr.zero w)
  | Expr.Reg s -> (
      match Hashtbl.find_opt sh.sh_regs s.Expr.s_id with
      | Some te -> te
      | None -> Expr.zero w)
  | Expr.Memread (m, a) -> (
      match Hashtbl.find_opt sh.sh_cells m.Expr.m_id with
      | None -> Expr.zero w
      | Some shadow_cells ->
          let data_taint =
            Expr.mux_list a ~default:(Expr.zero w)
              (Array.to_list (Array.mapi (fun i te -> (i, te)) shadow_cells))
          in
          (* a tainted address may read any cell: smear *)
          Expr.(data_taint |: replicate (any (t a)) w))
  | Expr.Unop (op, a) -> (
      let ta = t a in
      match op with
      | Expr.Not -> ta
      | Expr.Neg -> replicate (any ta) w
      | Expr.Redand | Expr.Redor | Expr.Redxor -> any ta)
  | Expr.Binop (op, a, b) -> (
      let ta = t a and tb = t b in
      match op with
      | Expr.And ->
          (* precise gate rule: an output bit is tainted if a tainted
             input bit can flip it given the other operand's value *)
          Expr.(ta &: tb |: (ta &: b) |: (tb &: a))
      | Expr.Or -> Expr.(ta &: tb |: (ta &: ~:b) |: (tb &: ~:a))
      | Expr.Xor -> Expr.(ta |: tb)
      | Expr.Add | Expr.Sub | Expr.Mul -> replicate (any Expr.(ta |: tb)) w
      | Expr.Eq | Expr.Ne | Expr.Ult | Expr.Ule | Expr.Slt | Expr.Sle ->
          any Expr.(ta |: tb)
      | Expr.Shl -> Expr.(shl ta b |: replicate (any tb) w)
      | Expr.Lshr -> Expr.(lshr ta b |: replicate (any tb) w)
      | Expr.Ashr -> Expr.(ashr ta b |: replicate (any tb) w))
  | Expr.Mux (s, a, b) -> Expr.(mux s (t a) (t b) |: replicate (any (t s)) w)
  | Expr.Concat (hi, lo) -> Expr.concat (t hi) (t lo)
  | Expr.Slice (a, hi, lo) -> Expr.slice (t a) ~hi ~lo

let taint_of_expr sh e = taint_with sh e

let shadow_of_svar sh = function
  | Structural.Sreg s -> Hashtbl.find_opt sh.sh_regs s.Expr.s_id
  | Structural.Smem (m, i) -> (
      match Hashtbl.find_opt sh.sh_cells m.Expr.m_id with
      | Some cells -> Some cells.(i)
      | None -> None)

let shadow_input sh (s : Expr.signal) = Hashtbl.find_opt sh.sh_inputs s.Expr.s_id

let instrument (nl : Netlist.t) ~taint_inputs =
  let b = Netlist.Builder.create (nl.Netlist.name ^ "_ift") in
  Netlist.Builder.import b nl;
  let sh =
    {
      sh_regs = Hashtbl.create 64;
      sh_inputs = Hashtbl.create 16;
      sh_cells = Hashtbl.create 4;
      sh_memo = Hashtbl.create 1024;
    }
  in
  (* shadow inputs for the designated taint sources *)
  List.iter
    (fun (s : Expr.signal) ->
      if List.mem s.Expr.s_name taint_inputs then
        Hashtbl.replace sh.sh_inputs s.Expr.s_id
          (Netlist.Builder.input b (s.Expr.s_name ^ "#t") s.Expr.s_width))
    nl.Netlist.inputs;
  (* shadow registers *)
  List.iter
    (fun rd ->
      let s = rd.Netlist.rd_signal in
      Hashtbl.replace sh.sh_regs s.Expr.s_id
        (Netlist.Builder.reg b (s.Expr.s_name ^ "#t") s.Expr.s_width))
    nl.Netlist.regs;
  (* shadow memory cells as registers; read-only memories (no write
     ports) stay untainted and get no shadow *)
  List.iter
    (fun md ->
      let m = md.Netlist.md_mem in
      if md.Netlist.md_ports <> [] then
        Hashtbl.replace sh.sh_cells m.Expr.m_id
          (Array.init m.Expr.m_depth (fun i ->
               Netlist.Builder.reg b
                 (Printf.sprintf "%s#t[%d]" m.Expr.m_name i)
                 m.Expr.m_data_width)))
    nl.Netlist.mems;
  let t e = taint_with sh e in
  (* shadow register next-states *)
  List.iter
    (fun rd ->
      let s = rd.Netlist.rd_signal in
      let shadow = Hashtbl.find sh.sh_regs s.Expr.s_id in
      Netlist.Builder.set_next b shadow (t rd.Netlist.rd_next))
    nl.Netlist.regs;
  (* shadow memory cell next-states *)
  List.iter
    (fun md ->
      let m = md.Netlist.md_mem in
      match Hashtbl.find_opt sh.sh_cells m.Expr.m_id with
      | None -> ()
      | Some shadow_cells ->
          Array.iteri
            (fun i shadow_cell ->
              let w = m.Expr.m_data_width in
              let aw = m.Expr.m_addr_width in
              let next =
                List.fold_left
                  (fun acc wp ->
                    let en = wp.Netlist.wp_enable in
                    let addr = wp.Netlist.wp_addr in
                    let data_taint = t wp.Netlist.wp_data in
                    let ctrl_taint = Expr.(any (t en) |: any (t addr)) in
                    let hit = Expr.(en &: (addr ==: of_int ~width:aw i)) in
                    (* tainted control: the cell may or may not be
                       (over)written — taint it entirely *)
                    Expr.(
                      mux ctrl_taint (ones w) (mux hit data_taint acc)))
                  shadow_cell
                  (List.rev md.Netlist.md_ports)
              in
              Netlist.Builder.set_next b shadow_cell next)
            shadow_cells)
    nl.Netlist.mems;
  (* shadow outputs *)
  List.iter
    (fun (name, e) -> Netlist.Builder.output b (name ^ "#t") (t e))
    nl.Netlist.outputs;
  (Netlist.Builder.finalize b, sh)
