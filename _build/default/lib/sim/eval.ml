open Rtl

type env = {
  lookup_input : Expr.signal -> Bitvec.t;
  lookup_param : Expr.signal -> Bitvec.t;
  lookup_reg : Expr.signal -> Bitvec.t;
  lookup_mem : Expr.mem -> int -> Bitvec.t;
}

let unop_fn = function
  | Expr.Not -> Bitvec.lognot
  | Expr.Neg -> Bitvec.neg
  | Expr.Redand -> Bitvec.redand
  | Expr.Redor -> Bitvec.redor
  | Expr.Redxor -> Bitvec.redxor

let binop_fn = function
  | Expr.Add -> Bitvec.add
  | Expr.Sub -> Bitvec.sub
  | Expr.Mul -> Bitvec.mul
  | Expr.And -> Bitvec.logand
  | Expr.Or -> Bitvec.logor
  | Expr.Xor -> Bitvec.logxor
  | Expr.Eq -> Bitvec.eq
  | Expr.Ne -> Bitvec.ne
  | Expr.Ult -> Bitvec.ult
  | Expr.Ule -> Bitvec.ule
  | Expr.Slt -> Bitvec.slt
  | Expr.Sle -> Bitvec.sle
  | Expr.Shl -> Bitvec.shl
  | Expr.Lshr -> Bitvec.lshr
  | Expr.Ashr -> Bitvec.ashr

let evaluator env =
  let memo : (int, Bitvec.t) Hashtbl.t = Hashtbl.create 256 in
  let rec go e =
    match Hashtbl.find_opt memo (Expr.tag e) with
    | Some v -> v
    | None ->
        let v =
          match Expr.node e with
          | Expr.Const b -> b
          | Expr.Input s -> env.lookup_input s
          | Expr.Param s -> env.lookup_param s
          | Expr.Reg s -> env.lookup_reg s
          | Expr.Memread (m, a) ->
              let addr = Bitvec.to_int (go a) in
              if addr < m.Expr.m_depth then env.lookup_mem m addr
              else Bitvec.zero m.Expr.m_data_width
          | Expr.Unop (op, a) -> unop_fn op (go a)
          | Expr.Binop (op, a, b) -> binop_fn op (go a) (go b)
          | Expr.Mux (s, a, b) -> if Bitvec.is_zero (go s) then go b else go a
          | Expr.Concat (a, b) -> Bitvec.concat (go a) (go b)
          | Expr.Slice (a, hi, lo) -> Bitvec.slice (go a) ~hi ~lo
        in
        Hashtbl.add memo (Expr.tag e) v;
        v
  in
  go

let eval env e = evaluator env e
