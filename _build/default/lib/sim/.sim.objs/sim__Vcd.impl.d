lib/sim/vcd.ml: Bitvec Char Engine Expr List Printf Rtl String
