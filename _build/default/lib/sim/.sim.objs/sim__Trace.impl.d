lib/sim/trace.ml: Bitvec Engine Expr Format List Rtl String
