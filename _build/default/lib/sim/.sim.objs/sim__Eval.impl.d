lib/sim/eval.ml: Bitvec Expr Hashtbl Rtl
