lib/sim/eval.mli: Bitvec Expr Rtl
