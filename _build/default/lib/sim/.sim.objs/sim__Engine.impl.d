lib/sim/engine.ml: Array Bitvec Eval Expr Hashtbl List Netlist Printf Rtl
