lib/sim/engine.mli: Bitvec Expr Netlist Rtl
