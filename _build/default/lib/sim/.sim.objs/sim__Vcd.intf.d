lib/sim/vcd.mli: Engine Expr Rtl
