lib/sim/trace.mli: Bitvec Engine Expr Format Rtl
