open Rtl

(** Concrete evaluation of expressions against an environment.

    Evaluation is memoised per call on hash-cons tags, so shared
    sub-expressions are computed once. Out-of-range memory reads
    (address [>= depth]) evaluate to zero. *)

type env = {
  lookup_input : Expr.signal -> Bitvec.t;
  lookup_param : Expr.signal -> Bitvec.t;
  lookup_reg : Expr.signal -> Bitvec.t;
  lookup_mem : Expr.mem -> int -> Bitvec.t;
}

val eval : env -> Expr.t -> Bitvec.t
(** Evaluate one expression (fresh memo table). *)

val evaluator : env -> Expr.t -> Bitvec.t
(** [evaluator env] returns an evaluation function sharing one memo
    table across calls; use for evaluating many expressions against the
    same environment. The memo table is never invalidated: discard the
    evaluator when the environment changes. *)
