open Rtl

type t = {
  nl : Netlist.t;
  regs : (int, Bitvec.t) Hashtbl.t;  (** by signal id *)
  mems : (int, Bitvec.t array) Hashtbl.t;  (** by mem id *)
  inputs : (int, Bitvec.t) Hashtbl.t;  (** by signal id *)
  params : (int, Bitvec.t) Hashtbl.t;
  input_by_name : (string, Expr.signal) Hashtbl.t;
  param_by_name : (string, Expr.signal) Hashtbl.t;
  reg_by_name : (string, Expr.signal) Hashtbl.t;
  mem_by_name : (string, Expr.mem) Hashtbl.t;
  mutable cycle : int;
  mutable hooks : (t -> unit) list;  (** reversed *)
}

let create (nl : Netlist.t) =
  let t =
    {
      nl;
      regs = Hashtbl.create 64;
      mems = Hashtbl.create 8;
      inputs = Hashtbl.create 32;
      params = Hashtbl.create 8;
      input_by_name = Hashtbl.create 32;
      param_by_name = Hashtbl.create 8;
      reg_by_name = Hashtbl.create 64;
      mem_by_name = Hashtbl.create 8;
      cycle = 0;
      hooks = [];
    }
  in
  List.iter
    (fun (s : Expr.signal) ->
      Hashtbl.replace t.input_by_name s.Expr.s_name s;
      Hashtbl.replace t.inputs s.Expr.s_id (Bitvec.zero s.Expr.s_width))
    nl.Netlist.inputs;
  List.iter
    (fun (s : Expr.signal) ->
      Hashtbl.replace t.param_by_name s.Expr.s_name s;
      Hashtbl.replace t.params s.Expr.s_id (Bitvec.zero s.Expr.s_width))
    nl.Netlist.params;
  List.iter
    (fun rd ->
      let s = rd.Netlist.rd_signal in
      let init =
        match rd.Netlist.rd_init with
        | Some v -> v
        | None -> Bitvec.zero s.Expr.s_width
      in
      Hashtbl.replace t.reg_by_name s.Expr.s_name s;
      Hashtbl.replace t.regs s.Expr.s_id init)
    nl.Netlist.regs;
  List.iter
    (fun md ->
      let m = md.Netlist.md_mem in
      let contents =
        match md.Netlist.md_init with
        | Some a -> Array.copy a
        | None -> Array.make m.Expr.m_depth (Bitvec.zero m.Expr.m_data_width)
      in
      Hashtbl.replace t.mem_by_name m.Expr.m_name m;
      Hashtbl.replace t.mems m.Expr.m_id contents)
    nl.Netlist.mems;
  t

let env t =
  {
    Eval.lookup_input = (fun s -> Hashtbl.find t.inputs s.Expr.s_id);
    Eval.lookup_param = (fun s -> Hashtbl.find t.params s.Expr.s_id);
    Eval.lookup_reg = (fun s -> Hashtbl.find t.regs s.Expr.s_id);
    Eval.lookup_mem = (fun m i -> (Hashtbl.find t.mems m.Expr.m_id).(i));
  }

let set_param t name v =
  let s = Hashtbl.find t.param_by_name name in
  if Bitvec.width v <> s.Expr.s_width then
    invalid_arg (Printf.sprintf "Engine.set_param %s: width mismatch" name);
  Hashtbl.replace t.params s.Expr.s_id v

let set_input t name v =
  let s = Hashtbl.find t.input_by_name name in
  if Bitvec.width v <> s.Expr.s_width then
    invalid_arg (Printf.sprintf "Engine.set_input %s: width mismatch" name);
  Hashtbl.replace t.inputs s.Expr.s_id v

let set_input_int t name v =
  let s = Hashtbl.find t.input_by_name name in
  Hashtbl.replace t.inputs s.Expr.s_id (Bitvec.of_int ~width:s.Expr.s_width v)

let peek t e = Eval.eval (env t) e

let peek_output t name = peek t (Netlist.find_output t.nl name)

let reg_value t name =
  let s = Hashtbl.find t.reg_by_name name in
  Hashtbl.find t.regs s.Expr.s_id

let mem_value t name i =
  let m = Hashtbl.find t.mem_by_name name in
  (Hashtbl.find t.mems m.Expr.m_id).(i)

let poke_reg t name v =
  let s = Hashtbl.find t.reg_by_name name in
  if Bitvec.width v <> s.Expr.s_width then
    invalid_arg (Printf.sprintf "Engine.poke_reg %s: width mismatch" name);
  Hashtbl.replace t.regs s.Expr.s_id v

let poke_mem t name i v =
  let m = Hashtbl.find t.mem_by_name name in
  (Hashtbl.find t.mems m.Expr.m_id).(i) <- v

let step t =
  let ev = Eval.evaluator (env t) in
  (* Phase 1: compute all next values against the pre-edge state. *)
  let reg_next =
    List.map (fun rd -> (rd.Netlist.rd_signal, ev rd.Netlist.rd_next)) t.nl.Netlist.regs
  in
  let mem_writes =
    List.map
      (fun md ->
        let writes =
          List.filter_map
            (fun wp ->
              if Bitvec.is_zero (ev wp.Netlist.wp_enable) then None
              else Some (Bitvec.to_int (ev wp.Netlist.wp_addr), ev wp.Netlist.wp_data))
            md.Netlist.md_ports
        in
        (md.Netlist.md_mem, writes))
      t.nl.Netlist.mems
  in
  (* Phase 2: commit. Later ports are applied first so earlier ports win
     on an address clash, matching the documented priority. *)
  List.iter
    (fun ((s : Expr.signal), v) -> Hashtbl.replace t.regs s.Expr.s_id v)
    reg_next;
  List.iter
    (fun ((m : Expr.mem), writes) ->
      let arr = Hashtbl.find t.mems m.Expr.m_id in
      List.iter
        (fun (addr, data) -> if addr < m.Expr.m_depth then arr.(addr) <- data)
        (List.rev writes))
    mem_writes;
  t.cycle <- t.cycle + 1;
  List.iter (fun hook -> hook t) (List.rev t.hooks)

let run t n =
  for _ = 1 to n do
    step t
  done

let cycle t = t.cycle
let netlist t = t.nl
let on_step t hook = t.hooks <- hook :: t.hooks
