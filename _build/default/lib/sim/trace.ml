open Rtl

type t = {
  names : string list;
  exprs : (string * Expr.t) list;
  mutable rows : Bitvec.t list list;  (** reversed; each row parallel to names *)
}

let attach engine exprs =
  let t = { names = List.map fst exprs; exprs; rows = [] } in
  Engine.on_step engine (fun eng ->
      let row = List.map (fun (_, e) -> Engine.peek eng e) t.exprs in
      t.rows <- row :: t.rows);
  t

let length t = List.length t.rows

let index_of t name =
  let rec find i = function
    | [] -> raise Not_found
    | n :: _ when String.equal n name -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 t.names

let get t name cycle =
  let idx = index_of t name in
  let rows = List.rev t.rows in
  match List.nth_opt rows cycle with
  | Some row -> List.nth row idx
  | None -> invalid_arg "Trace.get: cycle out of range"

let series t name =
  let idx = index_of t name in
  List.rev_map (fun row -> List.nth row idx) t.rows

let pp fmt t =
  Format.fprintf fmt "@[<v>cycle  %s@," (String.concat "  " t.names);
  List.iteri
    (fun i row ->
      Format.fprintf fmt "%5d  %s@," i
        (String.concat "  " (List.map Bitvec.to_string row)))
    (List.rev t.rows);
  Format.fprintf fmt "@]"
