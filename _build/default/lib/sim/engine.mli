open Rtl

(** Cycle-accurate two-phase simulator.

    Usage per cycle: set the inputs, optionally {!peek} combinational
    values, then {!step} to commit registers and memories and advance
    the cycle counter. Registers start from their declared reset value
    (zero when absent); memories from their initial contents (zeros when
    absent); parameters must be set before the first evaluation and stay
    fixed. *)

type t

val create : Netlist.t -> t

val set_param : t -> string -> Bitvec.t -> unit
(** Set a symbolic parameter by name. Raises [Not_found] for unknown
    names and [Invalid_argument] on width mismatch. *)

val set_input : t -> string -> Bitvec.t -> unit
(** Set a primary input for the current cycle. Inputs persist across
    cycles until overwritten (convenient for quasi-static control
    inputs). *)

val set_input_int : t -> string -> int -> unit

val peek : t -> Expr.t -> Bitvec.t
(** Evaluate an arbitrary expression against the current cycle's state
    and inputs. *)

val peek_output : t -> string -> Bitvec.t
(** Evaluate a named netlist output. *)

val reg_value : t -> string -> Bitvec.t
val mem_value : t -> string -> int -> Bitvec.t

val poke_reg : t -> string -> Bitvec.t -> unit
(** Force a register's current value (testing / state injection). *)

val poke_mem : t -> string -> int -> Bitvec.t -> unit

val step : t -> unit
(** Commit one clock edge. *)

val run : t -> int -> unit
(** [run t n] steps [n] cycles with the current inputs. *)

val cycle : t -> int
(** Number of clock edges committed so far. *)

val netlist : t -> Netlist.t

val on_step : t -> (t -> unit) -> unit
(** Register a hook called after every {!step} (tracing, VCD). Hooks run
    in registration order. *)
