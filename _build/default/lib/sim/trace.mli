open Rtl

(** Bounded recording of named expressions over simulation cycles. *)

type t

val attach : Engine.t -> (string * Expr.t) list -> t
(** Record the given expressions after every subsequent step of the
    engine. Values are evaluated post-edge (i.e. they reflect the state
    after the clock edge of that cycle). *)

val length : t -> int
(** Number of recorded cycles. *)

val get : t -> string -> int -> Bitvec.t
(** [get t name cycle] is the recorded value; [cycle] counts from 0 =
    first recorded step. Raises [Not_found] / [Invalid_argument]. *)

val series : t -> string -> Bitvec.t list
(** All recorded values of one signal, oldest first. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump, one row per cycle. *)
