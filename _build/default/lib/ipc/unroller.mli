open Rtl
open Bitblast

(** Time-frame expansion of a netlist with a symbolic starting state.

    The unroller instantiates the transition relation of a netlist over
    clock cycles [0..k]. The state at cycle 0 is a vector of free AIG
    variables — the {e symbolic starting state} of Interval Property
    Checking, which models every possible history of the design — and
    the state at cycle [t+1] is the bit-blasted image of the next-state
    functions applied to cycle [t].

    For 2-safety (UPEC) reasoning the unroller can hold two instances
    of the design, [A] and [B]. Each instance has its own state and
    input variables; {e parameters} (symbolic constants such as the
    victim address range) are shared between instances and frames, which
    encodes that both instances run under the same memory layout. *)

type instance = A | B

val pp_instance : Format.formatter -> instance -> unit

type t

val create : Aig.t -> Netlist.t -> two_instance:bool -> t
val graph : t -> Aig.t
val netlist : t -> Netlist.t
val two_instance : t -> bool

val ensure_frames : t -> int -> unit
(** [ensure_frames t k] materialises state variables for cycles [0..k]
    (and input variables for cycles [0..k-1]). Idempotent, monotone. *)

val frames : t -> int
(** Highest cycle materialised so far. *)

val reg_vec : t -> instance -> frame:int -> Expr.signal -> Blaster.vec
val mem_vec : t -> instance -> frame:int -> Expr.mem -> int -> Blaster.vec
val svar_vec : t -> instance -> frame:int -> Structural.svar -> Blaster.vec
val input_vec : t -> instance -> frame:int -> Expr.signal -> Blaster.vec
val param_vec : t -> Expr.signal -> Blaster.vec

val blast_at : t -> instance -> frame:int -> Expr.t -> Blaster.vec
(** Bit-blast a combinational expression over the state and inputs of
    the given cycle. *)

val svar_equal_lit : t -> frame:int -> Structural.svar -> Aig.lit
(** 1 iff the state variable has equal values in instances A and B at
    the given cycle. Requires a two-instance unroller. *)

val inputs_equal_lit : t -> frame:int -> Expr.signal -> Aig.lit
