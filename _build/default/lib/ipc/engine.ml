module S = Satsolver.Solver
module L = Satsolver.Lit

type t = {
  g : Aig.t;
  u : Unroller.t;
  solver : S.t;
  cnf : Aig.Cnf.ctx;
}

let create ?solver_options ~two_instance nl =
  let g = Aig.create () in
  let u = Unroller.create g nl ~two_instance in
  let solver = S.create ?options:solver_options () in
  let cnf = Aig.Cnf.create g solver in
  { g; u; solver; cnf }

let unroller t = t.u
let graph t = t.g
let ensure_frames t k = Unroller.ensure_frames t.u k
let assume t l = Aig.Cnf.assert_lit t.cnf l
let assume_implication t a b = Aig.Cnf.assert_implies t.cnf a b

(* Pre-encode every extractable variable so model extraction never
   consults a SAT variable allocated after solving. *)
let pre_encode t =
  let nl = Unroller.netlist t.u in
  let instances =
    if Unroller.two_instance t.u then [ Unroller.A; Unroller.B ]
    else [ Unroller.A ]
  in
  let svars = Rtl.Structural.all_svars nl in
  List.iter
    (fun inst ->
      for frame = 0 to Unroller.frames t.u do
        Rtl.Structural.Svar_set.iter
          (fun sv ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.svar_vec t.u inst ~frame sv))
          svars;
        List.iter
          (fun (s : Rtl.Expr.signal) ->
            Array.iter
              (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
              (Unroller.input_vec t.u inst ~frame s))
          nl.Rtl.Netlist.inputs
      done)
    instances;
  List.iter
    (fun (s : Rtl.Expr.signal) ->
      Array.iter
        (fun l -> ignore (Aig.Cnf.sat_lit t.cnf l))
        (Unroller.param_vec t.u s))
    nl.Rtl.Netlist.params

let model_fn t =
  (* AIG literal -> bool via the SAT model. All relevant variable nodes
     were pre-encoded; defensively treat unknown nodes as false. *)
  let g = t.g in
  fun l ->
    let sat_value lit =
      try S.value t.solver (Aig.Cnf.sat_lit t.cnf lit)
      with Invalid_argument _ -> false
    in
    Aig.eval g (fun var_lit -> sat_value var_lit) l

type outcome = Holds | Cex of Cex.t

let check_sat t extra =
  pre_encode t;
  let assumptions = List.map (Aig.Cnf.sat_lit t.cnf) extra in
  match S.solve ~assumptions t.solver with
  | S.Unsat -> None
  | S.Sat -> Some (Cex.extract t.u (model_fn t))

let check t goal =
  match check_sat t [ Aig.lit_not goal ] with
  | None -> Holds
  | Some cex -> Cex cex

let solve_stats t = S.stats t.solver
