(** Property checking over an unrolled design.

    A session owns the AIG, the unroller and one SAT solver. Properties
    are given as AIG literals: assumptions are asserted permanently;
    each {!check} call temporarily asserts the negation of the proof
    obligation through an activation literal, so successive checks with
    different obligations reuse all learnt clauses. *)

type t

val create :
  ?solver_options:Satsolver.Solver.options ->
  two_instance:bool ->
  Rtl.Netlist.t ->
  t

val unroller : t -> Unroller.t
val graph : t -> Aig.t

val ensure_frames : t -> int -> unit

val assume : t -> Aig.lit -> unit
(** Permanently assume the literal. *)

val assume_implication : t -> Aig.lit -> Aig.lit -> unit
(** Permanently assume [a -> b]; with a fresh activation variable as
    [a], this arms retractable obligations for incremental checking. *)

type outcome = Holds | Cex of Cex.t

val check : t -> Aig.lit -> outcome
(** [check t goal] decides whether the assumptions imply [goal]. If
    satisfiable with [¬goal], returns the extracted counterexample over
    all materialised frames. *)

val check_sat : t -> Aig.lit list -> Cex.t option
(** Low-level: is the conjunction of assumptions and the given literals
    satisfiable? Returns the witness if so. *)

val solve_stats : t -> Satsolver.Solver.stats
