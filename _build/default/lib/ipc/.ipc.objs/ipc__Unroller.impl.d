lib/ipc/unroller.ml: Aig Array Bitblast Blaster Expr Format Hashtbl List Netlist Printf Rtl Structural
