lib/ipc/engine.mli: Aig Cex Rtl Satsolver Unroller
