lib/ipc/cex.mli: Aig Bitvec Expr Format Rtl Structural Unroller
