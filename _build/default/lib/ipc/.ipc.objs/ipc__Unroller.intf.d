lib/ipc/unroller.mli: Aig Bitblast Blaster Expr Format Netlist Rtl Structural
