lib/ipc/engine.ml: Aig Array Cex List Rtl Satsolver Unroller
