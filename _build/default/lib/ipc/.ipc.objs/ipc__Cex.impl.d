lib/ipc/cex.ml: Array Bitvec Expr Format Hashtbl List Netlist Printf Rtl Structural Unroller
