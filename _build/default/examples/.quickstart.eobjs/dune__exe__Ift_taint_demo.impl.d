examples/ift_taint_demo.ml: Bitvec Format Ift List Netlist Rtl Sim Soc Structural Upec
