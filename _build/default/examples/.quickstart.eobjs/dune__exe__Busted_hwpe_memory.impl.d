examples/busted_hwpe_memory.ml: Format List Scenarios
