examples/ift_taint_demo.mli:
