examples/busted_hwpe_memory.mli:
