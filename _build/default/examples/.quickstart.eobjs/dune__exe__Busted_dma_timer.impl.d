examples/busted_dma_timer.ml: Format List Scenarios
