examples/quickstart.mli:
