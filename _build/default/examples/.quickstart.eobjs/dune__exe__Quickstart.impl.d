examples/quickstart.ml: Format Rtl Soc Upec
