examples/busted_dma_timer.mli:
