(* Quickstart: build the Pulpissimo-like SoC, check the soundness of
   the assumed invariants, run UPEC-SSC on the baseline (vulnerable)
   and on the secured variant, and print both verdicts.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  Format.printf "== UPEC-SSC quickstart ==@.@.";
  (* 1. Build the SoC in formal mode: the CPU is cut at its bus
     interface, and the victim's protected address range is symbolic. *)
  let cfg = Soc.Config.formal_tiny in
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  Format.printf "SoC: %s@.@." (Rtl.Netlist.stats soc.Soc.Builder.netlist);

  (* 2. The method needs a handful of reachability invariants to rule
     out false counterexamples from the symbolic starting state
     (Sec. 3.4). They are verified, not trusted. *)
  let secure_spec = Upec.Spec.make soc Upec.Spec.Secure in
  Format.printf "invariant soundness (base + induction): %b@.@."
    (Upec.Invariant.all_sound secure_spec);

  (* 3. Baseline SoC: Algorithm 1 finds a timing side channel — victim
     memory accesses modulate a spying IP's progress, which survives
     the context switch in persistent state. *)
  let vuln_spec = Upec.Spec.make soc Upec.Spec.Vulnerable in
  let vuln_report = Upec.Alg1.run vuln_spec in
  Format.printf "%a@.@." Upec.Report.pp vuln_report;

  (* 4. With the Sec. 4.2 countermeasure (protected range mapped to the
     private memory; DMA kept out of it by firmware constraints) the
     same procedure reaches a fixed point: proven secure, with
     unbounded validity. *)
  let secure_report = Upec.Alg1.run secure_spec in
  Format.printf "%a@.@." Upec.Report.pp secure_report;

  Format.printf "summary:@.  %a@.  %a@." Upec.Report.pp_summary vuln_report
    Upec.Report.pp_summary secure_report
