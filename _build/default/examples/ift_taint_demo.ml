(* Information-flow-tracking demo: instrument the formal-mode SoC with
   shadow taint logic, drive one protected victim access through the bus
   from the simulator, and watch the taint spread cycle by cycle — then
   contrast the formal IFT verdicts with UPEC-SSC's on both variants.

   Run with:  dune exec examples/ift_taint_demo.exe *)

open Rtl

let cfg = Soc.Config.formal_tiny

let () =
  Format.printf "== IFT baseline demo ==@.@.";
  let soc = Soc.Builder.build cfg Soc.Builder.Formal in
  let nl = soc.Soc.Builder.netlist in
  let inst, sh = Ift.Taint.instrument nl ~taint_inputs:soc.Soc.Builder.victim_port in
  Format.printf "original:     %s@." (Netlist.stats nl);
  Format.printf "instrumented: %s@.@." (Netlist.stats inst);

  (* simulate: one tainted (protected) victim read, then idle cycles *)
  let eng = Ift.Simtaint.engine inst in
  let all = Structural.all_svars nl in
  let spies =
    Structural.Svar_set.filter
      (fun sv -> Soc.Builder.is_persistent soc sv)
      all
  in
  Sim.Engine.set_input_int eng "victim.req" 1;
  Sim.Engine.set_input_int eng "victim.addr" 2;
  Sim.Engine.set_input_int eng "victim.we" 0;
  Ift.Simtaint.set_input_taint eng "victim.addr" 0xff;
  (* make the spying IPs active so contention can carry the taint *)
  Sim.Engine.poke_reg eng "hwpe.busy" (Bitvec.one 1);
  Sim.Engine.poke_reg eng "hwpe.len" (Bitvec.of_int ~width:8 8);
  Format.printf "cycle | tainted state vars | tainted persistent vars@.";
  Format.printf "------+--------------------+------------------------@.";
  for c = 1 to 6 do
    Sim.Engine.step eng;
    if c = 2 then begin
      (* victim goes quiet after its access; taint must persist *)
      Sim.Engine.set_input_int eng "victim.req" 0;
      Ift.Simtaint.set_input_taint eng "victim.addr" 0
    end;
    Format.printf "%5d | %18d | %23d@." c
      (Ift.Simtaint.count_tainted eng sh all)
      (Ift.Simtaint.count_tainted eng sh spies)
  done;

  (* formal comparison *)
  Format.printf "@.formal verdicts (same assumptions as UPEC-SSC):@.";
  List.iter
    (fun (label, variant) ->
      let spec = Upec.Spec.make soc variant in
      let ift_verdict, secs = Ift.Formal.analyze ~max_k:2 spec in
      let upec = Upec.Alg1.run spec in
      let ift_str =
        match ift_verdict with
        | Ift.Formal.Flow { k; tainted } ->
            Format.asprintf "ALARM at k=%d (%d persistent vars tainted)" k
              (List.length tainted)
        | Ift.Formal.No_flow { k } -> Format.asprintf "no flow up to k=%d" k
      in
      Format.printf "  %-10s IFT: %-45s (%.2fs)@." label ift_str secs;
      Format.printf "  %-10s UPEC-SSC: %a@." "" Upec.Report.pp_verdict
        upec.Upec.Report.verdict)
    [ ("baseline", Upec.Spec.Vulnerable); ("secured", Upec.Spec.Secure) ];
  Format.printf
    "@.IFT raises the same alarm on both variants: the taint abstraction@.";
  Format.printf
    "cannot distinguish the secured design — UPEC-SSC can (Sec. 5).@."
