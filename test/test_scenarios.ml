(* Scenario-matrix subsystem: spec codec round-trips, fingerprint
   stability/sensitivity, the statistical detector on synthetic
   distributions, flag-shim/spec equivalence (verdicts and farm cache
   keys), and a cheap end-to-end cross-check. *)

module Json = Upec.Json
module Scenario = Scenarios.Scenario
module Stat = Scenarios.Stat

(* ---- generators ---- *)

let family_gen = QCheck.Gen.oneofl Scenario.all_families

let design_gen =
  let open QCheck.Gen in
  let* variant = oneofl [ "vulnerable"; "secure" ] in
  let* pers = oneofl [ "full"; "memory" ] in
  let* depth = int_range 2 16 in
  let* banks = oneofl [ 1; 2; 4 ] in
  let* arbiter = oneofl [ "rr"; "fixed"; "tdma" ] in
  let* dma = bool in
  let* hwpe = bool in
  let* uart = bool in
  let* timer = bool in
  let* dma_on_private = bool in
  let* timer_width = int_range 2 32 in
  return
    {
      Upec.Cli.d_variant = variant;
      d_pers = pers;
      d_depth = depth;
      d_banks = banks;
      d_arbiter = arbiter;
      d_dma = dma;
      d_hwpe = hwpe;
      d_uart = uart;
      d_timer = timer;
      d_dma_on_private = dma_on_private;
      d_timer_width = timer_width;
    }

let spec_gen =
  let open QCheck.Gen in
  let* family = family_gen in
  let* design = design_gen in
  let* alg = oneofl [ 1; 2 ] in
  let* secret = int_range 0 64 in
  let* public = int_range 0 64 in
  let* expected =
    oneofl [ Scenario.Expect_vulnerable; Scenario.Expect_secure ]
  in
  let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
  return
    {
      Scenario.sp_name = name;
      sp_family = family;
      sp_design = design;
      sp_alg = alg;
      sp_secret = secret;
      sp_public = public;
      sp_expected = expected;
    }

let spec_arb =
  QCheck.make spec_gen ~print:(fun s -> Json.to_string (Scenario.to_json s))

(* ---- spec codec ---- *)

let prop_spec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"spec JSON round-trip" spec_arb (fun s ->
      Scenario.of_json (Scenario.to_json s) = s)

let prop_fingerprint_stable =
  QCheck.Test.make ~count:200 ~name:"fingerprint canonicalisation-stable"
    spec_arb (fun s ->
      Scenario.fingerprint s = Scenario.fingerprint (Scenario.canonical s)
      && Scenario.fingerprint s
         = Scenario.fingerprint (Scenario.of_json (Scenario.to_json s)))

let prop_fingerprint_sensitive =
  QCheck.Test.make ~count:200 ~name:"fingerprint sensitive to every member"
    spec_arb (fun s ->
      let fp = Scenario.fingerprint s in
      let changed =
        [
          { s with Scenario.sp_secret = s.Scenario.sp_secret + 1 };
          { s with Scenario.sp_alg = (if s.Scenario.sp_alg = 1 then 2 else 1) };
          { s with Scenario.sp_name = s.Scenario.sp_name ^ "x" };
          {
            s with
            Scenario.sp_design =
              {
                s.Scenario.sp_design with
                Upec.Cli.d_depth = s.Scenario.sp_design.Upec.Cli.d_depth + 1;
              };
          };
        ]
      in
      List.for_all (fun s' -> Scenario.fingerprint s' <> fp) changed)

let test_spec_defaults () =
  (* only "family" is required; everything else from the template *)
  let s = Scenario.of_json (Json.Obj [ ("family", Json.Str "countermeasure") ]) in
  Alcotest.(check bool)
    "template design" true
    (s = Scenario.default_for Scenario.Countermeasure);
  (* design members override the template, not the global default *)
  let s =
    Scenario.of_json
      (Json.Obj
         [
           ("family", Json.Str "tdma_interconnect");
           ("design", Json.Obj [ ("depth", Json.Int 3) ]);
         ])
  in
  Alcotest.(check string)
    "family design delta kept" "tdma"
    s.Scenario.sp_design.Upec.Cli.d_arbiter;
  Alcotest.(check int)
    "spec design delta applied" 3 s.Scenario.sp_design.Upec.Cli.d_depth;
  match Scenario.of_json (Json.Obj [ ("family", Json.Str "nonsense") ]) with
  | _ -> Alcotest.fail "unknown family accepted"
  | exception Json.Parse_error _ -> ()

let test_catalog_shape () =
  Alcotest.(check bool)
    "at least 8 families" true
    (List.length Scenario.all_families >= 8);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Scenario.family_to_string f ^ ": >= 3 sweep points")
        true
        (List.length (Scenario.sweep_points f) >= 3))
    Scenario.all_families;
  let names = List.map (fun s -> s.Scenario.sp_name) Scenario.catalog in
  Alcotest.(check int)
    "catalog names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun s ->
      match Scenario.find s.Scenario.sp_name with
      | Some s' -> Alcotest.(check bool) "find returns the entry" true (s = s')
      | None -> Alcotest.failf "catalog entry %s not found" s.Scenario.sp_name)
    Scenario.catalog;
  (* a bare family name resolves to the family default *)
  Alcotest.(check bool)
    "bare family name" true
    (Scenario.find "busted_timer" = Some (Scenario.default_for Scenario.Busted_timer))

(* ---- statistical detector on synthetic distributions ---- *)

let test_stat_leaky () =
  let secret = Array.init 20 (fun i -> 100.0 +. float_of_int (i mod 5)) in
  let public = Array.init 20 (fun i -> 50.0 +. float_of_int (i mod 5)) in
  let r = Stat.test ~secret ~public () in
  Alcotest.(check bool) "leak detected" true (r.Stat.st_verdict = Stat.Leak);
  Alcotest.(check bool) "huge effect" true (Float.abs r.Stat.st_d > 0.8);
  Alcotest.(check bool) "tiny p" true (r.Stat.st_p < 1e-6)

let test_stat_constant_time () =
  let a = Array.init 16 (fun i -> 40.0 +. float_of_int (i mod 3)) in
  let r = Stat.test ~secret:a ~public:(Array.copy a) () in
  Alcotest.(check bool)
    "no leak on identical samples" true
    (r.Stat.st_verdict = Stat.No_leak);
  (* noiseless constant split: certain leak, capped effect *)
  let r =
    Stat.test ~secret:(Array.make 8 60.0) ~public:(Array.make 8 59.0) ()
  in
  Alcotest.(check bool)
    "constant split is a leak" true
    (r.Stat.st_verdict = Stat.Leak);
  Alcotest.(check (float 0.0)) "p = 0" 0.0 r.Stat.st_p

let test_stat_inconclusive_band () =
  (* a mid-band effect at low n: neither significant nor negligible *)
  let secret = [| 10.0; 11.0; 12.0; 13.0; 14.0; 15.0 |] in
  let public = Array.map (fun x -> x +. 0.7) secret in
  let r = Stat.test ~secret ~public () in
  Alcotest.(check bool)
    "mid-band at low n is inconclusive" true
    (r.Stat.st_verdict = Stat.Inconclusive)

let test_stat_escalation () =
  (* deterministic noisy sampler: a real but small shift needs more
     than the initial sample size *)
  let noise i = float_of_int ((i * 7919) mod 13) in
  let calls = ref 0 in
  let sample i =
    incr calls;
    (100.0 +. noise i +. 4.0, 100.0 +. noise i)
  in
  let r = Stat.escalating ~init_n:4 ~max_n:64 ~sample () in
  Alcotest.(check bool) "leak found" true (r.Stat.st_verdict = Stat.Leak);
  Alcotest.(check bool) "escalated at least once" true (r.Stat.st_escalations >= 1);
  Alcotest.(check int) "samples drawn once and reused" r.Stat.st_n !calls

let test_p_value_reference () =
  let close what expected got =
    if Float.abs (expected -. got) > 1e-3 then
      Alcotest.failf "%s: expected %.6f, got %.6f" what expected got
  in
  close "p(t=2, df=10)" 0.073388 (Stat.p_value ~t:2.0 ~df:10.0);
  close "p(t=3, df=20)" 0.007076 (Stat.p_value ~t:3.0 ~df:20.0);
  close "p(t=0.5, df=5)" 0.638299 (Stat.p_value ~t:0.5 ~df:5.0)

(* ---- flag shim vs Scenario.spec: verdicts and farm cache keys ---- *)

(* What `upec_ssc check --depth 3 --no-uart --timer-width 6` desugars
   to in the deprecated flag layer... *)
let shim_design =
  {
    Upec.Cli.default_design with
    Upec.Cli.d_depth = 3;
    d_uart = false;
    d_timer_width = 6;
  }

(* ...and the same design spelled as a scenario spec. *)
let spec_design =
  (Scenario.of_json
     (Json.Obj
        [
          ("family", Json.Str "busted_timer");
          ( "design",
            Json.Obj
              [
                ("depth", Json.Int 3);
                ("uart", Json.Bool false);
                ("timer_width", Json.Int 6);
              ] );
        ]))
    .Scenario.sp_design

(* wall-clock members are the only legitimate difference between two
   runs of the same check; zero them before comparing *)
let rec scrub_times j =
  match j with
  | Json.Obj ms ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if
               String.length k >= 7
               && String.sub k (String.length k - 7) 7 = "seconds"
             then (k, Json.Float 0.0)
             else (k, scrub_times v))
           ms)
  | Json.List xs -> Json.List (List.map scrub_times xs)
  | j -> j

let test_shim_spec_identical_verdicts () =
  Alcotest.(check bool) "design records equal" true (shim_design = spec_design);
  let run d =
    scrub_times
      (Upec.Report.to_json
         (Upec.Alg1.run_with Upec.Options.default (Upec.Cli.spec_of d)))
  in
  Alcotest.(check string)
    "bit-identical reports (timing scrubbed)"
    (Json.to_string (run shim_design))
    (Json.to_string (run spec_design))

let test_shim_spec_identical_cache () =
  let job d =
    {
      Farm.Job.jb_id = "t";
      jb_design = d;
      jb_alg = 1;
      jb_options = Upec.Options.default;
    }
  in
  Alcotest.(check string)
    "identical report keys"
    (Farm.Exec.report_key (job shim_design))
    (Farm.Exec.report_key (job spec_design));
  Alcotest.(check string)
    "spec fingerprints agree"
    (Upec.Fingerprint.design_spec shim_design)
    (Upec.Fingerprint.design_spec spec_design);
  (* a run submitted through the flag shim serves the spec-spelled job
     from the report cache *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "scenario-cache-%d" (Unix.getpid ()))
  in
  let store = Farm.Store.load ~writer:true ~dir () in
  let cold = Farm.Exec.run ~store (job shim_design) in
  Alcotest.(check bool) "cold run misses" false cold.Farm.Exec.oc_report_hit;
  Farm.Store.add_report store ~key:cold.Farm.Exec.oc_report_key
    cold.Farm.Exec.oc_report;
  let warm = Farm.Exec.run ~store (job spec_design) in
  Alcotest.(check bool)
    "spec-spelled job hits the shim's entry" true
    warm.Farm.Exec.oc_report_hit

let test_scenario_job_wire () =
  let j = Farm.Job.of_json (Json.Obj [ ("scenario", Json.Str "busted_timer_d3") ]) in
  Alcotest.(check string) "id defaults to scenario name" "busted_timer_d3"
    j.Farm.Job.jb_id;
  Alcotest.(check int) "design from catalog" 3
    j.Farm.Job.jb_design.Upec.Cli.d_depth;
  let j =
    Farm.Job.of_json
      (Json.Obj
         [
           ( "scenario",
             Json.Obj
               [
                 ("family", Json.Str "busted_timer_free");
                 ("design", Json.Obj [ ("depth", Json.Int 4) ]);
               ] );
         ])
  in
  Alcotest.(check int) "inline spec names its procedure" 2 j.Farm.Job.jb_alg;
  Alcotest.(check int) "inline spec design" 4
    j.Farm.Job.jb_design.Upec.Cli.d_depth;
  (match
     Farm.Job.of_json
       (Json.Obj
          [ ("scenario", Json.Str "busted_timer"); ("design", Json.Obj []) ])
   with
  | _ -> Alcotest.fail "design+scenario accepted"
  | exception Json.Parse_error _ -> ());
  match Farm.Job.of_json (Json.Obj [ ("scenario", Json.Str "no_such") ]) with
  | _ -> Alcotest.fail "unknown scenario accepted"
  | exception Json.Parse_error _ -> ()

(* ---- end-to-end cross-check on the two cheapest scenarios ---- *)

let test_crosscheck_smoke () =
  List.iter
    (fun (name, expect_leak) ->
      let s =
        match Scenario.find name with
        | Some s -> s
        | None -> Alcotest.failf "%s not in catalog" name
      in
      let o = Scenarios.Crosscheck.run s in
      Alcotest.(check bool) (name ^ ": agree") true
        o.Scenarios.Crosscheck.oc_agree;
      Alcotest.(check bool) (name ^ ": expected") true
        o.Scenarios.Crosscheck.oc_expected_ok;
      Alcotest.(check bool) (name ^ ": stat verdict") expect_leak
        (o.Scenarios.Crosscheck.oc_stat.Stat.st_verdict = Stat.Leak);
      (* the report carries the schema-3 extension blocks *)
      let j = Upec.Report.to_json o.Scenarios.Crosscheck.oc_report in
      Alcotest.(check bool) (name ^ ": scenario block") true
        (Json.member "scenario" j <> Json.Null);
      Alcotest.(check bool) (name ^ ": stat block") true
        (Json.member "stat" j <> Json.Null))
    [ ("busted_timer_d3", true); ("no_spies_d3", false) ]

let () =
  Alcotest.run "scenarios"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
          QCheck_alcotest.to_alcotest prop_fingerprint_stable;
          QCheck_alcotest.to_alcotest prop_fingerprint_sensitive;
          Alcotest.test_case "family templates and overrides" `Quick
            test_spec_defaults;
          Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
        ] );
      ( "stat",
        [
          Alcotest.test_case "leaky distribution" `Quick test_stat_leaky;
          Alcotest.test_case "constant time" `Quick test_stat_constant_time;
          Alcotest.test_case "inconclusive band" `Quick
            test_stat_inconclusive_band;
          Alcotest.test_case "sample-size escalation" `Quick
            test_stat_escalation;
          Alcotest.test_case "p-value reference points" `Quick
            test_p_value_reference;
        ] );
      ( "shim",
        [
          Alcotest.test_case "flag shim = spec: verdicts" `Quick
            test_shim_spec_identical_verdicts;
          Alcotest.test_case "flag shim = spec: farm cache" `Quick
            test_shim_spec_identical_cache;
          Alcotest.test_case "scenario jobs on the wire" `Quick
            test_scenario_job_wire;
        ] );
      ( "crosscheck",
        [ Alcotest.test_case "smoke" `Quick test_crosscheck_smoke ] );
    ]
