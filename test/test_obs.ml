(* Tests for the observability layer: span tracer (nesting, domain
   safety, interrupt discipline) and metrics registry (atomic updates,
   log-scale histogram bucketing, dumps). *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

(* Minimal field scanners, mirroring bin/trace_check.ml. *)
let field_string line key =
  let pat = Printf.sprintf "\"%s\":\"" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then
      let j = ref (i + plen) in
      while !j < n && line.[!j] <> '"' do
        incr j
      done;
      Some (String.sub line (i + plen) (!j - i - plen))
    else find (i + 1)
  in
  find 0

let field_int line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let j = ref (i + plen) in
      while
        !j < n && (line.[!j] = '-' || (line.[!j] >= '0' && line.[!j] <= '9'))
      do
        incr j
      done;
      int_of_string_opt (String.sub line (i + plen) (!j - i - plen))
    end
    else find (i + 1)
  in
  find 0

let with_temp_trace f =
  let path = Filename.temp_file "obs-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.close ();
      (* double close must be a no-op *)
      Obs.Trace.close ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Trace.with_file path (fun () -> f ());
      read_lines path)

let assert_matched lines =
  let open_spans = Hashtbl.create 16 in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        "line is a JSON object" true
        (String.length line >= 2
        && line.[0] = '{'
        && line.[String.length line - 1] = '}');
      match (field_string line "ev", field_int line "id") with
      | Some "begin", Some id -> Hashtbl.replace open_spans id ()
      | Some "end", Some id ->
          Alcotest.(check bool) "end has matching begin" true
            (Hashtbl.mem open_spans id);
          Hashtbl.remove open_spans id
      | Some "instant", Some _ -> ()
      | _ -> Alcotest.fail ("unparseable event line: " ^ line))
    lines;
  Alcotest.(check int) "all spans ended" 0 (Hashtbl.length open_spans)

let test_span_nesting () =
  let lines =
    with_temp_trace (fun () ->
        Obs.Trace.with_span "outer"
          ~attrs:[ ("layer", Obs.Trace.Str "test") ]
          (fun () ->
            Obs.Trace.with_span "inner" (fun () -> ());
            Obs.Trace.event "tick"))
  in
  assert_matched lines;
  let begins ev_name =
    List.find
      (fun l ->
        field_string l "ev" = Some "begin" && field_string l "name" = Some ev_name)
      lines
  in
  let outer_id = Option.get (field_int (begins "outer") "id") in
  let inner = begins "inner" in
  Alcotest.(check (option int))
    "inner parents to outer" (Some outer_id) (field_int inner "parent");
  Alcotest.(check (option int))
    "outer is a root span" (Some 0)
    (field_int (begins "outer") "parent");
  let instant =
    List.find (fun l -> field_string l "ev" = Some "instant") lines
  in
  Alcotest.(check (option int))
    "instant under outer (inner already closed)" (Some outer_id)
    (field_int instant "parent")

let test_spans_across_domains () =
  let lines =
    with_temp_trace (fun () ->
        let doms =
          List.init 2 (fun i ->
              Domain.spawn (fun () ->
                  for j = 0 to 9 do
                    Obs.Trace.with_span
                      (Printf.sprintf "worker%d.span%d" i j)
                      (fun () -> ())
                  done))
        in
        List.iter Domain.join doms)
  in
  assert_matched lines;
  let doms =
    List.sort_uniq compare (List.filter_map (fun l -> field_int l "dom") lines)
  in
  Alcotest.(check int) "events from two distinct domains" 2 (List.length doms);
  (* each domain has its own stack: every span here is a root *)
  List.iter
    (fun l ->
      if field_string l "ev" = Some "begin" then
        Alcotest.(check (option int)) "root span" (Some 0) (field_int l "parent"))
    lines;
  Alcotest.(check int) "2 domains x 10 spans x begin+end" 40
    (List.length lines)

let test_span_error_and_interrupt () =
  (* A raising body still emits the end event, and the file left after
     an aborted run (the exception escapes with_file) is whole-line
     parseable. *)
  let path = Filename.temp_file "obs-test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (try
         Obs.Trace.with_file path (fun () ->
             Obs.Trace.with_span "doomed" (fun () ->
                 for i = 0 to 99 do
                   Obs.Trace.with_span (Printf.sprintf "work%d" i) (fun () ->
                       ())
                 done;
                 failwith "interrupted mid-run"))
       with Failure _ -> ());
      Alcotest.(check bool) "sink closed after abort" false
        (Obs.Trace.enabled ());
      let lines = read_lines path in
      assert_matched lines;
      let doomed_end =
        List.find
          (fun l ->
            field_string l "ev" = Some "end"
            && field_string l "name" = Some "doomed")
          lines
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "error flagged on the end event" true
        (contains doomed_end "\"error\":true"))

let test_emit_span_manual () =
  let lines =
    with_temp_trace (fun () ->
        let t1 = Unix.gettimeofday () in
        Obs.Trace.emit_span "manual"
          ~attrs:[ ("iter", Obs.Trace.Int 3) ]
          ~t0:(t1 -. 0.25) ~t1)
  in
  assert_matched lines;
  Alcotest.(check int) "begin+end emitted" 2 (List.length lines)

let test_disabled_is_noop () =
  Alcotest.(check bool) "no sink installed" false (Obs.Trace.enabled ());
  Alcotest.(check int) "with_span just runs the body" 41
    (Obs.Trace.with_span "nobody" (fun () -> 41));
  Obs.Trace.event "dropped";
  Obs.Trace.emit_span "dropped" ~t0:0.0 ~t1:1.0

let test_counter_concurrent () =
  let c = Obs.Metrics.counter "test.concurrent_counter" in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "no lost updates" 40_000 (Obs.Metrics.counter_value c);
  (* same name returns the same instrument *)
  Obs.Metrics.add (Obs.Metrics.counter "test.concurrent_counter") 2;
  Alcotest.(check int) "interned by name" 40_002
    (Obs.Metrics.counter_value c)

let test_histogram_bucketing () =
  let h = Obs.Metrics.histogram "test.bucketing" in
  (* below the lowest bound, inside bucket 0, bucket 1, mid-range, and
     far beyond the top: all must land in finite buckets *)
  List.iter (Obs.Metrics.observe h) [ 1e-9; 1.5e-6; 3e-6; 1.0; 1e12 ];
  let snap = Obs.Metrics.snapshot () in
  let hs = List.assoc "test.bucketing" snap.Obs.Metrics.histograms in
  Alcotest.(check int) "all observations counted" 5 hs.Obs.Metrics.hs_count;
  Alcotest.(check (float 1e-3)) "sum" (1e-9 +. 1.5e-6 +. 3e-6 +. 1.0 +. 1e12)
    hs.Obs.Metrics.hs_sum;
  let buckets = hs.Obs.Metrics.hs_buckets in
  (* 1e-9 and 1.5e-6 share bucket 0 (ub 2e-6); 3e-6 in [2e-6,4e-6);
     1.0 in [0.524288,1.048576); 1e12 clamps into the last bucket *)
  Alcotest.(check int) "non-empty buckets" 4 (List.length buckets);
  let ub0, n0 = List.hd buckets in
  Alcotest.(check (float 1e-9)) "bucket 0 upper bound" 2e-6 ub0;
  Alcotest.(check int) "bucket 0 holds the two smallest" 2 n0;
  let last_ub, _ = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check (float 1.0)) "last bucket ub = lb * 2^32"
    (1e-6 *. (2.0 ** 32.0))
    last_ub;
  Alcotest.(check bool) "mean is finite" true
    (Float.is_finite (Obs.Metrics.hist_mean hs))

let test_gauge_and_reset () =
  let g = Obs.Metrics.gauge "test.gauge" in
  Obs.Metrics.set_gauge g 7.5;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (float 0.0)) "gauge value" 7.5
    (List.assoc "test.gauge" snap.Obs.Metrics.gauges);
  Obs.Metrics.reset ();
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (float 0.0)) "gauge zeroed in place" 0.0
    (List.assoc "test.gauge" snap.Obs.Metrics.gauges);
  (* the old handle must still be live after reset *)
  Obs.Metrics.set_gauge g 1.25;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check (float 0.0)) "handle survives reset" 1.25
    (List.assoc "test.gauge" snap.Obs.Metrics.gauges)

let test_metrics_json () =
  let c = Obs.Metrics.counter "test.json_counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe (Obs.Metrics.histogram "test.json_hist") 0.5;
  let s = Obs.Metrics.to_json (Obs.Metrics.snapshot ()) in
  Alcotest.(check bool) "json object" true
    (String.length s > 2 && s.[0] = '{' && s.[String.length s - 1] = '}');
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter present" true
    (contains s "\"test.json_counter\":1");
  Alcotest.(check bool) "histogram present" true
    (contains s "\"test.json_hist\":{\"count\":1");
  (* dump_file round-trip *)
  let path = Filename.temp_file "obs-test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Metrics.dump_file path;
      let lines = read_lines path in
      Alcotest.(check int) "one JSON line" 1 (List.length lines))

let test_instrument_kind_clash () =
  ignore (Obs.Metrics.counter "test.kind_clash");
  Alcotest.check_raises "same name, different kind"
    (Invalid_argument
       "Obs.Metrics: test.kind_clash already registered as a different \
        instrument kind") (fun () -> ignore (Obs.Metrics.gauge "test.kind_clash"))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and parents" `Quick
            test_span_nesting;
          Alcotest.test_case "spans across domains" `Quick
            test_spans_across_domains;
          Alcotest.test_case "error + interrupt leaves parseable JSONL" `Quick
            test_span_error_and_interrupt;
          Alcotest.test_case "manual emit_span" `Quick test_emit_span_manual;
          Alcotest.test_case "disabled tracer is a no-op" `Quick
            test_disabled_is_noop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "concurrent counter" `Quick
            test_counter_concurrent;
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "gauge + reset keeps handles" `Quick
            test_gauge_and_reset;
          Alcotest.test_case "json dump" `Quick test_metrics_json;
          Alcotest.test_case "instrument kind clash refused" `Quick
            test_instrument_kind_clash;
        ] );
    ]
